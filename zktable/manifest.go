package zktable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"repro/zukowski"
)

// The manifest is the table's unit of commitment: a small binary object
// naming every live segment and hoisting the directory statistics a
// query planner and a verifier need, so both work without opening any
// segment file. It is written atomically and trusted only after its
// trailing CRC32-C verifies.
//
// Byte layout (all integers little-endian):
//
//	off  size  field
//	  0     4  magic "ZKM1"
//	  4     4  u32 layout version (1)
//	  8     8  u64 generation
//	 16     1  u8  element width in bytes (1, 2, 4 or 8)
//	 17     3  reserved, zero
//	 20     4  u32 blockValues (writer block size)
//	 24     4  u32 column count C
//	 28     4  u32 segment count S
//	 32     8  u64 total rows
//	 40     —  C × { u16 nameLen, name bytes }   column names, in order
//	  …     —  S × segment {
//	              u64 segment id
//	              u64 rows
//	              u32 block count B
//	              B × u32 rows-in-block          shared by all columns
//	              C × column slice {
//	                  u64 file size in bytes
//	                  B × { u32 payload CRC32-C, u64 minBits, u64 maxBits }
//	              }
//	            }
//	tail     4  u32 CRC32-C (Castagnoli) of every preceding byte
//
// minBits/maxBits are the zone-map bounds in the container's storage
// encoding (uint64(int64(v))), identical to the ZKC2 directory, so Open
// compares them to BlockInfo without re-deriving anything.

const (
	manifestMagic   = "ZKM1"
	manifestVersion = 1
	manifestPrefix  = "MANIFEST-"
	segPrefix       = "seg-"

	// Decode bounds: generous for any real table, tight enough that a
	// corrupt length field cannot drive allocation wild before the CRC
	// check is reached.
	maxManifestCols = 1 << 12
	maxManifestSegs = 1 << 22
	maxNameLen      = 1 << 10
)

// manifestCRC is the Castagnoli table, matching the ZKC2 container CRCs.
var manifestCRC = crc32.MakeTable(crc32.Castagnoli)

// colSlice is one column's slice of one segment.
type colSlice struct {
	FileSize int64
	CRCs     []uint32 // per block: payload CRC32-C
	MinBits  []uint64 // per block: zone-map min, storage encoding
	MaxBits  []uint64 // per block: zone-map max, storage encoding
}

// segMeta is one segment's manifest entry.
type segMeta struct {
	ID     uint64
	Rows   int64
	Counts []uint32   // rows per block, shared across columns
	Cols   []colSlice // indexed like manifest.Cols
}

// manifest is the decoded form of one committed generation.
type manifest struct {
	Generation  uint64
	Width       int
	BlockValues int
	Rows        int64
	Cols        []string
	Segs        []segMeta
}

// manifestName returns the file name of generation gen. The generation is
// zero-padded for lexicographic niceness in directory listings; parsing
// is numeric, so generations beyond the pad width still work.
func manifestName(gen uint64) string {
	return fmt.Sprintf("%s%08d", manifestPrefix, gen)
}

// parseManifestName extracts the generation from a manifest file name.
func parseManifestName(name string) (uint64, bool) {
	s, ok := strings.CutPrefix(name, manifestPrefix)
	if !ok {
		return 0, false
	}
	gen, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// segFileName returns the file name of column col of segment id.
func segFileName(id uint64, col string) string {
	return fmt.Sprintf("%s%08d-%s.zkc", segPrefix, id, col)
}

// validColName restricts column names to a path-safe charset: they become
// file-name components and manifest fields.
func validColName(name string) error {
	if name == "" {
		return fmt.Errorf("zktable: empty column name")
	}
	if len(name) > maxNameLen {
		return fmt.Errorf("zktable: column name %q too long", name[:32]+"…")
	}
	if name[0] == '.' || name[0] == '-' {
		return fmt.Errorf("zktable: column name %q must not start with %q", name, name[:1])
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
		default:
			return fmt.Errorf("zktable: column name %q holds %q; use letters, digits, '_', '-', '.'", name, r)
		}
	}
	return nil
}

// encode serializes the manifest, CRC included.
func (m *manifest) encode() []byte {
	size := 40
	for _, c := range m.Cols {
		size += 2 + len(c)
	}
	for _, s := range m.Segs {
		size += 8 + 8 + 4 + 4*len(s.Counts)
		size += len(s.Cols) * (8 + 20*len(s.Counts))
	}
	size += 4 // trailing CRC

	buf := make([]byte, 0, size)
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, manifestVersion)
	buf = binary.LittleEndian.AppendUint64(buf, m.Generation)
	buf = append(buf, byte(m.Width), 0, 0, 0)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.BlockValues))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Cols)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Segs)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Rows))
	for _, c := range m.Cols {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c)))
		buf = append(buf, c...)
	}
	for _, s := range m.Segs {
		buf = binary.LittleEndian.AppendUint64(buf, s.ID)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Rows))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Counts)))
		for _, n := range s.Counts {
			buf = binary.LittleEndian.AppendUint32(buf, n)
		}
		for _, cs := range s.Cols {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(cs.FileSize))
			for b := range cs.CRCs {
				buf = binary.LittleEndian.AppendUint32(buf, cs.CRCs[b])
				buf = binary.LittleEndian.AppendUint64(buf, cs.MinBits[b])
				buf = binary.LittleEndian.AppendUint64(buf, cs.MaxBits[b])
			}
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, manifestCRC))
	return buf
}

// manifestReader walks the encoded bytes with running bounds checks.
type manifestReader struct {
	buf []byte
	off int
	err error
}

func (r *manifestReader) need(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: truncated at byte %d", ErrCorruptManifest, r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *manifestReader) u16() uint16 {
	if b := r.need(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *manifestReader) u32() uint32 {
	if b := r.need(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *manifestReader) u64() uint64 {
	if b := r.need(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// decodeManifest parses and validates manifest bytes: structure, field
// ranges, internal consistency (row totals, block counts) and the
// trailing CRC32-C. Any failure wraps ErrCorruptManifest.
func decodeManifest(data []byte) (*manifest, error) {
	if len(data) < 44 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorruptManifest, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, manifestCRC), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("%w: CRC32-C %08x, stored %08x", ErrCorruptManifest, got, want)
	}
	if string(data[:4]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptManifest)
	}
	r := &manifestReader{buf: body, off: 4}
	if v := r.u32(); v != manifestVersion {
		return nil, fmt.Errorf("%w: layout version %d", ErrCorruptManifest, v)
	}
	m := &manifest{Generation: r.u64()}
	wb := r.need(4)
	if r.err != nil {
		return nil, r.err
	}
	m.Width = int(wb[0])
	switch m.Width {
	case 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("%w: element width %d", ErrCorruptManifest, m.Width)
	}
	m.BlockValues = int(r.u32())
	if m.BlockValues <= 0 || m.BlockValues > zukowski.MaxBlockValues {
		return nil, fmt.Errorf("%w: block size %d values", ErrCorruptManifest, m.BlockValues)
	}
	numCols, numSegs := int(r.u32()), int(r.u32())
	if numCols <= 0 || numCols > maxManifestCols {
		return nil, fmt.Errorf("%w: %d columns", ErrCorruptManifest, numCols)
	}
	if numSegs < 0 || numSegs > maxManifestSegs || numSegs*20 > len(body)-r.off {
		return nil, fmt.Errorf("%w: %d segments", ErrCorruptManifest, numSegs)
	}
	m.Rows = int64(r.u64())
	if m.Rows < 0 {
		return nil, fmt.Errorf("%w: negative row total", ErrCorruptManifest)
	}
	m.Cols = make([]string, numCols)
	for i := range m.Cols {
		n := int(r.u16())
		b := r.need(n)
		if r.err != nil {
			return nil, r.err
		}
		m.Cols[i] = string(b)
		if err := validColName(m.Cols[i]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptManifest, err)
		}
	}
	var total int64
	m.Segs = make([]segMeta, numSegs)
	for si := range m.Segs {
		s := &m.Segs[si]
		s.ID = r.u64()
		s.Rows = int64(r.u64())
		nb := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		if s.Rows < 0 || nb < 0 || int64(nb)*int64(m.BlockValues) < s.Rows ||
			4*nb > len(body)-r.off {
			return nil, fmt.Errorf("%w: segment %d: %d rows in %d blocks of %d",
				ErrCorruptManifest, s.ID, s.Rows, nb, m.BlockValues)
		}
		s.Counts = make([]uint32, nb)
		var segRows int64
		for b := range s.Counts {
			s.Counts[b] = r.u32()
			if int(s.Counts[b]) > m.BlockValues || s.Counts[b] == 0 {
				if r.err == nil {
					return nil, fmt.Errorf("%w: segment %d block %d holds %d rows",
						ErrCorruptManifest, s.ID, b, s.Counts[b])
				}
			}
			segRows += int64(s.Counts[b])
		}
		if r.err == nil && segRows != s.Rows {
			return nil, fmt.Errorf("%w: segment %d: block counts sum to %d, header says %d",
				ErrCorruptManifest, s.ID, segRows, s.Rows)
		}
		s.Cols = make([]colSlice, numCols)
		for ci := range s.Cols {
			cs := &s.Cols[ci]
			cs.FileSize = int64(r.u64())
			if cs.FileSize < 0 {
				if r.err == nil {
					return nil, fmt.Errorf("%w: segment %d column %q: negative file size",
						ErrCorruptManifest, s.ID, m.Cols[ci])
				}
			}
			cs.CRCs = make([]uint32, nb)
			cs.MinBits = make([]uint64, nb)
			cs.MaxBits = make([]uint64, nb)
			for b := 0; b < nb; b++ {
				cs.CRCs[b] = r.u32()
				cs.MinBits[b] = r.u64()
				cs.MaxBits[b] = r.u64()
			}
		}
		total += s.Rows
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptManifest, len(body)-r.off)
	}
	if total != m.Rows {
		return nil, fmt.Errorf("%w: segments sum to %d rows, header says %d",
			ErrCorruptManifest, total, m.Rows)
	}
	// Duplicate segment IDs would alias files between entries.
	seen := make(map[uint64]bool, numSegs)
	for i := range m.Segs {
		if seen[m.Segs[i].ID] {
			return nil, fmt.Errorf("%w: duplicate segment id %d", ErrCorruptManifest, m.Segs[i].ID)
		}
		seen[m.Segs[i].ID] = true
	}
	return m, nil
}

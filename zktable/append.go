package zktable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/zukowski"
)

// writeAtomic stages name in a temp file in the table directory, runs
// body against it (through the fault-injection wrapper when one is
// configured), fsyncs, renames into place, and fsyncs the directory —
// the WriteColumnAtomic discipline. Every failure closes and removes the
// temp file, so a torn write leaves at worst a sweepable orphan (when
// the process died before the cleanup ran), never a half-visible file.
func (t *Table[T]) writeAtomic(name string, body func(io.Writer) error) (err error) {
	path := filepath.Join(t.dir, name)
	tmp, err := os.CreateTemp(t.dir, "."+name+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	w := io.Writer(tmp)
	if t.opts.WriteWrapper != nil {
		w = t.opts.WriteWrapper(name, w)
	}
	if err = body(w); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Best effort: not every filesystem supports fsync on a directory.
	if d, derr := os.Open(t.dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// writeColumn writes one segment column container atomically.
func (t *Table[T]) writeColumn(name string, vals []T) error {
	return t.writeAtomic(name, func(w io.Writer) error {
		cw, err := zukowski.NewColumnWriter[T](w, t.codec, t.bv)
		if err != nil {
			return err
		}
		if err := cw.Write(vals); err != nil {
			return err
		}
		return cw.Close()
	})
}

// writeManifest commits one generation atomically.
func (t *Table[T]) writeManifest(m *manifest) error {
	return t.writeAtomic(manifestName(m.Generation), func(w io.Writer) error {
		_, err := w.Write(m.encode())
		return err
	})
}

// loadSegment opens the freshly written segment id, hoists its directory
// statistics into a manifest entry, and builds the serving segment — one
// open for both jobs. wantRows guards against the writer and the reader
// disagreeing about what was just written.
func (t *Table[T]) loadSegment(id uint64, wantRows int64) (seg *segment[T], sm *segMeta, err error) {
	sm = &segMeta{ID: id, Rows: wantRows, Cols: make([]colSlice, len(t.cols))}
	seg = &segment[T]{id: id, rows: wantRows}
	defer func() {
		if err != nil {
			seg.close()
		}
	}()
	var rdOpts []zukowski.ReaderOption
	if t.opts.Retry.MaxAttempts > 1 {
		rdOpts = append(rdOpts, zukowski.WithRetryPolicy(t.opts.Retry))
	}
	for ci, col := range t.cols {
		f, ferr := os.Open(filepath.Join(t.dir, segFileName(id, col)))
		if ferr != nil {
			return seg, sm, ferr
		}
		seg.files = append(seg.files, f)
		st, ferr := f.Stat()
		if ferr != nil {
			return seg, sm, ferr
		}
		var src io.ReaderAt = f
		if t.opts.SourceWrapper != nil {
			src = t.opts.SourceWrapper(src, st.Size())
		}
		cr, ferr := zukowski.OpenColumnReaderAt[T](src, st.Size(), rdOpts...)
		if ferr != nil {
			return seg, sm, fmt.Errorf("column %q: reopening just-written segment: %w", col, ferr)
		}
		if int64(cr.Len()) != wantRows {
			return seg, sm, fmt.Errorf("column %q: wrote %d rows, container holds %d", col, wantRows, cr.Len())
		}
		cs := &sm.Cols[ci]
		cs.FileSize = st.Size()
		nb := cr.NumBlocks()
		if ci == 0 {
			sm.Counts = make([]uint32, nb)
		} else if nb != len(sm.Counts) {
			return seg, sm, fmt.Errorf("column %q: %d blocks, column %q has %d", col, nb, t.cols[0], len(sm.Counts))
		}
		cs.CRCs = make([]uint32, nb)
		cs.MinBits = make([]uint64, nb)
		cs.MaxBits = make([]uint64, nb)
		for b := 0; b < nb; b++ {
			info, berr := cr.BlockInfo(b)
			if berr != nil {
				return seg, sm, berr
			}
			if ci == 0 {
				sm.Counts[b] = uint32(info.Count)
			} else if uint32(info.Count) != sm.Counts[b] {
				return seg, sm, fmt.Errorf("column %q: block %d geometry diverges", col, b)
			}
			cs.CRCs[b] = info.CRC32C
			cs.MinBits[b] = zoneBitsOf(info.Min)
			cs.MaxBits[b] = zoneBitsOf(info.Max)
		}
		if t.cache != nil {
			cr.SetBlockCache(t.cache)
		}
		seg.rdrs = append(seg.rdrs, cr)
	}
	seg.counts = sm.Counts
	seg.set, err = zukowski.NewColumnSet(seg.rdrs...)
	if err != nil {
		return seg, sm, err
	}
	return seg, sm, nil
}

// Append writes cols (one value slice per schema column, equal lengths)
// as a new immutable segment and commits it as the next generation. The
// segment's files are written first and become real only when the new
// manifest references them: a crash at any byte before the manifest
// rename leaves orphans the next Open sweeps, and the table exactly as
// previously committed. Returns the new generation.
//
// Append serializes with other writers; concurrent scans keep running
// against the generation they snapshotted and see the new rows on their
// next scan.
func (t *Table[T]) Append(cols [][]T) (uint64, error) {
	t.ingest.Lock()
	defer t.ingest.Unlock()
	t.mu.RLock()
	closed, man := t.closed, t.man
	t.mu.RUnlock()
	if closed {
		return 0, ErrClosed
	}
	if len(cols) != len(t.cols) {
		return 0, fmt.Errorf("zktable: Append got %d columns, schema has %d", len(cols), len(t.cols))
	}
	n := int64(len(cols[0]))
	if n == 0 {
		return 0, fmt.Errorf("zktable: Append of zero rows")
	}
	for ci := range cols {
		if int64(len(cols[ci])) != n {
			return 0, fmt.Errorf("zktable: column %q holds %d rows, column %q holds %d",
				t.cols[ci], len(cols[ci]), t.cols[0], n)
		}
	}

	id := t.nextSeg
	var written []string
	cleanup := func() {
		for _, name := range written {
			os.Remove(filepath.Join(t.dir, name))
		}
	}
	for ci, col := range t.cols {
		name := segFileName(id, col)
		if err := t.writeColumn(name, cols[ci]); err != nil {
			cleanup()
			return 0, err
		}
		written = append(written, name)
	}
	seg, sm, err := t.loadSegment(id, n)
	if err != nil {
		seg.close()
		cleanup()
		return 0, err
	}
	newMan := &manifest{
		Generation:  man.Generation + 1,
		Width:       man.Width,
		BlockValues: man.BlockValues,
		Rows:        man.Rows + n,
		Cols:        man.Cols,
		Segs:        append(append([]segMeta{}, man.Segs...), *sm),
	}
	if err := t.writeManifest(newMan); err != nil {
		seg.close()
		cleanup()
		return 0, err
	}
	t.publish(newMan, func() {
		t.segs = append(append([]*segment[T]{}, t.segs...), seg)
		t.starts = append(append([]int64{}, t.starts...), t.rows)
		t.rows += n
		t.nextSeg = id + 1
	})
	t.pruneAfterCommit()
	return newMan.Generation, nil
}

// Compact rewrites every live row into one fresh segment and commits a
// generation referencing only it — the defragmentation pass that keeps
// block geometry uniform and zone maps tight after many small appends.
// The protocol is Append's: new files first, then the manifest, so an
// interrupted compaction is invisible. Old segment files linger until
// the manifests referencing them age out of retention. Refuses to run
// with quarantined segments, which would silently drop committed rows.
func (t *Table[T]) Compact() (uint64, error) {
	t.ingest.Lock()
	defer t.ingest.Unlock()
	segs, _, _, rows, err := t.snapshot()
	if err != nil {
		return 0, err
	}
	t.mu.RLock()
	man := t.man
	t.mu.RUnlock()
	for _, s := range segs {
		if s.quar != nil {
			return 0, fmt.Errorf("compact: %w", s.quar)
		}
	}
	if len(segs) <= 1 {
		return man.Generation, nil
	}

	id := t.nextSeg
	var written []string
	cleanup := func() {
		for _, name := range written {
			os.Remove(filepath.Join(t.dir, name))
		}
	}
	vals := make([]T, 0, rows)
	for ci, col := range t.cols {
		vals = vals[:0]
		for _, s := range segs {
			if vals, err = s.rdrs[ci].ReadAll(vals); err != nil {
				cleanup()
				return 0, fmt.Errorf("compact: column %q segment %d: %w", col, s.id, err)
			}
		}
		name := segFileName(id, col)
		if err := t.writeColumn(name, vals); err != nil {
			cleanup()
			return 0, err
		}
		written = append(written, name)
	}
	seg, sm, err := t.loadSegment(id, rows)
	if err != nil {
		seg.close()
		cleanup()
		return 0, err
	}
	newMan := &manifest{
		Generation:  man.Generation + 1,
		Width:       man.Width,
		BlockValues: man.BlockValues,
		Rows:        rows,
		Cols:        man.Cols,
		Segs:        []segMeta{*sm},
	}
	if err := t.writeManifest(newMan); err != nil {
		seg.close()
		cleanup()
		return 0, err
	}
	t.publish(newMan, func() {
		t.retired = append(t.retired, t.segs...)
		t.segs = []*segment[T]{seg}
		t.starts = []int64{0}
		t.nextSeg = id + 1
	})
	t.pruneAfterCommit()
	return newMan.Generation, nil
}

// publish swaps in the new committed state under the write lock. mutate
// runs with the lock held and must replace (never modify) the published
// slices — scans hold snapshots of the old ones.
func (t *Table[T]) publish(newMan *manifest, mutate func()) {
	t.mu.Lock()
	t.man = newMan
	mutate()
	t.mu.Unlock()
	t.recent = append([]*manifest{newMan}, t.recent...)
}

// pruneAfterCommit drops manifests beyond the retention window and
// sweeps segment files no retained manifest references (compacted-away
// segments whose last referencing manifest just aged out). Runs under
// the ingest lock; all removals are best-effort — anything missed is
// swept by the next Open.
func (t *Table[T]) pruneAfterCommit() {
	keep := t.opts.keep()
	if len(t.recent) <= keep {
		return
	}
	drop := t.recent[keep:]
	t.recent = t.recent[:keep:keep]
	for _, m := range drop {
		os.Remove(filepath.Join(t.dir, manifestName(m.Generation)))
	}
	referenced := map[string]bool{}
	for _, m := range t.recent {
		for i := range m.Segs {
			for _, col := range m.Cols {
				referenced[segFileName(m.Segs[i].ID, col)] = true
			}
		}
	}
	ents, err := os.ReadDir(t.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if name := e.Name(); strings.HasPrefix(name, segPrefix) && !referenced[name] {
			os.Remove(filepath.Join(t.dir, name))
		}
	}
}

package zktable

import "errors"

// Typed errors of the table layer. Errors that describe damaged data wrap
// zukowski.ErrCorruptColumn where they arise, so zukowski.IsDataFault and
// the SkipCorrupt machinery classify them like any other data fault.
var (
	// ErrNotTable reports a directory with no MANIFEST-* file at all —
	// not a table, as opposed to a damaged one.
	ErrNotTable = errors.New("zktable: no manifest found")

	// ErrNoUsableManifest reports a directory whose every manifest fails
	// validation: the table exists but no committed generation is
	// readable. Salvaging the segment files by hand may still be possible.
	ErrNoUsableManifest = errors.New("zktable: no usable manifest")

	// ErrCorruptManifest reports manifest bytes that fail validation:
	// truncation, bad magic, a field out of range, internal inconsistency
	// or a CRC32-C mismatch.
	ErrCorruptManifest = errors.New("zktable: corrupt manifest")

	// ErrTableExists reports a Create against a directory that already
	// holds a manifest.
	ErrTableExists = errors.New("zktable: directory already holds a table")

	// ErrSegmentQuarantined reports a scan that touched a segment Open
	// could neither verify nor salvage. Exact scans fail with it; scans
	// under zukowski.SkipCorrupt skip the segment and account the loss.
	ErrSegmentQuarantined = errors.New("zktable: segment quarantined")

	// ErrClosed reports use of a closed table.
	ErrClosed = errors.New("zktable: table closed")
)

package zktable

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/zukowski"
)

// skipQuarantined handles one quarantined segment for a scan configured
// by opts: under zukowski.SkipCorrupt it accounts every committed block
// and row of the segment as lost in the caller's ScanReport and reports
// true (keep scanning); otherwise it reports false and the scan must
// fail with the segment's quarantine error.
func skipQuarantined[T zukowski.Integer](seg *segment[T], opts []zukowski.ScanOption) bool {
	rep, skip := zukowski.ConfiguredSkipCorrupt(opts...)
	if !skip {
		return false
	}
	for _, count := range seg.counts {
		rep.Record(int(count), seg.quar)
	}
	return true
}

// ScanWhereAll runs the conjunctive predicate scan across every segment
// in row order, delivering global row IDs (segment-local IDs offset by
// the rows before the segment). fn returning false stops the scan.
// Options flow straight through to the block engine, so SkipCorrupt,
// WithScanReport and WithRetryPolicy behave exactly as they do on a
// single ColumnSet; quarantined segments fail exact scans with
// ErrSegmentQuarantined and are skipped — with every lost block and row
// recorded — under SkipCorrupt.
func (t *Table[T]) ScanWhereAll(preds []zukowski.Pred[T], fn func(rows []int64, cols [][]T) bool, opts ...zukowski.ScanOption) error {
	return t.ScanWhereAllContext(context.Background(), preds, fn, opts...)
}

// ScanWhereAllContext is ScanWhereAll under a context.
func (t *Table[T]) ScanWhereAllContext(ctx context.Context, preds []zukowski.Pred[T], fn func(rows []int64, cols [][]T) bool, opts ...zukowski.ScanOption) error {
	segs, starts, _, _, err := t.snapshot()
	if err != nil {
		return err
	}
	stopped := false
	for i, seg := range segs {
		if seg.quar != nil {
			if !skipQuarantined(seg, opts) {
				return seg.quar
			}
			continue
		}
		base := starts[i]
		err := seg.set.ScanWhereAllContext(ctx, preds, func(rows []int64, cols [][]T) bool {
			for j := range rows {
				rows[j] += base
			}
			if !fn(rows, cols) {
				stopped = true
				return false
			}
			return true
		}, opts...)
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// ParallelScanWhereAll fans the scan out across segments and across
// blocks within each segment, spending at most workers block-workers in
// total. Like the single-set parallel scan, fn may be called from many
// goroutines concurrently and block/row order is not deterministic;
// block indices are global (the segment's first block is preceded by
// every block of every earlier segment). fn returning false stops the
// whole scan promptly but not instantly.
func (t *Table[T]) ParallelScanWhereAll(preds []zukowski.Pred[T], workers int, fn func(block int, rows []int64, cols [][]T) bool, opts ...zukowski.ScanOption) error {
	return t.ParallelScanWhereAllContext(context.Background(), preds, workers, fn, opts...)
}

// ParallelScanWhereAllContext is ParallelScanWhereAll under a context.
func (t *Table[T]) ParallelScanWhereAllContext(ctx context.Context, preds []zukowski.Pred[T], workers int, fn func(block int, rows []int64, cols [][]T) bool, opts ...zukowski.ScanOption) error {
	segs, starts, _, _, err := t.snapshot()
	if err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	// Global block base per segment, from the committed geometry.
	blockBase := make([]int, len(segs))
	nb := 0
	for i, seg := range segs {
		blockBase[i] = nb
		nb += len(seg.counts)
	}
	live := make([]int, 0, len(segs))
	for i, seg := range segs {
		if seg.quar != nil {
			if !skipQuarantined(seg, opts) {
				return seg.quar
			}
			continue
		}
		live = append(live, i)
	}
	if len(live) == 0 {
		return nil
	}

	// Spread workers over segment-claiming goroutines: segConc segments
	// in flight, each scanned with perSeg block-workers.
	segConc := workers
	if segConc > len(live) {
		segConc = len(live)
	}
	perSeg := workers / segConc
	if perSeg < 1 {
		perSeg = 1
	}

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		stopped  atomic.Bool
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	for g := 0; g < segConc; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(live) || sctx.Err() != nil {
					return
				}
				i := live[k]
				seg, rowBase, blkBase := segs[i], starts[i], blockBase[i]
				err := seg.set.ParallelScanWhereAllContext(sctx, preds, perSeg, func(block int, rows []int64, cols [][]T) bool {
					for j := range rows {
						rows[j] += rowBase
					}
					if !fn(blkBase+block, rows, cols) {
						stopped.Store(true)
						cancel()
						return false
					}
					return true
				}, opts...)
				if err != nil && !(stopped.Load() && err == sctx.Err()) {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil && !stopped.Load() {
		return err
	}
	return nil
}

// AggregateWhereAll computes count/sum/min/max of column col over rows
// matching every predicate, folded across all segments. Quarantine
// semantics match ScanWhereAll.
func (t *Table[T]) AggregateWhereAll(preds []zukowski.Pred[T], col int, opts ...zukowski.ScanOption) (zukowski.Aggregate[T], error) {
	return t.AggregateWhereAllContext(context.Background(), preds, col, opts...)
}

// AggregateWhereAllContext is AggregateWhereAll under a context.
func (t *Table[T]) AggregateWhereAllContext(ctx context.Context, preds []zukowski.Pred[T], col int, opts ...zukowski.ScanOption) (zukowski.Aggregate[T], error) {
	var out zukowski.Aggregate[T]
	segs, _, _, _, err := t.snapshot()
	if err != nil {
		return out, err
	}
	for _, seg := range segs {
		if seg.quar != nil {
			if !skipQuarantined(seg, opts) {
				return out, seg.quar
			}
			continue
		}
		agg, err := seg.set.AggregateWhereAllContext(ctx, preds, col, opts...)
		if err != nil {
			return out, err
		}
		if agg.Count == 0 {
			continue
		}
		if out.Count == 0 {
			out = agg
			continue
		}
		out.Count += agg.Count
		out.Sum += agg.Sum
		if agg.Min < out.Min {
			out.Min = agg.Min
		}
		if agg.Max > out.Max {
			out.Max = agg.Max
		}
	}
	return out, nil
}

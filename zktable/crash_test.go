package zktable_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/faultio"
	"repro/zktable"
	"repro/zukowski"
)

// tornBudget tears the table's write stream after a global byte budget
// spanning files: each file the table stages gets a faultio.Writer whose
// FailAfter is whatever remains of the budget, so one budget value
// deterministically places the tear in the first column, a later column,
// or the manifest. With a huge budget it just meters total bytes.
type tornBudget struct {
	remaining int64
	total     int64
}

func (tb *tornBudget) wrap(_ string, w io.Writer) io.Writer {
	return &faultio.Writer{W: &meteredWriter{tb, w}, FailAfter: tb.remaining}
}

type meteredWriter struct {
	tb *tornBudget
	w  io.Writer
}

func (m *meteredWriter) Write(p []byte) (int, error) {
	n, err := m.w.Write(p)
	m.tb.remaining -= int64(n)
	m.tb.total += int64(n)
	return n, err
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// seedBaseline builds a committed single-segment table to crash against.
func seedBaseline(t *testing.T, rows int) (dir string, baseRows int64) {
	t.Helper()
	dir = filepath.Join(t.TempDir(), "base")
	tb := mustCreate(t, dir, zktable.Options{})
	mustAppend(t, tb, synthCols(100, rows))
	tb.Close()
	return dir, int64(rows)
}

// TestAppendTornWriteMatrix tears an ingest at byte budgets spanning the
// whole write — first column, middle column, manifest — and asserts the
// invariant the commit protocol promises: the previous generation stays
// fully intact, both on the live handle and across a reopen, with zero
// committed-row loss.
func TestAppendTornWriteMatrix(t *testing.T) {
	base, baseRows := seedBaseline(t, 1500)
	next := synthCols(101, 2000)

	// Meter a successful append to learn the total byte cost.
	meter := &tornBudget{remaining: 1 << 62}
	mDir := filepath.Join(t.TempDir(), "meter")
	copyDir(t, base, mDir)
	mtb, _, err := zktable.Open[int64](mDir, zktable.Options{WriteWrapper: meter.wrap})
	if err != nil {
		t.Fatalf("Open meter copy: %v", err)
	}
	if _, err := mtb.Append(next); err != nil {
		t.Fatalf("metered append: %v", err)
	}
	mtb.Close()
	total := meter.total
	if total < 1024 {
		t.Fatalf("metered append wrote only %d bytes", total)
	}

	budgets := []int64{0, 1, 7, 64, 1024, total / 4, total / 2, 3 * total / 4, total - 128, total - 9, total - 1}
	for _, budget := range budgets {
		dir := filepath.Join(t.TempDir(), "crash")
		copyDir(t, base, dir)
		tn := &tornBudget{remaining: budget}
		tb, _, err := zktable.Open[int64](dir, zktable.Options{WriteWrapper: tn.wrap})
		if err != nil {
			t.Fatalf("budget %d: Open: %v", budget, err)
		}
		gen0 := tb.Generation()
		if _, err := tb.Append(next); !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("budget %d: append error = %v, want ErrInjected", budget, err)
		}
		// The live handle still serves the previous generation in full.
		if g := tb.Generation(); g != gen0 {
			t.Fatalf("budget %d: failed append moved generation %d -> %d", budget, gen0, g)
		}
		if got := countRows(t, tb); got != baseRows {
			t.Fatalf("budget %d: live scan saw %d rows, want %d", budget, got, baseRows)
		}
		tb.Close()

		// Recovery after reopen: committed generation intact, no loss, no
		// quarantine, no debris.
		tb2, rep, err := zktable.Open[int64](dir, zktable.Options{})
		if err != nil {
			t.Fatalf("budget %d: reopen: %v", budget, err)
		}
		if rep.Generation != gen0 || rep.Rows != baseRows {
			t.Fatalf("budget %d: reopened at gen %d / %d rows, want %d / %d",
				budget, rep.Generation, rep.Rows, gen0, baseRows)
		}
		if rep.FellBack || len(rep.Quarantined) > 0 || rep.RowsUnavailable != 0 {
			t.Fatalf("budget %d: reopen report %+v", budget, rep)
		}
		if got := countRows(t, tb2); got != baseRows {
			t.Fatalf("budget %d: recovered scan saw %d rows, want %d", budget, got, baseRows)
		}
		tb2.Close()
		fsck, err := zktable.Fsck(dir)
		if err != nil {
			t.Fatalf("budget %d: fsck: %v", budget, err)
		}
		if !fsck.OK() {
			t.Fatalf("budget %d: fsck problems: %v", budget, fsck.Problems)
		}
	}
}

// TestOpenSweepsCrashDebris simulates kill -9 at the two interesting
// moments cleanup never ran: temp files still staged, and segment files
// renamed but the manifest commit missing. Open must sweep both and
// serve the committed generation.
func TestOpenSweepsCrashDebris(t *testing.T) {
	base, baseRows := seedBaseline(t, 1200)

	// Stage debris: a temp from an interrupted atomic write, and a full
	// set of renamed segment files no manifest references (crash between
	// the last column rename and the manifest commit).
	dir := filepath.Join(t.TempDir(), "crashed")
	copyDir(t, base, dir)
	if err := os.WriteFile(filepath.Join(dir, ".seg-00000002-k.zkc.tmp-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Build real orphan segment files by committing to a scratch copy and
	// carrying only the new seg files (not its manifest) back.
	scratch := filepath.Join(t.TempDir(), "scratch")
	copyDir(t, base, scratch)
	stb, _, err := zktable.Open[int64](scratch, zktable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stb.Append(synthCols(102, 600)); err != nil {
		t.Fatal(err)
	}
	stb.Close()
	ents, err := os.ReadDir(scratch)
	if err != nil {
		t.Fatal(err)
	}
	var orphans []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "seg-00000002-") {
			data, err := os.ReadFile(filepath.Join(scratch, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
			orphans = append(orphans, e.Name())
		}
	}
	if len(orphans) != len(testSchema) {
		t.Fatalf("staged %d orphan segment files, want %d", len(orphans), len(testSchema))
	}

	// Fsck (read-only) sees the debris as informational orphans, not damage.
	fsck, err := zktable.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !fsck.OK() {
		t.Fatalf("fsck of crash debris reported problems: %v", fsck.Problems)
	}
	if len(fsck.Orphans) != len(orphans)+1 {
		t.Fatalf("fsck saw %d orphans (%v), want %d", len(fsck.Orphans), fsck.Orphans, len(orphans)+1)
	}

	tb, rep, err := zktable.Open[int64](dir, zktable.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer tb.Close()
	if rep.Rows != baseRows || len(rep.Quarantined) > 0 {
		t.Fatalf("recovery report %+v, want %d rows and no quarantine", rep, baseRows)
	}
	if len(rep.Swept) != len(orphans)+1 {
		t.Fatalf("swept %v, want the temp plus %d orphan files", rep.Swept, len(orphans))
	}
	for _, name := range append(orphans, ".seg-00000002-k.zkc.tmp-123") {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s survived the sweep", name)
		}
	}
	if got := countRows(t, tb); got != baseRows {
		t.Fatalf("scan saw %d rows, want %d", got, baseRows)
	}

	// The swept segment id must not be reused in a way that collides: the
	// next append commits cleanly and scans stay exact.
	mustAppend(t, tb, synthCols(103, 500))
	if got := countRows(t, tb); got != baseRows+500 {
		t.Fatalf("post-recovery append: scan saw %d rows, want %d", got, baseRows+500)
	}
}

// TestManifestCorruptionFallback damages the newest manifest and expects
// Open to fall back to the previous committed generation, report the
// damage, and sweep the now-unreferenced newer segment.
func TestManifestCorruptionFallback(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tbl")
	tb := mustCreate(t, dir, zktable.Options{})
	mustAppend(t, tb, synthCols(110, 1000)) // gen 2
	mustAppend(t, tb, synthCols(111, 800))  // gen 3
	tb.Close()

	manNewest := filepath.Join(dir, "MANIFEST-00000003")
	flipByte(t, manNewest, 40)

	tb2, rep, err := zktable.Open[int64](dir, zktable.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer tb2.Close()
	if !rep.FellBack {
		t.Fatal("report.FellBack = false")
	}
	if len(rep.CorruptManifests) != 1 || rep.CorruptManifests[0] != "MANIFEST-00000003" {
		t.Fatalf("CorruptManifests = %v", rep.CorruptManifests)
	}
	if rep.Generation != 2 || rep.Rows != 1000 {
		t.Fatalf("fell back to gen %d / %d rows, want 2 / 1000", rep.Generation, rep.Rows)
	}
	if got := countRows(t, tb2); got != 1000 {
		t.Fatalf("scan saw %d rows, want 1000", got)
	}
	// The damaged manifest and the segment only it referenced are gone.
	if _, err := os.Stat(manNewest); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("damaged manifest survived the sweep")
	}
	for _, col := range testSchema {
		if _, err := os.Stat(filepath.Join(dir, "seg-00000002-"+col+".zkc")); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("segment file seg-00000002-%s.zkc survived the sweep", col)
		}
	}
	// Writes continue from the fallback generation.
	mustAppend(t, tb2, synthCols(112, 300))
	if g := tb2.Generation(); g != 3 {
		t.Fatalf("post-fallback append committed generation %d, want 3", g)
	}
}

// TestAllManifestsDamaged: every manifest unusable -> ErrNoUsableManifest.
func TestAllManifestsDamaged(t *testing.T) {
	dir, _ := seedBaseline(t, 500)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "MANIFEST-") {
			flipByte(t, filepath.Join(dir, e.Name()), 8)
		}
	}
	_, rep, err := zktable.Open[int64](dir, zktable.Options{})
	if !errors.Is(err, zktable.ErrNoUsableManifest) {
		t.Fatalf("Open = %v, want ErrNoUsableManifest", err)
	}
	if rep == nil || len(rep.CorruptManifests) == 0 {
		t.Fatalf("report %+v lists no corrupt manifests", rep)
	}
	// The segment files are untouched: salvage by hand stays possible.
	if _, err := os.Stat(filepath.Join(dir, "seg-00000001-k.zkc")); err != nil {
		t.Fatalf("segment file gone after failed open: %v", err)
	}
}

// TestSalvageFooterDamage flips a byte in a column container's footer:
// the payload is intact, so RecoverColumn restores the exact committed
// geometry and the segment returns to service with zero loss.
func TestSalvageFooterDamage(t *testing.T) {
	base, baseRows := seedBaseline(t, 1500)
	seg := "seg-00000001-v.zkc"

	damage := func(t *testing.T, dir string) {
		p := filepath.Join(dir, seg)
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		flipByte(t, p, st.Size()-3) // inside the container tail
	}

	// Without Salvage: quarantined, loss accounted exactly.
	dirQ := filepath.Join(t.TempDir(), "q")
	copyDir(t, base, dirQ)
	damage(t, dirQ)
	tbQ, repQ, err := zktable.Open[int64](dirQ, zktable.Options{})
	if err != nil {
		t.Fatalf("Open without salvage: %v", err)
	}
	if len(repQ.Quarantined) != 1 || repQ.RowsUnavailable != baseRows {
		t.Fatalf("report %+v, want 1 quarantined segment / %d rows unavailable", repQ, baseRows)
	}
	if err := tbQ.ScanWhereAll(nil, func([]int64, [][]int64) bool { return true }); !errors.Is(err, zktable.ErrSegmentQuarantined) {
		t.Fatalf("exact scan over quarantine = %v, want ErrSegmentQuarantined", err)
	}
	tbQ.Close()

	// With Salvage: healed in place, zero loss.
	dirS := filepath.Join(t.TempDir(), "s")
	copyDir(t, base, dirS)
	damage(t, dirS)
	tbS, repS, err := zktable.Open[int64](dirS, zktable.Options{Salvage: true})
	if err != nil {
		t.Fatalf("Open with salvage: %v", err)
	}
	defer tbS.Close()
	if len(repS.Salvaged) != 1 || repS.Salvaged[0] != 1 {
		t.Fatalf("Salvaged = %v, want [1]", repS.Salvaged)
	}
	if len(repS.Quarantined) != 0 || repS.RowsUnavailable != 0 {
		t.Fatalf("salvage left quarantine: %+v", repS)
	}
	if got := countRows(t, tbS); got != baseRows {
		t.Fatalf("salvaged scan saw %d rows, want %d", got, baseRows)
	}
	fsck, err := zktable.Fsck(dirS)
	if err != nil || !fsck.OK() {
		t.Fatalf("fsck after salvage: %v / %+v", err, fsck)
	}
}

// TestQuarantineDegradedScan truncates one column of the middle segment:
// salvage cannot restore the committed geometry, so the segment stays
// quarantined; exact scans fail, SkipCorrupt scans return every surviving
// row and account the loss to the block and row.
func TestQuarantineDegradedScan(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tbl")
	tb := mustCreate(t, dir, zktable.Options{})
	segA, segB, segC := synthCols(120, 900), synthCols(121, 1300), synthCols(122, 700)
	mustAppend(t, tb, segA)
	mustAppend(t, tb, segB)
	mustAppend(t, tb, segC)
	tb.Close()

	victim := filepath.Join(dir, "seg-00000002-d.zkc")
	st, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, st.Size()-200); err != nil {
		t.Fatal(err)
	}

	tb2, rep, err := zktable.Open[int64](dir, zktable.Options{Salvage: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer tb2.Close()
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Seg != 2 {
		t.Fatalf("Quarantined = %+v, want segment 2", rep.Quarantined)
	}
	if rep.RowsUnavailable != 1300 {
		t.Fatalf("RowsUnavailable = %d, want 1300", rep.RowsUnavailable)
	}

	// Exact scans refuse.
	err = tb2.ScanWhereAll(nil, func([]int64, [][]int64) bool { return true })
	if !errors.Is(err, zktable.ErrSegmentQuarantined) {
		t.Fatalf("exact scan = %v, want ErrSegmentQuarantined", err)
	}
	if _, err := tb2.AggregateWhereAll(nil, 0); !errors.Is(err, zktable.ErrSegmentQuarantined) {
		t.Fatalf("exact aggregate = %v, want ErrSegmentQuarantined", err)
	}

	// Degraded scans return the survivors and account the loss exactly.
	srep := &zukowski.ScanReport{}
	var got int64
	err = tb2.ScanWhereAll(nil, func(rows []int64, _ [][]int64) bool {
		got += int64(len(rows))
		return true
	}, zukowski.SkipCorrupt(srep))
	if err != nil {
		t.Fatalf("degraded scan: %v", err)
	}
	if got != 900+700 {
		t.Fatalf("degraded scan saw %d rows, want %d", got, 900+700)
	}
	if srep.RowsLost != 1300 {
		t.Fatalf("RowsLost = %d, want 1300", srep.RowsLost)
	}
	wantBlocks := (1300 + testBV - 1) / testBV
	if srep.BlocksSkipped != wantBlocks {
		t.Fatalf("BlocksSkipped = %d, want %d", srep.BlocksSkipped, wantBlocks)
	}
	if !errors.Is(srep.FirstErr, zktable.ErrSegmentQuarantined) {
		t.Fatalf("FirstErr = %v", srep.FirstErr)
	}

	// Parallel degraded scan agrees.
	prep := &zukowski.ScanReport{}
	var pn atomic.Int64
	err = tb2.ParallelScanWhereAll(nil, 4, func(_ int, rows []int64, _ [][]int64) bool {
		pn.Add(int64(len(rows)))
		return true
	}, zukowski.SkipCorrupt(prep))
	if err != nil {
		t.Fatalf("parallel degraded scan: %v", err)
	}
	if pn.Load() != 900+700 {
		t.Fatalf("parallel degraded scan saw %d rows, want %d", pn.Load(), 900+700)
	}
	if prep.RowsLost != 1300 {
		t.Fatalf("parallel RowsLost = %d, want 1300", prep.RowsLost)
	}

	// Compact refuses to silently drop the quarantined rows.
	if _, err := tb2.Compact(); !errors.Is(err, zktable.ErrSegmentQuarantined) {
		t.Fatalf("Compact over quarantine = %v, want ErrSegmentQuarantined", err)
	}

	// Fsck names the damage.
	fsck, err := zktable.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fsck.OK() {
		t.Fatal("fsck passed a table with a truncated segment column")
	}
}

func TestFsckDetectsPayloadRot(t *testing.T) {
	dir, _ := seedBaseline(t, 2000)
	fsck, err := zktable.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !fsck.OK() {
		t.Fatalf("clean table: %v", fsck.Problems)
	}
	wantBlocks := len(testSchema) * ((2000 + testBV - 1) / testBV)
	if fsck.BlocksVerified != wantBlocks {
		t.Fatalf("BlocksVerified = %d, want %d", fsck.BlocksVerified, wantBlocks)
	}

	// Flip one payload byte mid-file. The container directory still
	// matches the manifest (spot checks pass; a plain Open succeeds), but
	// the full walk recomputes payload CRCs and catches it.
	flipByte(t, filepath.Join(dir, "seg-00000001-v.zkc"), 100)
	fsck2, err := zktable.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fsck2.OK() {
		t.Fatal("fsck missed a flipped payload byte")
	}
	found := false
	for _, p := range fsck2.Problems {
		if strings.Contains(p, `column "v"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems %v do not name the damaged column", fsck2.Problems)
	}
}

func TestPeekAndIsTableDir(t *testing.T) {
	dir, baseRows := seedBaseline(t, 800)
	if !zktable.IsTableDir(dir) {
		t.Fatal("IsTableDir(table) = false")
	}
	if zktable.IsTableDir(t.TempDir()) {
		t.Fatal("IsTableDir(empty) = true")
	}
	info, err := zktable.Peek(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 2 || info.Rows != baseRows || info.Segments != 1 ||
		info.WidthBytes != 8 || info.BlockValues != testBV {
		t.Fatalf("Peek = %+v", info)
	}
	if len(info.Columns) != len(testSchema) || info.Columns[0] != "k" {
		t.Fatalf("Peek columns = %v", info.Columns)
	}
}

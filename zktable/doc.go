// Package zktable stores one table as a directory of immutable
// column-segment files bound together by a versioned, checksummed
// manifest — the multi-file durability layer between the zukowski column
// engine and anything that must survive kill -9 mid-ingest.
//
// # Layout
//
// A table directory holds three kinds of files:
//
//   - MANIFEST-<generation>: the table's committed state, a small binary
//     object (see manifest.go for the byte layout) naming every live
//     segment and hoisting its row counts, per-block zone maps and
//     payload CRC32-Cs. Queries prune across files without opening them,
//     and Open cross-checks every segment against the hoisted copy.
//   - seg-<id>-<column>.zkc: one column of one segment, an ordinary
//     ZKC2 container (immutable once referenced by a manifest).
//   - .*.tmp-*: in-flight atomic writes; any that survive a crash are
//     orphans and are swept by the next Open.
//
// # Commit protocol
//
// Append writes every column of the new segment with the
// WriteColumnAtomic discipline (temp file in the table directory, fsync
// file, rename, fsync directory), then commits by writing
// MANIFEST-<generation+1> the same way. Segment files are invisible —
// mere orphans — until a manifest generation references them, so a crash
// at any byte of an ingest leaves the previous generation fully intact:
// either the new manifest rename happened (the commit is durable and
// complete) or it did not (the new files are swept and the table reopens
// exactly as before). Compact follows the same protocol with a single
// replacement segment.
//
// # Recovery
//
// Open picks the highest-generation manifest that parses and passes its
// CRC32-C, falling back to older retained generations when newer ones
// are damaged. It then sweeps temp files, manifests beyond the retention
// window, and segment files no retained manifest references; opens and
// spot-verifies every referenced segment against the manifest (file
// size, geometry, per-block CRCs and zone maps); and — per Options —
// salvages damaged segments via zukowski.RecoverColumn or quarantines
// them with exact loss accounting. Quarantined segments fail exact scans
// with ErrSegmentQuarantined; scans running under zukowski.SkipCorrupt
// skip them and record every lost block and row in the caller's
// ScanReport, the same contract the block engine applies within a
// segment. Fsck performs the full read-only walk (every payload CRC of
// every block) for ops; segdump -fsck exposes it on the command line.
//
// # Concurrency
//
// A Table serializes writers (Append, Compact) and publishes each commit
// atomically under a read lock that scans take only long enough to
// snapshot the segment list, so scans run against a consistent committed
// generation while ingest proceeds — ingest-while-scanning is safe and
// race-clean by construction.
package zktable

package zktable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/zukowski"
)

// Options configures a table handle. The zero value is a working default:
// automatic per-block codec choice, no retries, no fault injection, no
// salvage, two retained manifest generations.
type Options struct {
	// Codec names the registered codec used to encode appended segments;
	// empty lets the writer pick per block (Auto).
	Codec string

	// Retry makes every segment column reader retry transient source-read
	// failures (see zukowski.RetryPolicy). The zero value disables retries.
	Retry zukowski.RetryPolicy

	// SourceWrapper interposes on the raw io.ReaderAt of every opened
	// segment file — the fault-injection seam (faultio.NewReaderAt).
	SourceWrapper func(r io.ReaderAt, size int64) io.ReaderAt

	// WriteWrapper interposes on the byte stream of every file the table
	// writes (segment columns and manifests); name is the file's final
	// name in the table directory. Crash tests tear the stream with
	// faultio.Writer at chosen byte budgets.
	WriteWrapper func(name string, w io.Writer) io.Writer

	// Salvage lets Open rewrite a segment column that fails verification
	// via zukowski.RecoverColumn before giving up on the segment. Only a
	// salvage that restores the exact committed geometry (every block,
	// count, checksum and zone map the manifest hoists) returns the
	// segment to service; anything short of that leaves it quarantined,
	// because serving a shortened segment would silently drop committed
	// rows from exact scans.
	Salvage bool

	// KeepManifests is how many manifest generations stay on disk: the
	// current one plus fallbacks for when it is later damaged. Values
	// below 2 mean 2.
	KeepManifests int

	// ReadOnly makes Open purely observational: no orphan sweep, no
	// manifest pruning, no salvage writes. Fsck opens tables this way.
	ReadOnly bool
}

func (o *Options) keep() int { return max(o.KeepManifests, 2) }

// SegmentFault describes one segment Open could not return to service.
type SegmentFault struct {
	Seg  uint64 // segment id
	Rows int64  // committed rows now unavailable to exact scans
	Err  error  // the verification failure, wrapping ErrSegmentQuarantined
}

// OpenReport says what startup recovery found and did.
type OpenReport struct {
	Generation uint64 // the committed generation served
	Rows       int64  // rows in that generation
	Segments   int

	// FellBack is set when a manifest newer than the served generation
	// existed but failed validation.
	FellBack         bool
	CorruptManifests []string // manifest files that failed validation
	Swept            []string // orphan/temp/stale files removed
	Salvaged         []uint64 // segment ids healed via RecoverColumn
	Quarantined      []SegmentFault
	RowsUnavailable  int64 // rows in quarantined segments
}

// segment is one committed segment: its open column readers and the
// ColumnSet scans run against, or — when quarantined — the reason it is
// out of service.
type segment[T zukowski.Integer] struct {
	id     uint64
	rows   int64
	counts []uint32 // rows per block (from the manifest)
	files  []io.Closer
	rdrs   []*zukowski.ColumnReader[T]
	set    *zukowski.ColumnSet[T]
	quar   error // non-nil: unavailable, wraps ErrSegmentQuarantined
}

func (s *segment[T]) close() {
	for _, f := range s.files {
		f.Close()
	}
	s.files = nil
}

// Table is an open table directory. One writer at a time (Append,
// Compact serialize internally); any number of concurrent scans, each
// running against the committed generation it snapshotted.
type Table[T zukowski.Integer] struct {
	dir   string
	opts  Options
	codec zukowski.Codec[T]
	cols  []string
	bv    int // blockValues

	ingest sync.Mutex // serializes Append and Compact end to end

	mu      sync.RWMutex // guards the published state below
	man     *manifest
	segs    []*segment[T]
	starts  []int64 // starts[i] = first global row of segs[i]
	rows    int64
	nextSeg uint64
	retired []*segment[T] // replaced by Compact; closed on Close
	cache   zukowski.BlockCache
	closed  bool

	// recent holds the retained manifest generations, newest first —
	// the pruning window. Touched only single-threaded (Create/Open) or
	// under the ingest lock.
	recent []*manifest
}

// widthOf is T's element width in bytes.
func widthOf[T zukowski.Integer]() int {
	switch any(*new(T)).(type) {
	case int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32:
		return 4
	default:
		return 8
	}
}

// Create initializes dir as an empty table of the named columns and
// commits generation 1. blockValues <= 0 uses the writer default. The
// directory is created if missing; a directory that already holds a
// manifest is refused with ErrTableExists.
func Create[T zukowski.Integer](dir string, cols []string, blockValues int, opts Options) (*Table[T], error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("zktable: a table needs at least one column")
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if err := validColName(c); err != nil {
			return nil, err
		}
		if seen[c] {
			return nil, fmt.Errorf("zktable: duplicate column %q", c)
		}
		seen[c] = true
	}
	if blockValues <= 0 {
		blockValues = zukowski.DefaultBlockValues
	}
	if blockValues > zukowski.MaxBlockValues {
		return nil, fmt.Errorf("zktable: block size %d exceeds %d values", blockValues, zukowski.MaxBlockValues)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if _, ok := parseManifestName(e.Name()); ok {
			return nil, fmt.Errorf("%w: %s", ErrTableExists, filepath.Join(dir, e.Name()))
		}
	}
	t, err := newTable[T](dir, opts)
	if err != nil {
		return nil, err
	}
	t.cols = append([]string(nil), cols...)
	t.bv = blockValues
	t.man = &manifest{
		Generation:  1,
		Width:       widthOf[T](),
		BlockValues: blockValues,
		Cols:        t.cols,
	}
	t.nextSeg = 1
	if err := t.writeManifest(t.man); err != nil {
		return nil, err
	}
	t.recent = []*manifest{t.man}
	return t, nil
}

func newTable[T zukowski.Integer](dir string, opts Options) (*Table[T], error) {
	t := &Table[T]{dir: dir, opts: opts}
	if opts.Codec != "" {
		c, err := zukowski.Lookup[T](opts.Codec)
		if err != nil {
			return nil, err
		}
		t.codec = c
	}
	return t, nil
}

// Open opens dir and runs startup recovery: pick the newest manifest
// that validates (falling back across damaged ones), sweep files no
// retained manifest references, open and spot-verify every committed
// segment against the manifest's hoisted statistics, and salvage or
// quarantine segments that fail. The report says exactly what happened;
// err is non-nil only when no committed generation is servable at all.
func Open[T zukowski.Integer](dir string, opts Options) (*Table[T], *OpenReport, error) {
	t, err := newTable[T](dir, opts)
	if err != nil {
		return nil, nil, err
	}
	rep := &OpenReport{}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type manFile struct {
		gen  uint64
		name string
	}
	var manFiles []manFile
	for _, e := range ents {
		if gen, ok := parseManifestName(e.Name()); ok && !e.IsDir() {
			manFiles = append(manFiles, manFile{gen, e.Name()})
		}
	}
	if len(manFiles) == 0 {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotTable, dir)
	}
	sort.Slice(manFiles, func(i, j int) bool { return manFiles[i].gen > manFiles[j].gen })

	// Newest valid manifest wins; older valid ones are retained as
	// fallbacks and pin their segment files against the sweep.
	var chosen *manifest
	retained := map[string]bool{}
	referenced := map[string]bool{}
	for _, mf := range manFiles {
		if chosen != nil && len(retained) >= t.opts.keep() {
			break
		}
		data, rerr := os.ReadFile(filepath.Join(dir, mf.name))
		var m *manifest
		if rerr == nil {
			m, rerr = decodeManifest(data)
		}
		if rerr == nil && m.Generation != mf.gen {
			rerr = fmt.Errorf("%w: file %s holds generation %d", ErrCorruptManifest, mf.name, m.Generation)
		}
		if rerr != nil {
			rep.CorruptManifests = append(rep.CorruptManifests, mf.name)
			if chosen == nil {
				rep.FellBack = true
			}
			continue
		}
		retained[mf.name] = true
		t.recent = append(t.recent, m)
		for _, s := range m.Segs {
			for _, col := range m.Cols {
				referenced[segFileName(s.ID, col)] = true
			}
		}
		if chosen == nil {
			chosen = m
		}
	}
	if chosen == nil {
		rep.FellBack = false
		return nil, rep, fmt.Errorf("%w: %s (%d manifests, all damaged)", ErrNoUsableManifest, dir, len(manFiles))
	}
	if w := widthOf[T](); chosen.Width != w {
		return nil, rep, fmt.Errorf("zktable: %s stores %d-byte elements, opened as %d-byte", dir, chosen.Width, w)
	}
	rep.Generation = chosen.Generation
	rep.Rows = chosen.Rows
	rep.Segments = len(chosen.Segs)

	// Sweep: temp files from interrupted atomic writes, manifests beyond
	// the retention window (including damaged ones), and segment files no
	// retained manifest references — the debris of crashed ingests and
	// compactions. Read-only opens just look.
	if !t.opts.ReadOnly {
		for _, e := range ents {
			name := e.Name()
			var sweep bool
			switch {
			case strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-"):
				sweep = true
			case strings.HasPrefix(name, manifestPrefix):
				sweep = !retained[name]
			case strings.HasPrefix(name, segPrefix):
				sweep = !referenced[name]
			}
			if sweep {
				if err := os.Remove(filepath.Join(dir, name)); err == nil {
					rep.Swept = append(rep.Swept, name)
				}
			}
		}
	}

	t.man = chosen
	t.cols = chosen.Cols
	t.bv = chosen.BlockValues
	t.rows = chosen.Rows
	t.nextSeg = 1
	for i := range chosen.Segs {
		if id := chosen.Segs[i].ID; id >= t.nextSeg {
			t.nextSeg = id + 1
		}
	}

	for si := range chosen.Segs {
		sm := &chosen.Segs[si]
		seg, err := t.openSegment(sm)
		if err != nil && t.opts.Salvage && !t.opts.ReadOnly {
			if serr := t.salvageSegment(sm); serr == nil {
				if seg, err = t.openSegment(sm); err == nil {
					rep.Salvaged = append(rep.Salvaged, sm.ID)
				}
			}
		}
		if err != nil {
			quar := fmt.Errorf("%w: segment %d: %w", ErrSegmentQuarantined, sm.ID, err)
			seg = &segment[T]{id: sm.ID, rows: sm.Rows, counts: sm.Counts, quar: quar}
			rep.Quarantined = append(rep.Quarantined, SegmentFault{Seg: sm.ID, Rows: sm.Rows, Err: quar})
			rep.RowsUnavailable += sm.Rows
		}
		t.starts = append(t.starts, t.rowsBefore())
		t.segs = append(t.segs, seg)
	}
	return t, rep, nil
}

// rowsBefore is the global row offset of the next segment to be placed.
func (t *Table[T]) rowsBefore() int64 {
	if n := len(t.segs); n > 0 {
		return t.starts[n-1] + t.segs[n-1].rows
	}
	return 0
}

// openSegment opens every column of one committed segment and
// cross-checks it against the manifest's hoisted statistics: file size,
// row total, block geometry, per-block payload CRC32-C and zone maps.
// The check reads only directory metadata — payload verification stays
// lazy (per-block CRC on first read) or explicit (Fsck). Errors wrap
// zukowski.ErrCorruptColumn via their cause wherever the data itself is
// at fault.
func (t *Table[T]) openSegment(sm *segMeta) (seg *segment[T], err error) {
	seg = &segment[T]{id: sm.ID, rows: sm.Rows, counts: sm.Counts}
	defer func() {
		if err != nil {
			seg.close()
		}
	}()
	var rdOpts []zukowski.ReaderOption
	if t.opts.Retry.MaxAttempts > 1 {
		rdOpts = append(rdOpts, zukowski.WithRetryPolicy(t.opts.Retry))
	}
	for ci, col := range t.cols {
		path := filepath.Join(t.dir, segFileName(sm.ID, col))
		f, ferr := os.Open(path)
		if ferr != nil {
			return seg, fmt.Errorf("column %q: %w", col, ferr)
		}
		seg.files = append(seg.files, f)
		st, ferr := f.Stat()
		if ferr != nil {
			return seg, fmt.Errorf("column %q: %w", col, ferr)
		}
		cs := &sm.Cols[ci]
		if st.Size() != cs.FileSize {
			return seg, fmt.Errorf("column %q: %w: file is %d bytes, manifest committed %d",
				col, zukowski.ErrCorruptColumn, st.Size(), cs.FileSize)
		}
		var src io.ReaderAt = f
		if t.opts.SourceWrapper != nil {
			src = t.opts.SourceWrapper(src, st.Size())
		}
		cr, ferr := zukowski.OpenColumnReaderAt[T](src, st.Size(), rdOpts...)
		if ferr != nil {
			return seg, fmt.Errorf("column %q: %w", col, ferr)
		}
		if ferr := verifyAgainstManifest(cr, sm, ci); ferr != nil {
			return seg, fmt.Errorf("column %q: %w", col, ferr)
		}
		if t.cache != nil {
			cr.SetBlockCache(t.cache)
		}
		seg.rdrs = append(seg.rdrs, cr)
	}
	seg.set, err = zukowski.NewColumnSet(seg.rdrs...)
	if err != nil {
		return seg, err
	}
	return seg, nil
}

// verifyAgainstManifest spot-checks an opened column reader against the
// manifest's hoisted copy of its directory. The container's own footer
// CRC already verified on open; this detects a *different* container
// than the one committed — a swapped, regenerated or in-place-salvaged
// file whose self-consistent directory no longer matches the manifest.
func verifyAgainstManifest[T zukowski.Integer](cr *zukowski.ColumnReader[T], sm *segMeta, ci int) error {
	cs := &sm.Cols[ci]
	if cr.NumBlocks() != len(sm.Counts) {
		return fmt.Errorf("%w: container holds %d blocks, manifest committed %d",
			zukowski.ErrCorruptColumn, cr.NumBlocks(), len(sm.Counts))
	}
	if int64(cr.Len()) != sm.Rows {
		return fmt.Errorf("%w: container holds %d rows, manifest committed %d",
			zukowski.ErrCorruptColumn, cr.Len(), sm.Rows)
	}
	for b := 0; b < cr.NumBlocks(); b++ {
		info, err := cr.BlockInfo(b)
		if err != nil {
			return err
		}
		if uint32(info.Count) != sm.Counts[b] {
			return fmt.Errorf("%w: block %d holds %d rows, manifest committed %d",
				zukowski.ErrCorruptColumn, b, info.Count, sm.Counts[b])
		}
		if !info.HasChecksum || info.CRC32C != cs.CRCs[b] {
			return fmt.Errorf("%w: block %d payload CRC %08x, manifest committed %08x",
				zukowski.ErrChecksumMismatch, b, info.CRC32C, cs.CRCs[b])
		}
		if !info.HasZoneMap || zoneBitsOf(info.Min) != cs.MinBits[b] || zoneBitsOf(info.Max) != cs.MaxBits[b] {
			return fmt.Errorf("%w: block %d zone map diverges from manifest",
				zukowski.ErrCorruptColumn, b)
		}
	}
	return nil
}

// zoneBitsOf is the storage encoding of a zone-map bound, matching the
// ZKC2 directory and the manifest.
func zoneBitsOf[T zukowski.Integer](v T) uint64 { return uint64(int64(v)) }

// salvageSegment rewrites every column file of sm through
// zukowski.RecoverColumn (readable-prefix recovery with a rebuilt
// footer). It repairs footer-level damage losslessly; whether the result
// matches the committed geometry is for openSegment to re-judge.
func (t *Table[T]) salvageSegment(sm *segMeta) error {
	for _, col := range t.cols {
		path := filepath.Join(t.dir, segFileName(sm.ID, col))
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		_, rerr := zukowski.RecoverColumnFile[T](f, st.Size(), path)
		f.Close()
		if rerr != nil {
			return rerr
		}
	}
	return nil
}

// snapshot returns the published state scans run against. The slices are
// never mutated after publication (commits replace them wholesale), so
// holding them outside the lock is safe.
func (t *Table[T]) snapshot() (segs []*segment[T], starts []int64, gen uint64, rows int64, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return nil, nil, 0, 0, ErrClosed
	}
	return t.segs, t.starts, t.man.Generation, t.rows, nil
}

// Generation returns the committed generation scans currently see.
func (t *Table[T]) Generation() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.man.Generation
}

// Rows returns the committed row count, including quarantined segments.
func (t *Table[T]) Rows() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Columns returns the column names in schema order.
func (t *Table[T]) Columns() []string { return append([]string(nil), t.cols...) }

// BlockValues returns the writer block size rows are segmented into.
func (t *Table[T]) BlockValues() int { return t.bv }

// Dir returns the table directory.
func (t *Table[T]) Dir() string { return t.dir }

// NumSegments returns the committed segment count.
func (t *Table[T]) NumSegments() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.segs)
}

// SegmentRows returns segment i's committed row count and first global
// row.
func (t *Table[T]) SegmentRows(i int) (rows, firstRow int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.segs[i].rows, t.starts[i]
}

// SegmentBlockRows returns segment i's committed per-block row counts,
// from the manifest — available even for quarantined segments, so
// serving layers can account losses block by block.
func (t *Table[T]) SegmentBlockRows(i int) []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]int, len(t.segs[i].counts))
	for b, c := range t.segs[i].counts {
		out[b] = int(c)
	}
	return out
}

// SegmentReaders returns segment i's open column readers in schema
// order, or the quarantine error when the segment is out of service. The
// readers stay valid until Close; serving layers build their own views
// on top of them.
func (t *Table[T]) SegmentReaders(i int) ([]*zukowski.ColumnReader[T], error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= len(t.segs) {
		return nil, fmt.Errorf("zktable: segment %d not in [0,%d)", i, len(t.segs))
	}
	if t.segs[i].quar != nil {
		return nil, t.segs[i].quar
	}
	return t.segs[i].rdrs, nil
}

// QuarantinedSegments lists the segments Open left out of service.
func (t *Table[T]) QuarantinedSegments() []SegmentFault {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []SegmentFault
	for _, s := range t.segs {
		if s.quar != nil {
			out = append(out, SegmentFault{Seg: s.id, Rows: s.rows, Err: s.quar})
		}
	}
	return out
}

// SetBlockCache attaches a hot-block cache to every current and future
// segment reader (see zukowski.BlockCache). Pass nil to detach.
func (t *Table[T]) SetBlockCache(c zukowski.BlockCache) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cache = c
	for _, s := range t.segs {
		for _, cr := range s.rdrs {
			cr.SetBlockCache(c)
		}
	}
}

// Close releases every open segment file. Scans and writers must have
// drained; a scan started after Close fails with ErrClosed.
func (t *Table[T]) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	for _, s := range t.segs {
		s.close()
	}
	for _, s := range t.retired {
		s.close()
	}
	return nil
}

var _ io.Closer = (*Table[int64])(nil)

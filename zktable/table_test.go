package zktable_test

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/zktable"
	"repro/zukowski"
)

const testBV = 512

var testSchema = []string{"k", "v", "d"}

// synthCols builds one segment's worth of data: a near-sorted key column
// and two payload columns, deterministic in seed.
func synthCols(seed int64, rows int) [][]int64 {
	rng := rand.New(rand.NewSource(seed))
	c0 := make([]int64, rows)
	c1 := make([]int64, rows)
	c2 := make([]int64, rows)
	acc := int64(0)
	for i := 0; i < rows; i++ {
		acc += rng.Int63n(3)
		c0[i] = acc
		c1[i] = rng.Int63n(1000)
		c2[i] = rng.Int63n(64) - 32
	}
	return [][]int64{c0, c1, c2}
}

// appendAll concatenates per-segment column data into whole-table columns.
func appendAll(segs ...[][]int64) [][]int64 {
	out := make([][]int64, len(testSchema))
	for _, seg := range segs {
		for ci := range seg {
			out[ci] = append(out[ci], seg[ci]...)
		}
	}
	return out
}

func mustCreate(t *testing.T, dir string, opts zktable.Options) *zktable.Table[int64] {
	t.Helper()
	tb, err := zktable.Create[int64](dir, testSchema, testBV, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return tb
}

func mustAppend(t *testing.T, tb *zktable.Table[int64], cols [][]int64) uint64 {
	t.Helper()
	gen, err := tb.Append(cols)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return gen
}

// scanOracle filters whole-table columns directly — the reference the
// scans must match.
func scanOracle(cols [][]int64, preds []zukowski.Pred[int64]) (rows []int64, want [][]int64) {
	want = make([][]int64, len(cols))
	for i := int64(0); i < int64(len(cols[0])); i++ {
		ok := true
		for _, p := range preds {
			v := cols[p.Col][i]
			if v < p.Lo || v > p.Hi {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, i)
			for ci := range cols {
				want[ci] = append(want[ci], cols[ci][i])
			}
		}
	}
	return rows, want
}

func countRows(t *testing.T, tb *zktable.Table[int64], opts ...zukowski.ScanOption) int64 {
	t.Helper()
	var n int64
	err := tb.ScanWhereAll(nil, func(rows []int64, _ [][]int64) bool {
		n += int64(len(rows))
		return true
	}, opts...)
	if err != nil {
		t.Fatalf("ScanWhereAll: %v", err)
	}
	return n
}

func TestCreateAppendScanRoundtrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tbl")
	tb := mustCreate(t, dir, zktable.Options{})
	if got := tb.Generation(); got != 1 {
		t.Fatalf("fresh table generation = %d, want 1", got)
	}

	segA, segB, segC := synthCols(1, 1500), synthCols(2, 700), synthCols(3, 2100)
	if gen := mustAppend(t, tb, segA); gen != 2 {
		t.Fatalf("first append generation = %d, want 2", gen)
	}
	mustAppend(t, tb, segB)
	if gen := mustAppend(t, tb, segC); gen != 4 {
		t.Fatalf("third append generation = %d, want 4", gen)
	}
	all := appendAll(segA, segB, segC)
	total := int64(len(all[0]))
	if got := tb.Rows(); got != total {
		t.Fatalf("Rows = %d, want %d", got, total)
	}

	preds := []zukowski.Pred[int64]{{Col: 1, Lo: 100, Hi: 600}, {Col: 2, Lo: -10, Hi: 20}}
	wantRows, wantCols := scanOracle(all, preds)
	var gotRows []int64
	gotCols := make([][]int64, len(all))
	err := tb.ScanWhereAll(preds, func(rows []int64, cols [][]int64) bool {
		gotRows = append(gotRows, rows...)
		for ci := range cols {
			gotCols[ci] = append(gotCols[ci], cols[ci]...)
		}
		return true
	})
	if err != nil {
		t.Fatalf("ScanWhereAll: %v", err)
	}
	if len(gotRows) != len(wantRows) {
		t.Fatalf("scan returned %d rows, oracle %d", len(gotRows), len(wantRows))
	}
	for i := range gotRows {
		if gotRows[i] != wantRows[i] {
			t.Fatalf("row %d: got id %d, want %d", i, gotRows[i], wantRows[i])
		}
		for ci := range gotCols {
			if gotCols[ci][i] != wantCols[ci][i] {
				t.Fatalf("row %d col %d: got %d, want %d", i, ci, gotCols[ci][i], wantCols[ci][i])
			}
		}
	}

	// Aggregates fold across segments.
	agg, err := tb.AggregateWhereAll(preds, 1)
	if err != nil {
		t.Fatalf("AggregateWhereAll: %v", err)
	}
	var wantAgg zukowski.Aggregate[int64]
	for i, v := range wantCols[1] {
		wantAgg.Count++
		wantAgg.Sum += v
		if i == 0 || v < wantAgg.Min {
			wantAgg.Min = v
		}
		if i == 0 || v > wantAgg.Max {
			wantAgg.Max = v
		}
	}
	if agg != wantAgg {
		t.Fatalf("aggregate = %+v, want %+v", agg, wantAgg)
	}

	// Early stop.
	calls := 0
	if err := tb.ScanWhereAll(nil, func(rows []int64, _ [][]int64) bool {
		calls++
		return false
	}); err != nil {
		t.Fatalf("early-stop scan: %v", err)
	}
	if calls != 1 {
		t.Fatalf("stopped scan delivered %d times, want 1", calls)
	}
	tb.Close()

	// Reopen: clean recovery, same data.
	tb2, rep, err := zktable.Open[int64](dir, zktable.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer tb2.Close()
	if rep.FellBack || len(rep.CorruptManifests) > 0 || len(rep.Quarantined) > 0 {
		t.Fatalf("clean reopen reported trouble: %+v", rep)
	}
	if rep.Generation != 4 || rep.Rows != total {
		t.Fatalf("reopened at generation %d with %d rows, want 4 / %d", rep.Generation, rep.Rows, total)
	}
	if got := countRows(t, tb2); got != total {
		t.Fatalf("reopened scan saw %d rows, want %d", got, total)
	}
}

func TestParallelScanWhereAllEquivalence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tbl")
	tb := mustCreate(t, dir, zktable.Options{})
	defer tb.Close()
	segA, segB := synthCols(10, 3000), synthCols(11, 1800)
	mustAppend(t, tb, segA)
	mustAppend(t, tb, segB)
	all := appendAll(segA, segB)

	preds := []zukowski.Pred[int64]{{Col: 1, Lo: 0, Hi: 750}}
	wantRows, _ := scanOracle(all, preds)

	var mu sync.Mutex
	var gotRows []int64
	blocks := map[int]bool{}
	err := tb.ParallelScanWhereAll(preds, 4, func(block int, rows []int64, cols [][]int64) bool {
		mu.Lock()
		gotRows = append(gotRows, rows...)
		blocks[block] = true
		mu.Unlock()
		return true
	})
	if err != nil {
		t.Fatalf("ParallelScanWhereAll: %v", err)
	}
	sort.Slice(gotRows, func(i, j int) bool { return gotRows[i] < gotRows[j] })
	if len(gotRows) != len(wantRows) {
		t.Fatalf("parallel scan returned %d rows, oracle %d", len(gotRows), len(wantRows))
	}
	for i := range gotRows {
		if gotRows[i] != wantRows[i] {
			t.Fatalf("sorted row %d: got %d, want %d", i, gotRows[i], wantRows[i])
		}
	}
	// Global block indices must be distinct across segments.
	nb := (len(segA[0])+testBV-1)/testBV + (len(segB[0])+testBV-1)/testBV
	for b := range blocks {
		if b < 0 || b >= nb {
			t.Fatalf("block index %d outside [0,%d)", b, nb)
		}
	}

	// Early stop terminates promptly and without error.
	var fired atomic.Int64
	if err := tb.ParallelScanWhereAll(nil, 4, func(_ int, rows []int64, _ [][]int64) bool {
		fired.Add(1)
		return false
	}); err != nil {
		t.Fatalf("early-stop parallel scan: %v", err)
	}
	if fired.Load() == 0 {
		t.Fatal("early-stop parallel scan never delivered")
	}
}

func TestCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tbl")
	tb := mustCreate(t, dir, zktable.Options{})
	defer tb.Close()
	segs := [][][]int64{synthCols(20, 900), synthCols(21, 1300), synthCols(22, 400)}
	for _, s := range segs {
		mustAppend(t, tb, s)
	}
	all := appendAll(segs...)
	total := int64(len(all[0]))
	genBefore := tb.Generation()

	gen, err := tb.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if gen != genBefore+1 {
		t.Fatalf("compact generation = %d, want %d", gen, genBefore+1)
	}
	if tb.NumSegments() != 1 {
		t.Fatalf("after compact: %d segments, want 1", tb.NumSegments())
	}
	if got := countRows(t, tb); got != total {
		t.Fatalf("after compact: scan saw %d rows, want %d", got, total)
	}
	// Scans still match the oracle on the compacted layout.
	preds := []zukowski.Pred[int64]{{Col: 2, Lo: 0, Hi: 31}}
	wantRows, _ := scanOracle(all, preds)
	var got int64
	if err := tb.ScanWhereAll(preds, func(rows []int64, _ [][]int64) bool {
		got += int64(len(rows))
		return true
	}); err != nil {
		t.Fatalf("post-compact scan: %v", err)
	}
	if got != int64(len(wantRows)) {
		t.Fatalf("post-compact predicate scan saw %d rows, oracle %d", got, len(wantRows))
	}

	// Two more commits age the pre-compaction manifests out of retention;
	// their segment files must be swept from disk.
	mustAppend(t, tb, synthCols(23, 300))
	mustAppend(t, tb, synthCols(24, 300))
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segFiles := 0
	for _, e := range ents {
		if len(e.Name()) > 4 && e.Name()[:4] == "seg-" {
			segFiles++
		}
	}
	// 3 live segments × 3 columns; nothing from before the compaction.
	if segFiles != 9 {
		t.Fatalf("%d segment files on disk after retention aged out, want 9", segFiles)
	}
}

// TestTableConcurrentIngestScan appends while scans run. Every scan must
// observe exactly one committed generation's row total — never a torn
// in-between state. Runs under -race at -cpu=1,4 in CI.
func TestTableConcurrentIngestScan(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tbl")
	tb := mustCreate(t, dir, zktable.Options{})
	defer tb.Close()
	mustAppend(t, tb, synthCols(30, 800))

	// Every total a scan may legally observe is known up front: the
	// publication is atomic, so anything else is a torn snapshot.
	const appends = 6
	committed := map[int64]bool{800: true}
	for i, rows := 0, int64(800); i < appends; i++ {
		rows += int64(300 + 100*i)
		committed[rows] = true
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < appends; i++ {
			if _, err := tb.Append(synthCols(int64(31+i), 300+100*i)); err != nil {
				t.Errorf("concurrent append: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var n int64
				var err error
				if g == 0 {
					err = tb.ParallelScanWhereAll(nil, 4, func(_ int, rows []int64, _ [][]int64) bool {
						atomic.AddInt64(&n, int64(len(rows)))
						return true
					})
				} else {
					err = tb.ScanWhereAll(nil, func(rows []int64, _ [][]int64) bool {
						n += int64(len(rows))
						return true
					})
				}
				if err != nil {
					t.Errorf("concurrent scan: %v", err)
					return
				}
				if !committed[n] {
					t.Errorf("scan saw %d rows: not a committed total", n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := countRows(t, tb); got != 800+300+400+500+600+700+800 {
		t.Fatalf("final rows = %d", got)
	}
}

func TestAppendValidation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tbl")
	tb := mustCreate(t, dir, zktable.Options{})
	defer tb.Close()
	if _, err := tb.Append([][]int64{{1}, {2}}); err == nil {
		t.Fatal("Append with wrong column count succeeded")
	}
	if _, err := tb.Append([][]int64{{1, 2}, {3}, {4, 5}}); err == nil {
		t.Fatal("Append with ragged columns succeeded")
	}
	if _, err := tb.Append([][]int64{{}, {}, {}}); err == nil {
		t.Fatal("Append of zero rows succeeded")
	}
	if gen := tb.Generation(); gen != 1 {
		t.Fatalf("failed appends moved generation to %d", gen)
	}
}

func TestOpenErrors(t *testing.T) {
	empty := t.TempDir()
	if _, _, err := zktable.Open[int64](empty, zktable.Options{}); !errors.Is(err, zktable.ErrNotTable) {
		t.Fatalf("Open of empty dir: %v, want ErrNotTable", err)
	}

	dir := filepath.Join(t.TempDir(), "tbl")
	tb := mustCreate(t, dir, zktable.Options{})
	mustAppend(t, tb, synthCols(40, 500))
	tb.Close()

	if _, err := zktable.Create[int64](dir, testSchema, testBV, zktable.Options{}); !errors.Is(err, zktable.ErrTableExists) {
		t.Fatalf("Create over existing table: %v, want ErrTableExists", err)
	}
	if _, _, err := zktable.Open[int32](dir, zktable.Options{}); err == nil {
		t.Fatal("Open with wrong element width succeeded")
	}

	tb2, _, err := zktable.Open[int64](dir, zktable.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	tb2.Close()
	if err := tb2.ScanWhereAll(nil, func([]int64, [][]int64) bool { return true }); !errors.Is(err, zktable.ErrClosed) {
		t.Fatalf("scan after close: %v, want ErrClosed", err)
	}
	if _, err := tb2.Append(synthCols(41, 10)); !errors.Is(err, zktable.ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

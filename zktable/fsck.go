package zktable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/zukowski"
)

// Info is a table directory's identity, read from the manifest alone —
// cheap enough to call before deciding how (or whether) to open.
type Info struct {
	Generation  uint64
	WidthBytes  int // element width: 1, 2, 4 or 8
	BlockValues int
	Rows        int64
	Segments    int
	Columns     []string
}

// IsTableDir reports whether dir exists and holds at least one
// MANIFEST-* file — possibly a damaged one; Peek or Open judge that.
func IsTableDir(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if _, ok := parseManifestName(e.Name()); ok && !e.IsDir() {
			return true
		}
	}
	return false
}

// manifestsOnDisk decodes every MANIFEST-* file in dir. It returns the
// newest valid manifest (the generation recovery would serve), the names
// of files that failed validation, whether a damaged manifest outranked
// the chosen one, and the set of segment files referenced by any valid
// manifest. err is non-nil only when dir is unreadable, holds no
// manifest at all (ErrNotTable), or none validates (ErrNoUsableManifest).
func manifestsOnDisk(dir string) (chosen *manifest, corrupt []string, fellBack bool, referenced map[string]bool, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, false, nil, err
	}
	type manFile struct {
		gen  uint64
		name string
	}
	var manFiles []manFile
	for _, e := range ents {
		if gen, ok := parseManifestName(e.Name()); ok && !e.IsDir() {
			manFiles = append(manFiles, manFile{gen, e.Name()})
		}
	}
	if len(manFiles) == 0 {
		return nil, nil, false, nil, fmt.Errorf("%w: %s", ErrNotTable, dir)
	}
	sort.Slice(manFiles, func(i, j int) bool { return manFiles[i].gen > manFiles[j].gen })
	referenced = map[string]bool{}
	for _, mf := range manFiles {
		data, rerr := os.ReadFile(filepath.Join(dir, mf.name))
		var m *manifest
		if rerr == nil {
			m, rerr = decodeManifest(data)
		}
		if rerr == nil && m.Generation != mf.gen {
			rerr = fmt.Errorf("%w: file %s holds generation %d", ErrCorruptManifest, mf.name, m.Generation)
		}
		if rerr != nil {
			corrupt = append(corrupt, mf.name)
			if chosen == nil {
				fellBack = true
			}
			continue
		}
		for _, s := range m.Segs {
			for _, col := range m.Cols {
				referenced[segFileName(s.ID, col)] = true
			}
		}
		if chosen == nil {
			chosen = m
		}
	}
	if chosen == nil {
		return nil, corrupt, false, referenced,
			fmt.Errorf("%w: %s (%d manifests, all damaged)", ErrNoUsableManifest, dir, len(manFiles))
	}
	return chosen, corrupt, fellBack, referenced, nil
}

// Peek reads a table directory's identity without opening any segment.
func Peek(dir string) (Info, error) {
	m, _, _, _, err := manifestsOnDisk(dir)
	if err != nil {
		return Info{}, err
	}
	return Info{
		Generation:  m.Generation,
		WidthBytes:  m.Width,
		BlockValues: m.BlockValues,
		Rows:        m.Rows,
		Segments:    len(m.Segs),
		Columns:     append([]string(nil), m.Cols...),
	}, nil
}

// FsckReport is the result of a full offline consistency walk.
type FsckReport struct {
	Dir        string
	Generation uint64 // generation that was checked (the one Open would serve)
	Rows       int64
	Segments   int
	Columns    []string

	// BlocksVerified counts block payloads whose CRC32-C was recomputed
	// and matched, across all columns of all segments.
	BlocksVerified int

	// CorruptManifests lists manifest files that failed validation. Each
	// is also a Problem: manifests are only ever written whole (rename is
	// the commit point), so a damaged one on disk means bit rot, not an
	// interrupted write.
	CorruptManifests []string

	// Orphans lists temp files and unreferenced segment files —
	// informational, the normal debris of a crash, swept by the next
	// writable Open.
	Orphans []string

	// Problems lists every integrity violation found. Empty means the
	// served generation is fully intact: every committed row readable,
	// every block payload matching its committed checksum.
	Problems []string
}

// OK reports whether the walk found the served generation fully intact.
func (r *FsckReport) OK() bool { return len(r.Problems) == 0 }

// Fsck runs a full offline consistency check of a table directory: pick
// the manifest Open would serve, then read every block of every column
// of every committed segment and verify payload CRC32-Cs, block
// geometry and zone maps against the manifest's hoisted statistics. The
// walk is strictly read-only — nothing is swept, salvaged or rewritten —
// so it is safe on a live table and on a just-crashed directory.
// err is non-nil only when no generation is checkable at all; damage in
// a checkable table comes back in the report.
func Fsck(dir string) (*FsckReport, error) {
	man, corrupt, _, referenced, err := manifestsOnDisk(dir)
	if err != nil {
		return nil, err
	}
	rep := &FsckReport{
		Dir:              dir,
		Generation:       man.Generation,
		Rows:             man.Rows,
		Segments:         len(man.Segs),
		Columns:          append([]string(nil), man.Cols...),
		CorruptManifests: corrupt,
	}
	for _, name := range corrupt {
		rep.Problems = append(rep.Problems, fmt.Sprintf("manifest %s failed validation", name))
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-"):
			rep.Orphans = append(rep.Orphans, name)
		case strings.HasPrefix(name, segPrefix) && !referenced[name]:
			rep.Orphans = append(rep.Orphans, name)
		}
	}

	switch man.Width {
	case 1:
		fsckSegments[int8](dir, man, rep)
	case 2:
		fsckSegments[int16](dir, man, rep)
	case 4:
		fsckSegments[int32](dir, man, rep)
	case 8:
		fsckSegments[int64](dir, man, rep)
	default:
		rep.Problems = append(rep.Problems, fmt.Sprintf("manifest element width %d unsupported", man.Width))
	}
	return rep, nil
}

// fsckSegments walks every committed segment of man, verifying each
// column container in full against the manifest.
func fsckSegments[T zukowski.Integer](dir string, man *manifest, rep *FsckReport) {
	for si := range man.Segs {
		sm := &man.Segs[si]
		for ci, col := range man.Cols {
			problem := func(err error) {
				rep.Problems = append(rep.Problems,
					fmt.Sprintf("segment %d column %q: %v", sm.ID, col, err))
			}
			path := filepath.Join(dir, segFileName(sm.ID, col))
			f, err := os.Open(path)
			if err != nil {
				problem(err)
				continue
			}
			st, err := f.Stat()
			if err != nil {
				f.Close()
				problem(err)
				continue
			}
			if st.Size() != sm.Cols[ci].FileSize {
				f.Close()
				problem(fmt.Errorf("file is %d bytes, manifest committed %d", st.Size(), sm.Cols[ci].FileSize))
				continue
			}
			cr, err := zukowski.OpenColumnReaderAt[T](f, st.Size())
			if err != nil {
				f.Close()
				problem(err)
				continue
			}
			if err := verifyAgainstManifest(cr, sm, ci); err != nil {
				f.Close()
				problem(err)
				continue
			}
			for b := 0; b < cr.NumBlocks(); b++ {
				if err := cr.VerifyBlock(b); err != nil {
					problem(fmt.Errorf("block %d: %w", b, err))
					continue
				}
				rep.BlocksVerified++
			}
			f.Close()
		}
	}
}

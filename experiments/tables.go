package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/columnbm"
	"repro/internal/iomodel"
	"repro/internal/report"
	"repro/internal/simcpu"
	"repro/internal/tpch"
)

// Table1 reprints the published TPC-H 100GB hardware-cost table (the
// paper's motivation: 61-78% of system price is disks).
func Table1(w io.Writer) {
	tbl := report.NewTable("Table 1: TPC-H 100GB component cost (published data)",
		"CPUs", "RAM", "disks", "disk share")
	tbl.Row("4x Power5 1650MHz (9%)", "32GB (13%)", "42x36GB = 1.6TB", "78%")
	tbl.Row("4x Itanium2 1500MHz (24%)", "32GB (15%)", "112x18GB = 1.9TB", "61%")
	tbl.Row("4x Xeon MP 2800MHz (25%)", "4GB (3%)", "74x18GB = 1.2TB", "72%")
	tbl.Row("4x Xeon MP 2000MHz (30%)", "8GB (7%)", "85x18GB = 1.6TB", "63%")
	tbl.Print(w)
}

// RAIDConfig describes one simulated I/O subsystem of Table 2.
type RAIDConfig struct {
	Name          string
	BandwidthMBps float64
}

// The paper's two machines: a 4-disk RAID (~80MB/s) and a 12-disk RAID
// (~350MB/s).
var (
	LowEndRAID = RAIDConfig{"4-disk RAID", 80}
	MidEndRAID = RAIDConfig{"12-disk RAID", 350}
)

// QueryRun is one measured query execution.
type QueryRun struct {
	Query      string
	Ratio      float64       // compression ratio of the data the query scans
	DecSpeed   float64       // MB/s of uncompressed data produced by decompression
	CPUTime    time.Duration // wall time of processing incl. decompression
	Decompress time.Duration // wall time inside decompression
	IOTime     time.Duration // virtual disk time for the bytes read
	Total      time.Duration // max(CPU, IO): overlapped I/O model
}

// IOStall returns the time the CPU would wait on the disk.
func (r QueryRun) IOStall() time.Duration {
	if r.IOTime > r.CPUTime {
		return r.IOTime - r.CPUTime
	}
	return 0
}

// TPCHConfig is one (layout, compression) configuration over a dataset.
type TPCHConfig struct {
	DS       *tpch.Dataset
	Disk     *columnbm.Disk
	Tables   map[string]*columnbm.Table
	Layout   columnbm.Layout
	Compress bool
}

// BuildTPCH generates and stores a dataset configuration.
func BuildTPCH(sf float64, layout columnbm.Layout, compress bool, raid RAIDConfig) *TPCHConfig {
	ds := tpch.Generate(sf, 42)
	disk := columnbm.NewDisk(raid.BandwidthMBps)
	tables := tpch.Store(ds, disk, layout, compress, 128*1024)
	return &TPCHConfig{DS: ds, Disk: disk, Tables: tables, Layout: layout, Compress: compress}
}

// RunQuery executes one query cold (fresh buffer manager) and returns its
// measurements. bufBytes models the paper's 4GB RAM, scaled.
func (cfg *TPCHConfig) RunQuery(q string, bufBytes int64, mode columnbm.DecompressMode) QueryRun {
	run, _ := cfg.RunQueryResult(q, bufBytes, mode)
	return run
}

// RunQueryResult is RunQuery keeping the query's materialized result, so
// harnesses can cross-check configurations against each other.
func (cfg *TPCHConfig) RunQueryResult(q string, bufBytes int64, mode columnbm.DecompressMode) (QueryRun, [][]int64) {
	db := tpch.NewDB(cfg.DS, cfg.Disk, cfg.Tables, bufBytes, mode)
	cfg.Disk.ResetStats()
	db.ResetStats()

	start := time.Now()
	res := tpch.Queries[q](db)
	cpu := time.Since(start)

	run := QueryRun{
		Query:      q,
		CPUTime:    cpu,
		Decompress: db.DecompressTime(),
		IOTime:     cfg.Disk.ReadTime(),
	}
	run.Total = run.CPUTime
	if run.IOTime > run.Total {
		run.Total = run.IOTime
	}
	// Per-query compression ratio over the columns the query scans.
	var unc, comp int64
	for rel, cols := range tpch.ScanColumns[q] {
		t := cfg.Tables[rel]
		r := cfg.DS.Rel(rel)
		idx := make([]int, len(cols))
		for i, c := range cols {
			idx[i] = r.Col(c)
		}
		comp += t.ScanBytes(idx)
		if cfg.Layout == columnbm.DSM {
			unc += int64(r.Rows()) * int64(len(cols)) * 8
		} else {
			unc += int64(r.Rows()) * int64(len(r.Cols)) * 8
		}
	}
	if comp > 0 {
		run.Ratio = float64(unc) / float64(comp)
	}
	if d := run.Decompress.Seconds(); d > 0 {
		run.DecSpeed = float64(unc) / d / 1e6
	}
	return run, res
}

// Table2 reproduces Table 2: per-query compression ratios, decompression
// speed, and runtimes for DSM and PAX, uncompressed and compressed, on one
// RAID configuration. Every configuration's result is compared against
// the uncompressed DSM run; the number of diverging (query, config)
// pairs is returned, zero when all four paths agree on every query.
func Table2(w io.Writer, sf float64, raid RAIDConfig, bufBytes int64) int {
	tbl := report.NewTable(
		fmt.Sprintf("Table 2: TPC-H SF-%g on %s (times in ms; unc=uncompressed, compr=compressed)", sf, raid.Name),
		"query", "DSM ratio", "PAX ratio", "dec.speed MB/s",
		"DSM unc", "DSM compr", "PAX unc", "PAX compr", "DSM speedup", "match")

	dsmU := BuildTPCH(sf, columnbm.DSM, false, raid)
	dsmC := BuildTPCH(sf, columnbm.DSM, true, raid)
	paxU := BuildTPCH(sf, columnbm.PAX, false, raid)
	paxC := BuildTPCH(sf, columnbm.PAX, true, raid)

	diverged := 0
	for _, q := range tpch.QueryOrder {
		du, want := dsmU.RunQueryResult(q, bufBytes, columnbm.VectorWise)
		dc, dcRes := dsmC.RunQueryResult(q, bufBytes, columnbm.VectorWise)
		pu, puRes := paxU.RunQueryResult(q, bufBytes, columnbm.VectorWise)
		pc, pcRes := paxC.RunQueryResult(q, bufBytes, columnbm.VectorWise)
		speedup := 0.0
		if dc.Total > 0 {
			speedup = float64(du.Total) / float64(dc.Total)
		}
		match := true
		for _, res := range [][][]int64{dcRes, puRes, pcRes} {
			if !tpch.ResultsEqual(res, want) {
				match = false
				diverged++
			}
		}
		tbl.Row(q, dc.Ratio, pc.Ratio, dc.DecSpeed,
			ms(du.Total), ms(dc.Total), ms(pu.Total), ms(pc.Total), speedup, match)
	}
	tbl.Print(w)
	return diverged
}

// Table3 reproduces Table 3: I/O-RAM (page-wise) versus RAM-CPU cache
// (vector-wise) decompression on queries 3, 4, 6 and 18 — query time plus
// the L2 misses of a simulated replay of each mode's traffic pattern.
func Table3(w io.Writer, sf float64, raid RAIDConfig, bufBytes int64) {
	tbl := report.NewTable("Table 3: page-wise vs vector-wise decompression",
		"query", "page-wise ms", "pw L2 misses (M)", "vector-wise ms", "vw L2 misses (M)")

	cfg := BuildTPCH(sf, columnbm.DSM, true, raid)
	for _, q := range []string{"03", "04", "06", "18"} {
		pw := cfg.RunQuery(q, bufBytes, columnbm.PageWise)
		vw := cfg.RunQuery(q, bufBytes, columnbm.VectorWise)

		// Replay each mode's memory traffic through the cache model,
		// sized by the bytes the query actually scanned.
		var unc int64
		for rel, cols := range tpch.ScanColumns[q] {
			unc += int64(cfg.DS.Rel(rel).Rows()) * int64(len(cols)) * 8
		}
		ratio := pw.Ratio
		if ratio <= 0 {
			ratio = 1
		}
		pwSim := simcpu.ReplayPagewiseDecompress(simcpu.NewHierarchy(), int(unc), ratio)
		vwSim := simcpu.ReplayVectorwiseDecompress(simcpu.NewHierarchy(), int(unc), 64<<10, ratio)
		tbl.Row(q, ms(pw.CPUTime), float64(pwSim.L2Misses)/1e6,
			ms(vw.CPUTime), float64(vwSim.L2Misses)/1e6)
	}
	tbl.Print(w)
}

// Fig8 reproduces Figure 8: per-query time split into decompression, other
// CPU, and I/O stalls, normalized to the uncompressed run.
func Fig8(w io.Writer, sf float64, raid RAIDConfig, layout columnbm.Layout, bufBytes int64) {
	tbl := report.NewTable(
		fmt.Sprintf("Figure 8: time split on %s, %s (%% of uncompressed query time)", raid.Name, layout),
		"query", "unc total ms", "compr total ms",
		"decompress %", "processing %", "IO stall %", "total %")

	unc := BuildTPCH(sf, layout, false, raid)
	com := BuildTPCH(sf, layout, true, raid)
	for _, q := range tpch.QueryOrder {
		u := unc.RunQuery(q, bufBytes, columnbm.VectorWise)
		c := com.RunQuery(q, bufBytes, columnbm.VectorWise)
		base := float64(u.Total)
		if base == 0 {
			continue
		}
		dec := 100 * float64(c.Decompress) / base
		proc := 100 * float64(c.CPUTime-c.Decompress) / base
		stall := 100 * float64(c.IOStall()) / base
		tbl.Row(q, ms(u.Total), ms(c.Total), dec, proc, stall,
			100*float64(c.Total)/base)
	}
	tbl.Print(w)
}

// ModelCheck prints equation 3.1 predictions next to a measured
// configuration, connecting the analytic model to the harness.
func ModelCheck(w io.Writer, raid RAIDConfig, ratio, qMBps, cMBps float64) {
	tbl := report.NewTable("Equation 3.1 check", "quantity", "value")
	r, ioBound := iomodel.ResultBandwidth(iomodel.Params{B: raid.BandwidthMBps, R: ratio, Q: qMBps, C: cMBps})
	regime := "CPU bound"
	if ioBound {
		regime = "I/O bound"
	}
	tbl.Row("result bandwidth MB/s", r)
	tbl.Row("regime", regime)
	tbl.Row("speedup vs uncompressed", iomodel.SpeedupFromCompression(iomodel.Params{B: raid.BandwidthMBps, R: ratio, Q: qMBps, C: cMBps}))
	tbl.Print(w)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

package experiments

import (
	"io"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/simcpu"
	"repro/internal/tpch"
)

// Budget is the per-measurement timing budget; raise it for steadier
// numbers, lower it for quick runs.
var Budget = 100 * time.Millisecond

// Fig2 reproduces Figure 2: compression ratio, compression speed and
// decompression speed of the byte-stream compressors versus PFOR on four
// TPC-H lineitem columns. DEFLATE stands in for zlib and the semi-static
// Huffman coder for bzip2 (DESIGN.md §3).
func Fig2(w io.Writer, sf float64) {
	ds := tpch.Generate(sf, 1)
	li := ds.Rel(tpch.Lineitem)
	columns := []string{"l_orderkey", "l_linenumber", "l_commitdate", "l_extendedprice"}

	tbl := report.NewTable("Figure 2: compression algorithms on TPC-H columns",
		"column", "codec", "ratio", "comp MB/s", "dec MB/s")
	codecs := []baseline.ByteCodec{baseline.Flate{}, baseline.Huffman{}, baseline.LZRW1{}, baseline.LZW{}}

	for _, colName := range columns {
		vals := li.Column(colName)
		raw := int64sToBytes(vals)

		for _, codec := range codecs {
			enc := codec.Compress(nil, raw)
			compSecs := TimeIt(Budget, func() { codec.Compress(enc[:0], raw) })
			decBuf, err := codec.Decompress(nil, enc)
			if err != nil {
				panic(err)
			}
			decSecs := TimeIt(Budget, func() { codec.Decompress(decBuf[:0], enc) })
			tbl.Row(colName, codec.Name(),
				float64(len(raw))/float64(len(enc)),
				MBps(len(raw), compSecs), MBps(len(raw), decSecs))
		}

		// PFOR family at analyzer-chosen parameters.
		choice := core.Choose(core.Sample(vals, core.DefaultSampleSize))
		if choice.Scheme == core.SchemeNone {
			choice = core.AnalyzePFOR(vals)
		}
		blk := choice.Compress(vals)
		compSecs := TimeIt(Budget, func() { choice.Compress(vals) })
		var d DecompressOnce
		d.Run(blk)
		decSecs := TimeIt(Budget, func() { d.Run(blk) })
		tbl.Row(colName, choice.Scheme.String(),
			float64(len(raw))/float64(blk.CompressedBytes()),
			MBps(len(raw), compSecs), MBps(len(raw), decSecs))
	}
	tbl.Print(w)
}

// Fig4 reproduces Figure 4: decompression bandwidth (measured) and branch
// miss rate (simulated) as a function of the exception rate, for the NAIVE
// escape scheme versus patched PFOR and PDICT.
func Fig4(w io.Writer, n int) {
	rng := rand.New(rand.NewSource(4))
	s := report.NewSeries("Figure 4: decompression vs exception rate",
		"exc_rate", "NAIVE MB/s", "PFOR MB/s", "PDICT MB/s", "NAIVE miss%", "PFOR miss%")
	raw := make([]uint32, n)
	out := make([]int64, n)
	var d core.Decoder[int64]

	for _, rate := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0} {
		vals := SynthPFOR(rng, n, 8, rate)
		nb := core.CompressNaive(vals, 0, 8)
		pb := core.CompressPFOR(vals, 0, 8)
		dvals, dict := SynthDict(rng, n, 8, rate)
		db := core.CompressPDict(dvals, dict, 8)

		naiveSecs := TimeIt(Budget, func() { nb.Decompress(raw, out) })
		pforSecs := TimeIt(Budget, func() { d.Decompress(pb, out) })
		pdictSecs := TimeIt(Budget, func() { d.Decompress(db, out) })

		bytes := 8 * n
		s.Point(rate,
			MBps(bytes, naiveSecs), MBps(bytes, pforSecs), MBps(bytes, pdictSecs),
			100*simcpu.ReplayNaiveDecompress(nb).MissRate(),
			100*simcpu.ReplayPatchedDecompress(pb).MissRate())
	}
	s.Print(w)
}

// Fig5 reproduces Figure 5: compression bandwidth as a function of the
// exception rate for the branchy (NAIVE), predicated (PRED) and
// double-cursor (DC) detection loops, plus their simulated branch miss
// rates.
func Fig5(w io.Writer, n int) {
	rng := rand.New(rand.NewSource(5))
	s := report.NewSeries("Figure 5: compression vs exception rate",
		"exc_rate", "NAIVE MB/s", "PRED MB/s", "DC MB/s", "NAIVE miss%", "PRED miss%")

	for _, rate := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0} {
		vals := SynthPFOR(rng, n, 8, rate)
		naiveSecs := TimeIt(Budget, func() { core.CompressPFORNaive(vals, 0, 8) })
		predSecs := TimeIt(Budget, func() { core.CompressPFORPred(vals, 0, 8) })
		dcSecs := TimeIt(Budget, func() { core.CompressPFOR(vals, 0, 8) })

		flags := make([]bool, n)
		window := int64(1) << 8
		for i, v := range vals {
			flags[i] = v >= window
		}
		bytes := 8 * n
		s.Point(rate,
			MBps(bytes, naiveSecs), MBps(bytes, predSecs), MBps(bytes, dcSecs),
			100*simcpu.ReplayNaiveCompress(flags).MissRate(),
			100*simcpu.ReplayPredicatedCompress(n).MissRate())
	}
	s.Print(w)
}

// Fig6 reproduces Figure 6: the effective exception rate E' as a function
// of the data exception rate E for small bit widths — both the analytic
// curve and the rate actually measured from the compressor.
func Fig6(w io.Writer, n int) {
	rng := rand.New(rand.NewSource(6))
	s := report.NewSeries("Figure 6: compulsory exceptions",
		"E", "E'(b=1)", "E'(b=2)", "E'(b=3)", "E'(b=4)", "measured(b=2)")

	for _, e := range []float64{0, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3} {
		vals := SynthPFOR(rng, n, 2, e)
		blk := core.CompressPFOR(vals, 0, 2)
		s.Point(e,
			core.CompulsoryExceptionRate(e, 1),
			core.CompulsoryExceptionRate(e, 2),
			core.CompulsoryExceptionRate(e, 3),
			core.CompulsoryExceptionRate(e, 4),
			blk.ExceptionRate())
	}
	s.Print(w)
}

// Fig7 reproduces Figure 7: I/O-RAM (page-wise) versus RAM-CPU cache
// (vector-wise) PFOR decompression — measured wall-clock bandwidth plus
// the simulated L2 miss rates of the two traffic patterns.
func Fig7(w io.Writer, pageValues int) {
	rng := rand.New(rand.NewSource(7))
	s := report.NewSeries("Figure 7: I/O-RAM vs RAM-CPU cache decompression",
		"exc_rate", "page-wise MB/s", "vector-wise MB/s", "pw L2miss%", "vw L2miss%")

	const vector = 8192 // values per vector: 64KB of int64, cache resident
	pageOut := make([]int64, pageValues)
	vecOut := make([]int64, vector)
	sink := int64(0)
	var d core.Decoder[int64]

	for _, rate := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0} {
		vals := SynthPFOR(rng, pageValues, 8, rate)
		// One block per vector so both modes decode identical units.
		var blocks []*core.Block[int64]
		for lo := 0; lo < pageValues; lo += vector {
			blocks = append(blocks, core.CompressPFOR(vals[lo:min(lo+vector, pageValues)], 0, 8))
		}

		// Page-wise: decompress the whole page into a RAM-sized buffer,
		// then the "query" reads it back from RAM.
		pwSecs := TimeIt(Budget, func() {
			for i, blk := range blocks {
				d.Decompress(blk, pageOut[i*vector:i*vector+blk.N])
			}
			for _, v := range pageOut {
				sink += v
			}
		})
		// Vector-wise: decompress one cache-resident vector at a time and
		// consume it immediately.
		vwSecs := TimeIt(Budget, func() {
			for _, blk := range blocks {
				d.Decompress(blk, vecOut[:blk.N])
				for _, v := range vecOut[:blk.N] {
					sink += v
				}
			}
		})

		compBytes := 0
		for _, blk := range blocks {
			compBytes += blk.CompressedBytes()
		}
		ratio := float64(8*pageValues) / float64(compBytes)
		pw := simcpu.ReplayPagewiseDecompress(simcpu.NewHierarchy(), 8*pageValues, ratio)
		vw := simcpu.ReplayVectorwiseDecompress(simcpu.NewHierarchy(), 8*pageValues, 8*vector, ratio)

		bytes := 8 * pageValues
		s.Point(rate, MBps(bytes, pwSecs), MBps(bytes, vwSecs),
			100*pw.L2MissRate(), 100*vw.L2MissRate())
	}
	s.Print(w)
	_ = sink
}

func int64sToBytes(vals []int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		u := uint64(v)
		for k := 0; k < 8; k++ {
			out[8*i+k] = byte(u >> (8 * k))
		}
	}
	return out
}

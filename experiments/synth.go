// Package experiments implements the measurement harnesses that regenerate
// every table and figure of the paper's evaluation (Figures 2, 4, 5, 6, 7;
// Tables 1, 2, 3, 4; the Section 5 equilibrium computation). The cmd/
// binaries parse flags and call into this package; bench_test.go reuses the
// same kernels under testing.B.
package experiments

import (
	"math/rand"
	"time"

	"repro/internal/core"
)

// SynthPFOR generates n 64-bit values of which approximately rate are
// outliers for a b-bit frame at base 0 — the synthetic microbenchmark data
// of Section 3 ("all compress 64-bit data items into 8 bits codes").
func SynthPFOR(rng *rand.Rand, n int, b uint, rate float64) []int64 {
	vals := make([]int64, n)
	window := int64(1) << b
	for i := range vals {
		if rng.Float64() < rate {
			vals[i] = window + rng.Int63n(1<<40)
		} else {
			vals[i] = rng.Int63n(window - 1)
		}
	}
	return vals
}

// SynthDict generates values from a 2^b dictionary with outliers at the
// given rate.
func SynthDict(rng *rand.Rand, n int, b uint, rate float64) (vals, dict []int64) {
	dict = make([]int64, 1<<b)
	for i := range dict {
		dict[i] = int64(i) * 7919
	}
	vals = make([]int64, n)
	for i := range vals {
		if rng.Float64() < rate {
			vals[i] = 1<<50 + rng.Int63n(1<<40)
		} else {
			vals[i] = dict[rng.Intn(len(dict))]
		}
	}
	return vals, dict
}

// SynthSorted generates n nondecreasing 64-bit values whose steps are
// uniform in [0, 2*step] — the sorted or clustered column shape (dates,
// auto-increment keys, d-gaps) where PFOR-DELTA compresses best and
// block-level min/max zone maps prune selective scans hardest.
func SynthSorted(rng *rand.Rand, n int, step int64) []int64 {
	vals := make([]int64, n)
	var cur int64
	for i := range vals {
		cur += rng.Int63n(2*step + 1)
		vals[i] = cur
	}
	return vals
}

// TimeIt runs f repeatedly until it has consumed at least minDuration and
// returns the mean seconds per call. It keeps harness binaries honest
// without dragging in the testing package.
func TimeIt(minDuration time.Duration, f func()) float64 {
	f() // warm up
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		elapsed := time.Since(start)
		if elapsed >= minDuration {
			return elapsed.Seconds() / float64(iters)
		}
		if elapsed <= 0 {
			iters *= 16
			continue
		}
		// Scale iteration count to overshoot the budget slightly.
		iters = int(float64(iters)*float64(minDuration)/float64(elapsed)) + 1
	}
}

// MBps converts (bytes processed, seconds) to MB/s.
func MBps(bytes int, secs float64) float64 {
	if secs <= 0 {
		return 0
	}
	return float64(bytes) / secs / 1e6
}

// DecompressOnce is a helper binding a decoder and reusable buffer.
type DecompressOnce struct {
	dec core.Decoder[int64]
	out []int64
}

// Run decompresses blk into the internal buffer.
func (d *DecompressOnce) Run(blk *core.Block[int64]) {
	if cap(d.out) < blk.N {
		d.out = make([]int64, blk.N)
	}
	d.dec.Decompress(blk, d.out[:blk.N])
}

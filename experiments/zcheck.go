package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/columnbm"
	"repro/internal/report"
	"repro/internal/tpch"
)

// CompressedCheck cross-checks the compressed-domain query path (ZKC2
// columns queried through Expr trees and code-space GroupAggregate)
// against the decode-then-filter engine over the same generated dataset,
// and prints a timing table. The oracle runs uncompressed DSM through
// the vector-wise engine — the configuration every other path is gated
// on — so a zero return means every ZQuery produced a byte-identical
// result. The return value is the number of diverging queries.
func CompressedCheck(w io.Writer, sf float64, bufBytes int64) int {
	oracle := BuildTPCH(sf, columnbm.DSM, false, MidEndRAID)
	zdb, err := tpch.BuildZDB(oracle.DS)
	if err != nil {
		fmt.Fprintf(w, "CompressedCheck: BuildZDB: %v\n", err)
		return 1
	}

	tbl := report.NewTable(
		fmt.Sprintf("Compressed-domain cross-check: ZKC2 Expr/GroupAggregate vs engine oracle, SF-%g (times in ms)", sf),
		"query", "oracle ms", "zkc2 ms", "rows", "match")

	diverged := 0
	for _, q := range tpch.ZQueryOrder {
		run, want := oracle.RunQueryResult(q, bufBytes, columnbm.VectorWise)
		start := time.Now()
		got := tpch.ZQueries[q](zdb)
		zt := time.Since(start)

		rows := 0
		if len(want) > 0 {
			rows = len(want[0])
		}
		ok := tpch.ResultsEqual(got, want)
		if !ok {
			diverged++
		}
		tbl.Row(q, ms(run.CPUTime), ms(zt), rows, ok)
	}
	tbl.Print(w)
	if diverged > 0 {
		fmt.Fprintf(w, "COMPRESSED-DOMAIN DIVERGENCE: %d of %d queries disagree with the oracle\n",
			diverged, len(tpch.ZQueryOrder))
	}
	return diverged
}

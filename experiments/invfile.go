package experiments

import (
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/invfile"
	"repro/internal/iomodel"
	"repro/internal/report"
)

// Table4 reproduces Table 4: compression ratio, compression speed and
// decompression speed of PFOR-DELTA, carryover-12 and shuff on the five
// inverted-file collections.
func Table4(w io.Writer, postingsCap int) {
	tbl := report.NewTable("Table 4: PFOR-DELTA on inverted files",
		"collection", "codec", "ratio", "comp MB/s", "dec MB/s")

	for _, p := range invfile.Profiles {
		if postingsCap > 0 && p.Postings > postingsCap {
			p.Postings = postingsCap
		}
		c := invfile.Synthesize(p, 6)
		gaps := c.AllGaps()
		unc := c.UncompressedBytes()

		// PFOR-DELTA: analysis is a one-time cost outside the timed loop,
		// as in the paper (the sample analysis happens once per column).
		stream := invfile.Stream(c)
		choices := invfile.AnalyzeBlocks(stream, 1<<16)
		blocks, bytes := invfile.CompressStream(stream, choices, 1<<16)
		compSecs := TimeIt(Budget, func() { invfile.CompressStream(stream, choices, 1<<16) })
		out := make([]uint32, c.TotalPostings())
		decSecs := TimeIt(Budget, func() { invfile.DecompressPFORDelta(blocks, out) })
		tbl.Row(p.Name, "PFOR-DELTA", float64(unc)/float64(bytes),
			MBps(unc, compSecs), MBps(unc, decSecs))

		// carryover-12 and shuff.
		for _, codec := range []baseline.IntCodec{baseline.Carryover12{}, baseline.GapHuffman{}} {
			enc := codec.Encode(nil, gaps)
			cSecs := TimeIt(Budget, func() { codec.Encode(enc[:0], gaps) })
			gout := make([]uint32, 0, len(gaps))
			dSecs := TimeIt(Budget, func() { codec.Decode(gout[:0], enc, len(gaps)) })
			tbl.Row(p.Name, codec.Name(), float64(unc)/float64(len(enc)),
				MBps(unc, cSecs), MBps(unc, dSecs))
		}
	}
	tbl.Print(w)
}

// Equilibrium reproduces the Section 5 experiment: measure the raw query
// bandwidth Q of the top-N retrieval query on d-gap data, compute the
// equilibrium decompression bandwidth C for a given RAID (the paper: Q=580,
// RAID=350 -> C=883), and evaluate which codecs clear the bar.
//
// raidMBps <= 0 scales the simulated RAID to 60% of the measured Q — the
// same B/Q ratio as the paper's 350/580 — so the experiment's structure is
// preserved on machines whose absolute Q differs from the 2005 testbed.
func Equilibrium(w io.Writer, raidMBps float64) {
	// fbis-like collection; the query consumes (docID, freq) postings.
	p := invfile.Profiles[1]
	p.Postings = min(p.Postings, 400_000)
	c := invfile.Synthesize(p, 8)
	docs := invfile.NewDocTable(p.NumDocs)

	// Pick the longest list for a steady measurement.
	list := &c.Lists[0]
	for i := range c.Lists {
		if len(c.Lists[i].DocIDs) > len(list.DocIDs) {
			list = &c.Lists[i]
		}
	}
	prepared := invfile.Prepare(list)
	bytes := 4 * len(list.DocIDs) // the d-gap bytes the query consumes
	qSecs := TimeIt(200*time.Millisecond, func() { invfile.TopNDocsPrepared(prepared, docs, 20) })
	q := MBps(bytes, qSecs)

	if raidMBps <= 0 {
		raidMBps = 0.6 * q
	}
	eq := iomodel.EquilibriumC(q, raidMBps)

	tbl := report.NewTable("Section 5: query bandwidth and decompression equilibrium",
		"quantity", "value")
	tbl.Row("query bandwidth Q (MB/s)", q)
	tbl.Row("RAID bandwidth B (MB/s)", raidMBps)
	tbl.Row("equilibrium C (MB/s)", eq)
	tbl.Print(w)

	// Which codecs make the query faster, per equation 3.1?
	gaps := c.AllGaps()
	unc := c.UncompressedBytes()
	verdict := report.NewTable("Does compression accelerate the query?",
		"codec", "ratio", "dec MB/s", "result MB/s", "verdict")

	addRow := func(name string, ratio, decSpeed float64) {
		res, _ := iomodel.ResultBandwidth(iomodel.Params{B: raidMBps, R: ratio, Q: q, C: decSpeed})
		uncRes, _ := iomodel.ResultBandwidth(iomodel.Params{B: raidMBps, R: 1, Q: q, C: 1e18})
		v := "slower"
		if res > uncRes {
			v = "faster"
		}
		verdict.Row(name, ratio, decSpeed, res, v)
	}

	blocks, pforBytes := invfile.CompressPFORDelta(c, 1<<16)
	out := make([]uint32, c.TotalPostings())
	pforDec := MBps(unc, TimeIt(Budget, func() { invfile.DecompressPFORDelta(blocks, out) }))
	addRow("PFOR-DELTA", float64(unc)/float64(pforBytes), pforDec)

	for _, codec := range []baseline.IntCodec{baseline.Carryover12{}, baseline.GapHuffman{}} {
		enc := codec.Encode(nil, gaps)
		gout := make([]uint32, 0, len(gaps))
		dec := MBps(unc, TimeIt(Budget, func() { codec.Decode(gout[:0], enc, len(gaps)) }))
		addRow(codec.Name(), float64(unc)/float64(len(enc)), dec)
	}
	verdict.Print(w)
}

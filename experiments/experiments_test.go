package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/columnbm"
)

// The experiment harnesses run with tiny parameters here: the goal is to
// pin the *shape* assertions the paper makes and to guarantee every
// harness path stays runnable, not to produce steady numbers.

func init() {
	Budget = 5 * time.Millisecond
}

func TestSynthPFORRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := SynthPFOR(rng, 100_000, 8, 0.3)
	window := int64(1) << 8
	exc := 0
	for _, v := range vals {
		if v >= window {
			exc++
		}
	}
	rate := float64(exc) / float64(len(vals))
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("exception rate %.3f, want ~0.3", rate)
	}
}

func TestTimeIt(t *testing.T) {
	calls := 0
	secs := TimeIt(time.Millisecond, func() { calls++; time.Sleep(100 * time.Microsecond) })
	if calls < 2 {
		t.Fatalf("TimeIt made %d calls", calls)
	}
	if secs < 50e-6 || secs > 10e-3 {
		t.Fatalf("per-call estimate %.6fs implausible", secs)
	}
}

func TestFig4Harness(t *testing.T) {
	var buf bytes.Buffer
	Fig4(&buf, 1<<14)
	out := buf.String()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "NAIVE") {
		t.Fatalf("missing content: %s", out)
	}
	// 9 exception rates -> 9 data rows.
	if rows := strings.Count(out, "\n") - 4; rows != 9 {
		t.Fatalf("want 9 rows, output:\n%s", out)
	}
}

func TestFig5Fig6Fig7Harnesses(t *testing.T) {
	var buf bytes.Buffer
	Fig5(&buf, 1<<14)
	Fig6(&buf, 1<<14)
	Fig7(&buf, 1<<16)
	for _, want := range []string{"Figure 5", "Figure 6", "Figure 7", "vector-wise"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestFig2Harness(t *testing.T) {
	var buf bytes.Buffer
	Fig2(&buf, 0.001)
	out := buf.String()
	for _, want := range []string{"l_orderkey", "lzrw1", "zlib(flate)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	if !strings.Contains(buf.String(), "78%") {
		t.Fatal("Table 1 content")
	}
}

func TestRunQueryAccounting(t *testing.T) {
	cfg := BuildTPCH(0.002, columnbm.DSM, true, LowEndRAID)
	run := cfg.RunQuery("06", 1<<30, columnbm.VectorWise)
	if run.Ratio <= 1 {
		t.Fatalf("compressed config ratio %.2f", run.Ratio)
	}
	if run.IOTime <= 0 || run.CPUTime <= 0 {
		t.Fatal("missing time accounting")
	}
	if run.Total < run.CPUTime || run.Total < run.IOTime {
		t.Fatal("total must be max(cpu, io)")
	}
	if run.Decompress <= 0 || run.Decompress > run.CPUTime {
		t.Fatalf("decompress %v vs cpu %v", run.Decompress, run.CPUTime)
	}
}

func TestCompressionSpeedsUpIOBoundQueries(t *testing.T) {
	// The Table 2 headline at harness level: on the slow RAID, the
	// compressed run of the scan-heavy Q6 beats the uncompressed run.
	unc := BuildTPCH(0.005, columnbm.DSM, false, LowEndRAID)
	com := BuildTPCH(0.005, columnbm.DSM, true, LowEndRAID)
	u := unc.RunQuery("06", 1<<30, columnbm.VectorWise)
	c := com.RunQuery("06", 1<<30, columnbm.VectorWise)
	if c.Total >= u.Total {
		t.Fatalf("compressed Q6 %v should beat uncompressed %v", c.Total, u.Total)
	}
	// And the win should be broadly in line with the ratio (I/O bound).
	speedup := float64(u.Total) / float64(c.Total)
	if speedup < c.Ratio/3 {
		t.Fatalf("speedup %.2f too far below ratio %.2f for an I/O-bound query", speedup, c.Ratio)
	}
}

func TestVectorWiseBeatsPageWise(t *testing.T) {
	cfg := BuildTPCH(0.005, columnbm.DSM, true, MidEndRAID)
	// Compare CPU time over a few runs to damp scheduler noise.
	var pw, vw time.Duration
	for i := 0; i < 3; i++ {
		pw += cfg.RunQuery("06", 1<<30, columnbm.PageWise).CPUTime
		vw += cfg.RunQuery("06", 1<<30, columnbm.VectorWise).CPUTime
	}
	if vw > pw*3/2 {
		t.Fatalf("vector-wise CPU %v should not lose badly to page-wise %v", vw, pw)
	}
}

func TestTable2HarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	Table2(&buf, 0.002, LowEndRAID, 1<<30)
	out := buf.String()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "21") {
		t.Fatalf("Table 2 incomplete:\n%s", out)
	}
}

func TestTable3AndFig8HarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	Table3(&buf, 0.002, MidEndRAID, 1<<30)
	Fig8(&buf, 0.002, LowEndRAID, columnbm.DSM, 1<<30)
	for _, want := range []string{"Table 3", "Figure 8", "vector-wise"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestTable4HarnessSmoke(t *testing.T) {
	var buf bytes.Buffer
	Table4(&buf, 30_000)
	out := buf.String()
	for _, want := range []string{"INEX", "TREC fbis", "PFOR-DELTA", "carryover-12", "shuff"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestEquilibriumHarnessSmoke(t *testing.T) {
	var buf bytes.Buffer
	Equilibrium(&buf, 0) // auto-scaled RAID
	out := buf.String()
	if !strings.Contains(out, "equilibrium C") {
		t.Fatalf("missing equilibrium output:\n%s", out)
	}
	// PFOR-DELTA must clear the bar on the auto-scaled RAID.
	if !strings.Contains(out, "faster") {
		t.Fatalf("no codec cleared the equilibrium:\n%s", out)
	}
}

func TestModelCheck(t *testing.T) {
	var buf bytes.Buffer
	ModelCheck(&buf, LowEndRAID, 4, 2000, 3000)
	if !strings.Contains(buf.String(), "I/O bound") {
		t.Fatalf("slow RAID with fast CPU should be I/O bound:\n%s", buf.String())
	}
}

package experiments

import "repro/internal/columnbm"

// Layout re-exports the physical chunk layout selector so harnesses built
// on this package (cmd/tpchbench and friends) need not import the internal
// storage manager directly.
type Layout = columnbm.Layout

// The two layouts of the paper's Table 2 / Table 3 evaluation.
const (
	DSM = columnbm.DSM
	PAX = columnbm.PAX
)

package zkserve_test

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/zkserve"
	"repro/zkserve/client"
	"repro/zukowski"
)

func encodeCol[T zukowski.Integer](t *testing.T, vals []T, blockValues int) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter[T](&buf, nil, blockValues)
	if err != nil {
		t.Fatalf("NewColumnWriter: %v", err)
	}
	if err := cw.Write(vals); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := cw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

const (
	testRows = 8192
	testBV   = 512
)

func c1Val(i int64) int64 { return (i * 7919) % 1000 }

// newTestRegistry builds table "t": c0 is the row number (sorted, so
// zone maps prune), c1 a deterministic pseudo-random column, w32 an
// int32 column with the same geometry, and "short" an int64 column with
// half the rows (a geometry mismatch on purpose).
func newTestRegistry(t *testing.T) *zkserve.Registry {
	t.Helper()
	c0 := make([]int64, testRows)
	c1 := make([]int64, testRows)
	w32 := make([]int32, testRows)
	for i := range c0 {
		c0[i] = int64(i)
		c1[i] = c1Val(int64(i))
		w32[i] = int32(i % 100)
	}
	reg := zkserve.NewRegistry()
	for col, data := range map[string][]byte{
		"c0":    encodeCol(t, c0, testBV),
		"c1":    encodeCol(t, c1, testBV),
		"w32":   encodeCol(t, w32, testBV),
		"short": encodeCol(t, c0[:testRows/2], testBV),
	} {
		if err := reg.AddColumnBytes("t", col, data); err != nil {
			t.Fatalf("AddColumnBytes(%s): %v", col, err)
		}
	}
	return reg
}

func newTestServer(t *testing.T, cfg zkserve.Config) (*zkserve.Server, *httptest.Server, *client.Client) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = newTestRegistry(t)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv := zkserve.NewServer(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, client.New(ts.URL, ts.Client())
}

func pred(col string, lo, hi int64) zkserve.PredSpec {
	return zkserve.PredSpec{Col: col, Lo: &lo, Hi: &hi}
}

func TestScanRowsMatchesLocal(t *testing.T) {
	_, _, cl := newTestServer(t, zkserve.Config{})
	var rows int64
	res, err := cl.ScanRows(context.Background(), zkserve.ScanRequest{
		Table: "t",
		Cols:  []string{"c0", "c1"},
		Preds: []zkserve.PredSpec{pred("c0", 1000, 1999)},
	}, func(row int64, vals []int64) bool {
		if vals[0] != row || vals[1] != c1Val(row) {
			t.Fatalf("row %d: got %v, want [%d %d]", row, vals, row, c1Val(row))
		}
		if row < 1000 || row > 1999 {
			t.Fatalf("row %d escapes the predicate", row)
		}
		rows++
		return true
	})
	if err != nil {
		t.Fatalf("ScanRows: %v", err)
	}
	if rows != 1000 || res.Rows != 1000 {
		t.Fatalf("rows = %d (trailer %d), want 1000", rows, res.Rows)
	}
	if res.Truncated {
		t.Fatal("complete scan reported truncated")
	}
}

func TestScanMultiPredicateAndParallel(t *testing.T) {
	_, _, cl := newTestServer(t, zkserve.Config{})
	want := int64(0)
	for i := int64(0); i < testRows; i++ {
		if i >= 500 && i <= 6000 && c1Val(i) >= 100 && c1Val(i) <= 300 {
			want++
		}
	}
	for _, workers := range []int{0, 4} {
		res, err := cl.ScanRows(context.Background(), zkserve.ScanRequest{
			Table:   "t",
			Cols:    []string{"c1"},
			Preds:   []zkserve.PredSpec{pred("c0", 500, 6000), pred("c1", 100, 300)},
			Workers: workers,
		}, func(row int64, vals []int64) bool {
			if v := vals[0]; v < 100 || v > 300 {
				t.Fatalf("row %d: c1 = %d escapes the conjunction", row, v)
			}
			return true
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Rows != want {
			t.Fatalf("workers=%d: rows = %d, want %d", workers, res.Rows, want)
		}
	}
}

func TestAggregateMatchesLocal(t *testing.T) {
	_, _, cl := newTestServer(t, zkserve.Config{})
	want := zkserve.AggResult{Min: 1<<63 - 1, Max: -1 << 63}
	for i := int64(1000); i <= 1999; i++ {
		v := c1Val(i)
		want.Count++
		want.Sum += v
		want.Min = min(want.Min, v)
		want.Max = max(want.Max, v)
	}
	resp, err := cl.Aggregate(context.Background(), zkserve.ScanRequest{
		Table:  "t",
		Agg:    "all",
		AggCol: "c1",
		Preds:  []zkserve.PredSpec{pred("c0", 1000, 1999)},
	})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if resp.Result != want {
		t.Fatalf("aggregate = %+v, want %+v", resp.Result, want)
	}
	if resp.Col != "c1" {
		t.Fatalf("aggregate col = %q", resp.Col)
	}
}

// TestFrameModeEquivalence decodes the shipped frames client-side,
// applies the predicate exactly, and checks the result against row mode:
// the two transports must agree row for row.
func TestFrameModeEquivalence(t *testing.T) {
	_, _, cl := newTestServer(t, zkserve.Config{})
	req := zkserve.ScanRequest{
		Table: "t",
		Cols:  []string{"c0", "c1"},
		Preds: []zkserve.PredSpec{pred("c0", 1000, 1999)},
	}

	type rowVal struct{ row, v0, v1 int64 }
	var fromRows []rowVal
	if _, err := cl.ScanRows(context.Background(), req, func(row int64, vals []int64) bool {
		fromRows = append(fromRows, rowVal{row, vals[0], vals[1]})
		return true
	}); err != nil {
		t.Fatalf("ScanRows: %v", err)
	}

	var fromFrames []rowVal
	blocks := 0
	var dec0, dec1 zukowski.FrameDecoder[int64]
	var b0, b1 []int64
	res, err := cl.ScanFrames(context.Background(), req, func(cols []zkserve.FrameStreamCol, blk *zkserve.FrameBlock) bool {
		blocks++
		var err error
		if b0, err = dec0.Decode(b0[:0], blk.Frames[0]); err != nil {
			t.Fatalf("decoding c0 frame %d: %v", blk.Index, err)
		}
		if b1, err = dec1.Decode(b1[:0], blk.Frames[1]); err != nil {
			t.Fatalf("decoding c1 frame %d: %v", blk.Index, err)
		}
		if len(b0) != blk.Count || len(b1) != blk.Count {
			t.Fatalf("block %d: decoded %d/%d values, header says %d", blk.Index, len(b0), len(b1), blk.Count)
		}
		for j := 0; j < blk.Count; j++ {
			if b0[j] >= 1000 && b0[j] <= 1999 {
				fromFrames = append(fromFrames, rowVal{blk.FirstRow + int64(j), b0[j], b1[j]})
			}
		}
		return true
	})
	if err != nil {
		t.Fatalf("ScanFrames: %v", err)
	}
	// Zone maps must have pruned: c0 is sorted, the predicate covers
	// 1000 of 8192 rows, so only a sliver of the 16 blocks can match.
	if total := testRows / testBV; blocks >= total {
		t.Fatalf("no pruning: %d of %d blocks shipped", blocks, total)
	}
	if res.Rows != int64(blocks*testBV) {
		t.Fatalf("trailer rows = %d, want %d", res.Rows, blocks*testBV)
	}
	if len(fromFrames) != len(fromRows) {
		t.Fatalf("frame mode found %d rows, row mode %d", len(fromFrames), len(fromRows))
	}
	for i := range fromRows {
		if fromRows[i] != fromFrames[i] {
			t.Fatalf("row %d: row mode %+v, frame mode %+v", i, fromRows[i], fromFrames[i])
		}
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts, _ := newTestServer(t, zkserve.Config{})
	cases := []struct {
		name   string
		body   string
		accept string
		want   int
	}{
		{"malformed json", `{nope`, "", http.StatusBadRequest},
		{"unknown field", `{"tabel":"t","cols":["c0"]}`, "", http.StatusBadRequest},
		{"missing table", `{"cols":["c0"]}`, "", http.StatusBadRequest},
		{"no output columns", `{"table":"t"}`, "", http.StatusBadRequest},
		{"predicate names no column", `{"table":"t","cols":["c0"],"preds":[{"lo":1}]}`, "", http.StatusBadRequest},
		{"unknown aggregate", `{"table":"t","cols":["c0"],"agg":"median"}`, "", http.StatusBadRequest},
		{"unknown table", `{"table":"missing","cols":["c0"]}`, "", http.StatusNotFound},
		{"unknown output column", `{"table":"t","cols":["zz"]}`, "", http.StatusNotFound},
		{"unknown predicate column", `{"table":"t","cols":["c0"],"preds":[{"col":"zz"}]}`, "", http.StatusNotFound},
		{"geometry mismatch", `{"table":"t","cols":["c0","short"]}`, "", http.StatusUnprocessableEntity},
		{"geometry mismatch frames", `{"table":"t","cols":["c0","short"]}`, zkserve.MIMEFrames, http.StatusUnprocessableEntity},
		{"width mismatch rows", `{"table":"t","cols":["c0","w32"]}`, "", http.StatusUnprocessableEntity},
		{"width mismatch frames ok", `{"table":"t","cols":["c0","w32"]}`, zkserve.MIMEFrames, http.StatusOK},
		{"mixed width scan ok alone", `{"table":"t","cols":["w32"],"preds":[{"col":"w32","lo":10,"hi":20}]}`, "", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/scan", strings.NewReader(tc.body))
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatalf("request: %v", err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

func TestBudgetTruncation(t *testing.T) {
	_, _, cl := newTestServer(t, zkserve.Config{})
	req := zkserve.ScanRequest{Table: "t", Cols: []string{"c0"}, MaxRows: 100}
	res, err := cl.ScanRows(context.Background(), req, nil)
	if err != nil {
		t.Fatalf("ScanRows: %v", err)
	}
	if res.Rows != 100 || !res.Truncated || res.Reason != "rows" {
		t.Fatalf("row budget: %+v", res)
	}

	res, err = cl.ScanRows(context.Background(),
		zkserve.ScanRequest{Table: "t", Cols: []string{"c0"}, MaxBytes: 1000}, nil)
	if err != nil {
		t.Fatalf("ScanRows: %v", err)
	}
	if !res.Truncated || res.Reason != "bytes" {
		t.Fatalf("byte budget: %+v", res)
	}
	if res.Rows >= testRows {
		t.Fatalf("byte budget let the whole table through (%d rows)", res.Rows)
	}

	// Server-wide budget caps the request even when the request asks for
	// more.
	_, _, capped := newTestServer(t, zkserve.Config{MaxRows: 50})
	res, err = capped.ScanRows(context.Background(),
		zkserve.ScanRequest{Table: "t", Cols: []string{"c0"}, MaxRows: 100000}, nil)
	if err != nil {
		t.Fatalf("ScanRows: %v", err)
	}
	if res.Rows != 50 || !res.Truncated {
		t.Fatalf("server row budget: %+v", res)
	}

	// Frame mode truncates at block granularity.
	fres, err := cl.ScanFrames(context.Background(),
		zkserve.ScanRequest{Table: "t", Cols: []string{"c0"}, MaxRows: testBV}, nil)
	if err != nil {
		t.Fatalf("ScanFrames: %v", err)
	}
	if fres.Rows != testBV || !fres.Truncated {
		t.Fatalf("frame row budget: %+v", fres)
	}
}

// bigRegistry builds a table large enough that a full row-mode scan far
// exceeds socket buffering, so a non-reading client blocks the handler.
func bigRegistry(t *testing.T, rows int) *zkserve.Registry {
	t.Helper()
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(i%997) * 1048583 // ~8 digits per value on the wire
	}
	reg := zkserve.NewRegistry()
	if err := reg.AddColumnBytes("big", "c0", encodeCol(t, vals, 4096)); err != nil {
		t.Fatalf("AddColumnBytes: %v", err)
	}
	return reg
}

func TestSaturation429AndDisconnectFreesSlot(t *testing.T) {
	srv, ts, cl := newTestServer(t, zkserve.Config{Registry: bigRegistry(t, 1<<21), Slots: 1})

	// Occupy the single slot: start a full-table scan and stop reading
	// after the header line, so the handler blocks writing.
	body := strings.NewReader(`{"table":"big","cols":["c0"]}`)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/scan", body)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("occupying scan: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("occupying scan status = %d", resp.StatusCode)
	}
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatalf("reading header line: %v", err)
	}

	// The slot is held: a second scan must be refused with 429 and a
	// Retry-After hint.
	_, err = cl.ScanRows(context.Background(),
		zkserve.ScanRequest{Table: "big", Cols: []string{"c0"}, MaxRows: 1}, nil)
	if !client.IsSaturated(err) {
		t.Fatalf("expected saturation, got %v", err)
	}
	var se *client.StatusError
	if errors.As(err, &se) && se.RetryAfter != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", se.RetryAfter)
	}
	if got := srv.Metrics().ScansRejected.Load(); got == 0 {
		t.Fatal("rejection not counted")
	}

	// Disconnect: the canceled context must free the slot at the next
	// block boundary.
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := cl.ScanRows(context.Background(),
			zkserve.ScanRequest{Table: "big", Cols: []string{"c0"}, MaxRows: 1}, nil)
		if err == nil && res.Rows == 1 {
			break
		}
		if !client.IsSaturated(err) {
			t.Fatalf("retry after disconnect: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after client disconnect")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := srv.Metrics().ScansCanceled.Load(); got == 0 {
		t.Fatal("disconnected scan not counted as canceled")
	}
}

func TestTimeBudgetKillsScan(t *testing.T) {
	srv, _, cl := newTestServer(t, zkserve.Config{Registry: bigRegistry(t, 1<<21)})
	_, err := cl.ScanRows(context.Background(),
		zkserve.ScanRequest{Table: "big", Cols: []string{"c0"}, TimeoutMS: 1}, nil)
	if !errors.Is(err, client.ErrScanFailed) {
		t.Fatalf("expected a mid-stream failure, got %v", err)
	}
	if got := srv.Metrics().ScansCanceled.Load(); got == 0 {
		t.Fatal("timed-out scan not counted as canceled")
	}
}

// TestScanHammerConcurrent drives all three modes concurrently through a
// deliberately tiny admission budget — the -race test for the whole
// serving path: semaphore, metrics, streaming, budgets.
func TestScanHammerConcurrent(t *testing.T) {
	srv, _, cl := newTestServer(t, zkserve.Config{Slots: 4})
	const goroutines = 16
	const iters = 25
	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				lo := int64((g*iters + k) % testRows)
				req := zkserve.ScanRequest{
					Table:   "t",
					Cols:    []string{"c0", "c1"},
					Preds:   []zkserve.PredSpec{pred("c0", lo, lo+100)},
					Workers: k % 3,
				}
				var err error
				switch k % 10 {
				case 8:
					req.Agg = "all"
					_, err = cl.Aggregate(context.Background(), req)
				case 9:
					_, err = cl.ScanFrames(context.Background(), req, nil)
				default:
					_, err = cl.ScanRows(context.Background(), req, nil)
				}
				switch {
				case err == nil:
					ok.Add(1)
				case client.IsSaturated(err):
					rejected.Add(1)
					time.Sleep(time.Millisecond)
				default:
					t.Errorf("goroutine %d iter %d: %v", g, k, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no scan succeeded")
	}
	m := srv.Metrics()
	if got := m.ScansOK.Load(); got != ok.Load() {
		t.Fatalf("ScansOK = %d, clients saw %d", got, ok.Load())
	}
	if got := m.ScansRejected.Load(); got != rejected.Load() {
		t.Fatalf("ScansRejected = %d, clients saw %d", got, rejected.Load())
	}
	if got := m.InFlight.Load(); got != 0 {
		t.Fatalf("InFlight = %d after the fleet drained", got)
	}
}

func TestHealthzDrainingAndMetrics(t *testing.T) {
	srv, ts, cl := newTestServer(t, zkserve.Config{})
	if !cl.Healthy(context.Background()) {
		t.Fatal("fresh server unhealthy")
	}
	srv.SetDraining(true)
	if cl.Healthy(context.Background()) {
		t.Fatal("draining server reported healthy")
	}
	srv.SetDraining(false)

	if _, err := cl.ScanRows(context.Background(),
		zkserve.ScanRequest{Table: "t", Cols: []string{"c0"}, MaxRows: 10}, nil); err != nil {
		t.Fatalf("scan: %v", err)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	prom, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"zkserve_scans_total{result=\"ok\"}",
		"zkserve_rows_emitted_total",
		"zkserve_request_duration_seconds_bucket{route=\"scan\"",
		"zkserve_inflight_scans 0",
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("metrics exposition lacks %q:\n%s", want, prom)
		}
	}
}

func TestTablesListing(t *testing.T) {
	_, _, cl := newTestServer(t, zkserve.Config{})
	resp, err := cl.Tables(context.Background())
	if err != nil {
		t.Fatalf("Tables: %v", err)
	}
	if len(resp.Tables) != 1 || resp.Tables[0].Name != "t" {
		t.Fatalf("tables = %+v", resp.Tables)
	}
	if len(resp.Tables[0].Columns) != 4 {
		t.Fatalf("columns = %+v", resp.Tables[0].Columns)
	}
	if len(resp.Codecs) == 0 || resp.Codecs[0] != "pfor" {
		t.Fatalf("codecs = %v", resp.Codecs)
	}
	for _, c := range resp.Tables[0].Columns {
		if c.Name == "c0" {
			if !c.HasMinMax || c.Min != 0 || c.Max != testRows-1 {
				t.Fatalf("c0 meta = %+v", c)
			}
		}
	}
}

func TestGenerateTableOpenDir(t *testing.T) {
	dir := t.TempDir()
	spec := zkserve.TableSpec{Name: "gen", Rows: 10000, Cols: 2, BlockValues: 1024, Seed: 42}
	if err := zkserve.GenerateTable(dir, spec); err != nil {
		t.Fatalf("GenerateTable: %v", err)
	}
	reg, err := zkserve.OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer reg.Close()
	_, _, cl := newTestServer(t, zkserve.Config{Registry: reg})
	resp, err := cl.Aggregate(context.Background(),
		zkserve.ScanRequest{Table: "gen", Agg: "count", AggCol: "c0"})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if resp.Result.Count != 10000 {
		t.Fatalf("count = %d, want 10000", resp.Result.Count)
	}
	// Determinism: the same spec generates byte-identical containers.
	dir2 := t.TempDir()
	if err := zkserve.GenerateTable(dir2, spec); err != nil {
		t.Fatalf("GenerateTable again: %v", err)
	}
	for _, f := range []string{"c0.zkc", "c1.zkc"} {
		a, err1 := os.ReadFile(filepath.Join(dir, "gen", f))
		b, err2 := os.ReadFile(filepath.Join(dir2, "gen", f))
		if err1 != nil || err2 != nil {
			t.Fatalf("reading %s: %v, %v", f, err1, err2)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between identical specs", f)
		}
	}
}

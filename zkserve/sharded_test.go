package zkserve_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/zkserve"
	"repro/zkserve/client"
	"repro/zktable"
	"repro/zukowski"
)

// buildShardedTable commits segRows-many segments under dir/st: c0 is
// the global row number (sorted across segments, so zone maps prune and
// global row IDs are checkable), c1 the same deterministic function of
// the row the flat test tables use.
func buildShardedTable(t *testing.T, dir string, segRows []int) int {
	t.Helper()
	tb, err := zktable.Create[int64](filepath.Join(dir, "st"), []string{"c0", "c1"}, testBV, zktable.Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer tb.Close()
	base := 0
	for _, n := range segRows {
		c0 := make([]int64, n)
		c1 := make([]int64, n)
		for i := 0; i < n; i++ {
			row := int64(base + i)
			c0[i] = row
			c1[i] = c1Val(row)
		}
		if _, err := tb.Append([][]int64{c0, c1}); err != nil {
			t.Fatalf("Append: %v", err)
		}
		base += n
	}
	return base
}

func findTable(t *testing.T, resp zkserve.TablesResponse, name string) zkserve.TableMeta {
	t.Helper()
	for _, tm := range resp.Tables {
		if tm.Name == name {
			return tm
		}
	}
	t.Fatalf("table %q missing from listing %+v", name, resp.Tables)
	return zkserve.TableMeta{}
}

// TestShardedServeEndToEnd drives a zktable directory through the whole
// serve path: OpenDir auto-detection next to a flat table, /tables
// generation and segment metadata, and row/aggregate/frame scans with
// global row and block numbering across segment boundaries.
func TestShardedServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	segRows := []int{900, 1300, 700} // deliberately not block-aligned
	total := buildShardedTable(t, dir, segRows)
	if err := zkserve.GenerateTable(dir, zkserve.TableSpec{Name: "flat", Rows: 1000, Cols: 1, BlockValues: testBV, Seed: 7}); err != nil {
		t.Fatalf("GenerateTable: %v", err)
	}

	reg, err := zkserve.OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer reg.Close()
	_, _, cl := newTestServer(t, zkserve.Config{Registry: reg})

	resp, err := cl.Tables(context.Background())
	if err != nil {
		t.Fatalf("Tables: %v", err)
	}
	if len(resp.Tables) != 2 {
		t.Fatalf("tables = %+v, want flat + st", resp.Tables)
	}
	meta := findTable(t, resp, "st")
	// Create commits generation 1; each of the three appends bumps it.
	if meta.Generation != 4 || meta.Segments != 3 {
		t.Fatalf("generation/segments = %d/%d, want 4/3", meta.Generation, meta.Segments)
	}
	if meta.Rows != total || meta.Degraded || meta.QuarantinedSegments != 0 || meta.RowsUnavailable != 0 {
		t.Fatalf("healthy sharded meta = %+v", meta)
	}
	if len(meta.Columns) != 2 {
		t.Fatalf("columns = %+v", meta.Columns)
	}
	for _, cm := range meta.Columns {
		if cm.Rows != total {
			t.Fatalf("column %q rows = %d, want %d", cm.Name, cm.Rows, total)
		}
		if cm.Name == "c0" && (!cm.HasMinMax || cm.Min != 0 || cm.Max != int64(total-1)) {
			t.Fatalf("c0 meta = %+v", cm)
		}
	}
	if findTable(t, resp, "flat").Generation != 0 {
		t.Fatal("flat table grew a generation")
	}

	// Row mode across both segment boundaries (at rows 900 and 2200):
	// global row IDs must be continuous and values must match the oracle.
	const lo, hi = 800, 2300
	for _, workers := range []int{0, 4} {
		next := int64(lo)
		res, err := cl.ScanRows(context.Background(), zkserve.ScanRequest{
			Table:   "st",
			Cols:    []string{"c0", "c1"},
			Preds:   []zkserve.PredSpec{pred("c0", lo, hi)},
			Workers: workers,
		}, func(row int64, vals []int64) bool {
			if row != next {
				t.Fatalf("workers=%d: got row %d, want %d", workers, row, next)
			}
			if vals[0] != row || vals[1] != c1Val(row) {
				t.Fatalf("row %d: vals = %v", row, vals)
			}
			next++
			return true
		})
		if err != nil {
			t.Fatalf("workers=%d: ScanRows: %v", workers, err)
		}
		if res.Rows != hi-lo+1 {
			t.Fatalf("workers=%d: rows = %d, want %d", workers, res.Rows, hi-lo+1)
		}
	}

	// Aggregate folds across segments.
	want := zkserve.AggResult{Min: 1<<63 - 1, Max: -1 << 63}
	for i := int64(lo); i <= hi; i++ {
		v := c1Val(i)
		want.Count++
		want.Sum += v
		want.Min = min(want.Min, v)
		want.Max = max(want.Max, v)
	}
	agg, err := cl.Aggregate(context.Background(), zkserve.ScanRequest{
		Table: "st", Agg: "all", AggCol: "c1",
		Preds: []zkserve.PredSpec{pred("c0", lo, hi)},
	})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if agg.Result != want {
		t.Fatalf("aggregate = %+v, want %+v", agg.Result, want)
	}

	// Frame mode: block indices are global and strictly increasing, rows
	// reconstructed client-side agree with row mode, and the sorted c0
	// zone maps prune blocks outside the predicate.
	totalBlocks := 0
	for _, n := range segRows {
		totalBlocks += (n + testBV - 1) / testBV
	}
	var dec0, dec1 zukowski.FrameDecoder[int64]
	var b0, b1 []int64
	lastBlk := -1
	var got []int64
	fres, err := cl.ScanFrames(context.Background(), zkserve.ScanRequest{
		Table: "st",
		Cols:  []string{"c0", "c1"},
		Preds: []zkserve.PredSpec{pred("c0", lo, hi)},
	}, func(cols []zkserve.FrameStreamCol, blk *zkserve.FrameBlock) bool {
		if blk.Index <= lastBlk || blk.Index >= totalBlocks {
			t.Fatalf("block index %d after %d (total %d)", blk.Index, lastBlk, totalBlocks)
		}
		lastBlk = blk.Index
		var err error
		if b0, err = dec0.Decode(b0[:0], blk.Frames[0]); err != nil {
			t.Fatalf("decoding c0 frame: %v", err)
		}
		if b1, err = dec1.Decode(b1[:0], blk.Frames[1]); err != nil {
			t.Fatalf("decoding c1 frame: %v", err)
		}
		for j := 0; j < blk.Count; j++ {
			if b0[j] != blk.FirstRow+int64(j) {
				t.Fatalf("block %d: global first row %d but c0[%d] = %d", blk.Index, blk.FirstRow, j, b0[j])
			}
			if b0[j] >= lo && b0[j] <= hi {
				if b1[j] != c1Val(b0[j]) {
					t.Fatalf("row %d: c1 = %d", b0[j], b1[j])
				}
				got = append(got, b0[j])
			}
		}
		return true
	})
	if err != nil {
		t.Fatalf("ScanFrames: %v", err)
	}
	if len(got) != hi-lo+1 {
		t.Fatalf("frame mode matched %d rows, want %d", len(got), hi-lo+1)
	}
	if fres.Rows >= int64(total) {
		t.Fatal("no block pruning on the sorted column")
	}
}

// TestShardedQuarantineServe damages one segment's column file so
// zktable quarantines it at open, then checks the serving contract: the
// loss is visible on /tables, exact scans fail, and degraded scans
// return every surviving row with exact loss accounting.
func TestShardedQuarantineServe(t *testing.T) {
	dir := t.TempDir()
	segRows := []int{900, 1300, 700}
	buildShardedTable(t, dir, segRows)
	// Truncating metadata (directory + footer) quarantines the segment;
	// salvage cannot restore the committed geometry from a shorter file.
	victim := filepath.Join(dir, "st", "seg-00000002-c1.zkc")
	st, err := os.Stat(victim)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(victim, st.Size()-200); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	reg, err := zkserve.OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer reg.Close()
	_, _, cl := newTestServer(t, zkserve.Config{Registry: reg})

	resp, err := cl.Tables(context.Background())
	if err != nil {
		t.Fatalf("Tables: %v", err)
	}
	meta := findTable(t, resp, "st")
	if !meta.Degraded || meta.QuarantinedSegments != 1 || meta.RowsUnavailable != 1300 {
		t.Fatalf("quarantine meta = %+v", meta)
	}
	if meta.Generation != 4 || meta.Segments != 3 || meta.Rows != 2900 {
		t.Fatalf("committed state misreported: %+v", meta)
	}

	// Exact requests must fail: the committed generation cannot be served
	// in full.
	exact := zkserve.ScanRequest{Table: "st", Cols: []string{"c0", "c1"}}
	if _, err := cl.ScanRows(context.Background(), exact, nil); err == nil {
		t.Fatal("exact scan succeeded with a quarantined segment")
	} else if !errors.Is(err, client.ErrScanFailed) {
		t.Fatalf("exact scan error = %v, want a mid-stream failure", err)
	}
	if _, err := cl.Aggregate(context.Background(), zkserve.ScanRequest{
		Table: "st", Agg: "count", AggCol: "c0",
	}); err == nil {
		t.Fatal("exact aggregate succeeded with a quarantined segment")
	}

	// Degraded requests serve the survivors (segments 1 and 3) and account
	// the quarantined segment's committed rows and blocks exactly.
	lostBlocks := int64((1300 + testBV - 1) / testBV)
	degraded := exact
	degraded.SkipCorrupt = true
	rows := 0
	res, err := cl.ScanRows(context.Background(), degraded, func(row int64, vals []int64) bool {
		if row >= 900 && row < 2200 {
			t.Fatalf("row %d from the quarantined segment leaked through", row)
		}
		if vals[0] != row || vals[1] != c1Val(row) {
			t.Fatalf("row %d: vals = %v", row, vals)
		}
		rows++
		return true
	})
	if err != nil {
		t.Fatalf("degraded scan: %v", err)
	}
	if rows != 1600 || res.Rows != 1600 {
		t.Fatalf("degraded rows = %d (trailer %d), want 1600", rows, res.Rows)
	}
	if !res.Degraded || res.RowsLost != 1300 || res.BlocksSkipped != lostBlocks {
		t.Fatalf("degraded trailer = %+v, want 1300 rows / %d blocks lost", res, lostBlocks)
	}

	agg, err := cl.Aggregate(context.Background(), zkserve.ScanRequest{
		Table: "st", Agg: "all", AggCol: "c0", SkipCorrupt: true,
	})
	if err != nil {
		t.Fatalf("degraded aggregate: %v", err)
	}
	if agg.Result.Count != 1600 || agg.Result.Min != 0 || agg.Result.Max != 2899 {
		t.Fatalf("degraded aggregate = %+v", agg.Result)
	}
	if !agg.Degraded || agg.RowsLost != 1300 || agg.BlocksSkipped != lostBlocks {
		t.Fatalf("degraded aggregate trailer = %+v", agg)
	}

	// Frame mode skips the quarantined segment's blocks the same way.
	fres, err := cl.ScanFrames(context.Background(), degraded, nil)
	if err != nil {
		t.Fatalf("degraded frames: %v", err)
	}
	if fres.Rows != 1600 || !fres.Degraded || fres.RowsLost != 1300 || fres.BlocksSkipped != lostBlocks {
		t.Fatalf("degraded frame trailer = %+v", fres)
	}
}

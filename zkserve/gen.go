package zkserve

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/experiments"
	"repro/zukowski"
)

// TableSpec describes a synthetic table for GenerateTable: Cols int64
// columns of Rows values each. Column c0 is sorted-with-noise (clustered
// values, so zone maps prune range predicates on it); the rest are the
// PFOR-friendly skewed distribution the paper benchmarks. Codec names a
// registered codec for every column; empty picks per-block automatically.
type TableSpec struct {
	Name        string
	Rows        int
	Cols        int
	BlockValues int
	Seed        int64
	Codec       string
}

// GenerateTable writes spec under dir as a table directory OpenDir can
// load: dir/<Name>/c0.zkc ... c<Cols-1>.zkc. It exists for cmd/zkserved
// -gen, the integration tests and the CI serve job, which need a
// deterministic corpus without shipping one.
func GenerateTable(dir string, spec TableSpec) error {
	if spec.Name == "" || spec.Rows <= 0 || spec.Cols <= 0 {
		return fmt.Errorf("%w: table spec needs a name, rows and columns", ErrBadRequest)
	}
	if spec.BlockValues <= 0 {
		spec.BlockValues = 4096
	}
	var codec zukowski.Codec[int64]
	if spec.Codec != "" {
		c, err := zukowski.Lookup[int64](spec.Codec)
		if err != nil {
			return err
		}
		codec = c
	}
	tdir := filepath.Join(dir, spec.Name)
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	for c := 0; c < spec.Cols; c++ {
		var vals []int64
		if c == 0 {
			vals = experiments.SynthSorted(rng, spec.Rows, 3)
		} else {
			vals = experiments.SynthPFOR(rng, spec.Rows, 10, 0.02)
		}
		// Atomic writes keep a crashed or killed generator from leaving a
		// torn container that the next OpenDir refuses to serve.
		path := filepath.Join(tdir, fmt.Sprintf("c%d.zkc", c))
		if err := zukowski.WriteColumnAtomic(path, codec, spec.BlockValues, vals); err != nil {
			return err
		}
	}
	return nil
}

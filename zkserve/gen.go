package zkserve

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/experiments"
	"repro/zktable"
	"repro/zukowski"
)

// TableSpec describes a synthetic table for GenerateTable: Cols int64
// columns of Rows values each. Column c0 is sorted-with-noise (clustered
// values, so zone maps prune range predicates on it); the rest are the
// PFOR-friendly skewed distribution the paper benchmarks. Codec names a
// registered codec for every column; empty picks per-block automatically.
// Segments > 1 generates a sharded zktable directory instead of flat
// per-column files: Segments manifest-committed segments of Rows rows
// each, the layout the crash-recovery and sharded-serve paths exercise.
type TableSpec struct {
	Name        string
	Rows        int // rows per segment when Segments > 1
	Cols        int
	BlockValues int
	Seed        int64
	Codec       string
	Segments    int
}

// GenerateTable writes spec under dir as a table directory OpenDir can
// load: dir/<Name>/c0.zkc ... c<Cols-1>.zkc, or a zktable directory when
// Segments > 1. It exists for cmd/zkserved -gen, the integration tests
// and the CI serve job, which need a deterministic corpus without
// shipping one.
func GenerateTable(dir string, spec TableSpec) error {
	if spec.Name == "" || spec.Rows <= 0 || spec.Cols <= 0 {
		return fmt.Errorf("%w: table spec needs a name, rows and columns", ErrBadRequest)
	}
	if spec.BlockValues <= 0 {
		spec.BlockValues = 4096
	}
	if spec.Segments > 1 {
		return generateSharded(dir, spec)
	}
	var codec zukowski.Codec[int64]
	if spec.Codec != "" {
		c, err := zukowski.Lookup[int64](spec.Codec)
		if err != nil {
			return err
		}
		codec = c
	}
	tdir := filepath.Join(dir, spec.Name)
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	for c := 0; c < spec.Cols; c++ {
		var vals []int64
		if c == 0 {
			vals = experiments.SynthSorted(rng, spec.Rows, 3)
		} else {
			vals = experiments.SynthPFOR(rng, spec.Rows, 10, 0.02)
		}
		// Atomic writes keep a crashed or killed generator from leaving a
		// torn container that the next OpenDir refuses to serve.
		path := filepath.Join(tdir, fmt.Sprintf("c%d.zkc", c))
		if err := zukowski.WriteColumnAtomic(path, codec, spec.BlockValues, vals); err != nil {
			return err
		}
	}
	return nil
}

// generateSharded builds the zktable variant: the same per-column
// distributions, committed as Segments generations of Rows rows each.
func generateSharded(dir string, spec TableSpec) error {
	cols := make([]string, spec.Cols)
	for c := range cols {
		cols[c] = fmt.Sprintf("c%d", c)
	}
	tdir := filepath.Join(dir, spec.Name)
	tb, err := zktable.Create[int64](tdir, cols, spec.BlockValues, zktable.Options{Codec: spec.Codec})
	if err != nil {
		return err
	}
	defer tb.Close()
	rng := rand.New(rand.NewSource(spec.Seed))
	for s := 0; s < spec.Segments; s++ {
		seg := make([][]int64, spec.Cols)
		for c := 0; c < spec.Cols; c++ {
			if c == 0 {
				seg[c] = experiments.SynthSorted(rng, spec.Rows, 3)
			} else {
				seg[c] = experiments.SynthPFOR(rng, spec.Rows, 10, 0.02)
			}
		}
		if _, err := tb.Append(seg); err != nil {
			return err
		}
	}
	return nil
}

package zkserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/zukowski"
)

// Content types the scan endpoint negotiates. A request whose Accept
// header includes MIMEFrames gets frame mode (raw compressed ZKC2
// frames); everything else gets NDJSON rows.
const (
	MIMERows   = "application/x-ndjson"
	MIMEFrames = "application/x-zkc2"
)

// Config configures a Server. The zero value of every limit means
// unlimited; requests can only tighten server-wide budgets, never exceed
// them.
type Config struct {
	// Registry holds the served tables. Required.
	Registry *Registry

	// Slots bounds concurrently executing scans; a scan that cannot take
	// a slot immediately is refused with 429 and Retry-After. Defaults to
	// 4×GOMAXPROCS.
	Slots int

	// MaxRows / MaxBytes / MaxDuration are server-wide per-query budgets.
	// Zero means unlimited.
	MaxRows     int64
	MaxBytes    int64
	MaxDuration time.Duration

	// MaxWorkers caps the per-scan parallelism a request may ask for.
	// Defaults to GOMAXPROCS.
	MaxWorkers int

	// CacheBytes, when positive, enables the registry's shared hot-block
	// cache with this byte budget (see Registry.EnableCache). Zero leaves
	// the registry's existing cache configuration untouched.
	CacheBytes int64

	// Logger receives request logs; defaults to slog.Default.
	Logger *slog.Logger
}

// PredSpec is one conjunct of a scan request: value of column Col in
// [Lo, Hi], inclusive. A nil bound is open (MinInt64 / MaxInt64).
type PredSpec struct {
	Col string `json:"col"`
	Lo  *int64 `json:"lo,omitempty"`
	Hi  *int64 `json:"hi,omitempty"`
}

// PredGroup is one alternative of an any_of disjunction: the AND of its
// Preds. AnyOf is reserved for deeper nesting; the server supports one
// level of disjunction, so a request carrying a nested group is refused
// with 422 rather than silently mis-evaluated.
type PredGroup struct {
	Preds []PredSpec  `json:"preds"`
	AnyOf []PredGroup `json:"any_of,omitempty"`
}

// ScanRequest is the POST /scan body.
type ScanRequest struct {
	Table string     `json:"table"`
	Cols  []string   `json:"cols"`
	Preds []PredSpec `json:"preds,omitempty"`

	// AnyOf adds a disjunctive predicate: a row survives when every
	// Preds conjunct holds AND at least one group's conjuncts all hold.
	// The server maps the disjunction onto a compressed-domain expression
	// tree — zone maps prune a block only when every alternative is
	// excluded, and surviving blocks are filtered without decoding
	// non-matching rows. In frame mode the groups participate in block
	// pruning only, like Preds.
	AnyOf []PredGroup `json:"any_of,omitempty"`

	// Agg switches the scan to aggregation: "count", "sum", "min", "max"
	// or "all" computes over AggCol (default: the first of Cols) and
	// returns one JSON object instead of a stream. The response always
	// carries all four statistics; Agg records intent.
	Agg    string `json:"agg,omitempty"`
	AggCol string `json:"agg_col,omitempty"`

	// Per-query budgets; each may only tighten the server-wide limit.
	MaxRows   int64 `json:"max_rows,omitempty"`
	MaxBytes  int64 `json:"max_bytes,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Workers asks for block-parallel execution (clamped to the server's
	// MaxWorkers). Zero or one scans sequentially.
	Workers int `json:"workers,omitempty"`

	// SkipCorrupt opts this scan into degraded mode: blocks lost to
	// corruption (quarantined blocks, checksum mismatches, undecodable
	// frames) are skipped instead of failing the request, and the response
	// trailer reports blocks_skipped and rows_lost. Off by default —
	// exactness is the default contract.
	SkipCorrupt bool `json:"skip_corrupt,omitempty"`
}

// AggResponse is the aggregate-mode response body.
type AggResponse struct {
	Table     string    `json:"table"`
	Agg       string    `json:"agg"`
	Col       string    `json:"col"`
	Result    AggResult `json:"result"`
	ElapsedMS float64   `json:"elapsed_ms"`

	// Degraded accounting, present only for skip_corrupt scans that
	// actually lost blocks: the aggregate excludes RowsLost rows.
	Degraded      bool  `json:"degraded,omitempty"`
	BlocksSkipped int64 `json:"blocks_skipped,omitempty"`
	RowsLost      int64 `json:"rows_lost,omitempty"`
}

// CacheInfo reports the hot-block cache configuration in /tables.
type CacheInfo struct {
	Enabled       bool  `json:"enabled"`
	CapacityBytes int64 `json:"capacity_bytes"`
	ResidentBytes int64 `json:"resident_bytes"`
	Entries       int64 `json:"entries"`
}

// TablesResponse is the GET /tables capability listing.
type TablesResponse struct {
	Tables []TableMeta `json:"tables"`
	Codecs []string    `json:"codecs"`
	Cache  CacheInfo   `json:"cache"`

	// Features lists optional scan-protocol capabilities this server
	// understands ("any_of", ...), so clients can probe before sending a
	// request an older server would reject as an unknown field.
	Features []string `json:"features"`
}

// Server serves scans over HTTP. Create with NewServer; it implements
// http.Handler and routes POST /scan, GET /tables, GET /healthz and
// GET /metrics.
type Server struct {
	cfg      Config
	reg      *Registry
	mux      *http.ServeMux
	sem      chan struct{}
	log      *slog.Logger
	metrics  Metrics
	draining atomic.Bool
}

// NewServer builds a Server from cfg, applying defaults.
func NewServer(cfg Config) *Server {
	if cfg.Slots <= 0 {
		cfg.Slots = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.CacheBytes > 0 && cfg.Registry != nil {
		cfg.Registry.EnableCache(cfg.CacheBytes)
	}
	s := &Server{
		cfg: cfg,
		reg: cfg.Registry,
		mux: http.NewServeMux(),
		sem: make(chan struct{}, cfg.Slots),
		log: cfg.Logger,
	}
	s.mux.HandleFunc("POST /scan", s.handleScan)
	s.mux.HandleFunc("GET /tables", s.handleTables)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Metrics returns the server's metrics; callers may read the counters
// directly (tests, periodic logging).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// SetDraining flips the health endpoint: while draining, /healthz
// returns 503 so load balancers stop routing here before Shutdown cuts
// in-flight streams. Scans keep being accepted — draining only steers
// new traffic away.
func (s *Server) SetDraining(d bool) { s.draining.Store(d) }

// statusWriter captures the status code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

// Unwrap lets http.ResponseController reach Flush and deadlines.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// ServeHTTP routes the request through logging and latency middleware.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)
	d := time.Since(start)
	route := "other"
	if r.URL.Path == "/scan" {
		route = "scan"
	}
	s.metrics.observeLatency(route, d)
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	lvl := slog.LevelInfo
	if route == "other" {
		lvl = slog.LevelDebug // health checks and metrics scrapes are noise
	}
	s.log.LogAttrs(r.Context(), lvl, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.Duration("dur", d),
	)
}

// fail writes the JSON error body and counts the outcome.
func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	switch {
	case status == http.StatusTooManyRequests:
		s.metrics.ScansRejected.Add(1)
	case status >= 500:
		s.metrics.ScansServerErr.Add(1)
	case status >= 400:
		s.metrics.ScansClientErr.Add(1)
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// statusFor maps pre-stream errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownTable), errors.Is(err, ErrUnknownColumn):
		return http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrMismatch), errors.Is(err, zukowski.ErrColumnSetMismatch):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

// buildPlan resolves a request against the registry. aggCol is the
// aggregate column index, or -1 for a streaming scan.
func (s *Server) buildPlan(req *ScanRequest) (plan *scanPlan, aggCol int, err error) {
	if req.Table == "" {
		return nil, 0, fmt.Errorf("%w: missing table", ErrBadRequest)
	}
	t, err := s.reg.Table(req.Table)
	if err != nil {
		return nil, 0, err
	}
	plan = &scanPlan{table: t, workers: 1}
	if req.Workers > 1 {
		plan.workers = min(req.Workers, s.cfg.MaxWorkers)
	}
	if req.SkipCorrupt {
		plan.skip = true
		plan.report = new(zukowski.ScanReport)
	}
	for _, name := range req.Cols {
		ci, err := t.colIndex(name)
		if err != nil {
			return nil, 0, err
		}
		plan.out = append(plan.out, ci)
	}
	for i, ps := range req.Preds {
		spec, err := resolvePred(t, ps, fmt.Sprintf("predicate %d", i))
		if err != nil {
			return nil, 0, err
		}
		plan.preds = append(plan.preds, spec)
	}
	for gi, g := range req.AnyOf {
		if len(g.AnyOf) > 0 {
			return nil, 0, fmt.Errorf("%w: any_of group %d nests any_of (one level of disjunction is supported)", ErrMismatch, gi)
		}
		if len(g.Preds) == 0 {
			return nil, 0, fmt.Errorf("%w: any_of group %d holds no predicates", ErrBadRequest, gi)
		}
		group := make([]predSpec, 0, len(g.Preds))
		for i, ps := range g.Preds {
			spec, err := resolvePred(t, ps, fmt.Sprintf("any_of group %d predicate %d", gi, i))
			if err != nil {
				return nil, 0, err
			}
			group = append(group, spec)
		}
		plan.orGroups = append(plan.orGroups, group)
	}
	aggCol = -1
	if req.Agg != "" {
		switch req.Agg {
		case "count", "sum", "min", "max", "all":
		default:
			return nil, 0, fmt.Errorf("%w: unknown aggregate %q", ErrBadRequest, req.Agg)
		}
		name := req.AggCol
		if name == "" {
			if len(req.Cols) == 0 {
				return nil, 0, fmt.Errorf("%w: aggregate names no column", ErrBadRequest)
			}
			name = req.Cols[0]
		}
		if aggCol, err = t.colIndex(name); err != nil {
			return nil, 0, err
		}
		// The aggregate column must be in the scanned set.
		found := false
		for _, ci := range plan.out {
			if ci == aggCol {
				found = true
				break
			}
		}
		if !found {
			plan.out = append(plan.out, aggCol)
		}
	} else if len(plan.out) == 0 {
		return nil, 0, fmt.Errorf("%w: no output columns", ErrBadRequest)
	}
	return plan, aggCol, nil
}

// resolvePred maps one wire predicate onto the table's column space,
// defaulting open bounds to the full int64 domain. where names the
// predicate's position in error messages.
func resolvePred(t *Table, ps PredSpec, where string) (predSpec, error) {
	if ps.Col == "" {
		return predSpec{}, fmt.Errorf("%w: %s names no column", ErrBadRequest, where)
	}
	ci, err := t.colIndex(ps.Col)
	if err != nil {
		return predSpec{}, err
	}
	spec := predSpec{col: ci, lo: int64(-1) << 63, hi: 1<<63 - 1}
	if ps.Lo != nil {
		spec.lo = *ps.Lo
	}
	if ps.Hi != nil {
		spec.hi = *ps.Hi
	}
	return spec, nil
}

// tighten returns the effective budget: the smaller of the server-wide
// and per-request limits, where zero means unlimited.
func tighten(server, request int64) int64 {
	switch {
	case request <= 0:
		return server
	case server <= 0:
		return request
	default:
		return min(server, request)
	}
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	var req ScanRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	plan, aggCol, err := s.buildPlan(&req)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	wantFrames := aggCol < 0 && strings.Contains(r.Header.Get("Accept"), MIMEFrames)
	// Everything that would 422 must be known before the 200 header
	// commits; mid-stream failures after this point travel in-band.
	if wantFrames {
		err = plan.validateFrameMode()
	} else {
		err = plan.validateRowMode()
	}
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}

	// Admission: take a worker slot now or shed the load at the door.
	select {
	case s.sem <- struct{}{}:
	default:
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, errors.New("zkserve: all worker slots busy"))
		return
	}
	s.metrics.InFlight.Add(1)
	defer func() {
		s.metrics.InFlight.Add(-1)
		<-s.sem
	}()

	maxRows := tighten(s.cfg.MaxRows, req.MaxRows)
	maxBytes := tighten(s.cfg.MaxBytes, req.MaxBytes)
	timeout := s.cfg.MaxDuration
	if t := time.Duration(req.TimeoutMS) * time.Millisecond; t > 0 && (timeout <= 0 || t < timeout) {
		timeout = t
	}
	// A disconnected client cancels r.Context(), which stops the scan at
	// the next block boundary and frees the slot.
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	switch {
	case aggCol >= 0:
		s.runAgg(ctx, w, &req, plan, aggCol)
	case wantFrames:
		s.runFrames(ctx, w, plan, maxRows, maxBytes)
	default:
		s.runRows(ctx, w, &req, plan, maxRows, maxBytes)
	}
}

// recordScanned feeds the zone-map effectiveness counters from directory
// metadata; called once per scan that ran to completion.
func (s *Server) recordScanned(plan *scanPlan) {
	scanned, pruned, raw := plan.blockStats()
	s.metrics.BlocksScanned.Add(int64(scanned))
	s.metrics.BlocksPruned.Add(int64(pruned))
	s.metrics.RawBytesScanned.Add(raw)
}

func (s *Server) runAgg(ctx context.Context, w http.ResponseWriter, req *ScanRequest, plan *scanPlan, aggCol int) {
	start := time.Now()
	res, err := plan.aggregate(ctx, aggCol)
	if err != nil {
		if ctx.Err() != nil {
			s.metrics.ScansCanceled.Add(1)
			writeJSON(w, http.StatusRequestTimeout, map[string]string{"error": err.Error()})
			return
		}
		s.fail(w, statusFor(err), err)
		return
	}
	s.recordScanned(plan)
	s.metrics.ScansOK.Add(1)
	resp := AggResponse{
		Table:     req.Table,
		Agg:       req.Agg,
		Col:       plan.table.colName(aggCol),
		Result:    res,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	if rep := plan.report; rep.Degraded() {
		resp.Degraded = true
		resp.BlocksSkipped = int64(rep.BlocksSkipped)
		resp.RowsLost = rep.RowsLost
		s.noteDegraded(rep)
	}
	writeJSON(w, http.StatusOK, resp)
}

// noteDegraded counts a scan that completed with losses and logs what was
// dropped, so silent data loss never happens silently.
func (s *Server) noteDegraded(rep *zukowski.ScanReport) {
	s.metrics.ScansDegraded.Add(1)
	s.metrics.BlocksSkipped.Add(int64(rep.BlocksSkipped))
	s.log.Warn("degraded scan",
		slog.Int("blocks_skipped", rep.BlocksSkipped),
		slog.Int64("rows_lost", rep.RowsLost),
		slog.String("first_err", fmt.Sprint(rep.FirstErr)),
	)
}

func (s *Server) runRows(ctx context.Context, w http.ResponseWriter, req *ScanRequest, plan *scanPlan, maxRows, maxBytes int64) {
	start := time.Now()
	w.Header().Set("Content-Type", MIMERows)
	w.WriteHeader(http.StatusOK)
	rw := newRowWriter(w)
	rw.header(req.Table, req.Cols)

	var rows int64
	truncated, reason := false, ""
	err := plan.run(ctx, func(blockRows []int64, vals [][]int64) bool {
		if n := int64(len(blockRows)); maxRows > 0 && rows+n > maxRows {
			keep := maxRows - rows
			trimmed := make([][]int64, len(vals))
			for i, v := range vals {
				trimmed[i] = v[:keep]
			}
			rw.rows(blockRows[:keep], trimmed)
			rows += keep
			truncated, reason = true, "rows"
			return false
		}
		rw.rows(blockRows, vals)
		rows += int64(len(blockRows))
		if rw.writeErr() != nil {
			return false
		}
		if maxRows > 0 && rows == maxRows {
			truncated, reason = true, "rows"
			return false
		}
		if maxBytes > 0 && rw.totalBytes() >= maxBytes {
			truncated, reason = true, "bytes"
			return false
		}
		return true
	})
	if err == nil {
		err = rw.writeErr()
	}
	switch {
	case err == nil:
		if !truncated {
			s.recordScanned(plan)
		}
		s.metrics.ScansOK.Add(1)
		if plan.report.Degraded() {
			s.noteDegraded(plan.report)
		}
	case ctx.Err() != nil:
		s.metrics.ScansCanceled.Add(1)
	default:
		s.metrics.ScansServerErr.Add(1)
	}
	rw.trailer(rows, truncated, reason, err,
		float64(time.Since(start))/float64(time.Millisecond), plan.report)
	rw.flush()
	s.metrics.RowsEmitted.Add(rows)
	s.metrics.BytesEmitted.Add(rw.bytesWritten())
}

func (s *Server) runFrames(ctx context.Context, w http.ResponseWriter, plan *scanPlan, maxRows, maxBytes int64) {
	w.Header().Set("Content-Type", MIMEFrames)
	w.WriteHeader(http.StatusOK)
	fw := newFrameWriter(w)
	cols := make([]FrameStreamCol, len(plan.out))
	for i, ci := range plan.out {
		cols[i] = FrameStreamCol{Name: plan.table.colName(ci), WidthBytes: plan.table.colWidth(ci)}
	}
	fw.header(cols)

	var rowsRep, frames int64
	truncated := false
	err := plan.streamBlocks(ctx, func(b int, firstRow int64, count int, blockFrames [][]byte) bool {
		fw.block(b, firstRow, count, blockFrames)
		rowsRep += int64(count)
		frames += int64(len(blockFrames))
		if fw.writeErr() != nil {
			return false
		}
		if (maxRows > 0 && rowsRep >= maxRows) || (maxBytes > 0 && fw.totalBytes() >= maxBytes) {
			truncated = true
			return false
		}
		return true
	})
	if err == nil {
		err = fw.writeErr()
	}
	status := byte(FrameStatusDone)
	msg := ""
	switch {
	case err == nil && truncated:
		status = FrameStatusTruncated
		s.metrics.ScansOK.Add(1)
	case err == nil:
		s.recordScanned(plan)
		s.metrics.ScansOK.Add(1)
	case ctx.Err() != nil:
		status, msg = FrameStatusError, err.Error()
		s.metrics.ScansCanceled.Add(1)
	default:
		status, msg = FrameStatusError, err.Error()
		s.metrics.ScansServerErr.Add(1)
	}
	var skipped, lost int64
	if rep := plan.report; rep.Degraded() {
		skipped, lost = int64(rep.BlocksSkipped), rep.RowsLost
		if err == nil {
			s.noteDegraded(rep)
		}
	}
	fw.trailer(status, rowsRep, skipped, lost, msg)
	fw.flush()
	s.metrics.RowsEmitted.Add(rowsRep)
	s.metrics.FramesShipped.Add(frames)
	s.metrics.BytesEmitted.Add(fw.bytesWritten())
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	resp := TablesResponse{Codecs: zukowski.Codecs(), Features: []string{"any_of"}}
	if s.reg.CacheEnabled() {
		st := s.reg.CacheStats()
		resp.Cache = CacheInfo{
			Enabled:       true,
			CapacityBytes: st.Capacity,
			ResidentBytes: st.Bytes,
			Entries:       st.Entries,
		}
	}
	for _, name := range s.reg.Tables() {
		t, err := s.reg.Table(name)
		if err != nil {
			continue
		}
		resp.Tables = append(resp.Tables, t.Meta())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	// Quarantined blocks or segments degrade the body but not the
	// status: the server still answers every scan that avoids (or skips)
	// the bad data, so load balancers should keep routing here while
	// operators repair.
	blocks, segs := s.reg.QuarantinedBlocks(), s.reg.QuarantinedSegments()
	switch {
	case blocks > 0 && segs > 0:
		fmt.Fprintf(w, "degraded: %d blocks, %d segments quarantined\n", blocks, segs)
	case blocks > 0:
		fmt.Fprintf(w, "degraded: %d blocks quarantined\n", blocks)
	case segs > 0:
		fmt.Fprintf(w, "degraded: %d segments quarantined\n", segs)
	default:
		w.Write([]byte("ok\n"))
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteProm(w)
	writeCacheProm(w, s.reg.CacheEnabled(), s.reg.CacheStats())
	writeHealthProm(w, s.reg.QuarantinedBlocks())
}

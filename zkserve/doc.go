// Package zkserve serves columnar scans over HTTP: predicate pushdown
// over the network, the paper's RAM–CPU argument extended one boundary
// outward. The thesis of super-scalar decompression is that moving
// compressed data and decoding it at the consumer beats moving decoded
// data; zkserve applies that to the wire. A request names a table, a
// column set and a conjunction of range predicates; the server pushes the
// conjunction into the zukowski ColumnSet machinery (zone-map pruning,
// compressed-domain selection bitmaps, refine kernels) and streams back
// either materialized rows (NDJSON) or — in frame mode — the raw ZKC2
// block frames themselves, zone-map-pruned but still compressed, for the
// client to decode locally with zukowski.FrameDecoder.
//
// The server is built to be saturated. Admission control is a bounded
// worker semaphore: a scan either gets a slot immediately or is refused
// with 429 and Retry-After — load sheds at the door instead of queueing
// unboundedly. Every query runs under row, byte and time budgets,
// enforced mid-scan at block granularity through context cancellation
// and emit-side accounting, so one greedy query cannot hold a slot
// forever. A disconnected client cancels its request context and frees
// its slot at the next block boundary. /metrics exports scan counts,
// rows and bytes emitted, raw bytes scanned, zone-map prune rates, the
// in-flight gauge and per-route latency histograms in Prometheus text
// format; /healthz flips to 503 while draining so load balancers stop
// routing before shutdown.
//
// Config.CacheBytes (zkserved -cache-bytes) attaches one process-wide
// hot-block cache — a zukowski.BlockLRU over verified raw frames —
// shared across every registered table, so repeat traffic to
// file-backed columns skips the per-block read and checksum work.
// Containers are immutable, so the cache needs no invalidation;
// corrupt blocks are never admitted. /metrics always exports the cache
// series (hits, misses, inserts, evictions, resident/capacity bytes,
// entries — zero-valued when the cache is off) and /tables reports the
// cache configuration alongside the table listing.
//
// Tables are directories of .zkc column containers registered from a
// data directory (one subdirectory per table) or from memory. The
// container header records element width but not signedness, so columns
// are served as signed integers of their stored width; values travel as
// int64 on the wire. Columns scanned together in one request must agree
// on block geometry (rows and block boundaries) — row-mode scans
// additionally on element width — anything else is refused with 422.
//
// The companion packages are repro/zkserve/client (a small typed client,
// used by cmd/loadgen and the tests) and the commands cmd/zkserved (the
// daemon: flags, slog, SIGTERM drain) and cmd/loadgen (N concurrent
// clients with a selectivity mix, reporting p50/p99 latency and
// aggregate MB/s as text or JSON).
package zkserve

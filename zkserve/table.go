package zkserve

import (
	"context"
	"errors"
	"fmt"

	"repro/zukowski"
)

// Query planning. A scanPlan is a validated request against one table:
// resolved output columns, resolved predicates in the wire (int64)
// domain, and a worker count. Execution dispatches on the involved
// columns' shared element width to the generic runners below, which
// build a zukowski.ColumnSet over exactly the involved columns and push
// the predicate — the conjunction plus any any_of disjunction, mapped
// onto an expression tree — into ColumnSet.Run: zone-map pruning,
// compressed-domain bitmaps and refine/union kernels all engage
// server-side, and only surviving rows are widened onto the wire.

// predSpec is one resolved conjunct in the wire domain.
type predSpec struct {
	col    int // index into table.cols
	lo, hi int64
}

// scanPlan is a validated scan against one table.
type scanPlan struct {
	table   *Table
	out     []int // output column indices, in request order
	preds   []predSpec
	workers int

	// orGroups is the resolved any_of disjunction: a row must satisfy
	// every preds conjunct AND all conjuncts of at least one group. Empty
	// means no disjunction.
	orGroups [][]predSpec

	// skip makes the scan degraded: corrupt or quarantined blocks are
	// dropped and accounted in report instead of failing the request.
	skip   bool
	report *zukowski.ScanReport
}

// involved returns the deduplicated union of output and predicate
// columns, preserving first-appearance order (outputs first).
func (p *scanPlan) involved() []int {
	seen := make(map[int]bool, len(p.out)+len(p.preds))
	var inv []int
	add := func(ci int) {
		if !seen[ci] {
			seen[ci] = true
			inv = append(inv, ci)
		}
	}
	for _, ci := range p.out {
		add(ci)
	}
	for _, ps := range p.preds {
		add(ps.col)
	}
	for _, g := range p.orGroups {
		for _, ps := range g {
			add(ps.col)
		}
	}
	return inv
}

// blockExcluded reports whether block b's zone maps prove the plan's
// predicate selects no row of it: some conjunct excludes the block, or
// the disjunction is present and every alternative has an excluding
// conjunct. A predicate with lo > hi excludes everything.
func (p *scanPlan) blockExcluded(b int) bool {
	for _, ps := range p.preds {
		if ps.lo > ps.hi || p.table.cols[ps.col].excludes(b, ps.lo, ps.hi) {
			return true
		}
	}
	if len(p.orGroups) == 0 {
		return false
	}
	for _, g := range p.orGroups {
		live := true
		for _, ps := range g {
			if ps.lo > ps.hi || p.table.cols[ps.col].excludes(b, ps.lo, ps.hi) {
				live = false
				break
			}
		}
		if live {
			return false
		}
	}
	return true
}

// checkGeometry verifies the involved columns agree on rows and block
// boundaries — the invariant that lets one block's selection bitmap (or
// one block index, in frame mode) apply across all of them.
func (p *scanPlan) checkGeometry(involved []int) error {
	first := p.table.cols[involved[0]]
	for _, ci := range involved[1:] {
		c := p.table.cols[ci]
		if c.rows() != first.rows() {
			return fmt.Errorf("%w: column %q holds %d rows, column %q holds %d",
				ErrMismatch, first.colName(), first.rows(), c.colName(), c.rows())
		}
		if c.numBlocks() != first.numBlocks() {
			return fmt.Errorf("%w: column %q has %d blocks, column %q has %d",
				ErrMismatch, first.colName(), first.numBlocks(), c.colName(), c.numBlocks())
		}
		for b := 0; b < c.numBlocks(); b++ {
			if c.blockCount(b) != first.blockCount(b) {
				return fmt.Errorf("%w: block %d holds %d rows in column %q but %d in column %q",
					ErrMismatch, b, c.blockCount(b), c.colName(), first.blockCount(b), first.colName())
			}
		}
	}
	return nil
}

// uniformWidth verifies the involved columns share one element width —
// required wherever values of several columns flow through one typed
// ColumnSet — and returns it.
func (p *scanPlan) uniformWidth(involved []int) (int, error) {
	w := p.table.cols[involved[0]].widthBytes()
	for _, ci := range involved[1:] {
		if cw := p.table.cols[ci].widthBytes(); cw != w {
			return 0, fmt.Errorf("%w: column %q is %d bytes wide, column %q is %d (row-mode scans need one width; frame mode has no such limit)",
				ErrMismatch, p.table.cols[involved[0]].colName(), w, p.table.cols[ci].colName(), cw)
		}
	}
	return w, nil
}

// validateRowMode runs every check that must pass before the response
// header is committed: geometry and width agreement across the involved
// columns. Mapped to 422 by the HTTP layer.
func (p *scanPlan) validateRowMode() error {
	if p.table.sharded() {
		return p.validateSharded(true)
	}
	inv := p.involved()
	if err := p.checkGeometry(inv); err != nil {
		return err
	}
	_, err := p.uniformWidth(inv)
	return err
}

// validateFrameMode checks what frame-mode streaming needs: geometry
// only — frames of different element widths ship side by side fine.
func (p *scanPlan) validateFrameMode() error {
	if p.table.sharded() {
		return p.validateSharded(false)
	}
	return p.checkGeometry(p.involved())
}

// blockStats walks directory metadata only: how many blocks the
// conjunction's zone maps prune, how many survive, and the raw
// (uncompressed) bytes of the surviving blocks across the involved
// columns — the denominator feeding the bytes-scanned and prune-rate
// metrics. Call only after geometry validation.
func (p *scanPlan) blockStats() (scanned, pruned int, rawBytes int64) {
	if p.table.sharded() {
		return p.blockStatsSharded()
	}
	inv := p.involved()
	first := p.table.cols[inv[0]]
	rowWidth := int64(0)
	for _, ci := range inv {
		rowWidth += int64(p.table.cols[ci].widthBytes())
	}
	for b := 0; b < first.numBlocks(); b++ {
		if p.blockExcluded(b) {
			pruned++
			continue
		}
		scanned++
		rawBytes += int64(first.blockCount(b)) * rowWidth
	}
	return scanned, pruned, rawBytes
}

// run executes the plan in row mode, invoking emit once per block with
// surviving rows with the global row numbers and, per requested output
// column, the widened values (vals[i][j] is output column i's value at
// rows[j]). The slices are reused between calls. emit returning false
// stops the scan cleanly (nil); context death returns ctx.Err().
func (p *scanPlan) run(ctx context.Context, emit func(rows []int64, vals [][]int64) bool) error {
	if p.table.sharded() {
		return p.runSharded(ctx, emit)
	}
	inv := p.involved()
	w, err := p.uniformWidth(inv)
	if err != nil {
		return err
	}
	switch w {
	case 1:
		return runScan[int8](ctx, p, inv, emit)
	case 2:
		return runScan[int16](ctx, p, inv, emit)
	case 4:
		return runScan[int32](ctx, p, inv, emit)
	default:
		return runScan[int64](ctx, p, inv, emit)
	}
}

// AggResult is an aggregate in the wire domain. Min and Max are only
// meaningful when Count > 0; Sum wraps in int64 like the engine's.
type AggResult struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// aggregate executes the plan as an aggregate over output column
// aggCol (an index into table.cols, which must be in p.out or p.preds).
func (p *scanPlan) aggregate(ctx context.Context, aggCol int) (AggResult, error) {
	if p.table.sharded() {
		return p.aggregateSharded(ctx, aggCol)
	}
	inv := p.involved()
	w, err := p.uniformWidth(inv)
	if err != nil {
		return AggResult{}, err
	}
	switch w {
	case 1:
		return runAggregate[int8](ctx, p, inv, aggCol)
	case 2:
		return runAggregate[int16](ctx, p, inv, aggCol)
	case 4:
		return runAggregate[int32](ctx, p, inv, aggCol)
	default:
		return runAggregate[int64](ctx, p, inv, aggCol)
	}
}

// buildSet assembles the typed ColumnSet over the involved columns and
// translates the plan's predicates into its index space: the conjunction
// as Preds, the any_of disjunction as an Or-of-Ands expression tree.
// empty reports a predicate with no possible match — a conjunct whose
// range has no image in T's domain, or a disjunction whose every
// alternative has one — and the caller should emit zero rows and
// succeed. An alternative with an unrepresentable conjunct is dropped
// (it can never hold); the others still apply.
func buildSet[T zukowski.Integer](p *scanPlan, involved []int) (set *zukowski.ColumnSet[T], setIdx map[int]int, q zukowski.Query[T], empty bool, err error) {
	readers := make([]*zukowski.ColumnReader[T], len(involved))
	setIdx = make(map[int]int, len(involved))
	for i, ci := range involved {
		cr, ok := p.table.cols[ci].reader().(*zukowski.ColumnReader[T])
		if !ok {
			return nil, nil, q, false, fmt.Errorf("%w: column %q element width changed underfoot",
				ErrMismatch, p.table.cols[ci].colName())
		}
		readers[i] = cr
		setIdx[ci] = i
	}
	set, err = zukowski.NewColumnSet(readers...)
	if err != nil {
		return nil, nil, q, false, err
	}
	for _, ps := range p.preds {
		tlo, thi, ok := clampRange[T](ps.lo, ps.hi)
		if !ok {
			return set, setIdx, q, true, nil
		}
		q.Preds = append(q.Preds, zukowski.Pred[T]{Col: setIdx[ps.col], Lo: tlo, Hi: thi})
	}
	if len(p.orGroups) > 0 {
		branches := make([]zukowski.Expr[T], 0, len(p.orGroups))
		for _, g := range p.orGroups {
			branch := make([]zukowski.Expr[T], 0, len(g))
			dead := false
			for _, ps := range g {
				tlo, thi, ok := clampRange[T](ps.lo, ps.hi)
				if !ok {
					dead = true
					break
				}
				branch = append(branch, zukowski.Range[T](setIdx[ps.col], tlo, thi))
			}
			if dead {
				continue
			}
			if len(branch) == 1 {
				branches = append(branches, branch[0])
			} else {
				branches = append(branches, zukowski.And(branch...))
			}
		}
		if len(branches) == 0 {
			return set, setIdx, q, true, nil
		}
		q.Expr = zukowski.Or(branches...)
	}
	q.SkipCorrupt = p.skip
	q.Report = p.report
	return set, setIdx, q, false, nil
}

func runScan[T zukowski.Integer](ctx context.Context, p *scanPlan, involved []int, emit func(rows []int64, vals [][]int64) bool) error {
	set, setIdx, q, empty, err := buildSet[T](p, involved)
	if err != nil || empty {
		return err
	}
	q.Cols = make([]int, len(p.out))
	for i, ci := range p.out {
		q.Cols[i] = setIdx[ci]
	}
	if p.workers > 1 {
		q.Workers = p.workers
		q.InOrder = true
	}
	widened := make([][]int64, len(p.out))
	return set.Run(ctx, q, func(_ int, rows []int64, cols [][]T) bool {
		for i := range cols {
			w := widened[i][:0]
			for _, v := range cols[i] {
				w = append(w, int64(v))
			}
			widened[i] = w
		}
		return emit(rows, widened)
	})
}

func runAggregate[T zukowski.Integer](ctx context.Context, p *scanPlan, involved []int, aggCol int) (AggResult, error) {
	set, setIdx, q, empty, err := buildSet[T](p, involved)
	if err != nil || empty {
		return AggResult{}, err
	}
	agg, err := set.RunAggregate(ctx, q, setIdx[aggCol])
	if err != nil {
		return AggResult{}, err
	}
	return AggResult{Count: agg.Count, Sum: agg.Sum, Min: int64(agg.Min), Max: int64(agg.Max)}, nil
}

// streamBlocks executes the plan in frame mode: for every block the
// conjunction's zone maps cannot exclude, emit receives the block index,
// its first global row, its row count, and the raw (still compressed)
// frame of every output column. The frames alias registry memory or a
// fresh per-block read; emit must not modify them. emit returning false
// stops cleanly; context death returns ctx.Err() at block granularity.
func (p *scanPlan) streamBlocks(ctx context.Context, emit func(b int, firstRow int64, count int, frames [][]byte) bool) error {
	if p.table.sharded() {
		return p.streamBlocksSharded(ctx, emit)
	}
	first := p.table.cols[p.involved()[0]]
	frames := make([][]byte, len(p.out))
	for b := 0; b < first.numBlocks(); b++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if p.blockExcluded(b) {
			continue
		}
		bad := false
		for i, ci := range p.out {
			frame, err := p.table.cols[ci].frameBytes(b)
			if err != nil {
				// Degraded mode drops the whole block (all columns) when any
				// column's frame is a data fault; other failures propagate.
				if p.skip && skippableFrameErr(err) {
					p.report.Record(first.blockCount(b), err)
					bad = true
					break
				}
				return err
			}
			frames[i] = frame
		}
		if bad {
			continue
		}
		if !emit(b, first.blockFirstRow(b), first.blockCount(b), frames) {
			return nil
		}
	}
	return nil
}

// skippableFrameErr mirrors the engine's degraded-mode classification for
// the frame-streaming path: only faults of the data itself are skippable.
func skippableFrameErr(err error) bool {
	return errors.Is(err, zukowski.ErrCorruptColumn) || errors.Is(err, zukowski.ErrCorruptSegment)
}

package zkserve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/zukowski"
)

// Metrics is the server's observability surface: lock-free atomic
// counters and fixed-bucket latency histograms, exported in Prometheus
// text format by /metrics. One instance lives per Server; everything is
// safe for concurrent use.
type Metrics struct {
	// Scan outcomes. Rejected counts admission-control 429s; Canceled
	// counts scans killed by client disconnect or time budget after
	// streaming began.
	ScansOK        atomic.Int64
	ScansClientErr atomic.Int64
	ScansServerErr atomic.Int64
	ScansRejected  atomic.Int64
	ScansCanceled  atomic.Int64

	// InFlight is the number of scans currently holding a worker slot.
	InFlight atomic.Int64

	// Data-plane volume. RawBytesScanned is the uncompressed size of the
	// blocks the conjunction's zone maps could not prune (the work the
	// scan engine actually did); BytesEmitted is response payload bytes;
	// RowsEmitted counts rows (row mode) or rows represented by shipped
	// frames (frame mode); FramesShipped counts raw frames sent in frame
	// mode.
	RowsEmitted     atomic.Int64
	BytesEmitted    atomic.Int64
	RawBytesScanned atomic.Int64
	FramesShipped   atomic.Int64

	// Zone-map effectiveness across all scans: pruned blocks were proven
	// empty from 16 bytes of metadata and never read.
	BlocksScanned atomic.Int64
	BlocksPruned  atomic.Int64

	// Degraded-mode activity: ScansDegraded counts skip_corrupt scans that
	// actually lost blocks; BlocksSkipped sums the blocks those scans
	// dropped. Both zero on a healthy server.
	ScansDegraded atomic.Int64
	BlocksSkipped atomic.Int64

	scanLatency  histogram
	otherLatency histogram
}

// histBounds are the latency bucket upper bounds in seconds, log-spaced
// from 1ms to 10s.
var histBounds = [...]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// histogram is a fixed-bucket latency histogram. counts[i] is the number
// of observations <= histBounds[i]; counts[len(histBounds)] the +Inf
// bucket.
type histogram struct {
	counts [len(histBounds) + 1]atomic.Int64
	sumNs  atomic.Int64
	count  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(histBounds) && s > histBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

func (h *histogram) write(w io.Writer, name, route string) {
	cum := int64(0)
	for i, bound := range histBounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{route=%q,le=\"%g\"} %d\n", name, route, bound, cum)
	}
	cum += h.counts[len(histBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{route=%q,le=\"+Inf\"} %d\n", name, route, cum)
	fmt.Fprintf(w, "%s_sum{route=%q} %g\n", name, route, float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "%s_count{route=%q} %d\n", name, route, cum)
}

// observeLatency records one request's latency under its route class.
func (m *Metrics) observeLatency(route string, d time.Duration) {
	if route == "scan" {
		m.scanLatency.observe(d)
	} else {
		m.otherLatency.observe(d)
	}
}

// WriteProm writes the Prometheus text exposition.
func (m *Metrics) WriteProm(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP zkserve_scans_total Completed scan requests by result.\n# TYPE zkserve_scans_total counter\n")
	fmt.Fprintf(w, "zkserve_scans_total{result=\"ok\"} %d\n", m.ScansOK.Load())
	fmt.Fprintf(w, "zkserve_scans_total{result=\"client_error\"} %d\n", m.ScansClientErr.Load())
	fmt.Fprintf(w, "zkserve_scans_total{result=\"server_error\"} %d\n", m.ScansServerErr.Load())
	fmt.Fprintf(w, "zkserve_scans_total{result=\"rejected\"} %d\n", m.ScansRejected.Load())
	fmt.Fprintf(w, "zkserve_scans_total{result=\"canceled\"} %d\n", m.ScansCanceled.Load())
	fmt.Fprintf(w, "# HELP zkserve_inflight_scans Scans currently holding a worker slot.\n# TYPE zkserve_inflight_scans gauge\nzkserve_inflight_scans %d\n", m.InFlight.Load())
	counter("zkserve_rows_emitted_total", "Rows delivered to clients (rows represented, in frame mode).", m.RowsEmitted.Load())
	counter("zkserve_bytes_emitted_total", "Response payload bytes delivered to clients.", m.BytesEmitted.Load())
	counter("zkserve_raw_bytes_scanned_total", "Uncompressed bytes of blocks the scan engine evaluated (post-pruning).", m.RawBytesScanned.Load())
	counter("zkserve_frames_shipped_total", "Raw compressed block frames shipped in frame mode.", m.FramesShipped.Load())
	counter("zkserve_blocks_scanned_total", "Blocks the conjunction's zone maps could not prune.", m.BlocksScanned.Load())
	counter("zkserve_blocks_pruned_total", "Blocks proven empty by zone maps and skipped unread.", m.BlocksPruned.Load())
	counter("zkserve_scans_degraded_total", "Scans completed in degraded mode with at least one block lost.", m.ScansDegraded.Load())
	counter("zkserve_blocks_skipped_total", "Blocks dropped from degraded scans for corruption.", m.BlocksSkipped.Load())
	fmt.Fprintf(w, "# HELP zkserve_request_duration_seconds Request latency by route class.\n# TYPE zkserve_request_duration_seconds histogram\n")
	m.scanLatency.write(w, "zkserve_request_duration_seconds", "scan")
	m.otherLatency.write(w, "zkserve_request_duration_seconds", "other")
}

// writeCacheProm appends the hot-block cache series to the exposition.
// The series are always present — zero-valued when the cache is off — so
// dashboards and the hit-rate math never hit missing-series gaps when a
// deployment toggles -cache-bytes.
func writeCacheProm(w io.Writer, enabled bool, st zukowski.CacheStats) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	on := int64(0)
	if enabled {
		on = 1
	}
	gauge("zkserve_cache_enabled", "Whether the hot-block cache is configured (1) or off (0).", on)
	counter("zkserve_cache_hits_total", "Block fetches served from the hot-block cache.", st.Hits)
	counter("zkserve_cache_misses_total", "Block fetches that had to read and verify from the source.", st.Misses)
	counter("zkserve_cache_inserts_total", "Verified frames admitted into the cache.", st.Puts)
	counter("zkserve_cache_evictions_total", "Frames evicted to stay under the byte budget.", st.Evictions)
	gauge("zkserve_cache_resident_bytes", "Bytes currently held by the cache (payload plus bookkeeping).", st.Bytes)
	gauge("zkserve_cache_capacity_bytes", "Configured cache byte budget.", st.Capacity)
	gauge("zkserve_cache_entries", "Frames currently resident in the cache.", st.Entries)
}

// writeHealthProm appends the corruption-health series: the quarantine
// gauge is computed at scrape time from the registry's readers, so it
// reflects exactly what those readers have latched.
func writeHealthProm(w io.Writer, quarantined int64) {
	fmt.Fprintf(w, "# HELP zkserve_blocks_quarantined Blocks latched as permanently corrupt across all registered columns.\n# TYPE zkserve_blocks_quarantined gauge\nzkserve_blocks_quarantined %d\n", quarantined)
}

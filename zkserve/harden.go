package zkserve

import (
	"net/http"
	"time"
)

// Harden applies read-path timeouts to hs, defending the scan service
// against slow-loris clients: a connection that trickles its request
// header, or goes idle between keep-alive requests, is closed instead of
// pinning a goroutine and a file descriptor forever. Only unset (zero)
// fields are filled, so a caller's explicit configuration wins.
//
// No overall ReadTimeout or WriteTimeout is imposed: scan requests
// legitimately stream responses for as long as the per-query time budget
// allows, and the server's own budgets (Config.MaxDuration, client
// disconnect via request context) already bound request lifetimes.
func Harden(hs *http.Server) {
	if hs.ReadHeaderTimeout == 0 {
		hs.ReadHeaderTimeout = 5 * time.Second
	}
	if hs.IdleTimeout == 0 {
		hs.IdleTimeout = 120 * time.Second
	}
	if hs.MaxHeaderBytes == 0 {
		hs.MaxHeaderBytes = 64 << 10
	}
}

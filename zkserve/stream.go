package zkserve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/zukowski"
)

// Wire formats. Row mode is NDJSON (application/x-ndjson): a header
// object, then one JSON array per row — [rowNumber, col0, col1, ...] —
// then a trailer object that tells the client whether the stream is
// complete, truncated by a budget, or killed by an error. The trailer is
// in-band because the 200 status is committed before the scan runs.
//
//	{"table":"demo","cols":["a","b"]}
//	[17,3,40]
//	[18,5,41]
//	{"done":true,"rows":2,"truncated":false,"elapsed_ms":1.8}
//
// Frame mode (application/x-zkc2) ships the raw compressed block frames
// of the requested columns, zone-map-pruned by the predicates but not
// decoded — the client decodes locally with zukowski.FrameDecoder and
// applies the exact predicate itself, paying CPU where the paper says it
// belongs: at the consumer of the data. The stream is little-endian:
//
//	header:  "ZKS1", u8 version, u8 reserved, u16 numCols,
//	         then per column: u8 widthBytes, u8 reserved, u16 nameLen, name
//	block:   u32 blockIndex, u64 firstRow, u32 rowCount,
//	         then per column: u32 frameLen, frame bytes
//	trailer: u32 0xFFFFFFFF, u8 status, u64 rowsRepresented,
//	         u32 blocksSkipped, u64 rowsLost,   (version >= 2 only)
//	         u16 msgLen, msg (empty unless status is error)
//
// A block index of 0xFFFFFFFF marks the trailer; a stream that ends
// without one was cut mid-flight. Version 2 added the degraded-scan
// accounting fields to the trailer; the reader accepts both versions.

// Frame-stream trailer status values.
const (
	FrameStatusDone      = 0 // every candidate block was shipped
	FrameStatusTruncated = 1 // a row or byte budget stopped the stream
	FrameStatusError     = 2 // the scan failed mid-stream; see the message
)

const (
	frameStreamVersion = 2
	frameTrailerMark   = 0xFFFFFFFF
)

var frameStreamMagic = [4]byte{'Z', 'K', 'S', '1'}

// countingWriter counts bytes and latches the first write error, so the
// stream encoders can keep appending unconditionally and the handler
// checks once per block.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}

// rowWriter encodes the NDJSON row stream.
type rowWriter struct {
	cw  countingWriter
	bw  *bufio.Writer
	buf []byte
}

func newRowWriter(w io.Writer) *rowWriter {
	rw := &rowWriter{}
	rw.cw.w = w
	rw.bw = bufio.NewWriterSize(&rw.cw, 32<<10)
	return rw
}

func (rw *rowWriter) header(table string, cols []string) {
	b, _ := json.Marshal(struct {
		Table string   `json:"table"`
		Cols  []string `json:"cols"`
	}{table, cols})
	rw.bw.Write(b)
	rw.bw.WriteByte('\n')
}

// rows appends one block's surviving rows: [row, v0, v1, ...] per line.
func (rw *rowWriter) rows(rows []int64, vals [][]int64) {
	for j, row := range rows {
		b := rw.buf[:0]
		b = append(b, '[')
		b = strconv.AppendInt(b, row, 10)
		for _, col := range vals {
			b = append(b, ',')
			b = strconv.AppendInt(b, col[j], 10)
		}
		b = append(b, ']', '\n')
		rw.buf = b
		rw.bw.Write(b)
	}
}

// trailer ends the stream. reason is empty for a complete scan,
// "rows"/"bytes" for a budget truncation, or an error description. rep
// carries degraded-scan losses; nil or loss-free reports add nothing.
func (rw *rowWriter) trailer(rows int64, truncated bool, reason string, scanErr error, elapsedMS float64, rep *zukowski.ScanReport) {
	t := struct {
		Done          bool    `json:"done"`
		Rows          int64   `json:"rows"`
		Truncated     bool    `json:"truncated,omitempty"`
		Reason        string  `json:"reason,omitempty"`
		Error         string  `json:"error,omitempty"`
		Degraded      bool    `json:"degraded,omitempty"`
		BlocksSkipped int64   `json:"blocks_skipped,omitempty"`
		RowsLost      int64   `json:"rows_lost,omitempty"`
		ElapsedMS     float64 `json:"elapsed_ms"`
	}{Done: scanErr == nil, Rows: rows, Truncated: truncated, Reason: reason, ElapsedMS: elapsedMS}
	if scanErr != nil {
		t.Error = scanErr.Error()
	}
	if rep.Degraded() {
		t.Degraded = true
		t.BlocksSkipped = int64(rep.BlocksSkipped)
		t.RowsLost = rep.RowsLost
	}
	b, _ := json.Marshal(t)
	rw.bw.Write(b)
	rw.bw.WriteByte('\n')
}

func (rw *rowWriter) flush() error {
	if err := rw.bw.Flush(); err != nil {
		return err
	}
	return rw.cw.err
}

func (rw *rowWriter) bytesWritten() int64 { return rw.cw.n }
func (rw *rowWriter) writeErr() error     { return rw.cw.err }

// totalBytes includes what is still buffered — the byte budget must see
// bytes as they are produced, not as they are flushed.
func (rw *rowWriter) totalBytes() int64 { return rw.cw.n + int64(rw.bw.Buffered()) }

// frameWriter encodes the binary frame stream.
type frameWriter struct {
	cw  countingWriter
	bw  *bufio.Writer
	buf []byte
}

func newFrameWriter(w io.Writer) *frameWriter {
	fw := &frameWriter{}
	fw.cw.w = w
	fw.bw = bufio.NewWriterSize(&fw.cw, 32<<10)
	return fw
}

func (fw *frameWriter) header(cols []FrameStreamCol) {
	b := fw.buf[:0]
	b = append(b, frameStreamMagic[:]...)
	b = append(b, frameStreamVersion, 0)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(cols)))
	for _, c := range cols {
		b = append(b, byte(c.WidthBytes), 0)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(c.Name)))
		b = append(b, c.Name...)
	}
	fw.buf = b
	fw.bw.Write(b)
}

func (fw *frameWriter) block(index int, firstRow int64, count int, frames [][]byte) {
	b := fw.buf[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(index))
	b = binary.LittleEndian.AppendUint64(b, uint64(firstRow))
	b = binary.LittleEndian.AppendUint32(b, uint32(count))
	fw.buf = b
	fw.bw.Write(b)
	for _, frame := range frames {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(frame)))
		fw.bw.Write(lenBuf[:])
		fw.bw.Write(frame)
	}
}

func (fw *frameWriter) trailer(status byte, rows int64, blocksSkipped int64, rowsLost int64, msg string) {
	b := fw.buf[:0]
	b = binary.LittleEndian.AppendUint32(b, frameTrailerMark)
	b = append(b, status)
	b = binary.LittleEndian.AppendUint64(b, uint64(rows))
	b = binary.LittleEndian.AppendUint32(b, uint32(blocksSkipped))
	b = binary.LittleEndian.AppendUint64(b, uint64(rowsLost))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(msg)))
	b = append(b, msg...)
	fw.buf = b
	fw.bw.Write(b)
}

func (fw *frameWriter) flush() error {
	if err := fw.bw.Flush(); err != nil {
		return err
	}
	return fw.cw.err
}

func (fw *frameWriter) bytesWritten() int64 { return fw.cw.n }
func (fw *frameWriter) writeErr() error     { return fw.cw.err }

func (fw *frameWriter) totalBytes() int64 { return fw.cw.n + int64(fw.bw.Buffered()) }

// FrameStreamCol describes one column of a frame stream: its name and
// the element width its frames decode at.
type FrameStreamCol struct {
	Name       string
	WidthBytes int
}

// FrameBlock is one block of a frame stream: its index in the column,
// the global row number of its first row, its row count, and the raw
// compressed frame of every streamed column (parallel to the reader's
// Cols). Frames are freshly allocated; the caller may retain them.
type FrameBlock struct {
	Index    int
	FirstRow int64
	Count    int
	Frames   [][]byte
}

// FrameTrailer ends a frame stream.
type FrameTrailer struct {
	Status byte  // FrameStatusDone, FrameStatusTruncated or FrameStatusError
	Rows   int64 // rows represented by the shipped blocks
	Err    string

	// Degraded-scan accounting (version 2 streams; zero on version 1):
	// blocks dropped for corruption and the rows they held.
	BlocksSkipped int64
	RowsLost      int64
}

// Degraded reports whether the stream dropped corrupt blocks.
func (t FrameTrailer) Degraded() bool { return t.BlocksSkipped > 0 }

// FrameStreamReader decodes the binary frame stream — the client half of
// frame mode, used by repro/zkserve/client and the tests. It accepts
// stream versions 1 and 2.
type FrameStreamReader struct {
	br      *bufio.Reader
	version byte
	Cols    []FrameStreamCol
	trailer FrameTrailer
	done    bool
}

// NewFrameStreamReader reads the stream header.
func NewFrameStreamReader(r io.Reader) (*FrameStreamReader, error) {
	br := bufio.NewReaderSize(r, 32<<10)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("zkserve: frame stream header: %w", err)
	}
	if [4]byte(hdr[:4]) != frameStreamMagic {
		return nil, fmt.Errorf("zkserve: bad frame stream magic %q", hdr[:4])
	}
	if hdr[4] < 1 || hdr[4] > frameStreamVersion {
		return nil, fmt.Errorf("zkserve: unsupported frame stream version %d", hdr[4])
	}
	n := int(binary.LittleEndian.Uint16(hdr[6:]))
	fr := &FrameStreamReader{br: br, version: hdr[4], Cols: make([]FrameStreamCol, n)}
	for i := range fr.Cols {
		var ch [4]byte
		if _, err := io.ReadFull(br, ch[:]); err != nil {
			return nil, fmt.Errorf("zkserve: frame stream column header: %w", err)
		}
		name := make([]byte, binary.LittleEndian.Uint16(ch[2:]))
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("zkserve: frame stream column name: %w", err)
		}
		fr.Cols[i] = FrameStreamCol{Name: string(name), WidthBytes: int(ch[0])}
	}
	return fr, nil
}

// maxWireFrame caps a single frame read off the wire (a corrupt or
// hostile length prefix must not demand an arbitrary allocation). Block
// frames are bounded far below this by MaxBlockValues.
const maxWireFrame = 1 << 30

// Next returns the next block, or nil after the trailer. A stream cut
// before its trailer returns an error.
func (fr *FrameStreamReader) Next() (*FrameBlock, error) {
	if fr.done {
		return nil, nil
	}
	var bh [16]byte
	if _, err := io.ReadFull(fr.br, bh[:4]); err != nil {
		return nil, fmt.Errorf("zkserve: frame stream cut mid-flight: %w", err)
	}
	index := binary.LittleEndian.Uint32(bh[:4])
	if index == frameTrailerMark {
		// v1 trailer: u8 status, u64 rows, u16 msgLen.
		// v2 adds u32 blocksSkipped + u64 rowsLost before msgLen.
		fixed := 11
		if fr.version >= 2 {
			fixed = 23
		}
		th := make([]byte, fixed)
		if _, err := io.ReadFull(fr.br, th); err != nil {
			return nil, fmt.Errorf("zkserve: frame stream trailer: %w", err)
		}
		t := FrameTrailer{Status: th[0], Rows: int64(binary.LittleEndian.Uint64(th[1:]))}
		msgOff := 9
		if fr.version >= 2 {
			t.BlocksSkipped = int64(binary.LittleEndian.Uint32(th[9:]))
			t.RowsLost = int64(binary.LittleEndian.Uint64(th[13:]))
			msgOff = 21
		}
		msg := make([]byte, binary.LittleEndian.Uint16(th[msgOff:]))
		if _, err := io.ReadFull(fr.br, msg); err != nil {
			return nil, fmt.Errorf("zkserve: frame stream trailer message: %w", err)
		}
		t.Err = string(msg)
		fr.trailer = t
		fr.done = true
		return nil, nil
	}
	if _, err := io.ReadFull(fr.br, bh[4:]); err != nil {
		return nil, fmt.Errorf("zkserve: frame stream block header: %w", err)
	}
	blk := &FrameBlock{
		Index:    int(index),
		FirstRow: int64(binary.LittleEndian.Uint64(bh[4:])),
		Count:    int(binary.LittleEndian.Uint32(bh[12:])),
		Frames:   make([][]byte, len(fr.Cols)),
	}
	for i := range blk.Frames {
		var lenBuf [4]byte
		if _, err := io.ReadFull(fr.br, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("zkserve: frame stream frame length: %w", err)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > maxWireFrame {
			return nil, fmt.Errorf("zkserve: frame stream frame of %d bytes exceeds limit", n)
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(fr.br, frame); err != nil {
			return nil, fmt.Errorf("zkserve: frame stream frame bytes: %w", err)
		}
		blk.Frames[i] = frame
	}
	return blk, nil
}

// Trailer returns the stream trailer; valid once Next has returned nil.
func (fr *FrameStreamReader) Trailer() FrameTrailer { return fr.trailer }

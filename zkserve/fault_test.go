package zkserve_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultio"
	"repro/zkserve"
	"repro/zkserve/client"
	"repro/zukowski"
)

// faultBlock is the block the fault tests damage; its rows are
// [faultBlock*testBV, (faultBlock+1)*testBV).
const faultBlock = 5

// newFaultyRegistry writes table "t" (c0 = row number, c1 = c1Val) to
// disk, flips one payload byte in block faultBlock of c1, and registers
// the files with opts. File-backed on purpose: only the ReaderAt path
// exercises retries and quarantine.
func newFaultyRegistry(t *testing.T, opts ...zkserve.RegistryOption) *zkserve.Registry {
	t.Helper()
	c0 := make([]int64, testRows)
	c1 := make([]int64, testRows)
	for i := range c0 {
		c0[i] = int64(i)
		c1[i] = c1Val(int64(i))
	}
	dir := t.TempDir()
	reg := zkserve.NewRegistry(opts...)
	for col, vals := range map[string][]int64{"c0": c0, "c1": c1} {
		data := encodeCol(t, vals, testBV)
		if col == "c1" {
			cr, err := zukowski.OpenColumn[int64](data)
			if err != nil {
				t.Fatal(err)
			}
			info, err := cr.BlockInfo(faultBlock)
			if err != nil {
				t.Fatal(err)
			}
			data[int(info.Offset)+info.Length/2] ^= 0x20
		}
		path := filepath.Join(dir, col+".zkc")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := reg.AddColumnFile("t", col, path); err != nil {
			t.Fatalf("AddColumnFile(%s): %v", col, err)
		}
	}
	t.Cleanup(func() { reg.Close() })
	return reg
}

// TestDegradedScanEndToEnd drives the whole corruption story over HTTP:
// an exact scan touching the bad block fails mid-stream, a skip_corrupt
// scan completes with exact loss accounting and correct surviving rows,
// and the quarantine latched by the failures surfaces in /tables,
// /healthz and /metrics.
func TestDegradedScanEndToEnd(t *testing.T) {
	reg := newFaultyRegistry(t)
	_, ts, cl := newTestServer(t, zkserve.Config{Registry: reg})
	ctx := context.Background()
	req := zkserve.ScanRequest{Table: "t", Cols: []string{"c0", "c1"}}

	// Exact contract first: the corruption kills the scan in-band.
	if _, err := cl.ScanRows(ctx, req, nil); !errors.Is(err, client.ErrScanFailed) {
		t.Fatalf("exact scan err = %v, want ErrScanFailed", err)
	}

	// Degraded: every row outside the damaged block arrives, losses are
	// accounted exactly, and values still match the oracle.
	req.SkipCorrupt = true
	var got int64
	res, err := cl.ScanRows(ctx, req, func(row int64, vals []int64) bool {
		if row >= faultBlock*testBV && row < (faultBlock+1)*testBV {
			t.Fatalf("row %d from the corrupt block was delivered", row)
		}
		if vals[0] != row || vals[1] != c1Val(row) {
			t.Fatalf("row %d: got %v", row, vals)
		}
		got++
		return true
	})
	if err != nil {
		t.Fatalf("degraded scan: %v", err)
	}
	if !res.Degraded || res.BlocksSkipped != 1 || res.RowsLost != testBV {
		t.Fatalf("result = %+v, want 1 block / %d rows lost", res, testBV)
	}
	if got != testRows-testBV || res.Rows != got {
		t.Fatalf("delivered %d rows (trailer %d), want %d", got, res.Rows, testRows-testBV)
	}

	// The mismatching block is now quarantined: capability listing and
	// health endpoint both say degraded, while the status stays 200.
	tables, err := cl.Tables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	meta := tables.Tables[0]
	if !meta.Degraded {
		t.Fatalf("table meta not degraded: %+v", meta)
	}
	for _, cm := range meta.Columns {
		want := 0
		if cm.Name == "c1" {
			want = 1
		}
		if cm.QuarantinedBlocks != want {
			t.Fatalf("column %s quarantined_blocks = %d, want %d", cm.Name, cm.QuarantinedBlocks, want)
		}
	}
	body := httpGet(t, ts.URL+"/healthz")
	if !strings.Contains(body, "degraded") {
		t.Fatalf("healthz body = %q, want degraded", body)
	}
	metrics := httpGet(t, ts.URL+"/metrics")
	for _, want := range []string{
		"zkserve_blocks_quarantined 1",
		"zkserve_scans_degraded_total 1",
		"zkserve_blocks_skipped_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDegradedAggregateAndFrames checks the two other response shapes
// carry the same loss accounting: aggregate responses and the v2 frame
// stream trailer.
func TestDegradedAggregateAndFrames(t *testing.T) {
	reg := newFaultyRegistry(t)
	_, _, cl := newTestServer(t, zkserve.Config{Registry: reg})
	ctx := context.Background()

	agg, err := cl.Aggregate(ctx, zkserve.ScanRequest{
		Table: "t", Cols: []string{"c0"}, Agg: "all", AggCol: "c1", SkipCorrupt: true,
	})
	if err != nil {
		t.Fatalf("degraded aggregate: %v", err)
	}
	if !agg.Degraded || agg.BlocksSkipped != 1 || agg.RowsLost != testBV {
		t.Fatalf("aggregate = %+v", agg)
	}
	if agg.Result.Count != testRows-testBV {
		t.Fatalf("count = %d, want %d", agg.Result.Count, testRows-testBV)
	}

	// Frame mode without skip fails in-band.
	req := zkserve.ScanRequest{Table: "t", Cols: []string{"c1"}}
	if _, err := cl.ScanFrames(ctx, req, nil); !errors.Is(err, client.ErrScanFailed) {
		t.Fatalf("exact frame scan err = %v", err)
	}
	// With skip the corrupt block is dropped and accounted in the trailer;
	// everything that ships still decodes.
	req.SkipCorrupt = true
	var dec zukowski.FrameDecoder[int64]
	var buf []int64
	shipped := 0
	res, err := cl.ScanFrames(ctx, req, func(cols []zkserve.FrameStreamCol, blk *zkserve.FrameBlock) bool {
		if blk.Index == faultBlock {
			t.Fatal("corrupt block was shipped")
		}
		out, derr := dec.Decode(buf[:0], blk.Frames[0])
		if derr != nil {
			t.Fatalf("block %d frame does not decode: %v", blk.Index, derr)
		}
		buf = out
		shipped++
		return true
	})
	if err != nil {
		t.Fatalf("degraded frame scan: %v", err)
	}
	if !res.Degraded || res.BlocksSkipped != 1 || res.RowsLost != testBV {
		t.Fatalf("frame result = %+v", res)
	}
	if wantBlocks := testRows/testBV - 1; shipped != wantBlocks {
		t.Fatalf("shipped %d blocks, want %d", shipped, wantBlocks)
	}
	if res.Rows != testRows-testBV {
		t.Fatalf("trailer rows = %d, want %d", res.Rows, testRows-testBV)
	}
}

// TestRegistryRetryPolicy: a column file whose source injects two
// transient faults per armed range serves cleanly when the registry opens
// readers with a 3-attempt retry policy — zero failed scans, nothing
// quarantined.
func TestRegistryRetryPolicy(t *testing.T) {
	vals := make([]int64, testRows)
	for i := range vals {
		vals[i] = int64(i)
	}
	data := encodeCol(t, vals, testBV)
	cr, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cr.BlockInfo(3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c0.zkc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var injected *faultio.ReaderAt
	reg := zkserve.NewRegistry(
		zkserve.WithRetryPolicy(zukowski.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}),
		zkserve.WithSourceWrapper(func(r io.ReaderAt, size int64) io.ReaderAt {
			// Arm the faults on one block's payload so the open-time header
			// and footer reads stay clean.
			injected = faultio.NewReaderAt(r, 1, faultio.Rule{
				Kind: faultio.TransientErr, Off: int64(info.Offset), Len: int64(info.Length), Count: 2,
			})
			return injected
		}),
	)
	if err := reg.AddColumnFile("t", "c0", path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })

	_, _, cl := newTestServer(t, zkserve.Config{Registry: reg})
	res, err := cl.ScanRows(context.Background(), zkserve.ScanRequest{Table: "t", Cols: []string{"c0"}}, nil)
	if err != nil {
		t.Fatalf("scan through transient faults: %v", err)
	}
	if res.Rows != testRows || res.Degraded {
		t.Fatalf("result = %+v, want all %d rows, not degraded", res, testRows)
	}
	if st := injected.Stats(); st.Injected[faultio.TransientErr] != 2 {
		t.Fatalf("injected %d transient faults, want 2", st.Injected[faultio.TransientErr])
	}
	if n := reg.QuarantinedBlocks(); n != 0 {
		t.Fatalf("%d blocks quarantined after transient-only faults", n)
	}
}

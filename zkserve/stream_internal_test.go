package zkserve

import (
	"bytes"
	"strings"
	"testing"
)

func TestFrameStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	cols := []FrameStreamCol{{Name: "alpha", WidthBytes: 8}, {Name: "b", WidthBytes: 2}}
	fw.header(cols)
	frames := [][]byte{{1, 2, 3, 4}, {9}}
	fw.block(7, 7168, 1024, frames)
	fw.block(9, 9216, 512, [][]byte{{}, {0xff, 0xee}})
	fw.trailer(FrameStatusTruncated, 1536, 0, 0, "")
	if err := fw.flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := fw.bytesWritten(); got != int64(buf.Len()) {
		t.Fatalf("bytesWritten = %d, buffer holds %d", got, buf.Len())
	}

	fr, err := NewFrameStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reading header: %v", err)
	}
	if len(fr.Cols) != 2 || fr.Cols[0] != cols[0] || fr.Cols[1] != cols[1] {
		t.Fatalf("cols = %+v, want %+v", fr.Cols, cols)
	}
	blk, err := fr.Next()
	if err != nil {
		t.Fatalf("first block: %v", err)
	}
	if blk.Index != 7 || blk.FirstRow != 7168 || blk.Count != 1024 {
		t.Fatalf("first block = %+v", blk)
	}
	if !bytes.Equal(blk.Frames[0], frames[0]) || !bytes.Equal(blk.Frames[1], frames[1]) {
		t.Fatalf("first block frames = %v", blk.Frames)
	}
	blk, err = fr.Next()
	if err != nil || blk == nil {
		t.Fatalf("second block: %v, %v", blk, err)
	}
	if len(blk.Frames[0]) != 0 || !bytes.Equal(blk.Frames[1], []byte{0xff, 0xee}) {
		t.Fatalf("second block frames = %v", blk.Frames)
	}
	if blk, err = fr.Next(); err != nil || blk != nil {
		t.Fatalf("after last block: %v, %v", blk, err)
	}
	tr := fr.Trailer()
	if tr.Status != FrameStatusTruncated || tr.Rows != 1536 || tr.Err != "" {
		t.Fatalf("trailer = %+v", tr)
	}
}

func TestFrameStreamErrorTrailer(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	fw.header(nil)
	fw.trailer(FrameStatusError, 0, 3, 12288, "boom")
	if err := fw.flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	fr, err := NewFrameStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	if blk, err := fr.Next(); err != nil || blk != nil {
		t.Fatalf("Next = %v, %v", blk, err)
	}
	if tr := fr.Trailer(); tr.Status != FrameStatusError || tr.Err != "boom" ||
		tr.BlocksSkipped != 3 || tr.RowsLost != 12288 || !tr.Degraded() {
		t.Fatalf("trailer = %+v", tr)
	}
}

// TestFrameStreamV1Trailer: the reader still decodes version-1 streams,
// whose trailers lack the degraded-accounting fields.
func TestFrameStreamV1Trailer(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	fw.header(nil)
	fw.trailer(FrameStatusDone, 77, 0, 0, "")
	if err := fw.flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Rewrite the stream as v1: flip the version byte and splice the two
	// degraded fields (u32+u64 = 12 bytes) out of the trailer.
	raw := buf.Bytes()
	raw[4] = 1
	cut := len(raw) - 2 - 12 // msgLen is last (empty msg)
	v1 := append(append([]byte{}, raw[:cut]...), raw[cut+12:]...)
	fr, err := NewFrameStreamReader(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 header: %v", err)
	}
	if blk, err := fr.Next(); err != nil || blk != nil {
		t.Fatalf("Next = %v, %v", blk, err)
	}
	if tr := fr.Trailer(); tr.Status != FrameStatusDone || tr.Rows != 77 || tr.Degraded() {
		t.Fatalf("v1 trailer = %+v", tr)
	}
}

func TestFrameStreamCutMidFlight(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	fw.header([]FrameStreamCol{{Name: "c", WidthBytes: 8}})
	fw.block(0, 0, 4, [][]byte{{1, 2, 3}})
	if err := fw.flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// No trailer: the stream was cut. The reader must not report a clean
	// end.
	fr, err := NewFrameStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	if _, err := fr.Next(); err != nil {
		t.Fatalf("block: %v", err)
	}
	if _, err := fr.Next(); err == nil {
		t.Fatal("cut stream reported a clean end")
	}

	// A garbage magic is refused outright.
	if _, err := NewFrameStreamReader(strings.NewReader("NOPE0000")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRowWriterShape(t *testing.T) {
	var buf bytes.Buffer
	rw := newRowWriter(&buf)
	rw.header("t", []string{"a", "b"})
	rw.rows([]int64{5, 6}, [][]int64{{10, -20}, {30, 40}})
	rw.trailer(2, true, "rows", nil, 1.5, nil)
	if err := rw.flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	want := `{"table":"t","cols":["a","b"]}
[5,10,30]
[6,-20,40]
`
	got := buf.String()
	if !strings.HasPrefix(got, want) {
		t.Fatalf("stream = %q, want prefix %q", got, want)
	}
	if !strings.Contains(got, `"done":true`) || !strings.Contains(got, `"truncated":true`) ||
		!strings.Contains(got, `"reason":"rows"`) {
		t.Fatalf("trailer line = %q", got[strings.LastIndex(got[:len(got)-1], "\n")+1:])
	}
}

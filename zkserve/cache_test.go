package zkserve_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/zkserve"
)

// newFileRegistry builds the standard test table out of file-backed
// columns, the configuration the hot-block cache exists for.
func newFileRegistry(t *testing.T, opts ...zkserve.RegistryOption) *zkserve.Registry {
	t.Helper()
	dir := t.TempDir()
	c0 := make([]int64, testRows)
	c1 := make([]int64, testRows)
	for i := range c0 {
		c0[i] = int64(i)
		c1[i] = c1Val(int64(i))
	}
	reg := zkserve.NewRegistry(opts...)
	t.Cleanup(func() { reg.Close() })
	for col, data := range map[string][]byte{
		"c0": encodeCol(t, c0, testBV),
		"c1": encodeCol(t, c1, testBV),
	} {
		path := filepath.Join(dir, col+".zkc")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := reg.AddColumnFile("t", col, path); err != nil {
			t.Fatalf("AddColumnFile(%s): %v", col, err)
		}
	}
	return reg
}

// scrapeMetric pulls one un-labeled series value out of /metrics.
func scrapeMetric(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for line := range strings.SplitSeq(string(body), "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestCacheServesRepeatScans: with Config.CacheBytes set, the second
// frame-mode sweep over a file-backed table is answered from the cache
// — hits show up in the registry stats, /metrics and /tables — and both
// sweeps carry identical data.
func TestCacheServesRepeatScans(t *testing.T) {
	reg := newFileRegistry(t)
	_, ts, cl := newTestServer(t, zkserve.Config{Registry: reg, CacheBytes: 64 << 20})

	sweep := func() (rows int64, frames int) {
		res, err := cl.ScanFrames(context.Background(), zkserve.ScanRequest{
			Table: "t", Cols: []string{"c0", "c1"},
		}, func(cols []zkserve.FrameStreamCol, blk *zkserve.FrameBlock) bool {
			frames += len(blk.Frames)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows, frames
	}
	rows1, frames1 := sweep()
	if rows1 != testRows {
		t.Fatalf("first sweep: %d rows", rows1)
	}
	cold := reg.CacheStats()
	if cold.Puts == 0 || cold.Hits != 0 {
		t.Fatalf("cold sweep stats: %+v", cold)
	}
	rows2, frames2 := sweep()
	if rows2 != rows1 || frames2 != frames1 {
		t.Fatalf("warm sweep diverged: %d rows / %d frames vs %d / %d", rows2, frames2, rows1, frames1)
	}
	warm := reg.CacheStats()
	if warm.Hits < cold.Puts {
		t.Fatalf("warm sweep hit %d times, want >= %d", warm.Hits, cold.Puts)
	}
	if warm.Puts != cold.Puts {
		t.Fatalf("warm sweep refilled the cache: %+v", warm)
	}

	if got := scrapeMetric(t, ts.URL, "zkserve_cache_hits_total"); got != warm.Hits {
		t.Fatalf("/metrics hits = %d, want %d", got, warm.Hits)
	}
	if got := scrapeMetric(t, ts.URL, "zkserve_cache_enabled"); got != 1 {
		t.Fatal("/metrics says cache disabled")
	}
	if got := scrapeMetric(t, ts.URL, "zkserve_cache_resident_bytes"); got != warm.Bytes {
		t.Fatalf("/metrics resident = %d, want %d", got, warm.Bytes)
	}

	tr, err := cl.Tables(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Cache.Enabled || tr.Cache.CapacityBytes != 64<<20 || tr.Cache.Entries != warm.Entries {
		t.Fatalf("/tables cache info: %+v", tr.Cache)
	}
}

// TestCacheRowScansAgree: row-mode results through a cache-enabled
// server match the cache-off server row for row, including under a tiny
// budget that churns mid-scan.
func TestCacheRowScansAgree(t *testing.T) {
	req := zkserve.ScanRequest{
		Table: "t", Cols: []string{"c0", "c1"},
		Preds: []zkserve.PredSpec{pred("c1", 100, 499)},
	}
	collect := func(cacheBytes int64) map[int64]int64 {
		reg := newFileRegistry(t)
		_, _, cl := newTestServer(t, zkserve.Config{Registry: reg, CacheBytes: cacheBytes})
		got := map[int64]int64{}
		for pass := 0; pass < 2; pass++ {
			clear(got)
			if _, err := cl.ScanRows(context.Background(), req, func(row int64, vals []int64) bool {
				got[row] = vals[1]
				return true
			}); err != nil {
				t.Fatal(err)
			}
		}
		return got
	}
	want := collect(0)
	if len(want) == 0 {
		t.Fatal("predicate selected nothing")
	}
	for _, budget := range []int64{64 << 20, 16 * (testBV*8 + 112) * 2} {
		got := collect(budget)
		if len(got) != len(want) {
			t.Fatalf("budget %d: %d rows, want %d", budget, len(got), len(want))
		}
		for row, v := range want {
			if got[row] != v {
				t.Fatalf("budget %d: row %d = %d, want %d", budget, row, got[row], v)
			}
		}
	}
}

// TestCacheDisabledZeroSeries: with no cache configured the series still
// exist, zero-valued, and /tables reports it off.
func TestCacheDisabledZeroSeries(t *testing.T) {
	_, ts, cl := newTestServer(t, zkserve.Config{Registry: newFileRegistry(t)})
	if got := scrapeMetric(t, ts.URL, "zkserve_cache_enabled"); got != 0 {
		t.Fatal("cache reported enabled")
	}
	if got := scrapeMetric(t, ts.URL, "zkserve_cache_hits_total"); got != 0 {
		t.Fatalf("hits = %d on a cacheless server", got)
	}
	tr, err := cl.Tables(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cache.Enabled || tr.Cache.CapacityBytes != 0 {
		t.Fatalf("/tables cache info: %+v", tr.Cache)
	}
}

// TestCacheRegistryOption: WithCacheBytes at construction wires columns
// registered afterwards, and EnableCache retrofits columns registered
// before — both end with every file-backed reader caching.
func TestCacheRegistryOption(t *testing.T) {
	viaOption := newFileRegistry(t, zkserve.WithCacheBytes(1<<20))
	if !viaOption.CacheEnabled() || viaOption.CacheCapacity() != 1<<20 {
		t.Fatalf("option: enabled=%v capacity=%d", viaOption.CacheEnabled(), viaOption.CacheCapacity())
	}
	retro := newFileRegistry(t)
	if retro.CacheEnabled() {
		t.Fatal("cache on before EnableCache")
	}
	retro.EnableCache(1 << 20)

	for name, reg := range map[string]*zkserve.Registry{"option": viaOption, "retrofit": retro} {
		if st := reg.CacheStats(); st.Capacity != 1<<20 {
			t.Fatalf("%s: capacity = %d", name, st.Capacity)
		}
	}

	// The retrofit registry actually caches: run a scan and expect fills.
	_, _, cl := newTestServer(t, zkserve.Config{Registry: retro})
	if _, err := cl.ScanRows(context.Background(), zkserve.ScanRequest{
		Table: "t", Cols: []string{"c0"},
	}, func(int64, []int64) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if st := retro.CacheStats(); st.Puts == 0 {
		t.Fatalf("retrofit cache saw no fills: %+v", st)
	}

	// EnableCache(0) turns it back off.
	retro.EnableCache(0)
	if retro.CacheEnabled() {
		t.Fatal("EnableCache(0) left the cache on")
	}
}

// TestCacheInMemoryColumnsBypass: an all-in-memory registry with a cache
// configured never fills it — the stable readers bypass by design.
func TestCacheInMemoryColumnsBypass(t *testing.T) {
	reg := newTestRegistry(t)
	_, _, cl := newTestServer(t, zkserve.Config{Registry: reg, CacheBytes: 1 << 20})
	if _, err := cl.ScanRows(context.Background(), zkserve.ScanRequest{
		Table: "t", Cols: []string{"c0"},
	}, func(int64, []int64) bool { return true }); err != nil {
		t.Fatal(err)
	}
	st := reg.CacheStats()
	if st.Puts != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("in-memory columns drove the cache: %+v", st)
	}
	if !reg.CacheEnabled() {
		t.Fatal("cache config lost")
	}
}

package zkserve

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/zktable"
	"repro/zukowski"
)

// Typed errors of the serving layer. The HTTP handlers map these to
// status codes: ErrUnknownTable/ErrUnknownColumn to 404, ErrMismatch
// (and zukowski.ErrColumnSetMismatch) to 422, ErrBadRequest to 400.
var (
	ErrUnknownTable  = errors.New("zkserve: unknown table")
	ErrUnknownColumn = errors.New("zkserve: unknown column")
	ErrBadRequest    = errors.New("zkserve: bad request")
	ErrMismatch      = errors.New("zkserve: columns cannot be scanned together")
)

// colHandle is the width-erased handle of one registered column. The
// underlying reader is a zukowski.ColumnReader[T] for the signed integer
// type of the column's stored element width; predicates and statistics
// cross this boundary in the wire domain (int64), clamped per column.
type colHandle interface {
	colName() string
	widthBytes() int
	rows() int
	numBlocks() int
	blockCount(b int) int
	blockFirstRow(b int) int64
	compressedBytes() int
	// minMax folds the column's zone maps; ok is false on ZKC1.
	minMax() (lo, hi int64, ok bool)
	// excludes reports whether block b's zone map proves the wire-domain
	// range [lo, hi] selects nothing in the block.
	excludes(b int, lo, hi int64) bool
	// frameBytes returns block b's raw frame, checksum-verified when the
	// container stores one. The returned slice must not be modified.
	frameBytes(b int) ([]byte, error)
	// setCache attaches the registry's hot-block cache to the reader
	// (a no-op for in-memory columns, which are already resident).
	setCache(c zukowski.BlockCache)
	// quarantinedBlocks counts the blocks the reader has latched as
	// permanently corrupt — the per-column health gauge.
	quarantinedBlocks() int
	// reader returns the underlying *zukowski.ColumnReader[T].
	reader() any
}

// column is the generic colHandle implementation for one element type.
type column[T zukowski.Integer] struct {
	name   string
	cr     *zukowski.ColumnReader[T]
	starts []int64 // starts[b] = first row of block b
	counts []int32 // counts[b] = rows in block b
	zlo    int64   // folded zone-map min (wire domain)
	zhi    int64   // folded zone-map max
	hasZM  bool
}

func (c *column[T]) colName() string           { return c.name }
func (c *column[T]) rows() int                 { return c.cr.Len() }
func (c *column[T]) numBlocks() int            { return c.cr.NumBlocks() }
func (c *column[T]) blockCount(b int) int      { return int(c.counts[b]) }
func (c *column[T]) blockFirstRow(b int) int64 { return c.starts[b] }
func (c *column[T]) compressedBytes() int      { return c.cr.CompressedBytes() }
func (c *column[T]) reader() any               { return c.cr }

func (c *column[T]) widthBytes() int {
	var zero T
	return int(elemWidth(zero))
}

func (c *column[T]) minMax() (int64, int64, bool) { return c.zlo, c.zhi, c.hasZM }

func (c *column[T]) excludes(b int, lo, hi int64) bool {
	tlo, thi, ok := clampRange[T](lo, hi)
	if !ok {
		return true // the range has no image in T's domain: nothing can match
	}
	bmin, bmax, zok := c.cr.ZoneMap(b)
	return zok && (bmax < tlo || bmin > thi)
}

// frameBytes delegates to the reader's verified frame path, so frame-mode
// streaming shares the reader's verification latch (in-memory) or the
// registry's hot-block cache (file-backed) instead of re-reading and
// re-hashing the payload per request.
func (c *column[T]) frameBytes(b int) ([]byte, error) {
	return c.cr.FrameBytes(b)
}

func (c *column[T]) setCache(cache zukowski.BlockCache) {
	c.cr.SetBlockCache(cache)
}

func (c *column[T]) quarantinedBlocks() int {
	return len(c.cr.QuarantinedBlocks())
}

// elemWidth returns T's size in bytes without reflection on the hot path.
func elemWidth[T zukowski.Integer](T) uintptr {
	switch any(*new(T)).(type) {
	case int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32:
		return 4
	default:
		return 8
	}
}

// clampRange maps a wire-domain range [lo, hi] into T's domain. ok is
// false when the intersection is empty — the predicate can match nothing
// of this column. Only signed element types are instantiated by the
// registry, so the domain is [-2^(w-1), 2^(w-1)-1].
func clampRange[T zukowski.Integer](lo, hi int64) (tlo, thi T, ok bool) {
	if lo > hi {
		return tlo, thi, false
	}
	bits := 8 * int(elemWidth(tlo))
	minT, maxT := int64(math.MinInt64), int64(math.MaxInt64)
	if bits < 64 {
		maxT = 1<<(bits-1) - 1
		minT = -1 << (bits - 1)
	}
	if lo > maxT || hi < minT {
		return tlo, thi, false
	}
	return T(max(lo, minT)), T(min(hi, maxT)), true
}

// openColumn builds the typed handle: the container is opened, the block
// directory materialized into row starts, and the zone maps folded into
// one column-wide [min, max] for the capability listing and loadgen's
// predicate windows.
func openColumn[T zukowski.Integer](name string, mem []byte, src io.ReaderAt, size int64, opts []zukowski.ReaderOption) (colHandle, error) {
	var cr *zukowski.ColumnReader[T]
	var err error
	if mem != nil {
		cr, err = zukowski.OpenColumn[T](mem)
	} else {
		cr, err = zukowski.OpenColumnReaderAt[T](src, size, opts...)
	}
	if err != nil {
		return nil, err
	}
	return handleFromReader(name, cr)
}

// handleFromReader builds the typed handle around an already-open reader
// — the path sharded tables use, whose readers belong to the zktable
// handle.
func handleFromReader[T zukowski.Integer](name string, cr *zukowski.ColumnReader[T]) (colHandle, error) {
	c := &column[T]{name: name, cr: cr}
	nb := cr.NumBlocks()
	c.starts = make([]int64, nb)
	c.counts = make([]int32, nb)
	row := int64(0)
	for b := 0; b < nb; b++ {
		info, err := cr.BlockInfo(b)
		if err != nil {
			return nil, err
		}
		c.starts[b] = row
		c.counts[b] = int32(info.Count)
		row += int64(info.Count)
		if info.HasZoneMap {
			lo, hi := int64(info.Min), int64(info.Max)
			if !c.hasZM {
				c.zlo, c.zhi, c.hasZM = lo, hi, true
			} else {
				c.zlo, c.zhi = min(c.zlo, lo), max(c.zhi, hi)
			}
		}
	}
	return c, nil
}

// newColHandle sniffs the container's element width from its header and
// opens the column as the signed integer type of that width (the header
// records width, not signedness).
func newColHandle(name string, mem []byte, src io.ReaderAt, size int64, opts []zukowski.ReaderOption) (colHandle, error) {
	var hdr [16]byte
	if mem != nil {
		if len(mem) < len(hdr) {
			return nil, fmt.Errorf("%w: %d bytes", zukowski.ErrCorruptColumn, len(mem))
		}
		copy(hdr[:], mem)
	} else {
		if _, err := src.ReadAt(hdr[:], 0); err != nil {
			return nil, fmt.Errorf("%w: reading header: %v", zukowski.ErrCorruptColumn, err)
		}
	}
	switch hdr[4] {
	case 1:
		return openColumn[int8](name, mem, src, size, opts)
	case 2:
		return openColumn[int16](name, mem, src, size, opts)
	case 4:
		return openColumn[int32](name, mem, src, size, opts)
	case 8:
		return openColumn[int64](name, mem, src, size, opts)
	}
	return nil, fmt.Errorf("%w: unsupported element width %d", zukowski.ErrCorruptColumn, hdr[4])
}

// Table is a named collection of columns. Columns are registered
// individually and validated individually; whether a particular subset
// can be scanned together (same geometry, and for row mode the same
// element width) is checked per request, so one malformed column poisons
// only the requests that touch it.
//
// A table is either flat (cols, one container per column — the classic
// layout) or sharded (segs, backed by a zktable directory: one committed
// manifest generation spanning many immutable segments). Sharded tables
// expose the committed generation and quarantine state on /tables and
// execute every scan per segment with global row and block numbering.
type Table struct {
	name   string
	cols   []colHandle
	byName map[string]int

	// Sharded (zktable-backed) state.
	isShard   bool
	segs      []*servedSeg
	colNames  []string // schema order, from the manifest
	gen       uint64   // committed generation being served
	totalRows int64    // committed rows, including quarantined segments
}

// sharded reports whether the table is zktable-backed.
func (t *Table) sharded() bool { return t.isShard }

// allCols returns every live column handle — the flat list, or the
// handles of every in-service segment of a sharded table.
func (t *Table) allCols() []colHandle {
	if !t.sharded() {
		return t.cols
	}
	var out []colHandle
	for _, s := range t.segs {
		if s.sub != nil {
			out = append(out, s.sub.cols...)
		}
	}
	return out
}

// colName returns column i's name in schema order.
func (t *Table) colName(i int) string {
	if t.sharded() {
		return t.colNames[i]
	}
	return t.cols[i].colName()
}

// colWidth returns column i's element width in bytes.
func (t *Table) colWidth(i int) int {
	if t.sharded() {
		for _, s := range t.segs {
			if s.sub != nil {
				return s.sub.cols[i].widthBytes()
			}
		}
		return 8 // every segment quarantined; width is moot
	}
	return t.cols[i].widthBytes()
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the column names in registration (schema) order.
func (t *Table) Columns() []string {
	if t.sharded() {
		return append([]string(nil), t.colNames...)
	}
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.colName()
	}
	return names
}

// colIndex resolves a column name.
func (t *Table) colIndex(name string) (int, error) {
	i, ok := t.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q has no column %q", ErrUnknownColumn, t.name, name)
	}
	return i, nil
}

// ColumnMeta describes one column in the /tables capability listing.
type ColumnMeta struct {
	Name            string `json:"name"`
	WidthBytes      int    `json:"width_bytes"`
	Rows            int    `json:"rows"`
	Blocks          int    `json:"blocks"`
	CompressedBytes int    `json:"compressed_bytes"`
	HasMinMax       bool   `json:"has_min_max"`
	Min             int64  `json:"min"`
	Max             int64  `json:"max"`

	// QuarantinedBlocks counts blocks latched as permanently corrupt —
	// unreadable until the file is repaired (see segdump -repair).
	QuarantinedBlocks int `json:"quarantined_blocks,omitempty"`
}

// TableMeta describes one table in the /tables capability listing.
type TableMeta struct {
	Name    string       `json:"name"`
	Rows    int          `json:"rows"` // committed rows (first column for flat tables)
	Columns []ColumnMeta `json:"columns"`

	// Sharded (zktable-backed) tables also report the committed manifest
	// generation they serve and their segment-level health.
	Generation          uint64 `json:"generation,omitempty"`
	Segments            int    `json:"segments,omitempty"`
	QuarantinedSegments int    `json:"quarantined_segments,omitempty"`
	RowsUnavailable     int64  `json:"rows_unavailable,omitempty"`

	// Degraded is set when any column has quarantined blocks or any
	// segment is quarantined: exact scans over them fail, degraded scans
	// skip them.
	Degraded bool `json:"degraded,omitempty"`
}

// Meta returns the table's capability listing entry.
func (t *Table) Meta() TableMeta {
	if t.sharded() {
		return t.metaSharded()
	}
	m := TableMeta{Name: t.name}
	if len(t.cols) > 0 {
		m.Rows = t.cols[0].rows()
	}
	for _, c := range t.cols {
		cm := ColumnMeta{
			Name:              c.colName(),
			WidthBytes:        c.widthBytes(),
			Rows:              c.rows(),
			Blocks:            c.numBlocks(),
			CompressedBytes:   c.compressedBytes(),
			QuarantinedBlocks: c.quarantinedBlocks(),
		}
		cm.Min, cm.Max, cm.HasMinMax = c.minMax()
		if cm.QuarantinedBlocks > 0 {
			m.Degraded = true
		}
		m.Columns = append(m.Columns, cm)
	}
	return m
}

// Registry maps table names to column sets. It is immutable once serving
// starts: build it (OpenDir or AddColumnBytes/AddColumnFile), then share
// it across every request — the underlying ColumnReaders are safe for
// concurrent use, so the registry needs no locking of its own.
type Registry struct {
	tables  map[string]*Table
	names   []string
	closers []io.Closer
	cache   *zukowski.BlockLRU // shared hot-block cache, nil when disabled

	// retry is applied to every file-backed column opened after it is set;
	// wrap interposes on the raw source (fault injection, tracing).
	retry   zukowski.RetryPolicy
	hasRtry bool
	wrap    func(r io.ReaderAt, size int64) io.ReaderAt
}

// RegistryOption configures a Registry at construction.
type RegistryOption func(*Registry)

// WithCacheBytes enables the registry's shared hot-block cache with a
// byte budget; see EnableCache. maxBytes <= 0 leaves the cache off.
func WithCacheBytes(maxBytes int64) RegistryOption {
	return func(r *Registry) { r.EnableCache(maxBytes) }
}

// WithRetryPolicy makes every file-backed column registered afterwards
// retry transient source-read failures per p (see zukowski.RetryPolicy).
// In-memory columns cannot observe I/O errors and ignore it.
func WithRetryPolicy(p zukowski.RetryPolicy) RegistryOption {
	return func(r *Registry) { r.retry, r.hasRtry = p, true }
}

// WithSourceWrapper interposes wrap on the raw io.ReaderAt of every
// file-backed column registered afterwards — the hook zkserved's chaos
// mode uses to inject faults between the reader and the filesystem.
func WithSourceWrapper(wrap func(r io.ReaderAt, size int64) io.ReaderAt) RegistryOption {
	return func(r *Registry) { r.wrap = wrap }
}

// NewRegistry returns an empty registry.
func NewRegistry(opts ...RegistryOption) *Registry {
	r := &Registry{tables: map[string]*Table{}}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// EnableCache gives the registry one process-wide hot-block cache of at
// most maxBytes of verified frame bytes, shared by every file-backed
// column across all tables (in-memory columns are already resident and
// ignore it). Columns registered before and after the call are both
// wired up; under the immutable-container model the cache needs no
// explicit invalidation. maxBytes <= 0 disables caching.
func (r *Registry) EnableCache(maxBytes int64) {
	if maxBytes <= 0 {
		r.cache = nil
	} else {
		r.cache = zukowski.NewBlockLRU(maxBytes)
	}
	for _, t := range r.tables {
		for _, c := range t.allCols() {
			c.setCache(blockCacheOrNil(r.cache))
		}
	}
}

// blockCacheOrNil converts a possibly-nil *BlockLRU into the interface
// without producing a non-nil interface around a nil pointer.
func blockCacheOrNil(c *zukowski.BlockLRU) zukowski.BlockCache {
	if c == nil {
		return nil
	}
	return c
}

// CacheEnabled reports whether a hot-block cache is attached.
func (r *Registry) CacheEnabled() bool { return r.cache != nil }

// CacheCapacity returns the cache's byte budget, 0 when disabled.
func (r *Registry) CacheCapacity() int64 {
	if r.cache == nil {
		return 0
	}
	return r.cache.Capacity()
}

// CacheStats snapshots the shared cache's counters; the zero value when
// the cache is disabled.
func (r *Registry) CacheStats() zukowski.CacheStats {
	if r.cache == nil {
		return zukowski.CacheStats{}
	}
	return r.cache.Stats()
}

// QuarantinedBlocks sums the quarantined-block counts of every column
// across all tables — the process-wide corruption gauge behind /healthz
// and the zkserve_blocks_quarantined metric.
func (r *Registry) QuarantinedBlocks() int64 {
	var n int64
	for _, t := range r.tables {
		for _, c := range t.allCols() {
			n += int64(c.quarantinedBlocks())
		}
	}
	return n
}

// QuarantinedSegments sums segments out of service across all sharded
// tables. Like QuarantinedBlocks it is read-only introspection for
// health reporting; per-table detail is on /tables.
func (r *Registry) QuarantinedSegments() int {
	n := 0
	for _, t := range r.tables {
		for _, s := range t.segs {
			if s.quarErr != nil {
				n++
			}
		}
	}
	return n
}

// Tables returns the registered table names, sorted.
func (r *Registry) Tables() []string {
	names := make([]string, len(r.names))
	copy(names, r.names)
	sort.Strings(names)
	return names
}

// Table resolves a table name.
func (r *Registry) Table(name string) (*Table, error) {
	t, ok := r.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTable, name)
	}
	return t, nil
}

func (r *Registry) table(name string) *Table {
	t, ok := r.tables[name]
	if !ok {
		t = &Table{name: name, byName: map[string]int{}}
		r.tables[name] = t
		r.names = append(r.names, name)
	}
	return t
}

func (r *Registry) addHandle(table string, h colHandle) error {
	t := r.table(table)
	if t.sharded() {
		return fmt.Errorf("%w: table %q is sharded; individual columns cannot be added", ErrBadRequest, table)
	}
	if _, dup := t.byName[h.colName()]; dup {
		return fmt.Errorf("%w: table %q already has column %q", ErrBadRequest, table, h.colName())
	}
	t.byName[h.colName()] = len(t.cols)
	t.cols = append(t.cols, h)
	if r.cache != nil {
		h.setCache(r.cache)
	}
	return nil
}

// readerOpts folds the registry's reader-level configuration into the
// options passed to every file-backed open.
func (r *Registry) readerOpts() []zukowski.ReaderOption {
	if !r.hasRtry {
		return nil
	}
	return []zukowski.ReaderOption{zukowski.WithRetryPolicy(r.retry)}
}

// AddColumnBytes registers an in-memory column container under
// table/col. The bytes are retained and must stay immutable.
func (r *Registry) AddColumnBytes(table, col string, data []byte) error {
	h, err := newColHandle(col, data, nil, int64(len(data)), nil)
	if err != nil {
		return fmt.Errorf("column %s/%s: %w", table, col, err)
	}
	return r.addHandle(table, h)
}

// AddColumnFile registers a column container file under table/col,
// streaming blocks through an io.ReaderAt so columns larger than RAM
// serve fine. The file stays open until Close.
func (r *Registry) AddColumnFile(table, col, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	var src io.ReaderAt = f
	if r.wrap != nil {
		src = r.wrap(src, st.Size())
	}
	h, err := newColHandle(col, nil, src, st.Size(), r.readerOpts())
	if err != nil {
		f.Close()
		return fmt.Errorf("column %s/%s: %w", table, col, err)
	}
	if err := r.addHandle(table, h); err != nil {
		f.Close()
		return err
	}
	r.closers = append(r.closers, f)
	return nil
}

// OpenDir builds a registry from a data directory: every subdirectory is
// a table. A subdirectory holding a zktable manifest is served as a
// sharded table (segments, generation and quarantine state included);
// otherwise every *.zkc file inside it is a flat column named after the
// file. A directory with no tables yields an empty registry, not an
// error.
func OpenDir(dir string, opts ...RegistryOption) (*Registry, error) {
	r := NewRegistry(opts...)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		table := e.Name()
		if zktable.IsTableDir(filepath.Join(dir, table)) {
			if err := r.AddShardedTable(table, filepath.Join(dir, table)); err != nil {
				r.Close()
				return nil, err
			}
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, table))
		if err != nil {
			r.Close()
			return nil, err
		}
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(f.Name(), ".zkc") {
				continue
			}
			col := strings.TrimSuffix(f.Name(), ".zkc")
			if err := r.AddColumnFile(table, col, filepath.Join(dir, table, f.Name())); err != nil {
				r.Close()
				return nil, err
			}
		}
	}
	return r, nil
}

// Close releases the file handles of file-backed columns.
func (r *Registry) Close() error {
	var first error
	for _, c := range r.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	r.closers = nil
	return first
}

package zkserve_test

import (
	"net"
	"net/http"
	"os"
	"testing"
	"time"

	"repro/zkserve"
)

func TestHardenFillsOnlyZeroFields(t *testing.T) {
	hs := &http.Server{}
	zkserve.Harden(hs)
	if hs.ReadHeaderTimeout == 0 || hs.IdleTimeout == 0 || hs.MaxHeaderBytes == 0 {
		t.Fatalf("defaults not filled: %+v", hs)
	}
	// Streaming scans must never be cut off by a blanket write deadline.
	if hs.ReadTimeout != 0 || hs.WriteTimeout != 0 {
		t.Fatalf("Harden set a full-request timeout: read=%v write=%v", hs.ReadTimeout, hs.WriteTimeout)
	}
	custom := &http.Server{ReadHeaderTimeout: time.Minute}
	zkserve.Harden(custom)
	if custom.ReadHeaderTimeout != time.Minute {
		t.Fatalf("explicit ReadHeaderTimeout overridden to %v", custom.ReadHeaderTimeout)
	}
}

// TestHardenSlowLoris: a client that dribbles an eternally-unfinished
// request header gets its connection closed once ReadHeaderTimeout
// fires, instead of pinning a connection forever.
func TestHardenSlowLoris(t *testing.T) {
	hs := &http.Server{
		ReadHeaderTimeout: 150 * time.Millisecond,
		Handler:           http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		ErrorLog:          nil,
	}
	zkserve.Harden(hs)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\nX-Slow: ")); err != nil {
		t.Fatal(err)
	}
	// Never finish the header. The server must hang up well before our
	// read deadline; a deadline error means the slow loris won.
	if err := conn.SetReadDeadline(time.Now().Add(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	start := time.Now()
	for {
		if _, err := conn.Read(buf); err != nil {
			if os.IsTimeout(err) {
				t.Fatalf("connection still open %v after partial header", time.Since(start))
			}
			return // closed or reset: the timeout did its job
		}
	}
}

package zkserve

import (
	"context"
	"fmt"

	"repro/zktable"
	"repro/zukowski"
)

// Sharded tables: one zktable directory served as one logical table. The
// zktable layer owns durability (manifest generations, startup recovery,
// salvage, quarantine); this file adapts its per-segment column readers
// into the registry's colHandle world and runs every scan plan segment by
// segment with global row and block numbering, so clients see one table
// regardless of how ingest segmented it.

// servedSeg is one committed segment of a sharded table: a flat
// single-segment Table view over the zktable's open readers, or — when
// the segment is quarantined — just enough manifest metadata to account
// the loss exactly.
type servedSeg struct {
	sub        *Table // nil when quarantined
	rowStart   int64  // first global row
	blockStart int    // first global block index
	rows       int
	counts     []int // per-block row counts, from the manifest
	quarErr    error // non-nil: out of service, wraps zktable.ErrSegmentQuarantined
}

// AddShardedTable opens the zktable at dir (running its startup
// recovery: manifest fallback, orphan sweep, salvage, quarantine) and
// registers it under the given table name. The registry's retry policy
// and source wrapper apply to every segment reader; the zktable handle
// is closed with the registry.
func (r *Registry) AddShardedTable(table, dir string) error {
	info, err := zktable.Peek(dir)
	if err != nil {
		return fmt.Errorf("table %q: %w", table, err)
	}
	switch info.WidthBytes {
	case 1:
		return addSharded[int8](r, table, dir)
	case 2:
		return addSharded[int16](r, table, dir)
	case 4:
		return addSharded[int32](r, table, dir)
	default:
		return addSharded[int64](r, table, dir)
	}
}

func addSharded[T zukowski.Integer](r *Registry, table, dir string) error {
	opts := zktable.Options{Salvage: true, SourceWrapper: r.wrap}
	if r.hasRtry {
		opts.Retry = r.retry
	}
	zt, _, err := zktable.Open[T](dir, opts)
	if err != nil {
		return fmt.Errorf("table %q: %w", table, err)
	}
	t := r.table(table)
	if t.sharded() || len(t.cols) > 0 {
		zt.Close()
		return fmt.Errorf("%w: table %q already registered", ErrBadRequest, table)
	}
	t.isShard = true
	t.colNames = zt.Columns()
	for i, name := range t.colNames {
		t.byName[name] = i
	}
	t.gen = zt.Generation()
	t.totalRows = zt.Rows()
	blockBase := 0
	for i := 0; i < zt.NumSegments(); i++ {
		rows, start := zt.SegmentRows(i)
		counts := zt.SegmentBlockRows(i)
		ss := &servedSeg{rowStart: start, blockStart: blockBase, rows: int(rows), counts: counts}
		blockBase += len(counts)
		rdrs, rerr := zt.SegmentReaders(i)
		if rerr != nil {
			ss.quarErr = rerr
		} else {
			sub := &Table{name: fmt.Sprintf("%s#%d", table, i), byName: map[string]int{}}
			for ci, col := range t.colNames {
				h, herr := handleFromReader(col, rdrs[ci])
				if herr != nil {
					zt.Close()
					return fmt.Errorf("table %q segment %d: %w", table, i, herr)
				}
				sub.byName[col] = ci
				sub.cols = append(sub.cols, h)
			}
			ss.sub = sub
		}
		t.segs = append(t.segs, ss)
	}
	if r.cache != nil {
		for _, c := range t.allCols() {
			c.setCache(r.cache)
		}
	}
	r.closers = append(r.closers, zt)
	return nil
}

// metaSharded folds per-segment column statistics into one capability
// entry and reports the generation and quarantine state the ISSUE's ops
// surface needs: which committed generation is served, and exactly how
// many committed rows are out of service.
func (t *Table) metaSharded() TableMeta {
	m := TableMeta{
		Name:       t.name,
		Rows:       int(t.totalRows),
		Generation: t.gen,
		Segments:   len(t.segs),
	}
	for ci, col := range t.colNames {
		cm := ColumnMeta{Name: col, WidthBytes: t.colWidth(ci)}
		for _, s := range t.segs {
			if s.sub == nil {
				continue
			}
			c := s.sub.cols[ci]
			cm.Rows += c.rows()
			cm.Blocks += c.numBlocks()
			cm.CompressedBytes += c.compressedBytes()
			cm.QuarantinedBlocks += c.quarantinedBlocks()
			if lo, hi, ok := c.minMax(); ok {
				if !cm.HasMinMax {
					cm.Min, cm.Max, cm.HasMinMax = lo, hi, true
				} else {
					cm.Min, cm.Max = min(cm.Min, lo), max(cm.Max, hi)
				}
			}
		}
		if cm.QuarantinedBlocks > 0 {
			m.Degraded = true
		}
		m.Columns = append(m.Columns, cm)
	}
	for _, s := range t.segs {
		if s.quarErr != nil {
			m.QuarantinedSegments++
			m.RowsUnavailable += int64(s.rows)
			m.Degraded = true
		}
	}
	return m
}

// subPlan rebinds the plan to one segment's flat view. Column indices
// carry over unchanged: every segment holds the full schema in the same
// order.
func (p *scanPlan) subPlan(s *servedSeg) *scanPlan {
	return &scanPlan{table: s.sub, out: p.out, preds: p.preds, orGroups: p.orGroups, workers: p.workers, skip: p.skip, report: p.report}
}

// skipSeg handles one quarantined segment: under degraded mode every
// committed block and row is recorded as lost and the scan moves on;
// otherwise the scan must fail with the quarantine error.
func (p *scanPlan) skipSeg(s *servedSeg) bool {
	if !p.skip {
		return false
	}
	for _, c := range s.counts {
		p.report.Record(c, s.quarErr)
	}
	return true
}

// liveSegs validates the request against every in-service segment using
// check and returns them; a quarantined segment fails the whole request
// unless the plan runs degraded (the caller then accounts it per use).
func (p *scanPlan) validateSharded(rowMode bool) error {
	for _, s := range p.table.segs {
		if s.sub == nil {
			continue
		}
		sp := p.subPlan(s)
		var err error
		if rowMode {
			err = sp.validateRowMode()
		} else {
			err = sp.validateFrameMode()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// blockStatsSharded sums directory-metadata statistics across in-service
// segments. Quarantined segments are not scanned and not counted as
// pruned — they are out of service, which /tables reports separately.
func (p *scanPlan) blockStatsSharded() (scanned, pruned int, rawBytes int64) {
	for _, s := range p.table.segs {
		if s.sub == nil {
			continue
		}
		sc, pr, raw := p.subPlan(s).blockStats()
		scanned += sc
		pruned += pr
		rawBytes += raw
	}
	return scanned, pruned, rawBytes
}

// runSharded executes row mode segment by segment in global row order,
// offsetting each segment's local row IDs by its first global row.
func (p *scanPlan) runSharded(ctx context.Context, emit func(rows []int64, vals [][]int64) bool) error {
	stopped := false
	for _, s := range p.table.segs {
		if s.quarErr != nil {
			if !p.skipSeg(s) {
				return s.quarErr
			}
			continue
		}
		base := s.rowStart
		err := p.subPlan(s).run(ctx, func(rows []int64, vals [][]int64) bool {
			for j := range rows {
				rows[j] += base
			}
			if !emit(rows, vals) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// aggregateSharded folds the aggregate across in-service segments; Min
// and Max only fold over segments that matched rows.
func (p *scanPlan) aggregateSharded(ctx context.Context, aggCol int) (AggResult, error) {
	var out AggResult
	for _, s := range p.table.segs {
		if s.quarErr != nil {
			if !p.skipSeg(s) {
				return AggResult{}, s.quarErr
			}
			continue
		}
		res, err := p.subPlan(s).aggregate(ctx, aggCol)
		if err != nil {
			return AggResult{}, err
		}
		if res.Count == 0 {
			continue
		}
		if out.Count == 0 {
			out = res
			continue
		}
		out.Count += res.Count
		out.Sum += res.Sum
		out.Min = min(out.Min, res.Min)
		out.Max = max(out.Max, res.Max)
	}
	return out, nil
}

// streamBlocksSharded executes frame mode segment by segment, offsetting
// block indices and first-row numbers into the global space.
func (p *scanPlan) streamBlocksSharded(ctx context.Context, emit func(b int, firstRow int64, count int, frames [][]byte) bool) error {
	stopped := false
	for _, s := range p.table.segs {
		if s.quarErr != nil {
			if !p.skipSeg(s) {
				return s.quarErr
			}
			continue
		}
		rowBase, blkBase := s.rowStart, s.blockStart
		err := p.subPlan(s).streamBlocks(ctx, func(b int, firstRow int64, count int, frames [][]byte) bool {
			if !emit(blkBase+b, rowBase+firstRow, count, frames) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

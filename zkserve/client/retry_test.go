package client

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

func TestRetryAfterDuration(t *testing.T) {
	httpDate := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	pastDate := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	cases := []struct {
		in     string
		ok     bool
		lo, hi time.Duration
	}{
		{"", false, 0, 0},
		{"  ", false, 0, 0},
		{"3", true, 3 * time.Second, 3 * time.Second},
		{" 10 ", true, 10 * time.Second, 10 * time.Second},
		{"-1", false, 0, 0},
		{"soon", false, 0, 0},
		{httpDate, true, 80 * time.Second, 91 * time.Second},
		{pastDate, true, 0, 0}, // expired hint clamps to zero, not negative
	}
	for _, c := range cases {
		se := &StatusError{Code: 429, RetryAfter: c.in}
		d, ok := se.RetryAfterDuration()
		if ok != c.ok {
			t.Errorf("RetryAfterDuration(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && (d < c.lo || d > c.hi) {
			t.Errorf("RetryAfterDuration(%q) = %v, want in [%v, %v]", c.in, d, c.lo, c.hi)
		}
	}
}

func TestDoWithRetryRecovers(t *testing.T) {
	calls := 0
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
	attempts, err := DoWithRetry(context.Background(), p, func() error {
		calls++
		if calls < 3 {
			return &StatusError{Code: http.StatusTooManyRequests, Msg: "busy"}
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d err=%v, want success on attempt 3", attempts, calls, err)
	}
}

func TestDoWithRetryExhausts(t *testing.T) {
	calls := 0
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond}
	attempts, err := DoWithRetry(context.Background(), p, func() error {
		calls++
		return &StatusError{Code: http.StatusServiceUnavailable}
	})
	if attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d, want 3", attempts, calls)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want last StatusError", err)
	}
}

func TestDoWithRetryDoesNotRetryClientErrors(t *testing.T) {
	calls := 0
	_, err := DoWithRetry(context.Background(), RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond}, func() error {
		calls++
		return &StatusError{Code: http.StatusBadRequest, Msg: "bad predicate"}
	})
	if calls != 1 {
		t.Fatalf("a 400 was retried: %d calls", calls)
	}
	if err == nil {
		t.Fatal("error swallowed")
	}

	// Non-StatusError failures (transport, parse) are not retried either:
	// the request may have partially executed.
	calls = 0
	sentinel := errors.New("conn reset")
	_, err = DoWithRetry(context.Background(), RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond}, func() error {
		calls++
		return sentinel
	})
	if calls != 1 || !errors.Is(err, sentinel) {
		t.Fatalf("calls=%d err=%v, want 1 call with sentinel", calls, err)
	}
}

func TestDoWithRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	start := time.Now()
	// Long BaseDelay: the only way this returns fast is the ctx branch.
	// The last attempt's error comes back (more informative than ctx.Err).
	_, err := DoWithRetry(ctx, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Hour}, func() error {
		calls++
		return &StatusError{Code: http.StatusTooManyRequests}
	})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want the attempt's StatusError", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dead context did not cut the backoff: waited %v", elapsed)
	}
}

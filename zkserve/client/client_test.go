package client

import (
	"slices"
	"testing"
)

func TestParseRowLine(t *testing.T) {
	cases := []struct {
		line string
		row  int64
		vals []int64
	}{
		{"[0,1]", 0, []int64{1}},
		{"[17,3,40]", 17, []int64{3, 40}},
		{"[5,-20,9223372036854775807]", 5, []int64{-20, 9223372036854775807}},
		{"[-1,-9223372036854775808]", -1, []int64{-9223372036854775808}},
		{"[42]", 42, nil},
	}
	var vals []int64
	for _, tc := range cases {
		row, got, err := parseRowLine([]byte(tc.line), vals)
		if err != nil {
			t.Fatalf("%q: %v", tc.line, err)
		}
		vals = got
		if row != tc.row || !slices.Equal(got, tc.vals) {
			t.Fatalf("%q: got (%d, %v), want (%d, %v)", tc.line, row, got, tc.row, tc.vals)
		}
	}
	for _, bad := range []string{"", "[", "[]x", "{1,2}", "[1,abc]", "[1,2.5]"} {
		if _, _, err := parseRowLine([]byte(bad), nil); err == nil {
			t.Fatalf("%q parsed without error", bad)
		}
	}
}

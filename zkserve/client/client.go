// Package client is a small typed client for a zkserve server: request
// marshalling, NDJSON row-stream and binary frame-stream decoding, and
// status-code mapping. It exists for cmd/loadgen and the integration
// tests; it is deliberately thin — one HTTP round trip per call, no
// retries (the server's 429 Retry-After is surfaced, not obeyed).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// repro/zkserve is imported for the shared wire types (ScanRequest,
// TablesResponse, the frame-stream reader); the client carries no wire
// definitions of its own.
import "repro/zkserve"

// ErrScanFailed reports a stream whose trailer carried a server-side
// error: rows delivered before it are valid, the scan did not finish.
var ErrScanFailed = errors.New("client: scan failed mid-stream")

// StatusError is a non-2xx response, with the server's error message and
// any Retry-After hint (set on 429).
type StatusError struct {
	Code       int
	Msg        string
	RetryAfter string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Msg)
}

// IsSaturated reports whether err is a 429 admission refusal.
func IsSaturated(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusTooManyRequests
}

// Client talks to one zkserve server.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). hc may be nil for http.DefaultClient; pass a
// tuned Transport when driving thousands of concurrent connections.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

func (c *Client) do(ctx context.Context, method, path, accept string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Code: resp.StatusCode, RetryAfter: resp.Header.Get("Retry-After")}
		var eb struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&eb) == nil {
			se.Msg = eb.Error
		}
		resp.Body.Close()
		return nil, se
	}
	return resp, nil
}

// Tables fetches the capability listing.
func (c *Client) Tables(ctx context.Context) (zkserve.TablesResponse, error) {
	var out zkserve.TablesResponse
	resp, err := c.do(ctx, http.MethodGet, "/tables", "", nil)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Aggregate runs an aggregate scan (req.Agg must be set).
func (c *Client) Aggregate(ctx context.Context, req zkserve.ScanRequest) (zkserve.AggResponse, error) {
	var out zkserve.AggResponse
	resp, err := c.do(ctx, http.MethodPost, "/scan", "", req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// ScanResult summarizes one streamed scan.
type ScanResult struct {
	Rows      int64   // rows delivered (or represented, frame mode)
	Truncated bool    // a budget stopped the stream early
	Reason    string  // "rows" or "bytes" when truncated
	ElapsedMS float64 // server-side scan time (row mode only)
	Bytes     int64   // response payload bytes read by this client
}

// rowTrailer mirrors the NDJSON stream's closing object.
type rowTrailer struct {
	Done      bool    `json:"done"`
	Rows      int64   `json:"rows"`
	Truncated bool    `json:"truncated"`
	Reason    string  `json:"reason"`
	Error     string  `json:"error"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// ScanRows streams a row-mode scan, calling fn once per row with the
// global row number and the output column values (the slice is reused
// between calls). fn returning false abandons the stream — the server
// notices the disconnect and stops. A nil fn drains and counts.
func (c *Client) ScanRows(ctx context.Context, req zkserve.ScanRequest, fn func(row int64, vals []int64) bool) (ScanResult, error) {
	resp, err := c.do(ctx, http.MethodPost, "/scan", zkserve.MIMERows, req)
	if err != nil {
		return ScanResult{}, err
	}
	defer resp.Body.Close()
	cr := &countingReader{r: resp.Body}
	sc := bufio.NewScanner(cr)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var res ScanResult
	vals := make([]int64, 0, 8)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			if line[0] == '{' {
				continue // header object
			}
		}
		if line[0] == '[' {
			row, parsed, err := parseRowLine(line, vals)
			if err != nil {
				return res, fmt.Errorf("client: bad row line: %w", err)
			}
			vals = parsed
			res.Rows++
			if fn != nil && !fn(row, vals) {
				res.Bytes = cr.n
				return res, nil
			}
			continue
		}
		var t rowTrailer
		if err := json.Unmarshal(line, &t); err != nil {
			return res, fmt.Errorf("client: bad trailer: %w", err)
		}
		res.Rows = t.Rows
		res.Truncated = t.Truncated
		res.Reason = t.Reason
		res.ElapsedMS = t.ElapsedMS
		res.Bytes = cr.n
		if !t.Done {
			return res, fmt.Errorf("%w: %s", ErrScanFailed, t.Error)
		}
		return res, nil
	}
	if err := sc.Err(); err != nil {
		return res, err
	}
	return res, fmt.Errorf("%w: stream ended without a trailer", ErrScanFailed)
}

// parseRowLine decodes "[row,v0,v1]" without a JSON parser: the row
// stream is the hot path of every load test.
func parseRowLine(line []byte, vals []int64) (int64, []int64, error) {
	vals = vals[:0]
	if len(line) < 2 || line[0] != '[' || line[len(line)-1] != ']' {
		return 0, vals, fmt.Errorf("not an array: %q", line)
	}
	body := line[1 : len(line)-1]
	var row int64
	for i := 0; len(body) > 0; i++ {
		j := bytes.IndexByte(body, ',')
		var field []byte
		if j < 0 {
			field, body = body, nil
		} else {
			field, body = body[:j], body[j+1:]
		}
		v, err := strconv.ParseInt(string(field), 10, 64)
		if err != nil {
			return 0, vals, err
		}
		if i == 0 {
			row = v
		} else {
			vals = append(vals, v)
		}
	}
	return row, vals, nil
}

// ScanFrames streams a frame-mode scan, calling fn once per shipped
// block with its raw compressed frames (decode with
// zukowski.FrameDecoder). fn returning false abandons the stream.
func (c *Client) ScanFrames(ctx context.Context, req zkserve.ScanRequest, fn func(cols []zkserve.FrameStreamCol, blk *zkserve.FrameBlock) bool) (ScanResult, error) {
	resp, err := c.do(ctx, http.MethodPost, "/scan", zkserve.MIMEFrames, req)
	if err != nil {
		return ScanResult{}, err
	}
	defer resp.Body.Close()
	cr := &countingReader{r: resp.Body}
	fr, err := zkserve.NewFrameStreamReader(cr)
	if err != nil {
		return ScanResult{}, err
	}
	var res ScanResult
	for {
		blk, err := fr.Next()
		if err != nil {
			res.Bytes = cr.n
			return res, err
		}
		if blk == nil {
			break
		}
		if fn != nil && !fn(fr.Cols, blk) {
			res.Bytes = cr.n
			return res, nil
		}
	}
	t := fr.Trailer()
	res.Rows = t.Rows
	res.Truncated = t.Status == zkserve.FrameStatusTruncated
	res.Bytes = cr.n
	if t.Status == zkserve.FrameStatusError {
		return res, fmt.Errorf("%w: %s", ErrScanFailed, t.Err)
	}
	return res, nil
}

// Healthy reports whether /healthz answers 200.
func (c *Client) Healthy(ctx context.Context) bool {
	resp, err := c.do(ctx, http.MethodGet, "/healthz", "", nil)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return true
}

// Package client is a small typed client for a zkserve server: request
// marshalling, NDJSON row-stream and binary frame-stream decoding, and
// status-code mapping. It exists for cmd/loadgen and the integration
// tests; it is deliberately thin — one HTTP round trip per call, and no
// retries unless the caller opts in via DoWithRetry (which honors the
// server's 429 Retry-After hint with jittered exponential backoff).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// repro/zkserve is imported for the shared wire types (ScanRequest,
// TablesResponse, the frame-stream reader); the client carries no wire
// definitions of its own.
import "repro/zkserve"

// ErrScanFailed reports a stream whose trailer carried a server-side
// error: rows delivered before it are valid, the scan did not finish.
var ErrScanFailed = errors.New("client: scan failed mid-stream")

// StatusError is a non-2xx response, with the server's error message and
// any Retry-After hint (set on 429).
type StatusError struct {
	Code       int
	Msg        string
	RetryAfter string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Msg)
}

// RetryAfterDuration parses the response's Retry-After hint as a wait
// duration. Both RFC 9110 forms are understood — delay-seconds and an
// HTTP-date — and ok is false when the header was absent or malformed.
// A date in the past yields zero (retry immediately), never negative.
func (e *StatusError) RetryAfterDuration() (time.Duration, bool) {
	s := strings.TrimSpace(e.RetryAfter)
	if s == "" {
		return 0, false
	}
	if secs, err := strconv.ParseInt(s, 10, 64); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(s); err == nil {
		return max(time.Until(at), 0), true
	}
	return 0, false
}

// IsSaturated reports whether err is a 429 admission refusal.
func IsSaturated(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusTooManyRequests
}

// retryableStatus reports whether a StatusError is worth retrying: 429
// admission refusals and 5xx server errors. 4xx client errors would fail
// identically on every attempt.
func retryableStatus(err error) bool {
	var se *StatusError
	if !errors.As(err, &se) {
		return false
	}
	return se.Code == http.StatusTooManyRequests || se.Code >= 500
}

// RetryPolicy bounds DoWithRetry. The zero value means one attempt (no
// retries), keeping retry behavior strictly opt-in.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first;
	// values below 2 disable retries.
	MaxAttempts int

	// BaseDelay is the backoff before the first retry, doubling per retry;
	// 0 defaults to 50ms. A server Retry-After hint longer than the
	// computed backoff is honored instead.
	BaseDelay time.Duration

	// MaxDelay caps the backoff; 0 defaults to 2s.
	MaxDelay time.Duration
}

// DoWithRetry runs op until it succeeds, fails terminally, exhausts
// p.MaxAttempts, or ctx dies. Only saturation (429) and 5xx server
// errors are retried — everything else is the caller's problem on the
// first attempt. Waits honor the server's Retry-After hint when it is
// longer than the exponential backoff, and jitter uniformly in [d/2, d]
// so a rejected fleet does not return in lockstep. The attempts return
// value counts completed attempts, letting callers report retries
// separately from failures.
func DoWithRetry(ctx context.Context, p RetryPolicy, op func() error) (attempts int, err error) {
	maxAtt := p.MaxAttempts
	if maxAtt < 1 {
		maxAtt = 1
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	for {
		attempts++
		err = op()
		if err == nil || attempts >= maxAtt || !retryableStatus(err) {
			return attempts, err
		}
		d := min(base<<(attempts-1), maxd)
		var se *StatusError
		if errors.As(err, &se) {
			if hint, ok := se.RetryAfterDuration(); ok && hint > d {
				d = min(hint, maxd)
			}
		}
		d = d/2 + rand.N(d/2+1)
		select {
		case <-ctx.Done():
			return attempts, err
		case <-time.After(d):
		}
	}
}

// AnyOf assembles a request's disjunctive predicate: each group of
// specs becomes one alternative (the AND of its specs), and the scan
// keeps a row when any alternative holds alongside the request's
// top-level preds. Servers advertise support as "any_of" in
// TablesResponse.Features; older servers reject the unknown field
// with 400.
func AnyOf(groups ...[]zkserve.PredSpec) []zkserve.PredGroup {
	out := make([]zkserve.PredGroup, len(groups))
	for i, g := range groups {
		out[i] = zkserve.PredGroup{Preds: g}
	}
	return out
}

// Client talks to one zkserve server.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). hc may be nil for http.DefaultClient; pass a
// tuned Transport when driving thousands of concurrent connections.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

func (c *Client) do(ctx context.Context, method, path, accept string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Code: resp.StatusCode, RetryAfter: resp.Header.Get("Retry-After")}
		var eb struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&eb) == nil {
			se.Msg = eb.Error
		}
		resp.Body.Close()
		return nil, se
	}
	return resp, nil
}

// Tables fetches the capability listing.
func (c *Client) Tables(ctx context.Context) (zkserve.TablesResponse, error) {
	var out zkserve.TablesResponse
	resp, err := c.do(ctx, http.MethodGet, "/tables", "", nil)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Aggregate runs an aggregate scan (req.Agg must be set).
func (c *Client) Aggregate(ctx context.Context, req zkserve.ScanRequest) (zkserve.AggResponse, error) {
	var out zkserve.AggResponse
	resp, err := c.do(ctx, http.MethodPost, "/scan", "", req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// ScanResult summarizes one streamed scan.
type ScanResult struct {
	Rows      int64   // rows delivered (or represented, frame mode)
	Truncated bool    // a budget stopped the stream early
	Reason    string  // "rows" or "bytes" when truncated
	ElapsedMS float64 // server-side scan time (row mode only)
	Bytes     int64   // response payload bytes read by this client

	// Degraded accounting for skip_corrupt scans: the blocks the server
	// dropped for corruption and the rows they held.
	Degraded      bool
	BlocksSkipped int64
	RowsLost      int64
}

// rowTrailer mirrors the NDJSON stream's closing object.
type rowTrailer struct {
	Done          bool    `json:"done"`
	Rows          int64   `json:"rows"`
	Truncated     bool    `json:"truncated"`
	Reason        string  `json:"reason"`
	Error         string  `json:"error"`
	Degraded      bool    `json:"degraded"`
	BlocksSkipped int64   `json:"blocks_skipped"`
	RowsLost      int64   `json:"rows_lost"`
	ElapsedMS     float64 `json:"elapsed_ms"`
}

type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// ScanRows streams a row-mode scan, calling fn once per row with the
// global row number and the output column values (the slice is reused
// between calls). fn returning false abandons the stream — the server
// notices the disconnect and stops. A nil fn drains and counts.
func (c *Client) ScanRows(ctx context.Context, req zkserve.ScanRequest, fn func(row int64, vals []int64) bool) (ScanResult, error) {
	resp, err := c.do(ctx, http.MethodPost, "/scan", zkserve.MIMERows, req)
	if err != nil {
		return ScanResult{}, err
	}
	defer resp.Body.Close()
	cr := &countingReader{r: resp.Body}
	sc := bufio.NewScanner(cr)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var res ScanResult
	vals := make([]int64, 0, 8)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			if line[0] == '{' {
				continue // header object
			}
		}
		if line[0] == '[' {
			row, parsed, err := parseRowLine(line, vals)
			if err != nil {
				return res, fmt.Errorf("client: bad row line: %w", err)
			}
			vals = parsed
			res.Rows++
			if fn != nil && !fn(row, vals) {
				res.Bytes = cr.n
				return res, nil
			}
			continue
		}
		var t rowTrailer
		if err := json.Unmarshal(line, &t); err != nil {
			return res, fmt.Errorf("client: bad trailer: %w", err)
		}
		res.Rows = t.Rows
		res.Truncated = t.Truncated
		res.Reason = t.Reason
		res.ElapsedMS = t.ElapsedMS
		res.Degraded = t.Degraded
		res.BlocksSkipped = t.BlocksSkipped
		res.RowsLost = t.RowsLost
		res.Bytes = cr.n
		if !t.Done {
			return res, fmt.Errorf("%w: %s", ErrScanFailed, t.Error)
		}
		return res, nil
	}
	if err := sc.Err(); err != nil {
		return res, err
	}
	return res, fmt.Errorf("%w: stream ended without a trailer", ErrScanFailed)
}

// parseRowLine decodes "[row,v0,v1]" without a JSON parser: the row
// stream is the hot path of every load test.
func parseRowLine(line []byte, vals []int64) (int64, []int64, error) {
	vals = vals[:0]
	if len(line) < 2 || line[0] != '[' || line[len(line)-1] != ']' {
		return 0, vals, fmt.Errorf("not an array: %q", line)
	}
	body := line[1 : len(line)-1]
	var row int64
	for i := 0; len(body) > 0; i++ {
		j := bytes.IndexByte(body, ',')
		var field []byte
		if j < 0 {
			field, body = body, nil
		} else {
			field, body = body[:j], body[j+1:]
		}
		v, err := strconv.ParseInt(string(field), 10, 64)
		if err != nil {
			return 0, vals, err
		}
		if i == 0 {
			row = v
		} else {
			vals = append(vals, v)
		}
	}
	return row, vals, nil
}

// ScanFrames streams a frame-mode scan, calling fn once per shipped
// block with its raw compressed frames (decode with
// zukowski.FrameDecoder). fn returning false abandons the stream.
func (c *Client) ScanFrames(ctx context.Context, req zkserve.ScanRequest, fn func(cols []zkserve.FrameStreamCol, blk *zkserve.FrameBlock) bool) (ScanResult, error) {
	resp, err := c.do(ctx, http.MethodPost, "/scan", zkserve.MIMEFrames, req)
	if err != nil {
		return ScanResult{}, err
	}
	defer resp.Body.Close()
	cr := &countingReader{r: resp.Body}
	fr, err := zkserve.NewFrameStreamReader(cr)
	if err != nil {
		return ScanResult{}, err
	}
	var res ScanResult
	for {
		blk, err := fr.Next()
		if err != nil {
			res.Bytes = cr.n
			return res, err
		}
		if blk == nil {
			break
		}
		if fn != nil && !fn(fr.Cols, blk) {
			res.Bytes = cr.n
			return res, nil
		}
	}
	t := fr.Trailer()
	res.Rows = t.Rows
	res.Truncated = t.Status == zkserve.FrameStatusTruncated
	res.Degraded = t.Degraded()
	res.BlocksSkipped = t.BlocksSkipped
	res.RowsLost = t.RowsLost
	res.Bytes = cr.n
	if t.Status == zkserve.FrameStatusError {
		return res, fmt.Errorf("%w: %s", ErrScanFailed, t.Err)
	}
	return res, nil
}

// Healthy reports whether /healthz answers 200.
func (c *Client) Healthy(ctx context.Context) bool {
	resp, err := c.do(ctx, http.MethodGet, "/healthz", "", nil)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return true
}

package client_test

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"repro/zkserve"
	"repro/zkserve/client"
	"repro/zukowski"
)

// Example walks the whole client surface against an in-process server:
// list tables, stream a filtered row scan, and push an aggregate down
// into the compressed domain.
func Example() {
	// Build a one-table registry in memory. Real deployments point
	// zkserve.OpenDir at a directory of .zkc containers instead.
	encode := func(vals []int64) []byte {
		var buf bytes.Buffer
		cw, err := zukowski.NewColumnWriter[int64](&buf, nil, 64)
		if err != nil {
			log.Fatal(err)
		}
		if err := cw.Write(vals); err != nil {
			log.Fatal(err)
		}
		if err := cw.Close(); err != nil {
			log.Fatal(err)
		}
		return buf.Bytes()
	}
	ids := make([]int64, 256)
	scores := make([]int64, 256)
	for i := range ids {
		ids[i] = int64(i)
		scores[i] = int64(i) % 10
	}
	reg := zkserve.NewRegistry()
	if err := reg.AddColumnBytes("events", "id", encode(ids)); err != nil {
		log.Fatal(err)
	}
	if err := reg.AddColumnBytes("events", "score", encode(scores)); err != nil {
		log.Fatal(err)
	}

	ts := httptest.NewServer(zkserve.NewServer(zkserve.Config{Registry: reg}))
	defer ts.Close()
	cl := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	// Discover what the server offers.
	tables, err := cl.Tables(ctx)
	if err != nil {
		log.Fatal(err)
	}
	t := tables.Tables[0]
	fmt.Printf("table %q: %d rows, %d columns\n", t.Name, t.Rows, len(t.Columns))

	// Stream rows where id in [10, 14] — the predicate is pushed into
	// the server's compressed-domain scan, so rows outside the range are
	// never decoded, let alone shipped.
	lo, hi := int64(10), int64(14)
	res, err := cl.ScanRows(ctx, zkserve.ScanRequest{
		Table: "events",
		Cols:  []string{"id", "score"},
		Preds: []zkserve.PredSpec{{Col: "id", Lo: &lo, Hi: &hi}},
	}, func(row int64, vals []int64) bool {
		fmt.Printf("row %d: id=%d score=%d\n", row, vals[0], vals[1])
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d rows\n", res.Rows)

	// Aggregate without streaming anything: one JSON object comes back.
	agg, err := cl.Aggregate(ctx, zkserve.ScanRequest{
		Table: "events",
		Cols:  []string{"score"},
		Agg:   "all",
		Preds: []zkserve.PredSpec{{Col: "id", Lo: &lo, Hi: &hi}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count=%d sum=%d min=%d max=%d\n",
		agg.Result.Count, agg.Result.Sum, agg.Result.Min, agg.Result.Max)
	// Output:
	// table "events": 256 rows, 2 columns
	// row 10: id=10 score=0
	// row 11: id=11 score=1
	// row 12: id=12 score=2
	// row 13: id=13 score=3
	// row 14: id=14 score=4
	// streamed 5 rows
	// count=5 sum=10 min=0 max=4
}

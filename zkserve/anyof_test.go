package zkserve_test

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"repro/zkserve"
	"repro/zkserve/client"
)

// anyOfMatch is the reference semantics of the test disjunction used
// below: c1 in [100, 300] AND (c0 in [500, 999] OR c1 in [0, 150]).
// The second branch overlaps the conjunct so only [100, 150] of it can
// actually match — a deliberate partial overlap.
func anyOfMatch(i int64) bool {
	v := c1Val(i)
	if v < 100 || v > 300 {
		return false
	}
	return (i >= 500 && i <= 999) || v <= 150
}

func anyOfReq(workers int) zkserve.ScanRequest {
	return zkserve.ScanRequest{
		Table:   "t",
		Cols:    []string{"c0", "c1"},
		Preds:   []zkserve.PredSpec{pred("c1", 100, 300)},
		AnyOf:   client.AnyOf([]zkserve.PredSpec{pred("c0", 500, 999)}, []zkserve.PredSpec{pred("c1", 0, 150)}),
		Workers: workers,
	}
}

// TestAnyOfRowsMatchesLocal checks the disjunctive scan, sequential and
// parallel, against a scalar evaluation of the same predicate.
func TestAnyOfRowsMatchesLocal(t *testing.T) {
	_, _, cl := newTestServer(t, zkserve.Config{})
	want := int64(0)
	for i := int64(0); i < testRows; i++ {
		if anyOfMatch(i) {
			want++
		}
	}
	if want == 0 {
		t.Fatal("test predicate selects nothing; fixture changed?")
	}
	for _, workers := range []int{0, 4} {
		res, err := cl.ScanRows(context.Background(), anyOfReq(workers), func(row int64, vals []int64) bool {
			if vals[0] != row || vals[1] != c1Val(row) {
				t.Fatalf("row %d: got %v, want [%d %d]", row, vals, row, c1Val(row))
			}
			if !anyOfMatch(row) {
				t.Fatalf("row %d escapes the disjunction (c1 = %d)", row, c1Val(row))
			}
			return true
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Rows != want {
			t.Fatalf("workers=%d: rows = %d, want %d", workers, res.Rows, want)
		}
	}
}

// TestAnyOfAggregate checks aggregate pushdown over the disjunction.
func TestAnyOfAggregate(t *testing.T) {
	_, _, cl := newTestServer(t, zkserve.Config{})
	want := zkserve.AggResult{Min: 1<<63 - 1, Max: -1 << 63}
	for i := int64(0); i < testRows; i++ {
		if !anyOfMatch(i) {
			continue
		}
		v := c1Val(i)
		want.Count++
		want.Sum += v
		want.Min = min(want.Min, v)
		want.Max = max(want.Max, v)
	}
	req := anyOfReq(0)
	req.Agg = "all"
	req.AggCol = "c1"
	resp, err := cl.Aggregate(context.Background(), req)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if resp.Result != want {
		t.Fatalf("aggregate = %+v, want %+v", resp.Result, want)
	}
}

// TestAnyOfFrameMode checks that frame mode uses the disjunction for
// block pruning: every block whose zone maps some alternative cannot
// exclude still ships, and blocks excluded by all alternatives don't.
func TestAnyOfFrameMode(t *testing.T) {
	_, _, cl := newTestServer(t, zkserve.Config{})
	// c0 is sorted 0..testRows-1 in blocks of testBV rows, so the single
	// alternative c0 in [1000, 1999] survives in exactly ceil(1000/512)+1
	// candidate blocks: rows 512..2047 → blocks 1, 2 and 3.
	req := zkserve.ScanRequest{
		Table: "t",
		Cols:  []string{"c0"},
		AnyOf: client.AnyOf([]zkserve.PredSpec{pred("c0", 1000, 1999)}),
	}
	var blocks int
	res, err := cl.ScanFrames(context.Background(), req, func(cols []zkserve.FrameStreamCol, blk *zkserve.FrameBlock) bool {
		blocks++
		return true
	})
	if err != nil {
		t.Fatalf("ScanFrames: %v", err)
	}
	if blocks != 3 {
		t.Fatalf("shipped %d blocks, want 3 (zone pruning by any_of)", blocks)
	}
	if res.Rows != 3*testBV {
		t.Fatalf("represented rows = %d, want %d", res.Rows, 3*testBV)
	}
}

// TestAnyOfZonePruning checks the metrics see disjunctive pruning: a
// narrow any_of over the sorted column must prune most blocks.
func TestAnyOfZonePruning(t *testing.T) {
	srv, _, cl := newTestServer(t, zkserve.Config{})
	req := zkserve.ScanRequest{
		Table: "t",
		Cols:  []string{"c0"},
		AnyOf: client.AnyOf([]zkserve.PredSpec{pred("c0", 0, 10)}, []zkserve.PredSpec{pred("c0", 7000, 7010)}),
	}
	if _, err := cl.ScanRows(context.Background(), req, nil); err != nil {
		t.Fatalf("ScanRows: %v", err)
	}
	m := srv.Metrics()
	if pruned := m.BlocksPruned.Load(); pruned == 0 {
		t.Fatal("narrow any_of pruned no blocks")
	}
	if scanned := m.BlocksScanned.Load(); scanned == 0 || scanned > 4 {
		t.Fatalf("scanned %d blocks, want 1-4 (two narrow windows)", m.BlocksScanned.Load())
	}
}

// TestAnyOfImpossibleBranch checks that an alternative that can never
// hold (lo > hi) is dropped while the others still apply, and that a
// disjunction with no possible alternative yields zero rows cleanly.
func TestAnyOfImpossibleBranch(t *testing.T) {
	_, _, cl := newTestServer(t, zkserve.Config{})
	res, err := cl.ScanRows(context.Background(), zkserve.ScanRequest{
		Table: "t",
		Cols:  []string{"c0"},
		AnyOf: client.AnyOf([]zkserve.PredSpec{pred("c0", 100, 10)}, []zkserve.PredSpec{pred("c0", 0, 9)}),
	}, nil)
	if err != nil {
		t.Fatalf("ScanRows: %v", err)
	}
	if res.Rows != 10 {
		t.Fatalf("rows = %d, want 10 (live branch only)", res.Rows)
	}
	res, err = cl.ScanRows(context.Background(), zkserve.ScanRequest{
		Table: "t",
		Cols:  []string{"c0"},
		AnyOf: client.AnyOf([]zkserve.PredSpec{pred("c0", 100, 10)}),
	}, nil)
	if err != nil {
		t.Fatalf("ScanRows (all-impossible): %v", err)
	}
	if res.Rows != 0 {
		t.Fatalf("rows = %d, want 0 (no alternative can hold)", res.Rows)
	}
}

// TestAnyOfRejections pins the error contract: nested any_of is 422
// (understood but unsupported), an empty group and an unknown column
// are client errors.
func TestAnyOfRejections(t *testing.T) {
	_, _, cl := newTestServer(t, zkserve.Config{})
	cases := []struct {
		name  string
		anyOf []zkserve.PredGroup
		code  int
	}{
		{"nested", []zkserve.PredGroup{{
			Preds: []zkserve.PredSpec{pred("c0", 0, 1)},
			AnyOf: []zkserve.PredGroup{{Preds: []zkserve.PredSpec{pred("c1", 0, 1)}}},
		}}, http.StatusUnprocessableEntity},
		{"empty group", []zkserve.PredGroup{{}}, http.StatusBadRequest},
		{"unknown column", client.AnyOf([]zkserve.PredSpec{pred("nope", 0, 1)}), http.StatusNotFound},
		{"mixed width", client.AnyOf([]zkserve.PredSpec{pred("w32", 0, 1)}), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		_, err := cl.ScanRows(context.Background(), zkserve.ScanRequest{
			Table: "t",
			Cols:  []string{"c0"},
			AnyOf: tc.anyOf,
		}, nil)
		var se *client.StatusError
		if !errors.As(err, &se) || se.Code != tc.code {
			t.Errorf("%s: err = %v, want status %d", tc.name, err, tc.code)
		}
	}
}

// TestAnyOfFeatureAdvertised checks /tables announces the capability.
func TestAnyOfFeatureAdvertised(t *testing.T) {
	_, _, cl := newTestServer(t, zkserve.Config{})
	tables, err := cl.Tables(context.Background())
	if err != nil {
		t.Fatalf("Tables: %v", err)
	}
	found := false
	for _, f := range tables.Features {
		if f == "any_of" {
			found = true
		}
	}
	if !found {
		t.Fatalf("features = %v, want to include any_of", tables.Features)
	}
}

// Command zkingest drives and checks a zktable directory — the
// workhorse of the crash-recovery CI job.
//
// Ingest mode (default) opens the table at -dir (creating it with -cols
// int64 columns if absent) and appends -segments segments of -rows
// synthetic rows each (-segments 0 appends forever), printing one line
// per committed generation. The CI kill loop runs it in the background
// and SIGKILLs it at a random point; whatever generation last printed
// must survive reopen intact.
//
// -tear N makes every byte stream the table writes fail after N total
// bytes (segment columns and manifests alike, via the same
// faultio.Writer the crash tests use), turning one run into one
// deterministic torn-write experiment: the append must fail, and the
// directory must still verify at the previous generation.
//
// -verify reopens the table read-only, runs the full fsck walk (every
// block of every column checked against the manifest), scans every row
// it serves, and prints a JSON report; the exit status is non-zero if
// anything — fsck problems, quarantined segments, a fallback to an
// older generation, or a scan/manifest row-count mismatch — is off.
//
// Examples:
//
//	zkingest -dir /tmp/t -cols 3 -rows 5000 -segments 4
//	zkingest -dir /tmp/t -rows 5000 -segments 1 -tear 10000
//	zkingest -dir /tmp/t -verify
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/experiments"
	"repro/internal/faultio"
	"repro/zktable"
)

func main() {
	var (
		dir      = flag.String("dir", "", "table directory (required)")
		cols     = flag.Int("cols", 3, "columns when creating a new table")
		rows     = flag.Int("rows", 5000, "rows per appended segment")
		segments = flag.Int("segments", 0, "segments to append (0 = until killed)")
		seed     = flag.Int64("seed", 1, "synthetic data seed")
		block    = flag.Int("block", 4096, "values per block when creating a new table")
		codec    = flag.String("codec", "", "codec for appended segments (empty = per-block auto)")
		tear     = flag.Int64("tear", -1, "fail every write stream after this many total bytes (torn-write experiment)")
		verify   = flag.Bool("verify", false, "verify the table instead of ingesting: fsck + full scan, JSON report")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "zkingest: -dir is required")
		os.Exit(2)
	}
	if *verify {
		os.Exit(runVerify(*dir))
	}
	os.Exit(runIngest(*dir, *cols, *rows, *segments, *seed, *block, *codec, *tear))
}

// tornBudget makes every write stream the table opens fail once tear
// bytes have passed through in total, across files — the same global
// budget the zktable crash tests meter, so a budget can land inside any
// file of a commit: an early column, the last column, or the manifest.
type tornBudget struct{ remaining int64 }

type meteredWriter struct {
	tb *tornBudget
	w  io.Writer
}

func (m *meteredWriter) Write(p []byte) (int, error) {
	n, err := m.w.Write(p)
	m.tb.remaining -= int64(n)
	return n, err
}

func (tb *tornBudget) wrap(_ string, w io.Writer) io.Writer {
	return &faultio.Writer{W: &meteredWriter{tb: tb, w: w}, FailAfter: max(tb.remaining, 0)}
}

func runIngest(dir string, cols, rows, segments int, seed int64, block int, codec string, tear int64) int {
	opts := zktable.Options{Codec: codec}
	if tear >= 0 {
		tb := &tornBudget{remaining: tear}
		opts.WriteWrapper = tb.wrap
	}

	var tb *zktable.Table[int64]
	if zktable.IsTableDir(dir) {
		t, rep, err := zktable.Open[int64](dir, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zkingest: open: %v\n", err)
			return 1
		}
		tb = t
		fmt.Printf("opened generation=%d rows=%d segments=%d swept=%d\n",
			rep.Generation, rep.Rows, rep.Segments, len(rep.Swept))
		if len(rep.Quarantined) > 0 {
			fmt.Fprintf(os.Stderr, "zkingest: %d segments quarantined (%d rows unavailable)\n",
				len(rep.Quarantined), rep.RowsUnavailable)
			return 1
		}
	} else {
		names := make([]string, cols)
		for c := range names {
			names[c] = fmt.Sprintf("c%d", c)
		}
		t, err := zktable.Create[int64](dir, names, block, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zkingest: create: %v\n", err)
			return 1
		}
		tb = t
		fmt.Printf("created generation=%d cols=%d block=%d\n", tb.Generation(), cols, block)
	}
	defer tb.Close()

	ncols := len(tb.Columns())
	rng := rand.New(rand.NewSource(seed + int64(tb.Generation())))
	for s := 0; segments == 0 || s < segments; s++ {
		seg := make([][]int64, ncols)
		for c := 0; c < ncols; c++ {
			if c == 0 {
				seg[c] = experiments.SynthSorted(rng, rows, 3)
			} else {
				seg[c] = experiments.SynthPFOR(rng, rows, 10, 0.02)
			}
		}
		gen, err := tb.Append(seg)
		if err != nil {
			if errors.Is(err, faultio.ErrInjected) {
				// The torn-write experiment fired as scheduled: the commit
				// failed mid-write and the previous generation must still
				// verify (-verify checks that next).
				fmt.Printf("torn generation=%d rows=%d\n", tb.Generation(), tb.Rows())
				return 0
			}
			fmt.Fprintf(os.Stderr, "zkingest: append: %v\n", err)
			return 1
		}
		fmt.Printf("committed generation=%d rows=%d segments=%d\n", gen, tb.Rows(), tb.NumSegments())
	}
	if tear >= 0 {
		// The budget outlived the run: every write fit under it, so the
		// experiment degenerated to a clean ingest. Still fine — the
		// verifier decides — but say so.
		fmt.Printf("tear budget never reached\n")
	}
	return 0
}

// verifyReport is the JSON the CI job archives per iteration.
type verifyReport struct {
	Dir              string   `json:"dir"`
	Generation       uint64   `json:"generation"`
	Rows             int64    `json:"rows"`
	Segments         int      `json:"segments"`
	BlocksVerified   int      `json:"blocks_verified"`
	Orphans          int      `json:"orphans"`
	CorruptManifests []string `json:"corrupt_manifests,omitempty"`
	FellBack         bool     `json:"fell_back"`
	Quarantined      int      `json:"quarantined_segments"`
	RowsUnavailable  int64    `json:"rows_unavailable"`
	ScannedRows      int64    `json:"scanned_rows"`
	Problems         []string `json:"problems,omitempty"`
	OK               bool     `json:"ok"`
}

// runVerify is the post-crash acceptance check: the directory must hold
// a fully intact committed generation. Every block of every column is
// re-verified against the manifest (Fsck), the table must reopen without
// falling back or quarantining anything, and a full exact scan must
// serve exactly the manifest's row count.
func runVerify(dir string) int {
	out := verifyReport{Dir: dir}
	fail := func(format string, args ...any) int {
		out.Problems = append(out.Problems, fmt.Sprintf(format, args...))
		json.NewEncoder(os.Stdout).Encode(out)
		return 1
	}

	rep, err := zktable.Fsck(dir)
	if err != nil {
		return fail("fsck: %v", err)
	}
	out.Generation = rep.Generation
	out.Rows = rep.Rows
	out.Segments = rep.Segments
	out.BlocksVerified = rep.BlocksVerified
	out.Orphans = len(rep.Orphans)
	out.CorruptManifests = rep.CorruptManifests
	out.Problems = append(out.Problems, rep.Problems...)

	info, err := zktable.Peek(dir)
	if err != nil {
		return fail("peek: %v", err)
	}
	var scanned int64
	var orep *zktable.OpenReport
	switch info.WidthBytes {
	case 1:
		scanned, orep, err = scanCount[int8](dir)
	case 2:
		scanned, orep, err = scanCount[int16](dir)
	case 4:
		scanned, orep, err = scanCount[int32](dir)
	default:
		scanned, orep, err = scanCount[int64](dir)
	}
	out.ScannedRows = scanned
	if orep != nil {
		out.FellBack = orep.FellBack
		out.Quarantined = len(orep.Quarantined)
		out.RowsUnavailable = orep.RowsUnavailable
	}
	if err != nil {
		return fail("scan: %v", err)
	}
	if orep.FellBack {
		out.Problems = append(out.Problems, "open fell back to an older generation")
	}
	for _, q := range orep.Quarantined {
		out.Problems = append(out.Problems, fmt.Sprintf("segment %d quarantined: %v", q.Seg, q.Err))
	}
	if scanned != rep.Rows {
		out.Problems = append(out.Problems, fmt.Sprintf("scan served %d rows, manifest commits %d", scanned, rep.Rows))
	}
	out.OK = len(out.Problems) == 0
	json.NewEncoder(os.Stdout).Encode(out)
	if !out.OK {
		return 1
	}
	return 0
}

// scanCount reopens the table read-only and counts every row an exact
// full scan serves.
func scanCount[T interface {
	~int8 | ~int16 | ~int32 | ~int64 | ~uint8 | ~uint16 | ~uint32 | ~uint64
}](dir string) (int64, *zktable.OpenReport, error) {
	tb, rep, err := zktable.Open[T](dir, zktable.Options{ReadOnly: true})
	if err != nil {
		return 0, nil, err
	}
	defer tb.Close()
	var n int64
	err = tb.ScanWhereAll(nil, func(rows []int64, _ [][]T) bool {
		n += int64(len(rows))
		return true
	})
	return n, rep, err
}

// Command invbench regenerates the paper's inverted-file evaluation:
//
//	Table 4    — PFOR-DELTA vs carryover-12 vs shuff on five collections
//	-equilibrium — the Section 5 computation: measure the top-N query's
//	               bandwidth Q, derive the equilibrium decompression
//	               bandwidth C = target*Q/(Q-target), and check which
//	               codecs accelerate the query on a 350MB/s RAID
package main

import (
	"flag"
	"os"

	"repro/experiments"
)

func main() {
	table4 := flag.Bool("table4", false, "run Table 4 only")
	equilibrium := flag.Bool("equilibrium", false, "run the Section 5 equilibrium experiment only")
	postings := flag.Int("postings", 0, "cap postings per collection (0 = profile default)")
	raid := flag.Float64("raid", 0, "RAID bandwidth MB/s for the equilibrium experiment (0 = 60% of measured Q, the paper's ratio)")
	flag.Parse()

	all := !(*table4 || *equilibrium)
	w := os.Stdout

	if all || *table4 {
		experiments.Table4(w, *postings)
	}
	if all || *equilibrium {
		experiments.Equilibrium(w, *raid)
	}
}

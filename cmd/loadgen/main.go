// Command loadgen drives a zkserve server with N concurrent clients and
// reports what the server sustained: request and row throughput,
// aggregate payload MB/s, p50/p90/p99 latency, and how much load the
// server shed with 429s. Each client loops scan requests whose predicate
// windows cycle through a selectivity mix, so the server sees a blend of
// zone-map-prunable narrow scans and full-table sweeps.
//
// Modes: rows (NDJSON streams), frames (raw compressed ZKC2 frames,
// optionally decoded client-side with -decode), agg (aggregate pushdown,
// one JSON object per query), mixed (80% rows, 10% agg, 10% frames).
//
// Examples:
//
//	loadgen -url http://127.0.0.1:8080 -clients 200 -duration 10s
//	loadgen -url http://127.0.0.1:8080 -clients 1000 -mode mixed -format json
//
// With -require-ok the exit code is non-zero unless at least one scan
// succeeded — the CI gate for "the service actually served". -retry N
// re-attempts 429/5xx responses with jittered backoff (honoring the
// server's Retry-After), reporting retries separately from failures;
// -skip-corrupt opts every query into degraded scans, whose lost rows
// show up in the report rather than as errors; -any-of replaces each
// predicate window with a two-branch any_of disjunction, exercising the
// server's compressed-domain OR path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/zkserve"
	"repro/zkserve/client"
	"repro/zukowski"
)

type clientStats struct {
	latenciesNs []int64
	ok          int64
	rejected    int64
	failed      int64
	truncated   int64
	degraded    int64
	retries     int64
	rowsLost    int64
	rows        int64
	bytes       int64
}

// Report is the JSON output.
type Report struct {
	URL        string  `json:"url"`
	Table      string  `json:"table"`
	Mode       string  `json:"mode"`
	Clients    int     `json:"clients"`
	DurationS  float64 `json:"duration_s"`
	Requests   int64   `json:"requests"`
	OK         int64   `json:"ok"`
	Rejected   int64   `json:"rejected"` // 429 admission refusals
	Failed     int64   `json:"failed"`
	Truncated  int64   `json:"truncated"`
	Degraded   int64   `json:"degraded"` // scans that completed but lost blocks
	Retries    int64   `json:"retries"`  // extra attempts spent by -retry (not failures)
	RowsLost   int64   `json:"rows_lost"`
	Rows       int64   `json:"rows"`
	Bytes      int64   `json:"bytes"`
	QPS        float64 `json:"qps"`
	RowsPerSec float64 `json:"rows_per_sec"`
	MBPerSec   float64 `json:"mb_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`

	// Server-side hot-block cache activity over this run (deltas of the
	// /metrics counters between start and finish).
	CacheEnabled bool    `json:"cache_enabled"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

func main() {
	var (
		url       = flag.String("url", "http://127.0.0.1:8080", "zkserve server base URL")
		table     = flag.String("table", "", "table to scan (default: first listed)")
		colsFlag  = flag.String("cols", "", "comma-separated output columns (default: first two)")
		clients   = flag.Int("clients", 50, "concurrent clients")
		duration  = flag.Duration("duration", 10*time.Second, "how long to drive load")
		mixFlag   = flag.String("mix", "0.001,0.01,0.1", "comma-separated predicate selectivities to cycle through")
		mode      = flag.String("mode", "rows", "rows, frames, agg or mixed")
		workers   = flag.Int("workers", 0, "per-scan parallelism to request (0 = sequential)")
		maxRows   = flag.Int64("max-rows", 0, "per-query row budget to request (0 = none)")
		timeoutMS = flag.Int64("timeout-ms", 0, "per-query time budget to request (0 = none)")
		decode    = flag.Bool("decode", false, "frames mode: decode every received frame client-side")
		format    = flag.String("format", "text", "text or json")
		requireOK = flag.Bool("require-ok", false, "exit non-zero unless at least one scan succeeded")
		maxP99MS  = flag.Float64("max-p99-ms", 0, "exit non-zero if p99 latency exceeds this many ms (0 = no gate)")
		retry     = flag.Int("retry", 0, "attempts per query on 429/5xx, honoring Retry-After (0/1 = no retries); retries report separately from failures")
		skipBad   = flag.Bool("skip-corrupt", false, "request degraded scans: corrupt blocks are skipped server-side and reported as rows_lost")
		anyOf     = flag.Bool("any-of", false, "send each predicate as a two-branch any_of disjunction (two windows of half the selectivity each)")
	)
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: bad -mix: %v\n", err)
		os.Exit(2)
	}
	switch *mode {
	case "rows", "frames", "agg", "mixed":
	default:
		fmt.Fprintf(os.Stderr, "loadgen: bad -mode %q\n", *mode)
		os.Exit(2)
	}

	// One transport sized for the fleet: every client keeps one
	// connection alive, so the pool must hold them all or the run
	// measures TIME_WAIT churn instead of the server.
	tr := &http.Transport{
		MaxIdleConns:        *clients + 8,
		MaxIdleConnsPerHost: *clients + 8,
		IdleConnTimeout:     90 * time.Second,
	}
	cl := client.New(*url, &http.Client{Transport: tr})

	ctx := context.Background()
	tables, err := cl.Tables(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: listing tables: %v\n", err)
		os.Exit(1)
	}
	meta, err := pickTable(tables, *table)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	cols := pickCols(meta, *colsFlag)
	predCol, predLo, predHi := pickPredCol(meta)
	if predCol == "" {
		fmt.Fprintf(os.Stderr, "loadgen: table %q has no zone-mapped column; scanning without predicates\n", meta.Name)
	}
	if *anyOf && !hasFeature(tables, "any_of") {
		fmt.Fprintln(os.Stderr, "loadgen: server does not advertise the any_of feature")
		os.Exit(1)
	}

	cacheBefore := scrapeCache(*url)

	deadline := time.Now().Add(*duration)
	stats := make([]clientStats, *clients)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			st := &stats[i]
			for k := 0; time.Now().Before(deadline); k++ {
				sel := mix[k%len(mix)]
				req := zkserve.ScanRequest{
					Table:       meta.Name,
					Cols:        cols,
					MaxRows:     *maxRows,
					TimeoutMS:   *timeoutMS,
					Workers:     *workers,
					SkipCorrupt: *skipBad,
				}
				if predCol != "" {
					if *anyOf {
						lo1, hi1 := predWindow(rng, predLo, predHi, sel/2)
						lo2, hi2 := predWindow(rng, predLo, predHi, sel/2)
						req.AnyOf = client.AnyOf(
							[]zkserve.PredSpec{{Col: predCol, Lo: &lo1, Hi: &hi1}},
							[]zkserve.PredSpec{{Col: predCol, Lo: &lo2, Hi: &hi2}},
						)
					} else {
						lo, hi := predWindow(rng, predLo, predHi, sel)
						req.Preds = []zkserve.PredSpec{{Col: predCol, Lo: &lo, Hi: &hi}}
					}
				}
				m := *mode
				if m == "mixed" {
					switch k % 10 {
					case 8:
						m = "agg"
					case 9:
						m = "frames"
					default:
						m = "rows"
					}
				}
				start := time.Now()
				var res oneResult
				var err error
				if *retry > 1 {
					attempts, derr := client.DoWithRetry(ctx, client.RetryPolicy{MaxAttempts: *retry, BaseDelay: 5 * time.Millisecond}, func() error {
						var oerr error
						res, oerr = runOne(ctx, cl, m, req, *decode)
						return oerr
					})
					st.retries += int64(attempts - 1)
					err = derr
				} else {
					res, err = runOne(ctx, cl, m, req, *decode)
				}
				lat := time.Since(start)
				switch {
				case err == nil:
					st.ok++
					st.rows += res.rows
					st.bytes += res.bytes
					st.rowsLost += res.rowsLost
					if res.truncated {
						st.truncated++
					}
					if res.degraded {
						st.degraded++
					}
					st.latenciesNs = append(st.latenciesNs, int64(lat))
				case client.IsSaturated(err):
					st.rejected++
					time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
				default:
					st.failed++
				}
			}
		}(i)
	}
	started := time.Now()
	wg.Wait()
	elapsed := time.Since(started)
	if elapsed > *duration {
		elapsed = *duration // clients stop at the deadline; don't count spawn skew twice
	}

	rep := merge(stats, elapsed)
	rep.URL, rep.Table, rep.Mode, rep.Clients = *url, meta.Name, *mode, *clients
	if cacheAfter := scrapeCache(*url); cacheBefore.ok && cacheAfter.ok {
		rep.CacheEnabled = cacheAfter.enabled
		rep.CacheHits = cacheAfter.hits - cacheBefore.hits
		rep.CacheMisses = cacheAfter.misses - cacheBefore.misses
		if total := rep.CacheHits + rep.CacheMisses; total > 0 {
			rep.CacheHitRate = float64(rep.CacheHits) / float64(total)
		}
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		printText(rep)
	}
	if *requireOK && rep.OK == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no scan succeeded")
		os.Exit(1)
	}
	if *maxP99MS > 0 && rep.OK > 0 && rep.P99Ms > *maxP99MS {
		fmt.Fprintf(os.Stderr, "loadgen: p99 %.2fms exceeds gate %.2fms\n", rep.P99Ms, *maxP99MS)
		os.Exit(1)
	}
}

// cacheCounters is one /metrics snapshot of the server's cache series.
type cacheCounters struct {
	ok      bool
	enabled bool
	hits    int64
	misses  int64
}

// scrapeCache reads the hot-block cache counters from /metrics. A server
// without the series (or an unreachable one) yields ok=false and the
// report simply omits cache activity.
func scrapeCache(base string) cacheCounters {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return cacheCounters{}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return cacheCounters{}
	}
	var c cacheCounters
	var seen int
	for line := range strings.SplitSeq(string(body), "\n") {
		var v int64
		switch {
		case scanMetric(line, "zkserve_cache_hits_total", &v):
			c.hits, seen = v, seen+1
		case scanMetric(line, "zkserve_cache_misses_total", &v):
			c.misses, seen = v, seen+1
		case scanMetric(line, "zkserve_cache_enabled", &v):
			c.enabled, seen = v != 0, seen+1
		}
	}
	c.ok = seen == 3
	return c
}

func scanMetric(line, name string, v *int64) bool {
	_, err := fmt.Sscanf(line, name+" %d", v)
	return err == nil
}

// oneResult is what one query contributed to the report.
type oneResult struct {
	rows, bytes, rowsLost int64
	truncated, degraded   bool
}

func fromScan(res client.ScanResult) oneResult {
	return oneResult{
		rows: res.Rows, bytes: res.Bytes, rowsLost: res.RowsLost,
		truncated: res.Truncated, degraded: res.Degraded,
	}
}

func runOne(ctx context.Context, cl *client.Client, mode string, req zkserve.ScanRequest, decode bool) (oneResult, error) {
	switch mode {
	case "agg":
		req.Agg = "all"
		resp, err := cl.Aggregate(ctx, req)
		if err != nil {
			return oneResult{}, err
		}
		return oneResult{rows: resp.Result.Count, rowsLost: resp.RowsLost, degraded: resp.Degraded}, nil
	case "frames":
		var dec zukowski.FrameDecoder[int64]
		var buf []int64
		res, err := cl.ScanFrames(ctx, req, func(cols []zkserve.FrameStreamCol, blk *zkserve.FrameBlock) bool {
			if decode {
				for i, frame := range blk.Frames {
					if cols[i].WidthBytes != 8 {
						continue
					}
					if out, derr := dec.Decode(buf[:0], frame); derr == nil {
						buf = out
					}
				}
			}
			return true
		})
		return fromScan(res), err
	default:
		res, err := cl.ScanRows(ctx, req, nil)
		return fromScan(res), err
	}
}

func parseMix(s string) ([]float64, error) {
	var mix []float64
	for _, f := range strings.Split(s, ",") {
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &v); err != nil {
			return nil, err
		}
		if v <= 0 || v > 1 {
			return nil, fmt.Errorf("selectivity %g out of (0, 1]", v)
		}
		mix = append(mix, v)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return mix, nil
}

func pickTable(tables zkserve.TablesResponse, want string) (zkserve.TableMeta, error) {
	if len(tables.Tables) == 0 {
		return zkserve.TableMeta{}, fmt.Errorf("server lists no tables")
	}
	if want == "" {
		return tables.Tables[0], nil
	}
	for _, t := range tables.Tables {
		if t.Name == want {
			return t, nil
		}
	}
	return zkserve.TableMeta{}, fmt.Errorf("server has no table %q", want)
}

func pickCols(meta zkserve.TableMeta, flagVal string) []string {
	if flagVal != "" {
		return strings.Split(flagVal, ",")
	}
	var cols []string
	for _, c := range meta.Columns {
		cols = append(cols, c.Name)
		if len(cols) == 2 {
			break
		}
	}
	return cols
}

// hasFeature reports whether the server advertised the named
// scan-protocol capability in its /tables listing.
func hasFeature(tables zkserve.TablesResponse, f string) bool {
	for _, have := range tables.Features {
		if have == f {
			return true
		}
	}
	return false
}

// pickPredCol chooses the first zone-mapped column as the predicate
// target, returning its value range for the selectivity windows.
func pickPredCol(meta zkserve.TableMeta) (string, int64, int64) {
	for _, c := range meta.Columns {
		if c.HasMinMax && c.Max > c.Min {
			return c.Name, c.Min, c.Max
		}
	}
	return "", 0, 0
}

// predWindow returns a random [lo, hi] window covering sel of the
// column's value range.
func predWindow(rng *rand.Rand, cmin, cmax int64, sel float64) (int64, int64) {
	span := cmax - cmin
	width := int64(float64(span) * sel)
	if width < 1 {
		width = 1
	}
	lo := cmin
	if span > width {
		lo = cmin + rng.Int63n(span-width)
	}
	return lo, lo + width
}

func merge(stats []clientStats, elapsed time.Duration) Report {
	var rep Report
	var lats []int64
	for i := range stats {
		st := &stats[i]
		rep.OK += st.ok
		rep.Rejected += st.rejected
		rep.Failed += st.failed
		rep.Truncated += st.truncated
		rep.Degraded += st.degraded
		rep.Retries += st.retries
		rep.RowsLost += st.rowsLost
		rep.Rows += st.rows
		rep.Bytes += st.bytes
		lats = append(lats, st.latenciesNs...)
	}
	rep.Requests = rep.OK + rep.Rejected + rep.Failed
	rep.DurationS = elapsed.Seconds()
	if rep.DurationS > 0 {
		rep.QPS = float64(rep.OK) / rep.DurationS
		rep.RowsPerSec = float64(rep.Rows) / rep.DurationS
		rep.MBPerSec = float64(rep.Bytes) / rep.DurationS / 1e6
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) float64 {
			i := int(p * float64(len(lats)-1))
			return float64(lats[i]) / 1e6
		}
		rep.P50Ms, rep.P90Ms, rep.P99Ms = pct(0.50), pct(0.90), pct(0.99)
		rep.MaxMs = float64(lats[len(lats)-1]) / 1e6
	}
	return rep
}

func printText(rep Report) {
	fmt.Printf("loadgen: %d clients against %s table %q (%s mode) for %.1fs\n",
		rep.Clients, rep.URL, rep.Table, rep.Mode, rep.DurationS)
	fmt.Printf("  requests   %d  (ok %d, rejected %d, failed %d, truncated %d)\n",
		rep.Requests, rep.OK, rep.Rejected, rep.Failed, rep.Truncated)
	if rep.Retries > 0 || rep.Degraded > 0 {
		fmt.Printf("  resilience %d retries spent; %d scans degraded, %d rows lost to corrupt blocks\n",
			rep.Retries, rep.Degraded, rep.RowsLost)
	}
	fmt.Printf("  throughput %.0f scans/s, %.0f rows/s, %.2f MB/s payload\n",
		rep.QPS, rep.RowsPerSec, rep.MBPerSec)
	fmt.Printf("  latency    p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
		rep.P50Ms, rep.P90Ms, rep.P99Ms, rep.MaxMs)
	if rep.CacheEnabled {
		fmt.Printf("  cache      %d hits, %d misses (%.1f%% hit rate)\n",
			rep.CacheHits, rep.CacheMisses, 100*rep.CacheHitRate)
	}
}

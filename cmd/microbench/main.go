// Command microbench regenerates the paper's micro-benchmark figures:
//
//	Figure 2 — compression algorithm comparison on TPC-H columns
//	Figure 4 — decompression bandwidth & branch miss rate vs exception rate
//	Figure 5 — compression bandwidth: NAIVE vs PRED vs DC
//	Figure 6 — compulsory exceptions E'(E) for small bit widths
//	Figure 7 — I/O-RAM vs RAM-CPU cache decompression
//
// Run with no flags to produce everything, or select figures individually.
package main

import (
	"flag"
	"os"
	"time"

	"repro/experiments"
)

func main() {
	fig2 := flag.Bool("fig2", false, "run Figure 2 only")
	fig4 := flag.Bool("fig4", false, "run Figure 4 only")
	fig5 := flag.Bool("fig5", false, "run Figure 5 only")
	fig6 := flag.Bool("fig6", false, "run Figure 6 only")
	fig7 := flag.Bool("fig7", false, "run Figure 7 only")
	n := flag.Int("n", 1<<20, "values per micro-benchmark run")
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor for Figure 2")
	budget := flag.Duration("budget", 100*time.Millisecond, "timing budget per measurement")
	flag.Parse()

	experiments.Budget = *budget
	all := !(*fig2 || *fig4 || *fig5 || *fig6 || *fig7)
	w := os.Stdout

	if all || *fig2 {
		experiments.Fig2(w, *sf)
	}
	if all || *fig4 {
		experiments.Fig4(w, *n)
	}
	if all || *fig5 {
		experiments.Fig5(w, *n)
	}
	if all || *fig6 {
		experiments.Fig6(w, *n)
	}
	if all || *fig7 {
		experiments.Fig7(w, *n)
	}
}

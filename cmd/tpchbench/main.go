// Command tpchbench regenerates the paper's TPC-H evaluation:
//
//	Table 1  — published hardware-cost table (context)
//	Table 2  — per-query ratios, decompression speed, runtimes on two
//	           simulated RAIDs, DSM and PAX, compressed and uncompressed
//	Table 3  — page-wise vs vector-wise decompression (time + L2 misses)
//	Figure 8 — per-query time split: decompression / other CPU / I/O stalls
//	-check   — compressed-domain cross-check: the ZKC2 Expr/GroupAggregate
//	           query path against the decode-then-filter engine oracle
//
// Every run that compares configurations also compares their results;
// the process exits non-zero if any query's compressed and uncompressed
// results diverge, so CI can gate on exact equality.
//
// The scale factor defaults to 0.05 (75k orders, ~300k lineitems) so a full
// run completes in minutes on a laptop; raise -sf for steadier numbers.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/experiments"
)

func main() {
	table1 := flag.Bool("table1", false, "print Table 1 only")
	table2 := flag.Bool("table2", false, "run Table 2 only")
	table3 := flag.Bool("table3", false, "run Table 3 only")
	fig8 := flag.Bool("fig8", false, "run Figure 8 only")
	check := flag.Bool("check", false, "run the compressed-domain cross-check only")
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor")
	buf := flag.Int64("buf", 256<<20, "buffer pool bytes")
	flag.Parse()

	all := !(*table1 || *table2 || *table3 || *fig8 || *check)
	w := os.Stdout

	diverged := 0
	if all || *table1 {
		experiments.Table1(w)
	}
	if all || *table2 {
		diverged += experiments.Table2(w, *sf, experiments.LowEndRAID, *buf)
		diverged += experiments.Table2(w, *sf, experiments.MidEndRAID, *buf)
	}
	if all || *table3 {
		experiments.Table3(w, *sf, experiments.MidEndRAID, *buf)
	}
	if all || *fig8 {
		experiments.Fig8(w, *sf, experiments.LowEndRAID, experiments.DSM, *buf)
		experiments.Fig8(w, *sf, experiments.MidEndRAID, experiments.DSM, *buf)
		experiments.Fig8(w, *sf, experiments.MidEndRAID, experiments.PAX, *buf)
	}
	if all || *check {
		diverged += experiments.CompressedCheck(w, *sf, *buf)
	}
	if diverged > 0 {
		fmt.Fprintf(os.Stderr, "tpchbench: %d result divergence(s) between query paths\n", diverged)
		os.Exit(1)
	}
}

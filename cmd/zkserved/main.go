// Command zkserved serves columnar scans over HTTP. It registers every
// table found under -data (one subdirectory per table, one .zkc column
// container per file) and exposes POST /scan, GET /tables, GET /healthz
// and GET /metrics via the zkserve package: predicate pushdown into the
// compressed-domain scan engine, admission control with 429 shedding,
// per-query row/byte/time budgets, Prometheus metrics and structured
// request logs.
//
// Column reads retry transient I/O failures with jittered backoff
// (-retry-attempts, -retry-base); blocks whose checksum mismatch
// persists are quarantined and surface in /tables, /healthz and the
// zkserve_blocks_quarantined metric. Clients can opt a scan into
// degraded mode ("skip_corrupt": true) to skip quarantined or corrupt
// blocks and get exact loss accounting in the stream trailer.
//
// SIGTERM or SIGINT starts a graceful drain: /healthz flips to 503 so
// load balancers stop routing here, in-flight scans get -drain-grace to
// finish, then the listener closes.
//
// Examples:
//
//	zkserved -data /var/lib/zkc -addr :8080
//	zkserved -data /tmp/demo -gen demo:1000000:4 -slots 64 -max-duration 5s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultio"
	"repro/zkserve"
	"repro/zukowski"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		data        = flag.String("data", "", "data directory (one subdirectory per table)")
		gen         = flag.String("gen", "", "generate a synthetic table into -data before serving: name:rows:cols[:blockValues[:codec]]")
		genSeed     = flag.Int64("gen-seed", 1, "seed for -gen")
		slots       = flag.Int("slots", 0, "concurrent scan slots (0 = 4×GOMAXPROCS); excess load is refused with 429")
		maxRows     = flag.Int64("max-rows", 0, "server-wide per-query row budget (0 = unlimited)")
		maxBytes    = flag.Int64("max-bytes", 0, "server-wide per-query response byte budget (0 = unlimited)")
		maxDur      = flag.Duration("max-duration", 0, "server-wide per-query time budget (0 = unlimited)")
		maxWorkers  = flag.Int("max-workers", 0, "per-scan parallelism cap (0 = GOMAXPROCS)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "hot-block cache byte budget shared across all tables (0 = off)")
		drainGrace  = flag.Duration("drain-grace", 10*time.Second, "how long in-flight scans get to finish on shutdown")
		logLevelStr = flag.String("log-level", "info", "log level: debug, info, warn, error")

		// Fault-tolerance knobs. -chaos is a testing hook (hidden from the
		// usage examples on purpose): it interposes a deterministic fault
		// injector between every column reader and its file.
		retryAttempts = flag.Int("retry-attempts", 3, "read attempts per block on transient I/O failure (<2 disables retries)")
		retryBase     = flag.Duration("retry-base", time.Millisecond, "backoff before the first block-read retry (doubles per retry)")
		chaos         = flag.String("chaos", "", "fault-injection schedule applied to every column file, e.g. 'transient,count=2;bitflip,off=4096,len=64' (testing only)")
		chaosSeed     = flag.Int64("chaos-seed", 1, "seed for probabilistic -chaos rules")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevelStr)); err != nil {
		fmt.Fprintf(os.Stderr, "zkserved: bad -log-level %q\n", *logLevelStr)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *data == "" {
		fmt.Fprintln(os.Stderr, "zkserved: -data is required")
		os.Exit(2)
	}
	if *gen != "" {
		spec, err := parseGenSpec(*gen, *genSeed)
		if err != nil {
			logger.Error("bad -gen spec", "err", err)
			os.Exit(2)
		}
		logger.Info("generating table", "name", spec.Name, "rows", spec.Rows, "cols", spec.Cols)
		if err := zkserve.GenerateTable(*data, spec); err != nil {
			logger.Error("generate failed", "err", err)
			os.Exit(1)
		}
	}

	var regOpts []zkserve.RegistryOption
	if *retryAttempts > 1 {
		regOpts = append(regOpts, zkserve.WithRetryPolicy(zukowski.RetryPolicy{
			MaxAttempts: *retryAttempts,
			BaseDelay:   *retryBase,
		}))
	}
	if *chaos != "" {
		rules, err := faultio.ParseSchedule(*chaos)
		if err != nil {
			logger.Error("bad -chaos schedule", "err", err)
			os.Exit(2)
		}
		logger.Warn("chaos mode: injecting faults into every column read", "schedule", *chaos, "seed", *chaosSeed)
		seed := *chaosSeed
		regOpts = append(regOpts, zkserve.WithSourceWrapper(func(r io.ReaderAt, size int64) io.ReaderAt {
			seed++ // distinct schedule per column, deterministic per process
			return faultio.NewReaderAt(r, seed, rules...)
		}))
	}

	reg, err := zkserve.OpenDir(*data, regOpts...)
	if err != nil {
		logger.Error("opening data directory", "dir", *data, "err", err)
		os.Exit(1)
	}
	defer reg.Close()
	for _, name := range reg.Tables() {
		t, _ := reg.Table(name)
		m := t.Meta()
		logger.Info("table registered", "table", name, "rows", m.Rows, "columns", len(m.Columns))
	}
	if *cacheBytes > 0 {
		logger.Info("hot-block cache enabled", "budget_bytes", *cacheBytes)
	}

	srv := zkserve.NewServer(zkserve.Config{
		Registry:    reg,
		Slots:       *slots,
		MaxRows:     *maxRows,
		MaxBytes:    *maxBytes,
		MaxDuration: *maxDur,
		MaxWorkers:  *maxWorkers,
		CacheBytes:  *cacheBytes,
		Logger:      logger,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}
	zkserve.Harden(hs)

	done := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		done <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case got := <-sig:
		logger.Info("draining", "signal", got.String(), "grace", drainGrace.String())
		srv.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logger.Warn("drain grace expired, cutting connections", "err", err)
			hs.Close()
		}
		logger.Info("stopped")
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			os.Exit(1)
		}
	}
}

// parseGenSpec parses name:rows:cols[:blockValues[:codec[:segments]]].
// segments > 1 generates a sharded zktable directory (rows per segment)
// instead of flat per-column files.
func parseGenSpec(s string, seed int64) (zkserve.TableSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 3 || len(parts) > 6 {
		return zkserve.TableSpec{}, fmt.Errorf("want name:rows:cols[:blockValues[:codec[:segments]]], got %q", s)
	}
	spec := zkserve.TableSpec{Name: parts[0], Seed: seed}
	var err error
	if spec.Rows, err = strconv.Atoi(parts[1]); err != nil {
		return spec, fmt.Errorf("rows: %w", err)
	}
	if spec.Cols, err = strconv.Atoi(parts[2]); err != nil {
		return spec, fmt.Errorf("cols: %w", err)
	}
	if len(parts) > 3 {
		if spec.BlockValues, err = strconv.Atoi(parts[3]); err != nil {
			return spec, fmt.Errorf("blockValues: %w", err)
		}
	}
	if len(parts) > 4 {
		spec.Codec = parts[4]
	}
	if len(parts) > 5 {
		if spec.Segments, err = strconv.Atoi(parts[5]); err != nil {
			return spec, fmt.Errorf("segments: %w", err)
		}
	}
	return spec, nil
}

// Command codecbench benchmarks every registered codec through the public
// column container: compression ratio, encode and decode bandwidth,
// point-Get latency, and the zone-map skip rate of a selective ScanWhere.
// It reads any raw little-endian binary file of fixed-width integers, or
// generates a synthetic distribution from the experiments package, and
// emits a text table or a JSON report.
//
// The JSON report doubles as a CI perf gate: pass -baseline to compare the
// current run against a checked-in report and exit non-zero when the
// compression ratio or decode bandwidth of any codec regresses by more
// than -tolerance (default 20%).
//
// Examples:
//
//	codecbench -synth sorted -n 1048576 -format json -o report.json
//	codecbench -input keys.bin -t uint32
//	codecbench -synth sorted -format json -baseline bench_baseline.json
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"time"

	"repro/experiments"
	"repro/zukowski"
)

// Report is the stable JSON schema the CI gate consumes.
type Report struct {
	CreatedAt   string `json:"created_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	Source      string `json:"source"`
	ElemType    string `json:"elem_type"`
	NumValues   int    `json:"num_values"`
	BlockValues int    `json:"block_values"`
	// MemMBps is a raw memory-read bandwidth calibration measured in the
	// same process. The perf gate compares decode bandwidths after
	// normalizing by it, so a slower or throttled CI runner does not read
	// as a code regression.
	MemMBps float64 `json:"mem_mbps"`
	// Workers and NumCPU describe the parallel-scan measurement: Workers
	// is the -workers flag (0 when the mode is off), NumCPU the runner's
	// logical CPU count. The gate only compares parallel bandwidths
	// between runs that used the same worker count.
	Workers int `json:"workers,omitempty"`
	NumCPU  int `json:"num_cpu,omitempty"`
	// Cols is the -cols flag: the column count of the conjunctive
	// multi-column sweep (0 or 1 when the mode is off).
	Cols    int           `json:"cols,omitempty"`
	Results []CodecResult `json:"results"`
}

// CodecResult holds one codec's measurements. A codec that cannot encode
// the dataset (e.g. vbyte over values outside its domain) reports Error
// and is excluded from gating.
type CodecResult struct {
	Codec           string  `json:"codec"`
	Error           string  `json:"error,omitempty"`
	CompressedBytes int     `json:"compressed_bytes,omitempty"`
	Ratio           float64 `json:"ratio,omitempty"`
	EncodeMBps      float64 `json:"encode_mbps,omitempty"`
	DecodeMBps      float64 `json:"decode_mbps,omitempty"`
	GetNanos        float64 `json:"get_ns,omitempty"`
	TotalBlocks     int     `json:"total_blocks,omitempty"`
	CandidateBlocks int     `json:"candidate_blocks,omitempty"`
	ZoneMapSkipRate float64 `json:"zone_map_skip_rate"`
	// ScanMBps is the one-worker ParallelScan bandwidth (the sequential
	// block loop); ParallelScanMBps the bandwidth at -workers workers;
	// ParallelSpeedup their quotient. Only measured when -workers > 1.
	ScanMBps         float64 `json:"scan_mbps,omitempty"`
	ParallelScanMBps float64 `json:"parallel_scan_mbps,omitempty"`
	ParallelSpeedup  float64 `json:"parallel_speedup,omitempty"`
	// FilteredScans holds the -selectivity sweep: one entry per requested
	// selectivity point.
	FilteredScans []FilteredScanResult `json:"filtered_scans,omitempty"`
	// ConjunctiveScans holds the multi-column -cols sweep: one entry per
	// requested selectivity point, measured over a ColumnSet of -cols
	// same-codec columns.
	ConjunctiveScans []ConjunctiveScanResult `json:"conjunctive_scans,omitempty"`
	// DisjunctiveScans holds the -or sweep: one entry per requested
	// selectivity point, a two-branch OR over the first two columns of
	// the -cols set evaluated through the expression tree.
	DisjunctiveScans []DisjunctiveScanResult `json:"disjunctive_scans,omitempty"`
}

// ConjunctiveScanResult measures one point of the multi-column sweep: a
// conjunction of per-column range predicates whose combined selectivity
// targets ~Selectivity, evaluated the decode-then-filter way (every
// candidate block of every column decoded, the conjunction re-applied row
// by row in the caller) and the selection-vector way (ScanWhereAll:
// bitmap per predicate, AND before materialization).
type ConjunctiveScanResult struct {
	Cols int `json:"cols"`
	// Selectivity is the requested combined fraction; each column gets a
	// window of selectivity Selectivity^(1/Cols). ActualSelectivity is the
	// fraction the conjunction really selects.
	Selectivity       float64 `json:"selectivity"`
	ActualSelectivity float64 `json:"actual_selectivity"`
	Matched           int     `json:"matched"`
	// Bandwidths are raw-data MB/s over all columns per pass.
	OracleMBps          float64 `json:"oracle_mbps"`
	ScanAllMBps         float64 `json:"scan_all_mbps"`
	ParallelScanAllMBps float64 `json:"parallel_scan_all_mbps,omitempty"`
	AggregateAllMBps    float64 `json:"aggregate_all_mbps"`
	// Speedup is ScanAllMBps / OracleMBps.
	Speedup float64 `json:"speedup"`
}

// DisjunctiveScanResult measures one point of the OR sweep: a two-branch
// disjunction Or(Range(col0), Range(col1)) whose combined selectivity
// targets ~Selectivity (each branch gets a centered window of ~half on
// its own column), evaluated the decode-then-filter way (every block at
// least one branch's zone map admits is fully decoded on both columns,
// the disjunction re-applied row by row in the caller) and the
// expression-tree way (Run with an Or expression: mask per branch,
// UnionMask in the compressed domain, both columns materialized only at
// surviving rows).
type DisjunctiveScanResult struct {
	Cols int `json:"cols"`
	// Selectivity is the requested combined fraction; ActualSelectivity
	// the fraction the disjunction really selects.
	Selectivity       float64 `json:"selectivity"`
	ActualSelectivity float64 `json:"actual_selectivity"`
	Matched           int     `json:"matched"`
	// Bandwidths are raw-data MB/s over the two scanned columns per pass.
	OracleMBps    float64 `json:"oracle_mbps"`
	OrScanMBps    float64 `json:"or_scan_mbps"`
	AggregateMBps float64 `json:"aggregate_mbps"`
	// Speedup is OrScanMBps / OracleMBps — a within-run ratio, so it
	// needs no memory-bandwidth normalization.
	Speedup float64 `json:"speedup"`
}

// FilteredScanResult measures one selectivity point of the filtered-scan
// sweep: a centered value-range predicate selecting ~Selectivity of the
// data, evaluated the pre-PR-4 way (ScanWhere: decode every candidate
// block, re-apply the predicate and materialize matching rows+values in
// the caller) and the compressed-domain way (ScanSelect / AggregateWhere).
type FilteredScanResult struct {
	// Selectivity is the requested fraction; ActualSelectivity the fraction
	// the chosen [lo, hi] window really selects (duplicates at the window
	// edges can widen it).
	Selectivity       float64 `json:"selectivity"`
	ActualSelectivity float64 `json:"actual_selectivity"`
	Matched           int     `json:"matched"`
	// Bandwidths are raw-data MB/s over the whole column per pass.
	ScanWhereMBps  float64 `json:"scan_where_mbps"`
	ScanSelectMBps float64 `json:"scan_select_mbps"`
	AggregateMBps  float64 `json:"aggregate_mbps"`
	// SelectSpeedup is ScanSelectMBps / ScanWhereMBps.
	SelectSpeedup float64 `json:"select_speedup"`
	// MatchedPerSec is matched values per second through ScanSelect.
	MatchedPerSec float64 `json:"matched_per_sec"`
}

var (
	input       = flag.String("input", "", "raw little-endian binary file of -t values (empty: use -synth)")
	synth       = flag.String("synth", "sorted", "synthetic distribution when -input is empty: pfor|dict|sorted")
	numValues   = flag.Int("n", 1<<20, "synthetic value count")
	seed        = flag.Int64("seed", 1, "synthetic data seed")
	elem        = flag.String("t", "int64", "element type: int8|int16|int32|int64|uint8|uint16|uint32|uint64")
	codecNames  = flag.String("codecs", "", "comma-separated codec subset (empty: all registered)")
	blockValues = flag.Int("blocksize", zukowski.DefaultBlockValues, "column block size in values")
	format      = flag.String("format", "text", "report format: text|json")
	outPath     = flag.String("o", "", "write the report to this file instead of stdout")
	baseline    = flag.String("baseline", "", "baseline JSON report to gate against")
	tolerance   = flag.Float64("tolerance", 0.20, "allowed fractional regression vs -baseline")
	minTime     = flag.Duration("mintime", 100*time.Millisecond, "minimum measurement time per timing round")
	rounds      = flag.Int("rounds", 5, "timing rounds per measurement; the fastest round is reported")
	workers     = flag.Int("workers", 0, "measure block-parallel scans with this many workers (0: skip)")
	selectivity = flag.String("selectivity", "", "comma-separated selectivity sweep for filtered scans, e.g. 0.001,0.01,0.1,0.5,1 (empty: skip)")
	cols        = flag.Int("cols", 1, "measure conjunctive multi-column scans over this many columns at each -selectivity point (<2: skip)")
	orScan      = flag.Bool("or", false, "measure two-branch disjunctive (OR) scans at each -selectivity point (needs -cols >= 2)")
	orFloor     = flag.Float64("orfloor", 0, "fail unless every disjunctive point at selectivity <= 0.1 reaches this speedup over decode-then-filter (0: off)")
)

// selectivityPoints parses the -selectivity flag.
func selectivityPoints() []float64 {
	if *selectivity == "" {
		return nil
	}
	var pts []float64
	for _, f := range strings.Split(*selectivity, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 || v > 1 {
			log.Fatalf("bad -selectivity point %q (want fractions in (0,1])", f)
		}
		pts = append(pts, v)
	}
	return pts
}

// bestOf measures f over -rounds independent rounds and returns the
// fastest mean seconds per call. Taking the minimum discards scheduler and
// neighbor noise, which only ever slows a run down — the estimator CI
// needs for a regression gate that does not flake.
func bestOf(f func()) float64 {
	best := experiments.TimeIt(*minTime, f)
	for i := 1; i < *rounds; i++ {
		if s := experiments.TimeIt(*minTime, f); s < best {
			best = s
		}
	}
	return best
}

func main() {
	flag.Parse()
	var rep Report
	switch *elem {
	case "int8":
		rep = run[int8]()
	case "int16":
		rep = run[int16]()
	case "int32":
		rep = run[int32]()
	case "int64":
		rep = run[int64]()
	case "uint8":
		rep = run[uint8]()
	case "uint16":
		rep = run[uint16]()
	case "uint32":
		rep = run[uint32]()
	case "uint64":
		rep = run[uint64]()
	default:
		log.Fatalf("unknown element type %q", *elem)
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	case "text":
		printText(w, rep)
	default:
		log.Fatalf("unknown format %q", *format)
	}

	if *baseline != "" {
		if err := gate(rep, *baseline, *tolerance); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gate: no codec regressed more than %.0f%% vs %s\n", *tolerance*100, *baseline)
	}
	if *orFloor > 0 {
		if err := checkOrFloor(rep, *orFloor); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gate: every disjunctive point at selectivity <= 0.1 reached %.2fx over decode-then-filter\n", *orFloor)
	}
}

// checkOrFloor enforces the absolute OR-composition claim: at combined
// selectivities of at most 10%, the expression-tree disjunctive scan must
// beat the decode-then-filter oracle by the given factor. The ratio is
// within-run, so the check is machine-independent.
func checkOrFloor(rep Report, floor float64) error {
	var failures []string
	points := 0
	for _, r := range rep.Results {
		if r.Error != "" {
			continue
		}
		for _, ds := range r.DisjunctiveScans {
			if ds.Selectivity > 0.1 {
				continue
			}
			points++
			if ds.Speedup < floor {
				failures = append(failures, fmt.Sprintf(
					"%s@or%g: disjunctive speedup %.2fx < floor %.2fx",
					r.Codec, ds.Selectivity, ds.Speedup, floor))
			}
		}
	}
	if points == 0 {
		return fmt.Errorf("-orfloor set but no disjunctive points at selectivity <= 0.1 were measured (pass -or, -cols >= 2 and -selectivity)")
	}
	if len(failures) > 0 {
		return fmt.Errorf("disjunctive speedup floor failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// loadValues produces the benchmark dataset in the requested element type.
func loadValues[T zukowski.Integer]() ([]T, string) {
	if *input != "" {
		raw, err := os.ReadFile(*input)
		if err != nil {
			log.Fatal(err)
		}
		var zero T
		width := int(binary.Size(zero))
		vals := make([]T, len(raw)/width)
		for i := range vals {
			var bits uint64
			for b := width - 1; b >= 0; b-- {
				bits = bits<<8 | uint64(raw[i*width+b])
			}
			vals[i] = T(bits)
		}
		return vals, *input
	}
	rng := rand.New(rand.NewSource(*seed))
	var canonical []int64
	switch *synth {
	case "pfor":
		canonical = experiments.SynthPFOR(rng, *numValues, 10, 0.02)
	case "dict":
		canonical, _ = experiments.SynthDict(rng, *numValues, 8, 0.01)
	case "sorted":
		canonical = experiments.SynthSorted(rng, *numValues, 3)
	default:
		log.Fatalf("unknown synthetic distribution %q", *synth)
	}
	vals := make([]T, len(canonical))
	for i, v := range canonical {
		vals[i] = T(v)
	}
	return vals, "synth:" + *synth
}

func run[T zukowski.Integer]() Report {
	vals, source := loadValues[T]()
	if len(vals) == 0 {
		log.Fatal("empty dataset")
	}
	rep := Report{
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Source:      source,
		ElemType:    *elem,
		NumValues:   len(vals),
		BlockValues: *blockValues,
		Workers:     *workers,
		NumCPU:      runtime.NumCPU(),
		Cols:        *cols,
	}

	rep.MemMBps = memBandwidth()

	// The selective range for the zone-map measurement: the values between
	// the 45th and 55th percentile, i.e. a predicate selecting ~10% of the
	// data. On sorted or clustered columns the zone maps confine that to a
	// fraction of the blocks; on uniform data they cannot prune.
	sorted := slices.Clone(vals)
	slices.Sort(sorted)
	lo, hi := sorted[len(sorted)*45/100], sorted[len(sorted)*55/100]

	// Parse the sweep before any timing work, so a malformed flag fails
	// immediately instead of after the first codec's full benchmark run.
	points := selectivityPoints()

	// The conjunctive sweep needs -cols same-length columns: the loaded
	// one plus derived siblings (fresh synthetic draws of the same
	// distribution, or deterministic permutations of a file input).
	var conjCols [][]T
	if *cols >= 2 && len(points) > 0 {
		conjCols = make([][]T, *cols)
		conjCols[0] = vals
		for i := 1; i < *cols; i++ {
			conjCols[i] = deriveColumn(vals, i)
		}
	}

	names := zukowski.Codecs()
	if *codecNames != "" {
		names = strings.Split(*codecNames, ",")
	}
	for _, name := range names {
		rep.Results = append(rep.Results, benchCodec(name, vals, sorted, lo, hi, points, conjCols))
	}
	return rep
}

// deriveColumn produces sibling column i for the conjunctive sweep.
// Synthetic sources draw a fresh column of the same distribution from a
// per-column seed; file inputs are scrambled by a fixed-stride
// permutation (same multiset of values, so compression characteristics
// match, but rows decorrelate and the conjunction genuinely narrows).
func deriveColumn[T zukowski.Integer](base []T, i int) []T {
	if *input == "" {
		rng := rand.New(rand.NewSource(*seed + int64(1000*i)))
		var canonical []int64
		switch *synth {
		case "pfor":
			canonical = experiments.SynthPFOR(rng, len(base), 10, 0.02)
		case "dict":
			canonical, _ = experiments.SynthDict(rng, len(base), 8, 0.01)
		case "sorted":
			canonical = experiments.SynthSorted(rng, len(base), 3)
		}
		vals := make([]T, len(canonical))
		for j, v := range canonical {
			vals[j] = T(v)
		}
		return vals
	}
	n := len(base)
	out := make([]T, n)
	stride := n/3*2 + 1
	for gcd(stride, n) != 1 { // coprime stride => the walk is a permutation
		stride++
	}
	idx := (i * 7919) % n
	for j := range out {
		out[j] = base[idx]
		idx += stride
		if idx >= n {
			idx -= n
		}
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// memBandwidth measures sequential memory-read bandwidth over a buffer
// far larger than L2, the calibration constant of the perf gate.
func memBandwidth() float64 {
	buf := make([]int64, 8<<20) // 64 MB
	for i := range buf {
		buf[i] = int64(i)
	}
	var sink int64
	secs := bestOf(func() {
		var s int64
		for _, v := range buf {
			s += v
		}
		sink += s
	})
	_ = sink
	return experiments.MBps(len(buf)*8, secs)
}

func benchCodec[T zukowski.Integer](name string, vals, sorted []T, lo, hi T, points []float64, conjCols [][]T) CodecResult {
	res := CodecResult{Codec: name}
	codec, err := zukowski.Lookup[T](name)
	if err != nil {
		res.Error = err.Error()
		return res
	}

	build := func(w io.Writer) error {
		cw, err := zukowski.NewColumnWriter(w, codec, *blockValues)
		if err != nil {
			return err
		}
		if err := cw.Write(vals); err != nil {
			return err
		}
		return cw.Close()
	}

	var buf bytes.Buffer
	if err := build(&buf); err != nil {
		res.Error = err.Error()
		return res
	}
	cr, err := zukowski.OpenColumn[T](buf.Bytes())
	if err != nil {
		res.Error = err.Error()
		return res
	}
	rawBytes := cr.UncompressedBytes()
	res.CompressedBytes = cr.CompressedBytes()
	res.Ratio = cr.Ratio()
	res.TotalBlocks = cr.NumBlocks()
	res.CandidateBlocks = cr.CountCandidateBlocks(lo, hi)
	if res.TotalBlocks > 0 {
		res.ZoneMapSkipRate = 1 - float64(res.CandidateBlocks)/float64(res.TotalBlocks)
	}

	secs := bestOf(func() {
		if err := build(io.Discard); err != nil {
			log.Fatalf("%s: encode: %v", name, err)
		}
	})
	res.EncodeMBps = experiments.MBps(rawBytes, secs)

	var dst []T
	secs = bestOf(func() {
		out, err := cr.ReadAll(dst[:0])
		if err != nil {
			log.Fatalf("%s: decode: %v", name, err)
		}
		dst = out
	})
	res.DecodeMBps = experiments.MBps(rawBytes, secs)

	if *workers > 1 {
		scanMBps := func(w int) float64 {
			secs := bestOf(func() {
				if err := cr.ParallelScan(w, func(int, []T) bool { return true }); err != nil {
					log.Fatalf("%s: parallel scan (%d workers): %v", name, w, err)
				}
			})
			return experiments.MBps(rawBytes, secs)
		}
		res.ScanMBps = scanMBps(1)
		res.ParallelScanMBps = scanMBps(*workers)
		if res.ScanMBps > 0 {
			res.ParallelSpeedup = res.ParallelScanMBps / res.ScanMBps
		}
	}

	for _, s := range points {
		res.FilteredScans = append(res.FilteredScans, benchFilteredScan(name, cr, sorted, s))
	}

	if len(conjCols) >= 2 {
		if set, sortedCols, err := buildColumnSet(codec, conjCols); err != nil {
			fmt.Fprintf(os.Stderr, "%s: conjunctive sweep skipped: %v\n", name, err)
		} else {
			for _, s := range points {
				res.ConjunctiveScans = append(res.ConjunctiveScans, benchConjunctive(name, set, sortedCols, s))
			}
			if *orScan {
				for _, s := range points {
					res.DisjunctiveScans = append(res.DisjunctiveScans, benchDisjunctive(name, set, sortedCols, s))
				}
			}
		}
	}

	rng := rand.New(rand.NewSource(*seed + 17))
	idx := make([]int, 4096)
	for i := range idx {
		idx[i] = rng.Intn(len(vals))
	}
	var sink T
	secs = bestOf(func() {
		for _, i := range idx {
			v, err := cr.Get(i)
			if err != nil {
				log.Fatalf("%s: get: %v", name, err)
			}
			sink += v
		}
	})
	_ = sink
	res.GetNanos = secs / float64(len(idx)) * 1e9
	return res
}

// benchFilteredScan measures one selectivity point: a centered window over
// the sorted values selecting ~s of the data, scanned three ways. The
// ScanWhere pass is the decode-then-filter consumer ScanSelect replaces —
// the caller re-applies the predicate to every delivered vector and
// materializes the matching (row, value) pairs, equivalent output to
// ScanSelect — so the speedup column is an apples-to-apples read of what
// compressed-domain selection buys.
func benchFilteredScan[T zukowski.Integer](name string, cr *zukowski.ColumnReader[T], sorted []T, s float64) FilteredScanResult {
	n := len(sorted)
	target := int(s * float64(n))
	if target < 1 {
		target = 1
	}
	loIdx := (n - target) / 2
	lo, hi := sorted[loIdx], sorted[loIdx+target-1]
	fs := FilteredScanResult{Selectivity: s}
	rawBytes := cr.UncompressedBytes()

	// Global row numbers need each delivered block's first row, which
	// ScanWhere's vector-only callback cannot convey once zone maps skip
	// blocks; the one-worker ParallelScanWhere is the same sequential
	// pruned loop but hands over the block index.
	starts := make([]int64, cr.NumBlocks()+1)
	for b := 0; b < cr.NumBlocks(); b++ {
		info, err := cr.BlockInfo(b)
		if err != nil {
			log.Fatalf("%s: BlockInfo(%d): %v", name, b, err)
		}
		starts[b+1] = starts[b] + int64(info.Count)
	}
	rows := make([]int64, 0, n)
	matchVals := make([]T, 0, n)
	secs := bestOf(func() {
		rows, matchVals = rows[:0], matchVals[:0]
		if err := cr.ParallelScanWhere(lo, hi, 1, func(b int, v []T) bool {
			base := starts[b]
			for j, x := range v {
				if x >= lo && x <= hi {
					rows = append(rows, base+int64(j))
					matchVals = append(matchVals, x)
				}
			}
			return true
		}); err != nil {
			log.Fatalf("%s: ScanWhere: %v", name, err)
		}
	})
	fs.ScanWhereMBps = experiments.MBps(rawBytes, secs)
	whereMatched := len(rows)

	matched := 0
	secs = bestOf(func() {
		matched = 0
		if err := cr.ScanSelect(lo, hi, func(r []int64, _ []T) bool {
			matched += len(r)
			return true
		}); err != nil {
			log.Fatalf("%s: ScanSelect: %v", name, err)
		}
	})
	fs.ScanSelectMBps = experiments.MBps(rawBytes, secs)
	fs.Matched = matched
	fs.ActualSelectivity = float64(matched) / float64(cr.Len())
	if secs > 0 {
		fs.MatchedPerSec = float64(matched) / secs
	}
	if fs.ScanWhereMBps > 0 {
		fs.SelectSpeedup = fs.ScanSelectMBps / fs.ScanWhereMBps
	}
	if matched != whereMatched {
		log.Fatalf("%s: ScanSelect matched %d values, decode-then-filter matched %d", name, matched, whereMatched)
	}
	// One untimed pass proves the two paths emit identical (row, value)
	// streams, not just equal counts.
	i := 0
	if err := cr.ScanSelect(lo, hi, func(r []int64, v []T) bool {
		for j := range r {
			if r[j] != rows[i] || v[j] != matchVals[i] {
				log.Fatalf("%s: match %d: ScanSelect (%d,%v) != decode-then-filter (%d,%v)",
					name, i, r[j], v[j], rows[i], matchVals[i])
			}
			i++
		}
		return true
	}); err != nil {
		log.Fatalf("%s: ScanSelect verify pass: %v", name, err)
	}

	secs = bestOf(func() {
		agg, err := cr.AggregateWhere(lo, hi)
		if err != nil {
			log.Fatalf("%s: AggregateWhere: %v", name, err)
		}
		if int(agg.Count) != matched {
			log.Fatalf("%s: AggregateWhere counted %d values, ScanSelect matched %d", name, agg.Count, matched)
		}
	})
	fs.AggregateMBps = experiments.MBps(rawBytes, secs)
	return fs
}

// buildColumnSet encodes every column of the conjunctive sweep with one
// codec and groups the readers, returning each column's sorted values for
// predicate-window selection.
func buildColumnSet[T zukowski.Integer](codec zukowski.Codec[T], conjCols [][]T) (*zukowski.ColumnSet[T], [][]T, error) {
	readers := make([]*zukowski.ColumnReader[T], len(conjCols))
	sortedCols := make([][]T, len(conjCols))
	for i, vals := range conjCols {
		var buf bytes.Buffer
		cw, err := zukowski.NewColumnWriter(&buf, codec, *blockValues)
		if err != nil {
			return nil, nil, err
		}
		if err := cw.Write(vals); err != nil {
			return nil, nil, err
		}
		if err := cw.Close(); err != nil {
			return nil, nil, err
		}
		if readers[i], err = zukowski.OpenColumn[T](buf.Bytes()); err != nil {
			return nil, nil, err
		}
		sortedCols[i] = slices.Clone(vals)
		slices.Sort(sortedCols[i])
	}
	set, err := zukowski.NewColumnSet(readers...)
	if err != nil {
		return nil, nil, err
	}
	return set, sortedCols, nil
}

// benchConjunctive measures one combined-selectivity point of the
// multi-column sweep. Each column gets a centered window of selectivity
// s^(1/cols) over its own value distribution, so on decorrelated columns
// the conjunction selects ~s of the rows. The oracle pass is the
// decode-then-filter plan ScanWhereAll replaces: every candidate block of
// every column decoded in lockstep (zone maps prune for both plans), the
// conjunction re-applied per row in the caller, matching rows and all
// column values materialized — identical output to ScanWhereAll.
func benchConjunctive[T zukowski.Integer](name string, set *zukowski.ColumnSet[T], sortedCols [][]T, s float64) ConjunctiveScanResult {
	numCols := set.Columns()
	res := ConjunctiveScanResult{Cols: numCols, Selectivity: s}
	n := set.Len()
	perCol := math.Pow(s, 1/float64(numCols))
	preds := make([]zukowski.Pred[T], numCols)
	for c := 0; c < numCols; c++ {
		sorted := sortedCols[c]
		target := int(perCol * float64(n))
		if target < 1 {
			target = 1
		}
		loIdx := (n - target) / 2
		preds[c] = zukowski.Pred[T]{Col: c, Lo: sorted[loIdx], Hi: sorted[loIdx+target-1]}
	}
	rawBytes := 0
	for c := 0; c < numCols; c++ {
		rawBytes += set.Column(c).UncompressedBytes()
	}

	// Candidate blocks under zone-map pruning, shared by both plans.
	var candidates []int
	starts := make([]int64, set.NumBlocks()+1)
	for b := 0; b < set.NumBlocks(); b++ {
		keep := true
		for _, p := range preds {
			info, err := set.Column(p.Col).BlockInfo(b)
			if err != nil {
				log.Fatalf("%s: BlockInfo(%d): %v", name, b, err)
			}
			if info.HasZoneMap && (info.Max < p.Lo || info.Min > p.Hi) {
				keep = false
				break
			}
		}
		info, err := set.Column(0).BlockInfo(b)
		if err != nil {
			log.Fatalf("%s: BlockInfo(%d): %v", name, b, err)
		}
		starts[b+1] = starts[b] + int64(info.Count)
		if keep {
			candidates = append(candidates, b)
		}
	}

	// Decode-then-filter oracle.
	bufs := make([][]T, numCols)
	rows := make([]int64, 0, n)
	outs := make([][]T, numCols)
	for c := range outs {
		outs[c] = make([]T, 0, n)
	}
	secs := bestOf(func() {
		rows = rows[:0]
		for c := range outs {
			outs[c] = outs[c][:0]
		}
		for _, b := range candidates {
			for c := 0; c < numCols; c++ {
				var err error
				if bufs[c], err = set.Column(c).ReadBlock(b, bufs[c][:0]); err != nil {
					log.Fatalf("%s: ReadBlock(%d): %v", name, b, err)
				}
			}
			base := starts[b]
			for j := range bufs[0] {
				ok := true
				for _, p := range preds {
					if v := bufs[p.Col][j]; v < p.Lo || v > p.Hi {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				rows = append(rows, base+int64(j))
				for c := 0; c < numCols; c++ {
					outs[c] = append(outs[c], bufs[c][j])
				}
			}
		}
	})
	res.OracleMBps = experiments.MBps(rawBytes, secs)
	oracleMatched := len(rows)

	matched := 0
	secs = bestOf(func() {
		matched = 0
		if err := set.ScanWhereAll(preds, func(r []int64, _ [][]T) bool {
			matched += len(r)
			return true
		}); err != nil {
			log.Fatalf("%s: ScanWhereAll: %v", name, err)
		}
	})
	res.ScanAllMBps = experiments.MBps(rawBytes, secs)
	res.Matched = matched
	res.ActualSelectivity = float64(matched) / float64(n)
	if res.OracleMBps > 0 {
		res.Speedup = res.ScanAllMBps / res.OracleMBps
	}
	if matched != oracleMatched {
		log.Fatalf("%s: ScanWhereAll matched %d rows, decode-then-filter matched %d", name, matched, oracleMatched)
	}
	// One untimed pass proves the two plans emit identical rows and values
	// for every column, not just equal counts.
	i := 0
	if err := set.ScanWhereAll(preds, func(r []int64, colVals [][]T) bool {
		for j := range r {
			if r[j] != rows[i] {
				log.Fatalf("%s: match %d: ScanWhereAll row %d != oracle row %d", name, i, r[j], rows[i])
			}
			for c := 0; c < numCols; c++ {
				if colVals[c][j] != outs[c][i] {
					log.Fatalf("%s: match %d col %d: ScanWhereAll %v != oracle %v",
						name, i, c, colVals[c][j], outs[c][i])
				}
			}
			i++
		}
		return true
	}); err != nil {
		log.Fatalf("%s: ScanWhereAll verify pass: %v", name, err)
	}

	if *workers > 1 {
		secs = bestOf(func() {
			if err := set.ParallelScanWhereAll(preds, *workers, func(int, []int64, [][]T) bool { return true }); err != nil {
				log.Fatalf("%s: ParallelScanWhereAll: %v", name, err)
			}
		})
		res.ParallelScanAllMBps = experiments.MBps(rawBytes, secs)
	}

	secs = bestOf(func() {
		agg, err := set.AggregateWhereAll(preds, 0)
		if err != nil {
			log.Fatalf("%s: AggregateWhereAll: %v", name, err)
		}
		if int(agg.Count) != matched {
			log.Fatalf("%s: AggregateWhereAll counted %d rows, ScanWhereAll matched %d", name, agg.Count, matched)
		}
	})
	res.AggregateAllMBps = experiments.MBps(rawBytes, secs)
	return res
}

// benchDisjunctive measures one combined-selectivity point of the
// two-branch OR sweep over the set's first two columns. Each branch gets
// a centered window of selectivity ~s/2 over its own column, so on
// decorrelated columns the disjunction selects ~s of the rows. The
// oracle pass is the decode-then-filter plan the expression tree
// replaces: every block at least one branch's zone map admits is decoded
// on both columns, the OR re-applied per row in the caller, matching
// rows and both column values materialized — identical output to Run
// with Or(Range, Range) and Cols {0, 1}.
func benchDisjunctive[T zukowski.Integer](name string, set *zukowski.ColumnSet[T], sortedCols [][]T, s float64) DisjunctiveScanResult {
	res := DisjunctiveScanResult{Cols: 2, Selectivity: s}
	n := set.Len()
	type branch struct {
		col    int
		lo, hi T
	}
	branches := make([]branch, 2)
	for c := 0; c < 2; c++ {
		sorted := sortedCols[c]
		target := int(s / 2 * float64(n))
		if target < 1 {
			target = 1
		}
		loIdx := (n - target) / 2
		branches[c] = branch{c, sorted[loIdx], sorted[loIdx+target-1]}
	}
	expr := zukowski.Or(
		zukowski.Range[T](0, branches[0].lo, branches[0].hi),
		zukowski.Range[T](1, branches[1].lo, branches[1].hi),
	)
	rawBytes := set.Column(0).UncompressedBytes() + set.Column(1).UncompressedBytes()

	// Candidate blocks: a block survives unless every branch's zone map
	// excludes it — the disjunctive mirror of the conjunctive pruning,
	// shared by both plans.
	var candidates []int
	starts := make([]int64, set.NumBlocks()+1)
	for b := 0; b < set.NumBlocks(); b++ {
		keep := false
		for _, br := range branches {
			info, err := set.Column(br.col).BlockInfo(b)
			if err != nil {
				log.Fatalf("%s: BlockInfo(%d): %v", name, b, err)
			}
			if !info.HasZoneMap || (info.Max >= br.lo && info.Min <= br.hi) {
				keep = true
				break
			}
		}
		info, err := set.Column(0).BlockInfo(b)
		if err != nil {
			log.Fatalf("%s: BlockInfo(%d): %v", name, b, err)
		}
		starts[b+1] = starts[b] + int64(info.Count)
		if keep {
			candidates = append(candidates, b)
		}
	}

	// Decode-then-filter oracle.
	bufs := make([][]T, 2)
	rows := make([]int64, 0, n)
	outs := [][]T{make([]T, 0, n), make([]T, 0, n)}
	secs := bestOf(func() {
		rows = rows[:0]
		outs[0], outs[1] = outs[0][:0], outs[1][:0]
		for _, b := range candidates {
			for c := 0; c < 2; c++ {
				var err error
				if bufs[c], err = set.Column(c).ReadBlock(b, bufs[c][:0]); err != nil {
					log.Fatalf("%s: ReadBlock(%d): %v", name, b, err)
				}
			}
			base := starts[b]
			for j := range bufs[0] {
				v0, v1 := bufs[0][j], bufs[1][j]
				if (v0 < branches[0].lo || v0 > branches[0].hi) &&
					(v1 < branches[1].lo || v1 > branches[1].hi) {
					continue
				}
				rows = append(rows, base+int64(j))
				outs[0] = append(outs[0], v0)
				outs[1] = append(outs[1], v1)
			}
		}
	})
	res.OracleMBps = experiments.MBps(rawBytes, secs)
	oracleMatched := len(rows)

	q := zukowski.Query[T]{Expr: expr, Cols: []int{0, 1}}
	matched := 0
	secs = bestOf(func() {
		matched = 0
		if err := set.Run(context.Background(), q, func(_ int, r []int64, _ [][]T) bool {
			matched += len(r)
			return true
		}); err != nil {
			log.Fatalf("%s: Run(Or): %v", name, err)
		}
	})
	res.OrScanMBps = experiments.MBps(rawBytes, secs)
	res.Matched = matched
	res.ActualSelectivity = float64(matched) / float64(n)
	if res.OracleMBps > 0 {
		res.Speedup = res.OrScanMBps / res.OracleMBps
	}
	if matched != oracleMatched {
		log.Fatalf("%s: Run(Or) matched %d rows, decode-then-filter matched %d", name, matched, oracleMatched)
	}
	// One untimed pass proves the two plans emit identical rows and values
	// for both columns, not just equal counts.
	i := 0
	if err := set.Run(context.Background(), q, func(_ int, r []int64, colVals [][]T) bool {
		for j := range r {
			if r[j] != rows[i] {
				log.Fatalf("%s: match %d: Run(Or) row %d != oracle row %d", name, i, r[j], rows[i])
			}
			for c := 0; c < 2; c++ {
				if colVals[c][j] != outs[c][i] {
					log.Fatalf("%s: match %d col %d: Run(Or) %v != oracle %v",
						name, i, c, colVals[c][j], outs[c][i])
				}
			}
			i++
		}
		return true
	}); err != nil {
		log.Fatalf("%s: Run(Or) verify pass: %v", name, err)
	}

	secs = bestOf(func() {
		agg, err := set.RunAggregate(context.Background(), zukowski.Query[T]{Expr: expr}, 0)
		if err != nil {
			log.Fatalf("%s: RunAggregate(Or): %v", name, err)
		}
		if int(agg.Count) != matched {
			log.Fatalf("%s: RunAggregate(Or) counted %d rows, Run matched %d", name, agg.Count, matched)
		}
	})
	res.AggregateMBps = experiments.MBps(rawBytes, secs)
	return res
}

func printText(w io.Writer, rep Report) {
	fmt.Fprintf(w, "codecbench: %s, %d %s values, blocks of %d (%s %s/%s, %s)\n",
		rep.Source, rep.NumValues, rep.ElemType, rep.BlockValues, rep.GoVersion, rep.GOOS, rep.GOARCH, rep.CreatedAt)
	parallel := rep.Workers > 1
	if parallel {
		fmt.Fprintf(w, "parallel scans: %d workers on %d CPUs\n", rep.Workers, rep.NumCPU)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %10s %12s %12s %10s %10s",
		"codec", "ratio", "enc MB/s", "dec MB/s", "get ns", "zm skip")
	if parallel {
		fmt.Fprintf(w, " %12s %8s", "pscan MB/s", "speedup")
	}
	fmt.Fprintln(w)
	filtered := false
	for _, r := range rep.Results {
		if r.Error != "" {
			fmt.Fprintf(w, "%-12s %s\n", r.Codec, r.Error)
			continue
		}
		fmt.Fprintf(w, "%-12s %10.2f %12.0f %12.0f %10.1f %9.0f%%",
			r.Codec, r.Ratio, r.EncodeMBps, r.DecodeMBps, r.GetNanos, r.ZoneMapSkipRate*100)
		if parallel {
			fmt.Fprintf(w, " %12.0f %7.2fx", r.ParallelScanMBps, r.ParallelSpeedup)
		}
		fmt.Fprintln(w)
		filtered = filtered || len(r.FilteredScans) > 0
	}
	if !filtered {
		return
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "filtered scans (selection-vector ScanSelect vs decode-then-filter ScanWhere):")
	fmt.Fprintf(w, "%-12s %8s %8s %12s %12s %12s %8s %14s\n",
		"codec", "sel", "actual", "where MB/s", "select MB/s", "agg MB/s", "speedup", "matched/s")
	for _, r := range rep.Results {
		for _, fs := range r.FilteredScans {
			fmt.Fprintf(w, "%-12s %8.3f %8.3f %12.0f %12.0f %12.0f %7.2fx %14.3g\n",
				r.Codec, fs.Selectivity, fs.ActualSelectivity, fs.ScanWhereMBps,
				fs.ScanSelectMBps, fs.AggregateMBps, fs.SelectSpeedup, fs.MatchedPerSec)
		}
	}
	conjunctive := false
	for _, r := range rep.Results {
		conjunctive = conjunctive || len(r.ConjunctiveScans) > 0
	}
	if !conjunctive {
		return
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "conjunctive scans (%d-column ScanWhereAll vs decode-then-filter oracle):\n", rep.Cols)
	fmt.Fprintf(w, "%-12s %4s %8s %8s %12s %12s %12s %12s %8s\n",
		"codec", "cols", "sel", "actual", "oracle MB/s", "all MB/s", "pall MB/s", "agg MB/s", "speedup")
	for _, r := range rep.Results {
		for _, cj := range r.ConjunctiveScans {
			fmt.Fprintf(w, "%-12s %4d %8.3f %8.3f %12.0f %12.0f %12.0f %12.0f %7.2fx\n",
				r.Codec, cj.Cols, cj.Selectivity, cj.ActualSelectivity, cj.OracleMBps,
				cj.ScanAllMBps, cj.ParallelScanAllMBps, cj.AggregateAllMBps, cj.Speedup)
		}
	}
	disjunctive := false
	for _, r := range rep.Results {
		disjunctive = disjunctive || len(r.DisjunctiveScans) > 0
	}
	if !disjunctive {
		return
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "disjunctive scans (two-branch Or through Run vs decode-then-filter oracle):")
	fmt.Fprintf(w, "%-12s %4s %8s %8s %12s %12s %12s %8s\n",
		"codec", "cols", "sel", "actual", "oracle MB/s", "or MB/s", "agg MB/s", "speedup")
	for _, r := range rep.Results {
		for _, ds := range r.DisjunctiveScans {
			fmt.Fprintf(w, "%-12s %4d %8.3f %8.3f %12.0f %12.0f %12.0f %7.2fx\n",
				r.Codec, ds.Cols, ds.Selectivity, ds.ActualSelectivity, ds.OracleMBps,
				ds.OrScanMBps, ds.AggregateMBps, ds.Speedup)
		}
	}
}

// gate compares the run against a baseline report and errors on any codec
// whose compression ratio or decode bandwidth regressed beyond tol.
func gate(rep Report, baselinePath string, tol float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	// Decode bandwidth is gated after normalizing by each run's memory
	// bandwidth calibration, so the comparison survives heterogeneous or
	// throttled CI runners; compression ratio is deterministic and gated
	// absolutely.
	scale := 1.0
	if base.MemMBps > 0 && rep.MemMBps > 0 {
		scale = base.MemMBps / rep.MemMBps
	}
	byName := map[string]CodecResult{}
	for _, r := range rep.Results {
		byName[r.Codec] = r
	}
	var failures []string
	// A baseline with parallel measurements demands a comparable run: a
	// silently skipped comparison would let a parallel-scan regression
	// merge behind a mismatched -workers flag.
	baseHasParallel := false
	for _, b := range base.Results {
		if b.Error == "" && b.ParallelScanMBps > 0 {
			baseHasParallel = true
			break
		}
	}
	if baseHasParallel && rep.Workers != base.Workers {
		failures = append(failures, fmt.Sprintf(
			"baseline measured parallel scans with -workers %d but this run used -workers %d; rerun with matching workers",
			base.Workers, rep.Workers))
	}
	if baseHasParallel && rep.Workers == base.Workers && rep.NumCPU < rep.Workers {
		fmt.Fprintf(os.Stderr, "gate: warning: %d CPUs cannot express %d workers; parallel-scan bandwidths not compared\n",
			rep.NumCPU, rep.Workers)
	}
	if baseHasParallel && base.NumCPU > 0 && base.NumCPU < base.Workers {
		fmt.Fprintf(os.Stderr, "gate: warning: baseline was measured on %d CPUs with %d workers, understating parallel capacity; regenerate it on a machine with at least %d CPUs to tighten this gate\n",
			base.NumCPU, base.Workers, base.Workers)
	}
	if base.GOOS != "" && (base.GOOS != rep.GOOS || base.GOARCH != rep.GOARCH) {
		fmt.Fprintf(os.Stderr, "gate: warning: baseline is from %s/%s, this run is %s/%s; bandwidth comparisons rely on the memory calibration alone\n",
			base.GOOS, base.GOARCH, rep.GOOS, rep.GOARCH)
	}
	for _, b := range base.Results {
		if b.Error != "" {
			continue
		}
		cur, ok := byName[b.Codec]
		if !ok || cur.Error != "" {
			failures = append(failures, fmt.Sprintf("%s: missing from current run (%s)", b.Codec, cur.Error))
			continue
		}
		if cur.Ratio < b.Ratio*(1-tol) {
			failures = append(failures, fmt.Sprintf("%s: compression ratio %.3f < baseline %.3f -%.0f%%",
				b.Codec, cur.Ratio, b.Ratio, tol*100))
		}
		if norm := cur.DecodeMBps * scale; norm < b.DecodeMBps*(1-tol) {
			failures = append(failures, fmt.Sprintf("%s: decode bandwidth %.0f MB/s (normalized %.0f) < baseline %.0f MB/s -%.0f%%",
				b.Codec, cur.DecodeMBps, norm, b.DecodeMBps, tol*100))
		}
		// Filtered-scan bandwidth is gated like decode bandwidth (memory-
		// normalized), point by point: only selectivities measured in both
		// runs are compared, and a point present in the baseline but
		// missing from the current run fails — otherwise dropping the
		// -selectivity flag would silently disarm the gate.
		for _, bfs := range b.FilteredScans {
			var cfs *FilteredScanResult
			for i := range cur.FilteredScans {
				if cur.FilteredScans[i].Selectivity == bfs.Selectivity {
					cfs = &cur.FilteredScans[i]
					break
				}
			}
			if cfs == nil {
				failures = append(failures, fmt.Sprintf(
					"%s: baseline has a filtered-scan point at selectivity %g, current run does not (rerun with -selectivity)",
					b.Codec, bfs.Selectivity))
				continue
			}
			if norm := cfs.ScanSelectMBps * scale; norm < bfs.ScanSelectMBps*(1-tol) {
				failures = append(failures, fmt.Sprintf(
					"%s@%g: filtered-scan bandwidth %.0f MB/s (normalized %.0f) < baseline %.0f MB/s -%.0f%%",
					b.Codec, bfs.Selectivity, cfs.ScanSelectMBps, norm, bfs.ScanSelectMBps, tol*100))
			}
			if norm := cfs.AggregateMBps * scale; norm < bfs.AggregateMBps*(1-tol) {
				failures = append(failures, fmt.Sprintf(
					"%s@%g: aggregate bandwidth %.0f MB/s (normalized %.0f) < baseline %.0f MB/s -%.0f%%",
					b.Codec, bfs.Selectivity, cfs.AggregateMBps, norm, bfs.AggregateMBps, tol*100))
			}
		}
		// Conjunctive-scan bandwidth is gated like the filtered-scan points:
		// memory-normalized, matched on (cols, selectivity), and a baseline
		// point missing from the current run fails — dropping -cols or
		// -selectivity must not silently disarm the gate.
		for _, bcs := range b.ConjunctiveScans {
			var ccs *ConjunctiveScanResult
			for i := range cur.ConjunctiveScans {
				if cur.ConjunctiveScans[i].Selectivity == bcs.Selectivity && cur.ConjunctiveScans[i].Cols == bcs.Cols {
					ccs = &cur.ConjunctiveScans[i]
					break
				}
			}
			if ccs == nil {
				failures = append(failures, fmt.Sprintf(
					"%s: baseline has a %d-column conjunctive point at selectivity %g, current run does not (rerun with -cols and -selectivity)",
					b.Codec, bcs.Cols, bcs.Selectivity))
				continue
			}
			if norm := ccs.ScanAllMBps * scale; norm < bcs.ScanAllMBps*(1-tol) {
				failures = append(failures, fmt.Sprintf(
					"%s@%dx%g: conjunctive-scan bandwidth %.0f MB/s (normalized %.0f) < baseline %.0f MB/s -%.0f%%",
					b.Codec, bcs.Cols, bcs.Selectivity, ccs.ScanAllMBps, norm, bcs.ScanAllMBps, tol*100))
			}
			if norm := ccs.AggregateAllMBps * scale; norm < bcs.AggregateAllMBps*(1-tol) {
				failures = append(failures, fmt.Sprintf(
					"%s@%dx%g: conjunctive-aggregate bandwidth %.0f MB/s (normalized %.0f) < baseline %.0f MB/s -%.0f%%",
					b.Codec, bcs.Cols, bcs.Selectivity, ccs.AggregateAllMBps, norm, bcs.AggregateAllMBps, tol*100))
			}
			if bcs.ParallelScanAllMBps > 0 && rep.Workers == base.Workers && rep.NumCPU >= rep.Workers {
				if ccs.ParallelScanAllMBps == 0 {
					failures = append(failures, fmt.Sprintf(
						"%s@%dx%g: baseline has a parallel conjunctive measurement, current run does not",
						b.Codec, bcs.Cols, bcs.Selectivity))
				} else if norm := ccs.ParallelScanAllMBps * scale; norm < bcs.ParallelScanAllMBps*(1-tol) {
					failures = append(failures, fmt.Sprintf(
						"%s@%dx%g: parallel conjunctive bandwidth %.0f MB/s (normalized %.0f) < baseline %.0f MB/s -%.0f%%",
						b.Codec, bcs.Cols, bcs.Selectivity, ccs.ParallelScanAllMBps, norm, bcs.ParallelScanAllMBps, tol*100))
				}
			}
		}
		// Disjunctive-scan points gate like the conjunctive ones on
		// memory-normalized bandwidth, and additionally on the speedup over
		// the decode-then-filter oracle: the ratio is within-run, so it
		// needs no normalization and directly guards the claim that OR
		// composition beats decode-then-filter.
		for _, bds := range b.DisjunctiveScans {
			var cds *DisjunctiveScanResult
			for i := range cur.DisjunctiveScans {
				if cur.DisjunctiveScans[i].Selectivity == bds.Selectivity && cur.DisjunctiveScans[i].Cols == bds.Cols {
					cds = &cur.DisjunctiveScans[i]
					break
				}
			}
			if cds == nil {
				failures = append(failures, fmt.Sprintf(
					"%s: baseline has a disjunctive point at selectivity %g, current run does not (rerun with -or, -cols and -selectivity)",
					b.Codec, bds.Selectivity))
				continue
			}
			if norm := cds.OrScanMBps * scale; norm < bds.OrScanMBps*(1-tol) {
				failures = append(failures, fmt.Sprintf(
					"%s@or%g: disjunctive-scan bandwidth %.0f MB/s (normalized %.0f) < baseline %.0f MB/s -%.0f%%",
					b.Codec, bds.Selectivity, cds.OrScanMBps, norm, bds.OrScanMBps, tol*100))
			}
			if norm := cds.AggregateMBps * scale; norm < bds.AggregateMBps*(1-tol) {
				failures = append(failures, fmt.Sprintf(
					"%s@or%g: disjunctive-aggregate bandwidth %.0f MB/s (normalized %.0f) < baseline %.0f MB/s -%.0f%%",
					b.Codec, bds.Selectivity, cds.AggregateMBps, norm, bds.AggregateMBps, tol*100))
			}
			if bds.Speedup > 0 && cds.Speedup < bds.Speedup*(1-tol) {
				failures = append(failures, fmt.Sprintf(
					"%s@or%g: disjunctive speedup %.2fx < baseline %.2fx -%.0f%%",
					b.Codec, bds.Selectivity, cds.Speedup, bds.Speedup, tol*100))
			}
		}
		// Parallel scan bandwidth is gated with the same memory-bandwidth
		// normalization; a worker-count mismatch between the runs already
		// failed the gate above. The calibration cannot see core counts,
		// so the comparison is skipped (below, with a warning) when this
		// runner has fewer CPUs than the measurement wants — otherwise a
		// small machine would read as a regression — and a baseline from a
		// machine smaller than CI undershoots what CI could catch: gate
		// strength comes from regenerating the baseline on CI-class
		// hardware. The speedup ratio itself is never gated.
		if b.ParallelScanMBps > 0 && rep.Workers == base.Workers && rep.NumCPU >= rep.Workers {
			if cur.ParallelScanMBps == 0 {
				failures = append(failures, fmt.Sprintf("%s: baseline has a parallel scan measurement, current run does not", b.Codec))
			} else if norm := cur.ParallelScanMBps * scale; norm < b.ParallelScanMBps*(1-tol) {
				failures = append(failures, fmt.Sprintf("%s: parallel scan bandwidth %.0f MB/s (normalized %.0f) < baseline %.0f MB/s -%.0f%%",
					b.Codec, cur.ParallelScanMBps, norm, b.ParallelScanMBps, tol*100))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf gate failed vs %s:\n  %s", baselinePath, strings.Join(failures, "\n  "))
	}
	return nil
}

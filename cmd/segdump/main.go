// Command segdump inspects a serialized compressed segment (the Figure-3
// layout): header fields, section sizes, per-group exception statistics.
// Useful when debugging storage files.
//
// With no arguments it generates a demo segment and dumps it; pass a file
// path to dump a segment from disk, with -t choosing the element type.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/zukowski"
)

func main() {
	elem := flag.String("t", "int64", "element type: int8|int16|int32|int64|uint8|uint16|uint32|uint64")
	flag.Parse()

	var buf []byte
	if flag.NArg() >= 1 {
		var err error
		buf, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println("(no file given: dumping a generated demo segment)")
		rng := rand.New(rand.NewSource(1))
		vals := make([]int64, 10_000)
		for i := range vals {
			vals[i] = rng.Int63n(1000)
			if rng.Intn(25) == 0 {
				vals[i] = rng.Int63()
			}
		}
		var err error
		buf, err = zukowski.PFOR[int64]{Base: 0, Width: 10}.Encode(nil, vals)
		if err != nil {
			log.Fatal(err)
		}
		*elem = "int64"
	}

	switch *elem {
	case "int8":
		dump[int8](buf)
	case "int16":
		dump[int16](buf)
	case "int32":
		dump[int32](buf)
	case "int64":
		dump[int64](buf)
	case "uint8":
		dump[uint8](buf)
	case "uint16":
		dump[uint16](buf)
	case "uint32":
		dump[uint32](buf)
	case "uint64":
		dump[uint64](buf)
	default:
		log.Fatalf("unknown element type %q", *elem)
	}
}

func dump[T zukowski.Integer](buf []byte) {
	st, err := zukowski.Inspect[T](buf)
	if err != nil {
		log.Fatalf("not a valid segment: %v", err)
	}
	fmt.Printf("scheme:        %s\n", st.Scheme)
	fmt.Printf("bit width:     %d\n", st.BitWidth)
	fmt.Printf("values:        %d (%d groups of %d)\n", st.NumValues, st.Groups, zukowski.GroupSize)
	if st.DictEntries > 0 {
		fmt.Printf("dictionary:    %d entries\n", st.DictEntries)
	}
	fmt.Printf("exceptions:    %d (E' = %.4f)\n", st.Exceptions, st.ExceptionRate)
	fmt.Printf("sizes:         segment %d B, raw %d B, ratio %.2fx\n",
		st.EncodedBytes, st.UncompressedBytes, st.Ratio)
	fmt.Printf("groups w/ exc: %d of %d (max %d exceptions in one group)\n",
		st.GroupsWithExceptions, st.Groups, st.MaxGroupExceptions)
}

// Command segdump inspects serialized compressed storage: either a single
// compressed segment (the Figure-3 layout: header fields, section sizes,
// per-group exception statistics) or a whole column container (ZKC1 or
// ZKC2), for which it prints the format version, the block directory, and
// — on ZKC2 — per-block checksum status and min/max zone maps. Useful when
// debugging storage files.
//
// segdump is also a CI/ops corruption probe: it exits non-zero whenever
// the input fails validation — an unreadable container or segment, or any
// block whose checksum (ZKC2) or decode (ZKC1) fails — so a cron job or
// pipeline step can gate on its exit code alone. Pass -verify to skip the
// per-block table and print only the verification summary.
//
// Pass -repair out.zkc to salvage a damaged container: the readable
// frame prefix is recovered (zukowski.RecoverColumn), the directory is
// rebuilt with fresh checksums and zone maps, and the result is written
// atomically to out.zkc. segdump -repair exits zero whenever recovery
// produced a valid container, even an empty one; inspect the printed
// stats to see how much survived.
//
// Pass a zktable directory (or -fsck) to run the table-level
// consistency walk instead: segdump picks the manifest generation startup
// recovery would serve and verifies every block payload of every
// committed segment column against the manifest's hoisted checksums and
// zone maps, exiting non-zero on any mismatch. -verify on a directory
// prints only the one-line summary. The walk is read-only, so it is safe
// against a live or just-crashed table.
//
// With no arguments it generates a demo segment and dumps it; pass a file
// path to dump a segment or column from disk, with -t choosing the
// element type.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/zktable"
	"repro/zukowski"
)

func main() {
	elem := flag.String("t", "int64", "element type: int8|int16|int32|int64|uint8|uint16|uint32|uint64")
	verifyOnly := flag.Bool("verify", false, "verify integrity only: print a one-line summary instead of the block table, still exiting non-zero on any corrupt block")
	repairOut := flag.String("repair", "", "salvage the readable prefix of a damaged column container into this output path")
	fsckDir := flag.Bool("fsck", false, "treat the argument as a zktable directory and run the full offline consistency walk")
	flag.Parse()

	var buf []byte
	if flag.NArg() >= 1 {
		st, err := os.Stat(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		if *fsckDir || st.IsDir() {
			if err := fsck(flag.Arg(0), *verifyOnly); err != nil {
				fmt.Fprintf(os.Stderr, "segdump: fsck: %v\n", err)
				os.Exit(1)
			}
			return
		}
		buf, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println("(no file given: dumping a generated demo segment)")
		rng := rand.New(rand.NewSource(1))
		vals := make([]int64, 10_000)
		for i := range vals {
			vals[i] = rng.Int63n(1000)
			if rng.Intn(25) == 0 {
				vals[i] = rng.Int63()
			}
		}
		var err error
		buf, err = zukowski.PFOR[int64]{Base: 0, Width: 10}.Encode(nil, vals)
		if err != nil {
			log.Fatal(err)
		}
		*elem = "int64"
	}

	if *repairOut != "" {
		if err := repair(*elem, *repairOut, buf); err != nil {
			fmt.Fprintf(os.Stderr, "segdump: repair: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*elem, *verifyOnly, buf); err != nil {
		fmt.Fprintf(os.Stderr, "segdump: %v\n", err)
		os.Exit(1)
	}
}

// fsck runs the table-level consistency walk and renders the report. A
// non-nil return (unusable directory or any integrity problem) makes the
// process exit non-zero; orphan files — the normal debris of a crash —
// are reported but do not fail the check.
func fsck(dir string, verifyOnly bool) error {
	rep, err := zktable.Fsck(dir)
	if err != nil {
		return err
	}
	if !verifyOnly {
		fmt.Printf("table:         %s\n", rep.Dir)
		fmt.Printf("generation:    %d\n", rep.Generation)
		fmt.Printf("rows:          %d in %d segments\n", rep.Rows, rep.Segments)
		fmt.Printf("columns:       %v\n", rep.Columns)
		fmt.Printf("blocks:        %d payloads verified\n", rep.BlocksVerified)
		for _, o := range rep.Orphans {
			fmt.Printf("orphan:        %s (informational; swept by the next open)\n", o)
		}
		for _, m := range rep.CorruptManifests {
			fmt.Printf("CORRUPT:       %s\n", m)
		}
		for _, p := range rep.Problems {
			fmt.Printf("PROBLEM:       %s\n", p)
		}
	}
	if !rep.OK() {
		return fmt.Errorf("%d problems in generation %d", len(rep.Problems), rep.Generation)
	}
	fmt.Printf("table verified: generation %d, %d rows, %d segments, %d blocks checked, %d orphans\n",
		rep.Generation, rep.Rows, rep.Segments, rep.BlocksVerified, len(rep.Orphans))
	return nil
}

// repair salvages the container in buf into outPath. The recovered bytes
// are staged in a temp file beside outPath and renamed into place, so a
// crash mid-repair never leaves a half-written output.
func repair(elem, outPath string, buf []byte) error {
	switch elem {
	case "int8":
		return repairAs[int8](outPath, buf)
	case "int16":
		return repairAs[int16](outPath, buf)
	case "int32":
		return repairAs[int32](outPath, buf)
	case "int64":
		return repairAs[int64](outPath, buf)
	case "uint8":
		return repairAs[uint8](outPath, buf)
	case "uint16":
		return repairAs[uint16](outPath, buf)
	case "uint32":
		return repairAs[uint32](outPath, buf)
	case "uint64":
		return repairAs[uint64](outPath, buf)
	}
	return fmt.Errorf("unknown element type %q", elem)
}

func repairAs[T zukowski.Integer](outPath string, buf []byte) error {
	stats, err := zukowski.RecoverColumnFile[T](bytes.NewReader(buf), int64(len(buf)), outPath)
	if err != nil {
		return err
	}
	fmt.Printf("recovered %d blocks, %d rows: %d B in, %d B out, %d B dropped\n",
		stats.Blocks, stats.Rows, stats.BytesIn, stats.BytesOut, stats.DroppedBytes)
	return nil
}

// run dumps one segment or container; a non-nil error (unreadable input
// or any corrupt block) makes the process exit non-zero.
func run(elem string, verifyOnly bool, buf []byte) error {
	switch elem {
	case "int8":
		return dump[int8](buf, verifyOnly)
	case "int16":
		return dump[int16](buf, verifyOnly)
	case "int32":
		return dump[int32](buf, verifyOnly)
	case "int64":
		return dump[int64](buf, verifyOnly)
	case "uint8":
		return dump[uint8](buf, verifyOnly)
	case "uint16":
		return dump[uint16](buf, verifyOnly)
	case "uint32":
		return dump[uint32](buf, verifyOnly)
	case "uint64":
		return dump[uint64](buf, verifyOnly)
	}
	return fmt.Errorf("unknown element type %q", elem)
}

// isColumn sniffs the container magic ("ZKC?") without committing to a
// version — dumpColumn reports unreadable containers properly.
func isColumn(buf []byte) bool {
	return len(buf) >= 4 && buf[0] == 'Z' && buf[1] == 'K' && buf[2] == 'C'
}

func dump[T zukowski.Integer](buf []byte, verifyOnly bool) error {
	if isColumn(buf) {
		return dumpColumn[T](buf, verifyOnly)
	}
	return dumpSegment[T](buf, verifyOnly)
}

// dumpColumn prints a column container: format version, totals, and the
// block directory with checksum status and zone maps where the format
// carries them. Every block is verified either way; the first failure is
// returned (after the full table has printed, so the damaged blocks are
// all visible).
func dumpColumn[T zukowski.Integer](buf []byte, verifyOnly bool) error {
	cr, err := zukowski.OpenColumn[T](buf)
	if err != nil {
		return fmt.Errorf("not a valid column container: %w", err)
	}
	if !verifyOnly {
		fmt.Printf("format:        %s (version %d)\n", zukowski.FormatName(cr.FormatVersion()), cr.FormatVersion())
		fmt.Printf("values:        %d in %d blocks\n", cr.Len(), cr.NumBlocks())
		fmt.Printf("sizes:         container %d B, raw %d B, ratio %.2fx\n",
			cr.CompressedBytes(), cr.UncompressedBytes(), cr.Ratio())
		if cr.HasZoneMaps() {
			fmt.Printf("integrity:     per-block CRC32-C + directory checksum (verified on open)\n")
		} else {
			fmt.Printf("integrity:     none stored (%s predates checksums; status below is a decode check)\n",
				zukowski.FormatName(cr.FormatVersion()))
		}
		fmt.Println()
		fmt.Printf("%-6s %10s %9s %8s %-9s %s\n", "block", "offset", "bytes", "values", "checksum", "zone map")
	}
	var firstErr error
	failed := 0
	for b := 0; b < cr.NumBlocks(); b++ {
		info, err := cr.BlockInfo(b)
		if err != nil {
			return err
		}
		status := "ok"
		if err := cr.VerifyBlock(b); err != nil {
			status = "FAIL"
			failed++
			if firstErr == nil {
				firstErr = err
			}
		}
		if verifyOnly {
			continue
		}
		checksum := status
		if info.HasChecksum {
			checksum = fmt.Sprintf("%08x", info.CRC32C)
			if status != "ok" {
				checksum += "!"
			}
		}
		zone := "-"
		if info.HasZoneMap {
			zone = fmt.Sprintf("[%v, %v]", info.Min, info.Max)
		}
		fmt.Printf("%-6d %10d %9d %8d %-9s %s\n", b, info.Offset, info.Length, info.Count, checksum, zone)
	}
	if firstErr != nil {
		return fmt.Errorf("%d of %d blocks corrupt: %w", failed, cr.NumBlocks(), firstErr)
	}
	fmt.Printf("all %d blocks verified\n", cr.NumBlocks())
	return nil
}

func dumpSegment[T zukowski.Integer](buf []byte, verifyOnly bool) error {
	st, err := zukowski.Inspect[T](buf)
	if err != nil {
		return fmt.Errorf("not a valid segment: %w", err)
	}
	if verifyOnly {
		fmt.Printf("segment verified: %s, %d values, %d B\n", st.Scheme, st.NumValues, st.EncodedBytes)
		return nil
	}
	fmt.Printf("scheme:        %s\n", st.Scheme)
	fmt.Printf("bit width:     %d\n", st.BitWidth)
	fmt.Printf("values:        %d (%d groups of %d)\n", st.NumValues, st.Groups, zukowski.GroupSize)
	if st.DictEntries > 0 {
		fmt.Printf("dictionary:    %d entries\n", st.DictEntries)
	}
	fmt.Printf("exceptions:    %d (E' = %.4f)\n", st.Exceptions, st.ExceptionRate)
	fmt.Printf("sizes:         segment %d B, raw %d B, ratio %.2fx\n",
		st.EncodedBytes, st.UncompressedBytes, st.Ratio)
	fmt.Printf("groups w/ exc: %d of %d (max %d exceptions in one group)\n",
		st.GroupsWithExceptions, st.Groups, st.MaxGroupExceptions)
	return nil
}

// Command segdump inspects a serialized compressed segment (the Figure-3
// layout produced by internal/segment): header fields, section sizes,
// per-group exception statistics. Useful when debugging storage files.
//
// With no arguments it generates a demo segment and dumps it; pass a file
// path to dump a segment from disk, with -t choosing the element type.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/segment"
)

func main() {
	elem := flag.String("t", "int64", "element type: int8|int16|int32|int64")
	flag.Parse()

	var buf []byte
	if flag.NArg() >= 1 {
		var err error
		buf, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println("(no file given: dumping a generated demo segment)")
		rng := rand.New(rand.NewSource(1))
		vals := make([]int64, 10_000)
		for i := range vals {
			vals[i] = rng.Int63n(1000)
			if rng.Intn(25) == 0 {
				vals[i] = rng.Int63()
			}
		}
		buf = segment.Marshal(core.CompressPFOR(vals, 0, 10))
		*elem = "int64"
	}

	switch *elem {
	case "int8":
		dump[int8](buf)
	case "int16":
		dump[int16](buf)
	case "int32":
		dump[int32](buf)
	case "int64":
		dump[int64](buf)
	default:
		log.Fatalf("unknown element type %q", *elem)
	}
}

func dump[T core.Integer](buf []byte) {
	if !segment.IsCompressed(buf) {
		vals, err := segment.UnmarshalRaw[T](buf)
		if err != nil {
			log.Fatalf("not a valid segment: %v", err)
		}
		fmt.Printf("raw (uncompressed) segment: %d values, %d bytes\n", len(vals), len(buf))
		return
	}
	blk, err := segment.Unmarshal[T](buf)
	if err != nil {
		log.Fatalf("corrupt segment: %v", err)
	}
	fmt.Printf("scheme:        %v\n", blk.Scheme)
	fmt.Printf("bit width:     %d\n", blk.B)
	fmt.Printf("values:        %d (%d groups of %d)\n", blk.N, blk.NumGroups(), core.GroupSize)
	fmt.Printf("base:          %v   delta base: %v\n", blk.Base, blk.DeltaBase)
	if blk.DictLen > 0 {
		fmt.Printf("dictionary:    %d entries\n", blk.DictLen)
	}
	fmt.Printf("exceptions:    %d (E' = %.4f)\n", blk.ExceptionCount(), blk.ExceptionRate())
	fmt.Printf("sizes:         segment %d B, codes %d B, ratio %.2fx\n",
		len(buf), len(blk.Codes)*4, blk.Ratio())

	// Exception distribution across groups, derived from the entry words.
	var maxExc, groupsWithExc int
	for g := 0; g < blk.NumGroups(); g++ {
		n := groupExcCount(blk, g)
		if n > maxExc {
			maxExc = n
		}
		if n > 0 {
			groupsWithExc++
		}
	}
	fmt.Printf("groups w/ exc: %d of %d (max %d exceptions in one group)\n",
		groupsWithExc, blk.NumGroups(), maxExc)
}

// groupExcCount derives a group's exception count from the entry words.
func groupExcCount[T core.Integer](blk *core.Block[T], g int) int {
	start := int(blk.Entries[g] >> 7)
	end := len(blk.Exc)
	if g+1 < len(blk.Entries) {
		end = int(blk.Entries[g+1] >> 7)
	}
	return end - start
}

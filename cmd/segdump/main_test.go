package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/zktable"
	"repro/zukowski"
)

// buildContainer writes a small PFOR column and returns its bytes.
func buildContainer(t *testing.T) []byte {
	t.Helper()
	vals := make([]int64, 10_000)
	for i := range vals {
		vals[i] = int64(i % 750)
	}
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter[int64](&buf, zukowski.PFOR[int64]{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Write(vals); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunExitContract pins the probe contract main's exit code is built
// on: run returns nil for intact inputs and an error — never a silent
// success — for any corrupt block, in both the table and -verify modes.
func TestRunExitContract(t *testing.T) {
	good := buildContainer(t)
	for _, verifyOnly := range []bool{false, true} {
		if err := run("int64", verifyOnly, good); err != nil {
			t.Fatalf("verify=%v: clean container reported %v", verifyOnly, err)
		}
	}

	// A payload bit flip must surface as an error from every mode.
	bad := bytes.Clone(good)
	bad[len(bad)/3] ^= 0x40
	for _, verifyOnly := range []bool{false, true} {
		if err := run("int64", verifyOnly, bad); err == nil {
			t.Fatalf("verify=%v: corrupt block went unreported (exit code would be 0)", verifyOnly)
		}
	}

	// A truncated container must fail, not dump garbage.
	if err := run("int64", false, good[:len(good)-5]); err == nil {
		t.Fatal("truncated container went unreported")
	}

	// Same contract for a bare segment frame.
	seg, err := zukowski.PFOR[int64]{Base: 0, Width: 10}.Encode(nil, []int64{1, 2, 3, 1 << 40, 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := run("int64", true, seg); err != nil {
		t.Fatalf("clean segment reported %v", err)
	}
	segBad := bytes.Clone(seg)
	segBad[len(segBad)-2] ^= 0x01
	if err := run("int64", false, segBad); err == nil {
		t.Fatal("corrupt segment went unreported")
	}

	if err := run("float64", false, good); err == nil {
		t.Fatal("unknown element type went unreported")
	}
}

// TestFsckExitContract pins the table-directory probe: fsck returns nil
// for an intact table and an error for any committed-data mismatch, in
// both full and -verify modes, so the exit code alone gates a pipeline.
func TestFsckExitContract(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tbl")
	tb, err := zktable.Create[int64](dir, []string{"a", "b"}, 512, zktable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 3000)
	for i := range vals {
		vals[i] = int64(i % 97)
	}
	if _, err := tb.Append([][]int64{vals, vals}); err != nil {
		t.Fatal(err)
	}
	tb.Close()

	for _, verifyOnly := range []bool{false, true} {
		if err := fsck(dir, verifyOnly); err != nil {
			t.Fatalf("verify=%v: clean table reported %v", verifyOnly, err)
		}
	}

	// An orphan temp file is informational, not a failure.
	if err := os.WriteFile(filepath.Join(dir, ".seg-00000002-a.zkc.tmp-9"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fsck(dir, true); err != nil {
		t.Fatalf("orphan temp failed the check: %v", err)
	}

	// A flipped payload byte must fail both modes.
	p := filepath.Join(dir, "seg-00000001-b.zkc")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, verifyOnly := range []bool{false, true} {
		if err := fsck(dir, verifyOnly); err == nil {
			t.Fatalf("verify=%v: corrupt segment column went unreported", verifyOnly)
		}
	}

	// A non-table directory is an error, not a zero exit.
	if err := fsck(t.TempDir(), true); err == nil {
		t.Fatal("non-table directory went unreported")
	}
}

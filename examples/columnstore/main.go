// Columnstore: store an orders-like table as compressed column containers,
// run a scan-select-aggregate query block by block against the compressed
// columns, and compare storage and query cost with uncompressed storage —
// the Table 2 experiment in miniature, on the public API.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/zukowski"
)

func main() {
	const rows = 2_000_000
	rng := rand.New(rand.NewSource(7))

	// An orders-like table: sequential key, clustered date, enum status,
	// decimal amount in cents.
	names := []string{"key", "date", "status", "amount"}
	key := make([]int64, rows)
	date := make([]int64, rows)
	status := make([]int64, rows)
	amount := make([]int64, rows)
	for i := 0; i < rows; i++ {
		key[i] = int64(i) * 4
		date[i] = 8035 + rng.Int63n(2406)
		status[i] = rng.Int63n(3)
		amount[i] = 100 + rng.Int63n(1_000_000)
	}
	data := [][]int64{key, date, status, amount}

	for _, compress := range []bool{false, true} {
		// Build one column container per column. Auto lets the analyzer
		// pick a scheme per column; None stores verbatim.
		var codec zukowski.Codec[int64] = zukowski.None[int64]{}
		if compress {
			codec = zukowski.Auto[int64]{}
		}
		files := make([]*bytes.Buffer, len(names))
		var stored, raw int
		for c := range names {
			files[c] = &bytes.Buffer{}
			cw, err := zukowski.NewColumnWriter(files[c], codec, 0)
			if err != nil {
				log.Fatal(err)
			}
			if err := cw.Write(data[c]); err != nil {
				log.Fatal(err)
			}
			if err := cw.Close(); err != nil {
				log.Fatal(err)
			}
			stored += files[c].Len()
			raw += 8 * rows
		}

		// Query: SELECT status, SUM(amount), COUNT(*) WHERE date >= d
		// GROUP BY status — a vectorized scan over three of the four
		// columns, decoded in lockstep one block at a time.
		cols := make([]*zukowski.ColumnReader[int64], len(names))
		for c := range names {
			var err error
			if cols[c], err = zukowski.OpenColumn[int64](files[c].Bytes()); err != nil {
				log.Fatal(err)
			}
		}
		start := time.Now()
		var sum, count [3]int64
		var dateV, statusV, amountV []int64
		for b := 0; b < cols[1].NumBlocks(); b++ {
			var err error
			if dateV, err = cols[1].ReadBlock(b, dateV[:0]); err != nil {
				log.Fatal(err)
			}
			if statusV, err = cols[2].ReadBlock(b, statusV[:0]); err != nil {
				log.Fatal(err)
			}
			if amountV, err = cols[3].ReadBlock(b, amountV[:0]); err != nil {
				log.Fatal(err)
			}
			for i, d := range dateV {
				if d >= 8035+1200 {
					s := statusV[i]
					sum[s] += amountV[i]
					count[s]++
				}
			}
		}
		elapsed := time.Since(start)

		mode := "uncompressed"
		if compress {
			mode = fmt.Sprintf("compressed %.2fx", float64(raw)/float64(stored))
		}
		fmt.Printf("%-20s stored=%8d KB  query=%v\n", mode, stored/1024, elapsed.Round(time.Millisecond))
		for s := range sum {
			fmt.Printf("  status=%d  sum=%d  count=%d\n", s, sum[s], count[s])
		}
	}
}

// Columnstore: build a compressed DSM table in ColumnBM on a simulated
// 4-disk RAID, run a vectorized scan-select-aggregate query compressed and
// uncompressed, and compare the end-to-end cost — the Table 2 experiment
// in miniature.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/columnbm"
	"repro/internal/engine"
)

func main() {
	const rows = 2_000_000
	rng := rand.New(rand.NewSource(7))

	// An orders-like table: sequential key, clustered date, enum status,
	// decimal amount in cents.
	cols := []columnbm.Column{{Name: "key"}, {Name: "date"}, {Name: "status"}, {Name: "amount"}}
	key := make([]int64, rows)
	date := make([]int64, rows)
	status := make([]int64, rows)
	amount := make([]int64, rows)
	for i := 0; i < rows; i++ {
		key[i] = int64(i) * 4
		date[i] = 8035 + rng.Int63n(2406)
		status[i] = rng.Int63n(3)
		amount[i] = 100 + rng.Int63n(1_000_000)
	}
	data := [][]int64{key, date, status, amount}

	for _, compress := range []bool{false, true} {
		disk := columnbm.NewDisk(80) // low-end RAID
		tbl := columnbm.BuildTable(disk, "orders", columnbm.DSM, cols, data, 0, compress)
		bm := columnbm.NewBufferManager(disk, 1<<30)

		// Query: SELECT status, SUM(amount) WHERE date >= d GROUP BY status.
		disk.ResetStats()
		start := time.Now()
		sc := tbl.NewScanner(bm, []int{1, 2, 3}, columnbm.DefaultVectorSize, columnbm.VectorWise)
		scan := engine.NewScan(sc)
		sel := engine.NewSelect(scan, 3, engine.FilterGE(0, 8035+1200))
		agg := engine.NewHashAgg(sel, []int{1}, []engine.AggSpec{
			{Kind: engine.AggSum, Col: 2}, {Kind: engine.AggCount, Col: 0}}, true)
		result := engine.Materialize(agg, 3)
		cpu := time.Since(start)

		io := disk.ReadTime()
		total := max(cpu, io)
		mode := "uncompressed"
		if compress {
			mode = fmt.Sprintf("compressed %.2fx", tbl.Ratio())
		}
		fmt.Printf("%-20s cpu=%-8v io=%-8v total=%-8v decompress=%v\n",
			mode, cpu.Round(time.Millisecond), io.Round(time.Millisecond),
			total.Round(time.Millisecond), sc.DecompressTime.Round(time.Millisecond))
		for i := range result[0] {
			fmt.Printf("  status=%d  sum=%d  count=%d\n", result[0][i], result[1][i], result[2][i])
		}
	}
}

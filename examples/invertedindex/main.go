// Invertedindex: compress a synthetic inverted-file posting list with
// every registered codec (the Section 5 workload), pick PFOR-DELTA for the
// index, and answer a top-N query from the compressed postings.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"slices"
	"time"

	"repro/zukowski"
)

func main() {
	// A TREC-like posting list: 400k postings over 1M documents with a
	// Zipfian document-frequency skew, sorted by document ID. Sorted IDs
	// mean small deltas — exactly what PFOR-DELTA is built for.
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.3, 4, 1<<20-1)
	postings := make([]uint32, 400_000)
	for i := range postings {
		postings[i] = uint32(zipf.Uint64())
	}
	slices.Sort(postings)
	fmt.Printf("posting list: %d postings, %d KB uncompressed\n",
		len(postings), 4*len(postings)/1024)

	// The registry enumerates every scheme, so this comparison never goes
	// stale as codecs are added.
	for _, name := range zukowski.Codecs() {
		codec, err := zukowski.Lookup[uint32](name)
		if err != nil {
			log.Fatal(err)
		}
		frame, err := codec.Encode(nil, postings)
		if err != nil {
			fmt.Printf("  %-12s %v\n", name, err)
			continue
		}
		fmt.Printf("  %-12s %7d KB  (%.2fx)\n",
			name, len(frame)/1024, 4*float64(len(postings))/float64(len(frame)))
	}

	// Build the index with PFOR-DELTA and verify it round-trips.
	codec, err := zukowski.Lookup[uint32]("pfor-delta")
	if err != nil {
		log.Fatal(err)
	}
	frame, err := codec.Encode(nil, postings)
	if err != nil {
		log.Fatal(err)
	}
	decoded, err := codec.Decode(make([]uint32, 0, len(postings)), frame)
	if err != nil {
		log.Fatal(err)
	}
	if !slices.Equal(decoded, postings) {
		log.Fatal("round-trip mismatch")
	}

	// The retrieval query: top-5 documents by within-document frequency
	// (run length in the sorted posting list), answered from the
	// compressed frame.
	start := time.Now()
	hits, err := codec.Decode(nil, frame)
	if err != nil {
		log.Fatal(err)
	}
	type docFreq struct {
		doc  uint32
		freq int
	}
	var top []docFreq
	for i := 0; i < len(hits); {
		j := i
		for j < len(hits) && hits[j] == hits[i] {
			j++
		}
		top = append(top, docFreq{hits[i], j - i})
		i = j
	}
	slices.SortFunc(top, func(a, b docFreq) int { return b.freq - a.freq })
	fmt.Printf("top-5 documents (%d distinct, %v):\n",
		len(top), time.Since(start).Round(time.Microsecond))
	for _, d := range top[:5] {
		fmt.Printf("  doc %7d  freq %d\n", d.doc, d.freq)
	}
}

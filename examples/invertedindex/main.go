// Invertedindex: build a synthetic TREC-like inverted file, compress the
// postings with PFOR-DELTA, and run the Section 5 retrieval query (top-N
// documents for a term) against the compressed index.
package main

import (
	"fmt"
	"time"

	"repro/internal/invfile"
)

func main() {
	profile := invfile.Profiles[1] // TREC fbis-like
	profile.Postings = 400_000
	c := invfile.Synthesize(profile, 42)
	fmt.Printf("synthesized %s: %d lists, %d postings (%d KB uncompressed d-gaps)\n",
		profile.Name, len(c.Lists), c.TotalPostings(), c.UncompressedBytes()/1024)

	// Compress the postings column with PFOR-DELTA.
	blocks, bytes := invfile.CompressPFORDelta(c, 1<<16)
	fmt.Printf("PFOR-DELTA: %d blocks, %d KB (ratio %.2fx)\n",
		len(blocks), bytes/1024, float64(c.UncompressedBytes())/float64(bytes))

	// Verify the compressed index decodes exactly.
	out := invfile.DecompressPFORDelta(blocks, make([]uint32, c.TotalPostings()))
	fmt.Printf("decoded %d postings\n", len(out))

	// The retrieval query: top documents for the most frequent term —
	// merge join postings with document offsets, ordered aggregation,
	// heap-based top-N.
	docs := invfile.NewDocTable(profile.NumDocs)
	list := &c.Lists[0]
	start := time.Now()
	ids, freqs := invfile.TopNDocs(list, docs, 5)
	fmt.Printf("top-5 documents for term %d (list of %d postings, %v):\n",
		list.Term, len(list.DocIDs), time.Since(start).Round(time.Microsecond))
	for i := range ids {
		fmt.Printf("  doc %6d  freq %d\n", ids[i], freqs[i])
	}
}

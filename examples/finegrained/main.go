// Finegrained: demonstrate random point lookups into compressed segments
// without full decompression — the entry-point machinery of Section 3.1 —
// and compare against the cost of decompressing whole blocks.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	const n = 4 << 20

	// A column with 5% exceptions, so patch lists are non-trivial.
	vals := make([]int64, n)
	for i := range vals {
		if rng.Intn(20) == 0 {
			vals[i] = 1 << 45
		} else {
			vals[i] = rng.Int63n(250)
		}
	}
	blk := core.CompressPFOR(vals, 0, 8)
	fmt.Printf("block: %d values, %.2fx, %.1f%% exceptions\n",
		blk.N, blk.Ratio(), 100*blk.ExceptionRate())

	// Point lookups via Get: walks at most one 128-value patch list.
	var d core.Decoder[int64]
	const lookups = 1_000_000
	idx := make([]int, lookups)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	start := time.Now()
	var sink int64
	for _, x := range idx {
		sink += d.Get(blk, x)
	}
	perGet := time.Since(start) / lookups
	fmt.Printf("fine-grained Get: %v per lookup (sink %d)\n", perGet, sink%2)

	// Sanity: Get agrees with full decompression.
	full := make([]int64, n)
	core.Decompress(blk, full)
	for _, x := range idx[:1000] {
		if d.Get(blk, x) != full[x] {
			panic("Get mismatch")
		}
	}

	// Contrast: decompressing the whole block per lookup would cost this.
	start = time.Now()
	d.Decompress(blk, full)
	fmt.Printf("full block decompression: %v (%d values)\n", time.Since(start), n)
	fmt.Println("=> sparse access should use Get; sequential scans should use Decompress")
}

// Finegrained: demonstrate random point lookups into a compressed column
// without full decompression — the entry-point machinery of Section 3.1
// surfaced through ColumnReader.Get — and compare against the cost of
// decompressing the whole column.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/zukowski"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	const n = 4 << 20

	// A column with 5% exceptions, so patch lists are non-trivial.
	vals := make([]int64, n)
	for i := range vals {
		if rng.Intn(20) == 0 {
			vals[i] = 1 << 45
		} else {
			vals[i] = rng.Int63n(250)
		}
	}

	// Stream the column through a writer with a fixed-parameter PFOR codec.
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter(&buf, zukowski.PFOR[int64]{Base: 0, Width: 8}, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := cw.Write(vals); err != nil {
		log.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		log.Fatal(err)
	}

	cr, err := zukowski.OpenColumn[int64](buf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("column: %d values in %d blocks, %.2fx compression\n",
		cr.Len(), cr.NumBlocks(), cr.Ratio())

	// Point lookups via Get: locate the block in the directory, then walk
	// at most one 128-value patch list.
	const lookups = 1_000_000
	idx := make([]int, lookups)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	start := time.Now()
	var sink int64
	for _, x := range idx {
		v, err := cr.Get(x)
		if err != nil {
			log.Fatal(err)
		}
		sink += v
	}
	perGet := time.Since(start) / lookups
	fmt.Printf("fine-grained Get: %v per lookup (sink %d)\n", perGet, sink%2)

	// Sanity: Get agrees with full decompression.
	full, err := cr.ReadAll(make([]int64, 0, n))
	if err != nil {
		log.Fatal(err)
	}
	for _, x := range idx[:1000] {
		v, _ := cr.Get(x)
		if v != full[x] {
			log.Fatal("Get mismatch")
		}
	}

	// Contrast: decompressing the whole column per lookup would cost this.
	start = time.Now()
	if _, err := cr.ReadAll(full[:0]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full column decompression: %v (%d values)\n", time.Since(start), n)
	fmt.Println("=> sparse access should use Get; sequential scans should use Scan/ReadAll")
}

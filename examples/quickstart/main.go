// Quickstart: compress a column through the public zukowski API — the
// analyzer picks the scheme, Encode produces a self-describing frame,
// Decode round-trips it, and Get reads single values without
// decompressing the block.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/zukowski"
)

func main() {
	// A "date" column: clustered values with a few outliers — the shape
	// PFOR was designed for.
	rng := rand.New(rand.NewSource(1))
	column := make([]int64, 1_000_000)
	for i := range column {
		column[i] = 730_000 + rng.Int63n(2048)
		if rng.Intn(1000) == 0 {
			column[i] = rng.Int63n(1 << 40) // outlier
		}
	}

	// 1. The Auto codec runs the paper's sample analyzer per Encode call;
	//    Analyze previews its decision.
	auto := zukowski.Auto[int64]{}
	a := auto.Analyze(column)
	fmt.Printf("analyzer chose %s, b=%d bits (modeled %.2f bits/value, E'=%.3f)\n",
		a.Scheme, a.Width, a.BitsPerValue, a.ExceptionRate)

	// 2. Compress into a self-describing frame.
	frame, err := auto.Encode(nil, column)
	if err != nil {
		log.Fatal(err)
	}
	st, err := auto.Stats(frame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d values: %d -> %d bytes (ratio %.2fx, %d exceptions)\n",
		st.NumValues, st.UncompressedBytes, st.EncodedBytes, st.Ratio, st.Exceptions)

	// 3. Decompress everything (two branch-free loops: decode + patch).
	out, err := auto.Decode(make([]int64, 0, len(column)), frame)
	if err != nil {
		log.Fatal(err)
	}
	for i := range column {
		if out[i] != column[i] {
			log.Fatal("round-trip mismatch")
		}
	}
	fmt.Println("full decompression round-trips exactly")

	// 4. Fine-grained access: read single values via the entry points,
	//    without touching the rest of the block.
	for _, x := range []int{0, 12_345, 999_999} {
		v, err := auto.Get(frame, x)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Get(%d) = %d\n", x, v)
	}

	// 5. The registry enumerates every scheme; tools need not hard-code
	//    the codec list.
	fmt.Printf("registered codecs: %v\n", zukowski.Codecs())
}

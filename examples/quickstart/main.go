// Quickstart: compress a column with automatically chosen parameters,
// decompress it, and read single values without decompressing the block.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

func main() {
	// A "date" column: clustered values with a few outliers — the shape
	// PFOR was designed for.
	rng := rand.New(rand.NewSource(1))
	column := make([]int64, 1_000_000)
	for i := range column {
		column[i] = 730_000 + rng.Int63n(2048)
		if rng.Intn(1000) == 0 {
			column[i] = rng.Int63n(1 << 40) // outlier
		}
	}

	// 1. Analyze a sample: the analyzer picks the scheme and parameters
	//    minimizing modeled bits per value.
	choice := core.Choose(core.Sample(column, core.DefaultSampleSize))
	fmt.Printf("analyzer chose %v, b=%d bits (modeled %.2f bits/value, E'=%.3f)\n",
		choice.Scheme, choice.B, choice.Bits, choice.ExceptionRate)

	// 2. Compress.
	blk := choice.Compress(column)
	fmt.Printf("compressed %d values: %d -> %d bytes (ratio %.2fx, %d exceptions)\n",
		blk.N, blk.UncompressedBytes(), blk.CompressedBytes(), blk.Ratio(), blk.ExceptionCount())

	// 3. Decompress everything (two branch-free loops: decode + patch).
	out := make([]int64, len(column))
	core.Decompress(blk, out)
	for i := range column {
		if out[i] != column[i] {
			panic("round-trip mismatch")
		}
	}
	fmt.Println("full decompression round-trips exactly")

	// 4. Fine-grained access: read single values via the entry points,
	//    without touching the rest of the block.
	for _, x := range []int{0, 12_345, 999_999} {
		fmt.Printf("Get(%d) = %d\n", x, core.Get(blk, x))
	}
}

package zukowski_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"slices"
	"testing"

	"repro/zukowski"
)

// FuzzMultiColumnScan is the differential fuzzer of the conjunctive scan:
// two columns derived from arbitrary bytes — independently fuzzed codecs,
// several element types, fuzzed block sizes, per-column predicate windows
// picked from each column's own quantiles (including empty, inverted and
// all-covering windows) — must agree exactly with the decode-then-filter
// oracle through ScanWhereAll, AggregateWhereAll and ordered
// ParallelScanWhereAll. The second column is a deterministic scramble of
// the first, so the two bitmaps genuinely disagree and the refine path
// (zero-group skips included) is exercised, not just self-intersection.
func FuzzMultiColumnScan(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0), uint8(0), uint8(0), uint8(255), uint8(30), uint8(220), uint8(3))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(1), uint8(2), uint8(1), uint8(10), uint8(200), uint8(0), uint8(255), uint8(1))
	f.Add(bytes.Repeat([]byte{7}, 64), uint8(2), uint8(3), uint8(2), uint8(128), uint8(64), uint8(0), uint8(255), uint8(0)) // inverted window
	f.Add(binary.LittleEndian.AppendUint64(nil, 1<<40), uint8(3), uint8(1), uint8(3), uint8(0), uint8(255), uint8(100), uint8(130), uint8(7))

	names := zukowski.Codecs()
	f.Fuzz(func(t *testing.T, data []byte, codecA, codecB, typeSel, loA, hiA, loB, hiB, blockSel uint8) {
		nameA := names[int(codecA)%len(names)]
		nameB := names[int(codecB)%len(names)]
		switch typeSel % 4 {
		case 0:
			fuzzMultiColumnScan[int64](t, nameA, nameB, data, loA, hiA, loB, hiB, blockSel)
		case 1:
			fuzzMultiColumnScan[uint8](t, nameA, nameB, data, loA, hiA, loB, hiB, blockSel)
		case 2:
			fuzzMultiColumnScan[int16](t, nameA, nameB, data, loA, hiA, loB, hiB, blockSel)
		case 3:
			fuzzMultiColumnScan[uint32](t, nameA, nameB, data, loA, hiA, loB, hiB, blockSel)
		}
	})
}

func fuzzMultiColumnScan[T zukowski.Integer](t *testing.T, nameA, nameB string, data []byte, loA, hiA, loB, hiB, blockSel uint8) {
	var valsA []T
	for chunk := data; len(chunk) > 0; {
		var tail [8]byte
		n := copy(tail[:], chunk)
		valsA = append(valsA, T(binary.LittleEndian.Uint64(tail[:])))
		chunk = chunk[n:]
	}
	// Column B: a value-scrambled, order-scrambled sibling of A with the
	// same length, so conjunctions select genuinely different row sets per
	// column.
	valsB := make([]T, len(valsA))
	for i := range valsB {
		j := (i*7 + 3) % len(valsA)
		valsB[i] = valsA[j]*3 + T(i%5)
	}

	blockValues := 64 + int(blockSel)*97
	build := func(name string, vals []T) *zukowski.ColumnReader[T] {
		codec, err := zukowski.Lookup[T](name)
		if err != nil {
			t.Skip()
		}
		var buf bytes.Buffer
		cw, err := zukowski.NewColumnWriter[T](&buf, codec, blockValues)
		if err != nil {
			t.Fatalf("NewColumnWriter: %v", err)
		}
		// Codecs with a bounded input domain reject some fuzzed datasets;
		// that is their contract, not a conjunctive-scan bug.
		if err := cw.Write(vals); err != nil {
			if errors.Is(err, zukowski.ErrWidthOutOfRange) || errors.Is(err, zukowski.ErrValueOutOfRange) {
				t.Skip()
			}
			t.Fatalf("Write: %v", err)
		}
		if err := cw.Close(); err != nil {
			if errors.Is(err, zukowski.ErrWidthOutOfRange) || errors.Is(err, zukowski.ErrValueOutOfRange) {
				t.Skip()
			}
			t.Fatalf("Close: %v", err)
		}
		cr, err := zukowski.OpenColumn[T](buf.Bytes())
		if err != nil {
			t.Fatalf("OpenColumn: %v", err)
		}
		return cr
	}
	colA := build(nameA, valsA)
	colB := build(nameB, valsB)
	cs, err := zukowski.NewColumnSet(colA, colB)
	if err != nil {
		t.Fatalf("NewColumnSet over same-geometry columns: %v", err)
	}

	window := func(vals []T, loSel, hiSel uint8) (lo, hi T) {
		if len(vals) == 0 {
			return lo, hi
		}
		sorted := slices.Clone(vals)
		slices.Sort(sorted)
		return sorted[int(loSel)*len(sorted)/256], sorted[int(hiSel)*len(sorted)/256]
	}
	pA0, pA1 := window(valsA, loA, hiA)
	pB0, pB1 := window(valsB, loB, hiB)
	preds := []zukowski.Pred[T]{{Col: 0, Lo: pA0, Hi: pA1}, {Col: 1, Lo: pB0, Hi: pB1}}

	var wantRows []int64
	var wantA, wantB []T
	for i := range valsA {
		if valsA[i] >= pA0 && valsA[i] <= pA1 && valsB[i] >= pB0 && valsB[i] <= pB1 {
			wantRows = append(wantRows, int64(i))
			wantA = append(wantA, valsA[i])
			wantB = append(wantB, valsB[i])
		}
	}

	var gotRows []int64
	var gotA, gotB []T
	if err := cs.ScanWhereAll(preds, func(r []int64, cols [][]T) bool {
		gotRows = append(gotRows, r...)
		gotA = append(gotA, cols[0]...)
		gotB = append(gotB, cols[1]...)
		return true
	}); err != nil {
		t.Fatalf("%s+%s: ScanWhereAll: %v", nameA, nameB, err)
	}
	if !slices.Equal(gotRows, wantRows) || !slices.Equal(gotA, wantA) || !slices.Equal(gotB, wantB) {
		t.Fatalf("%s+%s [%v,%v]∧[%v,%v]: ScanWhereAll disagrees with oracle: got %d matches, want %d",
			nameA, nameB, pA0, pA1, pB0, pB1, len(gotRows), len(wantRows))
	}

	agg, err := cs.AggregateWhereAll(preds, 1)
	if err != nil {
		t.Fatalf("%s+%s: AggregateWhereAll: %v", nameA, nameB, err)
	}
	var want zukowski.Aggregate[T]
	for _, v := range wantB {
		if want.Count == 0 {
			want.Min, want.Max = v, v
		} else {
			want.Min, want.Max = min(want.Min, v), max(want.Max, v)
		}
		want.Count++
		want.Sum += int64(v)
	}
	if agg != want {
		t.Fatalf("%s+%s: AggregateWhereAll = %+v, want %+v", nameA, nameB, agg, want)
	}

	gotRows, gotA, gotB = nil, nil, nil
	if err := cs.ParallelScanWhereAll(preds, 2, func(_ int, r []int64, cols [][]T) bool {
		gotRows = append(gotRows, r...)
		gotA = append(gotA, cols[0]...)
		gotB = append(gotB, cols[1]...)
		return true
	}, zukowski.InOrder()); err != nil {
		t.Fatalf("%s+%s: ParallelScanWhereAll: %v", nameA, nameB, err)
	}
	if !slices.Equal(gotRows, wantRows) || !slices.Equal(gotA, wantA) || !slices.Equal(gotB, wantB) {
		t.Fatalf("%s+%s: ordered ParallelScanWhereAll disagrees with oracle", nameA, nameB)
	}
}

package zukowski_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"repro/zukowski"
)

// This file is the bitpack panic audit: internal/bitpack's kernels panic
// on misuse (width out of range, undersized buffers), and the decompression
// kernels trust header invariants the segment parser enforces. These tests
// craft frames that attack each trusted invariant — with checksums fixed up
// so validation cannot reject them for the wrong reason — and prove that no
// public zukowski entry point lets a kernel fault escape as a panic:
// everything surfaces as ErrCorruptSegment or ErrCorruptColumn.

// segFNV mirrors internal/segment's payload checksum (FNV-1a) so crafted
// frames pass the hash and exercise the deeper validation and recover
// paths.
func segFNV(data []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range data {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// fixSegmentChecksum recomputes the FNV over a mutated segment frame.
func fixSegmentChecksum(frame []byte) {
	binary.LittleEndian.PutUint32(frame[40:], segFNV(frame[44:]))
}

// mustNotPanic asserts f returns a typed corruption error (or, for probes
// where damage may decode to garbage, at worst no error) without panicking.
func mustNotPanic(t *testing.T, name string, f func() error) error {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: panic escaped the public API: %v", name, r)
		}
	}()
	return f()
}

func wantCorrupt(t *testing.T, name string, err error) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: crafted frame accepted", name)
	}
	if !errors.Is(err, zukowski.ErrCorruptSegment) && !errors.Is(err, zukowski.ErrCorruptColumn) {
		t.Fatalf("%s: error %v is neither ErrCorruptSegment nor ErrCorruptColumn", name, err)
	}
}

// pforFrame builds a valid PFOR frame with an exception in the first slot,
// the raw material the crafted mutations start from.
func pforFrame(t *testing.T) []byte {
	t.Helper()
	vals := make([]int64, 300)
	for i := range vals {
		vals[i] = int64(i % 100)
	}
	vals[0] = 1 << 40  // exception at position 0
	vals[10] = 1 << 41 // and one mid-group
	frame, err := zukowski.PFOR[int64]{Base: 0, Width: 8}.Encode(nil, vals)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// decodeProbes drives every frame-consuming public entry point.
func decodeProbes(name string) []struct {
	probe string
	run   func(frame []byte) error
} {
	codec := zukowski.PFOR[int64]{}
	return []struct {
		probe string
		run   func(frame []byte) error
	}{
		{name + "/Decode", func(frame []byte) error { _, err := codec.Decode(nil, frame); return err }},
		{name + "/Get", func(frame []byte) error { _, err := codec.Get(frame, 5); return err }},
		{name + "/Stats", func(frame []byte) error { _, err := codec.Stats(frame); return err }},
	}
}

// TestCraftedSegmentFrames mutates each trusted header invariant in turn.
func TestCraftedSegmentFrames(t *testing.T) {
	base := pforFrame(t)

	mutations := []struct {
		name   string
		mutate func(frame []byte)
	}{
		{"width-zero", func(f []byte) { f[2] = 0 }},
		{"width-33", func(f []byte) { f[2] = 33 }},
		{"width-wider-than-elem", func(f []byte) { f[3] = 1 }}, // elem says int8, width stays 8... then N*elem shrinks sections
		{"scheme-unknown", func(f []byte) { f[1] = 9 }},
		{"count-negative", func(f []byte) { binary.LittleEndian.PutUint32(f[4:], 1<<31) }},
		{"count-over-max", func(f []byte) { binary.LittleEndian.PutUint32(f[4:], 1<<26) }},
		{"exc-count-over-n", func(f []byte) { binary.LittleEndian.PutUint32(f[28:], 301) }},
		{"code-words-lie", func(f []byte) { binary.LittleEndian.PutUint32(f[32:], 3) }},
		{"dict-on-pfor", func(f []byte) { binary.LittleEndian.PutUint32(f[24:], 4) }},
		{"entry-exc-index-backwards", func(f []byte) {
			// Entry 1's exception index below entry 0's.
			binary.LittleEndian.PutUint32(f[44:], 1<<7)
			binary.LittleEndian.PutUint32(f[48:], 0)
		}},
		{"entry-exc-index-over-count", func(f []byte) { binary.LittleEndian.PutUint32(f[48:], 200<<7) }},
		{"patch-start-past-tail-group", func(f []byte) {
			// Last group holds 300-256=44 values; a patch start of 100 in a
			// short group points outside it.
			binary.LittleEndian.PutUint32(f[44+8:], 100|2<<7)
		}},
	}
	for _, m := range mutations {
		frame := bytes.Clone(base)
		m.mutate(frame)
		fixSegmentChecksum(frame)
		for _, p := range decodeProbes(m.name) {
			wantCorrupt(t, p.probe, mustNotPanic(t, p.probe, func() error { return p.run(frame) }))
		}
	}

	// Unfixed checksum: plain damage must be caught by the hash.
	frame := bytes.Clone(base)
	frame[50] ^= 0xFF
	for _, p := range decodeProbes("bitflip-no-checksum-fix") {
		wantCorrupt(t, p.probe, mustNotPanic(t, p.probe, func() error { return p.run(frame) }))
	}

	// Truncations at every length: typed error, never a panic.
	for cut := 0; cut < len(base); cut += 7 {
		for _, p := range decodeProbes("truncation") {
			if err := mustNotPanic(t, p.probe, func() error { return p.run(base[:cut]) }); err == nil {
				t.Fatalf("%s: %d-byte truncation accepted", p.probe, cut)
			}
		}
	}
}

// TestCraftedPatchListEscape corrupts the gap codes the patch walk trusts:
// the linked exception list then strides far past the block, and the
// recover backstop must convert the kernel fault into ErrCorruptSegment on
// every decode and filtered-scan path.
func TestCraftedPatchListEscape(t *testing.T) {
	// A one-group block of 100 values with exceptions at 0 and 10: the code
	// slot of the first exception stores the gap to the second.
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i % 100)
	}
	vals[0] = 1 << 40
	vals[10] = 1 << 41
	frame, err := zukowski.PFOR[int64]{Base: 0, Width: 8}.Encode(nil, vals)
	if err != nil {
		t.Fatal(err)
	}
	// With B=8 the first code is the first byte of the code section
	// (header 44 + one entry word = offset 48); inflating the gap to 255
	// makes the patch walk stride to position 256 — far past the 100-value
	// block.
	frame[48] = 0xFF
	fixSegmentChecksum(frame)

	codec := zukowski.PFOR[int64]{}
	err = mustNotPanic(t, "Decode", func() error { _, err := codec.Decode(nil, frame); return err })
	wantCorrupt(t, "Decode", err)
	err = mustNotPanic(t, "Get", func() error { _, err := codec.Get(frame, 0); return err })
	// Get may resolve position 0 without walking past it; any error must be
	// typed, but success is acceptable for positions before the damage.
	if err != nil {
		wantCorrupt(t, "Get", err)
	}

	// The same frame inside a ZKC2 container: ScanSelect and AggregateWhere
	// must surface the fault as a typed error too. The container checksums
	// are fixed up so the CRC cannot mask the deeper corruption.
	data := containerWithFrame(t, frame, 100)
	cr, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	err = mustNotPanic(t, "ScanSelect", func() error {
		return cr.ScanSelect(0, 1<<50, func([]int64, []int64) bool { return true })
	})
	wantCorrupt(t, "ScanSelect", err)
	err = mustNotPanic(t, "AggregateWhere", func() error {
		_, err := cr.AggregateWhere(0, 1<<50)
		return err
	})
	wantCorrupt(t, "AggregateWhere", err)
	err = mustNotPanic(t, "ReadAll", func() error {
		_, err := cr.ReadAll(nil)
		return err
	})
	wantCorrupt(t, "ReadAll", err)
	err = mustNotPanic(t, "ParallelScanSelect", func() error {
		return cr.ParallelScanSelect(0, 1<<50, 2, func(int, []int64, []int64) bool { return true })
	})
	wantCorrupt(t, "ParallelScanSelect", err)
}

// containerWithFrame hand-assembles a one-block ZKC2 container around an
// arbitrary frame, with both the block CRC and the directory CRC valid —
// the shape a deliberate attacker (or deep bit rot plus a recomputed
// checksum) would present.
func containerWithFrame(t *testing.T, frame []byte, count int) []byte {
	t.Helper()
	var buf bytes.Buffer
	hdr := make([]byte, 16)
	copy(hdr, "ZKC2")
	hdr[4] = 8 // elem size
	binary.LittleEndian.PutUint32(hdr[8:], uint32(count))
	buf.Write(hdr)
	buf.Write(frame)

	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	dir := make([]byte, 40)
	binary.LittleEndian.PutUint64(dir[0:], 16) // offset
	binary.LittleEndian.PutUint32(dir[8:], uint32(len(frame)))
	binary.LittleEndian.PutUint32(dir[12:], uint32(count))
	binary.LittleEndian.PutUint32(dir[16:], crc32.Checksum(frame, castagnoli))
	// zone map spanning everything so nothing is pruned
	zmin, zmax := int64(-1)<<62, int64(1)<<62
	binary.LittleEndian.PutUint64(dir[24:], uint64(zmin))
	binary.LittleEndian.PutUint64(dir[32:], uint64(zmax))
	buf.Write(dir)

	tail := make([]byte, 24)
	binary.LittleEndian.PutUint64(tail[0:], uint64(count))
	binary.LittleEndian.PutUint32(tail[8:], 1)
	binary.LittleEndian.PutUint32(tail[12:], crc32.Checksum(dir, castagnoli))
	copy(tail[20:], "ZKE2")
	buf.Write(tail)
	return buf.Bytes()
}

// TestCraftedCountMismatch puts a frame holding fewer values than the
// directory claims into a checksum-valid container: the filtered scans
// must refuse with ErrCorruptColumn rather than emit wrong row numbers.
func TestCraftedCountMismatch(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	frame, err := zukowski.PFOR[int64]{Base: 0, Width: 8}.Encode(nil, vals)
	if err != nil {
		t.Fatal(err)
	}
	data := containerWithFrame(t, frame, 150) // directory lies: 150 values
	cr, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	err = mustNotPanic(t, "ScanSelect", func() error {
		return cr.ScanSelect(0, 1<<40, func([]int64, []int64) bool { return true })
	})
	if !errors.Is(err, zukowski.ErrCorruptColumn) {
		t.Fatalf("ScanSelect with lying directory: %v, want ErrCorruptColumn", err)
	}
}

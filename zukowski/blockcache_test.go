package zukowski_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/zukowski"
)

// --- BlockLRU unit tests ------------------------------------------------

// sameShardCols finds n column ids whose (col, 0) keys hash to one
// shard, by probing a cache whose shard budget fits a single entry:
// a colliding insert evicts instead of growing the entry count.
func sameShardCols(t *testing.T, n int, frame []byte) []uint64 {
	t.Helper()
	perEntry := int64(len(frame)) + 112
	cols := []uint64{1}
	for col := uint64(2); col < 1<<16 && len(cols) < n; col++ {
		probe := zukowski.NewBlockLRU(16 * (perEntry + 10))
		probe.Put(cols[0], 0, frame)
		probe.Put(col, 0, frame)
		if probe.Stats().Evictions == 1 {
			cols = append(cols, col)
		}
	}
	if len(cols) < n {
		t.Fatalf("found only %d/%d colliding columns", len(cols), n)
	}
	return cols
}

// TestBlockLRUEviction: under byte pressure the cache evicts in LRU
// order — a Get-promoted entry survives while the untouched one goes —
// and the byte/entry accounting stays exact through the churn.
func TestBlockLRUEviction(t *testing.T) {
	frame := make([]byte, 1000)
	perEntry := int64(len(frame)) + 112
	cols := sameShardCols(t, 3, frame)
	a, b1, b2 := cols[0], cols[1], cols[2]

	// Shard budget fits two entries.
	c := zukowski.NewBlockLRU(16 * (2*perEntry + 50))
	c.Put(a, 0, frame)
	c.Put(b1, 0, frame)
	if c.Get(a, 0) == nil { // promote a to MRU
		t.Fatal("entry a missing before eviction")
	}
	c.Put(b2, 0, frame) // must evict b1, the LRU
	if c.Get(a, 0) == nil {
		t.Fatal("promoted entry was evicted instead of the LRU")
	}
	if c.Get(b1, 0) != nil {
		t.Fatal("LRU entry survived eviction")
	}
	if c.Get(b2, 0) == nil {
		t.Fatal("newest entry missing")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 2*perEntry {
		t.Fatalf("after eviction: %d entries / %d bytes, want 2 / %d", st.Entries, st.Bytes, 2*perEntry)
	}
	if st.Evictions != 1 || st.Puts != 3 {
		t.Fatalf("Evictions/Puts = %d/%d, want 1/3", st.Evictions, st.Puts)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// TestBlockLRUOversizedAndZero: a frame larger than a shard's budget is
// declined outright, and a zero-budget cache stores nothing.
func TestBlockLRUOversizedAndZero(t *testing.T) {
	c := zukowski.NewBlockLRU(16 * 1024)
	big := make([]byte, 2048) // 2048+112 > 1024 per shard
	c.Put(1, 0, big)
	if c.Get(1, 0) != nil {
		t.Fatal("oversized frame was cached")
	}
	if st := c.Stats(); st.Puts != 0 || st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("oversized decline leaked accounting: %+v", st)
	}

	small := make([]byte, 100)
	for _, budget := range []int64{0, -5} {
		z := zukowski.NewBlockLRU(budget)
		z.Put(1, 0, small)
		if z.Get(1, 0) != nil || z.Len() != 0 {
			t.Fatalf("budget %d cache stored a frame", budget)
		}
	}
}

// TestBlockLRUStats: hits, misses, duplicate Puts and HitRate all track.
func TestBlockLRUStats(t *testing.T) {
	c := zukowski.NewBlockLRU(1 << 20)
	frame := []byte{1, 2, 3}
	if c.Get(7, 0) != nil {
		t.Fatal("hit on empty cache")
	}
	c.Put(7, 0, frame)
	c.Put(7, 0, []byte{9, 9, 9}) // duplicate: resident entry kept
	if got := c.Get(7, 0); !bytes.Equal(got, frame) {
		t.Fatalf("duplicate Put replaced resident entry: %v", got)
	}
	c.Get(7, 1) // miss
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if want := 1.0 / 3.0; st.HitRate() != want {
		t.Fatalf("HitRate = %v, want %v", st.HitRate(), want)
	}
	if (zukowski.CacheStats{}).HitRate() != 0 {
		t.Fatal("HitRate on zero stats not 0")
	}
	if c.Capacity() != 1<<20 {
		t.Fatalf("Capacity = %d", c.Capacity())
	}
}

// TestBlockLRUGetZeroAlloc: a cache hit allocates nothing.
func TestBlockLRUGetZeroAlloc(t *testing.T) {
	c := zukowski.NewBlockLRU(1 << 20)
	c.Put(3, 5, make([]byte, 512))
	allocs := testing.AllocsPerRun(200, func() {
		if c.Get(3, 5) == nil {
			t.Fatal("lost entry")
		}
	})
	if allocs != 0 {
		t.Fatalf("Get allocated %v times per hit", allocs)
	}
}

// TestConcurrentBlockLRUHammer: many goroutines Get/Put overlapping keys
// against a tiny budget; run under -race this shakes out locking bugs,
// and the accounting must still balance afterwards.
func TestConcurrentBlockLRUHammer(t *testing.T) {
	c := zukowski.NewBlockLRU(16 * 4 * (256 + 112)) // ~4 entries per shard
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			frame := make([]byte, 256)
			for i := 0; i < 5000; i++ {
				col := uint64(rng.Intn(4))
				blk := rng.Intn(64)
				if buf := c.Get(col, blk); buf != nil {
					_ = buf[0] // cached bytes stay readable
				} else {
					c.Put(col, blk, frame)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes < 0 || st.Entries < 0 {
		t.Fatalf("accounting went negative: %+v", st)
	}
	if st.Entries != int64(c.Len()) {
		t.Fatalf("Entries %d != Len %d", st.Entries, c.Len())
	}
	if st.Puts-st.Evictions != st.Entries {
		t.Fatalf("puts %d - evictions %d != resident %d", st.Puts, st.Evictions, st.Entries)
	}
}

// --- reader integration -------------------------------------------------

// countingReaderAt counts ReadAt calls and bytes, to prove cache hits
// never touch the source.
type countingReaderAt struct {
	r     io.ReaderAt
	reads atomic.Int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	c.reads.Add(1)
	return c.r.ReadAt(p, off)
}

// openCached opens data through a counting ReaderAt with cache c
// attached, returning the reader and the counter.
func openCached[T zukowski.Integer](t *testing.T, data []byte, c zukowski.BlockCache) (*zukowski.ColumnReader[T], *countingReaderAt) {
	t.Helper()
	src := &countingReaderAt{r: bytes.NewReader(data)}
	cr, err := zukowski.OpenColumnReaderAt[T](src, int64(len(data)), zukowski.WithBlockCache(c))
	if err != nil {
		t.Fatal(err)
	}
	return cr, src
}

// TestCacheScanEquivalence: scans through a cache — including a tiny
// cache that evicts mid-scan — return exactly the bytes an uncached
// reader returns, for full scans, Get, ScanWhere and repeated passes.
func TestCacheScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	src := genValues[int64](rng, 20_000)
	data := buildColumnV2[int64](t, nil, 512, src)

	for _, budget := range []int64{1 << 30, 3 * (4096 + 112) * 16, 0} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			cache := zukowski.NewBlockLRU(budget)
			cr, _ := openCached[int64](t, data, cache)
			for pass := 0; pass < 3; pass++ {
				var got []int64
				if err := cr.Scan(func(vals []int64) bool {
					got = append(got, vals...)
					return true
				}); err != nil {
					t.Fatal(err)
				}
				if len(got) != len(src) {
					t.Fatalf("pass %d: scanned %d values", pass, len(got))
				}
				for i := range src {
					if got[i] != src[i] {
						t.Fatalf("pass %d: value %d: got %d want %d", pass, i, got[i], src[i])
					}
				}
			}
			for k := 0; k < 300; k++ {
				i := rng.Intn(len(src))
				v, err := cr.Get(i)
				if err != nil {
					t.Fatal(err)
				}
				if v != src[i] {
					t.Fatalf("Get(%d) = %d, want %d", i, v, src[i])
				}
			}
		})
	}
}

// TestCacheHitsSkipSource: with a roomy cache, a second full pass over a
// file-backed column performs zero reads against the underlying
// ReaderAt — the whole working set is served from the cache.
func TestCacheHitsSkipSource(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	src := genValues[uint32](rng, 10_000)
	data := buildColumnV2[uint32](t, nil, 512, src)

	cache := zukowski.NewBlockLRU(1 << 30)
	cr, counter := openCached[uint32](t, data, cache)
	if err := cr.Scan(func([]uint32) bool { return true }); err != nil {
		t.Fatal(err)
	}
	warm := counter.reads.Load()
	if warm == 0 {
		t.Fatal("first pass read nothing")
	}
	if err := cr.Scan(func([]uint32) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if got := counter.reads.Load(); got != warm {
		t.Fatalf("warm pass issued %d extra reads", got-warm)
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Puts != int64(cr.NumBlocks()) {
		t.Fatalf("cache stats after warm pass: %+v (blocks %d)", st, cr.NumBlocks())
	}

	// FrameBytes hits the same cache; out-of-range is typed.
	if _, err := cr.FrameBytes(0); err != nil {
		t.Fatal(err)
	}
	if got := counter.reads.Load(); got != warm {
		t.Fatalf("FrameBytes on warm block read from source")
	}
	for _, b := range []int{-1, cr.NumBlocks()} {
		if _, err := cr.FrameBytes(b); !errors.Is(err, zukowski.ErrIndexOutOfRange) {
			t.Fatalf("FrameBytes(%d) err = %v, want ErrIndexOutOfRange", b, err)
		}
	}
}

// TestConcurrentCacheSingleflight: 100 goroutines racing to materialize
// the same cold blocks trigger exactly one source read per block — the
// fill is singleflighted under the block slot's mutex.
func TestConcurrentCacheSingleflight(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	src := genValues[int64](rng, 4*512)
	data := buildColumnV2[int64](t, nil, 512, src)

	cache := zukowski.NewBlockLRU(1 << 30)
	cr, counter := openCached[int64](t, data, cache)
	baseline := counter.reads.Load() // open-time directory reads

	const goroutines = 100
	var start, wg sync.WaitGroup
	start.Add(1)
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			for b := 0; b < cr.NumBlocks(); b++ {
				if _, err := cr.FrameBytes(b); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	start.Done()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := counter.reads.Load() - baseline; got != int64(cr.NumBlocks()) {
		t.Fatalf("%d goroutines x %d blocks issued %d source reads, want %d",
			goroutines, cr.NumBlocks(), got, cr.NumBlocks())
	}
	st := cache.Stats()
	if st.Puts != int64(cr.NumBlocks()) {
		t.Fatalf("cache filled %d times, want %d", st.Puts, cr.NumBlocks())
	}
}

// TestConcurrentCacheHammer: concurrent scans, point reads and
// FrameBytes over one shared tiny cache across two readers; run under
// -race. Values must stay correct while eviction churns underneath.
func TestConcurrentCacheHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	src := genValues[int64](rng, 12_000)
	data := buildColumnV2[int64](t, nil, 512, src)

	cache := zukowski.NewBlockLRU(16 * 2 * (4096 + 112)) // ~2 frames per shard
	crA, _ := openCached[int64](t, data, cache)
	crB, _ := openCached[int64](t, data, cache)
	readers := []*zukowski.ColumnReader[int64]{crA, crB}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			cr := readers[seed%2]
			for i := 0; i < 30; i++ {
				switch rng.Intn(3) {
				case 0:
					n := 0
					if err := cr.Scan(func(vals []int64) bool { n += len(vals); return true }); err != nil {
						errs <- err
						return
					}
					if n != len(src) {
						errs <- fmt.Errorf("scan saw %d values", n)
						return
					}
				case 1:
					idx := rng.Intn(len(src))
					v, err := cr.Get(idx)
					if err != nil {
						errs <- err
						return
					}
					if v != src[idx] {
						errs <- fmt.Errorf("Get(%d) = %d want %d", idx, v, src[idx])
						return
					}
				case 2:
					if _, err := cr.FrameBytes(rng.Intn(cr.NumBlocks())); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Puts-st.Evictions != st.Entries {
		t.Fatalf("accounting drifted: %+v", st)
	}
}

// TestCacheHitPathZeroAllocs: once the working set is cached, a full
// file-backed scan allocates nothing per pass — the cache restores the
// in-memory reader's zero-alloc steady state.
func TestCacheHitPathZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	src := genValues[int64](rng, 8_192)
	data := buildColumnV2[int64](t, nil, 1024, src)

	cache := zukowski.NewBlockLRU(1 << 30)
	cr, _ := openCached[int64](t, data, cache)
	scan := func() {
		if err := cr.Scan(func([]int64) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	scan() // warm the cache and the decode-state pool
	scan()
	if allocs := testing.AllocsPerRun(10, scan); allocs != 0 {
		t.Fatalf("warmed file-backed scan allocates %v/op", allocs)
	}
}

// TestCacheCorruptBlockNeverCached: a block that fails its CRC is not
// inserted into the cache, and stays an error on every subsequent touch
// rather than being masked by a stale cached copy.
func TestCacheCorruptBlockNeverCached(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	src := genValues[int64](rng, 3*512)
	data := buildColumnV2[int64](t, nil, 512, src)

	cr0, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cr0.BlockInfo(1)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Clone(data)
	bad[int(info.Offset)+5] ^= 0x40

	cache := zukowski.NewBlockLRU(1 << 30)
	cr, _ := openCached[int64](t, bad, cache)
	for pass := 0; pass < 3; pass++ {
		if _, err := cr.FrameBytes(1); !errors.Is(err, zukowski.ErrChecksumMismatch) {
			t.Fatalf("pass %d: FrameBytes err = %v, want ErrChecksumMismatch", pass, err)
		}
	}
	// Healthy neighbors cache fine; the corrupt block never entered.
	if _, err := cr.FrameBytes(0); err != nil {
		t.Fatal(err)
	}
	if _, err := cr.FrameBytes(2); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Entries != 2 || st.Puts != 2 {
		t.Fatalf("corrupt block leaked into cache: %+v", st)
	}
	if err := cr.Scan(func([]int64) bool { return true }); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("Scan err = %v, want ErrChecksumMismatch", err)
	}
}

// TestCacheInMemoryNoop: attaching a cache to an in-memory reader is a
// no-op — the stable source latches verification instead, and the cache
// never sees traffic.
func TestCacheInMemoryNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	src := genValues[uint16](rng, 2_000)
	data := buildColumnV2[uint16](t, nil, 256, src)

	cache := zukowski.NewBlockLRU(1 << 20)
	cr, err := zukowski.OpenColumn[uint16](data, zukowski.WithBlockCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if err := cr.Scan(func([]uint16) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits+st.Misses+st.Puts != 0 {
		t.Fatalf("in-memory reader touched the cache: %+v", st)
	}
}

// TestCacheDetach: SetBlockCache(nil) detaches; later scans go back to
// re-reading the source and the cache sees no new traffic.
func TestCacheDetach(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	src := genValues[int64](rng, 2_048)
	data := buildColumnV2[int64](t, nil, 512, src)

	cache := zukowski.NewBlockLRU(1 << 30)
	cr, counter := openCached[int64](t, data, cache)
	if err := cr.Scan(func([]int64) bool { return true }); err != nil {
		t.Fatal(err)
	}
	attached := cache.Stats()
	cr.SetBlockCache(nil)
	before := counter.reads.Load()
	if err := cr.Scan(func([]int64) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if counter.reads.Load() == before {
		t.Fatal("detached reader did not re-read the source")
	}
	if st := cache.Stats(); st.Puts != attached.Puts || st.Hits != attached.Hits {
		t.Fatalf("detached reader still drove the cache: %+v vs %+v", st, attached)
	}
}

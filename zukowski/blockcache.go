package zukowski

// The hot-block cache. The paper's decompression-bandwidth argument only
// holds while the compressed bytes are already in RAM: a file-backed
// column (OpenColumnReaderAt) re-reads and re-verifies every block from
// its io.ReaderAt on every touch, so a scan-heavy workload over a warm
// working set pays the read syscall, a fresh allocation and a CRC32-C
// pass per block per scan — exactly the RAM-CPU gap the schemes exist to
// close. A BlockCache keeps recently touched, checksum-verified frame
// bytes resident under a byte budget, shared across every reader (and
// therefore every column and table) attached to it. Under the
// immutable-container model a cached frame can never go stale — the
// writer never rewrites a closed container, and a replaced file is
// served through a freshly opened reader whose cache keys differ — so
// the only invalidation is eviction.

import (
	"sync"
	"sync/atomic"
)

// BlockCache is a store of verified raw block frames shared across
// column readers. Keys are (col, block): col is a process-unique id a
// reader acquires when the cache is attached (never reused, so entries
// of a discarded reader simply age out), block the block index within
// that reader's container.
//
// Implementations must be safe for concurrent use. The byte slices that
// flow through a BlockCache are shared between the cache and every
// caller: they must be treated as immutable by everyone, forever.
//
// BlockLRU is the standard implementation; the interface exists so a
// process can substitute its own policy (clock, ghost lists, tiering)
// without touching the reader.
type BlockCache interface {
	// Get returns the frame cached under (col, block), or nil.
	Get(col uint64, block int) []byte
	// Put offers a verified frame for caching under (col, block). The
	// cache may decline (budget, size); Put never fails loudly.
	Put(col uint64, block int, frame []byte)
}

// blockCacheIDs hands out the process-unique column ids SetBlockCache
// assigns. Ids are never reused, which is what makes eviction the only
// invalidation a cache needs.
var blockCacheIDs atomic.Uint64

// CacheStats is a point-in-time snapshot of a BlockLRU's counters.
type CacheStats struct {
	Hits      int64 // Get calls answered from the cache
	Misses    int64 // Get calls that found nothing
	Puts      int64 // frames accepted into the cache
	Evictions int64 // frames evicted to stay under the byte budget

	Bytes    int64 // resident payload + bookkeeping bytes right now
	Entries  int64 // resident frames right now
	Capacity int64 // configured byte budget
}

// HitRate returns Hits / (Hits + Misses), or 0 before any Get.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

const (
	// cacheShards spreads the cache over independently locked shards so
	// concurrent scans of different blocks rarely contend. 16 is enough
	// for the core counts this library targets; the shard is picked by a
	// hash of the key, so co-resident columns spread evenly.
	cacheShards = 16

	// cacheEntryOverhead approximates the bookkeeping bytes an entry
	// costs beyond its payload (map bucket share, entry struct, slice
	// header), so the byte budget reflects real memory, not just frame
	// bytes.
	cacheEntryOverhead = 112
)

type cacheKey struct {
	col   uint64
	block int
}

// cacheEntry is one resident frame, linked into its shard's LRU list.
type cacheEntry struct {
	key        cacheKey
	buf        []byte
	prev, next *cacheEntry
}

// cacheShard is one lock's worth of the cache: a map for lookup and an
// intrusive doubly-linked list for recency, most recent at head.next.
type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	head    cacheEntry // sentinel: head.next is MRU, head.prev is LRU
	bytes   int64
}

func (sh *cacheShard) init() {
	sh.entries = make(map[cacheKey]*cacheEntry)
	sh.head.next = &sh.head
	sh.head.prev = &sh.head
}

func (sh *cacheShard) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.next = sh.head.next
	e.prev = &sh.head
	e.next.prev = e
	sh.head.next = e
}

// BlockLRU is a sharded, byte-bounded LRU BlockCache. One BlockLRU is
// meant to be shared process-wide: attach it to every file-backed
// reader (zkserve's registry does exactly that) and the budget bounds
// the hot set across all of them together. All methods are safe for
// concurrent use, and Get on a resident entry performs no allocation —
// the cache stays off the scan path's allocation profile.
type BlockLRU struct {
	shards    [cacheShards]cacheShard
	shardMax  int64 // byte budget per shard
	capacity  int64 // configured total budget
	hits      atomic.Int64
	misses    atomic.Int64
	puts      atomic.Int64
	evictions atomic.Int64
	bytes     atomic.Int64
	entries   atomic.Int64
}

// NewBlockLRU returns a cache bounded by maxBytes of resident frames
// (payload plus per-entry bookkeeping). A frame larger than its shard's
// share of the budget (maxBytes / 16) is declined rather than allowed
// to thrash the shard. maxBytes <= 0 yields a cache that stores
// nothing.
func NewBlockLRU(maxBytes int64) *BlockLRU {
	c := &BlockLRU{capacity: max(maxBytes, 0)}
	c.shardMax = c.capacity / cacheShards
	for i := range c.shards {
		c.shards[i].init()
	}
	return c
}

// shardOf picks the shard for a key with a splitmix64-style finalizer,
// so sequential block indices of one column spread across shards.
func (c *BlockLRU) shardOf(k cacheKey) *cacheShard {
	h := k.col ^ (uint64(k.block) * 0x9E3779B97F4A7C15)
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	return &c.shards[h%cacheShards]
}

// Get returns the frame cached under (col, block), or nil, promoting a
// hit to most-recently-used. The returned bytes are shared: read-only.
func (c *BlockLRU) Get(col uint64, block int) []byte {
	k := cacheKey{col: col, block: block}
	sh := c.shardOf(k)
	sh.mu.Lock()
	e := sh.entries[k]
	if e == nil {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	sh.unlink(e)
	sh.pushFront(e)
	buf := e.buf
	sh.mu.Unlock()
	c.hits.Add(1)
	return buf
}

// Put inserts frame under (col, block), evicting least-recently-used
// entries until the shard fits its budget again. An oversized frame is
// declined; a duplicate key keeps the resident entry (the fill path is
// singleflighted per block, so duplicates only arise from independent
// readers over the same bytes, where either copy is equally valid).
func (c *BlockLRU) Put(col uint64, block int, frame []byte) {
	cost := int64(len(frame)) + cacheEntryOverhead
	if cost > c.shardMax {
		return
	}
	k := cacheKey{col: col, block: block}
	sh := c.shardOf(k)
	sh.mu.Lock()
	if _, dup := sh.entries[k]; dup {
		sh.mu.Unlock()
		return
	}
	e := &cacheEntry{key: k, buf: frame}
	sh.entries[k] = e
	sh.pushFront(e)
	sh.bytes += cost
	c.bytes.Add(cost)
	c.entries.Add(1)
	c.puts.Add(1)
	var evicted int64
	for sh.bytes > c.shardMax {
		lru := sh.head.prev
		sh.unlink(lru)
		delete(sh.entries, lru.key)
		freed := int64(len(lru.buf)) + cacheEntryOverhead
		sh.bytes -= freed
		c.bytes.Add(-freed)
		c.entries.Add(-1)
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Stats returns a snapshot of the cache's counters and residency.
func (c *BlockLRU) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     c.bytes.Load(),
		Entries:   c.entries.Load(),
		Capacity:  c.capacity,
	}
}

// Capacity returns the configured byte budget.
func (c *BlockLRU) Capacity() int64 { return c.capacity }

// Len returns the number of resident frames.
func (c *BlockLRU) Len() int { return int(c.entries.Load()) }

// Package zukowski is the public face of this repository: a unified codec
// API over the super-scalar patched compression schemes of Zukowski, Héman,
// Nes and Boncz ("Super-Scalar RAM-CPU Cache Compression", ICDE 2006) and
// the baseline schemes the paper compares against.
//
// The package wraps the internal kernels (which keep their allocation-free,
// branch-free hot-loop shapes) behind three layers:
//
//   - Codec[T]: one encode/decode/point-lookup contract for every scheme.
//     Encode appends a self-describing compressed frame to a byte slice;
//     Decode appends the reconstructed values to a value slice; Get reads a
//     single value without decompressing the whole frame (fine-grained
//     access, Section 3.1 of the paper); Stats inspects a frame.
//   - A name-indexed registry: Register, Lookup and Codecs let tools and
//     benchmarks enumerate schemes instead of hard-coding them.
//   - ColumnWriter / ColumnReader: a streaming multi-block column container
//     with a directory footer, per-block codec dispatch and fine-grained
//     Get across block boundaries. The default ZKC2 format adds per-block
//     CRC32-C checksums, min/max zone maps consulted by ScanWhere to skip
//     blocks before decompression, and a checksummed directory; ZKC1
//     containers (and writers via WithFormatVersion) stay fully supported,
//     and OpenColumnReaderAt streams columns larger than RAM from any
//     io.ReaderAt. A ColumnReader is safe for concurrent use — goroutines
//     share one reader's block cache and checksum state — and
//     ParallelScan / ParallelScanWhere decode blocks across a worker pool
//     to scale scan bandwidth with cores.
//
// # Filtered scans and aggregate pushdown
//
// ScanSelect, ParallelScanSelect and AggregateWhere evaluate a range
// predicate below decompression. Zone maps prune blocks first; inside each
// surviving patched block the predicate is translated into the compressed
// code domain — PFOR subtracts the block base and clamps to the codable
// window, PDICT remaps the range into dictionary-code space once per block
// (a contiguous code run uses the packed range kernels, anything else a
// per-code bitmap), PFOR-DELTA falls back to a fused decode+compare per
// 128-value group through its stored running total — and the packed code
// section is scanned by generated branch-free kernels emitting selection
// bitmaps. Only matching (row, value) pairs are materialized; exception
// slots are judged on their true values. AggregateWhere goes further and
// derives Count/Sum/Min/Max for PFOR from the matching codes plus the
// block base without widening codes to the element type. Raw and baseline
// frames decode-then-filter with the same output contract, and warmed
// sequential filtered scans allocate nothing.
//
// # Hot-block caching
//
// File-backed readers pay a read plus a CRC32-C verification per block
// fetch. SetBlockCache attaches a BlockCache — typically a BlockLRU, a
// sharded, byte-budgeted LRU over verified raw frames — under that
// path: hits return the frame with zero allocations, a cold block
// faulted by many goroutines is read and verified exactly once (the
// fill rides the per-block parse slot), and corrupt blocks are never
// admitted. Entries are keyed by a process-unique id assigned at
// attach, so under immutable containers eviction is the only
// invalidation. One BlockLRU may be shared by any number of readers;
// in-memory readers ignore the cache (their frames are already
// resident). FrameBytes exposes the same verified-raw-frame fetch the
// cache accelerates, for callers that ship frames instead of decoding
// them.
//
// # Multi-column predicates
//
// ColumnSet composes selection vectors across predicates and columns —
// the conjunctive step of the paper's RAM-CPU query pipeline. Columns
// sharing block geometry (same rows, same block boundaries; anything
// else is ErrColumnSetMismatch) scan as one unit: ScanWhereAll evaluates
// a []Pred conjunction per block by building a one-bit-per-row bitmap
// with the compare kernels of the most selective predicate (ordered by a
// zone-map estimate), intersecting it branch-free with each further
// predicate's matches — 32-row groups the running bitmap has emptied are
// skipped before a single code is extracted — and materializing only the
// rows that survive every predicate, from every column. AggregateWhereAll
// folds one column's survivors without delivering them;
// ParallelScanWhereAll runs blocks across the shared worker-pool engine
// with the ParallelScan delivery contract. Warmed sequential conjunctive
// scans allocate nothing.
//
// # Expression queries, grouping and joins
//
// Query[T] is the one-struct form of every ColumnSet scan — predicate
// (conjunction and/or expression tree), output columns, parallelism,
// ordering and degraded-mode options — executed by Run and
// RunAggregate; the ScanWhereAll-family entrypoints are thin wrappers
// over it, so existing []Pred call sites are unchanged. Expr generalizes
// the conjunction to an AND/OR tree of Range and In leaves (built with
// And, Or, Range, In), evaluated entirely at the selection-bitmap
// level: a disjunction is one word-wise union per 32 rows, AND branches
// prune at block granularity when any child's zone map excludes the
// block, OR branches only when every child's does, and nothing outside
// the final bitmap is ever decoded into a value. Inside an AND,
// children still run most-selective-first by zone-map estimate.
//
// On top of the expression scan sit three result-shaped operators.
// Project materializes the selected rows of chosen columns in one pass
// (the collecting form of Run). GroupAggregate groups in code space:
// on PDICT blocks the dictionary codes are the group keys, so each
// block contributes per-code accumulators and the dictionary is decoded
// once per block rather than once per row; results arrive sorted on the
// decoded key values. BuildJoin/JoinOn hash-join the selected rows of a
// probe column against a build-side key set — on PDICT blocks the hash
// table is probed once per dictionary entry, not once per row. All
// three accept the usual scan options (SkipCorrupt, ...), and
// FuzzExprScan differentially fuzzes the expression path against a
// scalar oracle.
//
// Unlike the internal packages, nothing here panics on bad input: invalid
// parameters and corrupt or truncated bytes surface as typed errors
// (ErrWidthOutOfRange, ErrBlockTooLarge, ErrCorruptSegment, ...).
//
// The patched codecs (PFOR, PFORDelta, PDict, None, Auto) all emit the
// Figure-3 segment layout of internal/segment and can each decode any
// segment frame regardless of which of them produced it. The baseline
// codecs (FOR, Dict, VByte) use a private frame layout and decode only
// their own output.
package zukowski

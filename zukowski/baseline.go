package zukowski

import (
	"encoding/binary"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bitpack"
)

// This file adapts the paper's baseline comparators (internal/baseline) to
// the Codec contract: classic frame-of-reference without patching, plain
// whole-domain dictionary coding, and the inverted-file variable-byte
// codec. They exist so registry-driven benchmarks compare the patched
// schemes against the baselines through one interface.
//
// Baseline frames use a private layout — a 8-byte header followed by a
// per-codec payload — and each baseline codec decodes only its own frames:
//
//	[0] frame magic 0xB6   [1] codec id   [2] element size   [3] bit width
//	[4:8] value count (little-endian uint32)
//
// None of the baselines keeps entry points, so Get decodes the whole frame
// (O(n), unlike the patched codecs' fine-grained access).

const baselineMagic = 0xB6

const (
	frameFOR byte = iota + 1
	frameDict
	frameVByte
)

func putBaselineHeader(dst []byte, id byte, elem int, b uint, n int) []byte {
	var hdr [8]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = baselineMagic, id, byte(elem), byte(b)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(n))
	return append(dst, hdr[:]...)
}

// parseBaselineHeader validates the common frame header and returns the
// bit width, value count and payload.
func parseBaselineHeader[T Integer](encoded []byte, id byte) (b uint, n int, payload []byte, err error) {
	if len(encoded) < 8 {
		return 0, 0, nil, corrupt(fmt.Errorf("baseline frame of %d bytes", len(encoded)))
	}
	if encoded[0] != baselineMagic || encoded[1] != id {
		return 0, 0, nil, corrupt(fmt.Errorf("bad baseline frame magic % x", encoded[:2]))
	}
	if int(encoded[2]) != elemSize[T]() {
		return 0, 0, nil, corrupt(fmt.Errorf("element size %d, decoding as %d", encoded[2], elemSize[T]()))
	}
	b = uint(encoded[3])
	n = int(binary.LittleEndian.Uint32(encoded[4:]))
	if b > 32 || n > MaxBlockValues {
		return 0, 0, nil, corrupt(fmt.Errorf("baseline frame header b=%d n=%d", b, n))
	}
	return b, n, encoded[8:], nil
}

// typeMask returns the mask covering T's unsigned image.
func typeMask[T Integer]() uint64 {
	return ^uint64(0) >> (64 - 8*elemSize[T]())
}

// FOR is classic Frame-of-Reference coding (Goldstein et al., Section 2.1
// of the paper): every value is an offset from the frame minimum in exactly
// ceil(log2(max-min+1)) bits, with no exceptions — so a single outlier
// widens the codes for the whole frame, which is precisely the weakness
// PFOR's patching fixes. Inputs whose spread needs more than 32 bits return
// ErrWidthOutOfRange.
type FOR[T Integer] struct{}

// Name implements Codec.
func (FOR[T]) Name() string { return "for" }

// Encode implements Codec.
func (FOR[T]) Encode(dst []byte, src []T) ([]byte, error) {
	if err := checkLen(len(src)); err != nil {
		return nil, err
	}
	vals := make([]int64, len(src))
	for i, v := range src {
		vals[i] = int64(v)
	}
	if len(vals) > 0 {
		minV, maxV := vals[0], vals[0]
		for _, v := range vals[1:] {
			minV, maxV = min(minV, v), max(maxV, v)
		}
		if spread := uint64(maxV - minV); spread > 1<<32-1 {
			return nil, fmt.Errorf("%w: FOR spread %d needs more than 32 bits", ErrWidthOutOfRange, spread)
		}
	}
	blk := baseline.CompressFOR(vals)
	dst = putBaselineHeader(dst, frameFOR, elemSize[T](), blk.B, blk.N)
	var minBuf [8]byte
	binary.LittleEndian.PutUint64(minBuf[:], uint64(blk.Min))
	dst = append(dst, minBuf[:]...)
	return appendWords(dst, blk.Codes), nil
}

// decode rebuilds the FOR block of a frame.
func (FOR[T]) decode(encoded []byte) (*baseline.FORBlock, error) {
	b, n, payload, err := parseBaselineHeader[T](encoded, frameFOR)
	if err != nil {
		return nil, err
	}
	if len(payload) < 8 {
		return nil, corrupt(fmt.Errorf("FOR frame truncated"))
	}
	blk := &baseline.FORBlock{
		Min: int64(binary.LittleEndian.Uint64(payload)),
		B:   b,
		N:   n,
	}
	words := bitpack.WordCount(n, b)
	if blk.Codes, err = parseWords(payload[8:], words); err != nil {
		return nil, err
	}
	return blk, nil
}

// Decode implements Codec.
func (c FOR[T]) Decode(dst []T, encoded []byte) ([]T, error) {
	blk, err := c.decode(encoded)
	if err != nil {
		return nil, err
	}
	out := make([]int64, blk.N)
	blk.Decompress(out)
	dst, tail := grow(dst, blk.N)
	for i, v := range out {
		tail[i] = T(v)
	}
	return dst, nil
}

// Get implements Codec. FOR frames have no entry points; the whole frame
// is decoded.
func (c FOR[T]) Get(encoded []byte, i int) (T, error) { return decodeAndIndex[T](c, encoded, i) }

// Stats implements Codec.
func (c FOR[T]) Stats(encoded []byte) (Stats, error) {
	blk, err := c.decode(encoded)
	if err != nil {
		return Stats{}, err
	}
	return fillSizes(Stats{
		Scheme:    "FOR",
		BitWidth:  blk.B,
		NumValues: blk.N,
	}, len(encoded), blk.N*elemSize[T]()), nil
}

// Dict is plain whole-domain dictionary coding (Section 2.1): every
// distinct value must enter the dictionary, so codes need ceil(log2(|D|))
// bits even on highly skewed distributions — the weakness PDict's patching
// fixes. Inputs with more than 1<<24 distinct values return an error.
type Dict[T Integer] struct{}

// Name implements Codec.
func (Dict[T]) Name() string { return "dict" }

// Encode implements Codec.
func (Dict[T]) Encode(dst []byte, src []T) ([]byte, error) {
	if err := checkLen(len(src)); err != nil {
		return nil, err
	}
	vals := make([]int64, len(src))
	for i, v := range src {
		vals[i] = int64(v)
	}
	blk, err := baseline.CompressDict(vals)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrValueOutOfRange, err)
	}
	dst = putBaselineHeader(dst, frameDict, elemSize[T](), blk.B, blk.N)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(blk.Dict)))
	dst = append(dst, cnt[:]...)
	var ent [8]byte
	for _, v := range blk.Dict {
		binary.LittleEndian.PutUint64(ent[:], uint64(v))
		dst = append(dst, ent[:]...)
	}
	return appendWords(dst, blk.Codes), nil
}

// decode rebuilds the dictionary block of a frame.
func (Dict[T]) decode(encoded []byte) (*baseline.DictBlock, error) {
	b, n, payload, err := parseBaselineHeader[T](encoded, frameDict)
	if err != nil {
		return nil, err
	}
	if len(payload) < 4 {
		return nil, corrupt(fmt.Errorf("dict frame truncated"))
	}
	dictLen := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if dictLen > 1<<24 || len(payload) < 8*dictLen {
		return nil, corrupt(fmt.Errorf("dict frame: %d dictionary entries, %d payload bytes", dictLen, len(payload)))
	}
	blk := &baseline.DictBlock{B: b, N: n, Dict: make([]int64, dictLen)}
	for i := range blk.Dict {
		blk.Dict[i] = int64(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	words := bitpack.WordCount(n, b)
	if blk.Codes, err = parseWords(payload[8*dictLen:], words); err != nil {
		return nil, err
	}
	return blk, nil
}

// Decode implements Codec.
func (c Dict[T]) Decode(dst []T, encoded []byte) (out []T, err error) {
	// A corrupt frame can hold codes outside the dictionary; the kernel
	// trusts its inputs, so convert the fault instead of crashing.
	defer guardSegment(&err)
	blk, err := c.decode(encoded)
	if err != nil {
		return nil, err
	}
	vals := make([]int64, blk.N)
	blk.Decompress(vals)
	dst, tail := grow(dst, blk.N)
	for i, v := range vals {
		tail[i] = T(v)
	}
	return dst, nil
}

// Get implements Codec. Dict frames have no entry points; the whole frame
// is decoded.
func (c Dict[T]) Get(encoded []byte, i int) (T, error) { return decodeAndIndex[T](c, encoded, i) }

// Stats implements Codec.
func (c Dict[T]) Stats(encoded []byte) (Stats, error) {
	blk, err := c.decode(encoded)
	if err != nil {
		return Stats{}, err
	}
	return fillSizes(Stats{
		Scheme:      "DICT",
		BitWidth:    blk.B,
		NumValues:   blk.N,
		DictEntries: len(blk.Dict),
	}, len(encoded), blk.N*elemSize[T]()), nil
}

// VByte is the variable-byte inverted-file codec (Table 4 of the paper):
// seven value bits per byte, high bit flagging continuation. Values are
// coded through their unsigned image, which must fit 32 bits — wider values
// return ErrValueOutOfRange.
type VByte[T Integer] struct{}

// Name implements Codec.
func (VByte[T]) Name() string { return "vbyte" }

// Encode implements Codec.
func (VByte[T]) Encode(dst []byte, src []T) ([]byte, error) {
	if err := checkLen(len(src)); err != nil {
		return nil, err
	}
	mask := typeMask[T]()
	vals := make([]uint32, len(src))
	for i, v := range src {
		u := uint64(v) & mask
		if u > 1<<32-1 {
			return nil, fmt.Errorf("%w: value %d does not fit 32 bits", ErrValueOutOfRange, u)
		}
		vals[i] = uint32(u)
	}
	dst = putBaselineHeader(dst, frameVByte, elemSize[T](), 0, len(src))
	return baseline.VByte{}.Encode(dst, vals), nil
}

// Decode implements Codec.
func (VByte[T]) Decode(dst []T, encoded []byte) ([]T, error) {
	_, n, payload, err := parseBaselineHeader[T](encoded, frameVByte)
	if err != nil {
		return nil, err
	}
	// Each value occupies at least one payload byte; checking before the
	// allocation keeps a crafted 8-byte header from demanding 128MB.
	if len(payload) < n {
		return nil, corrupt(fmt.Errorf("vbyte frame: %d payload bytes for %d values", len(payload), n))
	}
	vals, _, err := baseline.VByte{}.Decode(make([]uint32, 0, n), payload, n)
	if err != nil {
		return nil, corrupt(err)
	}
	dst, tail := grow(dst, n)
	for i, v := range vals {
		tail[i] = T(v)
	}
	return dst, nil
}

// Get implements Codec. VByte frames have no entry points; the whole frame
// is decoded.
func (c VByte[T]) Get(encoded []byte, i int) (T, error) { return decodeAndIndex[T](c, encoded, i) }

// Stats implements Codec.
func (VByte[T]) Stats(encoded []byte) (Stats, error) {
	_, n, _, err := parseBaselineHeader[T](encoded, frameVByte)
	if err != nil {
		return Stats{}, err
	}
	return fillSizes(Stats{Scheme: "VBYTE", NumValues: n}, len(encoded), n*elemSize[T]()), nil
}

// decodeAndIndex implements Get for codecs without fine-grained access.
func decodeAndIndex[T Integer](c Codec[T], encoded []byte, i int) (T, error) {
	var zero T
	vals, err := c.Decode(nil, encoded)
	if err != nil {
		return zero, err
	}
	if i < 0 || i >= len(vals) {
		return zero, fmt.Errorf("%w: %d not in [0,%d)", ErrIndexOutOfRange, i, len(vals))
	}
	return vals[i], nil
}

// appendWords appends a []uint32 code section little-endian.
func appendWords(dst []byte, words []uint32) []byte {
	var w [4]byte
	for _, v := range words {
		binary.LittleEndian.PutUint32(w[:], v)
		dst = append(dst, w[:]...)
	}
	return dst
}

// parseWords reads exactly n little-endian uint32 words.
func parseWords(payload []byte, n int) ([]uint32, error) {
	if len(payload) < 4*n {
		return nil, corrupt(fmt.Errorf("code section: %d bytes, need %d", len(payload), 4*n))
	}
	words := make([]uint32, n)
	for i := range words {
		words[i] = binary.LittleEndian.Uint32(payload[4*i:])
	}
	return words, nil
}

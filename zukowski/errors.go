package zukowski

import "errors"

// Typed errors returned by the public API. The internal kernels panic on
// misuse (they trust their callers and keep branch-free hot loops); every
// user-reachable path here validates first and returns one of these
// instead. Errors wrapping a lower-level cause keep it in the chain, so
// errors.Is works against both the sentinel and the cause.
var (
	// ErrWidthOutOfRange reports a code bit width outside [1,32] or wider
	// than the element type.
	ErrWidthOutOfRange = errors.New("zukowski: bit width out of range")

	// ErrBlockTooLarge reports an encode input longer than MaxBlockValues —
	// the 25-bit exception-offset field of an entry-point word caps blocks
	// at 1<<25 values (Section 3.1 of the paper).
	ErrBlockTooLarge = errors.New("zukowski: block exceeds maximum value count")

	// ErrCorruptSegment reports compressed bytes that fail validation:
	// truncation, bad magic, checksum mismatch, inconsistent header fields
	// or a patch list that escapes its block.
	ErrCorruptSegment = errors.New("zukowski: corrupt compressed segment")

	// ErrCorruptColumn reports a column container whose header, directory
	// footer or block layout fails validation.
	ErrCorruptColumn = errors.New("zukowski: corrupt column container")

	// ErrIndexOutOfRange reports a Get position outside [0, NumValues).
	ErrIndexOutOfRange = errors.New("zukowski: value index out of range")

	// ErrValueOutOfRange reports an encode input value outside the codec's
	// representable domain (e.g. a 64-bit value handed to the 32-bit
	// variable-byte codec).
	ErrValueOutOfRange = errors.New("zukowski: value outside codec domain")

	// ErrUnknownCodec reports a Lookup of a name with no registered codec
	// for the requested element type.
	ErrUnknownCodec = errors.New("zukowski: unknown codec")

	// ErrChecksumMismatch reports a ZKC2 container region (a block payload
	// or the directory) whose stored CRC32-C disagrees with the bytes.
	// Checksum failures also match ErrCorruptColumn, which stays the
	// umbrella for every container-integrity failure.
	ErrChecksumMismatch = errors.New("zukowski: checksum mismatch")

	// ErrIO reports a source read that failed at the I/O layer — the
	// ReaderAt returned an error or fewer bytes than asked — as opposed to
	// bytes that arrived but failed validation. I/O failures are the
	// retryable class: a ColumnReader with a RetryPolicy re-reads them with
	// backoff before giving up. They also match ErrCorruptColumn, the
	// umbrella for every failure to produce a block.
	ErrIO = errors.New("zukowski: source I/O error")

	// ErrBlockQuarantined reports a block whose checksum mismatch persisted
	// across a re-read: the reader marks the block bad once and every later
	// touch fails fast with this error instead of re-reading and re-hashing
	// doomed bytes. Quarantined-block errors also match ErrCorruptColumn
	// and ErrChecksumMismatch (the original cause stays in the chain).
	ErrBlockQuarantined = errors.New("zukowski: block quarantined")

	// ErrUnsupportedVersion reports a column format version this build
	// cannot write (readers accept every released version).
	ErrUnsupportedVersion = errors.New("zukowski: unsupported column format version")

	// ErrClosed reports a write to a closed ColumnWriter.
	ErrClosed = errors.New("zukowski: column writer is closed")

	// ErrColumnSetMismatch reports columns that cannot be scanned together
	// because they disagree on block geometry: a ColumnSet requires every
	// column to hold the same number of rows split at the same block
	// boundaries, so one block-level selection bitmap applies to all of
	// them.
	ErrColumnSetMismatch = errors.New("zukowski: columns disagree on block geometry")
)

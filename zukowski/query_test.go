package zukowski_test

import (
	"context"
	"math/rand"
	"slices"
	"testing"

	"repro/zukowski"
)

// exprCase pairs an expression with its row oracle over the decoded
// columns (all[col][row]).
type exprCase struct {
	name string
	expr zukowski.Expr[int64]
	ok   func(all [][]int64, i int) bool
}

// exprCases is a fixed battery covering every node type, nesting both
// ways, and the degenerate shapes (zero expr, empty And/Or/In, inverted
// range). Column domains follow synthColumn: mostly < 4096 with sparse
// outliers up to 2^30.
func exprCases() []exprCase {
	between := func(v, lo, hi int64) bool { return v >= lo && v <= hi }
	return []exprCase{
		{"zero", zukowski.Expr[int64]{}, func(all [][]int64, i int) bool { return true }},
		{"range", zukowski.Range[int64](0, 100, 900),
			func(all [][]int64, i int) bool { return between(all[0][i], 100, 900) }},
		{"inverted-range", zukowski.Range[int64](0, 900, 100),
			func(all [][]int64, i int) bool { return false }},
		{"or-two-ranges", zukowski.Or(zukowski.Range[int64](0, 0, 150), zukowski.Range[int64](0, 3000, 3500)),
			func(all [][]int64, i int) bool {
				return between(all[0][i], 0, 150) || between(all[0][i], 3000, 3500)
			}},
		{"or-two-cols", zukowski.Or(zukowski.Range[int64](0, 0, 200), zukowski.Range[int64](1, 3900, 4100)),
			func(all [][]int64, i int) bool {
				return between(all[0][i], 0, 200) || between(all[1][i], 3900, 4100)
			}},
		{"in", zukowski.In[int64](0, 7, 42, 1000, 1<<29),
			func(all [][]int64, i int) bool {
				v := all[0][i]
				return v == 7 || v == 42 || v == 1000 || v == 1<<29
			}},
		{"empty-in", zukowski.In[int64](0),
			func(all [][]int64, i int) bool { return false }},
		{"empty-and", zukowski.And[int64](),
			func(all [][]int64, i int) bool { return true }},
		{"empty-or", zukowski.Or[int64](),
			func(all [][]int64, i int) bool { return false }},
		{"and-of-ors", zukowski.And(
			zukowski.Or(zukowski.Range[int64](0, 0, 500), zukowski.Range[int64](0, 2000, 2600)),
			zukowski.Or(zukowski.Range[int64](1, 0, 800), zukowski.In[int64](1, 3000, 3001, 3002)),
		), func(all [][]int64, i int) bool {
			a, b := all[0][i], all[1][i]
			return (between(a, 0, 500) || between(a, 2000, 2600)) &&
				(between(b, 0, 800) || b == 3000 || b == 3001 || b == 3002)
		}},
		{"or-of-ands", zukowski.Or(
			zukowski.And(zukowski.Range[int64](0, 0, 300), zukowski.Range[int64](1, 0, 300)),
			zukowski.And(zukowski.Range[int64](0, 3700, 4095), zukowski.Range[int64](2, 0, 100)),
		), func(all [][]int64, i int) bool {
			return (between(all[0][i], 0, 300) && between(all[1][i], 0, 300)) ||
				(between(all[0][i], 3700, 4095) && between(all[2][i], 0, 100))
		}},
		{"deep-nest", zukowski.And(
			zukowski.Range[int64](2, 0, 1<<30),
			zukowski.Or(
				zukowski.In[int64](0, 1, 2, 3),
				zukowski.And(
					zukowski.Range[int64](0, 1000, 2000),
					zukowski.Or(zukowski.Range[int64](1, 0, 100), zukowski.Range[int64](1, 4000, 4095)),
				),
			),
		), func(all [][]int64, i int) bool {
			a, b, c := all[0][i], all[1][i], all[2][i]
			return between(c, 0, 1<<30) &&
				(a == 1 || a == 2 || a == 3 ||
					(between(a, 1000, 2000) && (between(b, 0, 100) || between(b, 4000, 4095))))
		}},
	}
}

// buildExprSet builds a three-column set under the given codec names,
// returning the set and the decoded columns.
func buildExprSet(t *testing.T, codecs [3]string, n int, seed int64) (*zukowski.ColumnSet[int64], [][]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	all := make([][]int64, 3)
	crs := make([]*zukowski.ColumnReader[int64], 3)
	for c := range all {
		all[c] = synthColumn(rng, n)
		codec, err := zukowski.Lookup[int64](codecs[c])
		if err != nil {
			t.Fatal(err)
		}
		crs[c] = buildSelectColumn(t, codec, 0, all[c])
	}
	cs, err := zukowski.NewColumnSet(crs...)
	if err != nil {
		t.Fatal(err)
	}
	return cs, all
}

// exprOracle materializes the oracle's row set and per-column values.
func exprOracle(all [][]int64, ok func([][]int64, int) bool) (rows []int64, vals [][]int64) {
	vals = make([][]int64, len(all))
	for i := range all[0] {
		if !ok(all, i) {
			continue
		}
		rows = append(rows, int64(i))
		for c := range all {
			vals[c] = append(vals[c], all[c][i])
		}
	}
	return rows, vals
}

// TestRunExprOracle drives Run with the expression battery over codec
// mixes against the decode-then-filter oracle, sequentially and in
// ordered parallel.
func TestRunExprOracle(t *testing.T) {
	mixes := [][3]string{
		{"pfor", "pfor", "pfor"},
		{"pdict", "pfor", "pfor-delta"},
		{"none", "pdict", "pfor"},
		{"auto", "auto", "auto"},
	}
	for mi, mix := range mixes {
		cs, all := buildExprSet(t, mix, 30_000, int64(101+mi))
		for _, tc := range exprCases() {
			wantRows, wantVals := exprOracle(all, tc.ok)
			for _, workers := range []int{0, 3} {
				var gotRows []int64
				gotVals := make([][]int64, 3)
				q := zukowski.Query[int64]{Expr: tc.expr, Workers: workers, InOrder: workers > 1}
				err := cs.Run(context.Background(), q, func(_ int, r []int64, cols [][]int64) bool {
					gotRows = append(gotRows, r...)
					for c := range cols {
						gotVals[c] = append(gotVals[c], cols[c]...)
					}
					return true
				})
				if err != nil {
					t.Fatalf("%v/%s workers=%d: Run: %v", mix, tc.name, workers, err)
				}
				if !slices.Equal(gotRows, wantRows) {
					t.Fatalf("%v/%s workers=%d: rows mismatch: got %d want %d",
						mix, tc.name, workers, len(gotRows), len(wantRows))
				}
				for c := range gotVals {
					if !slices.Equal(gotVals[c], wantVals[c]) {
						t.Fatalf("%v/%s workers=%d: column %d values mismatch", mix, tc.name, workers, c)
					}
				}
			}

			// RunAggregate over column 1 must fold exactly the oracle rows.
			agg, err := cs.RunAggregate(context.Background(), zukowski.Query[int64]{Expr: tc.expr}, 1)
			if err != nil {
				t.Fatalf("%v/%s: RunAggregate: %v", mix, tc.name, err)
			}
			var want zukowski.Aggregate[int64]
			for _, v := range wantVals[1] {
				if want.Count == 0 {
					want.Min, want.Max = v, v
				} else {
					want.Min, want.Max = min(want.Min, v), max(want.Max, v)
				}
				want.Count++
				want.Sum += v
			}
			if agg != want {
				t.Fatalf("%v/%s: RunAggregate = %+v, want %+v", mix, tc.name, agg, want)
			}
		}
	}
}

// TestQueryPredsAndExpr checks that Preds and Expr compose by AND, and
// that Query{Preds} alone matches ScanWhereAll exactly.
func TestQueryPredsAndExpr(t *testing.T) {
	cs, all := buildExprSet(t, [3]string{"pfor", "pdict", "auto"}, 20_000, 7)
	preds := []zukowski.Pred[int64]{{Col: 0, Lo: 100, Hi: 3000}}
	expr := zukowski.Or(zukowski.Range[int64](1, 0, 500), zukowski.Range[int64](2, 2000, 2400))

	wantRows, _ := exprOracle(all, func(all [][]int64, i int) bool {
		return all[0][i] >= 100 && all[0][i] <= 3000 &&
			((all[1][i] >= 0 && all[1][i] <= 500) || (all[2][i] >= 2000 && all[2][i] <= 2400))
	})
	var gotRows []int64
	err := cs.Run(context.Background(), zukowski.Query[int64]{Preds: preds, Expr: expr},
		func(_ int, r []int64, _ [][]int64) bool { gotRows = append(gotRows, r...); return true })
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gotRows, wantRows) {
		t.Fatalf("Preds∧Expr rows mismatch: got %d want %d", len(gotRows), len(wantRows))
	}

	// The equivalent pure-Expr form must agree.
	var exprRows []int64
	eq := zukowski.And(zukowski.Range[int64](0, 100, 3000), expr)
	err = cs.Run(context.Background(), zukowski.Query[int64]{Expr: eq},
		func(_ int, r []int64, _ [][]int64) bool { exprRows = append(exprRows, r...); return true })
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(exprRows, wantRows) {
		t.Fatal("And(Range, expr) disagrees with Query{Preds, Expr}")
	}
}

// TestRunCols checks the column-subset contract: Cols names and orders
// the materialized columns.
func TestRunCols(t *testing.T) {
	cs, all := buildExprSet(t, [3]string{"pfor", "pfor", "pfor"}, 10_000, 11)
	expr := zukowski.Range[int64](0, 0, 700)
	wantRows, wantVals := exprOracle(all, func(all [][]int64, i int) bool { return all[0][i] <= 700 })

	var gotRows []int64
	var got2, got0 []int64
	q := zukowski.Query[int64]{Expr: expr, Cols: []int{2, 0}}
	err := cs.Run(context.Background(), q, func(_ int, r []int64, cols [][]int64) bool {
		if len(cols) != 2 {
			t.Fatalf("Cols [2 0]: got %d columns", len(cols))
		}
		gotRows = append(gotRows, r...)
		got2 = append(got2, cols[0]...)
		got0 = append(got0, cols[1]...)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gotRows, wantRows) || !slices.Equal(got2, wantVals[2]) || !slices.Equal(got0, wantVals[0]) {
		t.Fatal("Cols subset scan disagrees with oracle")
	}
}

// TestProject checks the collecting form.
func TestProject(t *testing.T) {
	cs, all := buildExprSet(t, [3]string{"pdict", "pfor", "auto"}, 10_000, 13)
	expr := zukowski.Or(zukowski.Range[int64](0, 0, 99), zukowski.In[int64](1, 5, 6, 7))
	wantRows, wantVals := exprOracle(all, func(all [][]int64, i int) bool {
		return all[0][i] <= 99 || all[1][i] == 5 || all[1][i] == 6 || all[1][i] == 7
	})
	rows, vals, err := cs.Project(expr, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(rows, wantRows) || !slices.Equal(vals[0], wantVals[1]) || !slices.Equal(vals[1], wantVals[2]) {
		t.Fatal("Project disagrees with oracle")
	}

	// No columns: every column, set order.
	rows, vals, err = cs.Project(expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || !slices.Equal(rows, wantRows) || !slices.Equal(vals[0], wantVals[0]) {
		t.Fatal("Project() all-columns form disagrees with oracle")
	}
}

// TestQueryErrors checks column validation across the Query surface.
func TestQueryErrors(t *testing.T) {
	cs, _ := buildExprSet(t, [3]string{"pfor", "pfor", "pfor"}, 1_000, 17)
	bad := []zukowski.Query[int64]{
		{Expr: zukowski.Range[int64](3, 0, 1)},
		{Expr: zukowski.Or(zukowski.Range[int64](0, 0, 1), zukowski.In[int64](-1, 5))},
		{Cols: []int{0, 3}},
		{Preds: []zukowski.Pred[int64]{{Col: 9, Lo: 0, Hi: 1}}},
	}
	for i, q := range bad {
		if err := cs.Run(context.Background(), q, func(int, []int64, [][]int64) bool { return true }); err == nil {
			t.Fatalf("bad query %d: Run accepted it", i)
		}
	}
}

package zukowski_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/zukowski"
)

// rampValues builds a mostly-increasing column with periodic outliers: the
// patched schemes compress it well, the zone maps prune range scans on it,
// and the total is deliberately not a multiple of any block size so the
// last partial block is always exercised.
func rampValues(n int) []int64 {
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)*4 + rng.Int63n(16)
		if i%911 == 0 {
			vals[i] += 1 << 33 // exception
		}
	}
	return vals
}

// openBoth returns the same container through both sources: the in-memory
// byte path and the lazily fetched ReaderAt path.
func openBoth[T zukowski.Integer](t *testing.T, data []byte) map[string]*zukowski.ColumnReader[T] {
	t.Helper()
	fromBytes, err := zukowski.OpenColumn[T](data)
	if err != nil {
		t.Fatal(err)
	}
	fromReaderAt, err := zukowski.OpenColumnReaderAt[T](bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*zukowski.ColumnReader[T]{"bytes": fromBytes, "readerAt": fromReaderAt}
}

// collectSeq runs a sequential Scan and returns the concatenated values.
func collectSeq[T zukowski.Integer](t *testing.T, cr *zukowski.ColumnReader[T]) []T {
	t.Helper()
	var got []T
	if err := cr.Scan(func(vals []T) bool {
		got = append(got, vals...)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParallelScanMatchesScan(t *testing.T) {
	src := rampValues(50_000)
	data := buildColumn[int64](t, zukowski.Auto[int64]{}, 4096, src)
	for name, cr := range openBoth[int64](t, data) {
		t.Run(name, func(t *testing.T) {
			want := collectSeq(t, cr)

			for _, workers := range []int{0, 1, 3, 4, 100} {
				// Ordered delivery must reproduce the sequential sequence
				// exactly.
				var ordered []int64
				lastBlock := -1
				err := cr.ParallelScan(workers, func(b int, vals []int64) bool {
					if b <= lastBlock {
						t.Errorf("workers=%d: block %d delivered after %d", workers, b, lastBlock)
					}
					lastBlock = b
					ordered = append(ordered, vals...)
					return true
				}, zukowski.InOrder())
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !equalSlices(ordered, want) {
					t.Fatalf("workers=%d: ordered ParallelScan diverges from Scan", workers)
				}

				// Unordered delivery must cover every block exactly once.
				byBlock := map[int][]int64{}
				err = cr.ParallelScan(workers, func(b int, vals []int64) bool {
					if _, dup := byBlock[b]; dup {
						t.Errorf("workers=%d: block %d delivered twice", workers, b)
					}
					byBlock[b] = append([]int64(nil), vals...)
					return true
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				var unordered []int64
				for b := 0; b < cr.NumBlocks(); b++ {
					unordered = append(unordered, byBlock[b]...)
				}
				if !equalSlices(unordered, want) {
					t.Fatalf("workers=%d: unordered ParallelScan diverges from Scan", workers)
				}
			}
		})
	}
}

func TestParallelScanWhereMatchesSequential(t *testing.T) {
	src := rampValues(60_000)
	data := buildColumn[int64](t, zukowski.Auto[int64]{}, 4096, src)
	lo, hi := src[len(src)/3], src[len(src)/2]

	// Full-scan oracle: the exact multiset of in-range values.
	var oracle []int64
	for _, v := range src {
		if v >= lo && v <= hi {
			oracle = append(oracle, v)
		}
	}

	for name, cr := range openBoth[int64](t, data) {
		t.Run(name, func(t *testing.T) {
			var seq []int64
			if err := cr.ScanWhere(lo, hi, func(vals []int64) bool {
				seq = append(seq, vals...)
				return true
			}); err != nil {
				t.Fatal(err)
			}

			var par []int64
			if err := cr.ParallelScanWhere(lo, hi, 4, func(_ int, vals []int64) bool {
				par = append(par, vals...)
				return true
			}, zukowski.InOrder()); err != nil {
				t.Fatal(err)
			}
			if !equalSlices(par, seq) {
				t.Fatal("ParallelScanWhere diverges from sequential ScanWhere")
			}

			// Applying the exact predicate to the delivered vectors must
			// reproduce the full-scan oracle.
			var filtered []int64
			for _, v := range par {
				if v >= lo && v <= hi {
					filtered = append(filtered, v)
				}
			}
			if !equalSlices(filtered, oracle) {
				t.Fatalf("predicate over ParallelScanWhere vectors: %d values, oracle has %d", len(filtered), len(oracle))
			}
		})
	}
}

func TestParallelScanEarlyStop(t *testing.T) {
	src := rampValues(50_000)
	data := buildColumn[int64](t, zukowski.Auto[int64]{}, 4096, src)
	cr, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, opts := range [][]zukowski.ScanOption{nil, {zukowski.InOrder()}} {
			calls := 0
			err := cr.ParallelScan(workers, func(int, []int64) bool {
				calls++
				return false
			}, opts...)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if calls != 1 {
				t.Fatalf("workers=%d: fn called %d times after returning false", workers, calls)
			}
		}
	}
}

func TestParallelScanError(t *testing.T) {
	src := rampValues(50_000)
	data := buildColumn[int64](t, zukowski.Auto[int64]{}, 4096, src)
	cr, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of a middle block; ZKC2 checksums turn that
	// into ErrChecksumMismatch at scan time.
	const bad = 5
	info, err := cr.BlockInfo(bad)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), data...)
	corrupted[info.Offset+int64(info.Length)/2] ^= 0x40
	cc, err := zukowski.OpenColumn[int64](corrupted)
	if err != nil {
		t.Fatal(err)
	}

	// Ordered: blocks before the corrupt one arrive, then the error —
	// exactly where the sequential scan would fail.
	var delivered []int
	err = cc.ParallelScan(4, func(b int, _ []int64) bool {
		delivered = append(delivered, b)
		return true
	}, zukowski.InOrder())
	if !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("ordered scan over corrupt block: err = %v", err)
	}
	for i, b := range delivered {
		if b != i || b >= bad {
			t.Fatalf("ordered scan delivered block %d at position %d around corrupt block %d", b, i, bad)
		}
	}

	// Unordered: the error must still surface.
	if err := cc.ParallelScan(4, func(int, []int64) bool { return true }); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("unordered scan over corrupt block: err = %v", err)
	}
}

// TestConcurrentColumnReader hammers one shared reader with a mix of Get,
// Scan, ScanWhere, ParallelScan, ReadAll and Verify goroutines on both
// source kinds. Run under -race (CI does, at -cpu=1,4); the assertions
// double as a correctness check that concurrent use returns the same
// values as the source slice.
func TestConcurrentColumnReader(t *testing.T) {
	src := rampValues(40_000)
	data := buildColumn[int64](t, zukowski.Auto[int64]{}, 2048, src)
	lo, hi := src[len(src)/4], src[3*len(src)/4]
	for name, cr := range openBoth[int64](t, data) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			fail := make(chan error, 64)
			report := func(format string, args ...any) {
				select {
				case fail <- fmt.Errorf(format, args...):
				default:
				}
			}

			// Point lookups, each checked against the source.
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for k := 0; k < 2_000; k++ {
						i := rng.Intn(len(src))
						v, err := cr.Get(i)
						if err != nil {
							report("Get(%d): %v", i, err)
							return
						}
						if v != src[i] {
							report("Get(%d) = %d, want %d", i, v, src[i])
							return
						}
					}
				}(int64(g))
			}

			// Sequential scans.
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					row := 0
					err := cr.Scan(func(vals []int64) bool {
						for _, v := range vals {
							if v != src[row] {
								report("Scan row %d = %d, want %d", row, v, src[row])
								return false
							}
							row++
						}
						return true
					})
					if err != nil {
						report("Scan: %v", err)
					}
				}()
			}

			// Zone-map scans applying the exact predicate.
			wg.Add(1)
			go func() {
				defer wg.Done()
				n := 0
				err := cr.ScanWhere(lo, hi, func(vals []int64) bool {
					for _, v := range vals {
						if v >= lo && v <= hi {
							n++
						}
					}
					return true
				})
				if err != nil {
					report("ScanWhere: %v", err)
				}
			}()

			// Parallel scans sharing the same slots and state pool.
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var sum int64
					err := cr.ParallelScan(3, func(_ int, vals []int64) bool {
						for _, v := range vals {
							sum += v
						}
						return true
					})
					if err != nil {
						report("ParallelScan: %v", err)
					}
				}()
			}

			// Bulk reads and integrity checks.
			wg.Add(1)
			go func() {
				defer wg.Done()
				out, err := cr.ReadAll(nil)
				if err != nil {
					report("ReadAll: %v", err)
					return
				}
				if !equalSlices(out, src) {
					report("ReadAll diverges from source")
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := cr.Verify(); err != nil {
					report("Verify: %v", err)
				}
			}()

			wg.Wait()
			close(fail)
			if err := <-fail; err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestScanSteadyStateAllocs proves the sequential hot path is
// allocation-free once warm: one pooled decode state serves frame parse,
// bit-unpack scratch and the delivered vector.
func TestScanSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; exactness only holds in normal builds")
	}
	src := rampValues(100_000)
	data := buildColumn[int64](t, zukowski.Auto[int64]{}, 4096, src)
	cr, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	var sink int64
	scan := func() {
		if err := cr.Scan(func(vals []int64) bool {
			sink += vals[0]
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	scan() // warm the state pool and the verified-checksum latches
	if avg := testing.AllocsPerRun(20, scan); avg != 0 {
		t.Fatalf("sequential Scan allocates %.1f times per pass in steady state, want 0", avg)
	}
	_ = sink
}

func equalSlices[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- benchmarks -----------------------------------------------------------

// benchReader builds an in-memory uint32 column of numBlocks compressed
// blocks and returns a shared reader plus the raw (uncompressed) byte
// count, the numerator of every scan-bandwidth claim.
func benchReader(b *testing.B, numBlocks, blockValues int) (*zukowski.ColumnReader[uint32], int64) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	n := numBlocks * blockValues
	src := make([]uint32, n)
	for i := range src {
		src[i] = uint32(i/64) + uint32(rng.Intn(32))
		if i%1013 == 0 {
			src[i] += 1 << 27
		}
	}
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter[uint32](&buf, zukowski.PFOR[uint32]{}, blockValues)
	if err != nil {
		b.Fatal(err)
	}
	if err := cw.Write(src); err != nil {
		b.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		b.Fatal(err)
	}
	cr, err := zukowski.OpenColumn[uint32](buf.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	// Warm the per-block checksum latches so every measured pass exercises
	// pure decode, matching the steady state of a resident column.
	if _, err := cr.ReadAll(nil); err != nil {
		b.Fatal(err)
	}
	return cr, int64(n * 4)
}

// BenchmarkScan is the sequential baseline; with -benchmem it demonstrates
// the 0 allocs/op steady state of the pooled decode path.
func BenchmarkScan(b *testing.B) {
	cr, rawBytes := benchReader(b, 64, 16384)
	b.SetBytes(rawBytes)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		if err := cr.Scan(func(vals []uint32) bool {
			sink += vals[0]
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
	_ = sink
}

// BenchmarkParallelScan scans the same 64-block uint32 column with a
// worker pool; the MB/s column divided by BenchmarkScan's is the scaling
// headline (near-linear until the core count or memory bandwidth caps it).
func BenchmarkParallelScan(b *testing.B) {
	cr, rawBytes := benchReader(b, 64, 16384)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(rawBytes)
			b.ReportAllocs()
			var sink uint32
			for i := 0; i < b.N; i++ {
				if err := cr.ParallelScan(workers, func(_ int, vals []uint32) bool {
					sink += vals[0]
					return true
				}); err != nil {
					b.Fatal(err)
				}
			}
			_ = sink
		})
	}
}

package zukowski

import (
	"context"
	"fmt"
)

// Query is the one-struct form of a ColumnSet scan: what to filter on,
// what to materialize, and how to run. It subsumes the ScanWhereAll /
// ParallelScanWhereAll / AggregateWhereAll entrypoint family — each of
// those is now a thin wrapper constructing a Query — and is the only
// form that reaches the expression tree: disjunctions, membership tests
// and nested AND/OR composition all arrive through Expr.
//
// The zero Query selects every row of every column, sequentially, with
// the fail-stop error contract.
type Query[T Integer] struct {
	// Expr filters rows with a predicate tree built from And, Or, Range
	// and In, evaluated in the compressed code domain with zone-map
	// pruning of whole AND-branches. The zero Expr selects every row.
	Expr Expr[T]

	// Preds is the conjunctive range-predicate form; it composes with
	// Expr by AND. The conjunction runs first, most-selective-first, and
	// the expression tree refines its bitmap. Query{Preds: preds} is
	// exactly the original ScanWhereAll contract.
	Preds []Pred[T]

	// Cols names the columns to materialize, by set index, in the order
	// given: fn's cols[i] holds column Cols[i]. nil materializes every
	// column of the set (cols[i] is set column i). Columns only used by
	// predicates need not appear — filtering never materializes them.
	Cols []int

	// Workers sets block-level parallelism. Values below 2 run the scan
	// sequentially on the calling goroutine.
	Workers int

	// InOrder makes a parallel scan deliver blocks in ascending block
	// order (see the InOrder scan option). Sequential scans are always
	// ordered.
	InOrder bool

	// SkipCorrupt runs the scan degraded: block-level data faults are
	// skipped — and accounted in Report when non-nil — instead of
	// failing the scan (see the SkipCorrupt scan option).
	SkipCorrupt bool

	// Report receives the degraded-scan accounting when SkipCorrupt is
	// set. May be nil to skip without accounting.
	Report *ScanReport
}

// config folds the Query's run options into a scan config. The zero
// option set shares the immutable default config, so optionless queries
// keep the steady-state scan paths allocation-free.
func (q *Query[T]) config() *scanConfig {
	if !q.InOrder && !q.SkipCorrupt && q.Report == nil {
		return &defaultScanConfig
	}
	return &scanConfig{ordered: q.InOrder, skip: q.SkipCorrupt, report: q.Report}
}

// checkQuery validates every column reference in q and reports whether
// the predicate conjunction is trivially empty.
func (cs *ColumnSet[T]) checkQuery(q *Query[T]) (empty bool, err error) {
	empty, err = cs.checkPreds(q.Preds)
	if err != nil {
		return false, err
	}
	if err := q.Expr.check(len(cs.cols)); err != nil {
		return false, err
	}
	for _, ci := range q.Cols {
		if ci < 0 || ci >= len(cs.cols) {
			return false, fmt.Errorf("%w: output column %d not in [0,%d)",
				ErrIndexOutOfRange, ci, len(cs.cols))
		}
	}
	return empty, nil
}

// queryMatch returns q's block predicate: a block survives only if no
// conjunction predicate's zone map excludes it and the expression tree's
// zone analysis cannot prove it empty.
func (cs *ColumnSet[T]) queryMatch(q *Query[T]) func(b int) bool {
	preds := cs.zoneMatchAll(q.Preds)
	if q.Expr.isZero() {
		return preds
	}
	e := &q.Expr
	return func(b int) bool {
		return preds(b) && !cs.exprExcludes(e, b)
	}
}

// Run executes q, invoking fn once per block with at least one surviving
// row: the global row numbers and, per requested column, the values of
// those rows. The slices are reused between calls; fn must copy what it
// keeps. fn returning false stops the scan early (still returning nil).
//
// Sequential runs (Workers < 2) deliver blocks in ascending order and
// consult ctx once per block; a warmed sequential Run with no options
// set performs no heap allocation, exactly like ScanWhereAll. Parallel
// runs deliver serialized but unordered unless InOrder is set, and stop
// claiming blocks once ctx is done.
func (cs *ColumnSet[T]) Run(ctx context.Context, q Query[T], fn func(block int, rows []int64, cols [][]T) bool) error {
	cfg := q.config()
	if q.Workers > 1 {
		return cs.runParallel(ctx, cfg, &q, q.Workers, fn)
	}
	return cs.runSeq(ctx, cfg, &q, fn)
}

// RunAggregate computes Count, Sum, Min and Max over column col's values
// at the rows q selects, without materializing any other column. The
// bitmap composes exactly as in Run; q.Cols is ignored.
func (cs *ColumnSet[T]) RunAggregate(ctx context.Context, q Query[T], col int) (Aggregate[T], error) {
	return cs.runAggregate(ctx, q.config(), &q, col)
}

// Project materializes the named columns at every row expr selects, in
// one pass: rows holds the global row numbers, vals[i] the values of
// column cols[i] at those rows. No cols materializes every column. The
// returned slices are freshly built and owned by the caller — Project is
// the collecting form of Run for result-set-sized outputs.
func (cs *ColumnSet[T]) Project(expr Expr[T], cols ...int) (rows []int64, vals [][]T, err error) {
	q := Query[T]{Expr: expr, Cols: cols}
	n := len(cols)
	if cols == nil {
		n = len(cs.cols)
	}
	vals = make([][]T, n)
	err = cs.Run(context.Background(), q, func(_ int, r []int64, c [][]T) bool {
		rows = append(rows, r...)
		for i := range c {
			vals[i] = append(vals[i], c[i]...)
		}
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, vals, nil
}

package zukowski_test

import (
	"bytes"
	"errors"
	"math/rand"
	"slices"
	"testing"

	"repro/zukowski"
)

// buildColumn writes vals through codec into a fresh in-memory container.
func buildSelectColumn[T zukowski.Integer](t testing.TB, codec zukowski.Codec[T], blockValues int, vals []T) *zukowski.ColumnReader[T] {
	t.Helper()
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter(&buf, codec, blockValues)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Write(vals); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	cr, err := zukowski.OpenColumn[T](buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return cr
}

// selectOracle is the decode-then-filter reference ScanSelect must match
// byte for byte.
func selectOracle[T zukowski.Integer](t testing.TB, cr *zukowski.ColumnReader[T], lo, hi T) (rows []int64, vals []T) {
	t.Helper()
	all, err := cr.ReadAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range all {
		if v >= lo && v <= hi {
			rows = append(rows, int64(i))
			vals = append(vals, v)
		}
	}
	return rows, vals
}

// collectSelect gathers a full ScanSelect pass.
func collectSelect[T zukowski.Integer](t testing.TB, cr *zukowski.ColumnReader[T], lo, hi T) (rows []int64, vals []T) {
	t.Helper()
	err := cr.ScanSelect(lo, hi, func(r []int64, v []T) bool {
		if len(r) != len(v) {
			t.Fatalf("ScanSelect handed %d rows but %d values", len(r), len(v))
		}
		if len(r) == 0 {
			t.Fatal("ScanSelect delivered an empty batch")
		}
		rows = append(rows, r...)
		vals = append(vals, v...)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows, vals
}

func checkColumnSelect[T zukowski.Integer](t *testing.T, cr *zukowski.ColumnReader[T], lo, hi T) {
	t.Helper()
	wantRows, wantVals := selectOracle(t, cr, lo, hi)
	gotRows, gotVals := collectSelect(t, cr, lo, hi)
	if !slices.Equal(gotRows, wantRows) {
		t.Fatalf("[%v,%v]: rows mismatch: got %d rows, want %d (first diff at %d)",
			lo, hi, len(gotRows), len(wantRows), firstDiff(gotRows, wantRows))
	}
	if !slices.Equal(gotVals, wantVals) {
		t.Fatalf("[%v,%v]: values mismatch", lo, hi)
	}

	agg, err := cr.AggregateWhere(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	var want zukowski.Aggregate[T]
	for _, v := range wantVals {
		if want.Count == 0 {
			want.Min, want.Max = v, v
		} else {
			want.Min, want.Max = min(want.Min, v), max(want.Max, v)
		}
		want.Count++
		want.Sum += int64(v)
	}
	if agg != want {
		t.Fatalf("[%v,%v]: AggregateWhere = %+v, want %+v", lo, hi, agg, want)
	}
}

func firstDiff[E comparable](a, b []E) int {
	for i := 0; i < min(len(a), len(b)); i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return min(len(a), len(b))
}

// columnRanges picks predicate windows across the distribution, plus the
// degenerate shapes.
func columnRanges[T zukowski.Integer](vals []T) [][2]T {
	sorted := slices.Clone(vals)
	slices.Sort(sorted)
	n := len(sorted)
	return [][2]T{
		{sorted[0], sorted[n-1]},
		{sorted[n/2], sorted[n/2]},
		{sorted[n/4], sorted[3*n/4]},
		{sorted[45*n/100], sorted[55*n/100]},
		{sorted[n-1] + 1, sorted[n-1] + 2}, // beyond max: zone maps prune all
		{sorted[n/2] + 1, sorted[n/2]},     // inverted
		{sorted[0], sorted[n/100]},
	}
}

// TestScanSelectOracleAllCodecs proves the acceptance contract: ScanSelect
// returns byte-for-byte identical (row, value) sets as decode-then-filter
// for every registered codec.
func TestScanSelectOracleAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	vals := make([]int64, 40_000)
	for i := range vals {
		vals[i] = int64(rng.Intn(50))
		if rng.Intn(25) == 0 {
			vals[i] = 100 + int64(rng.Intn(27))
		}
	}
	for _, name := range zukowski.Codecs() {
		codec, err := zukowski.Lookup[int64](name)
		if err != nil {
			continue
		}
		t.Run(name, func(t *testing.T) {
			cr := buildSelectColumn(t, codec, 4096, vals)
			for _, r := range columnRanges(vals) {
				checkColumnSelect(t, cr, r[0], r[1])
			}
		})
	}
}

// TestScanSelectSchemes drives the compressed-domain paths directly:
// forced PFOR (with exception densities from none to heavy), PFOR-DELTA on
// sorted data, PDICT with a shuffled dictionary (non-contiguous code
// remaps), across signed and unsigned element types.
func TestScanSelectSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(22))

	t.Run("pfor-exceptions", func(t *testing.T) {
		for _, rate := range []float64{0, 0.02, 0.25} {
			vals := make([]int32, 30_000)
			for i := range vals {
				vals[i] = -200 + rng.Int31n(1<<9)
				if rng.Float64() < rate {
					vals[i] = rng.Int31() - rng.Int31()
				}
			}
			cr := buildSelectColumn(t, zukowski.PFOR[int32]{}, 3000, vals)
			for _, r := range columnRanges(vals) {
				checkColumnSelect(t, cr, r[0], r[1])
			}
		}
	})

	t.Run("pfor-delta-sorted", func(t *testing.T) {
		vals := make([]uint64, 30_000)
		acc := uint64(0)
		for i := range vals {
			acc += uint64(rng.Intn(7))
			vals[i] = acc
		}
		cr := buildSelectColumn(t, zukowski.PFORDelta[uint64]{}, 3000, vals)
		for _, r := range columnRanges(vals) {
			checkColumnSelect(t, cr, r[0], r[1])
		}
	})

	t.Run("pdict-skewed", func(t *testing.T) {
		dict := []uint16{900, 3, 77, 12, 500, 45, 8, 301}
		vals := make([]uint16, 25_000)
		for i := range vals {
			vals[i] = dict[rng.Intn(len(dict))]
			if rng.Intn(40) == 0 {
				vals[i] = 60_000 + uint16(rng.Intn(1000))
			}
		}
		cr := buildSelectColumn(t, zukowski.PDict[uint16]{}, 2500, vals)
		for _, r := range columnRanges(vals) {
			checkColumnSelect(t, cr, r[0], r[1])
		}
	})

	t.Run("uint8-full-domain", func(t *testing.T) {
		vals := make([]uint8, 20_000)
		for i := range vals {
			vals[i] = uint8(rng.Intn(256))
		}
		cr := buildSelectColumn(t, zukowski.Auto[uint8]{}, 1000, vals)
		for _, r := range columnRanges(vals) {
			checkColumnSelect(t, cr, r[0], r[1])
		}
	})
}

// TestScanSelectEarlyStop verifies fn returning false stops after the
// current batch, exactly like Scan.
func TestScanSelectEarlyStop(t *testing.T) {
	vals := make([]int64, 10_000)
	for i := range vals {
		vals[i] = int64(i)
	}
	cr := buildSelectColumn(t, zukowski.PFORDelta[int64]{}, 1000, vals)
	calls := 0
	err := cr.ScanSelect(0, 9999, func(rows []int64, v []int64) bool {
		calls++
		return calls < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times after early stop, want 3", calls)
	}
}

// TestParallelScanSelectEquivalence checks the parallel filtered scan
// against the sequential one: exact sequence with InOrder, same multiset
// unordered, plus early-stop and zero-match ranges.
func TestParallelScanSelectEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	vals := make([]int64, 50_000)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 12)
		if rng.Intn(40) == 0 {
			vals[i] = rng.Int63n(1 << 30)
		}
	}
	cr := buildSelectColumn[int64](t, zukowski.PFOR[int64]{}, 4000, vals)
	for _, r := range columnRanges(vals) {
		lo, hi := r[0], r[1]
		wantRows, wantVals := selectOracle(t, cr, lo, hi)

		for _, workers := range []int{2, 4} {
			var rows []int64
			var got []int64
			err := cr.ParallelScanSelect(lo, hi, workers, func(_ int, r []int64, v []int64) bool {
				rows = append(rows, r...)
				got = append(got, v...)
				return true
			}, zukowski.InOrder())
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(rows, wantRows) || !slices.Equal(got, wantVals) {
				t.Fatalf("[%v,%v] workers=%d ordered: mismatch vs sequential", lo, hi, workers)
			}

			// Unordered: same multiset, and within a batch rows ascend.
			type pair struct {
				row int64
				val int64
			}
			var pairs []pair
			err = cr.ParallelScanSelect(lo, hi, workers, func(_ int, r []int64, v []int64) bool {
				for i := range r {
					pairs = append(pairs, pair{r[i], v[i]})
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			slices.SortFunc(pairs, func(a, b pair) int {
				switch {
				case a.row < b.row:
					return -1
				case a.row > b.row:
					return 1
				}
				return 0
			})
			if len(pairs) != len(wantRows) {
				t.Fatalf("[%v,%v] workers=%d unordered: %d matches, want %d", lo, hi, workers, len(pairs), len(wantRows))
			}
			for i, p := range pairs {
				if p.row != wantRows[i] || p.val != wantVals[i] {
					t.Fatalf("[%v,%v] workers=%d unordered: pair %d = %+v, want (%d,%d)",
						lo, hi, workers, i, p, wantRows[i], wantVals[i])
				}
			}
		}
	}

	// Early stop: at most one more delivery after false.
	deliveries := 0
	err := cr.ParallelScanSelect(0, 1<<30, 4, func(int, []int64, []int64) bool {
		deliveries++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if deliveries != 1 {
		t.Fatalf("%d deliveries after immediate stop, want 1", deliveries)
	}
}

// TestScanSelectCorruptBlock flips one payload bit and expects the typed
// checksum error from every filtered entry point, sequential and parallel.
func TestScanSelectCorruptBlock(t *testing.T) {
	vals := make([]int64, 20_000)
	for i := range vals {
		vals[i] = int64(i % 1000)
	}
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter[int64](&buf, zukowski.PFOR[int64]{}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Write(vals); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	data := bytes.Clone(buf.Bytes())
	data[len(data)/3] ^= 0x40 // somewhere inside a middle block's payload

	cr, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err) // directory is intact; the damage is in a payload
	}
	if err := cr.ScanSelect(0, 999, func([]int64, []int64) bool { return true }); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("ScanSelect on corrupt block: %v, want ErrChecksumMismatch", err)
	}
	if _, err := cr.AggregateWhere(0, 999); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("AggregateWhere on corrupt block: %v, want ErrChecksumMismatch", err)
	}
	if err := cr.ParallelScanSelect(0, 999, 4, func(int, []int64, []int64) bool { return true }); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("ParallelScanSelect on corrupt block: %v, want ErrChecksumMismatch", err)
	}
	if err := cr.ParallelScanSelect(0, 999, 4, func(int, []int64, []int64) bool { return true }, zukowski.InOrder()); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("ordered ParallelScanSelect on corrupt block: %v, want ErrChecksumMismatch", err)
	}
}

// TestScanSelectSteadyStateAllocs pins the 0 allocs/op contract of warmed
// sequential filtered scans.
func TestScanSelectSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation exactness is asserted in the non-race run")
	}
	rng := rand.New(rand.NewSource(24))
	vals := make([]int64, 64_000)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 10)
		if rng.Intn(50) == 0 {
			vals[i] = rng.Int63n(1 << 30)
		}
	}
	for _, name := range []string{"pfor", "pfor-delta", "pdict", "none"} {
		codec, err := zukowski.Lookup[int64](name)
		if err != nil {
			t.Fatal(err)
		}
		cr := buildSelectColumn(t, codec, 8000, vals)
		scan := func() {
			if err := cr.ScanSelect(10, 200, func([]int64, []int64) bool { return true }); err != nil {
				t.Fatal(err)
			}
			if _, err := cr.AggregateWhere(10, 200); err != nil {
				t.Fatal(err)
			}
		}
		scan() // warm the pooled state and block verification latches
		if avg := testing.AllocsPerRun(20, scan); avg != 0 {
			t.Errorf("%s: %v allocs/op on warmed ScanSelect+AggregateWhere, want 0", name, avg)
		}
	}
}

func BenchmarkScanSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	vals := make([]int64, 1<<20)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 10)
		if rng.Intn(50) == 0 {
			vals[i] = rng.Int63n(1 << 30)
		}
	}
	cr := buildSelectColumn(b, zukowski.PFOR[int64]{}, zukowski.DefaultBlockValues, vals)
	sorted := slices.Clone(vals)
	slices.Sort(sorted)
	lo, hi := sorted[45*len(sorted)/100], sorted[55*len(sorted)/100]
	raw := int64(len(vals) * 8)

	b.Run("ScanSelect-10pct", func(b *testing.B) {
		b.SetBytes(raw)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var n int
			if err := cr.ScanSelect(lo, hi, func(rows []int64, v []int64) bool { n += len(rows); return true }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ScanWhere-filter-10pct", func(b *testing.B) {
		b.SetBytes(raw)
		b.ReportAllocs()
		rows := make([]int64, 0, len(vals))
		out := make([]int64, 0, len(vals))
		for i := 0; i < b.N; i++ {
			base := 0
			if err := cr.ScanWhere(lo, hi, func(v []int64) bool {
				rows, out = rows[:0], out[:0]
				for j, x := range v {
					if x >= lo && x <= hi {
						rows = append(rows, int64(base+j))
						out = append(out, x)
					}
				}
				base += len(v)
				return true
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AggregateWhere-10pct", func(b *testing.B) {
		b.SetBytes(raw)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cr.AggregateWhere(lo, hi); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package zukowski

// Standalone frame decoding. A column container is not the only place a
// block frame can arrive from: a scan service that ships raw ZKC2 frames
// over the network (the paper's RAM–CPU argument extended to the wire —
// move compressed bits, decode at the consumer) hands the client exactly
// the per-block frames a ColumnWriter produced, stripped of their
// container. FrameDecoder decodes any such frame regardless of which
// registered codec wrote it, dispatching on the frame magic the way the
// column reader does, with full validation — a frame off the wire carries
// no container CRC, so the segment-level checksum is never skipped.

// FrameDecoder decodes standalone column block frames — the per-block
// byte strings a ColumnWriter emits, in any registered frame format
// (patched segments, raw, baselines, byte-stream codecs). The zero value
// is ready to use. A FrameDecoder reuses its parse and unpack scratch
// across calls, so decoding frame after frame allocates only when the
// destination grows; it is not safe for concurrent use — give each
// goroutine its own.
type FrameDecoder[T Integer] struct {
	st decodeState[T]
}

// Decode appends frame's values to dst, returning the extended slice.
// Corrupt or truncated frames return ErrCorruptSegment (never a panic);
// frames of an unknown format return ErrCorruptSegment as well.
func (d *FrameDecoder[T]) Decode(dst []T, frame []byte) ([]T, error) {
	return d.st.decodeInto(dst, frame, false)
}

// DecodeFrame decodes one standalone block frame with a throwaway
// FrameDecoder. Loops over many frames should hold a FrameDecoder
// instead, to reuse its scratch.
func DecodeFrame[T Integer](dst []T, frame []byte) ([]T, error) {
	var d FrameDecoder[T]
	return d.Decode(dst, frame)
}

package zukowski_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"slices"
	"testing"

	"repro/zukowski"
)

// FuzzFilteredScan is the differential fuzzer of the filtered-scan paths:
// whatever column the writer produces from arbitrary values — any codec,
// several element types, fuzzed block sizes, predicate windows picked from
// the data itself (including empty and inverted ones) — ScanSelect,
// AggregateWhere and ordered ParallelScanSelect must agree exactly with
// the decode-then-filter oracle. Exception density and clustering are
// whatever the fuzzed values induce, which over the corpus covers none,
// sparse, and compulsory-heavy patch lists.
func FuzzFilteredScan(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0), uint8(0), uint8(255), uint8(3))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(1), uint8(1), uint8(10), uint8(200), uint8(1))
	f.Add(bytes.Repeat([]byte{7}, 64), uint8(2), uint8(2), uint8(128), uint8(64), uint8(0)) // inverted window
	f.Add(binary.LittleEndian.AppendUint64(nil, 1<<40), uint8(3), uint8(3), uint8(0), uint8(255), uint8(7))

	names := zukowski.Codecs()
	f.Fuzz(func(t *testing.T, data []byte, codecSel, typeSel, loSel, hiSel, blockSel uint8) {
		name := names[int(codecSel)%len(names)]
		switch typeSel % 4 {
		case 0:
			fuzzFilteredScan[int64](t, name, data, loSel, hiSel, blockSel)
		case 1:
			fuzzFilteredScan[uint8](t, name, data, loSel, hiSel, blockSel)
		case 2:
			fuzzFilteredScan[int16](t, name, data, loSel, hiSel, blockSel)
		case 3:
			fuzzFilteredScan[uint32](t, name, data, loSel, hiSel, blockSel)
		}
	})
}

func fuzzFilteredScan[T zukowski.Integer](t *testing.T, name string, data []byte, loSel, hiSel, blockSel uint8) {
	codec, err := zukowski.Lookup[T](name)
	if err != nil {
		t.Skip()
	}
	var vals []T
	for chunk := data; len(chunk) > 0; {
		var tail [8]byte
		n := copy(tail[:], chunk)
		vals = append(vals, T(binary.LittleEndian.Uint64(tail[:])))
		chunk = chunk[n:]
	}

	var buf bytes.Buffer
	blockValues := 64 + int(blockSel)*97
	cw, err := zukowski.NewColumnWriter[T](&buf, codec, blockValues)
	if err != nil {
		t.Fatalf("NewColumnWriter: %v", err)
	}
	// Codecs with a bounded input domain (FOR's 32-bit spread, vbyte's
	// 32-bit values) reject some fuzzed datasets; that is their contract,
	// not a filtered-scan bug.
	if err := cw.Write(vals); err != nil {
		if errors.Is(err, zukowski.ErrWidthOutOfRange) || errors.Is(err, zukowski.ErrValueOutOfRange) {
			t.Skip()
		}
		t.Fatalf("Write: %v", err)
	}
	if err := cw.Close(); err != nil {
		if errors.Is(err, zukowski.ErrWidthOutOfRange) || errors.Is(err, zukowski.ErrValueOutOfRange) {
			t.Skip()
		}
		t.Fatalf("Close: %v", err)
	}
	cr, err := zukowski.OpenColumn[T](buf.Bytes())
	if err != nil {
		t.Fatalf("OpenColumn: %v", err)
	}

	all, err := cr.ReadAll(nil)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}

	// Predicate window from the data's own quantiles — loSel/hiSel pick
	// percentiles, so the corpus explores empty, inverted, point and wide
	// windows in the value domain that actually occurs.
	var lo, hi T
	if len(all) > 0 {
		sorted := slices.Clone(all)
		slices.Sort(sorted)
		lo = sorted[int(loSel)*len(sorted)/256]
		hi = sorted[int(hiSel)*len(sorted)/256]
	}

	var wantRows []int64
	var wantVals []T
	for i, v := range all {
		if v >= lo && v <= hi {
			wantRows = append(wantRows, int64(i))
			wantVals = append(wantVals, v)
		}
	}

	var gotRows []int64
	var gotVals []T
	if err := cr.ScanSelect(lo, hi, func(r []int64, v []T) bool {
		gotRows = append(gotRows, r...)
		gotVals = append(gotVals, v...)
		return true
	}); err != nil {
		t.Fatalf("%s: ScanSelect: %v", name, err)
	}
	if !slices.Equal(gotRows, wantRows) || !slices.Equal(gotVals, wantVals) {
		t.Fatalf("%s [%v,%v]: ScanSelect disagrees with oracle: got %d matches, want %d",
			name, lo, hi, len(gotRows), len(wantRows))
	}

	agg, err := cr.AggregateWhere(lo, hi)
	if err != nil {
		t.Fatalf("%s: AggregateWhere: %v", name, err)
	}
	var want zukowski.Aggregate[T]
	for _, v := range wantVals {
		if want.Count == 0 {
			want.Min, want.Max = v, v
		} else {
			want.Min, want.Max = min(want.Min, v), max(want.Max, v)
		}
		want.Count++
		want.Sum += int64(v)
	}
	if agg != want {
		t.Fatalf("%s [%v,%v]: AggregateWhere = %+v, want %+v", name, lo, hi, agg, want)
	}

	gotRows, gotVals = nil, nil
	if err := cr.ParallelScanSelect(lo, hi, 2, func(_ int, r []int64, v []T) bool {
		gotRows = append(gotRows, r...)
		gotVals = append(gotVals, v...)
		return true
	}, zukowski.InOrder()); err != nil {
		t.Fatalf("%s: ParallelScanSelect: %v", name, err)
	}
	if !slices.Equal(gotRows, wantRows) || !slices.Equal(gotVals, wantVals) {
		t.Fatalf("%s [%v,%v]: ordered ParallelScanSelect disagrees with oracle", name, lo, hi)
	}
}

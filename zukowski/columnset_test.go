package zukowski_test

import (
	"bytes"
	"errors"
	"math/rand"
	"slices"
	"testing"

	"repro/zukowski"
)

// oracleWhereAll is the decode-then-filter reference of a conjunctive
// scan: decode every column in full, keep the rows where every predicate
// holds, and return their row numbers plus each column's values there.
func oracleWhereAll[T zukowski.Integer](t testing.TB, cols []*zukowski.ColumnReader[T], preds []zukowski.Pred[T]) (rows []int64, vals [][]T) {
	t.Helper()
	all := make([][]T, len(cols))
	for i, cr := range cols {
		var err error
		if all[i], err = cr.ReadAll(nil); err != nil {
			t.Fatal(err)
		}
	}
	vals = make([][]T, len(cols))
	for i := 0; i < cols[0].Len(); i++ {
		ok := true
		for _, p := range preds {
			if v := all[p.Col][i]; v < p.Lo || v > p.Hi {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		rows = append(rows, int64(i))
		for c := range cols {
			vals[c] = append(vals[c], all[c][i])
		}
	}
	return rows, vals
}

// collectWhereAll gathers a full ScanWhereAll pass, checking the batch
// shape contract along the way.
func collectWhereAll[T zukowski.Integer](t testing.TB, cs *zukowski.ColumnSet[T], preds []zukowski.Pred[T]) (rows []int64, vals [][]T) {
	t.Helper()
	vals = make([][]T, cs.Columns())
	err := cs.ScanWhereAll(preds, func(r []int64, cols [][]T) bool {
		if len(r) == 0 {
			t.Fatal("ScanWhereAll delivered an empty batch")
		}
		if len(cols) != cs.Columns() {
			t.Fatalf("ScanWhereAll handed %d columns, set has %d", len(cols), cs.Columns())
		}
		for c := range cols {
			if len(cols[c]) != len(r) {
				t.Fatalf("column %d batch holds %d values for %d rows", c, len(cols[c]), len(r))
			}
			vals[c] = append(vals[c], cols[c]...)
		}
		rows = append(rows, r...)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows, vals
}

func checkWhereAll[T zukowski.Integer](t *testing.T, cs *zukowski.ColumnSet[T], cols []*zukowski.ColumnReader[T], preds []zukowski.Pred[T]) {
	t.Helper()
	wantRows, wantVals := oracleWhereAll(t, cols, preds)
	gotRows, gotVals := collectWhereAll(t, cs, preds)
	if !slices.Equal(gotRows, wantRows) {
		t.Fatalf("preds %v: rows mismatch: got %d, want %d", preds, len(gotRows), len(wantRows))
	}
	for c := range wantVals {
		if !slices.Equal(gotVals[c], wantVals[c]) {
			t.Fatalf("preds %v: column %d values mismatch", preds, c)
		}
	}

	// The aggregate over each column must fold exactly the oracle's values.
	for c := range cols {
		agg, err := cs.AggregateWhereAll(preds, c)
		if err != nil {
			t.Fatal(err)
		}
		var want zukowski.Aggregate[T]
		for _, v := range wantVals[c] {
			if want.Count == 0 {
				want.Min, want.Max = v, v
			} else {
				want.Min, want.Max = min(want.Min, v), max(want.Max, v)
			}
			want.Count++
			want.Sum += int64(v)
		}
		if agg != want {
			t.Fatalf("preds %v col %d: AggregateWhereAll = %+v, want %+v", preds, c, agg, want)
		}
	}
}

// synthColumn builds unsorted values with outliers, the worst case for
// zone maps and the home turf of compressed-domain selection.
func synthColumn(rng *rand.Rand, n int) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 12)
		if rng.Intn(40) == 0 {
			vals[i] = rng.Int63n(1 << 30)
		}
	}
	return vals
}

// TestScanWhereAllOracle drives conjunctive scans over two and three
// columns across codec mixes (patched, raw, baseline byte-stream) against
// the decode-then-filter oracle.
func TestScanWhereAllOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n = 40_000
	a := synthColumn(rng, n)
	b := synthColumn(rng, n)
	c := make([]int64, n) // clustered: kind to zone maps, orders predicates
	for i := range c {
		c[i] = int64(i / 100)
	}

	codecMixes := [][]string{
		{"pfor", "pfor", "pfor-delta"},
		{"pfor", "pdict", "none"},
		{"auto", "for", "flate"},
	}
	for _, mix := range codecMixes {
		cols := make([]*zukowski.ColumnReader[int64], 3)
		for i, vals := range [][]int64{a, b, c} {
			codec, err := zukowski.Lookup[int64](mix[i])
			if err != nil {
				t.Fatal(err)
			}
			cols[i] = buildSelectColumn(t, codec, 3000, vals)
		}
		cs, err := zukowski.NewColumnSet(cols...)
		if err != nil {
			t.Fatal(err)
		}
		predSets := [][]zukowski.Pred[int64]{
			nil, // empty conjunction: every row
			{{Col: 0, Lo: 0, Hi: 100}},
			{{Col: 0, Lo: 0, Hi: 500}, {Col: 1, Lo: 0, Hi: 500}},
			{{Col: 0, Lo: 0, Hi: 2000}, {Col: 1, Lo: 100, Hi: 3000}, {Col: 2, Lo: 50, Hi: 250}},
			{{Col: 0, Lo: 0, Hi: 1 << 31}, {Col: 1, Lo: 0, Hi: 1 << 31}}, // everything matches
			{{Col: 0, Lo: -5, Hi: -1}, {Col: 1, Lo: 0, Hi: 100}},         // first predicate empty
			{{Col: 0, Lo: 10, Hi: 5}},                                    // inverted: trivially empty
			{{Col: 0, Lo: 0, Hi: 800}, {Col: 0, Lo: 400, Hi: 4000}},      // same column twice
			{{Col: 2, Lo: 100, Hi: 120}, {Col: 0, Lo: 0, Hi: 600}},       // zone-prunable first
		}
		for _, preds := range predSets {
			checkWhereAll(t, cs, cols, preds)
		}
	}
}

// TestScanWhereAllEdgeGeometry pins bitmap edge cases: tail rows not a
// multiple of 32, single-row blocks, a single-value column, and empty and
// full selections over each.
func TestScanWhereAllEdgeGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, tc := range []struct {
		name        string
		n           int
		blockValues int
	}{
		{"tail-rows", 1037, 100}, // last block 37 rows, 37%32 != 0
		{"odd-blocks", 999, 31},  // every block 31 rows
		{"single-row-blocks", 65, 1},
		{"one-value", 1, 10},
		{"exact-word", 4096, 1024},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := synthColumn(rng, tc.n)
			b := synthColumn(rng, tc.n)
			colA := buildSelectColumn(t, zukowski.PFOR[int64]{}, tc.blockValues, a)
			colB := buildSelectColumn(t, zukowski.Auto[int64]{}, tc.blockValues, b)
			cs, err := zukowski.NewColumnSet(colA, colB)
			if err != nil {
				t.Fatal(err)
			}
			for _, preds := range [][]zukowski.Pred[int64]{
				{{Col: 0, Lo: 0, Hi: 1 << 40}, {Col: 1, Lo: 0, Hi: 1 << 40}}, // full bitmap
				{{Col: 0, Lo: -10, Hi: -1}},                                  // empty bitmap
				{{Col: 0, Lo: 0, Hi: 300}, {Col: 1, Lo: 0, Hi: 300}},
				{{Col: 0, Lo: a[tc.n-1], Hi: a[tc.n-1]}}, // the very last row's value
			} {
				checkWhereAll(t, cs, []*zukowski.ColumnReader[int64]{colA, colB}, preds)
			}
		})
	}
}

// TestColumnSetMismatch pins the typed geometry error: differing row
// counts, differing block boundaries, and the empty set.
func TestColumnSetMismatch(t *testing.T) {
	a := make([]int64, 1000)
	for i := range a {
		a[i] = int64(i)
	}
	base := buildSelectColumn(t, zukowski.PFOR[int64]{}, 100, a)

	if _, err := zukowski.NewColumnSet[int64](); !errors.Is(err, zukowski.ErrColumnSetMismatch) {
		t.Fatalf("empty set: %v, want ErrColumnSetMismatch", err)
	}

	short := buildSelectColumn(t, zukowski.PFOR[int64]{}, 100, a[:999])
	if _, err := zukowski.NewColumnSet(base, short); !errors.Is(err, zukowski.ErrColumnSetMismatch) {
		t.Fatalf("row-count mismatch: %v, want ErrColumnSetMismatch", err)
	}

	skewed := buildSelectColumn(t, zukowski.PFOR[int64]{}, 125, a)
	if _, err := zukowski.NewColumnSet(base, skewed); !errors.Is(err, zukowski.ErrColumnSetMismatch) {
		t.Fatalf("block-boundary mismatch: %v, want ErrColumnSetMismatch", err)
	}

	// Same geometry, different codecs: fine.
	other := buildSelectColumn(t, zukowski.PFORDelta[int64]{}, 100, a)
	cs, err := zukowski.NewColumnSet(base, other)
	if err != nil {
		t.Fatal(err)
	}

	// Predicate addressing a column outside the set is a typed error.
	bad := []zukowski.Pred[int64]{{Col: 2, Lo: 0, Hi: 10}}
	if err := cs.ScanWhereAll(bad, func([]int64, [][]int64) bool { return true }); !errors.Is(err, zukowski.ErrIndexOutOfRange) {
		t.Fatalf("out-of-range predicate column: %v, want ErrIndexOutOfRange", err)
	}
	if _, err := cs.AggregateWhereAll(nil, 5); !errors.Is(err, zukowski.ErrIndexOutOfRange) {
		t.Fatalf("out-of-range aggregate column: %v, want ErrIndexOutOfRange", err)
	}
}

// TestParallelScanWhereAllMatchesSequential checks the parallel
// conjunctive scan against the sequential one: ordered mode byte for
// byte, unordered mode as a multiset keyed by block.
func TestParallelScanWhereAllMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const n = 60_000
	a := synthColumn(rng, n)
	b := synthColumn(rng, n)
	colA := buildSelectColumn(t, zukowski.PFOR[int64]{}, 2500, a)
	colB := buildSelectColumn(t, zukowski.PFORDelta[int64]{}, 2500, b)
	cs, err := zukowski.NewColumnSet(colA, colB)
	if err != nil {
		t.Fatal(err)
	}
	preds := []zukowski.Pred[int64]{{Col: 0, Lo: 0, Hi: 700}, {Col: 1, Lo: 0, Hi: 900}}

	seq := map[int]csBatch{}
	var seqOrder []int
	if err := cs.ParallelScanWhereAll(preds, 1, func(blk int, rows []int64, cols [][]int64) bool {
		seq[blk] = csBatch{slices.Clone(rows), slices.Clone(cols[0]), slices.Clone(cols[1])}
		seqOrder = append(seqOrder, blk)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("predicates selected nothing; test data broken")
	}

	for _, workers := range []int{2, 4, 8} {
		// Ordered: identical sequence of (block, rows, values).
		var order []int
		got := map[int]csBatch{}
		if err := cs.ParallelScanWhereAll(preds, workers, func(blk int, rows []int64, cols [][]int64) bool {
			order = append(order, blk)
			got[blk] = csBatch{slices.Clone(rows), slices.Clone(cols[0]), slices.Clone(cols[1])}
			return true
		}, zukowski.InOrder()); err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(order, seqOrder) {
			t.Fatalf("%d workers ordered: block order %v, want %v", workers, order, seqOrder)
		}
		compareBatches(t, workers, got, seq)

		// Unordered: same multiset of per-block batches.
		got = map[int]csBatch{}
		if err := cs.ParallelScanWhereAll(preds, workers, func(blk int, rows []int64, cols [][]int64) bool {
			got[blk] = csBatch{slices.Clone(rows), slices.Clone(cols[0]), slices.Clone(cols[1])}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		compareBatches(t, workers, got, seq)
	}

	// Early stop: at most one more delivery after false.
	deliveries := 0
	if err := cs.ParallelScanWhereAll(preds, 4, func(int, []int64, [][]int64) bool {
		deliveries++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if deliveries != 1 {
		t.Fatalf("%d deliveries after immediate stop, want 1", deliveries)
	}
}

// csBatch is one delivered block of a two-column conjunctive scan.
type csBatch struct {
	rows []int64
	a, b []int64
}

func compareBatches(t *testing.T, workers int, got, want map[int]csBatch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d workers: %d delivered blocks, want %d", workers, len(got), len(want))
	}
	for blk, w := range want {
		g, ok := got[blk]
		if !ok {
			t.Fatalf("%d workers: block %d missing", workers, blk)
		}
		if !slices.Equal(g.rows, w.rows) || !slices.Equal(g.a, w.a) || !slices.Equal(g.b, w.b) {
			t.Fatalf("%d workers: block %d batch differs", workers, blk)
		}
	}
}

// TestScanWhereAllCorruptBlock flips a payload bit in one column and
// expects the typed checksum error from both scan forms and the
// aggregate.
func TestScanWhereAllCorruptBlock(t *testing.T) {
	vals := make([]int64, 20_000)
	for i := range vals {
		vals[i] = int64(i % 1000)
	}
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter[int64](&buf, zukowski.PFOR[int64]{}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Write(vals); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	data := bytes.Clone(buf.Bytes())
	data[len(data)/3] ^= 0x40
	bad, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	good := buildSelectColumn(t, zukowski.PFOR[int64]{}, 2000, vals)
	cs, err := zukowski.NewColumnSet(good, bad)
	if err != nil {
		t.Fatal(err)
	}
	preds := []zukowski.Pred[int64]{{Col: 0, Lo: 0, Hi: 999}, {Col: 1, Lo: 0, Hi: 999}}
	if err := cs.ScanWhereAll(preds, func([]int64, [][]int64) bool { return true }); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("ScanWhereAll on corrupt column: %v, want ErrChecksumMismatch", err)
	}
	if err := cs.ParallelScanWhereAll(preds, 4, func(int, []int64, [][]int64) bool { return true }); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("ParallelScanWhereAll on corrupt column: %v, want ErrChecksumMismatch", err)
	}
	if _, err := cs.AggregateWhereAll(preds, 1); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("AggregateWhereAll on corrupt column: %v, want ErrChecksumMismatch", err)
	}
}

// TestScanWhereAllZKC1 runs the conjunction over containers without zone
// maps: no pruning, no ordering estimates, same answers.
func TestScanWhereAllZKC1(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	const n = 20_000
	a := synthColumn(rng, n)
	b := synthColumn(rng, n)
	build := func(vals []int64) *zukowski.ColumnReader[int64] {
		var buf bytes.Buffer
		cw, err := zukowski.NewColumnWriter[int64](&buf, zukowski.PFOR[int64]{}, 1500,
			zukowski.WithFormatVersion(zukowski.FormatZKC1))
		if err != nil {
			t.Fatal(err)
		}
		if err := cw.Write(vals); err != nil {
			t.Fatal(err)
		}
		if err := cw.Close(); err != nil {
			t.Fatal(err)
		}
		cr, err := zukowski.OpenColumn[int64](buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		return cr
	}
	colA, colB := build(a), build(b)
	cs, err := zukowski.NewColumnSet(colA, colB)
	if err != nil {
		t.Fatal(err)
	}
	checkWhereAll(t, cs, []*zukowski.ColumnReader[int64]{colA, colB},
		[]zukowski.Pred[int64]{{Col: 0, Lo: 0, Hi: 600}, {Col: 1, Lo: 0, Hi: 600}})
}

// TestScanWhereAllSteadyStateAllocs pins the 0 allocs/op contract of
// warmed sequential conjunctive scans and aggregates.
func TestScanWhereAllSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation exactness is asserted in the non-race run")
	}
	rng := rand.New(rand.NewSource(35))
	const n = 64_000
	a := synthColumn(rng, n)
	b := synthColumn(rng, n)
	for _, mix := range [][2]string{{"pfor", "pfor"}, {"pfor", "pfor-delta"}, {"pdict", "none"}} {
		codecA, err := zukowski.Lookup[int64](mix[0])
		if err != nil {
			t.Fatal(err)
		}
		codecB, err := zukowski.Lookup[int64](mix[1])
		if err != nil {
			t.Fatal(err)
		}
		colA := buildSelectColumn(t, codecA, 8000, a)
		colB := buildSelectColumn(t, codecB, 8000, b)
		cs, err := zukowski.NewColumnSet(colA, colB)
		if err != nil {
			t.Fatal(err)
		}
		preds := []zukowski.Pred[int64]{{Col: 0, Lo: 10, Hi: 400}, {Col: 1, Lo: 10, Hi: 2000}}
		scan := func() {
			if err := cs.ScanWhereAll(preds, func([]int64, [][]int64) bool { return true }); err != nil {
				t.Fatal(err)
			}
			if _, err := cs.AggregateWhereAll(preds, 1); err != nil {
				t.Fatal(err)
			}
		}
		scan() // warm the pooled state and verification latches
		if avg := testing.AllocsPerRun(20, scan); avg != 0 {
			t.Errorf("%s+%s: %v allocs/op on warmed ScanWhereAll+AggregateWhereAll, want 0", mix[0], mix[1], avg)
		}
	}
}

func BenchmarkScanWhereAll(b *testing.B) {
	rng := rand.New(rand.NewSource(36))
	const n = 1 << 20
	av := synthColumn(rng, n)
	bv := synthColumn(rng, n)
	colA := buildSelectColumn(b, zukowski.PFOR[int64]{}, zukowski.DefaultBlockValues, av)
	colB := buildSelectColumn(b, zukowski.PFOR[int64]{}, zukowski.DefaultBlockValues, bv)
	cs, err := zukowski.NewColumnSet(colA, colB)
	if err != nil {
		b.Fatal(err)
	}
	raw := int64(2 * n * 8)
	// ~10% per column => ~1% conjunctive.
	preds := []zukowski.Pred[int64]{{Col: 0, Lo: 0, Hi: 400}, {Col: 1, Lo: 0, Hi: 400}}

	b.Run("ScanWhereAll-1pct", func(b *testing.B) {
		b.SetBytes(raw)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := cs.ScanWhereAll(preds, func([]int64, [][]int64) bool { return true }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-then-filter-1pct", func(b *testing.B) {
		b.SetBytes(raw)
		b.ReportAllocs()
		bufA := make([]int64, 0, zukowski.DefaultBlockValues)
		bufB := make([]int64, 0, zukowski.DefaultBlockValues)
		rows := make([]int64, 0, n)
		outA := make([]int64, 0, n)
		outB := make([]int64, 0, n)
		for i := 0; i < b.N; i++ {
			rows, outA, outB = rows[:0], outA[:0], outB[:0]
			base := int64(0)
			for blk := 0; blk < colA.NumBlocks(); blk++ {
				var err error
				if bufA, err = colA.ReadBlock(blk, bufA[:0]); err != nil {
					b.Fatal(err)
				}
				if bufB, err = colB.ReadBlock(blk, bufB[:0]); err != nil {
					b.Fatal(err)
				}
				for j := range bufA {
					if bufA[j] >= 0 && bufA[j] <= 400 && bufB[j] >= 0 && bufB[j] <= 400 {
						rows = append(rows, base+int64(j))
						outA = append(outA, bufA[j])
						outB = append(outB, bufB[j])
					}
				}
				base += int64(len(bufA))
			}
		}
	})
	b.Run("AggregateWhereAll-1pct", func(b *testing.B) {
		b.SetBytes(raw)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cs.AggregateWhereAll(preds, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package zukowski

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bitpack"
	"repro/internal/segment"
)

// Crash-safe column persistence and salvage. A container's directory
// lives at the end of the file, so a torn write — process death, ENOSPC,
// power loss mid-stream — leaves a file with valid frames but no footer,
// which the reader rejects wholesale. Two answers:
//
//   - WriteColumnAtomic never exposes a torn container: it writes to a
//     temp file in the destination directory, fsyncs, and renames into
//     place, so the destination path either holds the old bytes or the
//     complete new ones.
//
//   - RecoverColumn salvages a container whose footer is missing or
//     damaged by walking frames forward from the header. Every frame's
//     byte length is computable from its own header (segment.FrameSize;
//     the baseline FOR/DICT layouts likewise), so the walk needs no
//     directory: each candidate frame is fully decoded under untrusted
//     validation, and the walk stops at the first frame that fails —
//     truncation, bit rot, or the old directory bytes. The surviving
//     prefix is written out as a fresh ZKC2 container with a rebuilt
//     directory (checksums and zone maps recomputed from the decoded
//     values). This mirrors parquet's footer-recovery model: row groups
//     before the damage survive, everything after is gone.

// WriteColumnAtomic writes vals as a column container at path with
// all-or-nothing visibility: the container is streamed to a temp file in
// path's directory, fsynced, and renamed over path. A crash at any point
// leaves either the previous file (or no file) or the complete new
// container — never a torn one. codec and blockValues follow
// NewColumnWriter's defaults.
func WriteColumnAtomic[T Integer](path string, codec Codec[T], blockValues int, vals []T, opts ...ColumnOption) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	cw, err := NewColumnWriter[T](tmp, codec, blockValues, opts...)
	if err != nil {
		return err
	}
	if err = cw.Write(vals); err != nil {
		return err
	}
	if err = cw.Close(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Sync the directory so the rename itself survives a crash; best
	// effort, since not every filesystem supports fsync on a directory.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// RecoverColumnFile salvages the readable prefix of the container in r
// (see RecoverColumn) into a fresh container at path, with
// WriteColumnAtomic's all-or-nothing visibility: the rebuilt container is
// staged in a temp file in path's directory, fsynced, and renamed over
// path. Every failure — a recovery error, a failed write, sync, close or
// rename — closes and removes the temp file before returning, so a failed
// salvage never leaves a stray .tmp file for startup recovery to sweep.
func RecoverColumnFile[T Integer](r io.ReaderAt, size int64, path string) (RecoverStats, error) {
	return recoverColumnToFile[T](r, size, path, nil)
}

// recoverColumnToFile is RecoverColumnFile with an injectable writer
// wrapper, the seam the crash-safety tests use to tear the output stream
// at a chosen byte (faultio.Writer) and assert the cleanup contract.
func recoverColumnToFile[T Integer](r io.ReaderAt, size int64, path string, wrap func(io.Writer) io.Writer) (stats RecoverStats, err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return RecoverStats{BytesIn: size}, err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	w := io.Writer(tmp)
	if wrap != nil {
		w = wrap(w)
	}
	if stats, err = RecoverColumn[T](r, size, w); err != nil {
		return stats, err
	}
	if err = tmp.Sync(); err != nil {
		return stats, err
	}
	if err = tmp.Close(); err != nil {
		return stats, err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return stats, err
	}
	// Best-effort directory sync, as in WriteColumnAtomic.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return stats, nil
}

// RecoverStats summarizes a RecoverColumn pass.
type RecoverStats struct {
	// Blocks and Rows count what survived into the rebuilt container.
	Blocks int
	Rows   int64

	// BytesIn is the size of the damaged input; BytesOut the size of the
	// rebuilt container; DroppedBytes the input bytes not salvaged (for an
	// undamaged container this is exactly its old footer, which is rebuilt
	// rather than copied).
	BytesIn      int64
	BytesOut     int64
	DroppedBytes int64
}

// recoverProbeSize covers the longest header any sizable frame needs:
// segment headers are 44 bytes, baseline FOR needs 16, DICT needs 12.
const recoverProbeSize = 64

// RecoverColumn salvages the readable prefix of a column container whose
// directory footer is missing, torn or corrupt, writing a fresh ZKC2
// container to w. Frames are walked forward from the 16-byte header; each
// one is sized from its own header, fully decoded under untrusted
// validation (segment FNV checksums and all structural checks), and
// admitted only if it holds a plausible block. The walk stops at the
// first frame that fails — everything after a damaged frame is
// unreachable without a directory and is dropped. The rebuilt directory
// carries recomputed CRC32-C checksums and zone maps, so the output
// always passes Verify; recovering an intact container is a lossless
// footer rebuild (ZKC1 inputs are upgraded to ZKC2).
//
// A container whose damage reaches the 16-byte header, or whose element
// size does not match T, cannot be recovered and returns an error. Frames
// of codecs whose length is not header-derivable (vbyte and the
// byte-stream baselines) stop the walk. An output of zero blocks is still
// a valid, empty container.
func RecoverColumn[T Integer](r io.ReaderAt, size int64, w io.Writer) (RecoverStats, error) {
	stats := RecoverStats{BytesIn: size}
	if size < columnHeaderSize {
		return stats, fmt.Errorf("%w: %d bytes is too small for a container header", ErrCorruptColumn, size)
	}
	var hdr [columnHeaderSize]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return stats, fmt.Errorf("%w: %w reading header: %w", ErrCorruptColumn, ErrIO, err)
	}
	switch [4]byte(hdr[:4]) {
	case columnMagicV1, columnMagicV2:
	default:
		return stats, fmt.Errorf("%w: bad header magic", ErrCorruptColumn)
	}
	if int(hdr[4]) != elemSize[T]() {
		return stats, fmt.Errorf("%w: element size %d, recovering as %d", ErrCorruptColumn, hdr[4], elemSize[T]())
	}
	blockValues := int(binary.LittleEndian.Uint32(hdr[8:]))
	if blockValues <= 0 || blockValues > MaxBlockValues {
		return stats, fmt.Errorf("%w: block size %d values", ErrCorruptColumn, blockValues)
	}

	// Emit a canonical header first (always ZKC2 — the rebuilt directory
	// carries checksums and zone maps either way; damage to the input's
	// reserved header bytes is healed rather than copied), then stream
	// each frame as it validates.
	hdr = [columnHeaderSize]byte{}
	copy(hdr[:4], columnMagicV2[:])
	hdr[4] = byte(elemSize[T]())
	binary.LittleEndian.PutUint32(hdr[8:], uint32(blockValues))
	if _, err := w.Write(hdr[:]); err != nil {
		return stats, err
	}
	stats.BytesOut = columnHeaderSize

	var (
		dir   []columnBlock
		total uint64
		vals  []T
		probe [recoverProbeSize]byte
		off   = int64(columnHeaderSize)
	)
	for off < size {
		n, _ := r.ReadAt(probe[:min(int64(recoverProbeSize), size-off)], off)
		frameLen, err := sizeColumnFrame[T](probe[:n])
		if err != nil || off+int64(frameLen) > size {
			break
		}
		frame := make([]byte, frameLen)
		if _, err := r.ReadAt(frame, off); err != nil {
			break
		}
		if vals, err = decodeColumnFrame[T](vals[:0], frame); err != nil {
			break
		}
		if len(vals) == 0 || len(vals) > blockValues {
			break
		}
		if _, err := w.Write(frame); err != nil {
			return stats, err
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals[1:] {
			lo, hi = min(lo, v), max(hi, v)
		}
		dir = append(dir, columnBlock{
			offset:  uint64(off),
			length:  uint32(frameLen),
			count:   uint32(len(vals)),
			crc:     crc32.Checksum(frame, castagnoli),
			minBits: zoneBits(lo),
			maxBits: zoneBits(hi),
		})
		total += uint64(len(vals))
		off += int64(frameLen)
		stats.Blocks++
		stats.Rows += int64(len(vals))
		stats.BytesOut += int64(frameLen)
	}
	stats.DroppedBytes = size - off

	footer := appendFooter(nil, dir, total, FormatZKC2)
	if _, err := w.Write(footer); err != nil {
		return stats, err
	}
	stats.BytesOut += int64(len(footer))
	return stats, nil
}

// sizeColumnFrame returns the byte length of the frame whose header
// starts at buf[0], for the frame formats whose length is derivable from
// the header alone.
func sizeColumnFrame[T Integer](buf []byte) (int, error) {
	if len(buf) == 0 {
		return 0, corrupt(segment.ErrTooShort)
	}
	switch buf[0] {
	case segment.Magic:
		n, err := segment.FrameSize(buf)
		if err != nil {
			return 0, corrupt(err)
		}
		return n, nil
	case baselineMagic:
		return sizeBaselineFrame[T](buf)
	}
	return 0, corrupt(fmt.Errorf("unknown frame magic 0x%02x", buf[0]))
}

// sizeBaselineFrame sizes the baseline frames with header-derivable
// lengths: FOR (fixed sections) and DICT (dictionary length in the first
// payload word). VByte and the byte-stream frames end wherever their
// streams end, which only the directory knows.
func sizeBaselineFrame[T Integer](buf []byte) (int, error) {
	if len(buf) < 8 {
		return 0, corrupt(segment.ErrTooShort)
	}
	if int(buf[2]) != elemSize[T]() {
		return 0, corrupt(fmt.Errorf("element size %d, sizing as %d", buf[2], elemSize[T]()))
	}
	b := uint(buf[3])
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	if b > 32 || n > MaxBlockValues {
		return 0, corrupt(fmt.Errorf("baseline frame header b=%d n=%d", b, n))
	}
	switch buf[1] {
	case frameFOR:
		return 8 + 8 + 4*bitpack.WordCount(n, b), nil
	case frameDict:
		if len(buf) < 12 {
			return 0, corrupt(segment.ErrTooShort)
		}
		dictLen := int(binary.LittleEndian.Uint32(buf[8:]))
		if dictLen > 1<<24 {
			return 0, corrupt(fmt.Errorf("dict frame: %d dictionary entries", dictLen))
		}
		return 8 + 4 + 8*dictLen + 4*bitpack.WordCount(n, b), nil
	}
	return 0, corrupt(fmt.Errorf("frame id 0x%02x has no header-derivable length", buf[1]))
}

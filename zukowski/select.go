package zukowski

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/segment"
)

// Filtered scans: predicate evaluation pushed below decompression. Where
// ScanWhere only prunes at zone-map granularity and then hands every value
// of every candidate block to the caller, ScanSelect evaluates the range
// predicate inside the compressed domain (internal/core DecompressWhere):
// the packed code section is scanned by generated compare kernels and only
// the matching (row, value) pairs are ever materialized. AggregateWhere
// goes one step further and never materializes matches at all — for PFOR
// blocks the Sum/Min/Max/Count are derived from the matching codes plus
// the block base.

// Aggregate is the result of AggregateWhere over a column range predicate.
// Sum is the two's-complement (wrapping) sum of int64(v) over the matching
// values; Min and Max are only meaningful when Count > 0.
type Aggregate[T Integer] struct {
	Count int64
	Sum   int64
	Min   T
	Max   T
}

// merge folds one block's aggregate into the running column aggregate.
func (a *Aggregate[T]) merge(b core.Aggregate[T]) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 {
		a.Min, a.Max = b.Min, b.Max
	} else {
		if b.Min < a.Min {
			a.Min = b.Min
		}
		if b.Max > a.Max {
			a.Max = b.Max
		}
	}
	a.Count += int64(b.Count)
	a.Sum += b.Sum
}

// ScanSelect scans the column with the inclusive range predicate
// [lo, hi] evaluated below decompression, invoking fn once per block that
// contains at least one match with the global row numbers and values of
// the matches, in row order. Blocks are pruned by zone map first; surviving
// patched blocks are filtered in the compressed code domain, so values
// failing the predicate are never materialized (raw and baseline frames
// fall back to decode-then-filter). The slices are reused between calls;
// fn must copy what it keeps, and returning false stops the scan early.
//
// A warmed sequential ScanSelect performs no heap allocation: the scan
// holds one pooled decode state — selection scratch included — for its
// whole pass.
func (cr *ColumnReader[T]) ScanSelect(lo, hi T, fn func(rows []int64, vals []T) bool, opts ...ScanOption) error {
	return cr.scanSelect(parseScanOpts(opts), lo, hi, func(_ int, rows []int64, vals []T) bool { return fn(rows, vals) })
}

// scanSelect is the sequential filtered-scan loop shared by ScanSelect and
// the one-worker degenerate case of ParallelScanSelect.
func (cr *ColumnReader[T]) scanSelect(cfg *scanConfig, lo, hi T, fn func(block int, rows []int64, vals []T) bool) error {
	if lo > hi {
		return nil
	}
	st := cr.getState()
	defer cr.putState(st)
	for b := range cr.blocks {
		if cr.blockExcludes(b, lo, hi) {
			continue
		}
		rows, vals, err := cr.selectBlockInto(st, b, lo, hi)
		if err != nil {
			if cfg.skipBlock(int(cr.blocks[b].count), err) {
				continue
			}
			return err
		}
		if len(rows) == 0 {
			continue
		}
		if !fn(b, rows, vals) {
			return nil
		}
	}
	return nil
}

// ParallelScanSelect is ScanSelect across a block-granular worker pool,
// with ParallelScan's delivery contract: fn receives each matching block's
// rows and values exactly once, never concurrently, unordered unless
// InOrder is given; fn returning false (or a decode error) stops the scan.
// Blocks without matches are skipped without a delivery. Each worker owns
// one pooled decode state for the whole scan.
func (cr *ColumnReader[T]) ParallelScanSelect(lo, hi T, workers int, fn func(block int, rows []int64, vals []T) bool, opts ...ScanOption) error {
	if lo > hi {
		return nil
	}
	cfg := parseScanOpts(opts)
	seq := func() error { return cr.scanSelect(cfg, lo, hi, fn) }
	work := func(st *decodeState[T], b int) (func() bool, error) {
		rows, vals, err := cr.selectBlockInto(st, b, lo, hi)
		if err != nil {
			if cfg.skipBlock(int(cr.blocks[b].count), err) {
				return nil, nil
			}
			return nil, err
		}
		if len(rows) == 0 {
			return nil, nil
		}
		return func() bool { return fn(b, rows, vals) }, nil
	}
	return cr.parallelBlocks(cr.zoneMatch(lo, hi), workers, cfg, seq, work)
}

// selectBlockInto evaluates [lo, hi] over block b into st's reusable
// selection buffers, returning the global row numbers and values of the
// matches. Patched frames are filtered in the compressed domain; raw and
// baseline frames decode and filter. Crafted frames that defeat the header
// checks surface as ErrCorruptSegment, never a panic.
func (cr *ColumnReader[T]) selectBlockInto(st *decodeState[T], b int, lo, hi T) (rows []int64, vals []T, err error) {
	defer guardSegment(&err)
	frame, err := cr.frame(b)
	if err != nil {
		return nil, nil, err
	}
	start := int64(cr.starts[b])
	want := int(cr.blocks[b].count)
	if len(frame) > 0 && frame[0] == segment.Magic && segment.IsCompressed(frame) {
		if err := parseSegmentInto(&st.blk, frame, cr.trustedFrames()); err != nil {
			return nil, nil, fmt.Errorf("block %d: %w", b, corrupt(err))
		}
		if st.blk.N != want {
			return nil, nil, fmt.Errorf("%w: block %d holds %d values, directory says %d",
				ErrCorruptColumn, b, st.blk.N, want)
		}
		sel, fv := st.dec.DecompressWhere(&st.blk, lo, hi, st.sel[:0], st.fvals[:0])
		st.sel, st.fvals = sel, fv
		rows = st.rows[:0]
		for _, p := range sel {
			rows = append(rows, start+int64(p))
		}
		st.rows = rows
		return rows, fv, nil
	}
	// Raw or baseline frame: no compressed code domain to scan — decode
	// whole and filter, still through reusable buffers.
	dec, err := st.decodeInto(st.vals[:0], frame, cr.trustedFrames())
	if err != nil {
		return nil, nil, fmt.Errorf("block %d: %w", b, err)
	}
	st.vals = dec
	if len(dec) != want {
		return nil, nil, fmt.Errorf("%w: block %d holds %d values, directory says %d",
			ErrCorruptColumn, b, len(dec), want)
	}
	rows, fv := st.rows[:0], st.fvals[:0]
	for i, v := range dec {
		if v >= lo && v <= hi {
			rows = append(rows, start+int64(i))
			fv = append(fv, v)
		}
	}
	st.rows, st.fvals = rows, fv
	return rows, fv, nil
}

// AggregateWhere computes Count, Sum, Min and Max over every column value
// in the inclusive range [lo, hi], pushing the work below decompression:
// zone maps prune blocks, and inside each surviving patched block the
// aggregate is folded from the compressed form (for PFOR without widening
// a single code to T — Count by mask popcount, Sum from the code sum and
// the block base). An empty or inverted range yields Count == 0.
func (cr *ColumnReader[T]) AggregateWhere(lo, hi T, opts ...ScanOption) (Aggregate[T], error) {
	var agg Aggregate[T]
	if lo > hi {
		return agg, nil
	}
	cfg := parseScanOpts(opts)
	st := cr.getState()
	defer cr.putState(st)
	for b := range cr.blocks {
		if cr.blockExcludes(b, lo, hi) {
			continue
		}
		blockAgg, err := cr.aggregateBlock(st, b, lo, hi)
		if err != nil {
			if cfg.skipBlock(int(cr.blocks[b].count), err) {
				continue
			}
			return Aggregate[T]{}, err
		}
		agg.merge(blockAgg)
	}
	return agg, nil
}

// aggregateBlock folds block b's values in [lo, hi] without materializing
// them when the frame is patched-compressed.
func (cr *ColumnReader[T]) aggregateBlock(st *decodeState[T], b int, lo, hi T) (agg core.Aggregate[T], err error) {
	defer guardSegment(&err)
	frame, err := cr.frame(b)
	if err != nil {
		return agg, err
	}
	if len(frame) > 0 && frame[0] == segment.Magic && segment.IsCompressed(frame) {
		if err := parseSegmentInto(&st.blk, frame, cr.trustedFrames()); err != nil {
			return agg, fmt.Errorf("block %d: %w", b, corrupt(err))
		}
		return st.dec.AggregateWhere(&st.blk, lo, hi), nil
	}
	dec, err := st.decodeInto(st.vals[:0], frame, cr.trustedFrames())
	if err != nil {
		return agg, fmt.Errorf("block %d: %w", b, err)
	}
	st.vals = dec
	for _, v := range dec {
		if v >= lo && v <= hi {
			agg.Count++
			agg.Sum += int64(v)
			if agg.Count == 1 {
				agg.Min, agg.Max = v, v
			} else {
				if v < agg.Min {
					agg.Min = v
				}
				if v > agg.Max {
					agg.Max = v
				}
			}
		}
	}
	return agg, nil
}

package zukowski

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/baseline"
)

// Byte-stream baselines: the Figure-2 comparators that operate on opaque
// byte streams rather than integer arrays — DEFLATE (standing in for
// zlib), LZW and LZRW1 — adapted to the Codec contract behind a
// block-framing layer so registry-driven benchmarks, including the
// filtered-scan sweep, compare the patched schemes against them through
// one interface. Values are serialized little-endian and compressed as one
// stream per frame; the frame reuses the baseline header layout with a
// byte-stream codec id:
//
//	[0] frame magic 0xB6   [1] codec id   [2] element size   [3] zero
//	[4:8] value count (little-endian uint32)   [8:] compressed stream
//
// These codecs have no code domain and no entry points: Decode inflates
// the whole frame, Get decodes and indexes, and the filtered scans fall
// back to decode-then-filter — exactly the contrast the paper's Figure 2
// draws against the super-scalar schemes.

const (
	frameFlate byte = iota + 16 // byte-stream ids leave room below for array codecs
	frameLZW
	frameLZRW1
)

// byteStreamCompressor is the slice of internal/baseline a byte-stream
// frame needs: compression, and decompression with an output cap so a
// crafted frame cannot demand an oversized allocation.
type byteStreamCompressor interface {
	Compress(dst, src []byte) []byte
	DecompressLimit(dst, src []byte, max int) ([]byte, error)
}

// byteStream adapts one byte-stream compressor to Codec[T].
type byteStream[T Integer] struct {
	name string
	id   byte
	bc   byteStreamCompressor
}

// Name implements Codec.
func (c byteStream[T]) Name() string { return c.name }

// Encode implements Codec.
func (c byteStream[T]) Encode(dst []byte, src []T) ([]byte, error) {
	if err := checkLen(len(src)); err != nil {
		return nil, err
	}
	elem := elemSize[T]()
	raw := make([]byte, len(src)*elem)
	switch elem {
	case 1:
		for i, v := range src {
			raw[i] = byte(v)
		}
	case 2:
		for i, v := range src {
			binary.LittleEndian.PutUint16(raw[i*2:], uint16(v))
		}
	case 4:
		for i, v := range src {
			binary.LittleEndian.PutUint32(raw[i*4:], uint32(v))
		}
	default:
		for i, v := range src {
			binary.LittleEndian.PutUint64(raw[i*8:], uint64(v))
		}
	}
	dst = putBaselineHeader(dst, c.id, elem, 0, len(src))
	return c.bc.Compress(dst, raw), nil
}

// Decode implements Codec.
func (c byteStream[T]) Decode(dst []T, encoded []byte) ([]T, error) {
	_, n, payload, err := parseBaselineHeader[T](encoded, c.id)
	if err != nil {
		return nil, err
	}
	elem := elemSize[T]()
	raw, err := c.bc.DecompressLimit(nil, payload, n*elem)
	if err != nil {
		return nil, corrupt(fmt.Errorf("%s stream: %w", c.name, err))
	}
	if len(raw) != n*elem {
		return nil, corrupt(fmt.Errorf("%s stream inflated to %d bytes, header says %d values", c.name, len(raw), n))
	}
	dst, tail := grow(dst, n)
	switch elem {
	case 1:
		for i := range tail {
			tail[i] = T(raw[i])
		}
	case 2:
		for i := range tail {
			tail[i] = T(binary.LittleEndian.Uint16(raw[i*2:]))
		}
	case 4:
		for i := range tail {
			tail[i] = T(binary.LittleEndian.Uint32(raw[i*4:]))
		}
	default:
		for i := range tail {
			tail[i] = T(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	return dst, nil
}

// Get implements Codec. Byte-stream frames have no entry points; the whole
// frame is decoded.
func (c byteStream[T]) Get(encoded []byte, i int) (T, error) { return decodeAndIndex[T](c, encoded, i) }

// Stats implements Codec.
func (c byteStream[T]) Stats(encoded []byte) (Stats, error) {
	_, n, _, err := parseBaselineHeader[T](encoded, c.id)
	if err != nil {
		return Stats{}, err
	}
	return fillSizes(Stats{
		Scheme:    strings.ToUpper(c.name),
		NumValues: n,
	}, len(encoded), n*elemSize[T]()), nil
}

// byteStreamCodec returns the adapter for a byte-stream frame id, or nil.
func byteStreamCodec[T Integer](id byte) Codec[T] {
	switch id {
	case frameFlate:
		return byteStream[T]{"flate", frameFlate, baseline.Flate{}}
	case frameLZW:
		return byteStream[T]{"lzw", frameLZW, baseline.LZW{}}
	case frameLZRW1:
		return byteStream[T]{"lzrw1", frameLZRW1, baseline.LZRW1{}}
	}
	return nil
}

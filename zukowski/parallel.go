package zukowski

import (
	"runtime"
	"sync"

	"repro/internal/core"
)

// Parallel column scans. The paper closes by observing that its
// super-scalar decompression "can already improve this bandwidth on
// parallel architectures": one goroutine decodes PFOR at RAM-like speed,
// so saturating a multi-core machine means decoding many blocks at once.
// Blocks are the natural grain — each frame is self-contained, and the
// ZKC2 fetch path is stateless — so ParallelScan runs a block-granular
// worker pool (core.ParallelDo) over the candidate blocks. Each worker
// owns one pooled decode state for the whole scan and hands its vector to
// fn under a delivery mutex: decoding overlaps freely, delivery is
// serialized, and no channel hop or consumer goroutine sits on the per-
// block path.

// ScanOption configures the scan families: delivery order for the
// parallel scans (InOrder), degraded mode for all of them (SkipCorrupt).
type ScanOption func(*scanConfig)

type scanConfig struct {
	ordered bool
	skip    bool
	report  *ScanReport
}

// InOrder makes a parallel scan deliver vectors in block order — exactly
// the sequence a sequential Scan produces. Blocks still decode across all
// workers; a worker whose block is ready early waits its turn to deliver,
// so ordering can idle workers when block decode times vary widely.
func InOrder() ScanOption {
	return func(c *scanConfig) { c.ordered = true }
}

// ParallelScan decodes the column's blocks across up to workers goroutines
// (GOMAXPROCS when workers <= 0) and hands each decoded vector to fn along
// with its block index. Delivery is serialized — fn is never called
// concurrently, so it needs no locking of its own — and unordered by
// default: vectors arrive as blocks finish decoding. InOrder restores the
// sequential delivery order. The vector is reused once fn returns; fn must
// copy values it keeps. A panic in fn is re-raised on the calling
// goroutine.
//
// fn returning false stops the scan early: workers stop claiming blocks,
// in-flight blocks are discarded undelivered, and ParallelScan returns
// nil. A decode or I/O error stops the scan the same way; with InOrder the
// error surfaces exactly where the sequential scan would have hit it (or
// not at all, if fn stops first), while an unordered scan returns the
// first error delivered.
//
// ParallelScan is safe to run concurrently with any other method of the
// shared reader.
func (cr *ColumnReader[T]) ParallelScan(workers int, fn func(block int, vals []T) bool, opts ...ScanOption) error {
	return cr.parallelScan(nil, workers, fn, opts)
}

// ParallelScanWhere is ParallelScan restricted to the blocks whose zone
// map intersects the inclusive range [lo, hi], with the same pruning
// contract as ScanWhere: a skipped block is provably free of the range,
// and fn still applies the exact predicate to the vectors it receives.
func (cr *ColumnReader[T]) ParallelScanWhere(lo, hi T, workers int, fn func(block int, vals []T) bool, opts ...ScanOption) error {
	return cr.parallelScan(cr.zoneMatch(lo, hi), workers, fn, opts)
}

// parallelScan scans the blocks selected by match (nil selects every
// block) across a worker pool.
func (cr *ColumnReader[T]) parallelScan(match func(b int) bool, workers int, fn func(block int, vals []T) bool, opts []ScanOption) error {
	cfg := parseScanOpts(opts)
	seq := func() error { return cr.scanBlocks(cfg, match, fn) }
	work := func(st *decodeState[T], b int) (func() bool, error) {
		vals, err := cr.readBlockInto(st, b, st.vals[:0])
		st.vals = vals
		if err != nil {
			if cfg.skipBlock(int(cr.blocks[b].count), err) {
				return nil, nil
			}
			return nil, err
		}
		return func() bool { return fn(b, vals) }, nil
	}
	return cr.parallelBlocks(match, workers, cfg, seq, work)
}

// parallelBlocks is the block-parallel scan engine entry point of one
// column: it binds the shared engine to the reader's block count and
// decode-state pool. work decodes one block with a worker-owned state and
// returns a deliver closure (nil to deliver nothing, e.g. a filtered
// block without matches); seq is the one-worker degenerate case.
func (cr *ColumnReader[T]) parallelBlocks(match func(b int) bool, workers int, cfg *scanConfig,
	seq func() error, work func(st *decodeState[T], b int) (func() bool, error)) error {
	return parallelBlocksEngine(len(cr.blocks), workers, match, cfg, seq, cr.getState, cr.putState, work)
}

// parallelBlocksEngine is the block-parallel scan engine shared by
// ParallelScan, ParallelScanWhere, ParallelScanSelect and the ColumnSet
// scans (whose worker state spans several columns — hence the state type
// parameter). work decodes one block with a worker-owned state and
// returns a deliver closure (nil to deliver nothing); deliveries run
// serialized under the engine mutex — in rank order when InOrder is set —
// and a deliver returning false, a work error, or a panic in the delivery
// stops the scan with sequential-equivalent semantics. seq is the
// one-worker degenerate case.
func parallelBlocksEngine[S any](numBlocks, workers int, match func(b int) bool, cfg *scanConfig,
	seq func() error, getState func() S, putState func(S),
	work func(st S, b int) (func() bool, error)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The rank gate and worker pool need an indexable candidate list; the
	// one-worker degenerate case is exactly the sequential loop instead.
	var candidates []int
	n := numBlocks
	if workers > 1 && match != nil {
		candidates = make([]int, 0, n)
		for b := 0; b < numBlocks; b++ {
			if match(b) {
				candidates = append(candidates, b)
			}
		}
		n = len(candidates)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return seq()
	}
	blockAt := func(t int) int {
		if candidates != nil {
			return candidates[t]
		}
		return t
	}

	var (
		mu       sync.Mutex
		turn     = sync.NewCond(&mu) // ordered mode: gates delivery by rank
		next     int                 // ordered mode: next rank to deliver
		stopped  bool                // guarded by mu
		firstErr error
		panicked any
	)
	// call runs a delivery, converting a panic into a stop; the panic value
	// is re-raised on the calling goroutine once the pool has drained, so a
	// panicking fn behaves like it does under a sequential scan.
	call := func(deliver func() bool) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				panicked = r
				ok = false
			}
		}()
		return deliver()
	}
	// Tasks are claimed in rank order, so in ordered mode every rank below
	// the one a worker holds is either delivered or in flight; waiting for
	// next == t therefore cannot deadlock and buffers at most one decoded
	// block per worker.
	states := make([]S, workers)
	for w := range states {
		states[w] = getState()
	}
	core.ParallelDo(workers, n, func(w, t int) bool {
		deliver, err := work(states[w], blockAt(t))

		mu.Lock()
		defer mu.Unlock()
		if cfg.ordered {
			for next != t && !stopped {
				turn.Wait()
			}
			next = t + 1
			defer turn.Broadcast()
		}
		if stopped {
			return false
		}
		if err != nil {
			firstErr = err
			// Returning false makes ParallelDo stop handing out tasks;
			// workers mid-decode drain through the stopped check above.
			stopped = true
			return false
		}
		if deliver != nil && !call(deliver) {
			stopped = true
			return false
		}
		return true
	})
	for _, st := range states {
		putState(st)
	}
	if panicked != nil {
		panic(panicked)
	}
	return firstErr
}

package zukowski

import (
	"fmt"
	"reflect"
	"slices"
	"sync"
)

// The codec registry maps (name, element type) to a constructor, so tools
// and benchmarks enumerate schemes instead of hard-coding them. Every
// built-in codec is registered for all eight Integer element types at init
// time; user codecs join via Register.

type registryKey struct {
	name string
	elem reflect.Type
}

var (
	registryMu sync.RWMutex
	registry   = map[registryKey]func() any{}
	// registryNames keeps unique names in registration order.
	registryNames []string
)

// Register adds a codec constructor under a name for element type T. It
// overwrites a previous registration of the same (name, T) pair, which
// lets applications shadow a built-in with a tuned variant.
func Register[T Integer](name string, factory func() Codec[T]) {
	registryMu.Lock()
	defer registryMu.Unlock()
	key := registryKey{name, reflect.TypeFor[T]()}
	if _, exists := registry[key]; !exists && !slices.Contains(registryNames, name) {
		registryNames = append(registryNames, name)
	}
	registry[key] = func() any { return factory() }
}

// Lookup returns the codec registered under name for element type T, or
// ErrUnknownCodec.
func Lookup[T Integer](name string) (Codec[T], error) {
	registryMu.RLock()
	factory, ok := registry[registryKey{name, reflect.TypeFor[T]()}]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q for element type %v", ErrUnknownCodec, name, reflect.TypeFor[T]())
	}
	return factory().(Codec[T]), nil
}

// Codecs returns the names of all registered codecs in registration order
// (built-ins first). The slice is a copy; callers may keep it.
func Codecs() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return slices.Clone(registryNames)
}

// registerBuiltins registers every built-in codec for one element type:
// the patched schemes, the array baselines, and the Figure-2 byte-stream
// baselines behind their block-framing adapter.
func registerBuiltins[T Integer]() {
	Register("pfor", func() Codec[T] { return PFOR[T]{} })
	Register("pfor-delta", func() Codec[T] { return PFORDelta[T]{} })
	Register("pdict", func() Codec[T] { return PDict[T]{} })
	Register("none", func() Codec[T] { return None[T]{} })
	Register("auto", func() Codec[T] { return Auto[T]{} })
	Register("for", func() Codec[T] { return FOR[T]{} })
	Register("dict", func() Codec[T] { return Dict[T]{} })
	Register("vbyte", func() Codec[T] { return VByte[T]{} })
	Register("flate", func() Codec[T] { return byteStreamCodec[T](frameFlate) })
	Register("lzw", func() Codec[T] { return byteStreamCodec[T](frameLZW) })
	Register("lzrw1", func() Codec[T] { return byteStreamCodec[T](frameLZRW1) })
}

func init() {
	registerBuiltins[int8]()
	registerBuiltins[int16]()
	registerBuiltins[int32]()
	registerBuiltins[int64]()
	registerBuiltins[uint8]()
	registerBuiltins[uint16]()
	registerBuiltins[uint32]()
	registerBuiltins[uint64]()
}

package zukowski_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/zukowski"
)

// buildCtxSet builds a small multi-block two-column set for the context
// tests.
func buildCtxSet(t *testing.T) (*zukowski.ColumnSet[int64], []zukowski.Pred[int64]) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	n := 40_000
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = int64(i) // sorted: zone maps prune
		b[i] = rng.Int63n(1000)
	}
	ca, err := zukowski.OpenColumn[int64](buildColumn(t, zukowski.PFORDelta[int64]{}, 1024, a))
	if err != nil {
		t.Fatal(err)
	}
	cb, err := zukowski.OpenColumn[int64](buildColumn(t, zukowski.PFOR[int64]{}, 1024, b))
	if err != nil {
		t.Fatal(err)
	}
	set, err := zukowski.NewColumnSet(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	preds := []zukowski.Pred[int64]{{Col: 0, Lo: 0, Hi: int64(n)}, {Col: 1, Lo: 0, Hi: 999}}
	return set, preds
}

// TestScanWhereAllContextEquivalence: a background context changes
// nothing — same rows, same values as the context-free scan.
func TestScanWhereAllContextEquivalence(t *testing.T) {
	set, preds := buildCtxSet(t)
	var wantRows, gotRows []int64
	if err := set.ScanWhereAll(preds, func(rows []int64, _ [][]int64) bool {
		wantRows = append(wantRows, rows...)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := set.ScanWhereAllContext(context.Background(), preds, func(rows []int64, _ [][]int64) bool {
		gotRows = append(gotRows, rows...)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(wantRows) != len(gotRows) {
		t.Fatalf("context scan delivered %d rows, context-free %d", len(gotRows), len(wantRows))
	}
	for i := range wantRows {
		if wantRows[i] != gotRows[i] {
			t.Fatalf("row %d: context scan %d != context-free %d", i, gotRows[i], wantRows[i])
		}
	}
}

// TestScanWhereAllContextCancelled: a pre-cancelled context stops the
// scan before any delivery, returning context.Canceled.
func TestScanWhereAllContextCancelled(t *testing.T) {
	set, preds := buildCtxSet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := set.ScanWhereAllContext(ctx, preds, func([]int64, [][]int64) bool { calls++; return true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("fn called %d times under a dead context", calls)
	}
	if _, err := set.AggregateWhereAllContext(ctx, preds, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("aggregate err = %v, want context.Canceled", err)
	}
	err = set.ParallelScanWhereAllContext(ctx, preds, 4, func(int, []int64, [][]int64) bool { return true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel err = %v, want context.Canceled", err)
	}
}

// TestScanWhereAllContextMidScan: cancelling from inside fn stops the
// scan at the next block boundary — fn sees no delivery after the cancel
// — and the scan returns context.Canceled, distinguishing budget kills
// from fn's own voluntary early stop (which returns nil).
func TestScanWhereAllContextMidScan(t *testing.T) {
	set, preds := buildCtxSet(t)
	ctx, cancel := context.WithCancel(context.Background())
	deliveries, after := 0, 0
	err := set.ScanWhereAllContext(ctx, preds, func([]int64, [][]int64) bool {
		if ctx.Err() != nil {
			after++
		}
		deliveries++
		if deliveries == 2 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if deliveries != 2 || after != 0 {
		t.Fatalf("deliveries = %d (want 2), deliveries after cancel = %d (want 0)", deliveries, after)
	}
}

// TestScanWhereAllContextDeadline: an already-expired deadline surfaces
// as context.DeadlineExceeded from all three entry points.
func TestScanWhereAllContextDeadline(t *testing.T) {
	set, preds := buildCtxSet(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := set.ScanWhereAllContext(ctx, preds, func([]int64, [][]int64) bool { return true }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := set.AggregateWhereAllContext(ctx, preds, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("aggregate err = %v, want context.DeadlineExceeded", err)
	}
}

// TestParallelScanWhereAllContextMidScan: cancelling mid-flight stops a
// parallel scan with context.Canceled and no deliveries after the pool
// drains.
func TestParallelScanWhereAllContextMidScan(t *testing.T) {
	set, preds := buildCtxSet(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var deliveries int
	err := set.ParallelScanWhereAllContext(ctx, preds, 4, func(int, []int64, [][]int64) bool {
		deliveries++
		if deliveries == 2 {
			cancel()
		}
		return true
	})
	// The cancel can race the last block claims: either every remaining
	// block had already been claimed (nil) or the context stopped the scan.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
	if deliveries < 2 {
		t.Fatalf("deliveries = %d before cancel could fire", deliveries)
	}
}

// TestFrameDecoderRoundTrip: FrameDecoder decodes the standalone frames
// every registered codec emits, identically to the codec's own Decode.
func TestFrameDecoderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	src := make([]int64, 5000)
	for i := range src {
		src[i] = rng.Int63n(1 << 20)
	}
	var dec zukowski.FrameDecoder[int64]
	for _, name := range zukowski.Codecs() {
		codec, err := zukowski.Lookup[int64](name)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := codec.Encode(nil, src)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := dec.Decode(nil, frame)
		if err != nil {
			t.Fatalf("%s: FrameDecoder: %v", name, err)
		}
		if len(got) != len(src) {
			t.Fatalf("%s: decoded %d values, want %d", name, len(got), len(src))
		}
		for i := range src {
			if got[i] != src[i] {
				t.Fatalf("%s: value %d: got %d want %d", name, i, got[i], src[i])
			}
		}
	}
	// Corrupt and unknown frames fail typed, never panic.
	if _, err := zukowski.DecodeFrame[int64](nil, []byte{0x7f, 1, 2, 3}); !errors.Is(err, zukowski.ErrCorruptSegment) {
		t.Fatalf("unknown frame: err = %v, want ErrCorruptSegment", err)
	}
	if _, err := zukowski.DecodeFrame[int64](nil, nil); !errors.Is(err, zukowski.ErrCorruptSegment) {
		t.Fatalf("empty frame: err = %v, want ErrCorruptSegment", err)
	}
}

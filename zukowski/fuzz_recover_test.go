package zukowski_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/zukowski"
)

// recoverFuzzBase builds the pristine container the fuzzer damages, once
// per process: mixed magnitudes so blocks land on different codecs, small
// blocks so many frame boundaries fall inside the fuzzed range.
var recoverFuzzBase = sync.OnceValues(func() ([]byte, []int64) {
	rng := rand.New(rand.NewSource(1234))
	src := make([]int64, 2000)
	for i := range src {
		src[i] = rng.Int63n(1 << 12)
		if i%97 == 0 {
			src[i] = rng.Int63()
		}
	}
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter[int64](&buf, nil, 128)
	if err != nil {
		panic(err)
	}
	if err := cw.Write(src); err != nil {
		panic(err)
	}
	if err := cw.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes(), src
})

// FuzzRecoverColumn damages a valid container with a fuzzed truncation and
// bit-flip, then checks the salvage invariants differentially: recovery
// never panics, and when it succeeds the rebuilt container verifies end to
// end and agrees value-for-value with the original on every block that
// lies wholly before the damage.
func FuzzRecoverColumn(f *testing.F) {
	base, _ := recoverFuzzBase()
	f.Add(uint32(len(base)), uint32(0), byte(0))    // intact
	f.Add(uint32(len(base)-20), uint32(0), byte(0)) // torn tail
	f.Add(uint32(len(base)/2), uint32(0), byte(0))  // mid frame
	f.Add(uint32(len(base)), uint32(100), byte(1))  // early flip
	f.Add(uint32(len(base)), uint32(len(base)/2), byte(0x80))
	f.Add(uint32(17), uint32(3), byte(0xFF)) // header flip
	f.Fuzz(func(t *testing.T, cut uint32, flipOff uint32, flipMask byte) {
		base, src := recoverFuzzBase()
		damaged := bytes.Clone(base[:int(cut)%(len(base)+1)])
		damage := len(damaged) // first byte position the damage reaches
		if flipMask != 0 && len(damaged) > 0 {
			p := int(flipOff) % len(damaged)
			damaged[p] ^= flipMask
			damage = min(damage, p)
		}

		var out bytes.Buffer
		stats, err := zukowski.RecoverColumn[int64](bytes.NewReader(damaged), int64(len(damaged)), &out)
		if err != nil {
			return // refused (e.g. damage hit the header) — fine, no panic
		}

		// Whatever came back must be a fully valid container.
		cr, err := zukowski.OpenColumn[int64](out.Bytes())
		if err != nil {
			t.Fatalf("recovered container does not open: %v", err)
		}
		if err := cr.Verify(); err != nil {
			t.Fatalf("recovered container fails Verify: %v", err)
		}
		got, err := cr.ReadAll(nil)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(got)) != stats.Rows {
			t.Fatalf("stats say %d rows, container holds %d", stats.Rows, len(got))
		}

		// Differential check: every block of the original wholly before the
		// damage must have survived bit-exact, in order.
		want := src[:prefixRows[int64](t, base, damage)]
		if len(got) < len(want) {
			t.Fatalf("recovered %d rows, but %d rows lie before the damage", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d: recovered %d, original %d", i, got[i], want[i])
			}
		}
	})
}

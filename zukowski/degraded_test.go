package zukowski_test

import (
	"bytes"
	"errors"
	"math/rand"
	"slices"
	"testing"
	"time"

	"repro/internal/faultio"
	"repro/zukowski"
)

// corruptPayloadByte flips one byte in the middle of block b's payload and
// returns the block's directory row count — the rows a degraded scan must
// report lost when it skips the block.
func corruptPayloadByte[T zukowski.Integer](t *testing.T, data []byte, block int) int {
	t.Helper()
	cr, err := zukowski.OpenColumn[T](data)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cr.BlockInfo(block)
	if err != nil {
		t.Fatal(err)
	}
	data[int(info.Offset)+info.Length/2] ^= 0x04
	return info.Count
}

// blockRows returns [start, end) row numbers of block b in a column of
// uniform blockValues-sized blocks over n rows.
func blockRows(block, blockValues, n int) (int, int) {
	return block * blockValues, min((block+1)*blockValues, n)
}

// TestDegradedScanSkipCorrupt: a scan over a container with one corrupt
// block fails by default, but with SkipCorrupt completes, delivers exactly
// the surviving rows, and reports exactly the damaged block's rows lost.
func TestDegradedScanSkipCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	src := genValues[int64](rng, 4000)
	data := buildColumnV2(t, zukowski.PFOR[int64]{}, 512, src)
	const bad = 2
	lost := corruptPayloadByte[int64](t, data, bad)

	cr, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	// Default contract: fail-stop.
	if err := cr.Scan(func([]int64) bool { return true }); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("Scan err = %v, want ErrChecksumMismatch", err)
	}

	// Degraded: the scan completes and matches the decode oracle on the
	// surviving rows.
	lo, hi := blockRows(bad, 512, len(src))
	want := slices.Concat(src[:lo], src[hi:])
	var rep zukowski.ScanReport
	var got []int64
	if err := cr.Scan(func(vals []int64) bool {
		got = append(got, vals...)
		return true
	}, zukowski.SkipCorrupt(&rep)); err != nil {
		t.Fatalf("degraded Scan: %v", err)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("degraded Scan delivered %d rows, oracle %d", len(got), len(want))
	}
	if rep.BlocksSkipped != 1 || rep.RowsLost != int64(lost) || !rep.Degraded() {
		t.Fatalf("report = {blocks %d, rows %d}, want {1, %d}", rep.BlocksSkipped, rep.RowsLost, lost)
	}
	if !errors.Is(rep.FirstErr, zukowski.ErrChecksumMismatch) {
		t.Fatalf("FirstErr = %v, want ErrChecksumMismatch", rep.FirstErr)
	}

	// The persistent mismatch quarantined the block: later non-degraded
	// touches fail fast with the latched error.
	if got := cr.QuarantinedBlocks(); !slices.Equal(got, []int{bad}) {
		t.Fatalf("QuarantinedBlocks = %v, want [%d]", got, bad)
	}
	if _, err := cr.Get(lo + 1); !errors.Is(err, zukowski.ErrBlockQuarantined) {
		t.Fatalf("Get in quarantined block err = %v, want ErrBlockQuarantined", err)
	}
	// VerifyBlock bypasses the quarantine latch and re-checks the bytes.
	if err := cr.VerifyBlock(bad); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("VerifyBlock err = %v, want ErrChecksumMismatch", err)
	}
	// A second degraded pass skips via the latch and still matches.
	var rep2 zukowski.ScanReport
	got = got[:0]
	if err := cr.Scan(func(vals []int64) bool {
		got = append(got, vals...)
		return true
	}, zukowski.SkipCorrupt(&rep2)); err != nil || !slices.Equal(got, want) {
		t.Fatalf("second degraded Scan: err=%v rows=%d", err, len(got))
	}
	if !errors.Is(rep2.FirstErr, zukowski.ErrBlockQuarantined) {
		t.Fatalf("second pass FirstErr = %v, want ErrBlockQuarantined", rep2.FirstErr)
	}
}

// TestDegradedSelectAndAggregate: the filtered-scan and aggregate paths
// honor SkipCorrupt the same way, against the decode oracle.
func TestDegradedSelectAndAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	src := genValues[int64](rng, 5000)
	data := buildColumnV2(t, zukowski.PFOR[int64]{}, 512, src)
	const bad = 4
	lost := corruptPayloadByte[int64](t, data, bad)
	lo, hi := blockRows(bad, 512, len(src))

	cr, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	surviving := slices.Concat(src[:lo], src[hi:])
	plo, phi := int64(5), int64(40)

	// ScanSelect: fails by default, degraded pass matches filtering the
	// surviving rows.
	if err := cr.ScanSelect(plo, phi, func([]int64, []int64) bool { return true }); !errors.Is(err, zukowski.ErrCorruptColumn) {
		t.Fatalf("ScanSelect err = %v", err)
	}
	var rep zukowski.ScanReport
	var got []int64
	if err := cr.ScanSelect(plo, phi, func(_ []int64, vals []int64) bool {
		got = append(got, vals...)
		return true
	}, zukowski.SkipCorrupt(&rep)); err != nil {
		t.Fatalf("degraded ScanSelect: %v", err)
	}
	var want []int64
	for _, v := range surviving {
		if v >= plo && v <= phi {
			want = append(want, v)
		}
	}
	if !slices.Equal(got, want) {
		t.Fatalf("degraded ScanSelect selected %d, oracle %d", len(got), len(want))
	}
	if rep.BlocksSkipped != 1 || rep.RowsLost != int64(lost) {
		t.Fatalf("select report = %+v", &rep)
	}

	// AggregateWhere over the full domain: count is exactly the surviving
	// rows, sum matches the oracle.
	var agg zukowski.Aggregate[int64]
	minV, maxV := slices.Min(src), slices.Max(src)
	if _, err := cr.AggregateWhere(minV, maxV); !errors.Is(err, zukowski.ErrCorruptColumn) {
		t.Fatalf("AggregateWhere err = %v", err)
	}
	var arep zukowski.ScanReport
	agg, err = cr.AggregateWhere(minV, maxV, zukowski.SkipCorrupt(&arep))
	if err != nil {
		t.Fatalf("degraded AggregateWhere: %v", err)
	}
	var wantSum int64
	for _, v := range surviving {
		wantSum += v
	}
	if agg.Count != int64(len(surviving)) || agg.Sum != wantSum {
		t.Fatalf("degraded aggregate = %+v, want count %d sum %d", agg, len(surviving), wantSum)
	}
	if arep.RowsLost != int64(lost) {
		t.Fatalf("aggregate report = %+v", &arep)
	}
}

// TestDegradedParallelScanSelect: the parallel filtered scan skips the
// damaged block from whichever worker hits it, race-clean, and the report
// is still exact.
func TestDegradedParallelScanSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	src := genValues[int64](rng, 8000)
	data := buildColumnV2(t, zukowski.PFOR[int64]{}, 512, src)
	const bad = 7
	lost := corruptPayloadByte[int64](t, data, bad)
	lo, hi := blockRows(bad, 512, len(src))
	surviving := slices.Concat(src[:lo], src[hi:])

	cr, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	if err := cr.ParallelScanSelect(0, 1<<40, 4, func(int, []int64, []int64) bool { return true }); !errors.Is(err, zukowski.ErrCorruptColumn) {
		t.Fatalf("ParallelScanSelect err = %v", err)
	}
	for _, workers := range []int{1, 4} {
		var rep zukowski.ScanReport
		var got []int64
		if err := cr.ParallelScanSelect(0, 1<<40, workers, func(_ int, _ []int64, vals []int64) bool {
			got = append(got, vals...) // fn is never called concurrently
			return true
		}, zukowski.InOrder(), zukowski.SkipCorrupt(&rep)); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var want []int64
		for _, v := range surviving {
			if v >= 0 {
				want = append(want, v)
			}
		}
		if !slices.Equal(got, want) {
			t.Fatalf("workers=%d: %d rows, oracle %d", workers, len(got), len(want))
		}
		if rep.BlocksSkipped != 1 || rep.RowsLost != int64(lost) {
			t.Fatalf("workers=%d: report = %+v", workers, &rep)
		}
	}
}

// TestDegradedScanWhereAllParallel: conjunctive multi-column scans and
// aggregates skip a block that is corrupt in any member column, losing
// that block's rows across the whole set — sequential, parallel and
// context variants agree.
func TestDegradedScanWhereAllParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	a := genValues[int64](rng, 6000)
	b := genValues[int64](rng, 6000)
	dataA := buildColumnV2(t, zukowski.PFOR[int64]{}, 512, a)
	dataB := buildColumnV2(t, zukowski.PFOR[int64]{}, 512, b)
	const bad = 3
	lost := corruptPayloadByte[int64](t, dataB, bad)
	lo, hi := blockRows(bad, 512, len(a))

	crA, err := zukowski.OpenColumn[int64](dataA)
	if err != nil {
		t.Fatal(err)
	}
	crB, err := zukowski.OpenColumn[int64](dataB)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := zukowski.NewColumnSet(crA, crB)
	if err != nil {
		t.Fatal(err)
	}
	preds := []zukowski.Pred[int64]{{Col: 0, Lo: 0, Hi: 50}, {Col: 1, Lo: 0, Hi: 50}}

	// Oracle: filter rows outside the damaged block.
	var wantRows []int64
	var wantSum int64
	for i := range a {
		if i >= lo && i < hi {
			continue
		}
		if a[i] >= 0 && a[i] <= 50 && b[i] >= 0 && b[i] <= 50 {
			wantRows = append(wantRows, int64(i))
			wantSum += a[i]
		}
	}

	if err := cs.ScanWhereAll(preds, func([]int64, [][]int64) bool { return true }); !errors.Is(err, zukowski.ErrCorruptColumn) {
		t.Fatalf("ScanWhereAll err = %v", err)
	}

	var rep zukowski.ScanReport
	var gotRows []int64
	if err := cs.ScanWhereAll(preds, func(rows []int64, _ [][]int64) bool {
		gotRows = append(gotRows, rows...)
		return true
	}, zukowski.SkipCorrupt(&rep)); err != nil {
		t.Fatalf("degraded ScanWhereAll: %v", err)
	}
	if !slices.Equal(gotRows, wantRows) {
		t.Fatalf("degraded ScanWhereAll: %d rows, oracle %d", len(gotRows), len(wantRows))
	}
	if rep.BlocksSkipped != 1 || rep.RowsLost != int64(lost) {
		t.Fatalf("report = %+v, want 1 block / %d rows", &rep, lost)
	}

	var prep zukowski.ScanReport
	gotRows = gotRows[:0]
	if err := cs.ParallelScanWhereAll(preds, 4, func(_ int, rows []int64, _ [][]int64) bool {
		gotRows = append(gotRows, rows...)
		return true
	}, zukowski.InOrder(), zukowski.SkipCorrupt(&prep)); err != nil {
		t.Fatalf("degraded ParallelScanWhereAll: %v", err)
	}
	if !slices.Equal(gotRows, wantRows) || prep.BlocksSkipped != 1 {
		t.Fatalf("parallel: %d rows (oracle %d), report %+v", len(gotRows), len(wantRows), &prep)
	}

	var agrep zukowski.ScanReport
	agg, err := cs.AggregateWhereAll(preds, 0, zukowski.SkipCorrupt(&agrep))
	if err != nil {
		t.Fatalf("degraded AggregateWhereAll: %v", err)
	}
	if agg.Count != int64(len(wantRows)) || agg.Sum != wantSum {
		t.Fatalf("aggregate = %+v, want count %d sum %d", agg, len(wantRows), wantSum)
	}
}

// TestRetryTransientFaults: a source that fails a block read at most twice
// is invisible to a reader with a 3-attempt RetryPolicy, and fatal to one
// without.
func TestRetryTransientFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	src := genValues[int64](rng, 4000)
	data := buildColumnV2(t, zukowski.PFOR[int64]{}, 512, src)
	cr0, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cr0.BlockInfo(3)
	if err != nil {
		t.Fatal(err)
	}
	// Arm 2 transient failures on block 3's byte range only, so the
	// open-time header and footer reads stay clean.
	rules := []faultio.Rule{{Kind: faultio.TransientErr, Off: int64(info.Offset), Len: int64(info.Length), Count: 2}}

	// No policy: the first scan through block 3 dies with ErrIO.
	plain, err := zukowski.OpenColumnReaderAt[int64](faultio.NewReaderAt(bytes.NewReader(data), 1, rules...), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	err = plain.Scan(func([]int64) bool { return true })
	if !errors.Is(err, zukowski.ErrIO) || !errors.Is(err, zukowski.ErrCorruptColumn) {
		t.Fatalf("no-policy Scan err = %v, want ErrIO under ErrCorruptColumn", err)
	}
	if errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("I/O failure misclassified as checksum mismatch: %v", err)
	}
	// Transient means transient: the same reader succeeds once the fault
	// budget is exhausted, and nothing was quarantined.
	if len(plain.QuarantinedBlocks()) != 0 {
		t.Fatalf("transient fault quarantined blocks %v", plain.QuarantinedBlocks())
	}

	fr := faultio.NewReaderAt(bytes.NewReader(data), 1, rules...)
	retrying, err := zukowski.OpenColumnReaderAt[int64](fr, int64(len(data)),
		zukowski.WithRetryPolicy(zukowski.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := retrying.ReadAll(nil)
	if err != nil {
		t.Fatalf("ReadAll with RetryPolicy: %v", err)
	}
	if !slices.Equal(got, src) {
		t.Fatal("retried read diverges from source values")
	}
	if st := fr.Stats(); st.Injected[faultio.TransientErr] != 2 {
		t.Fatalf("injected %d transient faults, want 2", st.Injected[faultio.TransientErr])
	}
	if len(retrying.QuarantinedBlocks()) != 0 {
		t.Fatalf("retried-away fault quarantined blocks %v", retrying.QuarantinedBlocks())
	}
}

// TestRetryQuarantineFailFast: at-rest corruption through a ReaderAt
// source is re-read once, then quarantined — later touches fail fast
// without hitting the source, and the corrupt frame never enters an
// attached cache.
func TestRetryQuarantineFailFast(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	src := genValues[int64](rng, 4000)
	data := buildColumnV2(t, zukowski.PFOR[int64]{}, 512, src)
	cr0, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cr0.BlockInfo(1)
	if err != nil {
		t.Fatal(err)
	}
	// A persistent bit-flip in block 1's payload: every read of those bytes
	// comes back damaged.
	fr := faultio.NewReaderAt(bytes.NewReader(data), 1,
		faultio.Rule{Kind: faultio.BitFlip, Off: int64(info.Offset) + int64(info.Length)/2, Len: 1, Mask: 0x10})
	cache := zukowski.NewBlockLRU(1 << 20)
	cr, err := zukowski.OpenColumnReaderAt[int64](fr, int64(len(data)),
		zukowski.WithBlockCache(cache),
		zukowski.WithRetryPolicy(zukowski.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}

	row := 512 // first row of block 1
	_, err = cr.Get(row)
	if !errors.Is(err, zukowski.ErrBlockQuarantined) || !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("Get err = %v, want quarantined checksum mismatch", err)
	}
	if got := cr.QuarantinedBlocks(); !slices.Equal(got, []int{1}) {
		t.Fatalf("QuarantinedBlocks = %v", got)
	}

	// Checksum path reads the block, re-reads once to rule out in-flight
	// corruption, and must not touch the source again afterwards.
	before := fr.Stats().Reads
	for i := 0; i < 5; i++ {
		if _, err := cr.Get(row + i); !errors.Is(err, zukowski.ErrBlockQuarantined) {
			t.Fatalf("Get after quarantine err = %v", err)
		}
	}
	if after := fr.Stats().Reads; after != before {
		t.Fatalf("quarantined block still read the source: %d -> %d reads", before, after)
	}

	// Degraded scan over the same reader: surviving rows intact — which
	// also proves the corrupt frame never entered the cache.
	var rep zukowski.ScanReport
	var got []int64
	if err := cr.Scan(func(vals []int64) bool {
		got = append(got, vals...)
		return true
	}, zukowski.SkipCorrupt(&rep)); err != nil {
		t.Fatalf("degraded Scan: %v", err)
	}
	want := slices.Concat(src[:512], src[1024:])
	if !slices.Equal(got, want) {
		t.Fatalf("degraded Scan: %d rows, want %d", len(got), len(want))
	}
	if rep.BlocksSkipped != 1 || rep.RowsLost != 512 {
		t.Fatalf("report = %+v", &rep)
	}
}

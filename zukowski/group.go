package zukowski

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// Grouped aggregation in the compressed domain. GroupAggregate folds
// aggregate functions per distinct group key, and when a group column's
// block is dictionary-compressed (PDICT) it aggregates in code space:
// each selected row contributes under its dictionary code — a small
// dense integer — so the per-row work is an array index instead of a
// hash probe, and the dictionary is decoded once per block, per distinct
// code, when the block's accumulators flush into the result. Rows in
// exception slots (out-of-dictionary values, plus the compulsory patch
// entries the exception stride forces) and blocks that are not
// dictionary-compressed fall back to per-row hashing on the decoded
// values; both paths meet in the same result map.

// AggKind selects an aggregate function of GroupAggregate.
type AggKind uint8

const (
	// AggCount counts the group's rows; the spec's input is ignored.
	AggCount AggKind = iota
	// AggSum sums the spec's input over the group's rows.
	AggSum
	// AggMin takes the minimum of the spec's input over the group's rows.
	AggMin
	// AggMax takes the maximum of the spec's input over the group's rows.
	AggMax
)

// AggSpec is one aggregate of a GroupAggregate: the function and its
// per-row input. The input is column Col's value, or — when Map is set —
// an arbitrary derivation over the row's values: Map receives the
// block's materialized columns indexed by set column (cols[c] is non-nil
// exactly for the columns named in Cols, plus every group column) and
// the row's index within them, and returns the row's input. Cols names
// the set columns Map reads; Col is ignored when Map is set.
type AggSpec[T Integer] struct {
	Kind AggKind
	Col  int
	Cols []int
	Map  func(cols [][]T, i int) int64
}

// Grouped is the result of GroupAggregate: one entry per distinct group
// key, sorted lexicographically by key. Keys[g] holds group g's key —
// one value per group column, in groupCols order (empty when grouping by
// nothing) — and Aggs[g][s] holds spec s's result for group g.
type Grouped[T Integer] struct {
	Keys [][]T
	Aggs [][]int64
}

// maxFlatGroups caps the code-space path's flat accumulator: the product
// of the group columns' dictionary sizes must stay small enough that the
// per-block flat arrays are cheap to allocate and flush.
const maxFlatGroups = 4096

// aggInit returns kind's accumulator identity.
func aggInit(kind AggKind) int64 {
	switch kind {
	case AggMin:
		return math.MaxInt64
	case AggMax:
		return math.MinInt64
	default:
		return 0
	}
}

// aggMerge folds one partial accumulator into another under kind.
func aggMerge(kind AggKind, acc, part int64) int64 {
	switch kind {
	case AggMin:
		return min(acc, part)
	case AggMax:
		return max(acc, part)
	default: // AggCount, AggSum
		return acc + part
	}
}

// groupTable accumulates groups across blocks: a key-bytes map onto
// dense group indexes, with per-group aggregate cells.
type groupTable[T Integer] struct {
	specs []AggSpec[T]
	idx   map[string]int
	keys  [][]T
	cells [][]int64
	kb    []byte // key encoding scratch
}

func newGroupTable[T Integer](specs []AggSpec[T]) *groupTable[T] {
	return &groupTable[T]{specs: specs, idx: make(map[string]int)}
}

// group finds or creates the group of key, returning its cell slice.
// key is copied on creation; callers may reuse the slice.
func (gt *groupTable[T]) group(key []T) []int64 {
	kb := gt.kb[:0]
	for _, v := range key {
		kb = binary.LittleEndian.AppendUint64(kb, uint64(int64(v)))
	}
	gt.kb = kb
	if g, ok := gt.idx[string(kb)]; ok {
		return gt.cells[g]
	}
	cells := make([]int64, len(gt.specs))
	for s := range gt.specs {
		cells[s] = aggInit(gt.specs[s].Kind)
	}
	gt.idx[string(kb)] = len(gt.keys)
	gt.keys = append(gt.keys, append([]T(nil), key...))
	gt.cells = append(gt.cells, cells)
	return cells
}

// result sorts the accumulated groups lexicographically by key.
func (gt *groupTable[T]) result() Grouped[T] {
	ord := make([]int, len(gt.keys))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		ka, kc := gt.keys[ord[a]], gt.keys[ord[b]]
		for i := range ka {
			if ka[i] != kc[i] {
				return ka[i] < kc[i]
			}
		}
		return false
	})
	res := Grouped[T]{Keys: make([][]T, len(ord)), Aggs: make([][]int64, len(ord))}
	for i, g := range ord {
		res.Keys[i] = gt.keys[g]
		res.Aggs[i] = gt.cells[g]
	}
	return res
}

// rowInput returns spec s's input for row i of the block's materialized
// columns.
func rowInput[T Integer](spec *AggSpec[T], cols [][]T, i int) int64 {
	if spec.Map != nil {
		return spec.Map(cols, i)
	}
	if spec.Kind == AggCount {
		return 0
	}
	return int64(cols[spec.Col][i])
}

// applyRow folds row i directly into a group's cells (the hash path).
func applyRow[T Integer](specs []AggSpec[T], cells []int64, cols [][]T, i int) {
	for s := range specs {
		switch specs[s].Kind {
		case AggCount:
			cells[s]++
		default:
			cells[s] = aggMerge(specs[s].Kind, cells[s], rowInput(&specs[s], cols, i))
		}
	}
}

// GroupAggregate evaluates expr over the set and folds the aggregate
// specs per distinct combination of the group columns' values, in one
// sequential pass. The result has one entry per group, sorted
// lexicographically by key; an empty groupCols folds everything the
// expression selects into a single group with an empty key (and an
// expression selecting nothing yields no groups at all).
//
// Group columns whose blocks are dictionary-compressed are aggregated in
// code space — see the package comment above AggKind — so a low-
// cardinality GROUP BY over PDICT columns never hashes per row. The
// aggregate inputs themselves are materialized only at the selected
// rows, exactly like a scan.
//
// The scan options are those of ScanWhereAll (SkipCorrupt; InOrder is
// meaningless for a sequential fold).
func (cs *ColumnSet[T]) GroupAggregate(expr Expr[T], groupCols []int, specs []AggSpec[T], opts ...ScanOption) (Grouped[T], error) {
	var zero Grouped[T]
	q := Query[T]{Expr: expr}
	if _, err := cs.checkQuery(&q); err != nil {
		return zero, err
	}
	need := make([]bool, len(cs.cols))
	for _, ci := range groupCols {
		if ci < 0 || ci >= len(cs.cols) {
			return zero, fmt.Errorf("%w: group column %d not in [0,%d)", ErrIndexOutOfRange, ci, len(cs.cols))
		}
		need[ci] = true
	}
	for s := range specs {
		if specs[s].Map != nil {
			for _, ci := range specs[s].Cols {
				if ci < 0 || ci >= len(cs.cols) {
					return zero, fmt.Errorf("%w: aggregate input column %d not in [0,%d)", ErrIndexOutOfRange, ci, len(cs.cols))
				}
				need[ci] = true
			}
			continue
		}
		if specs[s].Kind == AggCount {
			continue
		}
		if specs[s].Col < 0 || specs[s].Col >= len(cs.cols) {
			return zero, fmt.Errorf("%w: aggregate column %d not in [0,%d)", ErrIndexOutOfRange, specs[s].Col, len(cs.cols))
		}
		need[specs[s].Col] = true
	}

	cfg := parseScanOpts(opts)
	st := cs.getState()
	defer cs.putState(st)
	gt := newGroupTable(specs)
	colsBuf := make([][]T, len(cs.cols))
	key := make([]T, len(groupCols))
	dictLens := make([]int, len(groupCols))
	if cap(st.codes) < len(groupCols) {
		st.codes = make([][]int32, len(groupCols))
	}
	codes := st.codes[:len(groupCols)]
	var flatCells []int64 // specs-major: flatCells[s*P+code]
	var flatCount []int64
	var touched []int32

	match := cs.queryMatch(&q)
	for b := range cs.cols[0].blocks {
		if !match(b) {
			continue
		}
		nrows, err := cs.groupBlock(st, &q, b, groupCols, specs, need, gt,
			colsBuf, key, dictLens, codes, &flatCells, &flatCount, &touched)
		if err != nil {
			if cfg.skipBlock(nrows, err) {
				continue
			}
			return zero, err
		}
	}
	return gt.result(), nil
}

// groupBlock folds one block into gt. It returns the block's directory
// row count alongside any error, for degraded-mode accounting.
func (cs *ColumnSet[T]) groupBlock(st *setState[T], q *Query[T], b int,
	groupCols []int, specs []AggSpec[T], need []bool, gt *groupTable[T],
	colsBuf [][]T, key []T, dictLens []int, codes [][]int32,
	flatCells, flatCount *[]int64, touched *[]int32,
) (nrows int, err error) {
	nrows = int(cs.cols[0].blocks[b].count)
	any, err := cs.blockMaskQuery(st, b, q)
	if err != nil || !any {
		return nrows, err
	}
	defer guardSegment(&err)
	for ci := range cs.cols {
		colsBuf[ci] = nil
		if !need[ci] {
			continue
		}
		vals, err := cs.gatherCol(&st.cols[ci], ci, b, &st.sv)
		if err != nil {
			return nrows, err
		}
		colsBuf[ci] = vals
	}
	n := st.sv.Count()

	// Code-space gate: every group column's block dictionary-compressed,
	// flat accumulator small. Grouping by nothing is the trivial flat
	// case — one cell, no codes.
	flat, product := true, 1
	for gi, ci := range groupCols {
		cst := &st.cols[ci]
		if cst.form != colSeg || cst.blk.Scheme != core.SchemePDict {
			flat = false
			break
		}
		dictLens[gi] = cst.blk.DictLen
		if product *= cst.blk.DictLen; product > maxFlatGroups {
			flat = false
			break
		}
	}
	if !flat {
		for i := 0; i < n; i++ {
			for gi, ci := range groupCols {
				key[gi] = colsBuf[ci][i]
			}
			applyRow(specs, gt.group(key), colsBuf, i)
		}
		return nrows, nil
	}

	for gi, ci := range groupCols {
		cst := &st.cols[ci]
		codes[gi] = cst.dec.DecompressSelectedCodes(&cst.blk, &st.sv, codes[gi][:0])
	}
	if cap(*flatCount) < product {
		*flatCount = make([]int64, product)
		*flatCells = make([]int64, len(specs)*product)
	}
	count := (*flatCount)[:product]
	cells := (*flatCells)[:len(specs)*product]
	tl := (*touched)[:0]
	for i := 0; i < n; i++ {
		code, ok := 0, true
		for gi := range groupCols {
			c := codes[gi][i]
			if c < 0 {
				ok = false
				break
			}
			code = code*dictLens[gi] + int(c)
		}
		if !ok {
			// Exception slot: the row's true value may be out of the
			// dictionary — fold it through the hash path on values.
			for gi, ci := range groupCols {
				key[gi] = colsBuf[ci][i]
			}
			applyRow(specs, gt.group(key), colsBuf, i)
			continue
		}
		if count[code] == 0 {
			tl = append(tl, int32(code))
			for s := range specs {
				cells[s*product+code] = aggInit(specs[s].Kind)
			}
		}
		count[code]++
		for s := range specs {
			if specs[s].Kind == AggCount {
				continue
			}
			cells[s*product+code] = aggMerge(specs[s].Kind, cells[s*product+code], rowInput(&specs[s], colsBuf, i))
		}
	}
	// Flush: decode each touched combined code back into key values via
	// the block dictionaries (mixed-radix, last column fastest) and merge
	// the block-local cells into the global table.
	for _, tc := range tl {
		code := int(tc)
		rem := code
		for gi := len(groupCols) - 1; gi >= 0; gi-- {
			ci := groupCols[gi]
			key[gi] = st.cols[ci].blk.Dict[rem%dictLens[gi]]
			rem /= dictLens[gi]
		}
		g := gt.group(key)
		for s := range specs {
			part := cells[s*product+code]
			if specs[s].Kind == AggCount {
				part = count[code]
			}
			g[s] = aggMerge(specs[s].Kind, g[s], part)
		}
		count[code] = 0
	}
	*touched = tl[:0]
	return nrows, nil
}

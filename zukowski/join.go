package zukowski

import (
	"repro/internal/core"
)

// Hash join with the probe side in the compressed domain. The build side
// is an ordinary hash table from key value to build-row indexes; the
// probe side is a ColumnSet scan that, when the probe key column's block
// is dictionary-compressed, probes the hash table once per dictionary
// entry instead of once per row — the per-row work collapses to an array
// index by dictionary code. Rows in exception slots and blocks that are
// not dictionary-compressed probe the table on their decoded values.

// JoinTable is the build side of a hash join: each distinct key value
// maps to the build rows holding it. Build once, probe from any number
// of scans (the table is immutable after BuildJoin).
type JoinTable[T Integer] struct {
	rows map[T][]int32
}

// BuildJoin indexes the build side: keys[i] is build row i's join key.
// Duplicate keys are kept — the join is many-to-many.
func BuildJoin[T Integer](keys []T) *JoinTable[T] {
	jt := &JoinTable[T]{rows: make(map[T][]int32, len(keys))}
	for i, k := range keys {
		jt.rows[k] = append(jt.rows[k], int32(i))
	}
	return jt
}

// Len returns the number of distinct keys in the table.
func (jt *JoinTable[T]) Len() int { return len(jt.rows) }

// Rows returns the build rows holding key, nil when absent. The returned
// slice is the table's own — don't mutate it.
func (jt *JoinTable[T]) Rows(key T) []int32 { return jt.rows[key] }

// JoinOn probes the table with column probeCol of every row expr
// selects, invoking fn once per block that produced at least one match
// with aligned pair slices: probe row probeRows[i] joined build row
// buildRows[i]. A probe row matching k build rows contributes k pairs,
// in build order; probe rows without a match contribute nothing (inner
// join). The slices are reused between calls; fn must copy what it
// keeps, and returning false stops the scan.
//
// When the probe block is dictionary-compressed the table is probed once
// per dictionary entry, and each row then joins by its dictionary code;
// only exception-slot rows probe the table individually, on their
// materialized values.
func (cs *ColumnSet[T]) JoinOn(expr Expr[T], probeCol int, jt *JoinTable[T], fn func(probeRows []int64, buildRows []int32) bool, opts ...ScanOption) (err error) {
	q := Query[T]{Expr: expr}
	if _, err := cs.checkQuery(&q); err != nil {
		return err
	}
	if _, err := cs.checkQuery(&Query[T]{Cols: []int{probeCol}}); err != nil {
		return err
	}
	cfg := parseScanOpts(opts)
	st := cs.getState()
	defer cs.putState(st)
	var (
		pr       []int64
		br       []int32
		codes    []int32
		dictRows [][]int32 // build matches per dictionary code of the current block
	)
	match := cs.queryMatch(&q)
	for b := range cs.cols[0].blocks {
		if !match(b) {
			continue
		}
		stop, err := func() (stop bool, err error) {
			any, err := cs.blockMaskQuery(st, b, &q)
			if err != nil || !any {
				return false, err
			}
			defer guardSegment(&err)
			cst := &st.cols[probeCol]
			vals, err := cs.gatherCol(cst, probeCol, b, &st.sv)
			if err != nil {
				return false, err
			}
			st.rows = st.sv.AppendRows(st.rows[:0], int64(cs.cols[0].starts[b]))
			pr, br = pr[:0], br[:0]
			if cst.form == colSeg && cst.blk.Scheme == core.SchemePDict {
				dictRows = dictRows[:0]
				for _, v := range cst.blk.Dict[:cst.blk.DictLen] {
					dictRows = append(dictRows, jt.rows[v])
				}
				codes = cst.dec.DecompressSelectedCodes(&cst.blk, &st.sv, codes[:0])
				for i, c := range codes {
					var matches []int32
					if c < 0 {
						matches = jt.rows[vals[i]]
					} else {
						matches = dictRows[c]
					}
					for _, r := range matches {
						pr = append(pr, st.rows[i])
						br = append(br, r)
					}
				}
			} else {
				for i, v := range vals {
					for _, r := range jt.rows[v] {
						pr = append(pr, st.rows[i])
						br = append(br, r)
					}
				}
			}
			if len(pr) == 0 {
				return false, nil
			}
			return !fn(pr, br), nil
		}()
		if err != nil {
			if cfg.skipBlock(int(cs.cols[0].blocks[b].count), err) {
				continue
			}
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

package zukowski_test

import (
	"bytes"
	"fmt"
	"log"

	"repro/zukowski"
)

// ExampleFrameDecoder decodes standalone block frames — the shape in
// which a scan service ships compressed blocks over the wire, stripped
// of their container.
func ExampleFrameDecoder() {
	// Write a column of 8 values in blocks of 4.
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter[int64](&buf, nil, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := cw.Write([]int64{10, 11, 12, 13, 1000, 1001, 1002, 1003}); err != nil {
		log.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		log.Fatal(err)
	}

	// Pull each block's raw frame out of the container, as a server
	// would, and decode them standalone, as a client would. One decoder
	// reuses its scratch across frames.
	cr, err := zukowski.OpenColumn[int64](buf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	var dec zukowski.FrameDecoder[int64]
	for b := 0; b < cr.NumBlocks(); b++ {
		frame, err := cr.FrameBytes(b)
		if err != nil {
			log.Fatal(err)
		}
		vals, err := dec.Decode(nil, frame)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("block %d: %v\n", b, vals)
	}
	// Output:
	// block 0: [10 11 12 13]
	// block 1: [1000 1001 1002 1003]
}

// ExampleColumnSet_ScanWhereAll runs a conjunctive predicate over two
// columns: only rows passing every range predicate are materialized,
// and blocks the zone maps rule out are never touched.
func ExampleColumnSet_ScanWhereAll() {
	encode := func(vals []int64) []byte {
		var buf bytes.Buffer
		cw, err := zukowski.NewColumnWriter[int64](&buf, nil, 4)
		if err != nil {
			log.Fatal(err)
		}
		if err := cw.Write(vals); err != nil {
			log.Fatal(err)
		}
		if err := cw.Close(); err != nil {
			log.Fatal(err)
		}
		return buf.Bytes()
	}
	// Two columns with the same geometry: a sorted key and a value.
	keys := encode([]int64{1, 2, 3, 4, 5, 6, 7, 8})
	vals := encode([]int64{50, 40, 30, 20, 25, 35, 45, 55})

	keyCol, err := zukowski.OpenColumn[int64](keys)
	if err != nil {
		log.Fatal(err)
	}
	valCol, err := zukowski.OpenColumn[int64](vals)
	if err != nil {
		log.Fatal(err)
	}
	cs, err := zukowski.NewColumnSet(keyCol, valCol)
	if err != nil {
		log.Fatal(err)
	}

	// key in [3, 7] AND value in [25, 45].
	preds := []zukowski.Pred[int64]{
		{Col: 0, Lo: 3, Hi: 7},
		{Col: 1, Lo: 25, Hi: 45},
	}
	err = cs.ScanWhereAll(preds, func(rows []int64, cols [][]int64) bool {
		for i, row := range rows {
			fmt.Printf("row %d: key=%d value=%d\n", row, cols[0][i], cols[1][i])
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// row 2: key=3 value=30
	// row 4: key=5 value=25
	// row 5: key=6 value=35
	// row 6: key=7 value=45
}

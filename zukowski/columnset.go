package zukowski

import (
	"context"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/core"
	"repro/internal/segment"
)

// Multi-predicate selection-vector composition: the conjunctive scan the
// paper's RAM-CPU pipeline runs on compressed vectors. A ColumnSet groups
// columns that share block geometry (same rows, same block boundaries —
// the layout one ColumnWriter configuration produces for every column of
// a table), so a selection bitmap computed over one column's block applies
// row-for-row to every other column's same-numbered block. ScanWhereAll
// evaluates a conjunction of range predicates one predicate at a time:
// the most selective predicate (estimated per block from the zone maps)
// builds the block's bitmap with DecompressMask, each further predicate
// narrows it with RefineMask — skipping 128-row groups the running bitmap
// has already emptied, without extracting a single code — and only the
// rows that survive every predicate are materialized, from each column,
// by DecompressSelected. Nothing that fails the conjunction is ever
// decoded into a value.

// Pred is one conjunct of a multi-column predicate: the inclusive value
// range [Lo, Hi] over column Col of a ColumnSet. A Pred with Lo > Hi
// selects nothing (and therefore empties the whole conjunction).
type Pred[T Integer] struct {
	Col    int
	Lo, Hi T
}

// ColumnSet scans several same-geometry columns as one unit, composing
// per-column selection bitmaps before any row is materialized. A
// ColumnSet is safe for concurrent use whenever its ColumnReaders are;
// scan scratch lives in an internal pool, one state per running scan (or
// per worker, for the parallel form).
type ColumnSet[T Integer] struct {
	cols   []*ColumnReader[T]
	states sync.Pool
}

// NewColumnSet groups columns for conjunctive scans. Every column must
// hold the same number of rows split at the same block boundaries;
// anything else returns ErrColumnSetMismatch — a bitmap composed over
// mismatched blocks would silently pair values of different rows.
func NewColumnSet[T Integer](cols ...*ColumnReader[T]) (*ColumnSet[T], error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: a column set needs at least one column", ErrColumnSetMismatch)
	}
	first := cols[0]
	for i, cr := range cols[1:] {
		if cr.Len() != first.Len() {
			return nil, fmt.Errorf("%w: column 0 holds %d rows, column %d holds %d",
				ErrColumnSetMismatch, first.Len(), i+1, cr.Len())
		}
		if cr.NumBlocks() != first.NumBlocks() {
			return nil, fmt.Errorf("%w: column 0 has %d blocks, column %d has %d",
				ErrColumnSetMismatch, first.NumBlocks(), i+1, cr.NumBlocks())
		}
		for b := range cr.blocks {
			if cr.blocks[b].count != first.blocks[b].count {
				return nil, fmt.Errorf("%w: block %d holds %d rows in column %d but %d in column 0",
					ErrColumnSetMismatch, b, cr.blocks[b].count, i+1, first.blocks[b].count)
			}
		}
	}
	return &ColumnSet[T]{cols: cols}, nil
}

// Columns returns the number of columns in the set.
func (cs *ColumnSet[T]) Columns() int { return len(cs.cols) }

// Column returns column i's reader.
func (cs *ColumnSet[T]) Column(i int) *ColumnReader[T] { return cs.cols[i] }

// Len returns the number of rows (shared by every column).
func (cs *ColumnSet[T]) Len() int { return cs.cols[0].Len() }

// NumBlocks returns the number of blocks (shared by every column).
func (cs *ColumnSet[T]) NumBlocks() int { return cs.cols[0].NumBlocks() }

// setColState is one column's share of a scan state: the column's decode
// scratch plus a memo of what has already been computed for the block the
// scan is currently evaluating, so a column whose block was parsed for
// predicate masking is not re-parsed for materialization.
type setColState[T Integer] struct {
	decodeState[T]
	gath []T   // materialized output buffer of this column
	form uint8 // what the state holds for the current block
}

const (
	colNone uint8 = iota // nothing prepared for this block yet
	colSeg               // blk holds the parsed patched segment
	colVals              // vals holds the fully decoded block (raw/baseline)
)

// setState is the per-scan (per-worker) scratch of a ColumnSet scan.
type setState[T Integer] struct {
	cols []setColState[T]
	sv   core.SelectionVector
	rows []int64
	out  [][]T // out[i] aliases cols[i].gath after materialization
	ord  []int // predicate evaluation order scratch
	est  []float64

	// svPool holds scratch selection vectors for nested expression
	// subtrees (see pushSV), one per active depth, reused across blocks.
	svPool  []*core.SelectionVector
	svDepth int

	// codes is the per-block dictionary-code scratch of GroupAggregate's
	// code-space path, one slice per group column.
	codes [][]int32
}

func (cs *ColumnSet[T]) getState() *setState[T] {
	if st, ok := cs.states.Get().(*setState[T]); ok {
		return st
	}
	return &setState[T]{
		cols: make([]setColState[T], len(cs.cols)),
		out:  make([][]T, len(cs.cols)),
	}
}

func (cs *ColumnSet[T]) putState(st *setState[T]) { cs.states.Put(st) }

// begin invalidates the per-block memos before evaluating a new block.
func (st *setState[T]) begin() {
	for i := range st.cols {
		st.cols[i].form = colNone
	}
}

// prepare fetches block b of cr into st, memoized per block iteration:
// patched frames are parsed once (sections only, nothing decoded), raw
// and baseline frames are decoded once into st.vals. It reports whether
// the block is patched-compressed, i.e. whether the compressed-domain
// mask kernels apply.
func (st *setColState[T]) prepare(cr *ColumnReader[T], b int) (patched bool, err error) {
	switch st.form {
	case colSeg:
		return true, nil
	case colVals:
		return false, nil
	}
	frame, err := cr.frame(b)
	if err != nil {
		return false, err
	}
	want := int(cr.blocks[b].count)
	if len(frame) > 0 && frame[0] == segment.Magic && segment.IsCompressed(frame) {
		if err := parseSegmentInto(&st.blk, frame, cr.trustedFrames()); err != nil {
			return false, fmt.Errorf("block %d: %w", b, corrupt(err))
		}
		if st.blk.N != want {
			return false, fmt.Errorf("%w: block %d holds %d values, directory says %d",
				ErrCorruptColumn, b, st.blk.N, want)
		}
		st.form = colSeg
		return true, nil
	}
	dec, err := st.decodeInto(st.vals[:0], frame, cr.trustedFrames())
	if err != nil {
		return false, fmt.Errorf("block %d: %w", b, err)
	}
	st.vals = dec
	if len(dec) != want {
		return false, fmt.Errorf("%w: block %d holds %d values, directory says %d",
			ErrCorruptColumn, b, len(dec), want)
	}
	st.form = colVals
	return false, nil
}

func b2u32(v bool) uint32 {
	if v {
		return 1
	}
	return 0
}

// maskCol evaluates [lo, hi] over column ci's block b into sv: a fresh
// bitmap (maskFresh), an intersection with the running bitmap
// (maskRefine), or a union into it (maskUnion). Patched frames stay in
// the compressed code domain; raw and baseline frames compare decoded
// values (fetched once per block thanks to the prepare memo).
func (cs *ColumnSet[T]) maskCol(st *setColState[T], ci, b int, lo, hi T, sv *core.SelectionVector, mode uint8) error {
	patched, err := st.prepare(cs.cols[ci], b)
	if err != nil {
		return err
	}
	if patched {
		switch mode {
		case maskRefine:
			st.dec.RefineMask(&st.blk, lo, hi, sv)
		case maskUnion:
			st.dec.UnionMask(&st.blk, lo, hi, sv)
		default:
			st.dec.DecompressMask(&st.blk, lo, hi, sv)
		}
		return nil
	}
	vals := st.vals
	switch mode {
	case maskRefine:
		words := sv.Words()
		for w, m := range words {
			if m == 0 {
				continue
			}
			vb := w << 5
			lim := min(32, len(vals)-vb)
			var match uint32
			for j := 0; j < lim; j++ {
				v := vals[vb+j]
				match |= b2u32(v >= lo && v <= hi) << j
			}
			words[w] = m & match
		}
	case maskUnion:
		if lo > hi {
			return nil
		}
		words := sv.Words()
		for w := range words {
			vb := w << 5
			lim := min(32, len(vals)-vb)
			var m uint32
			for j := 0; j < lim; j++ {
				v := vals[vb+j]
				m |= b2u32(v >= lo && v <= hi) << j
			}
			words[w] |= m
		}
	default:
		sv.Reset(len(vals))
		words := sv.Words()
		for w := range words {
			vb := w << 5
			lim := min(32, len(vals)-vb)
			var m uint32
			for j := 0; j < lim; j++ {
				v := vals[vb+j]
				m |= b2u32(v >= lo && v <= hi) << j
			}
			words[w] = m
		}
	}
	return nil
}

// gatherCol materializes column ci's values at the rows sv selects, into
// the column's reusable buffer.
func (cs *ColumnSet[T]) gatherCol(st *setColState[T], ci, b int, sv *core.SelectionVector) ([]T, error) {
	patched, err := st.prepare(cs.cols[ci], b)
	if err != nil {
		return nil, err
	}
	if patched {
		st.gath = st.dec.DecompressSelected(&st.blk, sv, st.gath[:0])
		return st.gath, nil
	}
	out := st.gath[:0]
	vals := st.vals
	for w, m := range sv.Words() {
		vb := w << 5
		for ; m != 0; m &= m - 1 {
			out = append(out, vals[vb+bits.TrailingZeros32(m)])
		}
	}
	st.gath = out
	return out, nil
}

// predEstimate estimates the fraction of block b's rows [lo, hi] can
// select, from the zone map alone: the width of the predicate's overlap
// with the block's value range, relative to that range. It orders
// predicates cheapest-first; correctness never depends on it. Without
// zone maps (ZKC1) every predicate estimates 1.
func (cr *ColumnReader[T]) predEstimate(b int, lo, hi T) float64 {
	bmin, bmax, ok := cr.ZoneMap(b)
	if !ok {
		return 1
	}
	l, h := max(lo, bmin), min(hi, bmax)
	if l > h {
		return 0
	}
	span := float64(bmax) - float64(bmin) + 1
	if span <= 0 {
		return 1
	}
	return (float64(h) - float64(l) + 1) / span
}

// orderPreds fills st.ord with predicate indices, most selective first by
// zone-map estimate (insertion sort on scratch: stable, allocation-free).
func (st *setState[T]) orderPreds(cs *ColumnSet[T], b int, preds []Pred[T]) []int {
	if cap(st.ord) < len(preds) {
		st.ord = make([]int, len(preds))
		st.est = make([]float64, len(preds))
	}
	ord, est := st.ord[:len(preds)], st.est[:len(preds)]
	for i, p := range preds {
		ord[i] = i
		est[i] = cs.cols[p.Col].predEstimate(b, p.Lo, p.Hi)
	}
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && est[ord[j]] < est[ord[j-1]]; j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	return ord
}

// checkPreds validates predicate column indices and reports whether the
// conjunction is trivially empty (some Lo > Hi).
func (cs *ColumnSet[T]) checkPreds(preds []Pred[T]) (empty bool, err error) {
	for _, p := range preds {
		if p.Col < 0 || p.Col >= len(cs.cols) {
			return false, fmt.Errorf("%w: predicate column %d not in [0,%d)",
				ErrIndexOutOfRange, p.Col, len(cs.cols))
		}
		if p.Lo > p.Hi {
			empty = true
		}
	}
	return empty, nil
}

// zoneMatchAll returns the block predicate of the conjunction: a block
// survives only if no predicate's zone map excludes it.
func (cs *ColumnSet[T]) zoneMatchAll(preds []Pred[T]) func(b int) bool {
	return func(b int) bool {
		for _, p := range preds {
			if cs.cols[p.Col].blockExcludes(b, p.Lo, p.Hi) {
				return false
			}
		}
		return true
	}
}

// blockMask composes the selection bitmap of block b into st.sv and
// reports whether any row survives. Predicates run most-selective-first;
// composition stops the moment the bitmap empties.
func (cs *ColumnSet[T]) blockMask(st *setState[T], b int, preds []Pred[T]) (any bool, err error) {
	defer guardSegment(&err)
	st.begin()
	if len(preds) == 0 {
		st.sv.Fill(int(cs.cols[0].blocks[b].count))
		return st.sv.Any(), nil
	}
	ord := st.orderPreds(cs, b, preds)
	for k, pi := range ord {
		p := preds[pi]
		mode := maskFresh
		if k > 0 {
			mode = maskRefine
		}
		if err := cs.maskCol(&st.cols[p.Col], p.Col, b, p.Lo, p.Hi, &st.sv, mode); err != nil {
			return false, err
		}
		if !st.sv.Any() {
			return false, nil
		}
	}
	return true, nil
}

// blockMaskQuery composes block b's bitmap for q: the []Pred conjunction
// first (most-selective-first, exactly the blockMask path), then the
// expression tree refining it — or, without preds, the tree evaluated
// fresh. Either side emptying the bitmap stops the block early.
func (cs *ColumnSet[T]) blockMaskQuery(st *setState[T], b int, q *Query[T]) (any bool, err error) {
	if q.Expr.isZero() {
		return cs.blockMask(st, b, q.Preds)
	}
	if len(q.Preds) > 0 {
		any, err = cs.blockMask(st, b, q.Preds)
		if err != nil || !any {
			return any, err
		}
		defer guardSegment(&err)
		if err = cs.evalExpr(st, &q.Expr, b, st.sv.Len(), &st.sv, maskRefine); err != nil {
			return false, err
		}
		return st.sv.Any(), nil
	}
	defer guardSegment(&err)
	st.begin()
	n := int(cs.cols[0].blocks[b].count)
	if err = cs.evalExpr(st, &q.Expr, b, n, &st.sv, maskFresh); err != nil {
		return false, err
	}
	return st.sv.Any(), nil
}

// blockQuery evaluates block b of q: bitmap composition, then row-number
// decoding and materialization of the requested columns (all of them when
// q.Cols is nil). rows is nil when no row survives.
func (cs *ColumnSet[T]) blockQuery(st *setState[T], b int, q *Query[T]) (rows []int64, out [][]T, err error) {
	any, err := cs.blockMaskQuery(st, b, q)
	if err != nil || !any {
		return nil, nil, err
	}
	defer guardSegment(&err)
	st.rows = st.sv.AppendRows(st.rows[:0], int64(cs.cols[0].starts[b]))
	if q.Cols == nil {
		for ci := range cs.cols {
			vals, err := cs.gatherCol(&st.cols[ci], ci, b, &st.sv)
			if err != nil {
				return nil, nil, err
			}
			st.out[ci] = vals
		}
		return st.rows, st.out, nil
	}
	out = st.out[:len(q.Cols)]
	for i, ci := range q.Cols {
		vals, err := cs.gatherCol(&st.cols[ci], ci, b, &st.sv)
		if err != nil {
			return nil, nil, err
		}
		out[i] = vals
	}
	return st.rows, out, nil
}

// runSeq is the sequential scan loop shared by Run, ScanWhereAll and
// their context variants — also the one-worker degenerate case of the
// parallel form. ctx is consulted once per block (see ScanWhereAllContext);
// context.Background() never fires and costs one predictable branch.
func (cs *ColumnSet[T]) runSeq(ctx context.Context, cfg *scanConfig, q *Query[T], fn func(block int, rows []int64, cols [][]T) bool) error {
	empty, err := cs.checkQuery(q)
	if err != nil || empty {
		return err
	}
	st := cs.getState()
	defer cs.putState(st)
	match := cs.queryMatch(q)
	for b := range cs.cols[0].blocks {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !match(b) {
			continue
		}
		rows, out, err := cs.blockQuery(st, b, q)
		if err != nil {
			if cfg.skipBlock(int(cs.cols[0].blocks[b].count), err) {
				continue
			}
			return err
		}
		if len(rows) == 0 {
			continue
		}
		if !fn(b, rows, out) {
			return nil
		}
	}
	return nil
}

// runParallel is the block-parallel scan loop shared by Run and
// ParallelScanWhereAll, with the delivery contract of the other parallel
// scans: serialized, unordered unless configured otherwise.
func (cs *ColumnSet[T]) runParallel(ctx context.Context, cfg *scanConfig, q *Query[T], workers int, fn func(block int, rows []int64, cols [][]T) bool) error {
	empty, err := cs.checkQuery(q)
	if err != nil || empty {
		return err
	}
	seq := func() error { return cs.runSeq(ctx, cfg, q, fn) }
	work := func(st *setState[T], b int) (func() bool, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rows, out, err := cs.blockQuery(st, b, q)
		if err != nil {
			if cfg.skipBlock(int(cs.cols[0].blocks[b].count), err) {
				return nil, nil
			}
			return nil, err
		}
		if len(rows) == 0 {
			return nil, nil
		}
		return func() bool { return fn(b, rows, out) }, nil
	}
	return parallelBlocksEngine(len(cs.cols[0].blocks), workers, cs.queryMatch(q), cfg,
		seq, cs.getState, cs.putState, work)
}

// runAggregate is the aggregate loop shared by RunAggregate and
// AggregateWhereAll: bitmap composition per block, then a fold over just
// the target column's survivors.
func (cs *ColumnSet[T]) runAggregate(ctx context.Context, cfg *scanConfig, q *Query[T], col int) (Aggregate[T], error) {
	var agg Aggregate[T]
	if col < 0 || col >= len(cs.cols) {
		return agg, fmt.Errorf("%w: aggregate column %d not in [0,%d)", ErrIndexOutOfRange, col, len(cs.cols))
	}
	empty, err := cs.checkQuery(q)
	if err != nil || empty {
		return agg, err
	}
	st := cs.getState()
	defer cs.putState(st)
	match := cs.queryMatch(q)
	for b := range cs.cols[0].blocks {
		if err := ctx.Err(); err != nil {
			return Aggregate[T]{}, err
		}
		if !match(b) {
			continue
		}
		any, err := cs.blockMaskQuery(st, b, q)
		if err != nil {
			if cfg.skipBlock(int(cs.cols[0].blocks[b].count), err) {
				continue
			}
			return Aggregate[T]{}, err
		}
		if !any {
			continue
		}
		vals, err := cs.gatherBlockCol(st, b, col)
		if err != nil {
			if cfg.skipBlock(int(cs.cols[0].blocks[b].count), err) {
				continue
			}
			return Aggregate[T]{}, err
		}
		for _, v := range vals {
			if agg.Count == 0 {
				agg.Min, agg.Max = v, v
			} else {
				if v < agg.Min {
					agg.Min = v
				}
				if v > agg.Max {
					agg.Max = v
				}
			}
			agg.Count++
			agg.Sum += int64(v)
		}
	}
	return agg, nil
}

// ScanWhereAll scans the set with a conjunction of range predicates
// evaluated below decompression, invoking fn once per block that contains
// at least one surviving row with the global row numbers and, per column
// of the set, the values of those rows (cols[i][j] is column i's value at
// rows[j]). Blocks any predicate's zone map excludes are skipped unread;
// inside a surviving block the most selective predicate (zone-map
// estimate) builds the selection bitmap in the compressed code domain,
// each further predicate refines it — groups the running bitmap has
// emptied are never touched — and only rows passing every predicate are
// materialized. The slices are reused between calls; fn must copy what it
// keeps, and returning false stops the scan early. An empty preds slice
// selects every row.
//
// ScanWhereAll is a thin wrapper over the Run machinery, kept for
// callers of the original conjunction-only API: it is exactly
// Run(ctx, Query{Preds: preds}, ...) without the block index.
//
// A warmed sequential ScanWhereAll performs no heap allocation: the scan
// holds one pooled state — per-column decode scratch, the bitmap, and the
// output buffers — for its whole pass.
func (cs *ColumnSet[T]) ScanWhereAll(preds []Pred[T], fn func(rows []int64, cols [][]T) bool, opts ...ScanOption) error {
	q := Query[T]{Preds: preds}
	return cs.runSeq(context.Background(), parseScanOpts(opts), &q,
		func(_ int, rows []int64, cols [][]T) bool { return fn(rows, cols) })
}

// ParallelScanWhereAll is ScanWhereAll across a block-granular worker
// pool, with the delivery contract of the other parallel scans: fn
// receives each surviving block's rows and column values exactly once,
// never concurrently, unordered unless InOrder is given; fn returning
// false (or an error) stops the scan. Blocks without surviving rows are
// skipped without a delivery. Each worker owns one pooled scan state —
// every column's decode scratch and bitmap — for the whole scan. It is a
// thin wrapper over Run with Query.Workers set.
func (cs *ColumnSet[T]) ParallelScanWhereAll(preds []Pred[T], workers int, fn func(block int, rows []int64, cols [][]T) bool, opts ...ScanOption) error {
	q := Query[T]{Preds: preds}
	return cs.runParallel(context.Background(), parseScanOpts(opts), &q, workers, fn)
}

// AggregateWhereAll computes Count, Sum, Min and Max over column col's
// values at the rows matching every predicate. The bitmap composes
// exactly as in ScanWhereAll; only the target column's surviving rows are
// then decoded, into a reusable buffer, so the aggregate never
// materializes a non-matching value. An empty preds slice aggregates the
// whole column; a trivially empty conjunction yields Count == 0. It is a
// thin wrapper over RunAggregate with Query{Preds: preds}.
func (cs *ColumnSet[T]) AggregateWhereAll(preds []Pred[T], col int, opts ...ScanOption) (Aggregate[T], error) {
	q := Query[T]{Preds: preds}
	return cs.runAggregate(context.Background(), parseScanOpts(opts), &q, col)
}

// gatherBlockCol is gatherCol behind the crafted-frame panic guard (the
// scan path inherits the guard from blockWhereAll).
func (cs *ColumnSet[T]) gatherBlockCol(st *setState[T], b, col int) (vals []T, err error) {
	defer guardSegment(&err)
	return cs.gatherCol(&st.cols[col], col, b, &st.sv)
}

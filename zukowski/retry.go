package zukowski

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// Failure handling on the block fetch path. Block-read failures split into
// two classes with opposite treatments:
//
//   - Transient: the source returned an I/O error or short read (ErrIO).
//     The bytes never arrived, so nothing is known about the block itself;
//     a reader configured with a RetryPolicy re-reads with jittered
//     exponential backoff before giving up.
//
//   - Permanent: the bytes arrived but their CRC32-C disagrees with the
//     directory (ErrChecksumMismatch). One unconditional re-read
//     distinguishes in-flight corruption (a flaky bus heals on re-read)
//     from at-rest damage; if the mismatch persists the block is
//     quarantined — the failure latches in the block's slot and every
//     later touch fails fast with ErrBlockQuarantined instead of
//     re-reading and re-hashing doomed bytes. Quarantined frames never
//     enter an attached BlockCache, and concurrent scanners observing the
//     quarantine pay one atomic load, not a read and a hash.
//
// VerifyBlock bypasses both treatments on purpose: its contract is to
// check the bytes as they are now, so it neither retries nor consults or
// sets the quarantine latch.

// RetryPolicy bounds the re-reads a ColumnReader performs when a source
// read fails at the I/O layer (ErrIO: the ReaderAt errored or returned
// short). The zero value disables retries — every fetch gets exactly one
// attempt — which keeps in-memory readers and tests free of surprise
// sleeps.
type RetryPolicy struct {
	// MaxAttempts is the total number of read attempts per block fetch,
	// including the first; values below 2 disable retries.
	MaxAttempts int

	// BaseDelay is the backoff before the first retry; it doubles per
	// retry. 0 defaults to 1ms.
	BaseDelay time.Duration

	// MaxDelay caps the backoff. 0 defaults to 100ms.
	MaxDelay time.Duration
}

// WithRetryPolicy configures the reader's transient-failure handling at
// open time. Only file-backed readers (OpenColumnReaderAt) can observe
// I/O errors, so the option is a no-op for OpenColumn.
func WithRetryPolicy(p RetryPolicy) ReaderOption {
	return func(rc *readerConfig) { rc.retry = p }
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff sleeps before retry number retry (1-based): exponential from
// BaseDelay, capped at MaxDelay, with jitter uniform in [d/2, d] so a herd
// of scanners hitting one flaky region does not retry in lockstep.
func (p RetryPolicy) backoff(retry int) {
	base := p.BaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 100 * time.Millisecond
	}
	d := base
	for i := 1; i < retry && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	time.Sleep(d)
}

// fetchVerified is the failure-handling fetch the scan and parse paths
// use: viewVerified plus transient retries and the permanent-corruption
// quarantine. The caller must have checked the quarantine latch first
// (frame and parseBlock do).
func (cr *ColumnReader[T]) fetchVerified(b int) ([]byte, error) {
	buf, err := cr.viewVerified(b)
	if err == nil {
		return buf, nil
	}
	for retry := 1; errors.Is(err, ErrIO) && retry < cr.retry.attempts(); retry++ {
		cr.retry.backoff(retry)
		if buf, err = cr.viewVerified(b); err == nil {
			return buf, nil
		}
	}
	if errors.Is(err, ErrChecksumMismatch) {
		// The bytes arrived wrong. A stable source returns the same bytes
		// on every view, so the mismatch is proven permanent; a ReaderAt
		// gets one re-read to rule out in-flight corruption.
		if !cr.src.stable() {
			buf2, err2 := cr.viewVerified(b)
			if err2 == nil {
				return buf2, nil
			}
			if !errors.Is(err2, ErrChecksumMismatch) {
				return nil, err2
			}
			err = err2
		}
		return nil, cr.quarantine(b, err)
	}
	return nil, err
}

// quarantine latches cause as block b's permanent failure; the first
// store wins, so every caller observes one stable error. The composed
// error matches ErrBlockQuarantined, ErrChecksumMismatch and
// ErrCorruptColumn (the cause stays in the chain).
func (cr *ColumnReader[T]) quarantine(b int, cause error) error {
	qerr := fmt.Errorf("%w: block %d: %w", ErrBlockQuarantined, b, cause)
	cr.slots[b].quar.CompareAndSwap(nil, &qerr)
	return *cr.slots[b].quar.Load()
}

// quarantined returns block b's latched failure, or nil.
func (cr *ColumnReader[T]) quarantined(b int) error {
	if p := cr.slots[b].quar.Load(); p != nil {
		return *p
	}
	return nil
}

// QuarantinedBlocks returns the indices of the blocks this reader has
// quarantined so far, in ascending order. The count is the natural
// health gauge for a serving layer: nonzero means the column has blocks
// that will never read successfully again until the file is repaired.
func (cr *ColumnReader[T]) QuarantinedBlocks() []int {
	var bad []int
	for b := range cr.slots {
		if cr.slots[b].quar.Load() != nil {
			bad = append(bad, b)
		}
	}
	return bad
}

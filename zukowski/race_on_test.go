//go:build race

package zukowski_test

// raceEnabled reports whether the race detector instruments this build;
// allocation-exactness assertions are skipped under it.
const raceEnabled = true

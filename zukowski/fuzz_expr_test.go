package zukowski_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"slices"
	"testing"

	"repro/zukowski"
)

// fuzzNode is the fuzzer's own expression representation, built from the
// fuzz byte stream and lowered to both a zukowski.Expr and a per-row
// oracle — the two must agree exactly on every dataset.
type fuzzNode struct {
	op   byte // 0 range, 1 in, 2 and, 3 or
	col  int
	lo   int64
	hi   int64
	vals []int64
	kids []fuzzNode
}

// fuzzByteReader doles out tree-shape bytes, repeating the last stretch
// when the stream runs dry so every input terminates.
type fuzzByteReader struct {
	data []byte
	pos  int
}

func (r *fuzzByteReader) next() byte {
	if len(r.data) == 0 {
		return 0
	}
	b := r.data[r.pos%len(r.data)]
	r.pos++
	return b
}

// genNode builds a random tree of bounded depth. Leaf windows come from
// the column's own quantiles so predicates hit real data, with the
// occasional inverted or out-of-domain window kept on purpose.
func genNode(r *fuzzByteReader, cols [][]int64, depth int) fuzzNode {
	op := r.next() % 4
	if depth >= 3 || r.pos > 64 {
		op %= 2 // force a leaf
	}
	ci := int(r.next()) % len(cols)
	quantile := func(sel byte) int64 {
		vals := cols[ci]
		if len(vals) == 0 {
			return int64(sel)
		}
		sorted := slices.Clone(vals)
		slices.Sort(sorted)
		return sorted[int(sel)*len(sorted)/256]
	}
	switch op {
	case 0:
		lo, hi := quantile(r.next()), quantile(r.next())
		if r.next()%8 == 0 {
			lo, hi = hi+1, lo-1 // sometimes inverted/empty
		}
		return fuzzNode{op: 0, col: ci, lo: lo, hi: hi}
	case 1:
		n := int(r.next()) % 5
		vals := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			vals = append(vals, quantile(r.next()))
		}
		return fuzzNode{op: 1, col: ci, vals: vals}
	default:
		n := int(r.next())%3 + 1
		kids := make([]fuzzNode, 0, n)
		for i := 0; i < n; i++ {
			kids = append(kids, genNode(r, cols, depth+1))
		}
		return fuzzNode{op: op, kids: kids}
	}
}

func (n *fuzzNode) expr() zukowski.Expr[int64] {
	switch n.op {
	case 0:
		return zukowski.Range[int64](n.col, n.lo, n.hi)
	case 1:
		return zukowski.In[int64](n.col, n.vals...)
	default:
		kids := make([]zukowski.Expr[int64], len(n.kids))
		for i := range n.kids {
			kids[i] = n.kids[i].expr()
		}
		if n.op == 2 {
			return zukowski.And(kids...)
		}
		return zukowski.Or(kids...)
	}
}

func (n *fuzzNode) eval(cols [][]int64, i int) bool {
	switch n.op {
	case 0:
		v := cols[n.col][i]
		return v >= n.lo && v <= n.hi
	case 1:
		for _, w := range n.vals {
			if cols[n.col][i] == w {
				return true
			}
		}
		return false
	case 2:
		for k := range n.kids {
			if !n.kids[k].eval(cols, i) {
				return false
			}
		}
		return true
	default:
		for k := range n.kids {
			if n.kids[k].eval(cols, i) {
				return true
			}
		}
		return false
	}
}

// FuzzExprScan is the differential fuzzer of the expression scan: random
// AND/OR/In/Range trees over two or three columns of fuzzed codecs must
// agree exactly with the decode-then-filter oracle through Run (fresh
// and preds-refined paths), RunAggregate and Project.
func FuzzExprScan(f *testing.F) {
	f.Add([]byte{}, []byte{0}, uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, []byte{3, 0, 1, 2, 9, 4}, uint8(1), uint8(2), uint8(3), uint8(1))
	f.Add(bytes.Repeat([]byte{7, 9}, 40), []byte{2, 2, 0, 0, 10, 20, 1, 1, 3}, uint8(4), uint8(0), uint8(2), uint8(5))
	f.Add(binary.LittleEndian.AppendUint64(nil, 1<<40), []byte{3, 1, 5, 0, 128, 255, 2}, uint8(2), uint8(3), uint8(1), uint8(0))

	names := zukowski.Codecs()
	f.Fuzz(func(t *testing.T, data, tree []byte, codecA, codecB, codecC, blockSel uint8) {
		var valsA []int64
		for chunk := data; len(chunk) > 0; {
			var tail [8]byte
			n := copy(tail[:], chunk)
			valsA = append(valsA, int64(uint32(binary.LittleEndian.Uint64(tail[:]))))
			chunk = chunk[n:]
		}
		if len(valsA) == 0 {
			t.Skip()
		}
		ncols := 2 + int(blockSel)%2
		cols := make([][]int64, ncols)
		cols[0] = valsA
		for c := 1; c < ncols; c++ {
			cols[c] = make([]int64, len(valsA))
			for i := range cols[c] {
				j := (i*7 + c) % len(valsA)
				cols[c][i] = valsA[j]%97*int64(c+2) + int64(i%11)
			}
		}

		blockValues := 64 + int(blockSel)*97
		codecSel := []uint8{codecA, codecB, codecC}
		crs := make([]*zukowski.ColumnReader[int64], ncols)
		for c := range crs {
			name := names[int(codecSel[c])%len(names)]
			codec, err := zukowski.Lookup[int64](name)
			if err != nil {
				t.Skip()
			}
			var buf bytes.Buffer
			cw, err := zukowski.NewColumnWriter[int64](&buf, codec, blockValues)
			if err != nil {
				t.Fatalf("NewColumnWriter: %v", err)
			}
			if err := cw.Write(cols[c]); err != nil {
				if errors.Is(err, zukowski.ErrWidthOutOfRange) || errors.Is(err, zukowski.ErrValueOutOfRange) {
					t.Skip()
				}
				t.Fatalf("Write: %v", err)
			}
			if err := cw.Close(); err != nil {
				if errors.Is(err, zukowski.ErrWidthOutOfRange) || errors.Is(err, zukowski.ErrValueOutOfRange) {
					t.Skip()
				}
				t.Fatalf("Close: %v", err)
			}
			if crs[c], err = zukowski.OpenColumn[int64](buf.Bytes()); err != nil {
				t.Fatalf("OpenColumn: %v", err)
			}
		}
		cs, err := zukowski.NewColumnSet(crs...)
		if err != nil {
			t.Fatalf("NewColumnSet: %v", err)
		}

		node := genNode(&fuzzByteReader{data: tree}, cols, 0)
		expr := node.expr()

		var wantRows []int64
		wantVals := make([][]int64, ncols)
		for i := range cols[0] {
			if !node.eval(cols, i) {
				continue
			}
			wantRows = append(wantRows, int64(i))
			for c := range cols {
				wantVals[c] = append(wantVals[c], cols[c][i])
			}
		}

		var gotRows []int64
		gotVals := make([][]int64, ncols)
		err = cs.Run(t.Context(), zukowski.Query[int64]{Expr: expr}, func(_ int, r []int64, bc [][]int64) bool {
			gotRows = append(gotRows, r...)
			for c := range bc {
				gotVals[c] = append(gotVals[c], bc[c]...)
			}
			return true
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if !slices.Equal(gotRows, wantRows) {
			t.Fatalf("Run disagrees with oracle: got %d rows, want %d", len(gotRows), len(wantRows))
		}
		for c := range gotVals {
			if !slices.Equal(gotVals[c], wantVals[c]) {
				t.Fatalf("Run column %d values disagree with oracle", c)
			}
		}

		// The refine path: the same expression under an all-covering pred.
		gotRows = gotRows[:0]
		q := zukowski.Query[int64]{
			Preds: []zukowski.Pred[int64]{{Col: 0, Lo: slices.Min(cols[0]), Hi: slices.Max(cols[0])}},
			Expr:  expr,
		}
		if err := cs.Run(t.Context(), q, func(_ int, r []int64, _ [][]int64) bool {
			gotRows = append(gotRows, r...)
			return true
		}); err != nil {
			t.Fatalf("Run (preds+expr): %v", err)
		}
		if !slices.Equal(gotRows, wantRows) {
			t.Fatal("preds-refined Run disagrees with oracle")
		}

		agg, err := cs.RunAggregate(t.Context(), zukowski.Query[int64]{Expr: expr}, ncols-1)
		if err != nil {
			t.Fatalf("RunAggregate: %v", err)
		}
		var want zukowski.Aggregate[int64]
		for _, v := range wantVals[ncols-1] {
			if want.Count == 0 {
				want.Min, want.Max = v, v
			} else {
				want.Min, want.Max = min(want.Min, v), max(want.Max, v)
			}
			want.Count++
			want.Sum += v
		}
		if agg != want {
			t.Fatalf("RunAggregate = %+v, want %+v", agg, want)
		}
	})
}

package zukowski

import (
	"encoding/binary"
	"fmt"
	"slices"
	"unsafe"

	"repro/internal/core"
	"repro/internal/segment"
)

// Integer is the set of element types the codecs operate on: the
// fixed-width integer columns of a column store (dates, keys, decimals
// scaled to integers, dictionary codes, inverted-file d-gaps...).
type Integer interface {
	~int8 | ~int16 | ~int32 | ~int64 | ~uint8 | ~uint16 | ~uint32 | ~uint64
}

// GroupSize is the fine-grained access granularity of the patched schemes:
// one entry point per 128 values (Section 3.1 of the paper).
const GroupSize = core.GroupSize

// MaxBlockValues is the largest value count a single compressed frame may
// hold; Encode returns ErrBlockTooLarge beyond it.
const MaxBlockValues = core.MaxBlockValues

// Codec is the unified compression contract every scheme implements. A
// Codec value is stateless and safe for concurrent use.
type Codec[T Integer] interface {
	// Name returns the codec's registry name (e.g. "pfor", "vbyte").
	Name() string

	// Encode appends the compressed frame for src to dst and returns the
	// extended slice. The frame is self-describing; dst may be nil.
	Encode(dst []byte, src []T) ([]byte, error)

	// Decode appends the values of a frame produced by Encode to dst and
	// returns the extended slice. dst may be nil.
	Decode(dst []T, encoded []byte) ([]T, error)

	// Get returns the single value at position i of the frame. The patched
	// codecs use the entry-point machinery and touch at most one 128-value
	// group; the baseline codecs fall back to decoding the frame.
	Get(encoded []byte, i int) (T, error)

	// Stats inspects a frame without decoding its values.
	Stats(encoded []byte) (Stats, error)
}

// Stats describes one compressed frame.
type Stats struct {
	// Scheme is the name of the scheme that produced the frame (which for
	// Auto is the scheme the analyzer picked, not "auto").
	Scheme string
	// BitWidth is the code width b in bits (0 for uncoded frames).
	BitWidth uint
	// NumValues is the number of values in the frame.
	NumValues int
	// Exceptions counts exception values, including compulsory exceptions;
	// ExceptionRate is Exceptions/NumValues (the paper's E').
	Exceptions    int
	ExceptionRate float64
	// DictEntries is the number of meaningful dictionary entries (PDICT
	// and DICT frames).
	DictEntries int
	// Groups counts 128-value entry-point groups; GroupsWithExceptions and
	// MaxGroupExceptions summarize how exceptions cluster across them.
	Groups               int
	GroupsWithExceptions int
	MaxGroupExceptions   int
	// EncodedBytes is the frame size; UncompressedBytes the size of the
	// values stored verbatim; Ratio their quotient.
	EncodedBytes      int
	UncompressedBytes int
	Ratio             float64
}

// elemSize returns sizeof(T) in bytes.
func elemSize[T Integer]() int {
	var v T
	return int(unsafe.Sizeof(v))
}

// checkWidth validates a code bit width for element type T.
func checkWidth[T Integer](b uint) error {
	if b < 1 || b > 32 {
		return fmt.Errorf("%w: b=%d not in [1,32]", ErrWidthOutOfRange, b)
	}
	if int(b) > 8*elemSize[T]() {
		return fmt.Errorf("%w: b=%d wider than %d-bit element", ErrWidthOutOfRange, b, 8*elemSize[T]())
	}
	return nil
}

// checkLen validates an encode input length.
func checkLen(n int) error {
	if n > MaxBlockValues {
		return fmt.Errorf("%w: %d values > %d", ErrBlockTooLarge, n, MaxBlockValues)
	}
	return nil
}

// corrupt wraps a cause as an ErrCorruptSegment while keeping it in the
// error chain.
func corrupt(cause error) error {
	return fmt.Errorf("%w: %w", ErrCorruptSegment, cause)
}

// guardSegment converts a decoder panic into ErrCorruptSegment. The
// internal kernels trust their inputs (their patch-list walks are
// branch-free); header and checksum validation catches everything short of
// deliberately crafted frames, and this recover is the backstop for those.
func guardSegment(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: decoder fault: %v", ErrCorruptSegment, r)
	}
}

// grow extends dst by n elements and returns the extended slice plus the
// newly added tail.
func grow[T Integer](dst []T, n int) ([]T, []T) {
	dst = slices.Grow(dst, n)
	out := dst[:len(dst)+n]
	return out, out[len(dst):]
}

// decodeSegment appends the values of a segment frame (raw or patched) to
// dst. It is shared by every segment-backed codec: the frame header, not
// the codec, determines the scheme.
func decodeSegment[T Integer](dst []T, encoded []byte) (out []T, err error) {
	defer guardSegment(&err)
	if !segment.IsCompressed(encoded) {
		return rawAppend[T](dst, encoded)
	}
	blk, err := segment.Unmarshal[T](encoded)
	if err != nil {
		return nil, corrupt(err)
	}
	dst, tail := grow(dst, blk.N)
	core.Decompress(blk, tail)
	return dst, nil
}

// segmentGet returns value i of a segment frame using the entry-point
// fine-grained access path.
func segmentGet[T Integer](encoded []byte, i int) (v T, err error) {
	defer guardSegment(&err)
	if !segment.IsCompressed(encoded) {
		return rawGet[T](encoded, i)
	}
	blk, err := segment.Unmarshal[T](encoded)
	if err != nil {
		return v, corrupt(err)
	}
	if i < 0 || i >= blk.N {
		return v, fmt.Errorf("%w: %d not in [0,%d)", ErrIndexOutOfRange, i, blk.N)
	}
	return core.Get(blk, i), nil
}

// rawHeader validates a raw (SchemeNone) segment header — an 8-byte
// prefix followed by the values — and returns the value count.
func rawHeader[T Integer](encoded []byte) (int, error) {
	if len(encoded) < 8 {
		return 0, corrupt(segment.ErrTooShort)
	}
	if encoded[0] != segment.Magic {
		return 0, corrupt(segment.ErrBadMagic)
	}
	elem := elemSize[T]()
	if int(encoded[2]) != elem {
		return 0, corrupt(segment.ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(encoded[4:]))
	if len(encoded) < 8+n*elem {
		return 0, corrupt(segment.ErrTooShort)
	}
	return n, nil
}

// rawGet reads value i of a raw segment in place, without decoding the
// frame.
func rawGet[T Integer](encoded []byte, i int) (v T, err error) {
	n, err := rawHeader[T](encoded)
	if err != nil {
		return v, err
	}
	elem := elemSize[T]()
	if i < 0 || i >= n {
		return v, fmt.Errorf("%w: %d not in [0,%d)", ErrIndexOutOfRange, i, n)
	}
	off := 8 + i*elem
	switch elem {
	case 1:
		return T(encoded[off]), nil
	case 2:
		return T(binary.LittleEndian.Uint16(encoded[off:])), nil
	case 4:
		return T(binary.LittleEndian.Uint32(encoded[off:])), nil
	default:
		return T(binary.LittleEndian.Uint64(encoded[off:])), nil
	}
}

// rawAppend appends the values of a raw (SchemeNone) segment to dst,
// decoding straight into the destination — no intermediate slice, so scans
// over uncoded blocks stay allocation-free once dst has capacity.
func rawAppend[T Integer](dst []T, encoded []byte) ([]T, error) {
	n, err := rawHeader[T](encoded)
	if err != nil {
		return nil, err
	}
	out, tail := grow(dst, n)
	switch elemSize[T]() {
	case 1:
		for i := range tail {
			tail[i] = T(encoded[8+i])
		}
	case 2:
		for i := range tail {
			tail[i] = T(binary.LittleEndian.Uint16(encoded[8+i*2:]))
		}
	case 4:
		for i := range tail {
			tail[i] = T(binary.LittleEndian.Uint32(encoded[8+i*4:]))
		}
	default:
		for i := range tail {
			tail[i] = T(binary.LittleEndian.Uint64(encoded[8+i*8:]))
		}
	}
	return out, nil
}

// segmentStats inspects a segment frame.
func segmentStats[T Integer](encoded []byte) (Stats, error) {
	if !segment.IsCompressed(encoded) {
		n, err := rawHeader[T](encoded)
		if err != nil {
			return Stats{}, err
		}
		return fillSizes(Stats{
			Scheme:    core.SchemeNone.String(),
			NumValues: n,
		}, len(encoded), n*elemSize[T]()), nil
	}
	blk, err := segment.Unmarshal[T](encoded)
	if err != nil {
		return Stats{}, corrupt(err)
	}
	st := Stats{
		Scheme:        blk.Scheme.String(),
		BitWidth:      blk.B,
		NumValues:     blk.N,
		Exceptions:    blk.ExceptionCount(),
		ExceptionRate: blk.ExceptionRate(),
		DictEntries:   blk.DictLen,
		Groups:        blk.NumGroups(),
	}
	for g := 0; g < len(blk.Entries); g++ {
		end := len(blk.Exc)
		if g+1 < len(blk.Entries) {
			end = int(blk.Entries[g+1] >> 7)
		}
		n := end - int(blk.Entries[g]>>7)
		if n > 0 {
			st.GroupsWithExceptions++
		}
		if n > st.MaxGroupExceptions {
			st.MaxGroupExceptions = n
		}
	}
	return fillSizes(st, len(encoded), blk.UncompressedBytes()), nil
}

// fillSizes completes the size fields of a Stats.
func fillSizes(st Stats, encodedBytes, rawBytes int) Stats {
	st.EncodedBytes = encodedBytes
	st.UncompressedBytes = rawBytes
	if encodedBytes > 0 {
		st.Ratio = float64(rawBytes) / float64(encodedBytes)
	}
	return st
}

// Inspect parses a compressed frame produced by any segment-backed codec
// (PFOR, PFORDelta, PDict, None, Auto) and returns its Stats. It is the
// programmatic form of the cmd/segdump tool.
func Inspect[T Integer](encoded []byte) (Stats, error) {
	return segmentStats[T](encoded)
}

package zukowski_test

import (
	"math/rand"
	"slices"
	"testing"

	"repro/zukowski"
)

// groupOracle computes GroupAggregate's answer the slow way: filter rows
// with ok, group by the key columns' decoded values, fold each spec.
func groupOracle(all [][]int64, ok func([][]int64, int) bool, groupCols []int, specs []zukowski.AggSpec[int64]) zukowski.Grouped[int64] {
	type acc struct {
		key   []int64
		cells []int64
	}
	idx := map[string]*acc{}
	var order []*acc
	var kb []byte
	for i := range all[0] {
		if !ok(all, i) {
			continue
		}
		kb = kb[:0]
		key := make([]int64, len(groupCols))
		for g, c := range groupCols {
			key[g] = all[c][i]
			for s := 0; s < 8; s++ {
				kb = append(kb, byte(uint64(key[g])>>(8*s)))
			}
		}
		a := idx[string(kb)]
		if a == nil {
			a = &acc{key: key, cells: make([]int64, len(specs))}
			for s := range specs {
				switch specs[s].Kind {
				case zukowski.AggMin:
					a.cells[s] = int64(^uint64(0) >> 1)
				case zukowski.AggMax:
					a.cells[s] = -int64(^uint64(0)>>1) - 1
				}
			}
			idx[string(kb)] = a
			order = append(order, a)
		}
		for s := range specs {
			var v int64
			if specs[s].Map != nil {
				v = specs[s].Map(all, i)
			} else if specs[s].Kind != zukowski.AggCount {
				v = all[specs[s].Col][i]
			}
			switch specs[s].Kind {
			case zukowski.AggCount:
				a.cells[s]++
			case zukowski.AggSum:
				a.cells[s] += v
			case zukowski.AggMin:
				a.cells[s] = min(a.cells[s], v)
			case zukowski.AggMax:
				a.cells[s] = max(a.cells[s], v)
			}
		}
	}
	slices.SortFunc(order, func(x, y *acc) int {
		return slices.Compare(x.key, y.key)
	})
	res := zukowski.Grouped[int64]{}
	for _, a := range order {
		res.Keys = append(res.Keys, a.key)
		res.Aggs = append(res.Aggs, a.cells)
	}
	return res
}

func checkGrouped(t *testing.T, label string, got, want zukowski.Grouped[int64]) {
	t.Helper()
	if len(got.Keys) != len(want.Keys) {
		t.Fatalf("%s: %d groups, want %d", label, len(got.Keys), len(want.Keys))
	}
	for g := range want.Keys {
		if !slices.Equal(got.Keys[g], want.Keys[g]) {
			t.Fatalf("%s: group %d key = %v, want %v", label, g, got.Keys[g], want.Keys[g])
		}
		if !slices.Equal(got.Aggs[g], want.Aggs[g]) {
			t.Fatalf("%s: group %v aggs = %v, want %v", label, want.Keys[g], got.Aggs[g], want.Aggs[g])
		}
	}
}

// buildGroupSet builds a set whose first two columns are low-cardinality
// (dictionary-friendly) and the rest wide, under the given codecs.
func buildGroupSet(t *testing.T, codecs []string, n int, seed int64) (*zukowski.ColumnSet[int64], [][]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	all := make([][]int64, len(codecs))
	crs := make([]*zukowski.ColumnReader[int64], len(codecs))
	for c := range all {
		vals := make([]int64, n)
		switch c {
		case 0: // ~6 distinct values, occasional stragglers
			base := []int64{11, 23, 35, 47, 59, 71}
			for i := range vals {
				vals[i] = base[rng.Intn(len(base))]
				if rng.Intn(200) == 0 {
					vals[i] = 1000 + rng.Int63n(50)
				}
			}
		case 1: // ~4 distinct values
			base := []int64{2, 5, 8, 9}
			for i := range vals {
				vals[i] = base[rng.Intn(len(base))]
			}
		default:
			vals = synthColumn(rng, n)
		}
		all[c] = vals
		codec, err := zukowski.Lookup[int64](codecs[c])
		if err != nil {
			t.Fatal(err)
		}
		crs[c] = buildSelectColumn(t, codec, 0, vals)
	}
	cs, err := zukowski.NewColumnSet(crs...)
	if err != nil {
		t.Fatal(err)
	}
	return cs, all
}

// TestGroupAggregateOracle drives grouped aggregation — code-space and
// hash paths — against the scalar oracle, with and without a filter,
// over one and two group columns, with every aggregate kind plus a
// derived Map input.
func TestGroupAggregateOracle(t *testing.T) {
	for _, mix := range [][]string{
		{"pdict", "pdict", "pfor", "auto"}, // group cols dictionary-compressed: code space
		{"pfor", "none", "pfor", "auto"},   // group cols not PDICT: hash fallback
		{"auto", "auto", "auto", "auto"},
	} {
		cs, all := buildGroupSet(t, mix, 25_000, 43)
		specs := []zukowski.AggSpec[int64]{
			{Kind: zukowski.AggCount},
			{Kind: zukowski.AggSum, Col: 2},
			{Kind: zukowski.AggMin, Col: 2},
			{Kind: zukowski.AggMax, Col: 3},
			{Kind: zukowski.AggSum, Cols: []int{2, 3}, Map: func(cols [][]int64, i int) int64 {
				return cols[2][i]*3 - cols[3][i]
			}},
		}
		exprs := []struct {
			name string
			expr zukowski.Expr[int64]
			ok   func([][]int64, int) bool
		}{
			{"all", zukowski.Expr[int64]{}, func([][]int64, int) bool { return true }},
			{"filtered", zukowski.Or(zukowski.Range[int64](2, 0, 1500), zukowski.In[int64](1, 2, 9)),
				func(all [][]int64, i int) bool {
					return (all[2][i] >= 0 && all[2][i] <= 1500) || all[1][i] == 2 || all[1][i] == 9
				}},
			{"none", zukowski.Range[int64](2, 10, 5), func([][]int64, int) bool { return false }},
		}
		for _, ge := range exprs {
			for _, groupCols := range [][]int{{0}, {0, 1}, {}} {
				got, err := cs.GroupAggregate(ge.expr, groupCols, specs)
				if err != nil {
					t.Fatalf("%v/%s/%v: GroupAggregate: %v", mix, ge.name, groupCols, err)
				}
				want := groupOracle(all, ge.ok, groupCols, specs)
				checkGrouped(t, mix[0]+"/"+ge.name, got, want)
			}
		}
	}
}

// TestGroupAggregateErrors checks column validation.
func TestGroupAggregateErrors(t *testing.T) {
	cs, _ := buildGroupSet(t, []string{"pdict", "pdict", "pfor", "auto"}, 1_000, 3)
	if _, err := cs.GroupAggregate(zukowski.Expr[int64]{}, []int{4}, nil); err == nil {
		t.Fatal("bad group column accepted")
	}
	if _, err := cs.GroupAggregate(zukowski.Expr[int64]{}, nil,
		[]zukowski.AggSpec[int64]{{Kind: zukowski.AggSum, Col: 9}}); err == nil {
		t.Fatal("bad aggregate column accepted")
	}
	if _, err := cs.GroupAggregate(zukowski.Range[int64](7, 0, 1), nil, nil); err == nil {
		t.Fatal("bad expression column accepted")
	}
}

// TestJoinOnOracle drives the dictionary-code hash join against a nested
// loop oracle, over dictionary-compressed and plain probe columns.
func TestJoinOnOracle(t *testing.T) {
	for _, probeCodec := range []string{"pdict", "pfor", "none"} {
		cs, all := buildGroupSet(t, []string{probeCodec, "pdict", "pfor", "auto"}, 12_000, 77)

		// Build side: some keys match the probe column's dense values, some
		// its stragglers, some nothing; key 23 appears twice.
		buildKeys := []int64{23, 35, 23, 1017, 4, 59}
		jt := zukowski.BuildJoin(buildKeys)

		expr := zukowski.Range[int64](2, 0, 2000)
		var wantProbe []int64
		var wantBuild []int32
		for i := range all[0] {
			if all[2][i] < 0 || all[2][i] > 2000 {
				continue
			}
			for bi, k := range buildKeys {
				if all[0][i] == k {
					wantProbe = append(wantProbe, int64(i))
					wantBuild = append(wantBuild, int32(bi))
				}
			}
		}
		// The oracle above emits build-row order per probe row only if the
		// scan does too; JoinOn promises build order within a probe row, and
		// BuildJoin keeps insertion order per key, so sort pairs per probe
		// row identically: both sides already agree by construction.

		var gotProbe []int64
		var gotBuild []int32
		err := cs.JoinOn(expr, 0, jt, func(pr []int64, br []int32) bool {
			gotProbe = append(gotProbe, pr...)
			gotBuild = append(gotBuild, br...)
			return true
		})
		if err != nil {
			t.Fatalf("%s: JoinOn: %v", probeCodec, err)
		}
		if !slices.Equal(gotProbe, wantProbe) || !slices.Equal(gotBuild, wantBuild) {
			t.Fatalf("%s: JoinOn disagrees with oracle: got %d pairs, want %d",
				probeCodec, len(gotProbe), len(wantProbe))
		}
	}
}

// TestJoinTableRows checks the build-side surface.
func TestJoinTableRows(t *testing.T) {
	jt := zukowski.BuildJoin([]int64{5, 9, 5})
	if jt.Len() != 2 {
		t.Fatalf("Len = %d, want 2", jt.Len())
	}
	if got := jt.Rows(5); !slices.Equal(got, []int32{0, 2}) {
		t.Fatalf("Rows(5) = %v", got)
	}
	if jt.Rows(4) != nil {
		t.Fatal("Rows(4) should be nil")
	}
}

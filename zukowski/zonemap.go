package zukowski

import (
	"fmt"
)

// Zone maps: the ZKC2 directory stores the min and max value of every
// block, so a selective scan consults 16 bytes of metadata instead of
// decompressing the block — the classic small-materialized-aggregate
// trick. Pruning matters most exactly where the paper's superscalar
// decompression shines: on clustered or sorted columns a range predicate
// touches a handful of blocks and the decode bandwidth is spent only on
// those.
//
// Values are stored as 64-bit two's-complement bit patterns
// (sign-extended), so one directory layout serves all eight element
// types; zoneBits/zoneValue convert losslessly in both directions.

// zoneBits widens v to the 64-bit directory representation.
func zoneBits[T Integer](v T) uint64 { return uint64(int64(v)) }

// zoneValue narrows a directory bit pattern back to T. Only patterns
// produced by zoneBits[T] round-trip; the directory checksum guards the
// stored patterns against corruption.
func zoneValue[T Integer](bits uint64) T { return T(bits) }

// FormatName returns the container magic string for a format version
// ("ZKC1", "ZKC2"), or a descriptive placeholder for unknown versions.
func FormatName(version int) string {
	switch version {
	case FormatZKC1:
		return "ZKC1"
	case FormatZKC2:
		return "ZKC2"
	}
	return fmt.Sprintf("unknown(%d)", version)
}

// HasZoneMaps reports whether the container carries per-block min/max
// statistics (ZKC2 and later).
func (cr *ColumnReader[T]) HasZoneMaps() bool { return cr.version >= FormatZKC2 }

// ZoneMap returns the min and max value of block b. ok is false when the
// container predates zone maps (ZKC1) or b is out of range.
func (cr *ColumnReader[T]) ZoneMap(b int) (min, max T, ok bool) {
	if !cr.HasZoneMaps() || b < 0 || b >= len(cr.blocks) {
		return min, max, false
	}
	return zoneValue[T](cr.blocks[b].minBits), zoneValue[T](cr.blocks[b].maxBits), true
}

// ScanWhere scans only the blocks whose zone map intersects the inclusive
// range [lo, hi], invoking fn with each decoded candidate vector exactly
// like Scan. Blocks whose min/max provably exclude the range are skipped
// without being read or decompressed; fn still receives whole blocks and
// must apply the exact predicate itself (a zone map proves absence, not
// presence). On a ZKC1 container there are no zone maps and every block
// is scanned. The vector is reused between calls; fn must copy values it
// keeps, and returning false stops the scan early.
func (cr *ColumnReader[T]) ScanWhere(lo, hi T, fn func(vals []T) bool, opts ...ScanOption) error {
	return cr.scanBlocks(parseScanOpts(opts), cr.zoneMatch(lo, hi), func(_ int, vals []T) bool { return fn(vals) })
}

// zoneMatch returns the block predicate of a [lo, hi] range scan.
func (cr *ColumnReader[T]) zoneMatch(lo, hi T) func(b int) bool {
	return func(b int) bool { return !cr.blockExcludes(b, lo, hi) }
}

// CountCandidateBlocks returns how many blocks a ScanWhere over [lo, hi]
// would decompress — the denominator of a zone-map skip rate is
// NumBlocks. It reads only directory metadata.
func (cr *ColumnReader[T]) CountCandidateBlocks(lo, hi T) int {
	n := 0
	for i := range cr.blocks {
		if !cr.blockExcludes(i, lo, hi) {
			n++
		}
	}
	return n
}

// blockExcludes reports whether block b's zone map proves that no value
// in [lo, hi] can occur in the block.
func (cr *ColumnReader[T]) blockExcludes(b int, lo, hi T) bool {
	bmin, bmax, ok := cr.ZoneMap(b)
	return ok && (bmax < lo || bmin > hi)
}

// BlockInfo describes one block of a column container: its extent in the
// file, its directory statistics, and whether those statistics exist in
// this format version.
type BlockInfo[T Integer] struct {
	Offset int64 // first byte of the frame
	Length int   // frame size in bytes
	Count  int   // values in the block

	HasChecksum bool   // ZKC2: CRC32C holds the stored payload checksum
	CRC32C      uint32 // stored payload CRC32-C (0 for ZKC1)

	HasZoneMap bool // ZKC2: Min and Max hold the block's zone map
	Min, Max   T
}

// BlockInfo returns block b's directory entry without touching the
// block's payload.
func (cr *ColumnReader[T]) BlockInfo(b int) (BlockInfo[T], error) {
	if b < 0 || b >= len(cr.blocks) {
		return BlockInfo[T]{}, fmt.Errorf("%w: block %d not in [0,%d)", ErrIndexOutOfRange, b, len(cr.blocks))
	}
	blk := cr.blocks[b]
	info := BlockInfo[T]{
		Offset: int64(blk.offset),
		Length: int(blk.length),
		Count:  int(blk.count),
	}
	if cr.version >= FormatZKC2 {
		info.HasChecksum = true
		info.CRC32C = blk.crc
		info.HasZoneMap = true
		info.Min = zoneValue[T](blk.minBits)
		info.Max = zoneValue[T](blk.maxBits)
	}
	return info, nil
}

// VerifyBlock checks block b's integrity without decoding its values on
// ZKC2 (payload CRC32-C); on ZKC1, which stores no checksum, it falls
// back to a full decode so damage still surfaces as a typed error.
func (cr *ColumnReader[T]) VerifyBlock(b int) error {
	if b < 0 || b >= len(cr.blocks) {
		return fmt.Errorf("%w: block %d not in [0,%d)", ErrIndexOutOfRange, b, len(cr.blocks))
	}
	if cr.version >= FormatZKC2 {
		// viewVerified hashes unconditionally: VerifyBlock's contract is to
		// check the bytes now, not to trust the latch.
		_, err := cr.viewVerified(b)
		return err
	}
	st := cr.getState()
	defer cr.putState(st)
	_, err := cr.readBlockInto(st, b, nil)
	return err
}

// Verify checks every block of the column; the directory checksum was
// already verified when the reader opened. It returns the first failure.
func (cr *ColumnReader[T]) Verify() error {
	for b := range cr.blocks {
		if err := cr.VerifyBlock(b); err != nil {
			return err
		}
	}
	return nil
}

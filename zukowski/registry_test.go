package zukowski_test

import (
	"errors"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/zukowski"
)

// TestRegistryBuiltins: the registry must report every built-in scheme —
// the four patched schemes plus at least two baselines — for every element
// type.
func TestRegistryBuiltins(t *testing.T) {
	names := zukowski.Codecs()
	if len(names) < 6 {
		t.Fatalf("registry reports %d codecs (%v), want >= 6", len(names), names)
	}
	for _, want := range []string{"pfor", "pfor-delta", "pdict", "none", "auto", "for", "dict", "vbyte"} {
		if !slices.Contains(names, want) {
			t.Errorf("registry is missing %q (have %v)", want, names)
		}
	}
	// Every name resolves for every element type, and the codec's Name
	// matches its registry key.
	for _, name := range names {
		c, err := zukowski.Lookup[uint16](name)
		if err != nil {
			t.Errorf("Lookup[uint16](%q): %v", name, err)
			continue
		}
		if c.Name() != name {
			t.Errorf("codec %q reports Name() = %q", name, c.Name())
		}
	}
}

// TestCodecsDeterministicOrder: Codecs() is a stable, documented order —
// registration order, built-ins first — not map iteration order. Tools
// that enumerate codecs (codecbench reports, the scan service's
// capability listing, loadgen output) rely on two invocations agreeing,
// and checked-in baselines rely on the order surviving process restarts.
// User registrations append after this prefix, so the test pins the
// built-in prefix exactly and then checks a second call returns an
// identical snapshot.
func TestCodecsDeterministicOrder(t *testing.T) {
	wantPrefix := []string{
		"pfor", "pfor-delta", "pdict", "none", "auto",
		"for", "dict", "vbyte", "flate", "lzw", "lzrw1",
	}
	names := zukowski.Codecs()
	if len(names) < len(wantPrefix) {
		t.Fatalf("Codecs() = %v, want at least the %d built-ins", names, len(wantPrefix))
	}
	if !slices.Equal(names[:len(wantPrefix)], wantPrefix) {
		t.Fatalf("built-in codec order changed:\n got %v\nwant %v", names[:len(wantPrefix)], wantPrefix)
	}
	if again := zukowski.Codecs(); !slices.Equal(names, again) {
		t.Fatalf("two Codecs() calls disagree:\n first %v\nsecond %v", names, again)
	}
}

// TestRegistryUnknown: unknown names return ErrUnknownCodec.
func TestRegistryUnknown(t *testing.T) {
	if _, err := zukowski.Lookup[int64]("no-such-codec"); !errors.Is(err, zukowski.ErrUnknownCodec) {
		t.Fatalf("err = %v, want ErrUnknownCodec", err)
	}
}

// xorCodec is a trivial user codec for registration tests.
type xorCodec struct{ zukowski.None[int32] }

func (xorCodec) Name() string { return "xor-test" }

// TestRegisterUserCodec: user codecs join the registry and resolve only
// for the element type they were registered under.
func TestRegisterUserCodec(t *testing.T) {
	zukowski.Register[int32]("xor-test", func() zukowski.Codec[int32] { return xorCodec{} })
	if !slices.Contains(zukowski.Codecs(), "xor-test") {
		t.Fatal("registered codec missing from Codecs()")
	}
	if _, err := zukowski.Lookup[int32]("xor-test"); err != nil {
		t.Fatalf("Lookup[int32]: %v", err)
	}
	if _, err := zukowski.Lookup[int64]("xor-test"); !errors.Is(err, zukowski.ErrUnknownCodec) {
		t.Fatalf("Lookup[int64] err = %v, want ErrUnknownCodec", err)
	}
}

// quickstartColumn rebuilds the column of examples/quickstart: clustered
// dates with sparse wide outliers.
func quickstartColumn() []int64 {
	rng := rand.New(rand.NewSource(1))
	column := make([]int64, 1_000_000)
	for i := range column {
		column[i] = 730_000 + rng.Int63n(2048)
		if rng.Intn(1000) == 0 {
			column[i] = rng.Int63n(1 << 40)
		}
	}
	return column
}

// TestAutoMatchesChoose: the Auto codec must make the same decision as the
// internal analyzer it wraps, both in Analyze and in the frame it emits.
func TestAutoMatchesChoose(t *testing.T) {
	column := quickstartColumn()
	want := core.Choose(core.Sample(column, core.DefaultSampleSize))

	auto := zukowski.Auto[int64]{}
	if a := auto.Analyze(column); a.Scheme != want.Scheme.String() {
		t.Fatalf("Analyze chose %s, core.Choose chose %s", a.Scheme, want.Scheme)
	}
	frame, err := auto.Encode(nil, column)
	if err != nil {
		t.Fatal(err)
	}
	st, err := auto.Stats(frame)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scheme != want.Scheme.String() {
		t.Fatalf("Auto encoded %s, core.Choose chose %s", st.Scheme, want.Scheme)
	}
	if st.BitWidth != want.B {
		t.Fatalf("Auto encoded b=%d, core.Choose chose b=%d", st.BitWidth, want.B)
	}
}

package zukowski_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/zukowski"
)

// buildColumn writes src through a ColumnWriter and returns the container
// bytes.
func buildColumn[T zukowski.Integer](t *testing.T, codec zukowski.Codec[T], blockValues int, src []T) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter(&buf, codec, blockValues)
	if err != nil {
		t.Fatal(err)
	}
	// Feed in uneven slices to exercise the writer's internal buffering.
	for lo := 0; lo < len(src); {
		hi := min(lo+1+lo%377, len(src))
		if err := cw.Write(src[lo:hi]); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestColumnRoundTrip: every registered codec round-trips through the
// multi-block column container, with ReadAll, Scan, ReadBlock and Get all
// agreeing.
func TestColumnRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := genValues[int64](rng, 10_000)
	for _, name := range zukowski.Codecs() {
		codec, err := zukowski.Lookup[int64](name)
		if errors.Is(err, zukowski.ErrUnknownCodec) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		data := buildColumn(t, codec, 1024, src)
		cr, err := zukowski.OpenColumn[int64](data)
		if err != nil {
			t.Fatalf("%s: OpenColumn: %v", name, err)
		}
		if cr.Len() != len(src) {
			t.Fatalf("%s: Len = %d, want %d", name, cr.Len(), len(src))
		}
		if want := (len(src) + 1023) / 1024; cr.NumBlocks() != want {
			t.Fatalf("%s: NumBlocks = %d, want %d", name, cr.NumBlocks(), want)
		}

		out, err := cr.ReadAll(nil)
		if err != nil {
			t.Fatalf("%s: ReadAll: %v", name, err)
		}
		if len(out) != len(src) {
			t.Fatalf("%s: ReadAll returned %d values", name, len(out))
		}
		for i := range src {
			if out[i] != src[i] {
				t.Fatalf("%s: ReadAll value %d: got %d want %d", name, i, out[i], src[i])
			}
		}

		var scanned []int64
		if err := cr.Scan(func(vals []int64) bool {
			scanned = append(scanned, vals...)
			return true
		}); err != nil {
			t.Fatalf("%s: Scan: %v", name, err)
		}
		if len(scanned) != len(src) {
			t.Fatalf("%s: Scan yielded %d values", name, len(scanned))
		}

		blockwise, err := cr.ReadBlock(cr.NumBlocks()-1, nil)
		if err != nil {
			t.Fatalf("%s: ReadBlock: %v", name, err)
		}
		if want := len(src) % 1024; want != 0 && len(blockwise) != want {
			t.Fatalf("%s: last block has %d values, want %d", name, len(blockwise), want)
		}

		for k := 0; k < 500; k++ {
			i := rng.Intn(len(src))
			v, err := cr.Get(i)
			if err != nil {
				t.Fatalf("%s: Get(%d): %v", name, i, err)
			}
			if v != src[i] {
				t.Fatalf("%s: Get(%d) = %d, want %d", name, i, v, src[i])
			}
		}
		for _, i := range []int{-1, len(src)} {
			if _, err := cr.Get(i); !errors.Is(err, zukowski.ErrIndexOutOfRange) {
				t.Fatalf("%s: Get(%d) err = %v, want ErrIndexOutOfRange", name, i, err)
			}
		}
		if cr.Ratio() <= 0 {
			t.Fatalf("%s: Ratio = %v", name, cr.Ratio())
		}
	}
}

// TestColumnWriterDefaults: nil codec defaults to Auto, zero block size to
// DefaultBlockValues, and writer-side accounting matches the container.
func TestColumnWriterDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	src := genValues[uint32](rng, 3000)
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter[uint32](&buf, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Write(src); err != nil {
		t.Fatal(err)
	}
	if cw.Len() != len(src) {
		t.Fatalf("writer Len = %d", cw.Len())
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if cw.CompressedBytes() != buf.Len() {
		t.Fatalf("writer CompressedBytes = %d, container is %d", cw.CompressedBytes(), buf.Len())
	}
	if err := cw.Write(src); !errors.Is(err, zukowski.ErrClosed) {
		t.Fatalf("Write after Close err = %v, want ErrClosed", err)
	}
	if err := cw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	cr, err := zukowski.OpenColumn[uint32](buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if cr.NumBlocks() != 1 || cr.Len() != len(src) {
		t.Fatalf("NumBlocks = %d, Len = %d", cr.NumBlocks(), cr.Len())
	}
}

// TestColumnWriterOversizedBlock: block sizes beyond the 25-bit limit are
// rejected up front.
func TestColumnWriterOversizedBlock(t *testing.T) {
	var buf bytes.Buffer
	if _, err := zukowski.NewColumnWriter[int64](&buf, nil, zukowski.MaxBlockValues+1); !errors.Is(err, zukowski.ErrBlockTooLarge) {
		t.Fatalf("err = %v, want ErrBlockTooLarge", err)
	}
}

// TestColumnCorruption: truncating or damaging a container produces typed
// errors, never panics.
func TestColumnCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := genValues[int64](rng, 5000)
	data := buildColumn[int64](t, zukowski.PFOR[int64]{}, 1024, src)

	// Truncation at a spread of prefix lengths: either OpenColumn rejects
	// the container, or reading it surfaces a typed error.
	for cut := 0; cut < len(data); cut += 1 + cut/32 {
		cr, err := zukowski.OpenColumn[int64](data[:cut])
		if err != nil {
			if !errors.Is(err, zukowski.ErrCorruptColumn) && !errors.Is(err, zukowski.ErrCorruptSegment) {
				t.Fatalf("truncation at %d: OpenColumn err = %v", cut, err)
			}
			continue
		}
		if _, err := cr.ReadAll(nil); err == nil {
			t.Fatalf("truncation at %d: container of %d bytes read fully", cut, cut)
		}
	}

	// Element-type mismatch.
	if _, err := zukowski.OpenColumn[int8](data); !errors.Is(err, zukowski.ErrCorruptColumn) {
		t.Fatalf("element mismatch err = %v, want ErrCorruptColumn", err)
	}

	// Directory damage: a block count pointing outside the file (the ZKC2
	// tail stores the count 16 bytes from the end).
	bad := bytes.Clone(data)
	bad[len(bad)-16] = 0xFF
	bad[len(bad)-15] = 0xFF
	if _, err := zukowski.OpenColumn[int64](bad); !errors.Is(err, zukowski.ErrCorruptColumn) {
		t.Fatalf("directory damage err = %v, want ErrCorruptColumn", err)
	}

	// Damage inside a block: Get and ReadAll report corruption.
	bad = bytes.Clone(data)
	for i := 60; i < 100; i++ {
		bad[i] ^= 0xA5
	}
	cr, err := zukowski.OpenColumn[int64](bad)
	if err == nil {
		if _, err = cr.Get(0); err == nil {
			t.Fatal("Get on damaged block succeeded")
		}
		if !errors.Is(err, zukowski.ErrCorruptSegment) && !errors.Is(err, zukowski.ErrCorruptColumn) {
			t.Fatalf("Get on damaged block err = %v", err)
		}
	}
}

// alienCodec emits frames in a format ColumnReader cannot dispatch on.
type alienCodec struct{ zukowski.None[int64] }

func (alienCodec) Name() string { return "alien" }
func (alienCodec) Encode(dst []byte, src []int64) ([]byte, error) {
	return append(dst, 0x00, 0x01, 0x02), nil
}

// TestColumnWriterRejectsAlienFrames: a codec whose frames the reader
// cannot decode fails at write time, not at read time.
func TestColumnWriterRejectsAlienFrames(t *testing.T) {
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter[int64](&buf, alienCodec{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	err = cw.Write(make([]int64, 64)) // four full blocks: flush happens here
	if !errors.Is(err, zukowski.ErrUnknownCodec) {
		t.Fatalf("Write err = %v, want ErrUnknownCodec", err)
	}
}

// TestColumnEmpty: a column with no values still round-trips.
func TestColumnEmpty(t *testing.T) {
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter[int16](&buf, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	cr, err := zukowski.OpenColumn[int16](buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if cr.Len() != 0 || cr.NumBlocks() != 0 {
		t.Fatalf("Len = %d, NumBlocks = %d", cr.Len(), cr.NumBlocks())
	}
	if out, err := cr.ReadAll(nil); err != nil || len(out) != 0 {
		t.Fatalf("ReadAll = %v, %v", out, err)
	}
	if _, err := cr.Get(0); !errors.Is(err, zukowski.ErrIndexOutOfRange) {
		t.Fatalf("Get(0) err = %v, want ErrIndexOutOfRange", err)
	}
}

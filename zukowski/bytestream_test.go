package zukowski_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"repro/zukowski"
)

var byteStreamNames = []string{"flate", "lzw", "lzrw1"}

// TestByteStreamColumn runs the byte-stream baselines through the column
// container: write, read back, Get, ScanSelect vs oracle.
func TestByteStreamColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	vals := make([]int64, 20_000)
	for i := range vals {
		vals[i] = rng.Int63n(300)
	}
	for _, name := range byteStreamNames {
		codec, err := zukowski.Lookup[int64](name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		t.Run(name, func(t *testing.T) {
			cr := buildSelectColumn(t, codec, 3000, vals)
			out, err := cr.ReadAll(nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range vals {
				if out[i] != vals[i] {
					t.Fatalf("value %d: got %d want %d", i, out[i], vals[i])
				}
			}
			for _, i := range []int{0, 2999, 3000, 19_999} {
				if v, err := cr.Get(i); err != nil || v != vals[i] {
					t.Fatalf("Get(%d) = %v, %v; want %d", i, v, err, vals[i])
				}
			}
			for _, r := range columnRanges(vals) {
				checkColumnSelect(t, cr, r[0], r[1])
			}
		})
	}
}

// TestByteStreamCorruptFrames feeds damaged and crafted frames to the
// byte-stream decoders: every failure mode must be a typed error, and a
// length prefix announcing a huge inflation must be rejected before any
// allocation ("decompression bomb" guard).
func TestByteStreamCorruptFrames(t *testing.T) {
	vals := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, name := range byteStreamNames {
		codec, err := zukowski.Lookup[int64](name)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := codec.Encode(nil, vals)
		if err != nil {
			t.Fatal(err)
		}

		// Truncations at every prefix length.
		for cut := 0; cut < len(frame); cut++ {
			if _, err := codec.Decode(nil, frame[:cut]); err == nil {
				t.Errorf("%s: decode of %d-byte truncation succeeded", name, cut)
			} else if !errors.Is(err, zukowski.ErrCorruptSegment) {
				t.Errorf("%s: truncation at %d: %v, want ErrCorruptSegment", name, cut, err)
			}
		}

		// Bit flips across the stream must error or round-trip-mismatch,
		// never panic; errors must stay typed.
		for i := 8; i < len(frame); i++ {
			mut := bytes.Clone(frame)
			mut[i] ^= 0x10
			out, err := codec.Decode(nil, mut)
			if err != nil && !errors.Is(err, zukowski.ErrCorruptSegment) {
				t.Errorf("%s: bit flip at %d: untyped error %v", name, i, err)
			}
			_ = out
		}

		// A crafted inner length prefix demanding 1GB must be refused: the
		// header says 8 values (64 bytes), so the inflation cap is tiny.
		mut := bytes.Clone(frame)
		binary.LittleEndian.PutUint32(mut[8:], 1<<30)
		if _, err := codec.Decode(nil, mut); !errors.Is(err, zukowski.ErrCorruptSegment) {
			t.Errorf("%s: 1GB length prefix: %v, want ErrCorruptSegment", name, err)
		}

		// Frames decode only under their own codec id.
		for _, other := range byteStreamNames {
			if other == name {
				continue
			}
			oc, _ := zukowski.Lookup[int64](other)
			if _, err := oc.Decode(nil, frame); !errors.Is(err, zukowski.ErrCorruptSegment) {
				t.Errorf("%s frame under %s: %v, want ErrCorruptSegment", name, other, err)
			}
		}
	}
}

package zukowski

import (
	"repro/internal/core"
	"repro/internal/segment"
)

// Auto is the self-tuning codec: each Encode call runs the paper's
// compression-mode analysis (Section 3.1, "Choosing Compression Schemes")
// on a sample of the input, picks the scheme and parameters minimizing the
// modeled bits per value, and encodes with the winner. When no scheme beats
// verbatim storage — or the winner's actual output ends up larger than a
// raw segment — the values are stored uncoded.
//
// Decode, Get and Stats dispatch on the frame header, so a reader needs no
// knowledge of which scheme the analyzer picked.
type Auto[T Integer] struct{}

// Name implements Codec.
func (Auto[T]) Name() string { return "auto" }

// Analysis reports the analyzer's decision for an input.
type Analysis struct {
	// Scheme is the chosen scheme's name ("PFOR", "PFOR-DELTA", "PDICT" or
	// "NONE") and Width its code width in bits.
	Scheme string
	Width  uint
	// BitsPerValue is the modeled compressed size in bits per value,
	// including projected exceptions and entry-point overhead.
	BitsPerValue float64
	// ExceptionRate is the projected effective exception rate E',
	// including compulsory exceptions (Figure 6 of the paper).
	ExceptionRate float64
	// DictEntries is the chosen dictionary size (PDICT only).
	DictEntries int
}

// Analyze runs the compression-mode analysis on a sample of src and
// reports the decision Encode would take, without encoding anything.
func (Auto[T]) Analyze(src []T) Analysis {
	ch := core.Choose(core.Sample(src, core.DefaultSampleSize))
	return Analysis{
		Scheme:        ch.Scheme.String(),
		Width:         ch.B,
		BitsPerValue:  ch.Bits,
		ExceptionRate: ch.ExceptionRate,
		DictEntries:   len(ch.Dict),
	}
}

// Encode implements Codec.
func (Auto[T]) Encode(dst []byte, src []T) ([]byte, error) {
	if err := checkLen(len(src)); err != nil {
		return nil, err
	}
	if len(src) > 0 {
		ch := core.Choose(core.Sample(src, core.DefaultSampleSize))
		if ch.Scheme != core.SchemeNone {
			buf := segment.Marshal(ch.Compress(src))
			// Fall back to raw storage when compression does not pay on
			// this particular input (the model decided on a sample).
			if len(buf) < 8+len(src)*elemSize[T]() {
				return append(dst, buf...), nil
			}
		}
	}
	return append(dst, segment.MarshalRaw(src)...), nil
}

// Decode implements Codec.
func (Auto[T]) Decode(dst []T, encoded []byte) ([]T, error) {
	return decodeSegment(dst, encoded)
}

// Get implements Codec.
func (Auto[T]) Get(encoded []byte, i int) (T, error) { return segmentGet[T](encoded, i) }

// Stats implements Codec.
func (Auto[T]) Stats(encoded []byte) (Stats, error) { return segmentStats[T](encoded) }

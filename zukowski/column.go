package zukowski

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/segment"
)

// This file implements the streaming column container: a sequence of
// independently compressed blocks plus a directory footer, the multi-block
// analogue of ColumnBM's chunked storage (one segment per chunk, Section 4
// of the paper). Splitting a column into bounded blocks keeps every block
// under the 25-bit exception-offset limit, lets the analyzer re-tune
// parameters as the data drifts, and bounds the work of a point lookup.
//
// Layout:
//
//	header (16 B): "ZKC1", element size, reserved, block size in values
//	blocks:        one compressed frame per block, back to back
//	directory:     per block: u64 offset, u32 byte length, u32 value count
//	tail (16 B):   u64 total values, u32 block count, "ZKE1"
//
// The directory lives at the end so the writer streams blocks without
// seeking; the reader finds it from the fixed-size tail.

const (
	columnHeaderSize = 16
	columnDirEntry   = 16
	columnTailSize   = 16

	// DefaultBlockValues is the writer's default block size: 64K values,
	// the granularity the paper suggests for sample-based analysis and
	// small enough that a block comfortably outlives its 25-bit exception
	// offsets.
	DefaultBlockValues = 64 * 1024
)

var (
	columnMagic = [4]byte{'Z', 'K', 'C', '1'}
	columnTail  = [4]byte{'Z', 'K', 'E', '1'}
)

// ColumnWriter streams a column of values into an io.Writer as a sequence
// of compressed blocks. Values accumulate via Write; every full block is
// encoded with the writer's codec and flushed immediately, so memory use
// is bounded by one block regardless of column length. Close flushes the
// final partial block and appends the directory.
type ColumnWriter[T Integer] struct {
	w           io.Writer
	codec       Codec[T]
	blockValues int

	buf    []T
	frame  []byte
	dir    []columnBlock
	offset uint64
	total  uint64
	closed bool
	err    error // first write/encode error; sticky
}

type columnBlock struct {
	offset uint64
	length uint32
	count  uint32
}

// NewColumnWriter starts a column on w. codec nil defaults to the
// self-tuning Auto codec; blockValues <= 0 defaults to DefaultBlockValues
// and may not exceed MaxBlockValues. The 16-byte container header is
// written immediately.
func NewColumnWriter[T Integer](w io.Writer, codec Codec[T], blockValues int) (*ColumnWriter[T], error) {
	if blockValues <= 0 {
		blockValues = DefaultBlockValues
	}
	if blockValues > MaxBlockValues {
		return nil, fmt.Errorf("%w: block of %d values", ErrBlockTooLarge, blockValues)
	}
	if codec == nil {
		codec = Auto[T]{}
	}
	var hdr [columnHeaderSize]byte
	copy(hdr[:4], columnMagic[:])
	hdr[4] = byte(elemSize[T]())
	binary.LittleEndian.PutUint32(hdr[8:], uint32(blockValues))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &ColumnWriter[T]{
		w:           w,
		codec:       codec,
		blockValues: blockValues,
		offset:      columnHeaderSize,
	}, nil
}

// Write appends values to the column, flushing every completed block.
func (cw *ColumnWriter[T]) Write(vals []T) error {
	if cw.closed {
		return ErrClosed
	}
	if cw.err != nil {
		return cw.err
	}
	for len(vals) > 0 {
		take := min(cw.blockValues-len(cw.buf), len(vals))
		cw.buf = append(cw.buf, vals[:take]...)
		vals = vals[take:]
		if len(cw.buf) == cw.blockValues {
			if err := cw.flushBlock(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (cw *ColumnWriter[T]) flushBlock() error {
	frame, err := cw.codec.Encode(cw.frame[:0], cw.buf)
	if err == nil {
		// Fail at write time if the codec emits frames ColumnReader
		// cannot dispatch on — otherwise the column would be accepted now
		// and unreadable forever. User codecs must emit (or wrap) the
		// segment or baseline frame formats.
		if len(frame) == 0 || (frame[0] != segment.Magic && frame[0] != baselineMagic) {
			err = fmt.Errorf("%w: codec %q emits frames the column reader cannot decode",
				ErrUnknownCodec, cw.codec.Name())
		}
	}
	if err == nil {
		_, err = cw.w.Write(frame)
	}
	if err != nil {
		cw.err = err
		return err
	}
	cw.frame = frame // recycle the encode buffer across blocks
	cw.dir = append(cw.dir, columnBlock{
		offset: cw.offset,
		length: uint32(len(frame)),
		count:  uint32(len(cw.buf)),
	})
	cw.offset += uint64(len(frame))
	cw.total += uint64(len(cw.buf))
	cw.buf = cw.buf[:0]
	return nil
}

// Close flushes the final partial block and writes the directory footer.
// Closing an already-closed writer is a no-op.
func (cw *ColumnWriter[T]) Close() error {
	if cw.closed {
		return nil
	}
	if cw.err != nil {
		return cw.err
	}
	if len(cw.buf) > 0 {
		if err := cw.flushBlock(); err != nil {
			return err
		}
	}
	cw.closed = true
	footer := make([]byte, 0, len(cw.dir)*columnDirEntry+columnTailSize)
	var ent [columnDirEntry]byte
	for _, blk := range cw.dir {
		binary.LittleEndian.PutUint64(ent[:], blk.offset)
		binary.LittleEndian.PutUint32(ent[8:], blk.length)
		binary.LittleEndian.PutUint32(ent[12:], blk.count)
		footer = append(footer, ent[:]...)
	}
	var tail [columnTailSize]byte
	binary.LittleEndian.PutUint64(tail[:], cw.total)
	binary.LittleEndian.PutUint32(tail[8:], uint32(len(cw.dir)))
	copy(tail[12:], columnTail[:])
	footer = append(footer, tail[:]...)
	_, err := cw.w.Write(footer)
	if err != nil {
		cw.err = err
	}
	return err
}

// Len returns the number of values written so far, including buffered ones.
func (cw *ColumnWriter[T]) Len() int { return int(cw.total) + len(cw.buf) }

// NumBlocks returns the number of blocks flushed so far.
func (cw *ColumnWriter[T]) NumBlocks() int { return len(cw.dir) }

// CompressedBytes returns the container bytes written so far (header and
// flushed blocks; the directory is counted only after Close).
func (cw *ColumnWriter[T]) CompressedBytes() int {
	n := int(cw.offset)
	if cw.closed {
		n += len(cw.dir)*columnDirEntry + columnTailSize
	}
	return n
}

// ColumnReader reads a column container from memory. Point lookups locate
// the enclosing block through the directory and then use the fine-grained
// entry-point access of the patched schemes; the most recently touched
// block stays parsed, so clustered lookups avoid re-reading the directory
// frame. A ColumnReader is not safe for concurrent use; open one per
// goroutine (they share the underlying bytes).
type ColumnReader[T Integer] struct {
	data   []byte
	blocks []columnBlock
	starts []int // starts[i] = first row of block i; len = len(blocks)+1
	total  int

	// Lazy per-block parse cache for Get: blkCache memoizes the block
	// form of patched frames (fine-grained access needs only the parsed
	// sections, not the decoded values); valCache memoizes fully decoded
	// values for frames without entry points (raw and baseline frames).
	blkCache []*core.Block[T]
	valCache [][]T
	dec      core.Decoder[T]
}

// OpenColumn parses a container produced by ColumnWriter. The bytes are
// retained (not copied); they must stay immutable while the reader lives.
func OpenColumn[T Integer](data []byte) (*ColumnReader[T], error) {
	if len(data) < columnHeaderSize+columnTailSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorruptColumn, len(data))
	}
	if [4]byte(data[:4]) != columnMagic {
		return nil, fmt.Errorf("%w: bad header magic", ErrCorruptColumn)
	}
	if int(data[4]) != elemSize[T]() {
		return nil, fmt.Errorf("%w: element size %d, reading as %d", ErrCorruptColumn, data[4], elemSize[T]())
	}
	tail := data[len(data)-columnTailSize:]
	if [4]byte(tail[12:]) != columnTail {
		return nil, fmt.Errorf("%w: bad tail magic", ErrCorruptColumn)
	}
	total := binary.LittleEndian.Uint64(tail)
	numBlocks := int(binary.LittleEndian.Uint32(tail[8:]))
	dirStart := len(data) - columnTailSize - numBlocks*columnDirEntry
	if numBlocks < 0 || dirStart < columnHeaderSize {
		return nil, fmt.Errorf("%w: directory of %d blocks does not fit", ErrCorruptColumn, numBlocks)
	}
	cr := &ColumnReader[T]{
		data:     data,
		blocks:   make([]columnBlock, numBlocks),
		starts:   make([]int, numBlocks+1),
		total:    int(total),
		blkCache: make([]*core.Block[T], numBlocks),
		valCache: make([][]T, numBlocks),
	}
	rows, nextOffset := 0, uint64(columnHeaderSize)
	for i := range cr.blocks {
		ent := data[dirStart+i*columnDirEntry:]
		blk := columnBlock{
			offset: binary.LittleEndian.Uint64(ent),
			length: binary.LittleEndian.Uint32(ent[8:]),
			count:  binary.LittleEndian.Uint32(ent[12:]),
		}
		if blk.offset != nextOffset || blk.offset+uint64(blk.length) > uint64(dirStart) {
			return nil, fmt.Errorf("%w: block %d escapes the data area", ErrCorruptColumn, i)
		}
		cr.blocks[i] = blk
		cr.starts[i] = rows
		rows += int(blk.count)
		nextOffset += uint64(blk.length)
	}
	cr.starts[numBlocks] = rows
	if rows != cr.total {
		return nil, fmt.Errorf("%w: directory counts %d values, tail says %d", ErrCorruptColumn, rows, cr.total)
	}
	return cr, nil
}

// Len returns the number of values in the column.
func (cr *ColumnReader[T]) Len() int { return cr.total }

// NumBlocks returns the number of blocks.
func (cr *ColumnReader[T]) NumBlocks() int { return len(cr.blocks) }

// CompressedBytes returns the container size in bytes.
func (cr *ColumnReader[T]) CompressedBytes() int { return len(cr.data) }

// UncompressedBytes returns the size the values occupy uncoded.
func (cr *ColumnReader[T]) UncompressedBytes() int { return cr.total * elemSize[T]() }

// Ratio returns the column-wide compression ratio.
func (cr *ColumnReader[T]) Ratio() float64 {
	if len(cr.data) == 0 {
		return 0
	}
	return float64(cr.UncompressedBytes()) / float64(len(cr.data))
}

// frame returns block i's bytes.
func (cr *ColumnReader[T]) frame(i int) []byte {
	blk := cr.blocks[i]
	return cr.data[blk.offset : blk.offset+uint64(blk.length)]
}

// decodeColumnFrame decodes one frame regardless of which codec wrote it,
// dispatching on the frame magic.
func decodeColumnFrame[T Integer](dst []T, frame []byte) ([]T, error) {
	if len(frame) == 0 {
		return nil, corrupt(segment.ErrTooShort)
	}
	switch frame[0] {
	case segment.Magic:
		return decodeSegment(dst, frame)
	case baselineMagic:
		if len(frame) < 2 {
			return nil, corrupt(segment.ErrTooShort)
		}
		switch frame[1] {
		case frameFOR:
			return FOR[T]{}.Decode(dst, frame)
		case frameDict:
			return Dict[T]{}.Decode(dst, frame)
		case frameVByte:
			return VByte[T]{}.Decode(dst, frame)
		}
	}
	return nil, corrupt(fmt.Errorf("unknown frame magic 0x%02x", frame[0]))
}

// ReadAll appends every value of the column to dst.
func (cr *ColumnReader[T]) ReadAll(dst []T) ([]T, error) {
	var err error
	for i := range cr.blocks {
		if dst, err = decodeColumnFrame(dst, cr.frame(i)); err != nil {
			return nil, fmt.Errorf("block %d: %w", i, err)
		}
	}
	return dst, nil
}

// ReadBlock appends the values of block b to dst. Together with
// NumBlocks it lets callers zip several same-shaped columns through a
// query in lockstep, one cache-friendly vector at a time.
func (cr *ColumnReader[T]) ReadBlock(b int, dst []T) ([]T, error) {
	if b < 0 || b >= len(cr.blocks) {
		return nil, fmt.Errorf("%w: block %d not in [0,%d)", ErrIndexOutOfRange, b, len(cr.blocks))
	}
	out, err := decodeColumnFrame(dst, cr.frame(b))
	if err != nil {
		return nil, fmt.Errorf("block %d: %w", b, err)
	}
	return out, nil
}

// Scan decodes the column block by block, invoking fn with each decoded
// vector. The slice is reused between calls; fn must copy values it keeps.
// Scanning stops early when fn returns false.
func (cr *ColumnReader[T]) Scan(fn func(vals []T) bool) error {
	var buf []T
	for i := range cr.blocks {
		vals, err := decodeColumnFrame(buf[:0], cr.frame(i))
		if err != nil {
			return fmt.Errorf("block %d: %w", i, err)
		}
		buf = vals
		if !fn(vals) {
			return nil
		}
	}
	return nil
}

// Get returns the value at row i. For patched frames it uses the
// entry-point fine-grained access path (at most one 128-value group is
// touched); raw frames are read in place; baseline frames are decoded
// whole and cached.
func (cr *ColumnReader[T]) Get(i int) (v T, err error) {
	defer guardSegment(&err)
	if i < 0 || i >= cr.total {
		return v, fmt.Errorf("%w: %d not in [0,%d)", ErrIndexOutOfRange, i, cr.total)
	}
	// Find the enclosing block: the last block starting at or before i.
	b := sort.SearchInts(cr.starts, i+1) - 1
	off := i - cr.starts[b]
	// Raw frames are read in place: one header check and a direct load,
	// no decode and nothing cached.
	if frame := cr.frame(b); len(frame) > 0 && frame[0] == segment.Magic && !segment.IsCompressed(frame) {
		return rawGet[T](frame, off)
	}
	if cr.blkCache[b] == nil && cr.valCache[b] == nil {
		if err := cr.parseBlock(b); err != nil {
			return v, err
		}
	}
	if blk := cr.blkCache[b]; blk != nil {
		return cr.dec.Get(blk, off), nil
	}
	return cr.valCache[b][off], nil
}

// parseBlock memoizes block b in the reader's cache. Parsed blocks stay
// resident for the life of the reader, so a random-access workload pays
// the frame parse once per block, not once per lookup.
func (cr *ColumnReader[T]) parseBlock(b int) error {
	frame := cr.frame(b)
	want := int(cr.blocks[b].count)
	if len(frame) > 0 && frame[0] == segment.Magic && segment.IsCompressed(frame) {
		blk, err := segment.Unmarshal[T](frame)
		if err != nil {
			return corrupt(err)
		}
		if blk.N != want {
			return fmt.Errorf("%w: block %d holds %d values, directory says %d", ErrCorruptColumn, b, blk.N, want)
		}
		cr.blkCache[b] = blk
	} else {
		vals, err := decodeColumnFrame[T](nil, frame)
		if err != nil {
			return err
		}
		if len(vals) != want {
			return fmt.Errorf("%w: block %d holds %d values, directory says %d", ErrCorruptColumn, b, len(vals), want)
		}
		cr.valCache[b] = vals
	}
	return nil
}

package zukowski

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/segment"
)

// This file implements the streaming column container: a sequence of
// independently compressed blocks plus a directory footer, the multi-block
// analogue of ColumnBM's chunked storage (one segment per chunk, Section 4
// of the paper). Splitting a column into bounded blocks keeps every block
// under the 25-bit exception-offset limit, lets the analyzer re-tune
// parameters as the data drifts, and bounds the work of a point lookup.
//
// Two format versions exist. ZKC1 (the original layout):
//
//	header (16 B): "ZKC1", element size, reserved, block size in values
//	blocks:        one compressed frame per block, back to back
//	directory:     per block: u64 offset, u32 byte length, u32 value count
//	tail (16 B):   u64 total values, u32 block count, "ZKE1"
//
// ZKC2 (the default since format version 2) keeps the header and frame
// layout byte-identical but hardens and enriches the footer:
//
//	header (16 B): "ZKC2", element size, reserved, block size in values
//	blocks:        one compressed frame per block, back to back
//	directory:     per block: u64 offset, u32 byte length, u32 value count,
//	               u32 CRC32-C of the frame bytes, u32 reserved,
//	               u64 min value, u64 max value (zone map, element bit pattern)
//	tail (24 B):   u64 total values, u32 block count,
//	               u32 CRC32-C of the directory bytes, u32 reserved, "ZKE2"
//
// The per-block CRC32-C turns silent bit rot into ErrChecksumMismatch at
// read time; the min/max pair per block is the zone map ScanWhere consults
// to skip blocks without decompressing them; the directory checksum
// protects the metadata that all of this depends on. The directory lives
// at the end so the writer streams blocks without seeking; the reader
// finds it from the fixed-size tail.

const (
	columnHeaderSize = 16

	columnDirEntryV1 = 16
	columnTailSizeV1 = 16

	columnDirEntryV2 = 40
	columnTailSizeV2 = 24

	// DefaultBlockValues is the writer's default block size: 64K values,
	// the granularity the paper suggests for sample-based analysis and
	// small enough that a block comfortably outlives its 25-bit exception
	// offsets.
	DefaultBlockValues = 64 * 1024

	// FormatZKC1 and FormatZKC2 are the column container format versions
	// accepted by WithFormatVersion. Readers handle both; writers emit
	// FormatZKC2 unless told otherwise.
	FormatZKC1 = 1
	FormatZKC2 = 2
)

var (
	columnMagicV1 = [4]byte{'Z', 'K', 'C', '1'}
	columnTailV1  = [4]byte{'Z', 'K', 'E', '1'}
	columnMagicV2 = [4]byte{'Z', 'K', 'C', '2'}
	columnTailV2  = [4]byte{'Z', 'K', 'E', '2'}

	// castagnoli is the CRC32-C polynomial table; hardware-accelerated on
	// amd64/arm64, which keeps the per-block checksum off the critical
	// path relative to decompression itself.
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

func columnDirEntrySize(version int) int {
	if version == FormatZKC1 {
		return columnDirEntryV1
	}
	return columnDirEntryV2
}

func columnTailSize(version int) int {
	if version == FormatZKC1 {
		return columnTailSizeV1
	}
	return columnTailSizeV2
}

// ColumnOption configures a ColumnWriter beyond the required arguments.
type ColumnOption func(*columnConfig)

type columnConfig struct {
	version int
}

// WithFormatVersion selects the container format version the writer
// emits: FormatZKC2 (the default) or FormatZKC1 for byte-compatibility
// with readers that predate checksums and zone maps.
func WithFormatVersion(v int) ColumnOption {
	return func(c *columnConfig) { c.version = v }
}

// ColumnWriter streams a column of values into an io.Writer as a sequence
// of compressed blocks. Values accumulate via Write; every full block is
// encoded with the writer's codec and flushed immediately, so memory use
// is bounded by one block regardless of column length. Close flushes the
// final partial block and appends the directory.
type ColumnWriter[T Integer] struct {
	w           io.Writer
	codec       Codec[T]
	blockValues int
	version     int

	buf    []T
	frame  []byte
	dir    []columnBlock
	offset uint64
	total  uint64
	closed bool
	err    error // first write/encode error; sticky
}

type columnBlock struct {
	offset uint64
	length uint32
	count  uint32

	// ZKC2 only: payload checksum and zone map (element bit patterns).
	crc     uint32
	minBits uint64
	maxBits uint64
}

// NewColumnWriter starts a column on w. codec nil defaults to the
// self-tuning Auto codec; blockValues <= 0 defaults to DefaultBlockValues
// and may not exceed MaxBlockValues. The 16-byte container header is
// written immediately. Options select the format version; the default is
// ZKC2 (per-block CRC32-C, zone maps, directory checksum).
func NewColumnWriter[T Integer](w io.Writer, codec Codec[T], blockValues int, opts ...ColumnOption) (*ColumnWriter[T], error) {
	cfg := columnConfig{version: FormatZKC2}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.version != FormatZKC1 && cfg.version != FormatZKC2 {
		return nil, fmt.Errorf("%w: column format version %d", ErrUnsupportedVersion, cfg.version)
	}
	if blockValues <= 0 {
		blockValues = DefaultBlockValues
	}
	if blockValues > MaxBlockValues {
		return nil, fmt.Errorf("%w: block of %d values", ErrBlockTooLarge, blockValues)
	}
	if codec == nil {
		codec = Auto[T]{}
	}
	var hdr [columnHeaderSize]byte
	if cfg.version == FormatZKC1 {
		copy(hdr[:4], columnMagicV1[:])
	} else {
		copy(hdr[:4], columnMagicV2[:])
	}
	hdr[4] = byte(elemSize[T]())
	binary.LittleEndian.PutUint32(hdr[8:], uint32(blockValues))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &ColumnWriter[T]{
		w:           w,
		codec:       codec,
		blockValues: blockValues,
		version:     cfg.version,
		offset:      columnHeaderSize,
	}, nil
}

// Write appends values to the column, flushing every completed block.
func (cw *ColumnWriter[T]) Write(vals []T) error {
	if cw.closed {
		return ErrClosed
	}
	if cw.err != nil {
		return cw.err
	}
	for len(vals) > 0 {
		take := min(cw.blockValues-len(cw.buf), len(vals))
		cw.buf = append(cw.buf, vals[:take]...)
		vals = vals[take:]
		if len(cw.buf) == cw.blockValues {
			if err := cw.flushBlock(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (cw *ColumnWriter[T]) flushBlock() error {
	frame, err := cw.codec.Encode(cw.frame[:0], cw.buf)
	if err == nil {
		// Fail at write time if the codec emits frames ColumnReader
		// cannot dispatch on — otherwise the column would be accepted now
		// and unreadable forever. User codecs must emit (or wrap) the
		// segment or baseline frame formats.
		if len(frame) == 0 || (frame[0] != segment.Magic && frame[0] != baselineMagic) {
			err = fmt.Errorf("%w: codec %q emits frames the column reader cannot decode",
				ErrUnknownCodec, cw.codec.Name())
		}
	}
	if err == nil {
		_, err = cw.w.Write(frame)
	}
	if err != nil {
		cw.err = err
		return err
	}
	cw.frame = frame // recycle the encode buffer across blocks
	blk := columnBlock{
		offset: cw.offset,
		length: uint32(len(frame)),
		count:  uint32(len(cw.buf)),
	}
	if cw.version >= FormatZKC2 {
		blk.crc = crc32.Checksum(frame, castagnoli)
		lo, hi := cw.buf[0], cw.buf[0]
		for _, v := range cw.buf[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		blk.minBits, blk.maxBits = zoneBits(lo), zoneBits(hi)
	}
	cw.dir = append(cw.dir, blk)
	cw.offset += uint64(len(frame))
	cw.total += uint64(len(cw.buf))
	cw.buf = cw.buf[:0]
	return nil
}

// Close flushes the final partial block and writes the directory footer.
// Closing an already-closed writer is a no-op.
func (cw *ColumnWriter[T]) Close() error {
	if cw.closed {
		return nil
	}
	if cw.err != nil {
		return cw.err
	}
	if len(cw.buf) > 0 {
		if err := cw.flushBlock(); err != nil {
			return err
		}
	}
	cw.closed = true
	_, err := cw.w.Write(appendFooter(nil, cw.dir, cw.total, cw.version))
	if err != nil {
		cw.err = err
	}
	return err
}

// appendFooter serializes the directory and tail of a container — the
// format authority shared by ColumnWriter.Close and RecoverColumn.
func appendFooter(footer []byte, dir []columnBlock, total uint64, version int) []byte {
	entrySize := columnDirEntrySize(version)
	footer = slices.Grow(footer, len(dir)*entrySize+columnTailSize(version))
	dirStart := len(footer)
	for _, blk := range dir {
		var ent [columnDirEntryV2]byte
		binary.LittleEndian.PutUint64(ent[:], blk.offset)
		binary.LittleEndian.PutUint32(ent[8:], blk.length)
		binary.LittleEndian.PutUint32(ent[12:], blk.count)
		if version >= FormatZKC2 {
			binary.LittleEndian.PutUint32(ent[16:], blk.crc)
			binary.LittleEndian.PutUint64(ent[24:], blk.minBits)
			binary.LittleEndian.PutUint64(ent[32:], blk.maxBits)
		}
		footer = append(footer, ent[:entrySize]...)
	}
	if version == FormatZKC1 {
		var tail [columnTailSizeV1]byte
		binary.LittleEndian.PutUint64(tail[:], total)
		binary.LittleEndian.PutUint32(tail[8:], uint32(len(dir)))
		copy(tail[12:], columnTailV1[:])
		return append(footer, tail[:]...)
	}
	dirCRC := crc32.Checksum(footer[dirStart:], castagnoli)
	var tail [columnTailSizeV2]byte
	binary.LittleEndian.PutUint64(tail[:], total)
	binary.LittleEndian.PutUint32(tail[8:], uint32(len(dir)))
	binary.LittleEndian.PutUint32(tail[12:], dirCRC)
	copy(tail[20:], columnTailV2[:])
	return append(footer, tail[:]...)
}

// Len returns the number of values written so far, including buffered ones.
func (cw *ColumnWriter[T]) Len() int { return int(cw.total) + len(cw.buf) }

// NumBlocks returns the number of blocks flushed so far.
func (cw *ColumnWriter[T]) NumBlocks() int { return len(cw.dir) }

// FormatVersion returns the container format version being written.
func (cw *ColumnWriter[T]) FormatVersion() int { return cw.version }

// CompressedBytes returns the container bytes written so far (header and
// flushed blocks; the directory is counted only after Close).
func (cw *ColumnWriter[T]) CompressedBytes() int {
	n := int(cw.offset)
	if cw.closed {
		n += len(cw.dir)*columnDirEntrySize(cw.version) + columnTailSize(cw.version)
	}
	return n
}

// columnSource abstracts where container bytes come from: a []byte held
// in memory, or an io.ReaderAt fetched lazily block by block.
type columnSource interface {
	// view returns n bytes at off. A byte-backed source returns a
	// subslice of the original data; a ReaderAt-backed source returns a
	// freshly allocated buffer (so callers may retain the result either
	// way).
	view(off int64, n int) ([]byte, error)
	size() int64
	// stable reports whether repeated views of the same range return the
	// same bytes (true for in-memory data, false for a ReaderAt, whose
	// backing file can change or rot between reads). Only stable sources
	// may memoize a passed checksum.
	stable() bool
}

type byteSource []byte

func (s byteSource) size() int64 { return int64(len(s)) }

func (s byteSource) stable() bool { return true }

func (s byteSource) view(off int64, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+int64(n) > int64(len(s)) {
		return nil, fmt.Errorf("%w: read of [%d,%d) beyond %d bytes", ErrCorruptColumn, off, off+int64(n), len(s))
	}
	return s[off : off+int64(n)], nil
}

type readerAtSource struct {
	r io.ReaderAt
	n int64
}

func (s *readerAtSource) size() int64 { return s.n }

func (s *readerAtSource) stable() bool { return false }

func (s *readerAtSource) view(off int64, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+int64(n) > s.n {
		return nil, fmt.Errorf("%w: read of [%d,%d) beyond %d bytes", ErrCorruptColumn, off, off+int64(n), s.n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(s.r, off, int64(n)), buf); err != nil {
		// ErrIO marks the failure as transient-class (the bytes never
		// arrived) for the retry path; ErrCorruptColumn stays in the chain
		// as the umbrella every container failure matches.
		return nil, fmt.Errorf("%w: %w reading [%d,%d): %w", ErrCorruptColumn, ErrIO, off, off+int64(n), err)
	}
	return buf, nil
}

// ColumnReader reads a column container. Point lookups locate the
// enclosing block through the directory and then use the fine-grained
// entry-point access of the patched schemes; a block stays parsed once
// touched, so clustered lookups avoid re-parsing the frame.
//
// A ColumnReader is safe for concurrent use: all per-block state lives in
// atomic slots whose first parse and first checksum verification are
// singleflighted, and decode scratch comes from an internal pool. Any mix
// of Get, Scan, ScanWhere, ParallelScan, ReadBlock and ReadAll may share
// one reader over one set of bytes or one io.ReaderAt — the multi-core
// scan path the paper's RAM-bandwidth decompression asks for.
type ColumnReader[T Integer] struct {
	src     columnSource
	version int
	blocks  []columnBlock
	starts  []int // starts[i] = first row of block i; len = len(blocks)+1
	total   int

	// fixedBlock is the writer's uniform block size when every block but
	// the last holds exactly that many values (true of every container our
	// writer produces); Get then locates a row's block with one division.
	// 0 means irregular: fall back to binary search over starts.
	fixedBlock int

	// slots holds the per-block concurrent state, indexed like blocks.
	slots []blockSlot[T]

	// cache, when attached, holds verified frame bytes for file-backed
	// sources, keyed by a process-unique column id — see SetBlockCache.
	cache atomic.Pointer[attachedCache]

	// retry bounds re-reads of transient source I/O failures — see
	// RetryPolicy. The zero value performs no retries.
	retry RetryPolicy

	// states pools per-worker decode scratch (*decodeState[T]). A scan
	// holds one state for its whole pass, so steady-state sequential scans
	// allocate nothing; parallel scans draw one state per in-flight block.
	states sync.Pool
}

// blockSlot is one block's share of the reader's concurrent state.
type blockSlot[T Integer] struct {
	// parsed memoizes the block's random-access form for Get. Readers load
	// it lock-free; the first writer singleflights under mu.
	parsed atomic.Pointer[parsedBlock[T]]

	// verified latches a passed CRC32-C check. Only set for stable
	// sources: a ReaderAt re-reads bytes on every view, so every fetch is
	// re-verified.
	verified atomic.Bool

	// mu serializes the first parse / first verification of this block, so
	// under contention the work happens exactly once. Contention is
	// confined to one block's first touch; the steady state is lock-free.
	mu sync.Mutex

	// quar latches the block's permanent failure: a checksum mismatch that
	// survived a re-read. Once set, every fetch of the block fails fast
	// with the latched error — see RetryPolicy's package comments.
	quar atomic.Pointer[error]
}

// parsedBlock is the memoized random-access form of one block: the parsed
// sections of a patched frame (fine-grained access needs only those, not
// the decoded values), or the fully decoded values of frames without entry
// points (raw and baseline frames through a ReaderAt).
type parsedBlock[T Integer] struct {
	blk  *core.Block[T]
	vals []T
}

// decodeState is the per-worker scratch of the decode paths: a Decoder
// (bit-unpack and selection scratch), a reusable segment parse target, the
// vector buffer scans hand to fn, and the selection-vector buffers of the
// filtered scans (block-relative positions, global row numbers, matched
// values). States cycle through the reader's pool, never shared between
// two goroutines at once.
type decodeState[T Integer] struct {
	dec   core.Decoder[T]
	blk   core.Block[T]
	vals  []T
	sel   []int32
	rows  []int64
	fvals []T
}

func (cr *ColumnReader[T]) getState() *decodeState[T] {
	if st, ok := cr.states.Get().(*decodeState[T]); ok {
		return st
	}
	return new(decodeState[T])
}

func (cr *ColumnReader[T]) putState(st *decodeState[T]) { cr.states.Put(st) }

// ReaderOption configures a ColumnReader beyond the required arguments.
type ReaderOption func(*readerConfig)

type readerConfig struct {
	cache BlockCache
	retry RetryPolicy
}

// WithBlockCache attaches a hot-block cache at open time; equivalent to
// calling SetBlockCache on the opened reader. Only file-backed readers
// (OpenColumnReaderAt) use the cache — an in-memory container is already
// resident and latches its verification per block — so the option is a
// no-op for OpenColumn.
func WithBlockCache(c BlockCache) ReaderOption {
	return func(rc *readerConfig) { rc.cache = c }
}

// OpenColumn parses a container produced by ColumnWriter, accepting both
// the ZKC1 and ZKC2 formats. The bytes are retained (not copied); they
// must stay immutable while the reader lives.
func OpenColumn[T Integer](data []byte, opts ...ReaderOption) (*ColumnReader[T], error) {
	return openColumn[T](byteSource(data), opts)
}

// OpenColumnReaderAt opens a container through an io.ReaderAt of the given
// total size, fetching the header and directory eagerly but block frames
// lazily — a column far larger than RAM streams through Scan one block at
// a time, the way ColumnBM pages chunks through its buffer manager. The
// ReaderAt must allow concurrent-safe reads at arbitrary offsets (os.File,
// bytes.Reader and mmap wrappers all qualify).
//
// Without a block cache every touch of a block re-reads and (for ZKC2)
// re-verifies its bytes from the ReaderAt; WithBlockCache keeps the hot
// working set resident — see BlockCache.
func OpenColumnReaderAt[T Integer](r io.ReaderAt, size int64, opts ...ReaderOption) (*ColumnReader[T], error) {
	return openColumn[T](&readerAtSource{r: r, n: size}, opts)
}

func openColumn[T Integer](src columnSource, opts []ReaderOption) (*ColumnReader[T], error) {
	size := src.size()
	if size < columnHeaderSize+columnTailSizeV1 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorruptColumn, size)
	}
	hdr, err := src.view(0, columnHeaderSize)
	if err != nil {
		return nil, err
	}
	var version int
	switch [4]byte(hdr[:4]) {
	case columnMagicV1:
		version = FormatZKC1
	case columnMagicV2:
		version = FormatZKC2
	default:
		return nil, fmt.Errorf("%w: bad header magic", ErrCorruptColumn)
	}
	if int(hdr[4]) != elemSize[T]() {
		return nil, fmt.Errorf("%w: element size %d, reading as %d", ErrCorruptColumn, hdr[4], elemSize[T]())
	}
	tailSize := columnTailSize(version)
	if size < int64(columnHeaderSize+tailSize) {
		return nil, fmt.Errorf("%w: %d bytes too small for %s tail", ErrCorruptColumn, size, FormatName(version))
	}
	tail, err := src.view(size-int64(tailSize), tailSize)
	if err != nil {
		return nil, err
	}
	var total uint64
	var numBlocks int
	var dirCRC uint32
	if version == FormatZKC1 {
		if [4]byte(tail[12:]) != columnTailV1 {
			return nil, fmt.Errorf("%w: bad tail magic", ErrCorruptColumn)
		}
	} else {
		if [4]byte(tail[20:]) != columnTailV2 {
			return nil, fmt.Errorf("%w: bad tail magic", ErrCorruptColumn)
		}
		dirCRC = binary.LittleEndian.Uint32(tail[12:])
	}
	total = binary.LittleEndian.Uint64(tail)
	numBlocks = int(binary.LittleEndian.Uint32(tail[8:]))
	entrySize := columnDirEntrySize(version)
	dirStart := size - int64(tailSize) - int64(numBlocks)*int64(entrySize)
	if numBlocks < 0 || dirStart < columnHeaderSize {
		return nil, fmt.Errorf("%w: directory of %d blocks does not fit", ErrCorruptColumn, numBlocks)
	}
	dir, err := src.view(dirStart, numBlocks*entrySize)
	if err != nil {
		return nil, err
	}
	if version >= FormatZKC2 {
		if got := crc32.Checksum(dir, castagnoli); got != dirCRC {
			return nil, fmt.Errorf("%w: %w over directory (stored %08x, computed %08x)",
				ErrCorruptColumn, ErrChecksumMismatch, dirCRC, got)
		}
	}
	cr := &ColumnReader[T]{
		src:     src,
		version: version,
		blocks:  make([]columnBlock, numBlocks),
		starts:  make([]int, numBlocks+1),
		total:   int(total),
		slots:   make([]blockSlot[T], numBlocks),
	}
	rows, nextOffset := 0, uint64(columnHeaderSize)
	for i := range cr.blocks {
		ent := dir[i*entrySize:]
		blk := columnBlock{
			offset: binary.LittleEndian.Uint64(ent),
			length: binary.LittleEndian.Uint32(ent[8:]),
			count:  binary.LittleEndian.Uint32(ent[12:]),
		}
		if version >= FormatZKC2 {
			blk.crc = binary.LittleEndian.Uint32(ent[16:])
			blk.minBits = binary.LittleEndian.Uint64(ent[24:])
			blk.maxBits = binary.LittleEndian.Uint64(ent[32:])
		}
		if blk.offset != nextOffset || blk.offset+uint64(blk.length) > uint64(dirStart) {
			return nil, fmt.Errorf("%w: block %d escapes the data area", ErrCorruptColumn, i)
		}
		cr.blocks[i] = blk
		cr.starts[i] = rows
		rows += int(blk.count)
		nextOffset += uint64(blk.length)
	}
	cr.starts[numBlocks] = rows
	if rows != cr.total {
		return nil, fmt.Errorf("%w: directory counts %d values, tail says %d", ErrCorruptColumn, rows, cr.total)
	}
	var cfg readerConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.cache != nil {
		cr.SetBlockCache(cfg.cache)
	}
	cr.retry = cfg.retry
	// Detect the writer's uniform block size so Get can locate a row's
	// block with one division: every block but the last must hold exactly
	// the header's block size, and the last no more (a crafted directory
	// violating either falls back to binary search).
	if bv := int(binary.LittleEndian.Uint32(hdr[8:])); bv > 0 {
		regular := true
		for i, blk := range cr.blocks {
			last := i == numBlocks-1
			if (!last && int(blk.count) != bv) || (last && int(blk.count) > bv) {
				regular = false
				break
			}
		}
		if regular {
			cr.fixedBlock = bv
		}
	}
	return cr, nil
}

// Len returns the number of values in the column.
func (cr *ColumnReader[T]) Len() int { return cr.total }

// NumBlocks returns the number of blocks.
func (cr *ColumnReader[T]) NumBlocks() int { return len(cr.blocks) }

// FormatVersion returns the container format version (FormatZKC1 or
// FormatZKC2).
func (cr *ColumnReader[T]) FormatVersion() int { return cr.version }

// CompressedBytes returns the container size in bytes.
func (cr *ColumnReader[T]) CompressedBytes() int { return int(cr.src.size()) }

// UncompressedBytes returns the size the values occupy uncoded.
func (cr *ColumnReader[T]) UncompressedBytes() int { return cr.total * elemSize[T]() }

// Ratio returns the column-wide compression ratio.
func (cr *ColumnReader[T]) Ratio() float64 {
	if cr.src.size() == 0 {
		return 0
	}
	return float64(cr.UncompressedBytes()) / float64(cr.src.size())
}

// attachedCache pairs a BlockCache with the column id this reader keys
// it under; the pair swaps atomically so attachment is race-free.
type attachedCache struct {
	c  BlockCache
	id uint64
}

// SetBlockCache attaches c as this reader's hot-block cache, or
// detaches with nil. Only file-backed readers use a cache — in-memory
// sources are already resident and latch their verification per block —
// so the call is a no-op on a reader opened with OpenColumn.
//
// The reader keys the cache by a process-unique column id assigned at
// attach time and never reused, so entries of a detached or discarded
// reader can never be observed again; under the immutable-container
// model a cached frame cannot go stale, only get evicted. Attaching is
// safe at any time, including while scans run on other goroutines.
func (cr *ColumnReader[T]) SetBlockCache(c BlockCache) {
	if c == nil {
		cr.cache.Store(nil)
		return
	}
	if cr.src.stable() {
		return
	}
	cr.cache.Store(&attachedCache{c: c, id: blockCacheIDs.Add(1)})
}

// checkCRC verifies buf against block b's stored payload CRC32-C.
func checkCRC(buf []byte, want uint32, b int) error {
	if got := crc32.Checksum(buf, castagnoli); got != want {
		return fmt.Errorf("%w: %w over block %d payload (stored %08x, computed %08x)",
			ErrCorruptColumn, ErrChecksumMismatch, b, want, got)
	}
	return nil
}

// view returns block b's bytes without integrity checks.
func (cr *ColumnReader[T]) view(b int) ([]byte, error) {
	blk := cr.blocks[b]
	return cr.src.view(int64(blk.offset), int(blk.length))
}

// viewVerified returns block b's bytes after an unconditional ZKC2
// checksum check (ZKC1 stores none), latching the pass for stable sources.
// Callers that want the hash to run at most once must consult the latch
// under the slot mutex themselves — frame does; VerifyBlock deliberately
// re-hashes.
func (cr *ColumnReader[T]) viewVerified(b int) ([]byte, error) {
	buf, err := cr.view(b)
	if err != nil {
		return nil, err
	}
	if cr.version >= FormatZKC2 {
		if err := checkCRC(buf, cr.blocks[b].crc, b); err != nil {
			return nil, err
		}
		if cr.src.stable() {
			cr.slots[b].verified.Store(true)
		}
	}
	return buf, nil
}

// frame returns block b's bytes, verifying the ZKC2 payload checksum: on a
// stable (in-memory) source the first verification is singleflighted under
// the block's mutex and latched, so the block is hashed exactly once no
// matter how many goroutines race to first touch; a ReaderAt source
// re-reads bytes on every view, so every fetch is re-verified — unless a
// block cache is attached, in which case the fill (one read, one
// verification) is singleflighted under the block's mutex and every hit
// is served from the cache without touching the source or the hash.
//
// A quarantined block fails fast with its latched error; transient I/O
// failures retry under the reader's RetryPolicy (see fetchVerified).
func (cr *ColumnReader[T]) frame(b int) ([]byte, error) {
	if err := cr.quarantined(b); err != nil {
		return nil, err
	}
	if ac := cr.cache.Load(); ac != nil {
		if buf := ac.c.Get(ac.id, b); buf != nil {
			return buf, nil
		}
		slot := &cr.slots[b]
		slot.mu.Lock()
		defer slot.mu.Unlock()
		if buf := ac.c.Get(ac.id, b); buf != nil {
			return buf, nil
		}
		buf, err := cr.fetchVerified(b)
		if err != nil {
			return nil, err // corrupt or unreadable blocks are never cached
		}
		ac.c.Put(ac.id, b, buf)
		return buf, nil
	}
	if cr.version < FormatZKC2 || !cr.src.stable() {
		return cr.fetchVerified(b)
	}
	slot := &cr.slots[b]
	if slot.verified.Load() {
		return cr.view(b)
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.verified.Load() {
		return cr.view(b)
	}
	return cr.fetchVerified(b)
}

// decodeColumnFrame decodes one frame regardless of which codec wrote it,
// dispatching on the frame magic.
func decodeColumnFrame[T Integer](dst []T, frame []byte) ([]T, error) {
	if len(frame) == 0 {
		return nil, corrupt(segment.ErrTooShort)
	}
	switch frame[0] {
	case segment.Magic:
		return decodeSegment(dst, frame)
	case baselineMagic:
		if len(frame) < 2 {
			return nil, corrupt(segment.ErrTooShort)
		}
		switch frame[1] {
		case frameFOR:
			return FOR[T]{}.Decode(dst, frame)
		case frameDict:
			return Dict[T]{}.Decode(dst, frame)
		case frameVByte:
			return VByte[T]{}.Decode(dst, frame)
		}
		if c := byteStreamCodec[T](frame[1]); c != nil {
			return c.Decode(dst, frame)
		}
	}
	return nil, corrupt(fmt.Errorf("unknown frame magic 0x%02x", frame[0]))
}

// trustedFrames reports whether block frames reach the decoder already
// integrity-checked: the ZKC2 reader verifies a hardware CRC32-C over
// every frame (latched for stable sources, re-hashed per fetch through a
// ReaderAt), which makes the segment-level byte-wise FNV checksum a
// redundant second pass over the same bytes — skipping it roughly doubles
// scan bandwidth on patched columns. ZKC1 stores no container checksum, so
// its frames keep the full segment validation.
func (cr *ColumnReader[T]) trustedFrames() bool { return cr.version >= FormatZKC2 }

// parseSegmentInto parses a compressed segment frame into blk, skipping
// the redundant payload hash when trusted.
func parseSegmentInto[T Integer](blk *core.Block[T], frame []byte, trusted bool) error {
	if trusted {
		return segment.UnmarshalIntoTrusted(blk, frame)
	}
	return segment.UnmarshalInto(blk, frame)
}

// decodeInto decodes frame, appending its values to dst. Patched frames
// reuse st's segment parse target and decoder scratch, so a scan that
// recycles one state decodes block after block without allocating (once
// dst and the scratch have grown to block size). trusted skips the
// segment-level payload hash (see trustedFrames).
func (st *decodeState[T]) decodeInto(dst []T, frame []byte, trusted bool) (out []T, err error) {
	defer guardSegment(&err)
	if len(frame) == 0 {
		return nil, corrupt(segment.ErrTooShort)
	}
	if frame[0] == segment.Magic {
		if !segment.IsCompressed(frame) {
			return rawAppend[T](dst, frame)
		}
		if err := parseSegmentInto(&st.blk, frame, trusted); err != nil {
			return nil, corrupt(err)
		}
		out, tail := grow(dst, st.blk.N)
		st.dec.Decompress(&st.blk, tail)
		return out, nil
	}
	return decodeColumnFrame[T](dst, frame)
}

// readBlockInto fetches and decodes block b with st's scratch, appending
// its values to dst.
func (cr *ColumnReader[T]) readBlockInto(st *decodeState[T], b int, dst []T) ([]T, error) {
	frame, err := cr.frame(b)
	if err != nil {
		return nil, err
	}
	out, err := st.decodeInto(dst, frame, cr.trustedFrames())
	if err != nil {
		return nil, fmt.Errorf("block %d: %w", b, err)
	}
	return out, nil
}

// FrameBytes returns block b's raw compressed frame bytes, verified
// against the container's stored checksum when it has one (ZKC2). The
// returned slice is shared — with the container bytes, with the block
// cache, with other callers — and must be treated as read-only. This is
// the block-granular serve path: a service that ships raw frames to
// clients (zkserve's frame mode) reads them here, so an attached
// BlockCache serves repeated requests without re-reading the source.
func (cr *ColumnReader[T]) FrameBytes(b int) ([]byte, error) {
	if b < 0 || b >= len(cr.blocks) {
		return nil, fmt.Errorf("%w: block %d not in [0,%d)", ErrIndexOutOfRange, b, len(cr.blocks))
	}
	return cr.frame(b)
}

// ReadAll appends every value of the column to dst, pre-sized from the
// directory's total count so the block loop never regrows it.
func (cr *ColumnReader[T]) ReadAll(dst []T) ([]T, error) {
	dst = slices.Grow(dst, cr.total)
	st := cr.getState()
	defer cr.putState(st)
	var err error
	for i := range cr.blocks {
		if dst, err = cr.readBlockInto(st, i, dst); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// ReadBlock appends the values of block b to dst. Together with
// NumBlocks it lets callers zip several same-shaped columns through a
// query in lockstep, one cache-friendly vector at a time.
func (cr *ColumnReader[T]) ReadBlock(b int, dst []T) ([]T, error) {
	if b < 0 || b >= len(cr.blocks) {
		return nil, fmt.Errorf("%w: block %d not in [0,%d)", ErrIndexOutOfRange, b, len(cr.blocks))
	}
	st := cr.getState()
	defer cr.putState(st)
	return cr.readBlockInto(st, b, dst)
}

// Scan decodes the column block by block, invoking fn with each decoded
// vector. The vector is reused between calls; fn must copy values it
// keeps. Scanning stops early when fn returns false. SkipCorrupt makes
// the scan degraded: unreadable blocks are skipped and accounted instead
// of failing the scan.
//
// The scan holds one pooled decode state for its whole pass, so a warmed
// sequential scan performs no heap allocation; concurrent scans on one
// shared reader each draw their own state.
func (cr *ColumnReader[T]) Scan(fn func(vals []T) bool, opts ...ScanOption) error {
	return cr.scanBlocks(parseScanOpts(opts), nil, func(_ int, vals []T) bool { return fn(vals) })
}

// scanBlocks is the sequential scan loop over the blocks selected by match
// (nil selects every block); it is also the degenerate one-worker case of
// the parallel scans, which is why fn receives the block index.
func (cr *ColumnReader[T]) scanBlocks(cfg *scanConfig, match func(b int) bool, fn func(b int, vals []T) bool) error {
	st := cr.getState()
	defer cr.putState(st)
	for i := range cr.blocks {
		if match != nil && !match(i) {
			continue
		}
		vals, err := cr.readBlockInto(st, i, st.vals[:0])
		if err != nil {
			if cfg.skipBlock(int(cr.blocks[i].count), err) {
				continue
			}
			return err
		}
		st.vals = vals
		if !fn(i, vals) {
			return nil
		}
	}
	return nil
}

// blockOf returns the block containing row i (i must be in range). Columns
// with a uniform block size — every container our writer produces —
// resolve with one division; irregular directories fall back to binary
// search for the last block starting at or before i.
func (cr *ColumnReader[T]) blockOf(i int) int {
	if cr.fixedBlock > 0 {
		return i / cr.fixedBlock
	}
	return sort.SearchInts(cr.starts, i+1) - 1
}

// Get returns the value at row i. For patched frames it uses the
// entry-point fine-grained access path (at most one 128-value group is
// touched); raw frames on an in-memory source are read in place; baseline
// frames are decoded whole and memoized.
func (cr *ColumnReader[T]) Get(i int) (v T, err error) {
	defer guardSegment(&err)
	if i < 0 || i >= cr.total {
		return v, fmt.Errorf("%w: %d not in [0,%d)", ErrIndexOutOfRange, i, cr.total)
	}
	b := cr.blockOf(i)
	off := i - cr.starts[b]
	p := cr.slots[b].parsed.Load()
	if p == nil {
		if cr.src.stable() {
			// On an in-memory source, raw frames are read in place: one
			// header check and a direct load, no decode and nothing
			// cached. Through a ReaderAt that shortcut would re-fetch the
			// whole block from the source on every lookup, so those fall
			// through to the decode-and-memoize path like any other frame.
			frame, ferr := cr.frame(b)
			if ferr != nil {
				return v, ferr
			}
			if len(frame) > 0 && frame[0] == segment.Magic && !segment.IsCompressed(frame) {
				return rawGet[T](frame, off)
			}
		}
		if p, err = cr.parseBlock(b); err != nil {
			return v, err
		}
	}
	if p.blk != nil {
		st := cr.getState()
		v = st.dec.Get(p.blk, off)
		cr.putState(st)
		return v, nil
	}
	return p.vals[off], nil
}

// parseBlock memoizes block b's random-access form in its slot, parsing
// (and CRC-verifying) exactly once under contention: the first caller does
// the work under the slot mutex while latecomers wait, and every later
// call is a single atomic load. Parsed blocks stay resident for the life
// of the reader, so a random-access workload pays the frame parse once per
// block, not once per lookup.
func (cr *ColumnReader[T]) parseBlock(b int) (*parsedBlock[T], error) {
	slot := &cr.slots[b]
	if p := slot.parsed.Load(); p != nil {
		return p, nil
	}
	if err := cr.quarantined(b); err != nil {
		return nil, err
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if p := slot.parsed.Load(); p != nil {
		return p, nil
	}
	var frame []byte
	var err error
	if ac := cr.cache.Load(); ac != nil {
		if frame = ac.c.Get(ac.id, b); frame == nil {
			if frame, err = cr.fetchVerified(b); err == nil {
				ac.c.Put(ac.id, b, frame)
			}
		}
	} else if cr.src.stable() && slot.verified.Load() {
		frame, err = cr.view(b)
	} else {
		frame, err = cr.fetchVerified(b)
	}
	if err != nil {
		return nil, err
	}
	want := int(cr.blocks[b].count)
	p := &parsedBlock[T]{}
	if len(frame) > 0 && frame[0] == segment.Magic && segment.IsCompressed(frame) {
		pb := new(core.Block[T])
		if err := parseSegmentInto(pb, frame, cr.trustedFrames()); err != nil {
			return nil, corrupt(err)
		}
		if pb.N != want {
			return nil, fmt.Errorf("%w: block %d holds %d values, directory says %d", ErrCorruptColumn, b, pb.N, want)
		}
		p.blk = pb
	} else {
		vals, err := decodeColumnFrame[T](nil, frame)
		if err != nil {
			return nil, err
		}
		if len(vals) != want {
			return nil, fmt.Errorf("%w: block %d holds %d values, directory says %d", ErrCorruptColumn, b, len(vals), want)
		}
		p.vals = vals
	}
	slot.parsed.Store(p)
	return p, nil
}

package zukowski

import (
	"errors"
	"sync"
)

// Degraded scans: completing a pass over a column that has lost blocks.
// The default contract is fail-stop — one unreadable or corrupt block
// kills the whole scan — which is right for correctness-critical readers
// but wrong for a serving layer that would rather answer 99.9% of a table
// than none of it. SkipCorrupt flips a scan to degraded mode: block-level
// data faults (quarantined blocks, checksum mismatches, I/O failures that
// survived the retry policy, undecodable frames) are skipped instead of
// returned, and the caller-supplied ScanReport says exactly what was lost.
// Cancellation, caller errors and fn-initiated stops are never skipped —
// only faults of the data itself.

// ScanReport accumulates what a degraded scan skipped. Pass a pointer to
// SkipCorrupt, read the fields after the scan returns; a parallel scan
// records from its workers, so the fields must not be read while the scan
// runs.
type ScanReport struct {
	mu sync.Mutex

	// BlocksSkipped counts blocks dropped from the scan.
	BlocksSkipped int

	// RowsLost is the directory row count of the skipped blocks — the rows
	// the scan's output is missing.
	RowsLost int64

	// FirstErr is the fault of the first skipped block.
	FirstErr error
}

// Record notes one skipped block of rows rows lost to err. Safe for
// concurrent use; a nil report discards. Exported so layers that walk
// blocks themselves (e.g. a frame-streaming server) can account losses
// in the same report their engine scans fill.
func (r *ScanReport) Record(rows int, err error) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.BlocksSkipped++
	r.RowsLost += int64(rows)
	if r.FirstErr == nil {
		r.FirstErr = err
	}
	r.mu.Unlock()
}

// Degraded reports whether the scan skipped anything.
func (r *ScanReport) Degraded() bool { return r != nil && r.BlocksSkipped > 0 }

// SkipCorrupt makes a scan degraded: block-level data faults are skipped
// and recorded in rep instead of failing the scan. rep may be nil to skip
// without accounting. It applies to the Scan/ScanWhere/ScanSelect,
// Aggregate*, ScanWhereAll and parallel/context scan families.
func SkipCorrupt(rep *ScanReport) ScanOption {
	return func(c *scanConfig) {
		c.skip = true
		c.report = rep
	}
}

// ConfiguredSkipCorrupt reports whether opts put a scan in degraded mode
// (SkipCorrupt) and returns the report it targets. Layers that compose
// scans above block granularity — a multi-file table skipping a whole
// quarantined segment — use this to apply the same degraded-mode contract
// to failures the block engine never sees, accounting them in the same
// report the engine fills.
func ConfiguredSkipCorrupt(opts ...ScanOption) (*ScanReport, bool) {
	cfg := parseScanOpts(opts)
	return cfg.report, cfg.skip
}

// IsDataFault reports whether err is a fault of the stored data itself —
// corrupt container or segment bytes, a checksum mismatch, a quarantined
// block, retry-exhausted I/O — the class a degraded scan may skip.
// Cancellation and caller errors are not data faults.
func IsDataFault(err error) bool { return skippableBlockErr(err) }

// skippableBlockErr reports whether a block-level failure is a fault of
// the data — corrupt container or segment bytes, checksum mismatch,
// quarantine, retry-exhausted I/O — rather than cancellation or caller
// misuse. Only data faults are skippable in degraded mode.
func skippableBlockErr(err error) bool {
	return errors.Is(err, ErrCorruptColumn) || errors.Is(err, ErrCorruptSegment)
}

// skipBlock decides one failed block's fate under this config: true means
// the scan recorded the loss (rows from the block's directory count) and
// continues, false means the error propagates.
func (c *scanConfig) skipBlock(rows int, err error) bool {
	if !c.skip || !skippableBlockErr(err) {
		return false
	}
	c.report.Record(rows, err)
	return true
}

// defaultScanConfig is the shared zero-option config. It is never
// mutated, so every optionless scan can use it without allocating — the
// steady-state scan paths stay zero-alloc.
var defaultScanConfig scanConfig

// parseScanOpts folds scan options into a config.
func parseScanOpts(opts []ScanOption) *scanConfig {
	if len(opts) == 0 {
		return &defaultScanConfig
	}
	cfg := new(scanConfig)
	for _, opt := range opts {
		opt(cfg)
	}
	return cfg
}

package zukowski

import (
	"fmt"

	"repro/internal/core"
)

// Predicate expression trees: the disjunctive generalization of the
// []Pred conjunction. An Expr is an AND/OR tree over range and membership
// leaves, evaluated entirely at the selection-bitmap level — each leaf
// produces, refines or unions a per-block bitmap with the compressed-
// domain mask kernels (DecompressMask / RefineMask / UnionMask), so a
// disjunction composes with one OR per 32 rows and nothing outside the
// final bitmap is ever decoded into a value.
//
// Evaluation order inside an AND node is most-selective-first by zone-map
// estimate, exactly like the []Pred path, and whole branches prune at
// block granularity: an AND branch is skipped when any child's zone map
// excludes the block, an OR branch only when every child's does.

type exprOp uint8

const (
	opNone exprOp = iota // zero Expr: selects every row
	opRange
	opIn
	opAnd
	opOr
)

// Expr is a predicate over the columns of a ColumnSet: an AND/OR tree of
// inclusive range and membership tests, built with And, Or, Range and In.
// The zero Expr selects every row — a Query without a predicate. Exprs
// are immutable values; sharing subtrees between queries is safe.
type Expr[T Integer] struct {
	op     exprOp
	col    int
	lo, hi T
	vals   []T
	kids   []Expr[T]
}

// Range selects the rows whose value in column col lies in the inclusive
// range [lo, hi]. A Range with lo > hi selects nothing. The []Pred form
// {Col, Lo, Hi} is exactly And(Range(Col, Lo, Hi), ...).
func Range[T Integer](col int, lo, hi T) Expr[T] {
	return Expr[T]{op: opRange, col: col, lo: lo, hi: hi}
}

// In selects the rows whose value in column col equals one of vals — the
// membership test, evaluated as a union of point ranges. An In with no
// values selects nothing. The values slice is retained; don't mutate it.
func In[T Integer](col int, vals ...T) Expr[T] {
	return Expr[T]{op: opIn, col: col, vals: vals}
}

// And selects the rows every child selects. And() with no children
// selects everything (the identity of conjunction).
func And[T Integer](kids ...Expr[T]) Expr[T] {
	return Expr[T]{op: opAnd, kids: kids}
}

// Or selects the rows any child selects. Or() with no children selects
// nothing (the identity of disjunction).
func Or[T Integer](kids ...Expr[T]) Expr[T] {
	return Expr[T]{op: opOr, kids: kids}
}

// isZero reports whether e is the zero Expr (select everything).
func (e *Expr[T]) isZero() bool { return e.op == opNone }

// check validates every column reference in the tree.
func (e *Expr[T]) check(ncols int) error {
	switch e.op {
	case opNone:
		return nil
	case opRange, opIn:
		if e.col < 0 || e.col >= ncols {
			return fmt.Errorf("%w: expression column %d not in [0,%d)", ErrIndexOutOfRange, e.col, ncols)
		}
		return nil
	default:
		for i := range e.kids {
			if err := e.kids[i].check(ncols); err != nil {
				return err
			}
		}
		return nil
	}
}

// exprExcludes reports whether block b's zone maps prove e selects no row
// of the block. An AND branch is excluded as soon as one child is — this
// is the whole-branch pruning of the block match predicate — while an OR
// branch needs every child excluded.
func (cs *ColumnSet[T]) exprExcludes(e *Expr[T], b int) bool {
	switch e.op {
	case opRange:
		return e.lo > e.hi || cs.cols[e.col].blockExcludes(b, e.lo, e.hi)
	case opIn:
		for _, v := range e.vals {
			if !cs.cols[e.col].blockExcludes(b, v, v) {
				return false
			}
		}
		return true
	case opAnd:
		for i := range e.kids {
			if cs.exprExcludes(&e.kids[i], b) {
				return true
			}
		}
		return false
	case opOr:
		for i := range e.kids {
			if !cs.exprExcludes(&e.kids[i], b) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// exprEstimate estimates the fraction of block b's rows e selects, from
// zone maps alone — the ordering heuristic for AND children. Estimates
// compose conservatively: an AND is bounded by its most selective child,
// an OR by the clamped sum of its children.
func (cs *ColumnSet[T]) exprEstimate(e *Expr[T], b int) float64 {
	switch e.op {
	case opRange:
		if e.lo > e.hi {
			return 0
		}
		return cs.cols[e.col].predEstimate(b, e.lo, e.hi)
	case opIn:
		sum := 0.0
		for _, v := range e.vals {
			sum += cs.cols[e.col].predEstimate(b, v, v)
		}
		return min(sum, 1)
	case opAnd:
		est := 1.0
		for i := range e.kids {
			est = min(est, cs.exprEstimate(&e.kids[i], b))
		}
		return est
	case opOr:
		sum := 0.0
		for i := range e.kids {
			sum += cs.exprEstimate(&e.kids[i], b)
			if sum >= 1 {
				return 1
			}
		}
		return sum
	default:
		return 1
	}
}

// Bitmap targeting modes of one evaluation step: build a fresh bitmap,
// AND into the running bitmap, or OR into it.
const (
	maskFresh uint8 = iota
	maskRefine
	maskUnion
)

// pushSV borrows a scratch SelectionVector for a nested subtree; vectors
// are pooled per depth in the scan state, so steady-state evaluation of a
// fixed tree shape allocates nothing.
func (st *setState[T]) pushSV() *core.SelectionVector {
	if st.svDepth == len(st.svPool) {
		st.svPool = append(st.svPool, new(core.SelectionVector))
	}
	sv := st.svPool[st.svDepth]
	st.svDepth++
	return sv
}

func (st *setState[T]) popSV() { st.svDepth-- }

// evalExpr evaluates e over block b (n rows) into sv under the given
// mode. Zone-excluded subtrees short-circuit: fresh evaluation resets the
// bitmap, refinement clears it, union leaves it untouched.
func (cs *ColumnSet[T]) evalExpr(st *setState[T], e *Expr[T], b, n int, sv *core.SelectionVector, mode uint8) error {
	switch e.op {
	case opNone:
		switch mode {
		case maskFresh, maskUnion:
			sv.Fill(n)
		}
		return nil
	case opRange:
		return cs.maskCol(&st.cols[e.col], e.col, b, e.lo, e.hi, sv, mode)
	case opIn:
		return cs.evalIn(st, e, b, n, sv, mode)
	case opAnd:
		return cs.evalAnd(st, e, b, n, sv, mode)
	case opOr:
		return cs.evalOr(st, e, b, n, sv, mode)
	default:
		return fmt.Errorf("%w: unknown expression node", ErrIndexOutOfRange)
	}
}

// evalIn evaluates a membership leaf: a union of point ranges over one
// column. Refinement builds the union in a scratch vector first — point
// ranges cannot refine in place without losing rows matched by an
// earlier point.
func (cs *ColumnSet[T]) evalIn(st *setState[T], e *Expr[T], b, n int, sv *core.SelectionVector, mode uint8) error {
	switch mode {
	case maskRefine:
		tmp := st.pushSV()
		defer st.popSV()
		if err := cs.evalIn(st, e, b, n, tmp, maskFresh); err != nil {
			return err
		}
		sv.And(tmp)
		return nil
	case maskFresh:
		if len(e.vals) == 0 {
			sv.Reset(n)
			return nil
		}
		if err := cs.maskCol(&st.cols[e.col], e.col, b, e.vals[0], e.vals[0], sv, maskFresh); err != nil {
			return err
		}
		for _, v := range e.vals[1:] {
			if err := cs.maskCol(&st.cols[e.col], e.col, b, v, v, sv, maskUnion); err != nil {
				return err
			}
		}
		return nil
	default: // maskUnion
		for _, v := range e.vals {
			if cs.cols[e.col].blockExcludes(b, v, v) {
				continue
			}
			if err := cs.maskCol(&st.cols[e.col], e.col, b, v, v, sv, maskUnion); err != nil {
				return err
			}
		}
		return nil
	}
}

// evalAnd evaluates a conjunction node: children run most-selective-first
// by zone-map estimate (the first child fresh, the rest refining), and
// composition stops the moment the bitmap empties. The greedy order pick
// is O(kids²) without scratch — child counts are small. Union mode
// builds the conjunction in a scratch vector and ORs it in.
func (cs *ColumnSet[T]) evalAnd(st *setState[T], e *Expr[T], b, n int, sv *core.SelectionVector, mode uint8) error {
	if mode == maskUnion {
		tmp := st.pushSV()
		defer st.popSV()
		if err := cs.evalAnd(st, e, b, n, tmp, maskFresh); err != nil {
			return err
		}
		sv.Or(tmp)
		return nil
	}
	if cs.exprExcludes(e, b) {
		switch mode {
		case maskFresh:
			sv.Reset(n)
		case maskRefine:
			sv.Reset(n)
		}
		return nil
	}
	if len(e.kids) == 0 {
		if mode == maskFresh {
			sv.Fill(n)
		}
		return nil
	}
	done := 0
	var evaled uint64 // bitmask of evaluated children; kids are capped well below 64 in practice
	if len(e.kids) > 64 {
		return fmt.Errorf("%w: AND node with more than 64 children", ErrIndexOutOfRange)
	}
	for done < len(e.kids) {
		pick, best := -1, 2.0
		for i := range e.kids {
			if evaled&(1<<uint(i)) != 0 {
				continue
			}
			if est := cs.exprEstimate(&e.kids[i], b); est < best {
				pick, best = i, est
			}
		}
		m := maskRefine
		if done == 0 && mode == maskFresh {
			m = maskFresh
		}
		if err := cs.evalExpr(st, &e.kids[pick], b, n, sv, m); err != nil {
			return err
		}
		evaled |= 1 << uint(pick)
		done++
		if !sv.Any() {
			return nil
		}
	}
	return nil
}

// evalOr evaluates a disjunction node: zone-excluded branches contribute
// nothing and are skipped, the first live branch establishes the bitmap
// (fresh mode) and every further branch ORs in. Refinement builds the
// disjunction in a scratch vector and ANDs it into the running bitmap.
func (cs *ColumnSet[T]) evalOr(st *setState[T], e *Expr[T], b, n int, sv *core.SelectionVector, mode uint8) error {
	if mode == maskRefine {
		tmp := st.pushSV()
		defer st.popSV()
		if err := cs.evalOr(st, e, b, n, tmp, maskFresh); err != nil {
			return err
		}
		sv.And(tmp)
		return nil
	}
	first := mode == maskFresh
	for i := range e.kids {
		if cs.exprExcludes(&e.kids[i], b) {
			continue
		}
		m := maskUnion
		if first {
			m = maskFresh
			first = false
		}
		if err := cs.evalExpr(st, &e.kids[i], b, n, sv, m); err != nil {
			return err
		}
	}
	if first && mode == maskFresh {
		// No live branch: the disjunction selects nothing in this block.
		sv.Reset(n)
	}
	return nil
}

package zukowski_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/zukowski"
)

// testLengths exercises the interesting block shapes: empty, single value,
// one-short-of-a-group, exact groups, ragged tails.
var testLengths = []int{0, 1, 5, 127, 128, 129, 1000, 4099}

// genValues produces values codable by every registered codec for every
// element type: small non-negative integers with repetition (so PDICT and
// DICT have frequent values) and mild clustering (so PFOR-DELTA sees small
// deltas).
func genValues[T zukowski.Integer](rng *rand.Rand, n int) []T {
	vals := make([]T, n)
	for i := range vals {
		v := rng.Intn(60)
		if rng.Intn(10) == 0 {
			v = 100 + rng.Intn(27) // occasional "outlier" within int8 range
		}
		vals[i] = T(v)
	}
	return vals
}

// roundTrip encodes src with every registered codec and checks that
// Decode, Get and Stats agree with the input.
func roundTrip[T zukowski.Integer](t *testing.T, rng *rand.Rand) {
	t.Helper()
	for _, name := range zukowski.Codecs() {
		codec, err := zukowski.Lookup[T](name)
		if errors.Is(err, zukowski.ErrUnknownCodec) {
			continue // user codec registered for a different element type
		}
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		for _, n := range testLengths {
			src := genValues[T](rng, n)
			frame, err := codec.Encode(nil, src)
			if err != nil {
				t.Fatalf("%s/%d: Encode: %v", name, n, err)
			}
			out, err := codec.Decode(nil, frame)
			if err != nil {
				t.Fatalf("%s/%d: Decode: %v", name, n, err)
			}
			if len(out) != len(src) {
				t.Fatalf("%s/%d: decoded %d values", name, n, len(out))
			}
			for i := range src {
				if out[i] != src[i] {
					t.Fatalf("%s/%d: value %d: got %v want %v", name, n, i, out[i], src[i])
				}
			}
			// Spot-check fine-grained access (every position for small
			// blocks, a sample for large ones).
			for k := 0; k < min(n, 64); k++ {
				i := k
				if n > 64 {
					i = rng.Intn(n)
				}
				v, err := codec.Get(frame, i)
				if err != nil {
					t.Fatalf("%s/%d: Get(%d): %v", name, n, i, err)
				}
				if v != src[i] {
					t.Fatalf("%s/%d: Get(%d) = %v, want %v", name, n, i, v, src[i])
				}
			}
			st, err := codec.Stats(frame)
			if err != nil {
				t.Fatalf("%s/%d: Stats: %v", name, n, err)
			}
			if st.NumValues != n {
				t.Fatalf("%s/%d: Stats.NumValues = %d", name, n, st.NumValues)
			}
			if st.EncodedBytes != len(frame) {
				t.Fatalf("%s/%d: Stats.EncodedBytes = %d, frame is %d", name, n, st.EncodedBytes, len(frame))
			}
		}
	}
}

// TestRoundTripAllCodecsAllTypes is the cross-product acceptance test:
// every registered codec round-trips on all eight Integer element types.
func TestRoundTripAllCodecsAllTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	t.Run("int8", func(t *testing.T) { roundTrip[int8](t, rng) })
	t.Run("int16", func(t *testing.T) { roundTrip[int16](t, rng) })
	t.Run("int32", func(t *testing.T) { roundTrip[int32](t, rng) })
	t.Run("int64", func(t *testing.T) { roundTrip[int64](t, rng) })
	t.Run("uint8", func(t *testing.T) { roundTrip[uint8](t, rng) })
	t.Run("uint16", func(t *testing.T) { roundTrip[uint16](t, rng) })
	t.Run("uint32", func(t *testing.T) { roundTrip[uint32](t, rng) })
	t.Run("uint64", func(t *testing.T) { roundTrip[uint64](t, rng) })
}

// TestRoundTripOutliers drives the patched schemes through their reason
// for existing: wide outliers inside a narrow value distribution, including
// negatives for the signed types.
func TestRoundTripOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := make([]int64, 10_000)
	for i := range src {
		src[i] = rng.Int63n(500) - 100
		if rng.Intn(50) == 0 {
			src[i] = rng.Int63() - rng.Int63()
		}
	}
	for _, name := range []string{"pfor", "pfor-delta", "pdict", "none", "auto"} {
		codec, err := zukowski.Lookup[int64](name)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := codec.Encode(nil, src)
		if err != nil {
			t.Fatalf("%s: Encode: %v", name, err)
		}
		out, err := codec.Decode(nil, frame)
		if err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		for i := range src {
			if out[i] != src[i] {
				t.Fatalf("%s: value %d: got %d want %d", name, i, out[i], src[i])
			}
		}
		for k := 0; k < 200; k++ {
			i := rng.Intn(len(src))
			if v, err := codec.Get(frame, i); err != nil || v != src[i] {
				t.Fatalf("%s: Get(%d) = %v, %v; want %d", name, i, v, err, src[i])
			}
		}
	}
}

// TestPatchedFramesCrossDecode: the patched codecs share the segment frame
// format, so any of them decodes any segment frame.
func TestPatchedFramesCrossDecode(t *testing.T) {
	src := []int64{5, 6, 7, 1000, 8, 9}
	frame, err := zukowski.PFOR[int64]{}.Encode(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := zukowski.PDict[int64]{}.Decode(nil, frame)
	if err != nil {
		t.Fatalf("cross decode: %v", err)
	}
	for i := range src {
		if out[i] != src[i] {
			t.Fatalf("cross decode mismatch at %d", i)
		}
	}
}

// TestWidthErrors: invalid explicit bit widths surface as
// ErrWidthOutOfRange, not panics (the internal kernels panic on these).
func TestWidthErrors(t *testing.T) {
	src8 := []int8{1, 2, 3}
	src64 := []int64{1, 2, 3}
	cases := []struct {
		name string
		run  func() error
	}{
		{"pfor width 0 explicit path via 33", func() error {
			_, err := zukowski.PFOR[int64]{Width: 33}.Encode(nil, src64)
			return err
		}},
		{"pfor wider than element", func() error {
			_, err := zukowski.PFOR[int8]{Width: 16}.Encode(nil, src8)
			return err
		}},
		{"pfor-delta width 40", func() error {
			_, err := zukowski.PFORDelta[int64]{Width: 40}.Encode(nil, src64)
			return err
		}},
		{"pdict width 33", func() error {
			_, err := zukowski.PDict[int64]{Width: 33}.Encode(nil, src64)
			return err
		}},
		{"pdict dict larger than code space", func() error {
			_, err := zukowski.PDict[int64]{Width: 1, Dict: []int64{1, 2, 3}}.Encode(nil, src64)
			return err
		}},
		{"pdict width beyond segment dictionary cap", func() error {
			_, err := zukowski.PDict[int64]{Width: 20, Dict: []int64{1, 2, 3}}.Encode(nil, src64)
			return err
		}},
		{"FOR spread wider than 32 bits", func() error {
			_, err := zukowski.FOR[int64]{}.Encode(nil, []int64{0, 1 << 40})
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); !errors.Is(err, zukowski.ErrWidthOutOfRange) {
			t.Errorf("%s: err = %v, want ErrWidthOutOfRange", tc.name, err)
		}
	}
}

// TestBlockTooLarge: encode inputs beyond the 25-bit entry-point limit are
// rejected up front (the internal kernels would panic).
func TestBlockTooLarge(t *testing.T) {
	src := make([]int8, zukowski.MaxBlockValues+1)
	for _, name := range []string{"pfor", "none", "vbyte"} {
		codec, err := zukowski.Lookup[int8](name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := codec.Encode(nil, src); !errors.Is(err, zukowski.ErrBlockTooLarge) {
			t.Errorf("%s: err = %v, want ErrBlockTooLarge", name, err)
		}
	}
}

// TestValueOutOfRange: the 32-bit variable-byte codec rejects wider values
// with a typed error.
func TestValueOutOfRange(t *testing.T) {
	if _, err := (zukowski.VByte[int64]{}).Encode(nil, []int64{1 << 40}); !errors.Is(err, zukowski.ErrValueOutOfRange) {
		t.Fatalf("err = %v, want ErrValueOutOfRange", err)
	}
	// Negative values of narrow types travel through their unsigned image
	// and still round-trip exactly.
	src := []int8{-1, -128, 127, 0}
	frame, err := zukowski.VByte[int8]{}.Encode(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := zukowski.VByte[int8]{}.Decode(nil, frame)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if out[i] != src[i] {
			t.Fatalf("value %d: got %d want %d", i, out[i], src[i])
		}
	}
}

// TestGetIndexOutOfRange: out-of-range lookups return a typed error for
// every codec (the internal kernels panic).
func TestGetIndexOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := genValues[int64](rng, 1000)
	for _, name := range zukowski.Codecs() {
		codec, err := zukowski.Lookup[int64](name)
		if errors.Is(err, zukowski.ErrUnknownCodec) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		frame, err := codec.Encode(nil, src)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range []int{-1, len(src), len(src) + 100} {
			if _, err := codec.Get(frame, i); !errors.Is(err, zukowski.ErrIndexOutOfRange) {
				t.Errorf("%s: Get(%d) err = %v, want ErrIndexOutOfRange", name, i, err)
			}
		}
	}
}

// fnv32 mirrors the segment payload checksum so corruption tests can
// re-validate deliberately damaged frames.
func fnv32(data []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range data {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// TestCorruptSegmentErrors: truncated, garbled and deliberately crafted
// segment bytes all return ErrCorruptSegment — paths that reached the
// panicking internal kernels before the public API existed.
func TestCorruptSegmentErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := make([]int64, 5000)
	for i := range src {
		src[i] = rng.Int63n(900)
		if rng.Intn(25) == 0 {
			src[i] = rng.Int63()
		}
	}
	codec := zukowski.PFOR[int64]{Base: 0, Width: 10}
	frame, err := codec.Encode(nil, src)
	if err != nil {
		t.Fatal(err)
	}

	// Truncation at every prefix length of the header plus a sample of
	// longer prefixes.
	for cut := 0; cut < len(frame); cut += 1 + cut/16 {
		if _, err := codec.Decode(nil, frame[:cut]); !errors.Is(err, zukowski.ErrCorruptSegment) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorruptSegment", cut, err)
		}
	}

	// Bad magic.
	bad := bytes.Clone(frame)
	bad[0] ^= 0xFF
	if _, err := codec.Decode(nil, bad); !errors.Is(err, zukowski.ErrCorruptSegment) {
		t.Fatalf("bad magic: err = %v, want ErrCorruptSegment", err)
	}
	if _, err := codec.Get(bad, 0); !errors.Is(err, zukowski.ErrCorruptSegment) {
		t.Fatalf("bad magic Get: err = %v, want ErrCorruptSegment", err)
	}
	if _, err := codec.Stats(bad); !errors.Is(err, zukowski.ErrCorruptSegment) {
		t.Fatalf("bad magic Stats: err = %v, want ErrCorruptSegment", err)
	}

	// Random payload damage: the checksum catches it.
	for trial := 0; trial < 100; trial++ {
		bad := bytes.Clone(frame)
		bad[44+rng.Intn(len(bad)-44)] ^= byte(1 << rng.Intn(8))
		if _, err := codec.Decode(nil, bad); !errors.Is(err, zukowski.ErrCorruptSegment) {
			t.Fatalf("payload flip: err = %v, want ErrCorruptSegment", err)
		}
	}

	// Crafted damage with a recomputed checksum: corrupt an entry-point
	// word so its exception index escapes the exception section, then fix
	// the checksum so only semantic validation can catch it.
	crafted := bytes.Clone(frame)
	for i := 0; i < 4; i++ {
		crafted[44+i] = 0xFF // entry word 0: huge exception index
	}
	crafted[40] = byte(fnv32(crafted[44:]))
	crafted[41] = byte(fnv32(crafted[44:]) >> 8)
	crafted[42] = byte(fnv32(crafted[44:]) >> 16)
	crafted[43] = byte(fnv32(crafted[44:]) >> 24)
	if _, err := codec.Decode(nil, crafted); !errors.Is(err, zukowski.ErrCorruptSegment) {
		t.Fatalf("crafted entry word: err = %v, want ErrCorruptSegment", err)
	}

	// Allocation bombs: tiny frames whose headers demand enormous
	// buffers must be rejected before anything is allocated. A crafted
	// PDICT frame with a huge code width (the padded dictionary would be
	// 1<<B entries) and a vbyte frame announcing 2^25 values with no
	// payload.
	pdictBomb := make([]byte, 52)
	pdictBomb[0] = 0xC5 // segment magic
	pdictBomb[1] = 3    // SchemePDict
	pdictBomb[2] = 30   // b: would imply a 2^30-entry dictionary
	pdictBomb[3] = 8    // elem size
	// N=0, DictLen=1, one 8-byte dictionary entry as payload.
	pdictBomb[24] = 1
	sum := fnv32(pdictBomb[44:])
	pdictBomb[40], pdictBomb[41], pdictBomb[42], pdictBomb[43] =
		byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24)
	if _, err := codec.Decode(nil, pdictBomb); !errors.Is(err, zukowski.ErrCorruptSegment) {
		t.Fatalf("pdict width bomb: err = %v, want ErrCorruptSegment", err)
	}
	vbyteBomb := []byte{0xB6, 3, 8, 0, 0, 0, 0, 2} // n = 1<<25, empty payload
	if _, err := (zukowski.VByte[int64]{}).Decode(nil, vbyteBomb); !errors.Is(err, zukowski.ErrCorruptSegment) {
		t.Fatalf("vbyte count bomb: err = %v, want ErrCorruptSegment", err)
	}

	// Arbitrary garbage for every codec, including the baseline frames.
	garbage := make([]byte, 64)
	rng.Read(garbage)
	garbage[0] = 0x00
	for _, name := range zukowski.Codecs() {
		c, err := zukowski.Lookup[int64](name)
		if errors.Is(err, zukowski.ErrUnknownCodec) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Decode(nil, garbage); !errors.Is(err, zukowski.ErrCorruptSegment) {
			t.Errorf("%s: garbage decode err = %v, want ErrCorruptSegment", name, err)
		}
	}
}

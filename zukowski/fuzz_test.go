package zukowski_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/zukowski"
)

// FuzzRoundTrip drives every registered codec with arbitrary values:
// whatever Encode accepts must Decode back to exactly the input, and Get
// must agree with Decode. Raw fuzz bytes are also thrown at Decode, which
// must reject or decode them without ever panicking — the property the
// typed-error redesign exists to guarantee.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(1))
	f.Add(binary.LittleEndian.AppendUint64(nil, 1<<40), uint8(2))
	f.Add([]byte{0xC5, 1, 10, 8, 1, 0, 0, 0}, uint8(3)) // segment-ish prefix
	f.Add([]byte{0xB6, 1, 8, 4, 2, 0, 0, 0}, uint8(4))  // baseline-ish prefix

	names := zukowski.Codecs()
	f.Fuzz(func(t *testing.T, data []byte, codecSel uint8) {
		name := names[int(codecSel)%len(names)]
		codec, err := zukowski.Lookup[int64](name)
		if err != nil {
			t.Skip() // codec registered for another element type
		}

		// Interpret the fuzz bytes as values.
		src := make([]int64, 0, len(data)/8+1)
		for len(data) >= 8 {
			src = append(src, int64(binary.LittleEndian.Uint64(data)))
			data = data[8:]
		}
		if len(data) > 0 {
			var tail [8]byte
			copy(tail[:], data)
			src = append(src, int64(binary.LittleEndian.Uint64(tail[:])))
		}

		frame, err := codec.Encode(nil, src)
		if err == nil {
			out, err := codec.Decode(nil, frame)
			if err != nil {
				t.Fatalf("%s: decode of own frame: %v", name, err)
			}
			if len(out) != len(src) {
				t.Fatalf("%s: decoded %d values, want %d", name, len(out), len(src))
			}
			for i := range src {
				if out[i] != src[i] {
					t.Fatalf("%s: value %d: got %d want %d", name, i, out[i], src[i])
				}
			}
			if len(src) > 0 {
				i := int(uint(codecSel) % uint(len(src)))
				v, err := codec.Get(frame, i)
				if err != nil {
					t.Fatalf("%s: Get(%d): %v", name, i, err)
				}
				if v != src[i] {
					t.Fatalf("%s: Get(%d) = %d, want %d", name, i, v, src[i])
				}
			}
			if _, err := codec.Stats(frame); err != nil {
				t.Fatalf("%s: Stats of own frame: %v", name, err)
			}
		}

		// Decode/Get/Stats of arbitrary bytes must error or succeed, never
		// panic. (The t.Fatal-free body means a panic is the only way to
		// fail here.)
		raw := tailBytes(src)
		codec.Decode(nil, raw)
		codec.Get(raw, 1)
		codec.Stats(raw)
	})
}

// FuzzColumn drives the column container decode path (both ZKC1 and the
// checksummed ZKC2) with arbitrary bytes and writer round-trips. Whatever
// the writer produces must read back exactly through both OpenColumn and
// OpenColumnReaderAt; arbitrary bytes must be rejected with typed errors
// or read successfully — never panic.
func FuzzColumn(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(16))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(1), uint8(1))
	f.Add([]byte("ZKC1............"), uint8(2), uint8(4))
	f.Add([]byte("ZKC2............"), uint8(3), uint8(4))
	f.Add([]byte("ZKC2........................ZKE2"), uint8(4), uint8(8))

	f.Fuzz(func(t *testing.T, data []byte, sel uint8, blockSel uint8) {
		// Writer round-trip: fuzz bytes as values, fuzzed block size and
		// format version.
		src := make([]int64, 0, len(data)/8+1)
		for chunk := data; len(chunk) > 0; {
			var tail [8]byte
			n := copy(tail[:], chunk)
			src = append(src, int64(binary.LittleEndian.Uint64(tail[:])))
			chunk = chunk[n:]
		}
		version := zukowski.FormatZKC1 + int(sel)%2
		blockValues := 1 + int(blockSel)*7 // [1, 1786]: past one-value, group, and multi-group shapes
		var buf bytes.Buffer
		cw, err := zukowski.NewColumnWriter[int64](&buf, nil, blockValues, zukowski.WithFormatVersion(version))
		if err != nil {
			t.Fatalf("NewColumnWriter: %v", err)
		}
		if err := cw.Write(src); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := cw.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		for _, open := range []func() (*zukowski.ColumnReader[int64], error){
			func() (*zukowski.ColumnReader[int64], error) { return zukowski.OpenColumn[int64](buf.Bytes()) },
			func() (*zukowski.ColumnReader[int64], error) {
				return zukowski.OpenColumnReaderAt[int64](bytes.NewReader(buf.Bytes()), int64(buf.Len()))
			},
		} {
			cr, err := open()
			if err != nil {
				t.Fatalf("open own container (v%d): %v", version, err)
			}
			if cr.FormatVersion() != version {
				t.Fatalf("FormatVersion = %d, want %d", cr.FormatVersion(), version)
			}
			out, err := cr.ReadAll(nil)
			if err != nil {
				t.Fatalf("ReadAll of own container: %v", err)
			}
			if len(out) != len(src) {
				t.Fatalf("read %d values, want %d", len(out), len(src))
			}
			for i := range src {
				if out[i] != src[i] {
					t.Fatalf("value %d: got %d want %d", i, out[i], src[i])
				}
			}
			if err := cr.Verify(); err != nil {
				t.Fatalf("Verify of own container: %v", err)
			}
			if len(src) > 0 {
				i := int(uint(sel) % uint(len(src)))
				if v, err := cr.Get(i); err != nil || v != src[i] {
					t.Fatalf("Get(%d) = %d, %v; want %d", i, v, err, src[i])
				}
				lo := src[0]
				if err := cr.ScanWhere(lo, lo, func([]int64) bool { return true }); err != nil {
					t.Fatalf("ScanWhere: %v", err)
				}
			}
		}

		// Arbitrary bytes: typed error or success, never a panic.
		if cr, err := zukowski.OpenColumn[int64](data); err == nil {
			cr.ReadAll(nil)
			cr.Get(0)
			cr.Verify()
			cr.ScanWhere(0, 1<<40, func([]int64) bool { return true })
		}
		if cr, err := zukowski.OpenColumnReaderAt[int64](bytes.NewReader(data), int64(len(data))); err == nil {
			cr.ReadAll(nil)
			cr.Get(0)
		}
	})
}

// tailBytes rebuilds a byte view of the fuzz values so the arbitrary-bytes
// decode probe sees the original entropy.
func tailBytes(vals []int64) []byte {
	out := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return out
}

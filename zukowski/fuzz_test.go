package zukowski_test

import (
	"encoding/binary"
	"testing"

	"repro/zukowski"
)

// FuzzRoundTrip drives every registered codec with arbitrary values:
// whatever Encode accepts must Decode back to exactly the input, and Get
// must agree with Decode. Raw fuzz bytes are also thrown at Decode, which
// must reject or decode them without ever panicking — the property the
// typed-error redesign exists to guarantee.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(1))
	f.Add(binary.LittleEndian.AppendUint64(nil, 1<<40), uint8(2))
	f.Add([]byte{0xC5, 1, 10, 8, 1, 0, 0, 0}, uint8(3)) // segment-ish prefix
	f.Add([]byte{0xB6, 1, 8, 4, 2, 0, 0, 0}, uint8(4))  // baseline-ish prefix

	names := zukowski.Codecs()
	f.Fuzz(func(t *testing.T, data []byte, codecSel uint8) {
		name := names[int(codecSel)%len(names)]
		codec, err := zukowski.Lookup[int64](name)
		if err != nil {
			t.Skip() // codec registered for another element type
		}

		// Interpret the fuzz bytes as values.
		src := make([]int64, 0, len(data)/8+1)
		for len(data) >= 8 {
			src = append(src, int64(binary.LittleEndian.Uint64(data)))
			data = data[8:]
		}
		if len(data) > 0 {
			var tail [8]byte
			copy(tail[:], data)
			src = append(src, int64(binary.LittleEndian.Uint64(tail[:])))
		}

		frame, err := codec.Encode(nil, src)
		if err == nil {
			out, err := codec.Decode(nil, frame)
			if err != nil {
				t.Fatalf("%s: decode of own frame: %v", name, err)
			}
			if len(out) != len(src) {
				t.Fatalf("%s: decoded %d values, want %d", name, len(out), len(src))
			}
			for i := range src {
				if out[i] != src[i] {
					t.Fatalf("%s: value %d: got %d want %d", name, i, out[i], src[i])
				}
			}
			if len(src) > 0 {
				i := int(uint(codecSel) % uint(len(src)))
				v, err := codec.Get(frame, i)
				if err != nil {
					t.Fatalf("%s: Get(%d): %v", name, i, err)
				}
				if v != src[i] {
					t.Fatalf("%s: Get(%d) = %d, want %d", name, i, v, src[i])
				}
			}
			if _, err := codec.Stats(frame); err != nil {
				t.Fatalf("%s: Stats of own frame: %v", name, err)
			}
		}

		// Decode/Get/Stats of arbitrary bytes must error or succeed, never
		// panic. (The t.Fatal-free body means a panic is the only way to
		// fail here.)
		raw := tailBytes(src)
		codec.Decode(nil, raw)
		codec.Get(raw, 1)
		codec.Stats(raw)
	})
}

// tailBytes rebuilds a byte view of the fuzz values so the arbitrary-bytes
// decode probe sees the original entropy.
func tailBytes(vals []int64) []byte {
	out := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return out
}

package zukowski

import "context"

// Context-aware conjunctive scans. A long scan over a large ColumnSet is
// the unit of work a serving layer hands out per request, and a request
// can die mid-scan: the client disconnects, a per-query time budget
// expires, a row budget trips a cancel. These variants consult ctx at
// block granularity — the natural preemption point, since one block is
// one bounded quantum of decode work — and return ctx.Err()
// (context.Canceled or context.DeadlineExceeded) as soon as it fires,
// without starting another block. A scan already inside a block finishes
// that block first, so cancellation latency is bounded by one block's
// decode time, not the scan's.
//
// The context is plumbing, not a predicate: a nil-to-fire context makes
// these behave exactly like their context-free counterparts, at the cost
// of one Err() check per block.

// ScanWhereAllContext is ScanWhereAll under a context: the scan stops at
// the next block boundary once ctx is done and returns ctx.Err(). A scan
// stopped by fn returning false still returns nil; a scan stopped by the
// context returns context.Canceled or context.DeadlineExceeded.
func (cs *ColumnSet[T]) ScanWhereAllContext(ctx context.Context, preds []Pred[T], fn func(rows []int64, cols [][]T) bool, opts ...ScanOption) error {
	q := Query[T]{Preds: preds}
	return cs.runSeq(ctx, parseScanOpts(opts), &q, func(_ int, rows []int64, cols [][]T) bool { return fn(rows, cols) })
}

// ParallelScanWhereAllContext is ParallelScanWhereAll under a context:
// workers stop claiming blocks once ctx is done, in-flight blocks are
// discarded undelivered, and the scan returns ctx.Err(). Like any worker
// error, cancellation surfaces after the pool drains — bounded by the
// blocks already being decoded, never by blocks not yet claimed.
func (cs *ColumnSet[T]) ParallelScanWhereAllContext(ctx context.Context, preds []Pred[T], workers int, fn func(block int, rows []int64, cols [][]T) bool, opts ...ScanOption) error {
	q := Query[T]{Preds: preds}
	return cs.runParallel(ctx, parseScanOpts(opts), &q, workers, fn)
}

// AggregateWhereAllContext is AggregateWhereAll under a context: the fold
// stops at the next block boundary once ctx is done and returns a zero
// Aggregate with ctx.Err().
func (cs *ColumnSet[T]) AggregateWhereAllContext(ctx context.Context, preds []Pred[T], col int, opts ...ScanOption) (Aggregate[T], error) {
	q := Query[T]{Preds: preds}
	return cs.runAggregate(ctx, parseScanOpts(opts), &q, col)
}

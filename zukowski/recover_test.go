package zukowski_test

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"repro/internal/faultio"
	"repro/zukowski"
)

// recoverBytes runs RecoverColumn over buf and returns the rebuilt
// container plus its stats.
func recoverBytes[T zukowski.Integer](t *testing.T, buf []byte) ([]byte, zukowski.RecoverStats) {
	t.Helper()
	var out bytes.Buffer
	stats, err := zukowski.RecoverColumn[T](bytes.NewReader(buf), int64(len(buf)), &out)
	if err != nil {
		t.Fatalf("RecoverColumn: %v", err)
	}
	return out.Bytes(), stats
}

// checkRecovered opens the rebuilt container, verifies it end to end, and
// checks its values are exactly want.
func checkRecovered[T zukowski.Integer](t *testing.T, rebuilt []byte, want []T) {
	t.Helper()
	cr, err := zukowski.OpenColumn[T](rebuilt)
	if err != nil {
		t.Fatalf("OpenColumn on recovered container: %v", err)
	}
	if cr.FormatVersion() != zukowski.FormatZKC2 {
		t.Fatalf("recovered version = %d, want ZKC2", cr.FormatVersion())
	}
	if err := cr.Verify(); err != nil {
		t.Fatalf("Verify on recovered container: %v", err)
	}
	got, err := cr.ReadAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("recovered %d rows, want %d (or values differ)", len(got), len(want))
	}
}

// prefixRows returns the row count of the blocks wholly contained in
// buf[:cut], per the pristine container's directory.
func prefixRows[T zukowski.Integer](t *testing.T, data []byte, cut int) int {
	t.Helper()
	cr, err := zukowski.OpenColumn[T](data)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for b := 0; b < cr.NumBlocks(); b++ {
		info, err := cr.BlockInfo(b)
		if err != nil {
			t.Fatal(err)
		}
		if int(info.Offset)+info.Length > cut {
			break
		}
		rows += info.Count
	}
	return rows
}

// TestRecoverColumnTornTail: truncating a container anywhere — mid tail,
// mid directory, mid frame, even right after the header — recovers exactly
// the whole blocks of the surviving prefix, and the rebuilt container
// passes full verification.
func TestRecoverColumnTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	src := genValues[int64](rng, 5000)
	data := buildColumnV2(t, zukowski.PFOR[int64]{}, 512, src)

	cuts := []int{
		len(data) - 1,   // inside the 24-byte tail
		len(data) - 30,  // inside the directory
		len(data) - 200, // deeper in the directory
		len(data) / 2,   // mid frame
		len(data) / 4,   //
		17,              // one byte into the first frame
		16,              // bare header
	}
	for _, cut := range cuts {
		rebuilt, stats := recoverBytes[int64](t, data[:cut])
		rows := prefixRows[int64](t, data, cut)
		checkRecovered(t, rebuilt, src[:rows])
		if stats.Rows != int64(rows) || stats.BytesIn != int64(cut) {
			t.Fatalf("cut %d: stats = %+v, want %d rows", cut, stats, rows)
		}
		// The damaged input does not open; the rebuilt one did (above).
		if _, err := zukowski.OpenColumn[int64](data[:cut]); err == nil {
			t.Fatalf("cut %d: torn container unexpectedly opens", cut)
		}
	}
}

// TestRecoverColumnIntact: recovering an undamaged container is a lossless
// footer rebuild — every row survives and only the old footer is dropped.
func TestRecoverColumnIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for _, blockValues := range []int{256, 1000} {
		src := genValues[uint32](rng, 4100)
		data := buildColumnV2[uint32](t, nil, blockValues, src)
		rebuilt, stats := recoverBytes[uint32](t, data)
		checkRecovered(t, rebuilt, src)
		cr, err := zukowski.OpenColumn[uint32](data)
		if err != nil {
			t.Fatal(err)
		}
		footer := len(data) - 16
		for b := 0; b < cr.NumBlocks(); b++ {
			info, err := cr.BlockInfo(b)
			if err != nil {
				t.Fatal(err)
			}
			footer -= info.Length
		}
		if stats.DroppedBytes != int64(footer) {
			t.Fatalf("blockValues %d: dropped %d bytes, want the %d-byte footer", blockValues, stats.DroppedBytes, footer)
		}
		if stats.BytesOut != int64(len(rebuilt)) {
			t.Fatalf("BytesOut = %d, wrote %d", stats.BytesOut, len(rebuilt))
		}
	}
}

// TestRecoverColumnBitFlip: a flipped payload byte stops the walk at the
// damaged frame; everything before it survives bit-exact.
func TestRecoverColumnBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	src := genValues[int64](rng, 5000)
	data := buildColumnV2(t, zukowski.PFOR[int64]{}, 512, src)
	cr, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	const bad = 3
	info, err := cr.BlockInfo(bad)
	if err != nil {
		t.Fatal(err)
	}
	damaged := bytes.Clone(data)
	damaged[int(info.Offset)+info.Length-2] ^= 0x40

	rebuilt, stats := recoverBytes[int64](t, damaged)
	checkRecovered(t, rebuilt, src[:bad*512])
	if stats.Blocks != bad {
		t.Fatalf("recovered %d blocks, want %d", stats.Blocks, bad)
	}
	if stats.DroppedBytes == 0 {
		t.Fatal("bit-flip recovery dropped nothing")
	}
}

// TestRecoverColumnZKC1: a ZKC1 container with its footer torn off is
// recovered and upgraded to ZKC2, checksums and zone maps included.
func TestRecoverColumnZKC1(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	src := genValues[int64](rng, 3000)
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter(&buf, zukowski.PFOR[int64]{}, 512, zukowski.WithFormatVersion(zukowski.FormatZKC1))
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	torn := data[:len(data)-10] // rip through the ZKC1 tail
	rebuilt, _ := recoverBytes[int64](t, torn)
	checkRecovered(t, rebuilt, src)
}

// TestRecoverColumnRejects: inputs without a usable header are refused
// with typed errors; a valid header over garbage yields a valid empty
// container.
func TestRecoverColumnRejects(t *testing.T) {
	var out bytes.Buffer
	if _, err := zukowski.RecoverColumn[int64](bytes.NewReader(nil), 0, &out); !errors.Is(err, zukowski.ErrCorruptColumn) {
		t.Fatalf("empty input err = %v", err)
	}
	junk := []byte("this is not a column container at all!!!")
	if _, err := zukowski.RecoverColumn[int64](bytes.NewReader(junk), int64(len(junk)), &out); !errors.Is(err, zukowski.ErrCorruptColumn) {
		t.Fatalf("junk input err = %v", err)
	}
	// Element size mismatch is refused rather than mis-decoded.
	data := buildColumnV2(t, zukowski.PFOR[int64]{}, 512, genValues[int64](rand.New(rand.NewSource(95)), 1000))
	if _, err := zukowski.RecoverColumn[int16](bytes.NewReader(data), int64(len(data)), &out); !errors.Is(err, zukowski.ErrCorruptColumn) {
		t.Fatalf("elem mismatch err = %v", err)
	}
	// Valid header, garbage frames: zero blocks, but a well-formed empty
	// container.
	garbled := append(bytes.Clone(data[:16]), []byte(strings.Repeat("x", 100))...)
	out.Reset()
	stats, err := zukowski.RecoverColumn[int64](bytes.NewReader(garbled), int64(len(garbled)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != 0 || stats.Rows != 0 {
		t.Fatalf("stats = %+v, want empty", stats)
	}
	checkRecovered[int64](t, out.Bytes(), nil)
}

// TestWriteColumnAtomic: the file appears complete at its final path, and
// a failed write leaves neither the target nor temp debris behind.
func TestWriteColumnAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	src := genValues[int64](rng, 3000)
	dir := t.TempDir()
	path := filepath.Join(dir, "col.zkc")

	// Overwrite semantics: stale bytes at the target are replaced whole.
	if err := os.WriteFile(path, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := zukowski.WriteColumnAtomic(path, zukowski.PFOR[int64]{}, 512, src); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkRecovered(t, data, src) // opens, verifies, matches — and is ZKC2

	// A write that cannot start (unwritable directory entry) must not
	// leave temp files around.
	if err := zukowski.WriteColumnAtomic(filepath.Join(dir, "missing", "col.zkc"), zukowski.PFOR[int64]{}, 512, src); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "col.zkc" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only col.zkc", names)
	}
}

// TestTornWriteRecovery: the end-to-end crash story — a writer dies mid
// stream (faultio.Writer), the partial container does not open, and
// RecoverColumn salvages every whole block that reached the file.
func TestTornWriteRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	src := genValues[int64](rng, 5000)
	whole := buildColumnV2(t, zukowski.PFOR[int64]{}, 512, src)

	for _, failAfter := range []int64{20, int64(len(whole)) / 3, int64(len(whole)) - 12} {
		var partial bytes.Buffer
		tw := &faultio.Writer{W: &partial, FailAfter: failAfter}
		cw, err := zukowski.NewColumnWriter(tw, zukowski.PFOR[int64]{}, 512)
		if err != nil {
			t.Fatal(err)
		}
		err = cw.Write(src)
		if err == nil {
			err = cw.Close()
		}
		if !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("failAfter %d: torn write err = %v, want ErrInjected", failAfter, err)
		}
		if _, err := zukowski.OpenColumn[int64](partial.Bytes()); err == nil {
			t.Fatalf("failAfter %d: torn container opens", failAfter)
		}
		rebuilt, _ := recoverBytes[int64](t, partial.Bytes())
		rows := prefixRows[int64](t, whole, partial.Len())
		checkRecovered(t, rebuilt, src[:rows])
	}
}

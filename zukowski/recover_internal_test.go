package zukowski

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultio"
)

// buildRecoverInput writes a small multi-block container and returns its
// bytes plus the byte size of a healthy recovery of it.
func buildRecoverInput(t *testing.T) (data []byte, recoveredSize int64) {
	t.Helper()
	vals := make([]int64, 3000)
	for i := range vals {
		vals[i] = int64(i % 257)
	}
	var buf bytes.Buffer
	cw, err := NewColumnWriter[int64](&buf, nil, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Write(vals); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	var healthy bytes.Buffer
	if _, err := RecoverColumn[int64](bytes.NewReader(buf.Bytes()), int64(buf.Len()), &healthy); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), int64(healthy.Len())
}

// TestRecoverColumnFileCleanupOnWriteFault tears the salvage output stream
// at assorted byte budgets with faultio.Writer and asserts the contract
// that matters to startup recovery: a failed RecoverColumnFile leaves the
// destination directory exactly as it found it — no temp file, no
// destination file.
func TestRecoverColumnFileCleanupOnWriteFault(t *testing.T) {
	data, total := buildRecoverInput(t)
	if total < 100 {
		t.Fatalf("recovered container implausibly small: %d bytes", total)
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "out.zkc")
	for _, failAfter := range []int64{0, 1, 15, columnHeaderSize, columnHeaderSize + 1, total / 2, total - 1} {
		_, err := recoverColumnToFile[int64](bytes.NewReader(data), int64(len(data)), out,
			func(w io.Writer) io.Writer { return &faultio.Writer{W: w, FailAfter: failAfter} })
		if !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("failAfter=%d: err = %v, want injected write fault", failAfter, err)
		}
		ents, derr := os.ReadDir(dir)
		if derr != nil {
			t.Fatal(derr)
		}
		if len(ents) != 0 {
			names := make([]string, len(ents))
			for i, e := range ents {
				names[i] = e.Name()
			}
			t.Fatalf("failAfter=%d: directory not clean after failed salvage: %v", failAfter, names)
		}
	}

	// The success path produces a valid container at the destination and
	// nothing else.
	stats, err := RecoverColumnFile[int64](bytes.NewReader(data), int64(len(data)), out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != 3000 {
		t.Fatalf("recovered %d rows, want 3000", stats.Rows)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := OpenColumn[int64](got)
	if err != nil {
		t.Fatalf("recovered output does not open: %v", err)
	}
	if err := cr.Verify(); err != nil {
		t.Fatalf("recovered output fails verify: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "out.zkc" {
		t.Fatalf("directory holds %d entries after successful salvage", len(ents))
	}

	// A failed rename (destination path is an existing directory) must also
	// clean up its temp file.
	dir2 := t.TempDir()
	blocked := filepath.Join(dir2, "dst.zkc")
	if err := os.Mkdir(blocked, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverColumnFile[int64](bytes.NewReader(data), int64(len(data)), blocked); err == nil {
		t.Fatal("rename over a directory succeeded")
	}
	ents, err = os.ReadDir(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp file left behind after failed rename: %d entries", len(ents))
	}
}

package zukowski

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/segment"
)

// This file adapts the patched-compression kernels of internal/core to the
// Codec contract. Each adapter validates its parameters (the kernels panic
// on misuse), chooses parameters with the paper's sample analyzer when none
// are fixed, and emits the Figure-3 segment layout of internal/segment.
//
// Empty inputs encode as an empty raw segment under every patched codec:
// with zero values there is nothing for a scheme to parameterize on.

// PFOR is Patched Frame-of-Reference: codes are unsigned b-bit offsets from
// a base value; values below the base or too far above it are stored as
// exceptions and patched in after the branch-free decode loop.
//
// The zero value chooses Base and Width per Encode call by running the
// paper's sample analyzer; setting Width fixes both (Base defaults to T's
// zero).
type PFOR[T Integer] struct {
	Base  T
	Width uint
}

// Name implements Codec.
func (PFOR[T]) Name() string { return "pfor" }

// Encode implements Codec.
func (c PFOR[T]) Encode(dst []byte, src []T) ([]byte, error) {
	if err := checkLen(len(src)); err != nil {
		return nil, err
	}
	if len(src) == 0 {
		return append(dst, segment.MarshalRaw(src)...), nil
	}
	base, b := c.Base, c.Width
	if b == 0 {
		ch := core.AnalyzePFOR(core.Sample(src, core.DefaultSampleSize))
		base, b = ch.Base, ch.B
	} else if err := checkWidth[T](b); err != nil {
		return nil, err
	}
	return append(dst, segment.Marshal(core.CompressPFOR(src, base, b))...), nil
}

// Decode implements Codec.
func (PFOR[T]) Decode(dst []T, encoded []byte) ([]T, error) {
	return decodeSegment(dst, encoded)
}

// Get implements Codec.
func (PFOR[T]) Get(encoded []byte, i int) (T, error) { return segmentGet[T](encoded, i) }

// Stats implements Codec.
func (PFOR[T]) Stats(encoded []byte) (Stats, error) { return segmentStats[T](encoded) }

// PFORDelta applies PFOR to the differences between subsequent values — the
// scheme of choice for monotonic or near-monotonic sequences such as
// clustered keys and inverted-file document IDs (Section 5 of the paper).
//
// The zero value chooses DeltaBase and Width per Encode call via the sample
// analyzer; setting Width fixes both (DeltaBase defaults to T's zero, i.e.
// non-negative deltas).
type PFORDelta[T Integer] struct {
	DeltaBase T
	Width     uint
}

// Name implements Codec.
func (PFORDelta[T]) Name() string { return "pfor-delta" }

// Encode implements Codec.
func (c PFORDelta[T]) Encode(dst []byte, src []T) ([]byte, error) {
	if err := checkLen(len(src)); err != nil {
		return nil, err
	}
	if len(src) == 0 {
		return append(dst, segment.MarshalRaw(src)...), nil
	}
	deltaBase, b := c.DeltaBase, c.Width
	if b == 0 {
		ch := core.AnalyzePFORDelta(core.Sample(src, core.DefaultSampleSize))
		deltaBase, b = ch.DeltaBase, ch.B
	} else if err := checkWidth[T](b); err != nil {
		return nil, err
	}
	// Chain the frame so the first delta equals deltaBase and codes to
	// zero, as the analyzer's Choice.Compress does.
	blk := core.CompressPFORDelta(src, src[0]-deltaBase, deltaBase, b)
	return append(dst, segment.Marshal(blk)...), nil
}

// Decode implements Codec.
func (PFORDelta[T]) Decode(dst []T, encoded []byte) ([]T, error) {
	return decodeSegment(dst, encoded)
}

// Get implements Codec.
func (PFORDelta[T]) Get(encoded []byte, i int) (T, error) { return segmentGet[T](encoded, i) }

// Stats implements Codec.
func (PFORDelta[T]) Stats(encoded []byte) (Stats, error) { return segmentStats[T](encoded) }

// PDict is Patched Dictionary compression: b-bit codes index a dictionary
// of frequent values; values outside the dictionary become exceptions.
// Unlike plain dictionary coding it thrives on skewed distributions, since
// rare values need not widen the code domain.
//
// The zero value builds the dictionary from the most frequent sample values
// per Encode call; setting Width (and optionally Dict) fixes the
// parameters. A fixed Dict must hold at most 1<<Width entries.
type PDict[T Integer] struct {
	Dict  []T
	Width uint
}

// Name implements Codec.
func (PDict[T]) Name() string { return "pdict" }

// Encode implements Codec.
func (c PDict[T]) Encode(dst []byte, src []T) ([]byte, error) {
	if err := checkLen(len(src)); err != nil {
		return nil, err
	}
	if len(src) == 0 {
		return append(dst, segment.MarshalRaw(src)...), nil
	}
	dict, b := c.Dict, c.Width
	if b == 0 {
		ch := core.AnalyzePDict(core.Sample(src, core.DefaultSampleSize))
		dict, b = ch.Dict, ch.B
	} else {
		if err := checkWidth[T](b); err != nil {
			return nil, err
		}
		// The segment format caps dictionary widths at MaxDictBits: the
		// decode side materializes 1<<b entries and refuses frames beyond
		// the cap, so wider widths would encode unreadable frames.
		if b > core.MaxDictBits {
			return nil, fmt.Errorf("%w: PDICT width %d exceeds %d bits", ErrWidthOutOfRange, b, core.MaxDictBits)
		}
		if len(dict) > 1<<b {
			return nil, fmt.Errorf("%w: dictionary of %d entries needs more than %d bits",
				ErrWidthOutOfRange, len(dict), b)
		}
	}
	return append(dst, segment.Marshal(core.CompressPDict(src, dict, b))...), nil
}

// Decode implements Codec.
func (PDict[T]) Decode(dst []T, encoded []byte) ([]T, error) {
	return decodeSegment(dst, encoded)
}

// Get implements Codec.
func (PDict[T]) Get(encoded []byte, i int) (T, error) { return segmentGet[T](encoded, i) }

// Stats implements Codec.
func (PDict[T]) Stats(encoded []byte) (Stats, error) { return segmentStats[T](encoded) }

// None stores values verbatim in a raw segment. It is the fallback the
// analyzer picks when no scheme beats uncoded storage, and a useful control
// in benchmarks.
type None[T Integer] struct{}

// Name implements Codec.
func (None[T]) Name() string { return "none" }

// Encode implements Codec.
func (None[T]) Encode(dst []byte, src []T) ([]byte, error) {
	if err := checkLen(len(src)); err != nil {
		return nil, err
	}
	return append(dst, segment.MarshalRaw(src)...), nil
}

// Decode implements Codec.
func (None[T]) Decode(dst []T, encoded []byte) ([]T, error) {
	return decodeSegment(dst, encoded)
}

// Get implements Codec.
func (None[T]) Get(encoded []byte, i int) (T, error) { return segmentGet[T](encoded, i) }

// Stats implements Codec.
func (None[T]) Stats(encoded []byte) (Stats, error) { return segmentStats[T](encoded) }

package zukowski_test

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/zukowski"
)

// --- ZKC1 backward compatibility ---------------------------------------

// compatInt64 regenerates the value stream baked into
// testdata/zkc1_int64_pfor.bin (written by the PR-1 writer).
func compatInt64(rng *rand.Rand) []int64 {
	vals := make([]int64, 3000)
	for i := range vals {
		vals[i] = 100_000 + rng.Int63n(4096)
		if i%100 == 0 {
			vals[i] = rng.Int63()
		}
	}
	return vals
}

// compatUint32 regenerates testdata/zkc1_uint32_auto.bin.
func compatUint32(rng *rand.Rand) []uint32 {
	vals := make([]uint32, 2500)
	for i := range vals {
		vals[i] = 7_000_000 + uint32(rng.Intn(1<<14))
	}
	return vals
}

// compatInt16 regenerates testdata/zkc1_int16_for.bin.
func compatInt16(rng *rand.Rand) []int16 {
	vals := make([]int16, 900)
	for i := range vals {
		vals[i] = int16(rng.Intn(512)) - 100
	}
	return vals
}

// checkZKC1Fixture reads a golden ZKC1 container written before this PR,
// verifies it still parses as format version 1 and yields the original
// values, and re-writes the same values with WithFormatVersion(FormatZKC1)
// to prove the v1 write path still emits byte-identical containers.
func checkZKC1Fixture[T zukowski.Integer](t *testing.T, file string, codec zukowski.Codec[T], blockValues int, want []T) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	cr, err := zukowski.OpenColumn[T](data)
	if err != nil {
		t.Fatalf("%s: OpenColumn: %v", file, err)
	}
	if cr.FormatVersion() != zukowski.FormatZKC1 {
		t.Fatalf("%s: FormatVersion = %d, want %d", file, cr.FormatVersion(), zukowski.FormatZKC1)
	}
	if cr.HasZoneMaps() {
		t.Fatalf("%s: ZKC1 container claims zone maps", file)
	}
	if _, _, ok := cr.ZoneMap(0); ok {
		t.Fatalf("%s: ZoneMap ok on ZKC1", file)
	}
	got, err := cr.ReadAll(nil)
	if err != nil {
		t.Fatalf("%s: ReadAll: %v", file, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: read %d values, want %d", file, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: value %d: got %v want %v", file, i, got[i], want[i])
		}
	}
	if err := cr.Verify(); err != nil {
		t.Fatalf("%s: Verify: %v", file, err)
	}

	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter(&buf, codec, blockValues, zukowski.WithFormatVersion(zukowski.FormatZKC1))
	if err != nil {
		t.Fatal(err)
	}
	if cw.FormatVersion() != zukowski.FormatZKC1 {
		t.Fatalf("writer FormatVersion = %d", cw.FormatVersion())
	}
	if err := cw.Write(want); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatalf("%s: v1 writer no longer byte-identical (%d bytes vs fixture %d)", file, buf.Len(), len(data))
	}
}

// TestZKC1Fixtures: golden containers written by the pre-ZKC2 writer still
// read back exactly, and the v1 write path is still byte-identical.
func TestZKC1Fixtures(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	i64 := compatInt64(rng)
	u32 := compatUint32(rng)
	i16 := compatInt16(rng)
	checkZKC1Fixture(t, "zkc1_int64_pfor.bin", zukowski.PFOR[int64]{}, 512, i64)
	checkZKC1Fixture[uint32](t, "zkc1_uint32_auto.bin", nil, 300, u32)
	checkZKC1Fixture(t, "zkc1_int16_for.bin", zukowski.FOR[int16]{}, 256, i16)
}

// --- ZKC2 round trip ----------------------------------------------------

// buildColumnV2 writes src with the default (ZKC2) writer.
func buildColumnV2[T zukowski.Integer](t *testing.T, codec zukowski.Codec[T], blockValues int, src []T) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter(&buf, codec, blockValues)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkReads drives ReadAll, Get and Verify of one reader against src.
func checkReads[T zukowski.Integer](t *testing.T, cr *zukowski.ColumnReader[T], src []T) {
	t.Helper()
	if cr.Len() != len(src) {
		t.Fatalf("Len = %d, want %d", cr.Len(), len(src))
	}
	got, err := cr.ReadAll(nil)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("ReadAll value %d: got %v want %v", i, got[i], src[i])
		}
	}
	for k := 0; k < 200; k++ {
		i := (k * 7919) % len(src)
		v, err := cr.Get(i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if v != src[i] {
			t.Fatalf("Get(%d) = %v, want %v", i, v, src[i])
		}
	}
	if err := cr.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// zkc2RoundTrip exercises one element type end to end: default writer
// emits ZKC2, both the in-memory and the ReaderAt-backed readers agree
// with the source, and the zone maps bound every block.
func zkc2RoundTrip[T zukowski.Integer](t *testing.T, rng *rand.Rand) {
	t.Helper()
	src := genValues[T](rng, 3000)
	data := buildColumnV2[T](t, nil, 256, src)

	cr, err := zukowski.OpenColumn[T](data)
	if err != nil {
		t.Fatalf("OpenColumn: %v", err)
	}
	if cr.FormatVersion() != zukowski.FormatZKC2 {
		t.Fatalf("FormatVersion = %d, want %d", cr.FormatVersion(), zukowski.FormatZKC2)
	}
	checkReads(t, cr, src)

	// Zone maps must bound every block's actual values exactly.
	for b := 0; b < cr.NumBlocks(); b++ {
		lo, hi, ok := cr.ZoneMap(b)
		if !ok {
			t.Fatalf("block %d: no zone map on ZKC2", b)
		}
		vals, err := cr.ReadBlock(b, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantLo, wantHi := vals[0], vals[0]
		for _, v := range vals {
			if v < wantLo {
				wantLo = v
			}
			if v > wantHi {
				wantHi = v
			}
		}
		if lo != wantLo || hi != wantHi {
			t.Fatalf("block %d: zone map [%v,%v], values span [%v,%v]", b, lo, hi, wantLo, wantHi)
		}
		info, err := cr.BlockInfo(b)
		if err != nil {
			t.Fatal(err)
		}
		if !info.HasChecksum || !info.HasZoneMap || info.Min != wantLo || info.Max != wantHi || info.Count != len(vals) {
			t.Fatalf("block %d: BlockInfo = %+v", b, info)
		}
	}

	// The ReaderAt-backed reader sees the same column.
	lazy, err := zukowski.OpenColumnReaderAt[T](bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("OpenColumnReaderAt: %v", err)
	}
	checkReads(t, lazy, src)
}

// TestZKC2RoundTripAllTypes: the new format round-trips for all 8 element
// types through both column sources.
func TestZKC2RoundTripAllTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	t.Run("int8", func(t *testing.T) { zkc2RoundTrip[int8](t, rng) })
	t.Run("int16", func(t *testing.T) { zkc2RoundTrip[int16](t, rng) })
	t.Run("int32", func(t *testing.T) { zkc2RoundTrip[int32](t, rng) })
	t.Run("int64", func(t *testing.T) { zkc2RoundTrip[int64](t, rng) })
	t.Run("uint8", func(t *testing.T) { zkc2RoundTrip[uint8](t, rng) })
	t.Run("uint16", func(t *testing.T) { zkc2RoundTrip[uint16](t, rng) })
	t.Run("uint32", func(t *testing.T) { zkc2RoundTrip[uint32](t, rng) })
	t.Run("uint64", func(t *testing.T) { zkc2RoundTrip[uint64](t, rng) })
}

// TestZKC2NegativeZoneMaps: signed columns with negative values keep
// correct zone-map ordering through the 64-bit directory representation.
func TestZKC2NegativeZoneMaps(t *testing.T) {
	src := make([]int32, 1000)
	for i := range src {
		src[i] = int32(i%200) - 100 // spans [-100, 99]
	}
	data := buildColumnV2(t, zukowski.FOR[int32]{}, 250, src)
	cr, err := zukowski.OpenColumn[int32](data)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := cr.ZoneMap(0)
	if !ok || lo != -100 || hi != 99 {
		t.Fatalf("ZoneMap(0) = %d, %d, %v; want -100, 99, true", lo, hi, ok)
	}
	if n := cr.CountCandidateBlocks(-200, -101); n != 0 {
		t.Fatalf("CountCandidateBlocks below range = %d, want 0", n)
	}
	if n := cr.CountCandidateBlocks(-100, -100); n != cr.NumBlocks() {
		t.Fatalf("CountCandidateBlocks(-100,-100) = %d, want %d", n, cr.NumBlocks())
	}
}

// --- checksum corruption ------------------------------------------------

// TestZKC2PayloadBitFlip: a single flipped bit in any block payload makes
// every read path fail with ErrChecksumMismatch (which also matches the
// ErrCorruptColumn umbrella).
func TestZKC2PayloadBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	src := genValues[int64](rng, 4000)
	data := buildColumnV2(t, zukowski.PFOR[int64]{}, 512, src)

	cr, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cr.BlockInfo(2)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Clone(data)
	bad[int(info.Offset)+info.Length/2] ^= 0x01 // one bit, mid-payload of block 2

	crBad, err := zukowski.OpenColumn[int64](bad) // directory is intact
	if err != nil {
		t.Fatalf("OpenColumn after payload flip: %v", err)
	}
	if _, err := crBad.ReadAll(nil); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("ReadAll err = %v, want ErrChecksumMismatch", err)
	}
	row := 2*512 + 17 // inside the damaged block
	if _, err := crBad.Get(row); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("Get err = %v, want ErrChecksumMismatch", err)
	}
	if err := crBad.Scan(func([]int64) bool { return true }); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("Scan err = %v, want ErrChecksumMismatch", err)
	}
	if err := crBad.VerifyBlock(2); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("VerifyBlock err = %v, want ErrChecksumMismatch", err)
	}
	if !errors.Is(crBad.Verify(), zukowski.ErrCorruptColumn) {
		t.Fatal("checksum mismatch does not match ErrCorruptColumn umbrella")
	}
	// Undamaged blocks still read fine.
	if _, err := crBad.ReadBlock(0, nil); err != nil {
		t.Fatalf("ReadBlock(0) on column with damage elsewhere: %v", err)
	}

	// The same flip through the lazy ReaderAt source is also caught.
	lazy, err := zukowski.OpenColumnReaderAt[int64](bytes.NewReader(bad), int64(len(bad)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lazy.Get(row); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("lazy Get err = %v, want ErrChecksumMismatch", err)
	}
}

// TestZKC2DirectoryBitFlip: a flipped bit in the directory footer is
// caught by the directory checksum at open time.
func TestZKC2DirectoryBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	src := genValues[uint16](rng, 2000)
	data := buildColumnV2[uint16](t, nil, 256, src)

	// The directory sits between the last frame and the 24-byte tail.
	// Flip one bit in a zone-map byte of the first entry.
	cr, err := zukowski.OpenColumn[uint16](data)
	if err != nil {
		t.Fatal(err)
	}
	dirStart := len(data) - 24 - cr.NumBlocks()*40
	bad := bytes.Clone(data)
	bad[dirStart+24] ^= 0x80
	if _, err := zukowski.OpenColumn[uint16](bad); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("OpenColumn err = %v, want ErrChecksumMismatch", err)
	}
	if _, err := zukowski.OpenColumnReaderAt[uint16](bytes.NewReader(bad), int64(len(bad))); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("OpenColumnReaderAt err = %v, want ErrChecksumMismatch", err)
	}
}

// --- ScanWhere ---------------------------------------------------------

// TestScanWhereOracle: for random ranges over random data, ScanWhere plus
// an exact filter selects exactly what filtering a full ReadAll selects.
func TestScanWhereOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	src := genValues[int64](rng, 10_000)
	data := buildColumnV2[int64](t, nil, 512, src)
	cr, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		lo := rng.Int63n(130) - 2
		hi := lo + rng.Int63n(40)
		var want []int64
		for _, v := range src {
			if v >= lo && v <= hi {
				want = append(want, v)
			}
		}
		var got []int64
		if err := cr.ScanWhere(lo, hi, func(vals []int64) bool {
			for _, v := range vals {
				if v >= lo && v <= hi {
					got = append(got, v)
				}
			}
			return true
		}); err != nil {
			t.Fatalf("ScanWhere(%d,%d): %v", lo, hi, err)
		}
		if len(got) != len(want) {
			t.Fatalf("ScanWhere(%d,%d) selected %d values, oracle %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ScanWhere(%d,%d) value %d: got %d want %d", lo, hi, i, got[i], want[i])
			}
		}
	}
}

// TestScanWherePrunes: on a sorted column a selective range decompresses
// strictly fewer blocks than a full Scan — the zone-map pruning claim of
// the acceptance criteria, asserted by counting fn invocations.
func TestScanWherePrunes(t *testing.T) {
	src := make([]int64, 20_000)
	for i := range src {
		src[i] = int64(i) // sorted: zone maps partition the domain
	}
	data := buildColumnV2(t, zukowski.PFORDelta[int64]{}, 1024, src)
	cr, err := zukowski.OpenColumn[int64](data)
	if err != nil {
		t.Fatal(err)
	}

	fullBlocks := 0
	if err := cr.Scan(func([]int64) bool { fullBlocks++; return true }); err != nil {
		t.Fatal(err)
	}
	if fullBlocks != cr.NumBlocks() {
		t.Fatalf("Scan visited %d of %d blocks", fullBlocks, cr.NumBlocks())
	}

	prunedBlocks := 0
	var selected []int64
	lo, hi := int64(5000), int64(5999)
	if err := cr.ScanWhere(lo, hi, func(vals []int64) bool {
		prunedBlocks++
		for _, v := range vals {
			if v >= lo && v <= hi {
				selected = append(selected, v)
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if prunedBlocks >= fullBlocks {
		t.Fatalf("ScanWhere decompressed %d blocks, full Scan %d — no pruning", prunedBlocks, fullBlocks)
	}
	if len(selected) != 1000 {
		t.Fatalf("ScanWhere selected %d values, want 1000", len(selected))
	}
	if want := cr.CountCandidateBlocks(lo, hi); prunedBlocks != want {
		t.Fatalf("ScanWhere decompressed %d blocks, CountCandidateBlocks says %d", prunedBlocks, want)
	}
	// A range outside the domain touches nothing.
	if err := cr.ScanWhere(-100, -1, func([]int64) bool {
		t.Fatal("ScanWhere visited a block for an empty range")
		return false
	}); err != nil {
		t.Fatal(err)
	}

	// ZKC1 has no zone maps: same scan visits every block.
	var bufV1 bytes.Buffer
	cw, err := zukowski.NewColumnWriter(&bufV1, zukowski.PFORDelta[int64]{}, 1024, zukowski.WithFormatVersion(zukowski.FormatZKC1))
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	crV1, err := zukowski.OpenColumn[int64](bufV1.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	v1Blocks := 0
	if err := crV1.ScanWhere(lo, hi, func([]int64) bool { v1Blocks++; return true }); err != nil {
		t.Fatal(err)
	}
	if v1Blocks != crV1.NumBlocks() {
		t.Fatalf("ZKC1 ScanWhere visited %d of %d blocks", v1Blocks, crV1.NumBlocks())
	}
}

// --- ReaderAt source ----------------------------------------------------

// TestColumnReaderAtFile: a ZKC2 column streams from an actual *os.File
// through OpenColumnReaderAt, including ScanWhere pruning.
func TestColumnReaderAtFile(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	src := genValues[uint32](rng, 8000)
	data := buildColumnV2[uint32](t, nil, 512, src)

	path := filepath.Join(t.TempDir(), "col.zkc2")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	cr, err := zukowski.OpenColumnReaderAt[uint32](f, fi.Size())
	if err != nil {
		t.Fatal(err)
	}
	if cr.CompressedBytes() != len(data) {
		t.Fatalf("CompressedBytes = %d, want %d", cr.CompressedBytes(), len(data))
	}
	checkReads(t, cr, src)
	count := 0
	if err := cr.ScanWhere(0, 10, func(vals []uint32) bool {
		for _, v := range vals {
			if v <= 10 {
				count++
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range src {
		if v <= 10 {
			want++
		}
	}
	if count != want {
		t.Fatalf("file-backed ScanWhere selected %d, oracle %d", count, want)
	}
}

// TestColumnReaderAtReverifies: a ReaderAt source re-reads bytes on every
// fetch, so checksum verification must not be memoized across fetches —
// corruption that appears after a block was first read (bit rot, a
// concurrently rewritten file) still surfaces as ErrChecksumMismatch.
func TestColumnReaderAtReverifies(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	src := genValues[int64](rng, 3000)
	data := buildColumnV2[int64](t, nil, 512, src)

	cr, err := zukowski.OpenColumnReaderAt[int64](bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if err := cr.Verify(); err != nil { // every block passes, pre-corruption
		t.Fatal(err)
	}
	var scanned int
	if err := cr.Scan(func(vals []int64) bool { scanned += len(vals); return true }); err != nil {
		t.Fatal(err)
	}
	if scanned != len(src) {
		t.Fatalf("scanned %d values", scanned)
	}

	// Rot a payload byte in the shared backing slice after the fact.
	info, err := cr.BlockInfo(1)
	if err != nil {
		t.Fatal(err)
	}
	data[int(info.Offset)+3] ^= 0x20
	if err := cr.Scan(func([]int64) bool { return true }); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("Scan after rot err = %v, want ErrChecksumMismatch", err)
	}
	if err := cr.VerifyBlock(1); !errors.Is(err, zukowski.ErrChecksumMismatch) {
		t.Fatalf("VerifyBlock after rot err = %v, want ErrChecksumMismatch", err)
	}
}

// TestColumnReaderAtTruncated: a ReaderAt whose claimed size exceeds the
// data reports typed errors, not panics.
func TestColumnReaderAtTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	src := genValues[int64](rng, 2000)
	data := buildColumnV2[int64](t, nil, 256, src)
	for _, cut := range []int{0, 10, len(data) / 2, len(data) - 5} {
		_, err := zukowski.OpenColumnReaderAt[int64](bytes.NewReader(data[:cut]), int64(len(data)))
		if err == nil {
			t.Fatalf("cut %d: open succeeded on truncated source", cut)
		}
		if !errors.Is(err, zukowski.ErrCorruptColumn) && !errors.Is(err, zukowski.ErrCorruptSegment) {
			t.Fatalf("cut %d: err = %v", cut, err)
		}
	}
}

// TestUnsupportedVersion: the writer rejects versions it cannot emit.
func TestUnsupportedVersion(t *testing.T) {
	var buf bytes.Buffer
	_, err := zukowski.NewColumnWriter[int64](&buf, nil, 0, zukowski.WithFormatVersion(3))
	if !errors.Is(err, zukowski.ErrUnsupportedVersion) {
		t.Fatalf("err = %v, want ErrUnsupportedVersion", err)
	}
}

// TestColumnEmptyV2: an empty ZKC2 container round-trips through both
// sources.
func TestColumnEmptyV2(t *testing.T) {
	var buf bytes.Buffer
	cw, err := zukowski.NewColumnWriter[int8](&buf, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	for _, open := range []func() (*zukowski.ColumnReader[int8], error){
		func() (*zukowski.ColumnReader[int8], error) { return zukowski.OpenColumn[int8](buf.Bytes()) },
		func() (*zukowski.ColumnReader[int8], error) {
			return zukowski.OpenColumnReaderAt[int8](bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		},
	} {
		cr, err := open()
		if err != nil {
			t.Fatal(err)
		}
		if cr.Len() != 0 || cr.NumBlocks() != 0 || cr.FormatVersion() != zukowski.FormatZKC2 {
			t.Fatalf("Len=%d NumBlocks=%d version=%d", cr.Len(), cr.NumBlocks(), cr.FormatVersion())
		}
		if err := cr.Verify(); err != nil {
			t.Fatal(err)
		}
		if err := cr.ScanWhere(0, 100, func([]int8) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
}

// Package repro is a from-scratch Go reproduction of "Super-Scalar RAM-CPU
// Cache Compression" (Zukowski, Héman, Nes, Boncz; ICDE 2006): the PFOR,
// PFOR-DELTA and PDICT patched compression schemes, the ColumnBM storage
// manager and vectorized execution engine they were evaluated in, the
// baseline compressors the paper compares against, and harnesses that
// regenerate every table and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The library lives under internal/; cmd/ holds the benchmark harnesses
// and examples/ the runnable examples.
package repro

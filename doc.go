// Package repro is a from-scratch Go reproduction of "Super-Scalar RAM-CPU
// Cache Compression" (Zukowski, Héman, Nes, Boncz; ICDE 2006): the PFOR,
// PFOR-DELTA and PDICT patched compression schemes, the ColumnBM storage
// manager and vectorized execution engine they were evaluated in, the
// baseline compressors the paper compares against, and harnesses that
// regenerate the tables and figures of the paper's evaluation.
//
// Import repro/zukowski for the public API: a unified Codec interface over
// every scheme, a name-indexed codec registry, and a streaming
// ColumnWriter/ColumnReader container, all with typed errors.
// repro/experiments regenerates the paper's evaluation. The kernels live
// under internal/, cmd/ holds the benchmark harnesses and examples/ the
// runnable examples. See README.md for a tour and a package map.
package repro

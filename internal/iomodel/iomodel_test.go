package iomodel

import (
	"math"
	"testing"
)

func TestSection5Equilibrium(t *testing.T) {
	// The paper: Q=580MB/s query bandwidth, 350MB/s RAID ->
	// "580*C/(580+C) = 350, which leads to C = 883MB/s".
	c := EquilibriumC(580, 350)
	if math.Abs(c-883) > 1 {
		t.Fatalf("equilibrium C = %.1f, paper computes 883", c)
	}
}

func TestEquilibriumUnreachable(t *testing.T) {
	if !math.IsInf(EquilibriumC(300, 350), 1) {
		t.Fatal("target above Q must be unreachable")
	}
}

func TestIOBoundRegime(t *testing.T) {
	// Slow disk, fast CPU: I/O bound, result bandwidth = B*r.
	r, ioBound := ResultBandwidth(Params{B: 80, R: 4, Q: 2000, C: 3000})
	if !ioBound {
		t.Fatal("should be I/O bound")
	}
	if math.Abs(r-320) > 1e-9 {
		t.Fatalf("R = %f, want B*r = 320", r)
	}
}

func TestCPUBoundRegime(t *testing.T) {
	// Fast disk: the CPU can't keep up; R = QC/(Q+C).
	r, ioBound := ResultBandwidth(Params{B: 1000, R: 4, Q: 500, C: 2000})
	if ioBound {
		t.Fatal("should be CPU bound")
	}
	want := 500.0 * 2000 / 2500
	if math.Abs(r-want) > 1e-9 {
		t.Fatalf("R = %f, want %f", r, want)
	}
}

func TestBoundaryContinuity(t *testing.T) {
	// At the regime boundary the two formulas agree.
	// Choose Q=C=2: boundary at Br/C + Br/Q = 1 -> Br = 1; QC/(Q+C) = 1.
	r1, _ := ResultBandwidth(Params{B: 0.25, R: 4, Q: 2, C: 2})
	if math.Abs(r1-1) > 1e-9 {
		t.Fatalf("boundary R = %f, want 1", r1)
	}
}

func TestSlowDecompressionHurts(t *testing.T) {
	// Table 4's point: a codec slower than the equilibrium C makes the
	// query slower than not compressing at all.
	q, b := 580.0, 350.0
	unc, _ := ResultBandwidth(Params{B: b, R: 1, Q: q, C: math.Inf(1)})
	slow, _ := ResultBandwidth(Params{B: b, R: 3.47, Q: q, C: 164})  // shuff dec speed
	fast, _ := ResultBandwidth(Params{B: b, R: 3.47, Q: q, C: 3911}) // PFOR-DELTA
	if slow >= unc {
		t.Fatalf("shuff-speed codec should lose to uncompressed: %f vs %f", slow, unc)
	}
	if fast <= unc {
		t.Fatalf("PFOR-DELTA-speed codec should win: %f vs %f", fast, unc)
	}
}

func TestSection5Acceleration(t *testing.T) {
	// "PFOR-DELTA accelerates it from 350MB/s to 504MB/s": with Q=580 and
	// C=3911, QC/(Q+C) = 505 (CPU bound).
	got, ioBound := ResultBandwidth(Params{B: 350, R: 3.47, Q: 580, C: 3911})
	if ioBound {
		t.Fatal("compressed fbis query should be CPU bound")
	}
	if math.Abs(got-505) > 2 {
		t.Fatalf("accelerated bandwidth %.0f, paper reports ~504", got)
	}
}

func TestDecompressionShareTargets(t *testing.T) {
	// Design goals from Section 3: C=2GB/s keeps overhead at 50% of CPU
	// time (at Q=2GB/s), C=6GB/s gets it to 25%.
	if s := DecompressionShare(2000, 2000); math.Abs(s-0.5) > 1e-9 {
		t.Fatalf("share at C=Q: %f, want 0.5", s)
	}
	if s := DecompressionShare(2000, 6000); math.Abs(s-0.25) > 1e-9 {
		t.Fatalf("share at C=3Q: %f, want 0.25", s)
	}
}

func TestSpeedupTracksRatioWhenIOBound(t *testing.T) {
	// On a slow RAID with fast decompression, speedup ~= compression ratio
	// (the Opteron/DSM observation of Table 2).
	s := SpeedupFromCompression(Params{B: 80, R: 4.0, Q: 1500, C: 2500})
	if s < 3.2 || s > 4.01 {
		t.Fatalf("I/O-bound speedup %.2f, want close to ratio 4", s)
	}
}

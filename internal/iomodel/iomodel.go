// Package iomodel implements the analytic performance model of Section 3
// (equation 3.1): the result bandwidth of a scan-bound query given I/O
// bandwidth, compression ratio, query (processing) bandwidth and
// decompression bandwidth.
//
// All bandwidths are in MB/s (the unit is irrelevant as long as it is
// consistent).
package iomodel

// Params are the model inputs of equation 3.1.
type Params struct {
	B float64 // I/O bandwidth
	R float64 // compression ratio r (1 = uncompressed)
	Q float64 // query bandwidth: how fast the engine consumes tuples
	C float64 // decompression bandwidth (+Inf for uncompressed data)
}

// ResultBandwidth evaluates equation 3.1:
//
//	R = B*r                 if B*r/C + B*r/Q <= 1  (I/O bound)
//	R = Q*C/(Q+C)           otherwise              (CPU bound)
//
// It returns the achievable result-tuple bandwidth and whether the query is
// I/O bound.
func ResultBandwidth(p Params) (float64, bool) {
	br := p.B * p.R
	load := 0.0
	if p.C > 0 {
		load += br / p.C
	}
	if p.Q > 0 {
		load += br / p.Q
	}
	if load <= 1 {
		return br, true
	}
	return p.Q * p.C / (p.Q + p.C), false
}

// EquilibriumC returns the decompression bandwidth C at which query
// processing and decompression together exactly keep up with the target
// bandwidth: Q*C/(Q+C) = target. This is the Section 5 computation
// (Q=580, target=350 gives C=883). It returns +Inf when the target is
// unreachable (target >= Q).
func EquilibriumC(q, target float64) float64 {
	if target >= q {
		return inf
	}
	return target * q / (q - target)
}

// SpeedupFromCompression returns the end-to-end speedup of compressing,
// i.e. bandwidth(compressed)/bandwidth(uncompressed) under the model: the
// uncompressed run has r=1 and no decompression cost.
func SpeedupFromCompression(p Params) float64 {
	unc, _ := ResultBandwidth(Params{B: p.B, R: 1, Q: p.Q, C: inf})
	com, _ := ResultBandwidth(p)
	if unc == 0 {
		return 0
	}
	return com / unc
}

// DecompressionShare returns the fraction of CPU time spent on
// decompression when CPU bound: (1/C) / (1/C + 1/Q). The paper's design
// targets C=2GB/s for a 50% share and 6GB/s for 20% at Q around 2GB/s.
func DecompressionShare(q, c float64) float64 {
	if c <= 0 {
		return 1
	}
	return q / (q + c)
}

var inf = func() float64 { x := 0.0; return 1 / x }()

// Package faultio wraps io.ReaderAt and io.Writer with deterministic,
// seedable fault injection: transient and permanent read errors, short
// reads, bit-flips and added latency, armed on chosen byte ranges with
// optional firing counts and probabilities. The column reader's retry and
// quarantine paths, the recovery fuzzer and zkserved's -chaos mode all
// drive their storage through these wrappers, so the failure handling the
// package tests is the failure handling production runs.
//
// Determinism matters for reproducing a failing schedule: the same seed
// and rules against the same read sequence inject the same faults. The
// wrappers serialize rule-state updates behind a mutex, so a wrapped
// reader remains safe for the concurrent ReadAt use io.ReaderAt requires.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error every injected read or write failure wraps;
// tests distinguish injected faults from real ones with errors.Is.
var ErrInjected = errors.New("faultio: injected fault")

// Kind selects what a Rule does when it fires.
type Kind int

const (
	// TransientErr fails the read with ErrInjected; bounded by Count, so a
	// retrying reader eventually succeeds.
	TransientErr Kind = iota
	// PermanentErr fails the read with ErrInjected on every firing.
	PermanentErr
	// ShortRead returns only half the requested bytes plus ErrInjected.
	ShortRead
	// BitFlip serves the read but XORs the bytes overlapping the rule's
	// range with the rule's mask — silent corruption, the case CRC32-C
	// exists for.
	BitFlip
	// Latency sleeps Delay before serving the read.
	Latency
)

var kindNames = [...]string{"transient", "permanent", "shortread", "bitflip", "latency"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Rule arms one fault on a byte range of the wrapped source.
type Rule struct {
	Kind Kind

	// Off and Len bound the byte range [Off, Off+Len) the rule applies to;
	// a read fires the rule only if it overlaps the range. Len <= 0 means
	// everything from Off onward.
	Off, Len int64

	// Count caps how many times the rule fires; <= 0 means unlimited.
	// PermanentErr and BitFlip typically run unlimited (the damage does
	// not heal); TransientErr uses Count to model faults that retry away.
	Count int

	// Prob is the chance an overlapping read fires the rule; outside
	// (0, 1) the rule always fires.
	Prob float64

	// Delay is the sleep of a Latency rule.
	Delay time.Duration

	// Mask is the XOR applied by a BitFlip rule; 0 defaults to 0x01.
	Mask byte
}

// overlaps reports whether the read [off, off+n) intersects the rule range.
func (r *Rule) overlaps(off, n int64) bool {
	if n <= 0 || off+n <= r.Off {
		return false
	}
	return r.Len <= 0 || off < r.Off+r.Len
}

// Stats counts what a wrapper has done, by rule kind.
type Stats struct {
	Reads    int64
	Injected [len(kindNames)]int64
}

// ReaderAt injects faults into an io.ReaderAt according to its rules.
type ReaderAt struct {
	r io.ReaderAt

	mu    sync.Mutex
	rng   *rand.Rand
	rules []rule
	stats Stats
}

// rule is a Rule plus its mutable remaining-count state. remaining < 0
// means unlimited; 0 means exhausted.
type rule struct {
	Rule
	remaining int
}

// NewReaderAt wraps r. Rules are evaluated in order on every ReadAt; the
// first non-latency rule that fires decides the outcome (Latency rules
// sleep and let evaluation continue). seed drives the probabilistic rules.
func NewReaderAt(r io.ReaderAt, seed int64, rules ...Rule) *ReaderAt {
	f := &ReaderAt{r: r, rng: rand.New(rand.NewSource(seed))}
	for _, rl := range rules {
		rem := rl.Count
		if rem <= 0 {
			rem = -1
		}
		f.rules = append(f.rules, rule{Rule: rl, remaining: rem})
	}
	return f
}

// ReadAt implements io.ReaderAt.
func (f *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n := int64(len(p))
	var sleep time.Duration
	var hit *rule

	f.mu.Lock()
	f.stats.Reads++
	for i := range f.rules {
		r := &f.rules[i]
		if r.remaining == 0 || !r.overlaps(off, n) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && f.rng.Float64() >= r.Prob {
			continue
		}
		if r.remaining > 0 {
			r.remaining--
		}
		f.stats.Injected[r.Kind]++
		if r.Kind == Latency {
			sleep += r.Delay
			continue
		}
		hit = r
		break
	}
	var verdict Rule
	if hit != nil {
		verdict = hit.Rule
	}
	f.mu.Unlock()

	if sleep > 0 {
		time.Sleep(sleep)
	}
	if hit == nil {
		return f.r.ReadAt(p, off)
	}
	switch verdict.Kind {
	case TransientErr, PermanentErr:
		return 0, fmt.Errorf("%w: %s read of [%d,%d)", ErrInjected, verdict.Kind, off, off+n)
	case ShortRead:
		k, err := f.r.ReadAt(p[:len(p)/2], off)
		if err == nil {
			err = fmt.Errorf("%w: short read of [%d,%d)", ErrInjected, off, off+n)
		}
		return k, err
	case BitFlip:
		k, err := f.r.ReadAt(p, off)
		mask := verdict.Mask
		if mask == 0 {
			mask = 0x01
		}
		lo, hi := verdict.Off, verdict.Off+verdict.Len
		if verdict.Len <= 0 {
			hi = off + int64(k)
		}
		lo, hi = max(lo, off), min(hi, off+int64(k))
		for i := lo; i < hi; i++ {
			p[i-off] ^= mask
		}
		return k, err
	}
	return f.r.ReadAt(p, off)
}

// Stats returns a snapshot of the injection counters.
func (f *ReaderAt) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Writer injects a write failure after a byte budget: writes succeed until
// FailAfter bytes have passed through, then every write fails with
// ErrInjected (the first failing write may be partial). It models a torn
// write — process death or ENOSPC mid-container — for crash-safety tests.
type Writer struct {
	W         io.Writer
	FailAfter int64

	written int64
	failed  bool
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.failed {
		return 0, fmt.Errorf("%w: write after failure", ErrInjected)
	}
	if w.written+int64(len(p)) <= w.FailAfter {
		n, err := w.W.Write(p)
		w.written += int64(n)
		return n, err
	}
	keep := max(int(w.FailAfter-w.written), 0)
	n, err := w.W.Write(p[:keep])
	w.written += int64(n)
	w.failed = true
	if err == nil {
		err = fmt.Errorf("%w: torn write after %d bytes", ErrInjected, w.written)
	}
	return n, err
}

// ParseSchedule parses a fault schedule of the form
//
//	kind[,key=value...][;kind[,key=value...]...]
//
// into rules. Kinds are transient, permanent, shortread, bitflip and
// latency; keys are off, len, count, prob, delay (Go duration) and mask
// (hex or decimal byte). Example:
//
//	transient,count=2,prob=0.05;bitflip,off=16,len=64
//
// A schedule with no rules at all is an error: every caller that reaches
// ParseSchedule asked for fault injection, and silently arming nothing
// would make a chaos run vacuously green.
func ParseSchedule(s string) ([]Rule, error) {
	var rules []Rule
	for _, ent := range strings.Split(s, ";") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		fields := strings.Split(ent, ",")
		var r Rule
		kind := strings.TrimSpace(fields[0])
		found := false
		for k, name := range kindNames {
			if kind == name {
				r.Kind = Kind(k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faultio: unknown fault kind %q", kind)
		}
		for _, f := range fields[1:] {
			key, val, ok := strings.Cut(strings.TrimSpace(f), "=")
			if !ok {
				return nil, fmt.Errorf("faultio: want key=value, got %q", f)
			}
			var err error
			switch key {
			case "off":
				r.Off, err = strconv.ParseInt(val, 10, 64)
			case "len":
				r.Len, err = strconv.ParseInt(val, 10, 64)
			case "count":
				var c int64
				c, err = strconv.ParseInt(val, 10, 32)
				r.Count = int(c)
			case "prob":
				r.Prob, err = strconv.ParseFloat(val, 64)
			case "delay":
				r.Delay, err = time.ParseDuration(val)
			case "mask":
				var m uint64
				m, err = strconv.ParseUint(val, 0, 8)
				r.Mask = byte(m)
			default:
				return nil, fmt.Errorf("faultio: unknown schedule key %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("faultio: bad %s value %q: %w", key, val, err)
			}
		}
		if r.Off < 0 {
			return nil, fmt.Errorf("faultio: negative off %d in %q", r.Off, ent)
		}
		if r.Len < 0 {
			return nil, fmt.Errorf("faultio: negative len %d in %q", r.Len, ent)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultio: empty schedule %q", s)
	}
	return rules, nil
}

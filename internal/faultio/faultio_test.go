package faultio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func source() (*bytes.Reader, []byte) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	return bytes.NewReader(data), data
}

func TestCleanPassThrough(t *testing.T) {
	r, data := source()
	f := NewReaderAt(r, 1)
	got := make([]byte, 64)
	n, err := f.ReadAt(got, 32)
	if err != nil || n != 64 || !bytes.Equal(got, data[32:96]) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if st := f.Stats(); st.Reads != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestTransientCountAndRange(t *testing.T) {
	r, data := source()
	f := NewReaderAt(r, 1, Rule{Kind: TransientErr, Off: 100, Len: 10, Count: 2})
	buf := make([]byte, 8)

	// Outside the armed range: never fails.
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// Overlapping reads fail exactly Count times, then heal.
	for i := 0; i < 2; i++ {
		if _, err := f.ReadAt(buf, 96); !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d err = %v, want ErrInjected", i, err)
		}
	}
	if _, err := f.ReadAt(buf, 96); err != nil {
		t.Fatalf("read after count exhausted: %v", err)
	}
	if !bytes.Equal(buf, data[96:104]) {
		t.Fatal("healed read returned wrong bytes")
	}
	if st := f.Stats(); st.Injected[TransientErr] != 2 || st.Reads != 4 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestPermanentNeverHeals(t *testing.T) {
	r, _ := source()
	f := NewReaderAt(r, 1, Rule{Kind: PermanentErr, Off: 0})
	for i := 0; i < 5; i++ {
		if _, err := f.ReadAt(make([]byte, 4), int64(i)); !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d err = %v", i, err)
		}
	}
}

func TestShortRead(t *testing.T) {
	r, data := source()
	f := NewReaderAt(r, 1, Rule{Kind: ShortRead, Count: 1})
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if !errors.Is(err, ErrInjected) || n != 5 {
		t.Fatalf("short read = %d, %v", n, err)
	}
	if !bytes.Equal(buf[:5], data[:5]) {
		t.Fatal("short read bytes wrong")
	}
}

func TestBitFlipRange(t *testing.T) {
	r, data := source()
	f := NewReaderAt(r, 1, Rule{Kind: BitFlip, Off: 10, Len: 4, Mask: 0xFF})
	buf := make([]byte, 20)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		want := data[i]
		if i >= 10 && i < 14 {
			want ^= 0xFF
		}
		if buf[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, buf[i], want)
		}
	}
	// A read entirely outside the flip range is untouched.
	if _, err := f.ReadAt(buf[:4], 20); err != nil || !bytes.Equal(buf[:4], data[20:24]) {
		t.Fatalf("clean range read corrupted: %v", err)
	}
}

func TestLatencyAccumulatesAndContinues(t *testing.T) {
	r, _ := source()
	f := NewReaderAt(r, 1,
		Rule{Kind: Latency, Delay: 5 * time.Millisecond},
		Rule{Kind: TransientErr, Count: 1})
	start := time.Now()
	_, err := f.ReadAt(make([]byte, 4), 0)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("latency swallowed the transient rule: %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("latency rule did not sleep")
	}
}

func TestProbSeedDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		r, _ := source()
		f := NewReaderAt(r, seed, Rule{Kind: TransientErr, Prob: 0.5})
		outcomes := make([]bool, 50)
		for i := range outcomes {
			_, err := f.ReadAt(make([]byte, 4), 0)
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different schedule")
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 50-read schedules")
	}
}

func TestWriterTearsAtBudget(t *testing.T) {
	var out bytes.Buffer
	w := &Writer{W: &out, FailAfter: 10}
	if n, err := w.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("first write = %d, %v", n, err)
	}
	n, err := w.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjected) || n != 2 {
		t.Fatalf("torn write = %d, %v", n, err)
	}
	if out.String() != "12345678ab" {
		t.Fatalf("output %q", out.String())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after failure err = %v", err)
	}
}

func TestParseSchedule(t *testing.T) {
	rules, err := ParseSchedule("transient,count=2,prob=0.05; bitflip,off=16,len=64,mask=0x80 ;latency,delay=2ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Kind: TransientErr, Count: 2, Prob: 0.05},
		{Kind: BitFlip, Off: 16, Len: 64, Mask: 0x80},
		{Kind: Latency, Delay: 2 * time.Millisecond},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules", len(rules))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []struct {
		schedule string
		wantSub  string
	}{
		{"explode", "unknown fault kind"},
		{"bitflip;explode,off=3", "unknown fault kind"},
		{"transient,count", "want key=value"},
		{"transient,count=x", "bad count value"},
		{"transient,frequency=1", "unknown schedule key"},
		{"latency,delay=fast", "bad delay value"},
		{"bitflip,mask=512", "bad mask value"},
		{"bitflip,off=-1", "negative off"},
		{"permanent,len=-8", "negative len"},
		{"transient,off=-5,len=-5", "negative off"},
		{"", "empty schedule"},
		{";", "empty schedule"},
		{" ; ; ", "empty schedule"},
	}
	for _, tc := range cases {
		rules, err := ParseSchedule(tc.schedule)
		if err == nil {
			t.Errorf("ParseSchedule(%q) accepted: %+v", tc.schedule, rules)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseSchedule(%q) = %v, want mention of %q", tc.schedule, err, tc.wantSub)
		}
	}
}

func TestConcurrentReadAt(t *testing.T) {
	r, _ := source()
	f := NewReaderAt(r, 1,
		Rule{Kind: TransientErr, Count: 10, Prob: 0.3},
		Rule{Kind: BitFlip, Off: 50, Len: 10})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			buf := make([]byte, 16)
			for i := 0; i < 200; i++ {
				f.ReadAt(buf, int64(i%240))
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if st := f.Stats(); st.Reads != 800 {
		t.Fatalf("Reads = %d", st.Reads)
	}
}

var _ io.ReaderAt = (*ReaderAt)(nil)
var _ io.Writer = (*Writer)(nil)

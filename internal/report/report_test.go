package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Demo", "query", "ratio", "time")
	tbl.Row("Q1", 4.33, 307)
	tbl.Row("Q18", 3.56, 181.9)
	var buf bytes.Buffer
	tbl.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[3], "4.33") {
		t.Fatalf("row content: %q", lines[3])
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.Row(1, 2.5)
	var buf bytes.Buffer
	tbl.CSV(&buf)
	want := "a,b\n1,2.50\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("Fig", "x", "naive", "pfor")
	s.Point(0, 1.0, 2.0)
	s.Point(0.5, 0.3, 2.1)
	var buf bytes.Buffer
	s.Print(&buf)
	if !strings.Contains(buf.String(), "0.5") || !strings.Contains(buf.String(), "2.10") {
		t.Fatalf("series output: %q", buf.String())
	}
}

func TestSeriesArityPanics(t *testing.T) {
	s := NewSeries("f", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong arity")
		}
	}()
	s.Point(1, 2)
}

func TestBandwidth(t *testing.T) {
	if got := Bandwidth(2_000_000, 1); got != 2 {
		t.Fatalf("bandwidth %f, want 2", got)
	}
	if got := Bandwidth(100, 0); got != 0 {
		t.Fatal("zero duration guards")
	}
}

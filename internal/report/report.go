// Package report provides the table and data-series printers used by the
// benchmark harnesses to emit the paper's tables and figures in a uniform
// fixed-width format (plus CSV for plotting).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and prints them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; values are formatted with %v, floats with 2 decimals.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case float64:
		return fmt.Sprintf("%.2f", v)
	case float32:
		return fmt.Sprintf("%.2f", v)
	case string:
		return v
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Print writes the table to w.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "\n=== %s ===\n", t.Title)
	}
	var b strings.Builder
	for i, h := range t.headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	b.Reset()
	for i := range t.headers {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	for _, row := range t.rows {
		b.Reset()
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.headers, ","))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Series accumulates (x, y1..yk) points for a figure.
type Series struct {
	Title  string
	XLabel string
	Names  []string
	xs     []float64
	ys     [][]float64
}

// NewSeries creates a figure data set with the given y-series names.
func NewSeries(title, xlabel string, names ...string) *Series {
	return &Series{Title: title, XLabel: xlabel, Names: names}
}

// Point appends one x with its y values (one per series).
func (s *Series) Point(x float64, y ...float64) {
	if len(y) != len(s.Names) {
		panic(fmt.Sprintf("report: point has %d values, series has %d", len(y), len(s.Names)))
	}
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
}

// Print writes the series as an aligned table, one row per x.
func (s *Series) Print(w io.Writer) {
	t := NewTable(s.Title, append([]string{s.XLabel}, s.Names...)...)
	for i, x := range s.xs {
		cells := make([]any, 0, 1+len(s.Names))
		cells = append(cells, fmt.Sprintf("%.3g", x))
		for _, y := range s.ys[i] {
			cells = append(cells, y)
		}
		t.Row(cells...)
	}
	t.Print(w)
}

// Bandwidth formats a byte count over a duration in MB/s.
func Bandwidth(bytes int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds / 1e6
}

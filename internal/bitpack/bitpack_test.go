package bitpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomValues(rng *rand.Rand, n int, b uint) []uint32 {
	vals := make([]uint32, n)
	mask := maskFor(b)
	for i := range vals {
		vals[i] = rng.Uint32() & mask
	}
	return vals
}

func TestWordCount(t *testing.T) {
	cases := []struct {
		n    int
		b    uint
		want int
	}{
		{0, 5, 0},
		{1, 1, 1},
		{32, 1, 1},
		{33, 1, 2},
		{32, 32, 32},
		{128, 3, 12},
		{100, 7, 22}, // 700 bits -> 22 words
		{17, 0, 0},
	}
	for _, c := range cases {
		if got := WordCount(c.n, c.b); got != c.want {
			t.Errorf("WordCount(%d,%d) = %d, want %d", c.n, c.b, got, c.want)
		}
	}
}

func TestRoundTripAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for b := uint(0); b <= 32; b++ {
		for _, n := range []int{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 129, 1000} {
			src := randomValues(rng, n, b)
			dst := make([]uint32, WordCount(n, b))
			words := Pack(dst, src, b)
			if words != WordCount(n, b) {
				t.Fatalf("b=%d n=%d: Pack wrote %d words, want %d", b, n, words, WordCount(n, b))
			}
			out := make([]uint32, n)
			Unpack(out, dst, b)
			for i := range src {
				if out[i] != src[i] {
					t.Fatalf("b=%d n=%d: round-trip mismatch at %d: got %d want %d", b, n, i, out[i], src[i])
				}
			}
		}
	}
}

func TestUnrolledMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for b := uint(0); b <= 32; b++ {
		n := 256 + rng.Intn(64)
		src := randomValues(rng, n, b)
		words := WordCount(n, b)

		fast := make([]uint32, words)
		ref := make([]uint32, words)
		Pack(fast, src, b)
		PackGeneric(ref, src, b)
		for i := range fast {
			if fast[i] != ref[i] {
				t.Fatalf("b=%d: packed word %d differs: fast=%#x ref=%#x", b, i, fast[i], ref[i])
			}
		}

		outFast := make([]uint32, n)
		outRef := make([]uint32, n)
		Unpack(outFast, fast, b)
		UnpackGeneric(outRef, ref, b)
		for i := range outFast {
			if outFast[i] != outRef[i] {
				t.Fatalf("b=%d: unpacked value %d differs: fast=%d ref=%d", b, i, outFast[i], outRef[i])
			}
		}
	}
}

func TestPackTruncatesHighBits(t *testing.T) {
	src := []uint32{0xFFFFFFFF, 0x12345678, 0x80000001}
	for _, b := range []uint{1, 4, 7, 13} {
		dst := make([]uint32, WordCount(len(src), b))
		Pack(dst, src, b)
		out := make([]uint32, len(src))
		Unpack(out, dst, b)
		mask := maskFor(b)
		for i := range src {
			if out[i] != src[i]&mask {
				t.Errorf("b=%d: got %#x want %#x", b, out[i], src[i]&mask)
			}
		}
	}
}

func TestPackDoesNotTouchWordsBeyondCount(t *testing.T) {
	// Ensure Pack never writes past WordCount even for partial tails.
	for b := uint(1); b <= 32; b++ {
		n := 37 // deliberately not a multiple of 32
		src := randomValues(rand.New(rand.NewSource(int64(b))), n, b)
		words := WordCount(n, b)
		dst := make([]uint32, words+4)
		for i := range dst {
			dst[i] = 0xDEADBEEF
		}
		Pack(dst, src, b)
		for i := words; i < len(dst); i++ {
			if dst[i] != 0xDEADBEEF {
				t.Fatalf("b=%d: Pack wrote past word count at word %d", b, i)
			}
		}
	}
}

func TestZeroWidth(t *testing.T) {
	src := []uint32{5, 6, 7} // all truncated away
	dst := make([]uint32, 1)
	if n := Pack(dst, src, 0); n != 0 {
		t.Fatalf("Pack width 0 wrote %d words", n)
	}
	out := []uint32{9, 9, 9}
	Unpack(out, dst, 0)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("Unpack width 0: out[%d]=%d, want 0", i, v)
		}
	}
}

func TestOutOfRangeWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width 33")
		}
	}()
	WordCount(10, 33)
}

func TestDstTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short dst")
		}
	}()
	Pack(make([]uint32, 1), make([]uint32, 64), 8)
}

// TestQuickRoundTrip is the property-based check: any slice of values, any
// width, round-trips through Pack/Unpack modulo the width mask.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint32, widthSeed uint8) bool {
		b := uint(widthSeed % 33)
		mask := maskFor(b)
		dst := make([]uint32, WordCount(len(raw), b))
		Pack(dst, raw, b)
		out := make([]uint32, len(raw))
		Unpack(out, dst, b)
		for i := range raw {
			if out[i] != raw[i]&mask {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnpack(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n = 4096
	for _, width := range []uint{1, 4, 8, 13, 24} {
		src := randomValues(rng, n, width)
		packed := make([]uint32, WordCount(n, width))
		Pack(packed, src, width)
		out := make([]uint32, n)
		b.Run(benchName("b", width), func(b *testing.B) {
			b.SetBytes(n * 4)
			for i := 0; i < b.N; i++ {
				Unpack(out, packed, width)
			}
		})
	}
}

func BenchmarkPack(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const n = 4096
	for _, width := range []uint{1, 4, 8, 13, 24} {
		src := randomValues(rng, n, width)
		packed := make([]uint32, WordCount(n, width))
		b.Run(benchName("b", width), func(b *testing.B) {
			b.SetBytes(n * 4)
			for i := 0; i < b.N; i++ {
				Pack(packed, src, width)
			}
		})
	}
}

func benchName(prefix string, width uint) string {
	digits := ""
	if width == 0 {
		digits = "0"
	}
	for width > 0 {
		digits = string(rune('0'+width%10)) + digits
		width /= 10
	}
	return prefix + digits
}

// BenchmarkUnpackGenericAblation quantifies what the generated unrolled
// kernels buy over the straightforward shift-based loop — the reason the
// paper (and Lucene, and FastPFOR) ship per-width unrolled code.
func BenchmarkUnpackGenericAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n = 4096
	for _, width := range []uint{4, 8, 13} {
		src := randomValues(rng, n, width)
		packed := make([]uint32, WordCount(n, width))
		Pack(packed, src, width)
		out := make([]uint32, n)
		b.Run("unrolled/"+benchName("b", width), func(b *testing.B) {
			b.SetBytes(n * 4)
			for i := 0; i < b.N; i++ {
				Unpack(out, packed, width)
			}
		})
		b.Run("generic/"+benchName("b", width), func(b *testing.B) {
			b.SetBytes(n * 4)
			for i := 0; i < b.N; i++ {
				UnpackGeneric(out, packed, width)
			}
		})
	}
}

// selectOracle computes the expected match masks by unpacking with the
// reference path and filtering.
func selectOracle(src []uint32, n int, b uint, lo, span uint32) []uint32 {
	vals := make([]uint32, n)
	UnpackGeneric(vals, src, b)
	masks := make([]uint32, (n+31)/32)
	for i, v := range vals {
		if v-lo <= span {
			masks[i/32] |= 1 << (uint(i) % 32)
		}
	}
	return masks
}

// TestSelectMaskAllWidths cross-checks every generated select kernel
// against the unpack-then-filter oracle over random codes and ranges,
// including the empty and all-matching extremes, plus the scalar tail path
// and per-match CodeAt extraction.
func TestSelectMaskAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for b := uint(0); b <= 32; b++ {
		for _, n := range []int{0, 1, 7, 31, 32, 33, 96, 127, 128, 129} {
			src := randomValues(rng, n, b)
			packed := make([]uint32, WordCount(n, b))
			Pack(packed, src, b)
			mask := maskFor(b)
			ranges := [][2]uint32{
				{0, 0},
				{0, mask},            // everything matches
				{mask, 0},            // only the top code
				{1, ^uint32(0) - 1},  // wrap-around span: excludes only code 0
				{mask / 2, mask / 4}, // middle window
				{rng.Uint32() & mask, rng.Uint32() & mask},
			}
			for _, r := range ranges {
				lo, span := r[0], r[1]
				want := selectOracle(packed, n, b, lo, span)
				groups := n / 32
				got := make([]uint32, (n+31)/32)
				SelectMask(got[:groups], packed, b, lo, span)
				if tail := n % 32; tail > 0 {
					got[groups] = SelectMaskTail(packed[groups*int(b):], tail, b, lo, span)
				}
				for g := range want {
					if got[g] != want[g] {
						t.Fatalf("b=%d n=%d lo=%d span=%d: mask[%d] = %08x, want %08x",
							b, n, lo, span, g, got[g], want[g])
					}
				}
			}
			if b > 0 {
				for i, v := range src {
					if got := CodeAt(packed, i, b); got != v {
						t.Fatalf("b=%d n=%d: CodeAt(%d) = %d, want %d", b, n, i, got, v)
					}
				}
			}
		}
	}
}

// TestRefineMaskAllWidths cross-checks every generated refine kernel: the
// result must equal the incoming mask AND the fresh SelectMask of the same
// range, for random incoming masks plus the all-set, all-clear and
// alternating extremes (all-clear pins the zero-group skip path).
func TestRefineMaskAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for b := uint(0); b <= 32; b++ {
		for _, n := range []int{0, 1, 31, 32, 33, 127, 128, 129} {
			src := randomValues(rng, n, b)
			packed := make([]uint32, WordCount(n, b))
			Pack(packed, src, b)
			mask := maskFor(b)
			ranges := [][2]uint32{
				{0, 0},
				{0, mask},
				{mask, 0},
				{mask / 2, mask / 4},
				{rng.Uint32() & mask, rng.Uint32() & mask},
			}
			words := (n + 31) / 32
			groups := n / 32
			fresh := make([]uint32, words)
			prior := make([]uint32, words)
			got := make([]uint32, words)
			for _, r := range ranges {
				lo, span := r[0], r[1]
				SelectMask(fresh[:groups], packed, b, lo, span)
				if tail := n % 32; tail > 0 {
					fresh[groups] = SelectMaskTail(packed[groups*int(b):], tail, b, lo, span)
				}
				for _, fill := range []uint32{0, ^uint32(0), 0xAAAAAAAA, rng.Uint32()} {
					for i := range prior {
						prior[i] = fill
					}
					if tail := n % 32; tail > 0 {
						prior[groups] &= 1<<uint(tail) - 1
					}
					copy(got, prior)
					RefineMask(got[:groups], packed, b, lo, span)
					if tail := n % 32; tail > 0 {
						got[groups] = RefineMaskTail(packed[groups*int(b):], tail, b, lo, span, got[groups])
					}
					for g := range got {
						if want := prior[g] & fresh[g]; got[g] != want {
							t.Fatalf("b=%d n=%d lo=%d span=%d fill=%08x: refined[%d] = %08x, want %08x",
								b, n, lo, span, fill, g, got[g], want)
						}
					}
				}
			}
		}
	}
}

// TestPanicContracts pins the package's documented panic surface: the
// internal kernels trust their callers, and these are the misuses they
// refuse. The public zukowski layer proves separately (crafted-frame tests)
// that none of these panics is reachable through its entry points.
func TestPanicContracts(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("WordCount width", func() { WordCount(1, 33) })
	expectPanic("Pack width", func() { Pack(make([]uint32, 8), make([]uint32, 4), 33) })
	expectPanic("Pack dst too small", func() { Pack(make([]uint32, 0), make([]uint32, 4), 8) })
	expectPanic("Unpack width", func() { Unpack(make([]uint32, 4), make([]uint32, 8), 33) })
	expectPanic("Unpack src too small", func() { Unpack(make([]uint32, 64), make([]uint32, 1), 8) })
	expectPanic("PackGeneric width", func() { PackGeneric(make([]uint32, 8), make([]uint32, 4), 33) })
	expectPanic("UnpackGeneric width", func() { UnpackGeneric(make([]uint32, 4), make([]uint32, 8), 33) })
	expectPanic("SelectMask width", func() { SelectMask(make([]uint32, 1), make([]uint32, 64), 33, 0, 0) })
	expectPanic("SelectMask src too small", func() { SelectMask(make([]uint32, 4), make([]uint32, 1), 8, 0, 0) })
	expectPanic("SelectMaskTail width", func() { SelectMaskTail(make([]uint32, 64), 4, 33, 0, 0) })
	expectPanic("SelectMaskTail group too long", func() { SelectMaskTail(make([]uint32, 64), 33, 8, 0, 0) })
	expectPanic("RefineMask width", func() { RefineMask(make([]uint32, 1), make([]uint32, 64), 33, 0, 0) })
	expectPanic("RefineMask src too small", func() { RefineMask(make([]uint32, 4), make([]uint32, 1), 8, 0, 0) })
	expectPanic("RefineMaskTail width", func() { RefineMaskTail(make([]uint32, 64), 4, 33, 0, 0, 1) })
}

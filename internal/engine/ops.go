package engine

import (
	"repro/internal/columnbm"
)

// --- Scan -------------------------------------------------------------------

// Scan adapts a ColumnBM scanner to the operator interface.
type Scan struct {
	sc  *columnbm.Scanner
	out *Batch
}

// NewScan wraps a scanner; the batch arity equals the scanned column count.
func NewScan(sc *columnbm.Scanner) *Scan {
	return &Scan{sc: sc, out: NewBatch(sc.NumCols(), sc.VectorSize())}
}

// Next pulls one vector from storage.
func (s *Scan) Next() *Batch {
	n := s.sc.Next(s.out.Cols)
	if n == 0 {
		return nil
	}
	s.out.N = n
	return s.out
}

// --- Select -----------------------------------------------------------------

// Filter narrows a candidate selection vector against one batch.
type Filter func(b *Batch, cand, out []int32) []int32

// Select applies a conjunction of filters and compacts passing rows.
type Select struct {
	child   Operator
	filters []Filter
	out     *Batch
	sel     [][]int32
}

// NewSelect builds a selection over child with the given conjunctive
// filters. arity is the child's column count.
func NewSelect(child Operator, arity int, filters ...Filter) *Select {
	return &Select{
		child:   child,
		filters: filters,
		out:     NewBatch(arity, BatchSize),
		sel:     [][]int32{make([]int32, BatchSize), make([]int32, BatchSize)},
	}
}

// Next returns the next non-empty filtered batch.
func (s *Select) Next() *Batch {
	for {
		in := s.child.Next()
		if in == nil {
			return nil
		}
		cand := SelTrue(in.N, s.sel[0][:0])
		for fi, f := range s.filters {
			cand = f(in, cand, s.sel[(fi+1)%2][:BatchSize])
			if len(cand) == 0 {
				break
			}
		}
		if len(cand) == 0 {
			continue
		}
		// Compact the passing rows into the output batch.
		checkArity(len(in.Cols), len(s.out.Cols))
		for c := range in.Cols {
			src, dst := in.Cols[c], s.out.Cols[c]
			for j, i := range cand {
				dst[j] = src[i]
			}
		}
		s.out.N = len(cand)
		return s.out
	}
}

// FilterGE filters column col >= k.
func FilterGE(col int, k int64) Filter {
	return func(b *Batch, cand, out []int32) []int32 { return SelGE(b.Cols[col], k, cand, out) }
}

// FilterLT filters column col < k.
func FilterLT(col int, k int64) Filter {
	return func(b *Batch, cand, out []int32) []int32 { return SelLT(b.Cols[col], k, cand, out) }
}

// FilterLE filters column col <= k.
func FilterLE(col int, k int64) Filter {
	return func(b *Batch, cand, out []int32) []int32 { return SelLE(b.Cols[col], k, cand, out) }
}

// FilterGT filters column col > k.
func FilterGT(col int, k int64) Filter {
	return func(b *Batch, cand, out []int32) []int32 { return SelGT(b.Cols[col], k, cand, out) }
}

// FilterEq filters column col == k.
func FilterEq(col int, k int64) Filter {
	return func(b *Batch, cand, out []int32) []int32 { return SelEq(b.Cols[col], k, cand, out) }
}

// FilterNe filters column col != k.
func FilterNe(col int, k int64) Filter {
	return func(b *Batch, cand, out []int32) []int32 { return SelNe(b.Cols[col], k, cand, out) }
}

// FilterColLT filters column a < column b.
func FilterColLT(a, b int) Filter {
	return func(batch *Batch, cand, out []int32) []int32 {
		return SelColLT(batch.Cols[a], batch.Cols[b], cand, out)
	}
}

// FilterIn filters column col ∈ set.
func FilterIn(col int, set map[int64]bool) Filter {
	return func(b *Batch, cand, out []int32) []int32 { return SelIn(b.Cols[col], set, cand, out) }
}

// --- Project ----------------------------------------------------------------

// Projection computes one output column from an input batch.
type Projection func(dst []int64, b *Batch)

// Project emits a batch whose columns are computed projections of the
// child's columns.
type Project struct {
	child Operator
	projs []Projection
	out   *Batch
}

// NewProject builds a projection operator.
func NewProject(child Operator, projs ...Projection) *Project {
	return &Project{child: child, projs: projs, out: NewBatch(len(projs), BatchSize)}
}

// Next computes the projections for the next batch.
func (p *Project) Next() *Batch {
	in := p.child.Next()
	if in == nil {
		return nil
	}
	for i, proj := range p.projs {
		proj(p.out.Cols[i][:in.N], in)
	}
	p.out.N = in.N
	return p.out
}

// Col passes an input column through.
func Col(c int) Projection {
	return func(dst []int64, b *Batch) { copy(dst, b.Cols[c][:len(dst)]) }
}

// ConstProj emits a constant column.
func ConstProj(k int64) Projection {
	return func(dst []int64, b *Batch) {
		for i := range dst {
			dst[i] = k
		}
	}
}

// Revenue computes extendedprice*(100-discount) on scaled decimals — the
// ubiquitous TPC-H expression (result scale: 1e4).
func Revenue(priceCol, discCol int) Projection {
	return func(dst []int64, b *Batch) {
		price, disc := b.Cols[priceCol], b.Cols[discCol]
		for i := range dst {
			dst[i] = price[i] * (100 - disc[i])
		}
	}
}

// BinOp computes an elementwise function of two columns.
func BinOp(a, b int, f func(x, y int64) int64) Projection {
	return func(dst []int64, batch *Batch) {
		xa, xb := batch.Cols[a], batch.Cols[b]
		for i := range dst {
			dst[i] = f(xa[i], xb[i])
		}
	}
}

// --- Limit / Materialize ------------------------------------------------

// Materialize drains op into full columns. Pass arity < 0 to infer the
// arity from the first batch (an exhausted input then yields nil).
func Materialize(op Operator, arity int) [][]int64 {
	var out [][]int64
	if arity >= 0 {
		out = make([][]int64, arity)
	}
	for {
		b := op.Next()
		if b == nil {
			return out
		}
		if out == nil {
			out = make([][]int64, len(b.Cols))
		}
		checkArity(len(b.Cols), len(out))
		for c := range b.Cols {
			out[c] = append(out[c], b.Cols[c][:b.N]...)
		}
	}
}

// SliceSource replays materialized columns as an operator (for tests and
// join build sides).
type SliceSource struct {
	cols [][]int64
	pos  int
	out  *Batch
}

// NewSliceSource wraps columns in an operator.
func NewSliceSource(cols [][]int64) *SliceSource {
	return &SliceSource{cols: cols, out: NewBatch(len(cols), BatchSize)}
}

// Next returns the next vector of the underlying slices.
func (s *SliceSource) Next() *Batch {
	n := 0
	if len(s.cols) > 0 {
		n = min(BatchSize, len(s.cols[0])-s.pos)
	}
	if n <= 0 {
		return nil
	}
	for c := range s.cols {
		copy(s.out.Cols[c][:n], s.cols[c][s.pos:s.pos+n])
	}
	s.pos += n
	s.out.N = n
	return s.out
}

package engine

import (
	"math/rand"
	"slices"
	"testing"
)

func src(cols ...[]int64) *SliceSource { return NewSliceSource(cols) }

func seq(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(i)
	}
	return v
}

func TestSliceSourceRoundTrip(t *testing.T) {
	a := seq(2500) // crosses batch boundaries
	out := Materialize(src(a), 1)
	if !slices.Equal(out[0], a) {
		t.Fatal("slice source mangled data")
	}
}

func TestSelectCompacts(t *testing.T) {
	a := seq(3000)
	op := NewSelect(src(a), 1, FilterGE(0, 1000), FilterLT(0, 2000))
	out := Materialize(op, 1)
	if len(out[0]) != 1000 {
		t.Fatalf("got %d rows, want 1000", len(out[0]))
	}
	for i, v := range out[0] {
		if v != int64(1000+i) {
			t.Fatalf("row %d = %d", i, v)
		}
	}
}

func TestSelectEmptyResult(t *testing.T) {
	op := NewSelect(src(seq(100)), 1, FilterGT(0, 1000))
	if b := op.Next(); b != nil {
		t.Fatal("expected empty result")
	}
}

func TestSelectAllFilters(t *testing.T) {
	n := 5000
	rng := rand.New(rand.NewSource(1))
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = rng.Int63n(100)
		b[i] = rng.Int63n(100)
	}
	set := map[int64]bool{3: true, 7: true, 11: true}
	op := NewSelect(src(a, b), 2,
		FilterNe(0, 50), FilterLE(0, 90), FilterEq(1, b[0]), FilterIn(0, set), FilterColLT(0, 1))
	got := Materialize(op, 2)
	// Reference scalar implementation.
	var want []int64
	for i := range a {
		if a[i] != 50 && a[i] <= 90 && b[i] == b[0] && set[a[i]] && a[i] < b[i] {
			want = append(want, a[i])
		}
	}
	if !slices.Equal(got[0], want) {
		t.Fatalf("select mismatch: got %d rows want %d", len(got[0]), len(want))
	}
}

func TestProjectRevenue(t *testing.T) {
	price := []int64{10000, 20000}
	disc := []int64{5, 10} // percent
	op := NewProject(src(price, disc), Revenue(0, 1), Col(0), ConstProj(7))
	out := Materialize(op, 3)
	if out[0][0] != 10000*95 || out[0][1] != 20000*90 {
		t.Fatalf("revenue: %v", out[0])
	}
	if out[1][0] != 10000 || out[2][1] != 7 {
		t.Fatal("Col/Const projections")
	}
}

func TestHashAggSumCount(t *testing.T) {
	key := []int64{1, 2, 1, 3, 2, 1}
	val := []int64{10, 20, 30, 40, 50, 60}
	op := NewHashAgg(src(key, val), []int{0},
		[]AggSpec{{AggSum, 1}, {AggCount, 0}, {AggMin, 1}, {AggMax, 1}}, true)
	out := Materialize(op, 5)
	if !slices.Equal(out[0], []int64{1, 2, 3}) {
		t.Fatalf("keys: %v", out[0])
	}
	if !slices.Equal(out[1], []int64{100, 70, 40}) {
		t.Fatalf("sums: %v", out[1])
	}
	if !slices.Equal(out[2], []int64{3, 2, 1}) {
		t.Fatalf("counts: %v", out[2])
	}
	if !slices.Equal(out[3], []int64{10, 20, 40}) {
		t.Fatalf("mins: %v", out[3])
	}
	if !slices.Equal(out[4], []int64{60, 50, 40}) {
		t.Fatalf("maxs: %v", out[4])
	}
}

func TestHashAggMultiKeyMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 20_000
	k1 := make([]int64, n)
	k2 := make([]int64, n)
	v := make([]int64, n)
	for i := range k1 {
		k1[i] = rng.Int63n(5)
		k2[i] = rng.Int63n(7)
		v[i] = rng.Int63n(1000)
	}
	out := Materialize(NewHashAgg(src(k1, k2, v), []int{0, 1}, []AggSpec{{AggSum, 2}}, true), 3)

	ref := map[[2]int64]int64{}
	for i := range k1 {
		ref[[2]int64{k1[i], k2[i]}] += v[i]
	}
	if len(out[0]) != len(ref) {
		t.Fatalf("%d groups, want %d", len(out[0]), len(ref))
	}
	for i := range out[0] {
		if got := out[2][i]; got != ref[[2]int64{out[0][i], out[1][i]}] {
			t.Fatalf("group (%d,%d): sum %d", out[0][i], out[1][i], got)
		}
	}
	// Sorted output: keys ascending lexicographically.
	for i := 1; i < len(out[0]); i++ {
		if out[0][i] < out[0][i-1] || (out[0][i] == out[0][i-1] && out[1][i] <= out[1][i-1]) {
			t.Fatal("output not sorted")
		}
	}
}

func TestOrderedAggMatchesHashAgg(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 10_000
	key := make([]int64, n)
	val := make([]int64, n)
	k := int64(0)
	for i := range key {
		if rng.Intn(4) == 0 {
			k++
		}
		key[i] = k
		val[i] = rng.Int63n(100)
	}
	ord := Materialize(NewOrderedAgg(src(key, val), 0, []AggSpec{{AggSum, 1}, {AggCount, 0}}), 3)
	hsh := Materialize(NewHashAgg(src(key, val), []int{0}, []AggSpec{{AggSum, 1}, {AggCount, 0}}, true), 3)
	for c := 0; c < 3; c++ {
		if !slices.Equal(ord[c], hsh[c]) {
			t.Fatalf("col %d differs", c)
		}
	}
}

func TestOrderedAggEmpty(t *testing.T) {
	op := NewOrderedAgg(src([]int64{}), 0, []AggSpec{{AggCount, 0}})
	if op.Next() != nil {
		t.Fatal("empty input")
	}
}

func TestTopNDescAsc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 5000
	v := make([]int64, n)
	for i := range v {
		v[i] = rng.Int63n(1_000_000)
	}
	id := seq(n)

	top := Materialize(NewTopN(src(v, id), 0, 10, true), 2)
	sorted := slices.Clone(v)
	slices.Sort(sorted)
	for i := 0; i < 10; i++ {
		if top[0][i] != sorted[n-1-i] {
			t.Fatalf("desc top %d: %d want %d", i, top[0][i], sorted[n-1-i])
		}
	}

	bot := Materialize(NewTopN(src(v, id), 0, 10, false), 2)
	for i := 0; i < 10; i++ {
		if bot[0][i] != sorted[i] {
			t.Fatalf("asc top %d: %d want %d", i, bot[0][i], sorted[i])
		}
	}
}

func TestTopNFewerRowsThanN(t *testing.T) {
	out := Materialize(NewTopN(src([]int64{3, 1, 2}), 0, 10, true), 1)
	if !slices.Equal(out[0], []int64{3, 2, 1}) {
		t.Fatalf("got %v", out[0])
	}
}

func TestHashJoinInner(t *testing.T) {
	// build: (key, name), probe: (fk, val)
	bk := []int64{1, 2, 3}
	bn := []int64{100, 200, 300}
	pk := []int64{2, 9, 1, 2}
	pv := []int64{20, 90, 10, 21}
	j := NewHashJoin(src(bk, bn), src(pk, pv), 0, 0, []int{1}, []int{1})
	out := Materialize(j, 2)
	// Expect rows for fk 2, 1, 2 (9 unmatched): vals (20,200),(10,100),(21,200).
	if !slices.Equal(out[0], []int64{20, 10, 21}) || !slices.Equal(out[1], []int64{200, 100, 200}) {
		t.Fatalf("join result: %v %v", out[0], out[1])
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	bk := []int64{5, 5}
	bv := []int64{1, 2}
	pk := []int64{5}
	pv := []int64{50}
	out := Materialize(NewHashJoin(src(bk, bv), src(pk, pv), 0, 0, []int{1}, []int{1}), 2)
	if len(out[0]) != 2 {
		t.Fatalf("1-to-many: %d rows", len(out[0]))
	}
}

func TestHashJoinMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nb, np := 1000, 20_000
	bk, bv := make([]int64, nb), make([]int64, nb)
	for i := range bk {
		bk[i] = int64(i * 2) // even keys only
		bv[i] = rng.Int63n(1000)
	}
	pk, pv := make([]int64, np), make([]int64, np)
	for i := range pk {
		pk[i] = rng.Int63n(int64(nb * 2))
		pv[i] = rng.Int63n(1000)
	}
	out := Materialize(NewHashJoin(src(bk, bv), src(pk, pv), 0, 0, []int{1}, []int{1}), 2)
	matches := 0
	for _, k := range pk {
		if k%2 == 0 && k < int64(nb*2) {
			matches++
		}
	}
	if len(out[0]) != matches {
		t.Fatalf("join rows %d, want %d", len(out[0]), matches)
	}
}

func TestMergeJoinOneToMany(t *testing.T) {
	// left unique sorted; right sorted with repeats.
	lk := []int64{1, 3, 5, 7}
	lv := []int64{10, 30, 50, 70}
	rk := []int64{1, 1, 2, 3, 5, 5, 5, 8}
	rv := []int64{100, 101, 102, 103, 104, 105, 106, 107}
	out := Materialize(NewMergeJoin(src(lk, lv), src(rk, rv), 0, 0, []int{1}, []int{1}), 2)
	wantL := []int64{10, 10, 30, 50, 50, 50}
	wantR := []int64{100, 101, 103, 104, 105, 106}
	if !slices.Equal(out[0], wantL) || !slices.Equal(out[1], wantR) {
		t.Fatalf("merge join: %v %v", out[0], out[1])
	}
}

func TestMergeJoinLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nl := 5000
	lk := make([]int64, nl)
	for i := range lk {
		lk[i] = int64(i * 3)
	}
	nr := 50_000
	rk := make([]int64, nr)
	for i := range rk {
		rk[i] = rng.Int63n(int64(nl * 3))
	}
	slices.Sort(rk)
	out := Materialize(NewMergeJoin(src(lk), src(rk), 0, 0, []int{0}, []int{0}), 2)
	want := 0
	for _, k := range rk {
		if k%3 == 0 {
			want++
		}
	}
	if len(out[0]) != want {
		t.Fatalf("rows %d, want %d", len(out[0]), want)
	}
	for i := range out[0] {
		if out[0][i] != out[1][i] {
			t.Fatal("joined keys differ")
		}
	}
}

func TestSortOp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 7000
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = rng.Int63n(1000)
		b[i] = int64(i)
	}
	out := Materialize(NewSortOp(src(a, b), 0), 2)
	for i := 1; i < n; i++ {
		if out[0][i] < out[0][i-1] {
			t.Fatal("not sorted")
		}
	}
	// Payload stays attached to its key.
	for i := 0; i < n; i++ {
		if a[out[1][i]] != out[0][i] {
			t.Fatal("payload detached")
		}
	}
}

func TestSemiJoinSet(t *testing.T) {
	set := SemiJoinSet(src([]int64{1, 2, 2, 9}), 0)
	if len(set) != 3 || !set[9] || set[5] {
		t.Fatalf("set: %v", set)
	}
}

// Package engine is a vectorized (MonetDB/X100-style) query engine: a
// Volcano operator pipeline whose Next() yields not one tuple but a vector
// of ~1000 tuples, so that primitive functions are tight loops over arrays
// (Section 2.3). All values are int64 at this layer — strings arrive
// dictionary-encoded, decimals scaled, dates as day numbers — matching the
// enumerated-storage convention the compression layer relies on.
package engine

import "fmt"

// BatchSize is the default vector length.
const BatchSize = 1024

// Batch is one vector of tuples: parallel columns of equal length N.
// Batches returned by Next are owned by the producing operator and are
// valid only until the next call to Next.
type Batch struct {
	Cols [][]int64
	N    int
}

// NewBatch allocates a batch with the given arity and capacity.
func NewBatch(arity, capacity int) *Batch {
	b := &Batch{Cols: make([][]int64, arity)}
	for i := range b.Cols {
		b.Cols[i] = make([]int64, capacity)
	}
	return b
}

// Operator is the vectorized Volcano interface.
type Operator interface {
	// Next returns the next batch, or nil when the input is exhausted.
	Next() *Batch
}

// --- selection primitives --------------------------------------------------

// The selection primitives follow the predicated style of Section 3.1: the
// candidate row index is always written and the output cursor advances by
// the boolean outcome, so the loop carries no data-dependent branch.

// SelTrue fills sel with all row indices [0,n).
func SelTrue(n int, sel []int32) []int32 {
	sel = sel[:0]
	for i := 0; i < n; i++ {
		sel = append(sel, int32(i))
	}
	return sel
}

// SelGE keeps candidates where col[i] >= k.
func SelGE(col []int64, k int64, cand []int32, out []int32) []int32 {
	j := 0
	for _, i := range cand {
		out[j] = i
		if col[i] >= k {
			j++
		}
	}
	return out[:j]
}

// SelLT keeps candidates where col[i] < k.
func SelLT(col []int64, k int64, cand []int32, out []int32) []int32 {
	j := 0
	for _, i := range cand {
		out[j] = i
		if col[i] < k {
			j++
		}
	}
	return out[:j]
}

// SelLE keeps candidates where col[i] <= k.
func SelLE(col []int64, k int64, cand []int32, out []int32) []int32 {
	j := 0
	for _, i := range cand {
		out[j] = i
		if col[i] <= k {
			j++
		}
	}
	return out[:j]
}

// SelGT keeps candidates where col[i] > k.
func SelGT(col []int64, k int64, cand []int32, out []int32) []int32 {
	j := 0
	for _, i := range cand {
		out[j] = i
		if col[i] > k {
			j++
		}
	}
	return out[:j]
}

// SelEq keeps candidates where col[i] == k.
func SelEq(col []int64, k int64, cand []int32, out []int32) []int32 {
	j := 0
	for _, i := range cand {
		out[j] = i
		if col[i] == k {
			j++
		}
	}
	return out[:j]
}

// SelNe keeps candidates where col[i] != k.
func SelNe(col []int64, k int64, cand []int32, out []int32) []int32 {
	j := 0
	for _, i := range cand {
		out[j] = i
		if col[i] != k {
			j++
		}
	}
	return out[:j]
}

// SelColLT keeps candidates where a[i] < b[i].
func SelColLT(a, b []int64, cand []int32, out []int32) []int32 {
	j := 0
	for _, i := range cand {
		out[j] = i
		if a[i] < b[i] {
			j++
		}
	}
	return out[:j]
}

// SelIn keeps candidates where col[i] is in set.
func SelIn(col []int64, set map[int64]bool, cand []int32, out []int32) []int32 {
	j := 0
	for _, i := range cand {
		out[j] = i
		if set[col[i]] {
			j++
		}
	}
	return out[:j]
}

// --- map (projection) primitives -------------------------------------------

// MapAddConst writes a[i]+k.
func MapAddConst(dst, a []int64, k int64, n int) {
	for i := 0; i < n; i++ {
		dst[i] = a[i] + k
	}
}

// MapMul writes a[i]*b[i].
func MapMul(dst, a, b []int64, n int) {
	for i := 0; i < n; i++ {
		dst[i] = a[i] * b[i]
	}
}

// MapSubConstRev writes k-a[i] (e.g. 100-discount for scaled decimals).
func MapSubConstRev(dst, a []int64, k int64, n int) {
	for i := 0; i < n; i++ {
		dst[i] = k - a[i]
	}
}

// MapMulConst writes a[i]*k.
func MapMulConst(dst, a []int64, k int64, n int) {
	for i := 0; i < n; i++ {
		dst[i] = a[i] * k
	}
}

// --- error helper -----------------------------------------------------------

func checkArity(got, want int) {
	if got != want {
		panic(fmt.Sprintf("engine: arity %d, want %d", got, want))
	}
}

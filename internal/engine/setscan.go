package engine

import (
	"fmt"

	"repro/zukowski"
)

// SetScan adapts a compressed-domain ColumnSet query to the operator
// interface. The predicate expression is evaluated below decompression —
// zone maps prune whole blocks, RefineMask/UnionMask run on compressed
// words — and only surviving rows of the requested columns are
// materialized. The filtered result then replays as BatchSize batches in
// row order, so downstream operators (HashAgg's first-seen group order,
// TopN's tie handling, HashJoin's build order) behave exactly as they
// would over an unfiltered Scan + Select pipeline.
type SetScan struct {
	src *SliceSource
}

// NewSetScan runs expr over cs once, materializing the named column
// indexes at the surviving rows, and returns an operator replaying the
// result. The scan is eager: query errors surface here as a panic (the
// operator interface has no error path), which suits the in-memory
// ColumnSets the benchmark harness builds.
func NewSetScan(cs *zukowski.ColumnSet[int64], expr zukowski.Expr[int64], cols ...int) *SetScan {
	_, vals, err := cs.Project(expr, cols...)
	if err != nil {
		panic(fmt.Sprintf("engine: SetScan: %v", err))
	}
	return &SetScan{src: NewSliceSource(vals)}
}

// Next returns the next batch, nil at end of stream.
func (s *SetScan) Next() *Batch { return s.src.Next() }

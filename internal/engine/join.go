package engine

import "sort"

// HashJoin is an inner equi-join on single int64 keys. The build side is
// drained and hashed on first Next; the probe side streams. Output columns
// are the probe's payload columns followed by the build's payload columns.
type HashJoin struct {
	build     Operator
	probe     Operator
	buildKey  int
	probeKey  int
	buildPay  []int
	probePay  []int
	ht        map[int64][]int32 // key -> build row ids
	buildCols [][]int64
	out       *Batch
	built     bool

	// pending probe state (a probe batch can overflow the output batch)
	pb      *Batch
	pbPos   int
	pbMatch []int32 // remaining build matches for current probe row
}

// NewHashJoin builds an inner hash join.
func NewHashJoin(build, probe Operator, buildKey, probeKey int, buildPay, probePay []int) *HashJoin {
	return &HashJoin{
		build: build, probe: probe,
		buildKey: buildKey, probeKey: probeKey,
		buildPay: buildPay, probePay: probePay,
		out: NewBatch(len(probePay)+len(buildPay), BatchSize),
	}
}

// Next emits joined vectors.
func (j *HashJoin) Next() *Batch {
	if !j.built {
		j.runBuild()
		j.built = true
	}
	n := 0
	for n < BatchSize {
		if j.pb == nil {
			j.pb = j.probe.Next()
			j.pbPos = 0
			j.pbMatch = nil
			if j.pb == nil {
				break
			}
		}
		b := j.pb
		for j.pbPos < b.N && n < BatchSize {
			i := j.pbPos
			if j.pbMatch == nil {
				j.pbMatch = j.ht[b.Cols[j.probeKey][i]]
			}
			for len(j.pbMatch) > 0 && n < BatchSize {
				bi := j.pbMatch[0]
				j.pbMatch = j.pbMatch[1:]
				for c, pc := range j.probePay {
					j.out.Cols[c][n] = b.Cols[pc][i]
				}
				for c, bc := range j.buildPay {
					j.out.Cols[len(j.probePay)+c][n] = j.buildCols[bc][bi]
				}
				n++
			}
			if len(j.pbMatch) == 0 {
				j.pbMatch = nil
				j.pbPos++
			}
		}
		if j.pbPos >= b.N {
			j.pb = nil
		}
	}
	if n == 0 {
		return nil
	}
	j.out.N = n
	return j.out
}

func (j *HashJoin) runBuild() {
	j.ht = make(map[int64][]int32)
	var cols [][]int64
	row := int32(0)
	for {
		b := j.build.Next()
		if b == nil {
			break
		}
		if cols == nil {
			cols = make([][]int64, len(b.Cols))
		}
		for c := range b.Cols {
			cols[c] = append(cols[c], b.Cols[c][:b.N]...)
		}
		for i := 0; i < b.N; i++ {
			k := cols[j.buildKey][int(row)+i]
			j.ht[k] = append(j.ht[k], row+int32(i))
		}
		row += int32(b.N)
	}
	j.buildCols = cols
}

// SemiJoinSet drains op and returns the set of values of column col —
// used to turn subqueries and small dimension filters into FilterIn.
func SemiJoinSet(op Operator, col int) map[int64]bool {
	set := make(map[int64]bool)
	for {
		b := op.Next()
		if b == nil {
			return set
		}
		for i := 0; i < b.N; i++ {
			set[b.Cols[col][i]] = true
		}
	}
}

// MergeJoin is an inner equi-join of two inputs sorted ascending on their
// key columns, one-to-many (left unique): the Section-5 postings ⋈ document
// join. Output: left payload columns then right payload columns.
type MergeJoin struct {
	left, right       Operator
	leftKey, rightKey int
	leftPay, rightPay []int
	out               *Batch

	lb, rb     *Batch
	lPos, rPos int
	leftDone   bool
	rightDone  bool
	curLeftKey int64
	curLeftRow []int64
	haveLeft   bool
}

// NewMergeJoin builds a merge join; the left input must have unique keys.
func NewMergeJoin(left, right Operator, leftKey, rightKey int, leftPay, rightPay []int) *MergeJoin {
	return &MergeJoin{
		left: left, right: right,
		leftKey: leftKey, rightKey: rightKey,
		leftPay: leftPay, rightPay: rightPay,
		out: NewBatch(len(leftPay)+len(rightPay), BatchSize),
	}
}

// Next emits joined vectors.
func (m *MergeJoin) Next() *Batch {
	n := 0
	for n < BatchSize {
		if m.rb == nil && !m.rightDone {
			m.rb = m.right.Next()
			m.rPos = 0
			if m.rb == nil {
				m.rightDone = true
			}
		}
		if m.rightDone || m.rb == nil {
			break
		}
		rk := m.rb.Cols[m.rightKey][m.rPos]
		// Advance the left side until curLeftKey >= rk.
		for (!m.haveLeft || m.curLeftKey < rk) && !m.leftDone {
			if !m.advanceLeft() {
				m.leftDone = true
			}
		}
		if m.leftDone && (!m.haveLeft || m.curLeftKey < rk) {
			break // right rows beyond the last left key never match
		}
		if m.curLeftKey == rk {
			for c, lc := range m.leftPay {
				m.out.Cols[c][n] = m.curLeftRow[lc]
			}
			for c, rc := range m.rightPay {
				m.out.Cols[len(m.leftPay)+c][n] = m.rb.Cols[rc][m.rPos]
			}
			n++
		}
		m.rPos++
		if m.rPos >= m.rb.N {
			m.rb = nil
		}
	}
	if n == 0 {
		return nil
	}
	m.out.N = n
	return m.out
}

func (m *MergeJoin) advanceLeft() bool {
	if m.lb == nil {
		m.lb = m.left.Next()
		m.lPos = 0
		if m.lb == nil {
			return false
		}
	}
	if m.curLeftRow == nil {
		m.curLeftRow = make([]int64, len(m.lb.Cols))
	}
	for c := range m.lb.Cols {
		m.curLeftRow[c] = m.lb.Cols[c][m.lPos]
	}
	m.curLeftKey = m.lb.Cols[m.leftKey][m.lPos]
	m.haveLeft = true
	m.lPos++
	if m.lPos >= m.lb.N {
		m.lb = nil
	}
	return true
}

// SortOp materializes its input and emits it sorted by the given column
// (ascending), used to prepare merge-join inputs.
type SortOp struct {
	child Operator
	col   int
	done  bool
	out   *SliceSource
}

// NewSortOp builds a sort on column col.
func NewSortOp(child Operator, col int) *SortOp {
	return &SortOp{child: child, col: col}
}

// Next sorts on first call and replays.
func (s *SortOp) Next() *Batch {
	if !s.done {
		cols := Materialize(s.child, -1)
		if cols != nil && len(cols) > 0 && len(cols[0]) > 0 {
			idx := make([]int, len(cols[0]))
			for i := range idx {
				idx[i] = i
			}
			key := cols[s.col]
			sort.SliceStable(idx, func(a, b int) bool { return key[idx[a]] < key[idx[b]] })
			sorted := make([][]int64, len(cols))
			for c := range cols {
				sorted[c] = make([]int64, len(idx))
				for i, x := range idx {
					sorted[c][i] = cols[c][x]
				}
			}
			cols = sorted
		}
		s.out = NewSliceSource(cols)
		s.done = true
	}
	return s.out.Next()
}

package engine

import (
	"container/heap"
	"slices"
	"sort"
)

// AggKind selects an aggregate function.
type AggKind int

// Aggregate kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
)

// AggSpec is one aggregate over an input column (ignored for AggCount).
type AggSpec struct {
	Kind AggKind
	Col  int
}

// HashAgg groups by a set of key columns and computes aggregates. Output
// columns are the keys followed by the aggregates, in group-first-seen
// order unless Sorted is requested at construction.
type HashAgg struct {
	child  Operator
	keys   []int
	aggs   []AggSpec
	sorted bool

	done bool
	out  *SliceSource
}

// NewHashAgg builds a grouped aggregation. sorted=true sorts the output by
// the key columns (lexicographic), which TPC-H result orderings need.
func NewHashAgg(child Operator, keys []int, aggs []AggSpec, sorted bool) *HashAgg {
	return &HashAgg{child: child, keys: keys, aggs: aggs, sorted: sorted}
}

type aggGroup struct {
	key  []int64
	vals []int64 // one per agg; Min/Max seeded at first touch
	seen bool
}

// Next drains the child on first call and then replays the grouped result.
func (h *HashAgg) Next() *Batch {
	if !h.done {
		h.run()
		h.done = true
	}
	return h.out.Next()
}

func (h *HashAgg) run() {
	groups := make(map[uint64][]*aggGroup)
	var order []*aggGroup

	key := make([]int64, len(h.keys))
	for {
		b := h.child.Next()
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			hash := uint64(14695981039346656037)
			for k, kc := range h.keys {
				key[k] = b.Cols[kc][i]
				hash = (hash ^ uint64(key[k])) * 1099511628211
			}
			var g *aggGroup
			for _, cand := range groups[hash] {
				if slices.Equal(cand.key, key) {
					g = cand
					break
				}
			}
			if g == nil {
				g = &aggGroup{key: slices.Clone(key), vals: make([]int64, len(h.aggs))}
				groups[hash] = append(groups[hash], g)
				order = append(order, g)
			}
			for a, spec := range h.aggs {
				switch spec.Kind {
				case AggSum:
					g.vals[a] += b.Cols[spec.Col][i]
				case AggCount:
					g.vals[a]++
				case AggMin:
					if v := b.Cols[spec.Col][i]; !g.seen || v < g.vals[a] {
						g.vals[a] = v
					}
				case AggMax:
					if v := b.Cols[spec.Col][i]; !g.seen || v > g.vals[a] {
						g.vals[a] = v
					}
				}
			}
			g.seen = true
		}
	}

	if h.sorted {
		sort.Slice(order, func(i, j int) bool {
			return slices.Compare(order[i].key, order[j].key) < 0
		})
	}
	arity := len(h.keys) + len(h.aggs)
	cols := make([][]int64, arity)
	for _, g := range order {
		for k := range h.keys {
			cols[k] = append(cols[k], g.key[k])
		}
		for a := range h.aggs {
			cols[len(h.keys)+a] = append(cols[len(h.keys)+a], g.vals[a])
		}
	}
	h.out = NewSliceSource(cols)
}

// OrderedAgg aggregates input already grouped on a single key column
// (consecutive equal keys form a group) — the streaming aggregation used
// after a merge join on a sorted key (Section 5's retrieval query).
type OrderedAgg struct {
	child Operator
	key   int
	aggs  []AggSpec
	out   *Batch

	pending   *Batch
	pendPos   int
	curKey    int64
	curVals   []int64
	curActive bool
}

// NewOrderedAgg builds a streaming single-key aggregation.
func NewOrderedAgg(child Operator, key int, aggs []AggSpec) *OrderedAgg {
	return &OrderedAgg{
		child: child, key: key, aggs: aggs,
		out:     NewBatch(1+len(aggs), BatchSize),
		curVals: make([]int64, len(aggs)),
	}
}

// Next emits completed groups.
func (o *OrderedAgg) Next() *Batch {
	n := 0
	emit := func() {
		o.out.Cols[0][n] = o.curKey
		for a := range o.aggs {
			o.out.Cols[1+a][n] = o.curVals[a]
		}
		n++
	}
	for n < BatchSize {
		if o.pending == nil {
			o.pending = o.child.Next()
			o.pendPos = 0
			if o.pending == nil {
				if o.curActive {
					emit()
					o.curActive = false
				}
				break
			}
		}
		b := o.pending
		for ; o.pendPos < b.N && n < BatchSize; o.pendPos++ {
			i := o.pendPos
			k := b.Cols[o.key][i]
			if !o.curActive || k != o.curKey {
				if o.curActive {
					emit()
				}
				o.curActive = true
				o.curKey = k
				for a, spec := range o.aggs {
					switch spec.Kind {
					case AggCount:
						o.curVals[a] = 0
					case AggSum:
						o.curVals[a] = 0
					default:
						o.curVals[a] = b.Cols[spec.Col][i]
					}
				}
			}
			for a, spec := range o.aggs {
				switch spec.Kind {
				case AggSum:
					o.curVals[a] += b.Cols[spec.Col][i]
				case AggCount:
					o.curVals[a]++
				case AggMin:
					if v := b.Cols[spec.Col][i]; v < o.curVals[a] {
						o.curVals[a] = v
					}
				case AggMax:
					if v := b.Cols[spec.Col][i]; v > o.curVals[a] {
						o.curVals[a] = v
					}
				}
			}
		}
		if o.pendPos >= b.N {
			o.pending = nil
		}
	}
	if n == 0 {
		return nil
	}
	o.out.N = n
	return o.out
}

// --- TopN -------------------------------------------------------------------

// TopN keeps the n rows with the largest (desc=true) or smallest value in
// the order column, emitting them sorted.
type TopN struct {
	child Operator
	col   int
	n     int
	desc  bool
	done  bool
	out   *SliceSource
}

// NewTopN builds a heap-based top-N.
func NewTopN(child Operator, orderCol, n int, desc bool) *TopN {
	return &TopN{child: child, col: orderCol, n: n, desc: desc}
}

type topnRow struct {
	order int64
	row   []int64
}

type topnHeap struct {
	rows []topnRow
	desc bool
}

func (h *topnHeap) Len() int { return len(h.rows) }
func (h *topnHeap) Less(i, j int) bool {
	// For desc (keep largest), the heap root is the smallest kept value.
	if h.desc {
		return h.rows[i].order < h.rows[j].order
	}
	return h.rows[i].order > h.rows[j].order
}
func (h *topnHeap) Swap(i, j int) { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *topnHeap) Push(x any)    { h.rows = append(h.rows, x.(topnRow)) }
func (h *topnHeap) Pop() any {
	x := h.rows[len(h.rows)-1]
	h.rows = h.rows[:len(h.rows)-1]
	return x
}

// Next drains the child on first call and replays the top rows in order.
func (t *TopN) Next() *Batch {
	if !t.done {
		t.run()
		t.done = true
	}
	return t.out.Next()
}

func (t *TopN) run() {
	h := &topnHeap{desc: t.desc}
	arity := 0
	for {
		b := t.child.Next()
		if b == nil {
			break
		}
		arity = len(b.Cols)
		for i := 0; i < b.N; i++ {
			v := b.Cols[t.col][i]
			if h.Len() < t.n {
				row := make([]int64, arity)
				for c := range b.Cols {
					row[c] = b.Cols[c][i]
				}
				heap.Push(h, topnRow{v, row})
				continue
			}
			better := (t.desc && v > h.rows[0].order) || (!t.desc && v < h.rows[0].order)
			if better {
				row := make([]int64, arity)
				for c := range b.Cols {
					row[c] = b.Cols[c][i]
				}
				h.rows[0] = topnRow{v, row}
				heap.Fix(h, 0)
			}
		}
	}
	rows := h.rows
	sort.Slice(rows, func(i, j int) bool {
		if t.desc {
			return rows[i].order > rows[j].order
		}
		return rows[i].order < rows[j].order
	})
	cols := make([][]int64, arity)
	for _, r := range rows {
		for c := 0; c < arity; c++ {
			cols[c] = append(cols[c], r.row[c])
		}
	}
	t.out = NewSliceSource(cols)
}

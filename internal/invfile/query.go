package invfile

import (
	"repro/internal/engine"
)

// This file implements the Section 5 retrieval query: "looks up the top-N
// documents in which a given term ... occurs most frequently (a merge-join
// of the postings table with the document offsets, followed by ordered
// aggregation and heap-based top-N)".

// DocTable is the document-offsets relation: for each document, the byte
// offset of its text (any per-document payload works; the join is what
// matters).
type DocTable struct {
	DocIDs  []int64
	Offsets []int64
}

// NewDocTable builds the offsets side for a collection.
func NewDocTable(numDocs int) *DocTable {
	d := &DocTable{DocIDs: make([]int64, numDocs), Offsets: make([]int64, numDocs)}
	off := int64(0)
	for i := 0; i < numDocs; i++ {
		d.DocIDs[i] = int64(i)
		d.Offsets[i] = off
		off += 2048 + int64(i%1711) // synthetic document lengths
	}
	return d
}

// PreparedList is a posting list widened to the engine's int64 columns,
// so repeated query runs measure the query, not the conversion.
type PreparedList struct {
	Docs  []int64
	Freqs []int64
}

// Prepare widens a posting list for querying.
func Prepare(list *PostingList) *PreparedList {
	p := &PreparedList{
		Docs:  make([]int64, len(list.DocIDs)),
		Freqs: make([]int64, len(list.Freqs)),
	}
	for i := range list.DocIDs {
		p.Docs[i] = int64(list.DocIDs[i])
		p.Freqs[i] = int64(list.Freqs[i])
	}
	return p
}

// TopNDocs runs the retrieval query for one term: merge-join the term's
// postings with the document offsets, aggregate frequency per document
// (ordered aggregation — postings are doc-sorted), and keep the top n by
// frequency. It returns the document IDs and their frequencies.
func TopNDocs(list *PostingList, docs *DocTable, n int) (ids []int64, freqs []int64) {
	return TopNDocsPrepared(Prepare(list), docs, n)
}

// TopNDocsPrepared is TopNDocs over a pre-widened list.
func TopNDocsPrepared(list *PreparedList, docs *DocTable, n int) (ids []int64, freqs []int64) {
	postings := engine.NewSliceSource([][]int64{list.Docs, list.Freqs})
	docSide := engine.NewSliceSource([][]int64{docs.DocIDs, docs.Offsets})

	// Merge-join: docs (unique, sorted) with postings.
	join := engine.NewMergeJoin(docSide, postings, 0, 0, []int{0, 1}, []int{1})
	// cols: [docID, offset, freq]; ordered aggregation by docID.
	agg := engine.NewOrderedAgg(join, 0, []engine.AggSpec{{Kind: engine.AggSum, Col: 2}})
	top := engine.NewTopN(agg, 1, n, true)
	out := engine.Materialize(top, 2)
	return out[0], out[1]
}

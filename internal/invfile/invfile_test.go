package invfile

import (
	"sort"
	"testing"

	"repro/internal/baseline"
)

func smallProfile() Profile {
	return Profile{Name: "test", NumDocs: 20_000, NumTerms: 500, Postings: 80_000, GapBits: 8}
}

func TestSynthesizeBasicInvariants(t *testing.T) {
	c := Synthesize(smallProfile(), 1)
	if len(c.Lists) == 0 {
		t.Fatal("no lists")
	}
	for _, l := range c.Lists {
		if len(l.DocIDs) != len(l.Freqs) {
			t.Fatal("freqs/docs length mismatch")
		}
		for i := 1; i < len(l.DocIDs); i++ {
			if l.DocIDs[i] <= l.DocIDs[i-1] {
				t.Fatalf("term %d: doc IDs not strictly increasing", l.Term)
			}
		}
		for _, id := range l.DocIDs {
			if int(id) >= c.Profile.NumDocs {
				t.Fatalf("doc ID %d out of range", id)
			}
		}
		for _, f := range l.Freqs {
			if f < 1 {
				t.Fatal("frequency must be >= 1")
			}
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(smallProfile(), 7)
	b := Synthesize(smallProfile(), 7)
	if a.TotalPostings() != b.TotalPostings() {
		t.Fatal("not deterministic")
	}
}

func TestZipfianListLengths(t *testing.T) {
	c := Synthesize(smallProfile(), 2)
	lens := make([]int, len(c.Lists))
	for i := range c.Lists {
		lens[i] = len(c.Lists[i].DocIDs)
	}
	sorted := append([]int{}, lens...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	// Head term should dominate the tail (Zipf): top list much longer than
	// the median.
	if sorted[0] < 10*sorted[len(sorted)/2] {
		t.Fatalf("head list %d vs median %d: not Zipf-like", sorted[0], sorted[len(sorted)/2])
	}
}

func TestGapsRoundTrip(t *testing.T) {
	c := Synthesize(smallProfile(), 3)
	l := c.Lists[0]
	gaps := l.Gaps()
	acc := uint32(0)
	for i, g := range gaps {
		acc += g
		if acc != l.DocIDs[i] {
			t.Fatal("gaps do not reconstruct doc IDs")
		}
	}
}

func TestPFORDeltaCompressionRoundTrip(t *testing.T) {
	c := Synthesize(smallProfile(), 4)
	blocks, bytes := CompressPFORDelta(c, 1<<16)
	if bytes <= 0 {
		t.Fatal("no compressed bytes")
	}
	total := c.TotalPostings()
	out := DecompressPFORDelta(blocks, make([]uint32, total))
	if len(out) != total {
		t.Fatalf("decoded %d of %d", len(out), total)
	}
	// The decoded stream must be the concatenated re-based doc stream.
	acc := uint32(0)
	k := 0
	for i := range c.Lists {
		for _, gap := range c.Lists[i].Gaps() {
			acc += gap
			if out[k] != acc {
				t.Fatalf("stream mismatch at %d", k)
			}
			k++
		}
	}
}

func TestDenserProfilesCompressBetter(t *testing.T) {
	// A dense profile (small mean gap) must compress much better than a
	// sparse one — the source of Table 4's ratio spread across
	// collections.
	dense := Profile{Name: "dense", NumDocs: 40_000, NumTerms: 400, Postings: 150_000}
	sparse := Profile{Name: "sparse", NumDocs: 4_000_000, NumTerms: 400, Postings: 150_000}
	cd := Synthesize(dense, 5)
	cs := Synthesize(sparse, 5)
	_, bd := CompressPFORDelta(cd, 1<<16)
	_, bs := CompressPFORDelta(cs, 1<<16)
	rd := float64(cd.UncompressedBytes()) / float64(bd)
	rs := float64(cs.UncompressedBytes()) / float64(bs)
	if rd < 1.5*rs {
		t.Fatalf("dense ratio %.2f should dwarf sparse %.2f", rd, rs)
	}
}

func TestTable4OrderingHolds(t *testing.T) {
	// Shape check for Table 4 on the TREC profiles: shuff has the best
	// ratio, carryover-12 next, PFOR-DELTA ~15-25%% below carryover-12.
	// (On INEX our synthetic gap mixture leaves carryover-12 slightly
	// below PFOR-DELTA, unlike the paper — documented in EXPERIMENTS.md —
	// so only shuff > PFOR-DELTA is asserted there.)
	for _, p := range Profiles {
		scaled := p
		scaled.Postings = min(p.Postings, 200_000) // keep the test fast
		c := Synthesize(scaled, 6)
		gaps := c.AllGaps()

		_, pforBytes := CompressPFORDelta(c, 1<<16)
		co12 := baseline.Carryover12{}.Encode(nil, gaps)
		shuff := baseline.GapHuffman{}.Encode(nil, gaps)

		unc := float64(c.UncompressedBytes())
		rPFOR := unc / float64(pforBytes)
		rCO12 := unc / float64(len(co12))
		rShuff := unc / float64(len(shuff))

		if rShuff <= rPFOR {
			t.Errorf("%s: shuff ratio %.2f should beat PFOR-DELTA %.2f", p.Name, rShuff, rPFOR)
		}
		if p.Name == "INEX" {
			continue
		}
		if rShuff <= rCO12 {
			t.Errorf("%s: shuff ratio %.2f should beat carryover-12 %.2f", p.Name, rShuff, rCO12)
		}
		if rPFOR >= rCO12 {
			t.Errorf("%s: PFOR-DELTA ratio %.2f should sit below carryover-12 %.2f", p.Name, rPFOR, rCO12)
		}
		if rPFOR < 0.6*rCO12 {
			t.Errorf("%s: PFOR-DELTA ratio %.2f too far below carryover-12 %.2f (paper: ~15%% below)",
				p.Name, rPFOR, rCO12)
		}
	}
}

func TestTopNDocs(t *testing.T) {
	c := Synthesize(smallProfile(), 8)
	docs := NewDocTable(c.Profile.NumDocs)
	list := &c.Lists[0]
	ids, freqs := TopNDocs(list, docs, 10)
	if len(ids) != 10 {
		t.Fatalf("got %d results", len(ids))
	}
	// Results sorted by frequency desc.
	for i := 1; i < len(freqs); i++ {
		if freqs[i] > freqs[i-1] {
			t.Fatal("not sorted by frequency")
		}
	}
	// Reference: max frequency in the list must equal the top result.
	var want int64
	for _, f := range list.Freqs {
		if int64(f) > want {
			want = int64(f)
		}
	}
	if freqs[0] != want {
		t.Fatalf("top freq %d, want %d", freqs[0], want)
	}
	// Every returned doc must actually contain the term with that freq.
	freqOf := map[int64]int64{}
	for i, id := range list.DocIDs {
		freqOf[int64(id)] = int64(list.Freqs[i])
	}
	for i, id := range ids {
		if freqOf[id] != freqs[i] {
			t.Fatalf("doc %d freq %d, want %d", id, freqs[i], freqOf[id])
		}
	}
}

func TestTopNSmallerThanN(t *testing.T) {
	c := Synthesize(smallProfile(), 9)
	docs := NewDocTable(c.Profile.NumDocs)
	// Find a short list.
	var short *PostingList
	for i := range c.Lists {
		if len(c.Lists[i].DocIDs) < 10 {
			short = &c.Lists[i]
			break
		}
	}
	if short == nil {
		t.Skip("no short list in this synthesis")
	}
	ids, _ := TopNDocs(short, docs, 10)
	if len(ids) != len(short.DocIDs) {
		t.Fatalf("got %d results for list of %d", len(ids), len(short.DocIDs))
	}
}

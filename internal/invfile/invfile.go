// Package invfile provides the inverted-file workload of Section 5:
// synthetic document collections calibrated to the paper's five datasets
// (INEX and TREC fbis / fr94 / ft / latimes), posting-list storage as
// d-gaps, compression adapters for PFOR-DELTA and the Table 4 baseline
// codecs, and the top-N retrieval query used for the equilibrium
// experiment.
//
// The TREC disks are proprietary, so collections are synthesized with
// Zipfian term-document frequencies and geometric within-list gaps, with
// each profile's mean gap size calibrated so that the d-gap entropy matches
// what the paper's compression ratios imply (DESIGN.md §3). This preserves
// the compressibility regime that drives the Table 4 comparison.
package invfile

import (
	"math"
	"math/rand"

	"repro/internal/core"
)

// Profile describes one synthetic collection. Gap sizes are density
// driven: a term with n postings over an ID space of NumDocs has mean gap
// NumDocs/n, so the ratio NumTerms*NumDocs/Postings sets the
// posting-weighted mean gap and thereby the compressibility.
type Profile struct {
	Name     string
	NumDocs  int
	NumTerms int
	// Postings is the total number of (term, doc) entries to aim for.
	Postings int
	// GapBits documents the calibration target: the expected stored size
	// of a d-gap in bits, derived from the paper's PFOR-DELTA ratios on
	// 32-bit postings (e.g. fbis at ratio 3.47 stores ~9.2 bits/gap).
	GapBits float64
}

// Profiles are the five Table 4 collections, scaled to laptop size while
// keeping their relative gap statistics. INEX compresses far worse than
// the TREC collections (its streams are position-like with large gaps);
// the TREC profiles sit close together, fbis the densest.
var Profiles = []Profile{
	{Name: "INEX", NumDocs: 40_000_000, NumTerms: 1_500, Postings: 400_000, GapBits: 18.3},
	{Name: "TREC fbis", NumDocs: 35_000, NumTerms: 3_000, Postings: 800_000, GapBits: 9.2},
	{Name: "TREC fr94", NumDocs: 55_000, NumTerms: 3_000, Postings: 700_000, GapBits: 10.3},
	{Name: "TREC ft", NumDocs: 60_000, NumTerms: 3_000, Postings: 800_000, GapBits: 10.2},
	{Name: "TREC latimes", NumDocs: 70_000, NumTerms: 3_000, Postings: 750_000, GapBits: 10.7},
}

// PostingList holds one term's postings: strictly increasing document IDs
// and a term frequency per document.
type PostingList struct {
	Term   int
	DocIDs []uint32
	Freqs  []uint32
}

// Gaps returns the d-gap form of the list (first gap from zero).
func (p *PostingList) Gaps() []uint32 {
	gaps := make([]uint32, len(p.DocIDs))
	prev := uint32(0)
	for i, id := range p.DocIDs {
		gaps[i] = id - prev
		prev = id
	}
	return gaps
}

// Collection is a synthesized inverted file.
type Collection struct {
	Profile Profile
	Lists   []PostingList
}

// TotalPostings returns the number of (term, doc) entries.
func (c *Collection) TotalPostings() int {
	n := 0
	for i := range c.Lists {
		n += len(c.Lists[i].DocIDs)
	}
	return n
}

// UncompressedBytes returns the flat 32-bit size of all d-gaps — the
// baseline for Table 4's ratios.
func (c *Collection) UncompressedBytes() int { return 4 * c.TotalPostings() }

// AllGaps concatenates every list's d-gaps (the unit the codecs compress).
func (c *Collection) AllGaps() []uint32 {
	out := make([]uint32, 0, c.TotalPostings())
	for i := range c.Lists {
		out = append(out, c.Lists[i].Gaps()...)
	}
	return out
}

// Synthesize builds a collection for the profile. Term list lengths follow
// a Zipf distribution (clipped to 90% of the document space); within a
// list, gaps are geometric with the density-implied mean NumDocs/n, so
// frequent terms produce tiny gaps and rare terms produce huge ones — the
// bimodal structure of real inverted files.
func Synthesize(p Profile, seed int64) *Collection {
	rng := rand.New(rand.NewSource(seed))
	c := &Collection{Profile: p}

	// Zipfian share per term, normalized to the postings budget.
	weights := make([]float64, p.NumTerms)
	total := 0.0
	for t := range weights {
		weights[t] = 1 / float64(t+1)
		total += weights[t]
	}

	for t := 0; t < p.NumTerms; t++ {
		n := int(float64(p.Postings) * weights[t] / total)
		if n < 2 {
			n = 2
		}
		if n > p.NumDocs*9/10 {
			n = p.NumDocs * 9 / 10
		}
		list := PostingList{Term: t, DocIDs: make([]uint32, 0, n), Freqs: make([]uint32, 0, n)}
		// Mean gap that fits n geometric steps in the doc space, split
		// into a bursty mixture: mostly small gaps (documents on a topic
		// cluster) with occasional long jumps between clusters. The
		// mixture preserves the mean but fattens the tail, which is what
		// separates the per-word-adaptive carryover-12 from PFOR's
		// per-block bit width in Table 4.
		g := float64(p.NumDocs)/float64(n) - 1
		gSmall := g / 3
		gLarge := (g - 0.88*gSmall) / 0.12
		doc := int64(-1) // first gap measured from doc 0 inclusive
		for len(list.DocIDs) < n {
			m := gSmall
			if rng.Float64() < 0.12 {
				m = gLarge
			}
			gap := 1 + int64(rng.ExpFloat64()*m)
			doc += gap
			if doc >= int64(p.NumDocs) || doc > math.MaxUint32 {
				break
			}
			list.DocIDs = append(list.DocIDs, uint32(doc))
			// Term frequency: 1 + geometric tail.
			list.Freqs = append(list.Freqs, 1+uint32(rng.ExpFloat64()*3))
		}
		if len(list.DocIDs) > 0 {
			c.Lists = append(c.Lists, list)
		}
	}
	return c
}

// Stream concatenates the collection's d-gaps into one absolute,
// re-based document-ID stream: the form a postings column takes in
// ColumnBM, where PFOR-DELTA's running sum reproduces the gaps.
func Stream(c *Collection) []uint32 {
	stream := make([]uint32, 0, c.TotalPostings())
	acc := uint32(0)
	for i := range c.Lists {
		for _, gap := range c.Lists[i].Gaps() {
			acc += gap
			stream = append(stream, acc)
		}
	}
	return stream
}

// AnalyzeBlocks picks PFOR-DELTA parameters per block. Parameters are
// re-analyzed at chunk granularity ("the compression ratio can be
// monitored cheaply at the granularity of a disk chunk ... re-run the
// compression mode analysis", Section 3.1): gap statistics differ wildly
// between head-term and tail-term regions of the stream. Analysis is a
// one-time cost and deliberately separate from CompressStream, which is
// what the compression-bandwidth measurements time.
func AnalyzeBlocks(stream []uint32, blockLen int) []core.Choice[uint32] {
	var choices []core.Choice[uint32]
	for lo := 0; lo < len(stream); lo += blockLen {
		hi := min(lo+blockLen, len(stream))
		choices = append(choices, core.AnalyzePFORDelta(core.Sample(stream[lo:hi], 16*1024)))
	}
	return choices
}

// CompressStream compresses the stream into PFOR-DELTA blocks using
// pre-analyzed per-block parameters.
func CompressStream(stream []uint32, choices []core.Choice[uint32], blockLen int) (blocks []*core.Block[uint32], bytes int) {
	for i, lo := 0, 0; lo < len(stream); i, lo = i+1, lo+blockLen {
		hi := min(lo+blockLen, len(stream))
		base := uint32(0)
		if lo > 0 {
			base = stream[lo-1]
		}
		blk := core.CompressPFORDelta(stream[lo:hi], base, choices[i].DeltaBase, choices[i].B)
		blocks = append(blocks, blk)
		bytes += blk.CompressedBytes()
	}
	return blocks, bytes
}

// CompressPFORDelta analyzes and compresses all d-gaps with PFOR-DELTA and
// returns the blocks plus total compressed bytes.
func CompressPFORDelta(c *Collection, blockLen int) (blocks []*core.Block[uint32], bytes int) {
	stream := Stream(c)
	return CompressStream(stream, AnalyzeBlocks(stream, blockLen), blockLen)
}

// DecompressPFORDelta decodes the blocks back into the absolute stream.
func DecompressPFORDelta(blocks []*core.Block[uint32], dst []uint32) []uint32 {
	var d core.Decoder[uint32]
	out := dst[:0]
	for _, blk := range blocks {
		start := len(out)
		out = out[:start+blk.N]
		d.Decompress(blk, out[start:])
	}
	return out
}

package core

import (
	"math/rand"
	"testing"
)

func TestDecompressParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, n := range []int{0, 100, GroupSize, 10*GroupSize + 17, 100_000} {
		for _, scheme := range []string{"pfor", "pfordelta", "pdict"} {
			var blk *Block[int64]
			var src []int64
			switch scheme {
			case "pfor":
				src = synthPFOR(rng, n, 0, 8, 0.1)
				blk = CompressPFOR(src, 0, 8)
			case "pfordelta":
				src = synthMonotonic(rng, n, 8, 0.1)
				blk = CompressPFORDelta(src, 0, 0, 8)
			case "pdict":
				dict := makeDict(256)
				src = synthPDict(rng, n, dict, 0.1)
				blk = CompressPDict(src, dict, 8)
			}
			seq := make([]int64, n)
			Decompress(blk, seq)
			for _, workers := range []int{0, 1, 2, 3, 7} {
				par := make([]int64, n)
				DecompressParallel(blk, par, workers)
				for i := range seq {
					if par[i] != seq[i] {
						t.Fatalf("%s n=%d workers=%d: mismatch at %d", scheme, n, workers, i)
					}
				}
			}
		}
	}
}

func TestDecompressParallelSmallDstPanics(t *testing.T) {
	src := synthPFOR(rand.New(rand.NewSource(92)), 50*GroupSize, 0, 8, 0.1)
	blk := CompressPFOR(src, 0, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DecompressParallel(blk, make([]int64, 10), 4)
}

func BenchmarkDecompressParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(93))
	const n = 1 << 22
	src := synthPFOR(rng, n, 0, 8, 0.05)
	blk := CompressPFOR(src, 0, 8)
	dst := make([]int64, n)
	for _, workers := range []int{1, 2, 4} {
		b.Run(benchWorkers(workers), func(b *testing.B) {
			b.SetBytes(8 * n)
			for i := 0; i < b.N; i++ {
				DecompressParallel(blk, dst, workers)
			}
		})
	}
}

func benchWorkers(w int) string {
	return "workers=" + string(rune('0'+w))
}

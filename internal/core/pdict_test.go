package core

import (
	"math/rand"
	"testing"
)

// synthPDict generates values drawn from a dictionary with probability
// 1-excRate and random outliers otherwise.
func synthPDict(rng *rand.Rand, n int, dict []int64, excRate float64) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		if rng.Float64() < excRate {
			vals[i] = 1_000_000_000 + rng.Int63n(1<<40)
		} else {
			vals[i] = dict[rng.Intn(len(dict))]
		}
	}
	return vals
}

func makeDict(n int) []int64 {
	dict := make([]int64, n)
	for i := range dict {
		dict[i] = int64(i * 131071)
	}
	return dict
}

func TestPDictRoundTripBasic(t *testing.T) {
	dict := []int64{10, 20, 30, 40}
	src := []int64{10, 40, 20, 20, 77, 30, 10, -3}
	blk := CompressPDict(src, dict, 2)
	if blk.ExceptionCount() != 2 {
		t.Fatalf("want 2 exceptions (77, -3), got %d", blk.ExceptionCount())
	}
	checkRoundTrip(t, blk, src)
}

func TestPDictRoundTripRates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, rate := range []float64{0, 0.05, 0.3, 0.7, 1.0} {
		for _, b := range []uint{1, 4, 8, 12} {
			dict := makeDict(1 << b)
			for _, n := range []int{0, 1, 128, 129, 5000} {
				src := synthPDict(rng, n, dict, rate)
				blk := CompressPDict(src, dict, b)
				checkRoundTrip(t, blk, src)
			}
		}
	}
}

func TestPDictSmallDictLargeWidth(t *testing.T) {
	// Dictionary smaller than the code space: padded entries must never be
	// exposed.
	dict := []int64{5}
	src := []int64{5, 5, 99, 5}
	blk := CompressPDict(src, dict, 8)
	checkRoundTrip(t, blk, src)
	if blk.DictLen != 1 {
		t.Fatalf("DictLen = %d, want 1", blk.DictLen)
	}
	if len(blk.Dict) != 256 {
		t.Fatalf("padded dict length %d, want 256", len(blk.Dict))
	}
}

func TestPDictOversizedDictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: dict larger than code space")
		}
	}()
	CompressPDict([]int64{1}, makeDict(5), 2)
}

func TestPDictDuplicateDictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: duplicate dictionary value")
		}
	}()
	CompressPDict([]int64{1}, []int64{7, 7}, 2)
}

func TestDictLookup(t *testing.T) {
	dict := makeDict(1000)
	lk := newDictLookup(dict)
	for code, v := range dict {
		got, ok := lk.find(v)
		if !ok || got != uint32(code) {
			t.Fatalf("find(%d) = (%d,%v), want (%d,true)", v, got, ok, code)
		}
	}
	if _, ok := lk.find(-1); ok {
		t.Fatal("find(-1) should miss")
	}
	if _, ok := lk.find(131070); ok {
		t.Fatal("find(131070) should miss")
	}
}

func TestDictLookupNarrowTypes(t *testing.T) {
	dict := []int8{-128, -1, 0, 1, 127}
	lk := newDictLookup(dict)
	for code, v := range dict {
		got, ok := lk.find(v)
		if !ok || got != uint32(code) {
			t.Fatalf("find(%d) = (%d,%v), want (%d,true)", v, got, ok, code)
		}
	}
	if _, ok := lk.find(5); ok {
		t.Fatal("find(5) should miss")
	}
}

func TestPDictSkewedFrequencies(t *testing.T) {
	// The PDICT value proposition: skewed frequencies mean a small
	// dictionary covers most values. 4 hot values + a long tail.
	rng := rand.New(rand.NewSource(23))
	hot := []int64{111, 222, 333, 444}
	src := make([]int64, 50_000)
	for i := range src {
		if rng.Float64() < 0.95 {
			src[i] = hot[rng.Intn(4)]
		} else {
			src[i] = rng.Int63()
		}
	}
	blk := CompressPDict(src, hot, 2)
	checkRoundTrip(t, blk, src)
	if r := blk.Ratio(); r < 3 {
		t.Fatalf("skewed PDICT ratio %.2f, want > 3 (2-bit codes on 64-bit values, 5%% exceptions)", r)
	}
}

func TestPDictStringsViaCodes(t *testing.T) {
	// Enumerated storage: the engine stores strings as integer codes; the
	// gender example of Section 2.1.
	type gender = uint8
	src := []gender{0, 1, 1, 0, 1, 0, 0, 1, 1, 1}
	blk := CompressPDict(src, []gender{0, 1}, 1)
	checkRoundTrip(t, blk, src)
	if blk.ExceptionCount() != 0 {
		t.Fatalf("binary column should have no exceptions, got %d", blk.ExceptionCount())
	}
}

package core

import (
	"math/rand"
	"slices"
	"testing"
)

// checkMaskCompose drives DecompressMask, RefineMask and
// DecompressSelected over one block: the mask of r1 must select exactly
// the oracle's rows, refining it with r2 must equal the conjunction of
// the two oracle filters, and gathering through the composed bitmap must
// materialize exactly the surviving values.
func checkMaskCompose[T Integer](t *testing.T, name string, blk *Block[T], r1, r2 [2]T) {
	t.Helper()
	var d Decoder[T]
	dst := make([]T, blk.N)
	Decompress(blk, dst)

	var sv SelectionVector
	d.DecompressMask(blk, r1[0], r1[1], &sv)
	if sv.Len() != blk.N {
		t.Fatalf("%s: mask covers %d rows, block has %d", name, sv.Len(), blk.N)
	}
	for i, v := range dst {
		want := v >= r1[0] && v <= r1[1]
		if sv.Test(i) != want {
			t.Fatalf("%s [%v,%v]: mask bit %d = %v, value %v", name, r1[0], r1[1], i, sv.Test(i), v)
		}
	}

	d.RefineMask(blk, r2[0], r2[1], &sv)
	var wantRows []int64
	var wantVals []T
	for i, v := range dst {
		if v >= r1[0] && v <= r1[1] && v >= r2[0] && v <= r2[1] {
			wantRows = append(wantRows, int64(i))
			wantVals = append(wantVals, v)
		}
	}
	if got := sv.Count(); got != len(wantRows) {
		t.Fatalf("%s [%v,%v]∧[%v,%v]: refined count %d, want %d",
			name, r1[0], r1[1], r2[0], r2[1], got, len(wantRows))
	}
	gotRows := sv.AppendRows(nil, 0)
	if !slices.Equal(gotRows, wantRows) {
		t.Fatalf("%s [%v,%v]∧[%v,%v]: rows mismatch\n got %v\nwant %v",
			name, r1[0], r1[1], r2[0], r2[1], gotRows, wantRows)
	}
	gotVals := d.DecompressSelected(blk, &sv, nil)
	if !slices.Equal(gotVals, wantVals) {
		t.Fatalf("%s [%v,%v]∧[%v,%v]: vals mismatch\n got %v\nwant %v",
			name, r1[0], r1[1], r2[0], r2[1], gotVals, wantVals)
	}

	// The same pair as a disjunction: a fresh mask of r1 unioned with r2
	// must select exactly the rows either oracle filter passes.
	var u SelectionVector
	d.DecompressMask(blk, r1[0], r1[1], &u)
	d.UnionMask(blk, r2[0], r2[1], &u)
	for i, v := range dst {
		want := (v >= r1[0] && v <= r1[1]) || (v >= r2[0] && v <= r2[1])
		if u.Test(i) != want {
			t.Fatalf("%s [%v,%v]∨[%v,%v]: union bit %d = %v, value %v",
				name, r1[0], r1[1], r2[0], r2[1], i, u.Test(i), v)
		}
	}
}

// maskRangePairs builds conjunction pairs out of rangesFor's shapes,
// including self-conjunction, disjoint (empty) pairs and inverted ranges.
func maskRangePairs[T Integer](vals []T) [][2][2]T {
	rs := rangesFor(vals)
	var pairs [][2][2]T
	for i, r1 := range rs {
		pairs = append(pairs, [2][2]T{r1, rs[(i+5)%len(rs)]})
	}
	pairs = append(pairs, [2][2]T{rs[0], rs[0]}) // everything ∧ everything
	return pairs
}

// TestMaskComposeOracle drives the bitmap composition path across every
// scheme, signed and unsigned, with and without exceptions.
func TestMaskComposeOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))

	t.Run("pfor-int64", func(t *testing.T) {
		for _, rate := range []float64{0, 0.02, 0.3} {
			for _, n := range []int{1, 31, 97, 128, 1000, 4099} {
				src := make([]int64, n)
				for i := range src {
					src[i] = 100 + rng.Int63n(1<<10)
					if rng.Float64() < rate {
						src[i] = rng.Int63n(1 << 40)
					}
				}
				blk := CompressPFOR(src, 100, 10)
				for _, pr := range maskRangePairs(src) {
					checkMaskCompose(t, "pfor", blk, pr[0], pr[1])
				}
			}
		}
	})

	t.Run("pfor-compulsory", func(t *testing.T) {
		src := make([]int64, 1000)
		for i := range src {
			src[i] = int64(i % 2)
			if i%200 == 0 {
				src[i] = 1 << 30
			}
		}
		blk := CompressPFOR(src, 0, 1)
		for _, pr := range maskRangePairs(src) {
			checkMaskCompose(t, "pfor-compulsory", blk, pr[0], pr[1])
		}
	})

	t.Run("pfor-delta", func(t *testing.T) {
		for _, rate := range []float64{0, 0.05} {
			src := make([]int64, 3000)
			acc := int64(0)
			for i := range src {
				acc += rng.Int63n(16)
				if rng.Float64() < rate {
					acc += rng.Int63n(1 << 20)
				}
				src[i] = acc
			}
			blk := CompressPFORDelta(src, 0, 0, 4)
			for _, pr := range maskRangePairs(src) {
				checkMaskCompose(t, "pfor-delta", blk, pr[0], pr[1])
			}
		}
	})

	t.Run("pdict", func(t *testing.T) {
		dict := []int64{40, 10, 30, 20, 70, 50}
		src := make([]int64, 2500)
		for i := range src {
			src[i] = dict[rng.Intn(len(dict))]
			if rng.Intn(29) == 0 {
				src[i] = 1000 + rng.Int63n(100)
			}
		}
		blk := CompressPDict(src, dict, 3)
		for _, pr := range maskRangePairs(src) {
			checkMaskCompose(t, "pdict", blk, pr[0], pr[1])
		}
		// Non-contiguous code image refined by a contiguous one and the
		// reverse — both orders of the PDICT bitmap/range kernels.
		checkMaskCompose(t, "pdict-mix", blk, [2]int64{10, 20}, [2]int64{70, 70})
		checkMaskCompose(t, "pdict-mix", blk, [2]int64{70, 70}, [2]int64{10, 20})
	})

	t.Run("pdict-uint16", func(t *testing.T) {
		dict := []uint16{5, 6, 7, 8, 1000}
		src := make([]uint16, 1300)
		for i := range src {
			src[i] = dict[rng.Intn(len(dict))]
			if i%53 == 0 {
				src[i] = 60000
			}
		}
		blk := CompressPDict(src, dict, 3)
		for _, pr := range maskRangePairs(src) {
			checkMaskCompose(t, "pdict-u16", blk, pr[0], pr[1])
		}
	})
}

// TestSelectionVector pins the bitmap type itself: shapes, tail
// invariants, AND, and row decoding.
func TestSelectionVector(t *testing.T) {
	var sv SelectionVector
	for _, n := range []int{0, 1, 31, 32, 33, 127, 128, 129} {
		sv.Fill(n)
		if sv.Len() != n || sv.Count() != n {
			t.Fatalf("Fill(%d): len=%d count=%d", n, sv.Len(), sv.Count())
		}
		if n > 0 && !sv.Any() {
			t.Fatalf("Fill(%d): Any() = false", n)
		}
		sv.Reset(n)
		if sv.Count() != 0 || sv.Any() {
			t.Fatalf("Reset(%d): count=%d any=%v", n, sv.Count(), sv.Any())
		}
	}

	sv.Reset(70)
	for _, i := range []int{0, 31, 32, 63, 69} {
		sv.Set(i)
		if !sv.Test(i) {
			t.Fatalf("Set(%d) not visible", i)
		}
	}
	if got := sv.AppendRows(nil, 100); !slices.Equal(got, []int64{100, 131, 132, 163, 169}) {
		t.Fatalf("AppendRows = %v", got)
	}
	sv.Clear(32)
	if sv.Test(32) || sv.Count() != 4 {
		t.Fatalf("Clear(32): test=%v count=%d", sv.Test(32), sv.Count())
	}

	var other SelectionVector
	other.Fill(70)
	other.Clear(0)
	sv.And(&other)
	if sv.Test(0) || sv.Count() != 3 {
		t.Fatalf("And: test(0)=%v count=%d", sv.Test(0), sv.Count())
	}

	var disj SelectionVector
	disj.Reset(70)
	disj.Set(0)
	disj.Set(69)
	sv.Or(&disj)
	if !sv.Test(0) || !sv.Test(69) || sv.Count() != 4 {
		t.Fatalf("Or: test(0)=%v test(69)=%v count=%d", sv.Test(0), sv.Test(69), sv.Count())
	}

	for _, op := range []func(*SelectionVector){sv.And, sv.Or} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("And/Or over mismatched lengths: expected panic")
				}
			}()
			var short SelectionVector
			short.Fill(10)
			op(&short)
		}()
	}
}

// TestDecompressSelectedCodes pins the group-key extraction contract:
// selected non-exception rows yield their dictionary code, selected
// exception slots — out-of-dict values AND the compulsory patch-list
// entries the gap limit forces, whose true value is in the dict — yield
// -1, and codes arrive in row order aligned with DecompressSelected.
func TestDecompressSelectedCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	dict := []int64{40, 10, 30, 20, 70, 50}
	src := make([]int64, 2500)
	outOfDict := make(map[int]bool)
	for i := range src {
		src[i] = dict[rng.Intn(len(dict))]
		if rng.Intn(31) == 0 {
			src[i] = 1000 + rng.Int63n(100)
			outOfDict[i] = true
		}
	}
	blk := CompressPDict(src, dict, 3)
	var d Decoder[int64]

	// The ground truth of which slots are exceptions comes from the block
	// itself: every patch-list position, compulsory or not.
	excSlot := make(map[int]bool)
	var xpos [GroupSize]int32
	for g := 0; g < blk.NumGroups(); g++ {
		for _, pos := range d.excPositions(blk, g, &xpos) {
			excSlot[int(pos)] = true
		}
	}
	for i := range src {
		if outOfDict[i] && !excSlot[i] {
			t.Fatalf("row %d holds out-of-dict value %d but is not an exception slot", i, src[i])
		}
	}

	var sv SelectionVector
	d.DecompressMask(blk, 0, 1<<40, &sv) // everything, exceptions included
	codes := d.DecompressSelectedCodes(blk, &sv, nil)
	vals := d.DecompressSelected(blk, &sv, nil)
	if len(codes) != len(src) || len(vals) != len(src) {
		t.Fatalf("selected %d codes / %d vals, want %d", len(codes), len(vals), len(src))
	}
	check := func(row int, code int32) {
		t.Helper()
		if excSlot[row] {
			if code != -1 {
				t.Fatalf("row %d: exception slot yielded code %d, want -1", row, code)
			}
		} else if code < 0 || dict[code] != src[row] {
			t.Fatalf("row %d: code %d, want the code of %d", row, code, src[row])
		}
	}
	for i, c := range codes {
		check(i, c)
		if vals[i] != src[i] {
			t.Fatalf("row %d: gathered %d, want %d", i, vals[i], src[i])
		}
	}

	// A sparse selection must keep codes and rows aligned.
	sv.Reset(blk.N)
	var wantRows []int
	for i := 0; i < blk.N; i += 7 {
		sv.Set(i)
		wantRows = append(wantRows, i)
	}
	codes = d.DecompressSelectedCodes(blk, &sv, codes[:0])
	if len(codes) != len(wantRows) {
		t.Fatalf("sparse selected %d codes, want %d", len(codes), len(wantRows))
	}
	for j, i := range wantRows {
		check(i, codes[j])
	}
}

// TestRefineMaskZeroGroupSkipsDecode pins the skip contract indirectly: a
// fully cleared selection refined by any predicate stays empty and
// gathers nothing, even over blocks with exceptions.
func TestRefineMaskZeroGroupSkipsDecode(t *testing.T) {
	src := make([]int64, 1000)
	for i := range src {
		src[i] = int64(i % 500)
		if i%100 == 0 {
			src[i] = 1 << 40
		}
	}
	var d Decoder[int64]
	for _, blk := range []*Block[int64]{
		CompressPFOR(src, 0, 9),
		CompressPFORDelta(src, 0, -(1 << 40), 12),
	} {
		var sv SelectionVector
		sv.Reset(blk.N)
		d.RefineMask(blk, 0, 1<<50, &sv)
		if sv.Any() {
			t.Fatalf("%s: refine of empty selection selected rows", blk.Scheme)
		}
		if got := d.DecompressSelected(blk, &sv, nil); len(got) != 0 {
			t.Fatalf("%s: gathered %d values through empty selection", blk.Scheme, len(got))
		}
	}
}

func BenchmarkRefineMask(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	src := make([]int64, 1<<16)
	for i := range src {
		src[i] = rng.Int63n(1 << 10)
		if rng.Intn(50) == 0 {
			src[i] = rng.Int63n(1 << 30)
		}
	}
	blk := CompressPFOR(src, 0, 10)
	var d Decoder[int64]
	var sv SelectionVector
	b.Run("refine-after-1pct", func(b *testing.B) {
		b.SetBytes(int64(len(src) * 8))
		for i := 0; i < b.N; i++ {
			d.DecompressMask(blk, 0, 10, &sv)
			d.RefineMask(blk, 5, 1000, &sv)
		}
	})
	b.Run("refine-after-all", func(b *testing.B) {
		b.SetBytes(int64(len(src) * 8))
		for i := 0; i < b.N; i++ {
			sv.Fill(blk.N)
			d.RefineMask(blk, 5, 1000, &sv)
		}
	})
}

package core

import (
	"fmt"

	"repro/internal/bitpack"
)

// This file implements the NAIVE escape-code scheme the paper benchmarks
// against in Figure 4: exceptions are marked with a reserved code
// (MAXCODE), and decompression tests for it with an if-then-else on every
// value. The branch is unpredictable at intermediate exception rates, which
// is exactly what the patched schemes eliminate.

// NaiveBlock is a block compressed with the NAIVE escape-code layout. The
// codable range shrinks by one (the escape value), and no patch lists or
// entry points exist — which also means NaiveBlock supports no fine-grained
// access and no compulsory-exception machinery.
type NaiveBlock[T Integer] struct {
	Scheme Scheme // SchemePFOR or SchemePDict (decode rule)
	B      uint
	N      int
	Base   T
	Dict   []T
	Codes  []uint32
	Exc    []T
}

// CompressNaive compresses src with frame-of-reference coding and escape
// codes.
func CompressNaive[T Integer](src []T, base T, b uint) *NaiveBlock[T] {
	checkWidth[T](b)
	checkLen(len(src))
	mask := typeMask[T]()
	escape := uint32(maxCode(b))
	maxc := maxCode(b) - 1 // escape value is reserved
	blk := &NaiveBlock[T]{Scheme: SchemePFOR, B: b, N: len(src), Base: base}
	codes := make([]uint32, len(src))
	for i, v := range src {
		ud := uint64(v-base) & mask
		if v < base || ud > maxc {
			codes[i] = escape
			blk.Exc = append(blk.Exc, v)
		} else {
			codes[i] = uint32(ud)
		}
	}
	blk.Codes = make([]uint32, bitpack.WordCount(len(src), b))
	bitpack.Pack(blk.Codes, codes, b)
	return blk
}

// CompressNaiveDict compresses src against dict with escape codes
// (the NAIVE counterpart of PDICT). dict may hold at most 1<<b - 1 values.
func CompressNaiveDict[T Integer](src []T, dict []T, b uint) *NaiveBlock[T] {
	checkWidth[T](b)
	checkLen(len(src))
	if len(dict) > (1<<b)-1 {
		panic("core: dictionary leaves no room for the escape code")
	}
	escape := uint32(maxCode(b))
	blk := &NaiveBlock[T]{Scheme: SchemePDict, B: b, N: len(src)}
	blk.Dict = make([]T, 1<<b)
	copy(blk.Dict, dict)
	lk := newDictLookup(dict)
	codes := make([]uint32, len(src))
	for i, v := range src {
		if code, ok := lk.find(v); ok {
			codes[i] = code
		} else {
			codes[i] = escape
			blk.Exc = append(blk.Exc, v)
		}
	}
	blk.Codes = make([]uint32, bitpack.WordCount(len(src), b))
	bitpack.Pack(blk.Codes, codes, b)
	return blk
}

// Decompress decodes the block with the NAIVE per-value branch:
//
//	if code[i] < MAXCODE { output[i] = DECODE(code[i]) }
//	else                 { output[i] = exception[j++]  }
//
// At exception rates near 50% this branch is unpredictable and Figure 4
// shows throughput collapsing on deeply pipelined CPUs.
func (blk *NaiveBlock[T]) Decompress(raw []uint32, dst []T) []T {
	if len(dst) < blk.N {
		panic(fmt.Sprintf("core: dst holds %d values, block has %d", len(dst), blk.N))
	}
	if len(raw) < blk.N {
		panic("core: raw scratch too small")
	}
	bitpack.Unpack(raw[:blk.N], blk.Codes, blk.B)
	escape := uint32(maxCode(blk.B))
	j := 0
	switch blk.Scheme {
	case SchemePFOR:
		base := blk.Base
		for i := 0; i < blk.N; i++ {
			if c := raw[i]; c < escape {
				dst[i] = base + T(c)
			} else {
				dst[i] = blk.Exc[j]
				j++
			}
		}
	case SchemePDict:
		dict := blk.Dict
		for i := 0; i < blk.N; i++ {
			if c := raw[i]; c < escape {
				dst[i] = dict[c]
			} else {
				dst[i] = blk.Exc[j]
				j++
			}
		}
	default:
		panic("core: naive decompress: bad scheme")
	}
	return dst[:blk.N]
}

// ExceptionCount returns the number of escaped values.
func (blk *NaiveBlock[T]) ExceptionCount() int { return len(blk.Exc) }

package core

import (
	"repro/internal/bitpack"
)

// finishBlock turns the output of an exception-detection pass into a
// finished block: it inserts compulsory exceptions, links each group's
// patch list through the code slots, records entry points, and bit-packs
// the code section.
//
// codes holds one candidate code per value (garbage at exception slots is
// fine — those slots are overwritten with patch-list gaps). miss holds the
// positions of the natural exceptions in ascending order. excValue returns
// the value to store in the exception section for a given position; for
// PFOR and PDICT this is the original input value, for PFOR-DELTA the raw
// delta.
func finishBlock[T Integer](blk *Block[T], codes []uint32, miss []int32, excValue func(pos int) T) {
	n := blk.N
	numGroups := (n + GroupSize - 1) / GroupSize
	blk.Entries = make([]uint32, numGroups)
	// maxGap is the largest representable distance between two linked
	// exceptions: the code slot stores gap-1 in b bits (Section 3.1,
	// "Compulsory Exceptions": "the maximum distance between elements in
	// the linked list of exceptions is 2^b").
	maxGap := int(min64(maxCode(blk.B)+1, GroupSize))

	mi := 0 // cursor into miss
	var positions []int32
	for g := 0; g < numGroups; g++ {
		gStart := g * GroupSize
		gEnd := gStart + GroupSize
		if gEnd > n {
			gEnd = n
		}

		// Collect this group's natural exceptions and interleave the
		// compulsory ones needed to keep patch-list gaps representable.
		// Lists restart at every entry point, so gaps before the first and
		// after the last exception of a group never need compulsories.
		positions = positions[:0]
		prev := -1
		for mi < len(miss) && int(miss[mi]) < gEnd {
			m := int(miss[mi])
			mi++
			if prev >= 0 {
				for m-prev > maxGap {
					prev += maxGap
					positions = append(positions, int32(prev))
				}
			}
			positions = append(positions, int32(m))
			prev = m
		}

		if len(positions) == 0 {
			blk.Entries[g] = uint32(len(blk.Exc)) << 7
			continue
		}
		blk.Entries[g] = uint32(int(positions[0])-gStart) | uint32(len(blk.Exc))<<7
		for k, pos := range positions {
			blk.Exc = append(blk.Exc, excValue(int(pos)))
			if k+1 < len(positions) {
				codes[pos] = uint32(int(positions[k+1])-int(pos)) - 1
			} else {
				// The last exception of a group terminates the list; its
				// code slot is never followed, zero keeps it packable.
				codes[pos] = 0
			}
		}
	}

	blk.Codes = make([]uint32, bitpack.WordCount(n, blk.B))
	bitpack.Pack(blk.Codes, codes, blk.B)
}

// patchGroups applies LOOP2 of the patch decompression: for every group it
// walks the linked exception list (gaps read from the unpacked raw codes)
// and overwrites the bogus decoded values with the stored exceptions.
// Iterating the list is a data hazard, not a control hazard — the loop body
// is branch-free.
func patchGroups[T Integer](blk *Block[T], raw []uint32, dst []T) {
	for g := 0; g < len(blk.Entries); g++ {
		es, ee := blk.groupExc(g)
		if es == ee {
			continue
		}
		pos := g*GroupSize + blk.patchStart(g)
		for k := es; k < ee; k++ {
			dst[pos] = blk.Exc[k]
			pos += int(raw[pos]) + 1
		}
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

package core

// This file implements PFOR (Patched Frame-of-Reference). Codes are
// unsigned offsets from a per-block base value. Unlike standard FOR, the
// base is not necessarily the block minimum: values below the base (or more
// than 2^b-1 above it) are stored as exceptions, which lets the analyzer
// center the codable window on the densest value stretch and handle
// outliers gracefully.

// CompressPFOR compresses src with Patched Frame-of-Reference using the
// given base value and code width b. It uses the double-cursor detection
// loop, which the paper found "the more stable algorithm on all platforms"
// (Section 3.1, Compression). The variants CompressPFORNaive and
// CompressPFORPred produce identical blocks with the other two
// detection-loop styles benchmarked in Figure 5.
func CompressPFOR[T Integer](src []T, base T, b uint) *Block[T] {
	return compressPFOR(src, base, b, detectPFORDC[T])
}

// CompressPFORPred compresses with the single-cursor predicated detection
// loop (Figure 5, "PRED").
func CompressPFORPred[T Integer](src []T, base T, b uint) *Block[T] {
	return compressPFOR(src, base, b, detectPFORPred[T])
}

// CompressPFORNaive compresses with the branchy if-then-else detection loop
// (Figure 5, "NAIVE"). The output block is identical; only the inner-loop
// style differs.
func CompressPFORNaive[T Integer](src []T, base T, b uint) *Block[T] {
	return compressPFOR(src, base, b, detectPFORBranchy[T])
}

func compressPFOR[T Integer](src []T, base T, b uint, detect func([]T, T, uint, []uint32, []int32) []int32) *Block[T] {
	checkWidth[T](b)
	checkLen(len(src))
	blk := &Block[T]{Scheme: SchemePFOR, B: b, N: len(src), Base: base}
	codes := make([]uint32, len(src))
	miss := detect(src, base, b, codes, make([]int32, len(src)))
	finishBlock(blk, codes, miss, func(pos int) T { return src[pos] })
	return blk
}

// detectPFORPred is the paper's LOOP1 with predication: the current
// position is always appended to the miss list and the list cursor is
// incremented with a boolean, turning the control dependency into a data
// dependency.
func detectPFORPred[T Integer](src []T, base T, b uint, codes []uint32, miss []int32) []int32 {
	mask := typeMask[T]()
	maxc := maxCode(b)
	j := 0
	for i := 0; i < len(src); i++ {
		v := src[i]
		ud := uint64(v-base) & mask
		codes[i] = uint32(ud)
		miss[j] = int32(i)
		j += b2i(v < base || ud > maxc)
	}
	return miss[:j]
}

// detectPFORDC is the double-cursor variant (Figure 5, "DC"): two cursors
// run through the input, one from the start and one from halfway, giving
// the CPU two independent dependency chains. The two miss lists are
// concatenated afterwards (every position in the second list is greater
// than every position in the first, so the result stays sorted).
func detectPFORDC[T Integer](src []T, base T, b uint, codes []uint32, miss []int32) []int32 {
	n := len(src)
	m := n / 2
	mask := typeMask[T]()
	maxc := maxCode(b)

	missLo := miss[:0]
	missHi := make([]int32, n-m)
	j0, jm := 0, 0
	for i := 0; i < m; i++ {
		v0 := src[i]
		vm := src[i+m]
		ud0 := uint64(v0-base) & mask
		udm := uint64(vm-base) & mask
		codes[i] = uint32(ud0)
		codes[i+m] = uint32(udm)
		miss[j0] = int32(i)
		missHi[jm] = int32(i + m)
		j0 += b2i(v0 < base || ud0 > maxc)
		jm += b2i(vm < base || udm > maxc)
	}
	if n%2 == 1 {
		// Odd tail: one straggler handled by the high cursor.
		i := n - 1
		v := src[i]
		ud := uint64(v-base) & mask
		codes[i] = uint32(ud)
		missHi[jm] = int32(i)
		jm += b2i(v < base || ud > maxc)
	}
	missLo = miss[:j0]
	return append(missLo, missHi[:jm]...)
}

// detectPFORBranchy is the NAIVE detection loop with an if-then-else in the
// hot path, kept as the Figure-5 baseline.
func detectPFORBranchy[T Integer](src []T, base T, b uint, codes []uint32, miss []int32) []int32 {
	mask := typeMask[T]()
	maxc := maxCode(b)
	j := 0
	for i := 0; i < len(src); i++ {
		v := src[i]
		ud := uint64(v-base) & mask
		if v < base || ud > maxc {
			miss[j] = int32(i)
			j++
		} else {
			codes[i] = uint32(ud)
		}
	}
	return miss[:j]
}

// decompressPFOR is the two-loop patch decompression of Section 3.1:
// LOOP1 decodes every slot regardless of whether it is an exception,
// LOOP2 patches the exceptions in.
func decompressPFOR[T Integer](blk *Block[T], raw []uint32, dst []T) {
	base := blk.Base
	// LOOP1: decode regardless.
	for i, c := range raw[:blk.N] {
		dst[i] = base + T(c)
	}
	// LOOP2: patch it up.
	patchGroups(blk, raw, dst)
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

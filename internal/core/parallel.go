package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelDo runs tasks 0..n-1 across up to workers goroutines. Tasks are
// claimed dynamically off a shared atomic counter (block-granular work
// stealing), so uneven task costs still balance across the pool. fn
// receives the claiming worker's index (0..workers-1) — the hook for
// per-worker scratch state — and the task index. Returning false stops the
// pool: no new tasks are claimed, though tasks already running finish.
// ParallelDo returns once every claimed task has finished.
//
// workers <= 1 (or n <= 1) degenerates to a sequential loop on the calling
// goroutine with worker index 0.
func ParallelDo(workers, n int, fn func(worker, task int) bool) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for t := 0; t < n; t++ {
			if !fn(0, t) {
				return
			}
		}
		return
	}
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				t := int(next.Add(1)) - 1
				if t >= n {
					return
				}
				if !fn(w, t) {
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// DecompressParallel decodes blk into dst using up to workers goroutines,
// splitting the block on entry-point (group) boundaries. This implements
// the paper's closing observation that "with the upcoming families of
// multi-core CPUs ... our high-performance (de-)compression routines can
// already improve this bandwidth on parallel architectures": every group
// is self-contained (its patch list restarts at the entry point, and
// PFOR-DELTA groups carry their running totals), so groups decode
// independently with zero coordination beyond the final join.
//
// workers <= 0 uses GOMAXPROCS. For small blocks the function falls back
// to the sequential path: goroutine fan-out only pays off past a few
// hundred groups.
func DecompressParallel[T Integer](blk *Block[T], dst []T, workers int) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numGroups := blk.NumGroups()
	if workers == 1 || numGroups < 4*workers || numGroups < 8 {
		return Decompress(blk, dst)
	}
	if len(dst) < blk.N {
		panic("core: dst too small")
	}

	groupsPer := (numGroups + workers - 1) / workers
	numChunks := (numGroups + groupsPer - 1) / groupsPer
	decs := make([]Decoder[T], workers)
	ParallelDo(workers, numChunks, func(w, c int) bool {
		lo := c * groupsPer * GroupSize
		hi := min((c+1)*groupsPer*GroupSize, blk.N)
		decs[w].DecompressRange(blk, dst[lo:hi], lo, hi)
		return true
	})
	return dst[:blk.N]
}

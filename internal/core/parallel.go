package core

import (
	"runtime"
	"sync"
)

// DecompressParallel decodes blk into dst using up to workers goroutines,
// splitting the block on entry-point (group) boundaries. This implements
// the paper's closing observation that "with the upcoming families of
// multi-core CPUs ... our high-performance (de-)compression routines can
// already improve this bandwidth on parallel architectures": every group
// is self-contained (its patch list restarts at the entry point, and
// PFOR-DELTA groups carry their running totals), so groups decode
// independently with zero coordination beyond the final join.
//
// workers <= 0 uses GOMAXPROCS. For small blocks the function falls back
// to the sequential path: goroutine fan-out only pays off past a few
// hundred groups.
func DecompressParallel[T Integer](blk *Block[T], dst []T, workers int) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numGroups := blk.NumGroups()
	if workers == 1 || numGroups < 4*workers || numGroups < 8 {
		return Decompress(blk, dst)
	}
	if len(dst) < blk.N {
		panic("core: dst too small")
	}

	groupsPer := (numGroups + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		gLo := w * groupsPer
		if gLo >= numGroups {
			break
		}
		gHi := min(gLo+groupsPer, numGroups)
		lo := gLo * GroupSize
		hi := min(gHi*GroupSize, blk.N)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var d Decoder[T]
			d.DecompressRange(blk, dst[lo:hi], lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return dst[:blk.N]
}

package core

import (
	"math"
	"slices"
	"unsafe"
)

// This file implements the compression-mode analysis of Section 3.1
// ("Choosing Compression Schemes"): given a sorted sample of a column, find
// for each scheme the parameters that minimize the modeled compressed size
// b + E(b)*8*sizeof(V) bits per value, then pick the cheapest scheme. The
// complexity is O(s log s) in the sample size s, dominated by the sort.

// DefaultSampleSize is the sample the paper suggests for mode analysis
// ("e.g. s=64K values").
const DefaultSampleSize = 64 * 1024

// Choice is the outcome of compression-mode analysis: a scheme with its
// parameters and the modeled cost in bits per value.
type Choice[T Integer] struct {
	Scheme    Scheme
	B         uint
	Base      T   // PFOR: frame base
	DeltaBase T   // PFOR-DELTA: delta-frame base
	Dict      []T // PDICT: dictionary (most frequent sample values)
	// Bits is the modeled compressed size in bits per value, including
	// projected exceptions (with the compulsory-exception correction of
	// Figure 6).
	Bits float64
	// ExceptionRate is the projected effective exception rate E'.
	ExceptionRate float64
}

// Compress compresses src with the chosen scheme and parameters.
// For SchemeNone it returns nil (store verbatim).
func (c Choice[T]) Compress(src []T) *Block[T] {
	switch c.Scheme {
	case SchemePFOR:
		return CompressPFOR(src, c.Base, c.B)
	case SchemePFORDelta:
		if len(src) == 0 {
			return CompressPFORDelta(src, 0, c.DeltaBase, c.B)
		}
		// Chain the frame so that the first delta equals DeltaBase and
		// codes to zero.
		return CompressPFORDelta(src, src[0]-c.DeltaBase, c.DeltaBase, c.B)
	case SchemePDict:
		return CompressPDict(src, c.Dict, c.B)
	case SchemeNone:
		return nil
	}
	panic("core: cannot compress scheme " + c.Scheme.String())
}

// CompulsoryExceptionRate returns the effective exception rate E' after
// accounting for compulsory exceptions, per the paper's formula
//
//	E' = MAX(E, (128E-1)/(128E) * 2^-b)
//
// (Figure 6). With b <= 4 and small E the linked list cannot span the
// gaps between natural exceptions, and E' is dominated by the 2^-b term;
// for b > 4 the effect is negligible.
func CompulsoryExceptionRate(e float64, b uint) float64 {
	if e <= 0 {
		return 0
	}
	t := (128*e - 1) / (128 * e) * math.Pow(2, -float64(b))
	return math.Max(e, t)
}

// AnalyzePFOR finds the (base, b) pair minimizing modeled PFOR size over
// the sample. It implements PFOR_ANALYZE_BITS: one pass over the sorted
// sample per bit width, finding the longest stretch of values whose spread
// is representable in b bits; everything outside the stretch becomes an
// exception.
func AnalyzePFOR[T Integer](sample []T) Choice[T] {
	c := Choice[T]{Scheme: SchemePFOR, B: 1, Bits: math.Inf(1)}
	if len(sample) == 0 {
		c.Bits = 0
		return c
	}
	sorted := slices.Clone(sample)
	slices.Sort(sorted)
	valueBits := typeBits[T]()
	s := float64(len(sorted))
	for b := uint(1); b <= min(32, valueBits); b++ {
		start, length := pforAnalyzeBits(sorted, b)
		e := (s - float64(length)) / s
		ePrime := CompulsoryExceptionRate(e, b)
		bits := modelBits[T](b, ePrime)
		if bits < c.Bits {
			c.B, c.Base, c.Bits, c.ExceptionRate = b, sorted[start], bits, ePrime
		}
		if length == len(sorted) {
			break // wider codes can only cost more once everything fits
		}
	}
	return c
}

// pforAnalyzeBits is the paper's PFOR_ANALYZE_BITS: it returns the start
// index and length of the longest stretch of the sorted sample whose
// first-to-last difference is representable in b bits.
func pforAnalyzeBits[T Integer](sorted []T, b uint) (start, length int) {
	mask := typeMask[T]()
	maxc := maxCode(b)
	length = 1
	lo := 0
	for hi := 0; hi < len(sorted); hi++ {
		for uint64(sorted[hi]-sorted[lo])&mask > maxc {
			lo++
		}
		if hi-lo+1 > length {
			start, length = lo, hi-lo+1
		}
	}
	return start, length
}

// AnalyzePFORDelta runs the PFOR analysis on the sorted consecutive
// differences of the sample, yielding the delta-frame base and width.
func AnalyzePFORDelta[T Integer](sample []T) Choice[T] {
	c := Choice[T]{Scheme: SchemePFORDelta, B: 1, Bits: math.Inf(1)}
	if len(sample) < 2 {
		c.Bits = 0
		return c
	}
	deltas := make([]T, len(sample)-1)
	for i := 1; i < len(sample); i++ {
		deltas[i-1] = sample[i] - sample[i-1]
	}
	sub := AnalyzePFOR(deltas)
	c.B, c.DeltaBase, c.Bits, c.ExceptionRate = sub.B, sub.Base, sub.Bits, sub.ExceptionRate
	return c
}

// MaxDictBits caps PDICT dictionaries at 2^16 entries; beyond that the
// dictionary itself stops paying for its storage on block-sized data.
const MaxDictBits = 16

// AnalyzePDict builds a frequency histogram of the sample (one pass over
// the sorted sample), re-sorts it descending on frequency, and finds the b
// for which coding the 2^b most frequent values minimizes the modeled size.
// The exception rate for width b is 1 - (coverage of the top 2^b values).
func AnalyzePDict[T Integer](sample []T) Choice[T] {
	c := Choice[T]{Scheme: SchemePDict, B: 1, Bits: math.Inf(1)}
	if len(sample) == 0 {
		c.Bits = 0
		return c
	}
	sorted := slices.Clone(sample)
	slices.Sort(sorted)

	type bucket struct {
		value T
		count int
	}
	var hist []bucket
	run := 1
	for i := 1; i <= len(sorted); i++ {
		if i < len(sorted) && sorted[i] == sorted[i-1] {
			run++
			continue
		}
		hist = append(hist, bucket{sorted[i-1], run})
		run = 1
	}
	slices.SortFunc(hist, func(a, b bucket) int { return b.count - a.count })

	// Prefix coverage: covered[k] = sample values covered by the top k
	// histogram buckets.
	covered := make([]int, len(hist)+1)
	for i, h := range hist {
		covered[i+1] = covered[i] + h.count
	}

	s := float64(len(sorted))
	valueBits := typeBits[T]()
	bestB := uint(0)
	for b := uint(1); b <= min(MaxDictBits, valueBits); b++ {
		k := min(1<<b, len(hist))
		e := (s - float64(covered[k])) / s
		ePrime := CompulsoryExceptionRate(e, b)
		// Amortize dictionary storage over the sample: k entries of
		// sizeof(T) bytes.
		dictBits := float64(k) * 8 * float64(unsafe.Sizeof(sorted[0])) / s
		bits := modelBits[T](b, ePrime) + dictBits
		if bits < c.Bits {
			bestB, c.Bits, c.ExceptionRate = b, bits, ePrime
		}
		if k == len(hist) {
			break
		}
	}
	c.B = bestB
	k := min(1<<bestB, len(hist))
	c.Dict = make([]T, k)
	for i := 0; i < k; i++ {
		c.Dict[i] = hist[i].value
	}
	return c
}

// Choose runs all applicable analyses on the sample and returns the
// cheapest scheme, falling back to SchemeNone when nothing beats verbatim
// storage.
func Choose[T Integer](sample []T) Choice[T] {
	var v T
	rawBits := float64(unsafe.Sizeof(v)) * 8
	best := Choice[T]{Scheme: SchemeNone, Bits: rawBits}
	for _, c := range []Choice[T]{AnalyzePFOR(sample), AnalyzePFORDelta(sample), AnalyzePDict(sample)} {
		// Entry points cost 0.25 bits/value (0.5 for PFOR-DELTA, which
		// also stores running totals).
		overhead := 0.25
		if c.Scheme == SchemePFORDelta {
			overhead = 0.5
		}
		if c.Bits+overhead < best.Bits {
			best = c
			best.Bits += overhead
		}
	}
	return best
}

// Sample extracts an analysis sample of at most maxN values from src as a
// set of contiguous runs spread across the input. Runs (rather than strided
// single values) keep consecutive-difference statistics intact, which the
// PFOR-DELTA analysis depends on: a strided sample of a dense sequential
// key would see deltas of `stride` instead of 1 and mis-parameterize the
// codec.
func Sample[T Integer](src []T, maxN int) []T {
	if len(src) <= maxN {
		return src
	}
	runs := 64
	if runs > maxN {
		runs = maxN
	}
	runLen := maxN / runs
	stride := len(src) / runs
	out := make([]T, 0, runs*runLen)
	for r := 0; r < runs; r++ {
		lo := r * stride
		out = append(out, src[lo:lo+runLen]...)
	}
	return out
}

// modelBits is the paper's cost model: b bits for every code plus
// 8*sizeof(V) bits for each projected exception.
func modelBits[T Integer](b uint, excRate float64) float64 {
	var v T
	return float64(b) + excRate*8*float64(unsafe.Sizeof(v))
}

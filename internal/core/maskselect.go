package core

// Selection-vector composition: the compressed-domain predicate machinery
// of select.go re-targeted at an explicit SelectionVector, so predicates
// over several columns compose before anything is materialized. A
// conjunctive scan runs DecompressMask for its most selective predicate,
// RefineMask for each further predicate (same-column or — via the shared
// block geometry — a different column's block), and only once the bitmap
// is final does DecompressSelected touch the surviving rows. RefineMask is
// where the composition pays: groups whose running mask is already empty
// are skipped before a single code is extracted, so each predicate's cost
// shrinks with the selectivity of the ones before it.

import (
	"fmt"
	"math/bits"

	"repro/internal/bitpack"
)

// DecompressMask evaluates the inclusive range [lo, hi] over blk and fills
// sv with the block-level match bitmap: bit i set iff value i lies in the
// range. No value is materialized — PFOR and contiguous PDICT predicates
// run entirely in the packed code domain, non-contiguous PDICT tests codes
// against a per-block bitmap, PFOR-DELTA falls back to a fused per-group
// decode+compare — and exception slots are judged on their true values.
// An inverted range (lo > hi) selects nothing.
func (d *Decoder[T]) DecompressMask(blk *Block[T], lo, hi T, sv *SelectionVector) {
	sv.size(blk.N)
	if blk.N == 0 {
		return
	}
	if lo > hi {
		clear(sv.words)
		return
	}
	s := d.selectScratch()
	d.buildMask(blk, lo, hi, sv.words, s)
}

// buildMask fills mask — (blk.N+31)/32 words — with the match bitmap of
// the non-inverted range [lo, hi] over blk: the scheme dispatch shared by
// DecompressMask (targeting a SelectionVector) and UnionMask (targeting
// the scratch mask before the OR fold). Every word is assigned, so the
// destination needs no clearing, and tail bits beyond blk.N stay zero.
func (d *Decoder[T]) buildMask(blk *Block[T], lo, hi T, mask []uint32, s *selScratch[T]) {
	switch blk.Scheme {
	case SchemePFOR:
		clo, span, ok := pforCodeRange(blk.Base, blk.B, lo, hi)
		d.blockMasks(blk, clo, span, ok, mask)
		d.maskFixExceptions(blk, lo, hi, mask, s)
	case SchemePDict:
		clo, span, ok, contiguous := d.pdictCodeMatch(blk, lo, hi, s)
		if contiguous {
			d.blockMasks(blk, clo, span, ok, mask)
		} else {
			d.bitmapMasks(blk, mask, s)
		}
		d.maskFixExceptions(blk, lo, hi, mask, s)
	case SchemePFORDelta:
		d.maskPFORDelta(blk, lo, hi, mask, s)
	default:
		panic("core: cannot select on scheme " + blk.Scheme.String())
	}
}

// UnionMask ORs the match bitmap of the inclusive range [lo, hi] over blk
// into sv — the disjunction counterpart of RefineMask. The branch's
// bitmap is built in the decoder's scratch mask with the same kernels
// DecompressMask uses (exception slots judged on their true values, never
// on their bogus gap codes), then folded into sv one OR per 32 rows. An
// inverted range (lo > hi) adds nothing. sv must cover exactly blk.N rows.
func (d *Decoder[T]) UnionMask(blk *Block[T], lo, hi T, sv *SelectionVector) {
	if sv.n != blk.N {
		panic(fmt.Sprintf("core: selection of %d rows unioned against block of %d", sv.n, blk.N))
	}
	if blk.N == 0 || lo > hi {
		return
	}
	s := d.selectScratch()
	tmp := s.maskBuf(blk.N)
	d.buildMask(blk, lo, hi, tmp, s)
	for i, w := range tmp {
		sv.words[i] |= w
	}
}

// maskFixExceptions resolves exception slots of a freshly built mask: the
// bogus patch-list gap codes produced whatever bits the kernels computed,
// so each exception slot is overwritten with the verdict on its true value.
func (d *Decoder[T]) maskFixExceptions(blk *Block[T], lo, hi T, mask []uint32, s *selScratch[T]) {
	numGroups := blk.NumGroups()
	for g := 0; g < numGroups; g++ {
		es, ee := blk.groupExc(g)
		if es == ee {
			continue
		}
		all := d.excPositions(blk, g, &s.xpos)
		for i, pos := range all {
			if ev := blk.Exc[es+i]; ev >= lo && ev <= hi {
				mask[pos>>5] |= 1 << (uint(pos) & 31)
			} else {
				mask[pos>>5] &^= 1 << (uint(pos) & 31)
			}
		}
	}
}

// allZero reports whether no bit is set in words.
func allZero(words []uint32) bool {
	for _, w := range words {
		if w != 0 {
			return false
		}
	}
	return true
}

// RefineMask intersects sv — a selection over exactly blk.N rows, e.g.
// another predicate's DecompressMask output or a different column's bitmap
// under shared block geometry — with the match bitmap of [lo, hi] over
// blk. Groups whose running mask is already empty are skipped without
// extracting a code (or, for PFOR-DELTA, without decoding the group), so
// refinement gets cheaper the more selective the earlier predicates were.
// An inverted range empties the selection.
func (d *Decoder[T]) RefineMask(blk *Block[T], lo, hi T, sv *SelectionVector) {
	if sv.n != blk.N {
		panic(fmt.Sprintf("core: selection of %d rows refined against block of %d", sv.n, blk.N))
	}
	if blk.N == 0 {
		return
	}
	if lo > hi {
		clear(sv.words)
		return
	}
	s := d.selectScratch()
	switch blk.Scheme {
	case SchemePFOR:
		clo, span, ok := pforCodeRange(blk.Base, blk.B, lo, hi)
		d.refineCoded(blk, lo, hi, clo, span, ok, true, sv.words, s)
	case SchemePDict:
		clo, span, ok, contiguous := d.pdictCodeMatch(blk, lo, hi, s)
		d.refineCoded(blk, lo, hi, clo, span, ok, contiguous, sv.words, s)
	case SchemePFORDelta:
		d.refinePFORDelta(blk, lo, hi, sv.words, s)
	default:
		panic("core: cannot select on scheme " + blk.Scheme.String())
	}
}

// refineCoded is the PFOR / PDICT refinement walk. Per 128-value group it
// captures which still-selected exception slots truly match (their codes
// are bogus patch-list gaps, so the kernels must not judge them), runs the
// branch-free refine kernels over the packed codes — a contiguous code
// range uses refmask32, a non-contiguous PDICT predicate the per-code
// bitmap — and then overwrites the exception slots with the captured
// verdicts.
func (d *Decoder[T]) refineCoded(blk *Block[T], lo, hi T, clo, span uint32, codable, contiguous bool, mask []uint32, s *selScratch[T]) {
	raw := d.scratch(GroupSize)
	numGroups := blk.NumGroups()
	for g := 0; g < numGroups; g++ {
		gStart, gEnd := groupBounds(blk, g)
		n := gEnd - gStart
		w0 := gStart >> 5
		w1 := (gEnd + 31) >> 5
		if allZero(mask[w0:w1]) {
			continue
		}
		es, ee := blk.groupExc(g)
		var all, keep []int32
		if es != ee {
			all = d.excPositions(blk, g, &s.xpos)
			nk := 0
			for i, pos := range all {
				if mask[pos>>5]>>(uint(pos)&31)&1 != 0 {
					if ev := blk.Exc[es+i]; ev >= lo && ev <= hi {
						s.epos[nk] = pos
						nk++
					}
				}
			}
			keep = s.epos[:nk]
		}
		switch {
		case !codable:
			clear(mask[w0:w1])
		case contiguous:
			full := n / 32
			b := int(blk.B)
			bitpack.RefineMask(mask[w0:w0+full], blk.Codes[4*g*b:], blk.B, clo, span)
			if tail := n % 32; tail > 0 {
				mask[w0+full] = bitpack.RefineMaskTail(blk.Codes[(4*g+full)*b:], tail, blk.B, clo, span, mask[w0+full])
			}
		default:
			// Non-contiguous PDICT: unpack the group once and test each
			// still-live word's codes against the per-code bitmap.
			unpackGroup(blk, g, n, raw)
			bm := s.bm
			for i := 0; i < n; i += 32 {
				w := w0 + i>>5
				m := mask[w]
				if m == 0 {
					continue
				}
				var match uint32
				lim := min(32, n-i)
				for j := 0; j < lim; j++ {
					c := raw[i+j]
					match |= uint32(bm[c>>6]>>(c&63)&1) << j
				}
				mask[w] = m & match
			}
		}
		for _, pos := range all {
			mask[pos>>5] &^= 1 << (uint(pos) & 31)
		}
		for _, pos := range keep {
			mask[pos>>5] |= 1 << (uint(pos) & 31)
		}
	}
}

// maskPFORDelta emits the match bitmap of a PFOR-DELTA block: deltas have
// no fixed code image of a value range, so each group decodes through its
// running total and the compare results accumulate into mask words.
func (d *Decoder[T]) maskPFORDelta(blk *Block[T], lo, hi T, mask []uint32, s *selScratch[T]) {
	raw := d.scratch(GroupSize)
	numGroups := blk.NumGroups()
	for g := 0; g < numGroups; g++ {
		gStart, gEnd := groupBounds(blk, g)
		n := gEnd - gStart
		unpackGroup(blk, g, n, raw)
		decompressPFORDeltaGroup(blk, g, raw, s.vbuf[:n])
		w0 := gStart >> 5
		for i := 0; i < n; i += 32 {
			var m uint32
			lim := min(32, n-i)
			for j := 0; j < lim; j++ {
				v := s.vbuf[i+j]
				m |= uint32(b2i(v >= lo && v <= hi)) << j
			}
			mask[w0+i>>5] = m
		}
	}
}

// refinePFORDelta intersects mask with a PFOR-DELTA predicate, decoding
// only the groups that still have surviving rows.
func (d *Decoder[T]) refinePFORDelta(blk *Block[T], lo, hi T, mask []uint32, s *selScratch[T]) {
	raw := d.scratch(GroupSize)
	numGroups := blk.NumGroups()
	for g := 0; g < numGroups; g++ {
		gStart, gEnd := groupBounds(blk, g)
		n := gEnd - gStart
		w0 := gStart >> 5
		w1 := (gEnd + 31) >> 5
		if allZero(mask[w0:w1]) {
			continue
		}
		unpackGroup(blk, g, n, raw)
		decompressPFORDeltaGroup(blk, g, raw, s.vbuf[:n])
		for i := 0; i < n; i += 32 {
			w := w0 + i>>5
			m := mask[w]
			if m == 0 {
				continue
			}
			var match uint32
			lim := min(32, n-i)
			for j := 0; j < lim; j++ {
				v := s.vbuf[i+j]
				match |= uint32(b2i(v >= lo && v <= hi)) << j
			}
			mask[w] = m & match
		}
	}
}

// DecompressSelected appends the values of blk at the rows selected by sv
// to vals, in row order, and returns the extended slice — the
// materialization step after a multi-predicate bitmap has been composed.
// Only groups with surviving rows are touched: PFOR and PDICT extract one
// code per selected row (exception slots read their true values from the
// exception section), PFOR-DELTA decodes just the groups that still
// matter. sv must cover exactly blk.N rows.
func (d *Decoder[T]) DecompressSelected(blk *Block[T], sv *SelectionVector, vals []T) []T {
	if sv.n != blk.N {
		panic(fmt.Sprintf("core: selection of %d rows gathered from block of %d", sv.n, blk.N))
	}
	count := sv.Count()
	if count == 0 {
		return vals
	}
	k := len(vals)
	vals = growTo(vals, k+count)
	s := d.selectScratch()
	mask := sv.words
	delta := blk.Scheme == SchemePFORDelta
	pdict := blk.Scheme == SchemePDict
	if !delta && !pdict && blk.Scheme != SchemePFOR {
		panic("core: cannot select on scheme " + blk.Scheme.String())
	}
	raw := d.scratch(GroupSize)
	base := blk.Base
	dict := blk.Dict
	b := blk.B
	codes := blk.Codes
	numGroups := blk.NumGroups()
	for g := 0; g < numGroups; g++ {
		gStart, gEnd := groupBounds(blk, g)
		w0 := gStart >> 5
		w1 := (gEnd + 31) >> 5
		if allZero(mask[w0:w1]) {
			continue
		}
		if delta {
			n := gEnd - gStart
			unpackGroup(blk, g, n, raw)
			decompressPFORDeltaGroup(blk, g, raw, s.vbuf[:n])
			for w := w0; w < w1; w++ {
				vb := w << 5
				for m := mask[w]; m != 0; m &= m - 1 {
					p := vb + bits.TrailingZeros32(m)
					vals[k] = s.vbuf[p-gStart]
					k++
				}
			}
			continue
		}
		es, ee := blk.groupExc(g)
		if es == ee {
			for w := w0; w < w1; w++ {
				vb := w << 5
				for m := mask[w]; m != 0; m &= m - 1 {
					p := vb + bits.TrailingZeros32(m)
					c := bitpack.CodeAt(codes, p, b)
					if pdict {
						vals[k] = dict[c]
					} else {
						vals[k] = base + T(c)
					}
					k++
				}
			}
			continue
		}
		// Exception slots hold bogus gap codes; a selected exception row
		// reads its true value from the exception section. The merge walks
		// the group's (ordered) exception positions alongside the ordered
		// set bits.
		all := d.excPositions(blk, g, &s.xpos)
		xi := 0
		for w := w0; w < w1; w++ {
			vb := w << 5
			for m := mask[w]; m != 0; m &= m - 1 {
				p := vb + bits.TrailingZeros32(m)
				for xi < len(all) && int(all[xi]) < p {
					xi++
				}
				if xi < len(all) && int(all[xi]) == p {
					vals[k] = blk.Exc[es+xi]
				} else {
					c := bitpack.CodeAt(codes, p, b)
					if pdict {
						vals[k] = dict[c]
					} else {
						vals[k] = base + T(c)
					}
				}
				k++
			}
		}
	}
	return vals[:k]
}

// DecompressSelectedCodes appends, for every row selected by sv in row
// order, the row's PDICT dictionary code — or -1 for exception slots,
// whose packed codes are bogus patch-list gaps and whose true values live
// only in the exception section. This is the group-key extraction of
// code-space grouped aggregation: keys stay in the tiny code domain, the
// caller aggregates per code and decodes the dictionary once at the end,
// handling the rare -1 rows on their materialized values. blk must be
// PDICT; sv must cover exactly blk.N rows.
func (d *Decoder[T]) DecompressSelectedCodes(blk *Block[T], sv *SelectionVector, codes []int32) []int32 {
	if blk.Scheme != SchemePDict {
		panic("core: DecompressSelectedCodes on scheme " + blk.Scheme.String())
	}
	if sv.n != blk.N {
		panic(fmt.Sprintf("core: selection of %d rows gathered from block of %d", sv.n, blk.N))
	}
	count := sv.Count()
	if count == 0 {
		return codes
	}
	k := len(codes)
	if cap(codes) < k+count {
		out := make([]int32, k, max(k+count, 2*cap(codes)))
		copy(out, codes)
		codes = out
	}
	codes = codes[:k+count]
	s := d.selectScratch()
	mask := sv.words
	packed := blk.Codes
	b := blk.B
	numGroups := blk.NumGroups()
	for g := 0; g < numGroups; g++ {
		gStart, gEnd := groupBounds(blk, g)
		w0 := gStart >> 5
		w1 := (gEnd + 31) >> 5
		if allZero(mask[w0:w1]) {
			continue
		}
		es, ee := blk.groupExc(g)
		if es == ee {
			for w := w0; w < w1; w++ {
				vb := w << 5
				for m := mask[w]; m != 0; m &= m - 1 {
					p := vb + bits.TrailingZeros32(m)
					codes[k] = int32(bitpack.CodeAt(packed, p, b))
					k++
				}
			}
			continue
		}
		all := d.excPositions(blk, g, &s.xpos)
		xi := 0
		for w := w0; w < w1; w++ {
			vb := w << 5
			for m := mask[w]; m != 0; m &= m - 1 {
				p := vb + bits.TrailingZeros32(m)
				for xi < len(all) && int(all[xi]) < p {
					xi++
				}
				if xi < len(all) && int(all[xi]) == p {
					codes[k] = -1
				} else {
					codes[k] = int32(bitpack.CodeAt(packed, p, b))
				}
				k++
			}
		}
	}
	return codes[:k]
}

// growTo extends vals to length n, reusing capacity when possible.
func growTo[T Integer](vals []T, n int) []T {
	if cap(vals) >= n {
		return vals[:n]
	}
	out := make([]T, n, max(n, 2*cap(vals)))
	copy(out, vals)
	return out
}

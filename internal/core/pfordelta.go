package core

// This file implements PFOR-DELTA: PFOR applied to the differences between
// subsequent values. It is the scheme of choice for monotonic or
// near-monotonic sequences — clustered keys, dates, and especially the
// d-gaps of inverted files (Section 5). Decompression patches the delta
// array first and only then computes the running sum; in the paper's words
// (footnote 3) LOOP1 and LOOP2 are swapped, "otherwise the bogus codes of
// the exceptions mess up the sequence of differences".

// CompressPFORDelta compresses src as PFOR over its consecutive
// differences. base is the value preceding src[0] (use 0, or the last value
// of the previous block when chaining blocks); deltaBase is the
// frame-of-reference value for the delta domain (0 for monotonic sequences,
// possibly negative for noisy ones); b is the code width.
func CompressPFORDelta[T Integer](src []T, base, deltaBase T, b uint) *Block[T] {
	checkWidth[T](b)
	checkLen(len(src))
	blk := &Block[T]{Scheme: SchemePFORDelta, B: b, N: len(src), Base: base, DeltaBase: deltaBase}

	n := len(src)
	deltas := make([]T, n)
	prev := base
	for i := 0; i < n; i++ {
		deltas[i] = src[i] - prev // wraps; the running sum wraps back
		prev = src[i]
	}

	// Running totals per group enable fine-grained access: Totals[g] is
	// the reconstructed value just before group g starts.
	numGroups := (n + GroupSize - 1) / GroupSize
	blk.Totals = make([]T, numGroups)
	for g := 0; g < numGroups; g++ {
		if g == 0 {
			blk.Totals[g] = base
		} else {
			blk.Totals[g] = src[g*GroupSize-1]
		}
	}

	codes := make([]uint32, n)
	miss := detectPFORDC(deltas, deltaBase, b, codes, make([]int32, n))
	// Exceptions store the raw delta (paper: "PFOR-DELTA:
	// ENCODE(input[cur])" — the delta-domain value, not the running sum).
	finishBlock(blk, codes, miss, func(pos int) T { return deltas[pos] })
	return blk
}

// decompressPFORDelta reverses CompressPFORDelta: decode deltas, patch the
// delta array, then integrate.
func decompressPFORDelta[T Integer](blk *Block[T], raw []uint32, dst []T) {
	db := blk.DeltaBase
	// Decode all delta slots regardless.
	for i, c := range raw[:blk.N] {
		dst[i] = db + T(c)
	}
	// Patch the delta array before integration.
	patchGroups(blk, raw, dst)
	// Running sum.
	acc := blk.Base
	for i := range dst[:blk.N] {
		acc += dst[i]
		dst[i] = acc
	}
}

// decompressPFORDeltaGroup decodes exactly one 128-value group into dst
// (len >= group length), used by fine-grained access. The paper notes that
// fine-grained PFOR-DELTA access "requires decompressing a vector of 128
// values"; the per-group running total makes that self-contained.
func decompressPFORDeltaGroup[T Integer](blk *Block[T], g int, raw []uint32, dst []T) int {
	gStart := g * GroupSize
	gEnd := gStart + GroupSize
	if gEnd > blk.N {
		gEnd = blk.N
	}
	n := gEnd - gStart
	db := blk.DeltaBase
	for i := 0; i < n; i++ {
		dst[i] = db + T(raw[i])
	}
	es, ee := blk.groupExc(g)
	if es != ee {
		pos := blk.patchStart(g)
		for k := es; k < ee; k++ {
			dst[pos] = blk.Exc[k]
			pos += int(raw[pos]) + 1
		}
	}
	acc := blk.Totals[g]
	for i := 0; i < n; i++ {
		acc += dst[i]
		dst[i] = acc
	}
	return n
}

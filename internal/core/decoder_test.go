package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGetMatchesDecompressPFOR(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, rate := range []float64{0, 0.05, 0.3, 1.0} {
		src := synthPFOR(rng, 3000, 7, 6, rate)
		blk := CompressPFOR(src, 7, 6)
		full := make([]int64, len(src))
		Decompress(blk, full)
		var d Decoder[int64]
		for trial := 0; trial < 500; trial++ {
			x := rng.Intn(len(src))
			if got := d.Get(blk, x); got != full[x] {
				t.Fatalf("rate %.2f: Get(%d) = %d, want %d", rate, x, got, full[x])
			}
		}
		// Boundary positions are the regressions waiting to happen.
		for _, x := range []int{0, 1, 126, 127, 128, 129, 255, 256, len(src) - 1} {
			if got := d.Get(blk, x); got != full[x] {
				t.Fatalf("rate %.2f: Get(boundary %d) = %d, want %d", rate, x, got, full[x])
			}
		}
	}
}

func TestGetMatchesDecompressPDict(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dict := makeDict(64)
	src := synthPDict(rng, 2000, dict, 0.2)
	blk := CompressPDict(src, dict, 6)
	full := make([]int64, len(src))
	Decompress(blk, full)
	var d Decoder[int64]
	for x := 0; x < len(src); x++ {
		if got := d.Get(blk, x); got != full[x] {
			t.Fatalf("Get(%d) = %d, want %d", x, got, full[x])
		}
	}
}

func TestGetMatchesDecompressPFORDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	src := synthMonotonic(rng, 2000, 5, 0.1)
	blk := CompressPFORDelta(src, 0, 0, 5)
	full := make([]int64, len(src))
	Decompress(blk, full)
	var d Decoder[int64]
	for x := 0; x < len(src); x++ {
		if got := d.Get(blk, x); got != full[x] {
			t.Fatalf("Get(%d) = %d, want %d", x, got, full[x])
		}
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	blk := CompressPFOR([]int64{1, 2, 3}, 0, 4)
	for _, x := range []int{-1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d): expected panic", x)
				}
			}()
			Get(blk, x)
		}()
	}
}

func TestDecompressRangeMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, scheme := range []string{"pfor", "pdict", "pfordelta"} {
		src := synthPFOR(rng, 10*GroupSize+57, 0, 8, 0.1)
		var blk *Block[int64]
		switch scheme {
		case "pfor":
			blk = CompressPFOR(src, 0, 8)
		case "pdict":
			dict := makeDict(256)
			src = synthPDict(rng, len(src), dict, 0.1)
			blk = CompressPDict(src, dict, 8)
		case "pfordelta":
			src = synthMonotonic(rng, len(src), 8, 0.1)
			blk = CompressPFORDelta(src, 0, 0, 8)
		}
		full := make([]int64, len(src))
		Decompress(blk, full)

		var d Decoder[int64]
		buf := make([]int64, len(src))
		for _, r := range [][2]int{{0, GroupSize}, {GroupSize, 3 * GroupSize}, {8 * GroupSize, blk.N}, {0, blk.N}, {2 * GroupSize, 2 * GroupSize}} {
			lo, hi := r[0], r[1]
			out := d.DecompressRange(blk, buf, lo, hi)
			if len(out) != hi-lo {
				t.Fatalf("%s: range [%d,%d): got %d values", scheme, lo, hi, len(out))
			}
			for i := range out {
				if out[i] != full[lo+i] {
					t.Fatalf("%s: range [%d,%d): mismatch at offset %d", scheme, lo, hi, i)
				}
			}
		}
	}
}

func TestDecompressRangeBadArgsPanic(t *testing.T) {
	blk := CompressPFOR(make([]int64, 1000), 0, 4)
	var d Decoder[int64]
	buf := make([]int64, 1000)
	for _, r := range [][2]int{{1, 128}, {0, 100}, {-128, 0}, {128, 1064}, {256, 128}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %v: expected panic", r)
				}
			}()
			d.DecompressRange(blk, buf, r[0], r[1])
		}()
	}
}

func TestDecoderReuseNoCorruption(t *testing.T) {
	// The same decoder must serve interleaved blocks of different sizes.
	rng := rand.New(rand.NewSource(45))
	a := synthPFOR(rng, 5000, 0, 8, 0.1)
	b := synthPFOR(rng, 100, 0, 8, 0.5)
	blkA := CompressPFOR(a, 0, 8)
	blkB := CompressPFOR(b, 0, 8)
	var d Decoder[int64]
	bufA := make([]int64, len(a))
	bufB := make([]int64, len(b))
	for i := 0; i < 5; i++ {
		d.Decompress(blkA, bufA)
		d.Decompress(blkB, bufB)
	}
	for i := range a {
		if bufA[i] != a[i] {
			t.Fatal("decoder reuse corrupted block A")
		}
	}
	for i := range b {
		if bufB[i] != b[i] {
			t.Fatal("decoder reuse corrupted block B")
		}
	}
}

func TestCodeAtMatchesUnpack(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for _, b := range []uint{1, 3, 8, 17, 31, 32} {
		src := make([]uint64, 700)
		for i := range src {
			src[i] = rng.Uint64() & (1<<b - 1) & ((1 << 40) - 1)
		}
		blk := CompressPFOR(src, 0, b)
		raw := make([]uint32, blk.N)
		unpackAll(blk, raw)
		var d Decoder[uint64]
		for x := 0; x < blk.N; x++ {
			if got := d.codeAt(blk, x); got != raw[x] {
				t.Fatalf("b=%d: codeAt(%d)=%d, want %d", b, x, got, raw[x])
			}
		}
	}
}

// TestQuickRoundTripAllSchemes is the umbrella property test: arbitrary
// int32 data round-trips through every scheme at an analyzer-chosen width.
func TestQuickRoundTripAllSchemes(t *testing.T) {
	f := func(raw []int32, widthSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		b := uint(widthSeed%31) + 1
		base := raw[0]

		blk := CompressPFOR(raw, base, b)
		out := make([]int32, len(raw))
		Decompress(blk, out)
		for i := range raw {
			if out[i] != raw[i] {
				return false
			}
		}

		blkD := CompressPFORDelta(raw, 0, 0, b)
		Decompress(blkD, out)
		for i := range raw {
			if out[i] != raw[i] {
				return false
			}
		}

		// Dictionary of the first few distinct values.
		seen := map[int32]bool{}
		var dict []int32
		for _, v := range raw {
			if !seen[v] && len(dict) < 1<<min(b, 10) {
				seen[v] = true
				dict = append(dict, v)
			}
		}
		blkP := CompressPDict(raw, dict, min(b, 10))
		Decompress(blkP, out)
		for i := range raw {
			if out[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

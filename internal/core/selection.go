package core

import "math/bits"

// SelectionVector is a per-block selection bitmap: one bit per row, bit i
// set iff row i survives the predicates evaluated so far. It is the
// composition currency of multi-predicate scans — each predicate's
// compare kernels produce or refine one of these, bitmaps from several
// columns are intersected word by word, and only the rows still set are
// ever materialized (the MonetDB/X100 selection-vector idea, held in
// bitmap form so conjunction is a single AND per 32 rows).
//
// The words beyond Len() bits are always zero; every producer in this
// package maintains that invariant, so Count and And need no tail masking.
type SelectionVector struct {
	words []uint32
	n     int
}

// selWords returns the number of mask words covering n rows.
func selWords(n int) int { return (n + 31) / 32 }

// size (re)shapes sv to n rows without defined bit contents, reusing the
// backing array when it is large enough.
func (sv *SelectionVector) size(n int) {
	words := selWords(n)
	if cap(sv.words) < words {
		sv.words = make([]uint32, words)
	}
	sv.words = sv.words[:words]
	sv.n = n
}

// Reset shapes sv to n rows with every bit clear.
func (sv *SelectionVector) Reset(n int) {
	sv.size(n)
	clear(sv.words)
}

// Fill shapes sv to n rows with every bit set (tail bits stay zero).
func (sv *SelectionVector) Fill(n int) {
	sv.size(n)
	for i := range sv.words {
		sv.words[i] = ^uint32(0)
	}
	if tail := n % 32; tail > 0 {
		sv.words[len(sv.words)-1] = 1<<uint(tail) - 1
	}
}

// Len returns the number of rows the vector covers.
func (sv *SelectionVector) Len() int { return sv.n }

// Words exposes the backing mask words — one bit per row, 32 rows per
// word, bits beyond Len() zero. Callers iterate matches with the usual
// m &= m-1 / TrailingZeros32 walk, or AND whole words; they must preserve
// the zero-tail invariant when writing.
func (sv *SelectionVector) Words() []uint32 { return sv.words }

// Count returns the number of set bits (rows selected).
func (sv *SelectionVector) Count() int {
	c := 0
	for _, w := range sv.words {
		c += bits.OnesCount32(w)
	}
	return c
}

// Any reports whether at least one row is selected.
func (sv *SelectionVector) Any() bool {
	for _, w := range sv.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Test reports whether row i is selected. i must be in [0, Len()).
func (sv *SelectionVector) Test(i int) bool {
	return sv.words[i>>5]>>(uint(i)&31)&1 != 0
}

// Set selects row i. i must be in [0, Len()).
func (sv *SelectionVector) Set(i int) {
	sv.words[i>>5] |= 1 << (uint(i) & 31)
}

// Clear deselects row i. i must be in [0, Len()).
func (sv *SelectionVector) Clear(i int) {
	sv.words[i>>5] &^= 1 << (uint(i) & 31)
}

// And intersects sv with other in place: a branch-free word-wise AND.
// Both vectors must cover the same number of rows.
func (sv *SelectionVector) And(other *SelectionVector) {
	if sv.n != other.n {
		panic("core: AND of selection vectors of different lengths")
	}
	for i, w := range other.words {
		sv.words[i] &= w
	}
}

// Or unions sv with other in place: a branch-free word-wise OR — the
// composition step for disjunctive predicates, where each OR-branch
// builds its own match bitmap and the branches fold together one word
// per 32 rows. Both vectors must cover the same number of rows. Both
// inputs keep their tail bits zero, so the union preserves the
// zero-tail invariant without masking.
func (sv *SelectionVector) Or(other *SelectionVector) {
	if sv.n != other.n {
		panic("core: OR of selection vectors of different lengths")
	}
	for i, w := range other.words {
		sv.words[i] |= w
	}
}

// AppendRows appends base+i for every selected row i to dst, in row
// order — the bitmap-to-row-number decode of the materialization step.
func (sv *SelectionVector) AppendRows(dst []int64, base int64) []int64 {
	for w, m := range sv.words {
		vb := base + int64(w<<5)
		for ; m != 0; m &= m - 1 {
			dst = append(dst, vb+int64(bits.TrailingZeros32(m)))
		}
	}
	return dst
}

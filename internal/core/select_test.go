package core

import (
	"math/rand"
	"slices"
	"testing"
)

// selectOracle filters decompressed values the straightforward way.
func selectOracleCore[T Integer](blk *Block[T], lo, hi T) (sel []int32, vals []T) {
	dst := make([]T, blk.N)
	Decompress(blk, dst)
	for i, v := range dst {
		if v >= lo && v <= hi {
			sel = append(sel, int32(i))
			vals = append(vals, v)
		}
	}
	return sel, vals
}

func checkSelect[T Integer](t *testing.T, name string, blk *Block[T], lo, hi T) {
	t.Helper()
	var d Decoder[T]
	wantSel, wantVals := selectOracleCore(blk, lo, hi)
	gotSel, gotVals := d.DecompressWhere(blk, lo, hi, nil, nil)
	if !slices.Equal(gotSel, wantSel) {
		t.Fatalf("%s [%v,%v]: sel mismatch\n got %v\nwant %v", name, lo, hi, gotSel, wantSel)
	}
	if !slices.Equal(gotVals, wantVals) {
		t.Fatalf("%s [%v,%v]: vals mismatch\n got %v\nwant %v", name, lo, hi, gotVals, wantVals)
	}

	var want Aggregate[T]
	for _, v := range wantVals {
		want.add(v)
	}
	got := d.AggregateWhere(blk, lo, hi)
	if got != want {
		t.Fatalf("%s [%v,%v]: aggregate = %+v, want %+v", name, lo, hi, got, want)
	}
}

// rangesFor picks predicate ranges that exercise the interesting shapes:
// empty, inverted, all-covering, single value, windows straddling the
// codable region on both sides.
func rangesFor[T Integer](vals []T) [][2]T {
	sorted := slices.Clone(vals)
	slices.Sort(sorted)
	n := len(sorted)
	r := [][2]T{
		{sorted[0], sorted[n-1]},             // everything
		{sorted[n/2], sorted[n/2]},           // point
		{sorted[n/4], sorted[3*n/4]},         // middle half
		{sorted[0], sorted[0]},               // min only
		{sorted[n-1], sorted[n-1]},           // max only
		{sorted[n/2] + 1, sorted[n/2]},       // inverted: empty
		{sorted[9*n/10], sorted[n-1]},        // upper tail (outlier land)
		{sorted[0], sorted[n/10]},            // lower tail
		{sorted[n-1] + 1, sorted[n-1] + 10},  // beyond max
		{sorted[0] - 10, sorted[0] - 1},      // below min (may wrap for unsigned)
		{sorted[0] - 1, sorted[n-1] + 1},     // straddling both ends
		{sorted[n/3] - 1, sorted[2*n/3] + 1}, // arbitrary window
	}
	return r
}

// TestDecompressWhereOracle drives every scheme, signed and unsigned,
// across exception densities from none to compulsory-heavy.
func TestDecompressWhereOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))

	t.Run("pfor-int64", func(t *testing.T) {
		for _, rate := range []float64{0, 0.02, 0.3} {
			for _, n := range []int{1, 97, 128, 1000, 4099} {
				src := make([]int64, n)
				for i := range src {
					src[i] = 100 + rng.Int63n(1<<10)
					if rng.Float64() < rate {
						src[i] = rng.Int63n(1 << 40)
					}
				}
				blk := CompressPFOR(src, 100, 10)
				for _, r := range rangesFor(src) {
					checkSelect(t, "pfor", blk, r[0], r[1])
				}
			}
		}
	})

	t.Run("pfor-negative-base-int32", func(t *testing.T) {
		src := make([]int32, 2000)
		for i := range src {
			src[i] = -500 + rng.Int31n(1<<8)
			if i%37 == 0 {
				src[i] = -100000 + rng.Int31n(200000)
			}
		}
		blk := CompressPFOR(src, -500, 8)
		for _, r := range rangesFor(src) {
			checkSelect(t, "pfor-neg", blk, r[0], r[1])
		}
	})

	t.Run("pfor-uint8-narrow", func(t *testing.T) {
		src := make([]uint8, 777)
		for i := range src {
			src[i] = 20 + uint8(rng.Intn(16))
			if i%11 == 0 {
				src[i] = uint8(rng.Intn(256))
			}
		}
		blk := CompressPFOR(src, 20, 4)
		for _, r := range rangesFor(src) {
			checkSelect(t, "pfor-u8", blk, r[0], r[1])
		}
	})

	t.Run("pfor-compulsory", func(t *testing.T) {
		// Width 1 forces compulsory exceptions every 2 slots wherever real
		// exceptions are far apart.
		src := make([]int64, 1000)
		for i := range src {
			src[i] = int64(i % 2)
			if i%200 == 0 {
				src[i] = 1 << 30
			}
		}
		blk := CompressPFOR(src, 0, 1)
		for _, r := range rangesFor(src) {
			checkSelect(t, "pfor-compulsory", blk, r[0], r[1])
		}
	})

	t.Run("pfor-delta", func(t *testing.T) {
		for _, rate := range []float64{0, 0.05} {
			src := make([]int64, 3000)
			acc := int64(0)
			for i := range src {
				acc += rng.Int63n(16)
				if rng.Float64() < rate {
					acc += rng.Int63n(1 << 20)
				}
				src[i] = acc
			}
			blk := CompressPFORDelta(src, 0, 0, 4)
			for _, r := range rangesFor(src) {
				checkSelect(t, "pfor-delta", blk, r[0], r[1])
			}
		}
	})

	t.Run("pdict", func(t *testing.T) {
		// A dictionary whose values are deliberately out of order, so a
		// value range maps to a non-contiguous code set (bitmap path).
		dict := []int64{40, 10, 30, 20, 70, 50}
		src := make([]int64, 2500)
		for i := range src {
			src[i] = dict[rng.Intn(len(dict))]
			if rng.Intn(29) == 0 {
				src[i] = 1000 + rng.Int63n(100) // exceptions
			}
		}
		blk := CompressPDict(src, dict, 3)
		for _, r := range rangesFor(src) {
			checkSelect(t, "pdict", blk, r[0], r[1])
		}
		// A range matching exactly one dictionary run exercises the
		// contiguous fast path ({10..20} = codes 1,3 non-contiguous;
		// {70,70} = code 4 contiguous).
		checkSelect(t, "pdict-one-code", blk, int64(70), int64(70))
		checkSelect(t, "pdict-noncontig", blk, int64(10), int64(20))
	})

	t.Run("pdict-uint16", func(t *testing.T) {
		dict := []uint16{5, 6, 7, 8, 1000}
		src := make([]uint16, 1300)
		for i := range src {
			src[i] = dict[rng.Intn(len(dict))]
			if i%53 == 0 {
				src[i] = 60000
			}
		}
		blk := CompressPDict(src, dict, 3)
		for _, r := range rangesFor(src) {
			checkSelect(t, "pdict-u16", blk, r[0], r[1])
		}
	})
}

// TestDecompressWhereReusesBuffers checks the append contract: passed-in
// slices are extended, not replaced.
func TestDecompressWhereReusesBuffers(t *testing.T) {
	src := make([]int64, 500)
	for i := range src {
		src[i] = int64(i)
	}
	blk := CompressPFOR(src, 0, 10)
	var d Decoder[int64]
	sel := []int32{-1}
	vals := []int64{-7}
	sel, vals = d.DecompressWhere(blk, 10, 12, sel, vals)
	if len(sel) != 4 || sel[0] != -1 || sel[1] != 10 || vals[0] != -7 || vals[3] != 12 {
		t.Fatalf("append contract broken: sel=%v vals=%v", sel, vals)
	}
}

func BenchmarkDecompressWhere(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	src := make([]int64, 1<<16)
	for i := range src {
		src[i] = rng.Int63n(1 << 10)
		if rng.Intn(50) == 0 {
			src[i] = rng.Int63n(1 << 30)
		}
	}
	blk := CompressPFOR(src, 0, 10)
	var d Decoder[int64]
	sel := make([]int32, 0, len(src))
	vals := make([]int64, 0, len(src))
	b.Run("sel1pct", func(b *testing.B) {
		b.SetBytes(int64(len(src) * 8))
		for i := 0; i < b.N; i++ {
			sel, vals = d.DecompressWhere(blk, 0, 10, sel[:0], vals[:0])
		}
	})
	b.Run("decode-then-filter", func(b *testing.B) {
		dst := make([]int64, len(src))
		b.SetBytes(int64(len(src) * 8))
		for i := 0; i < b.N; i++ {
			d.Decompress(blk, dst)
			sel, vals = sel[:0], vals[:0]
			for j, v := range dst {
				if v >= 0 && v <= 10 {
					sel = append(sel, int32(j))
					vals = append(vals, v)
				}
			}
		}
	})
}

package core

import (
	"math/rand"
	"testing"
)

// synthMonotonic produces a monotonically increasing sequence whose gaps are
// mostly small (codable in b bits) with occasional large jumps — the d-gap
// structure of inverted files.
func synthMonotonic(rng *rand.Rand, n int, b uint, excRate float64) []int64 {
	vals := make([]int64, n)
	acc := int64(0)
	window := int64(1) << b
	for i := range vals {
		if rng.Float64() < excRate {
			acc += window + rng.Int63n(1<<30)
		} else {
			acc += rng.Int63n(window - 1)
		}
		vals[i] = acc
	}
	return vals
}

func TestPFORDeltaRoundTripBasic(t *testing.T) {
	src := []int64{10, 12, 13, 20, 21, 22, 1000, 1001, 1002}
	blk := CompressPFORDelta(src, 10, 0, 4)
	checkRoundTrip(t, blk, src)
	// The 10->nothing start delta is 0 (base==first value), 13->20 gap of 7
	// fits, 22->1000 jump must be an exception.
	if blk.ExceptionCount() != 1 {
		t.Fatalf("want 1 exception for the large jump, got %d", blk.ExceptionCount())
	}
}

func TestPFORDeltaRoundTripRates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, rate := range []float64{0, 0.02, 0.1, 0.5, 1.0} {
		for _, b := range []uint{1, 3, 7, 16} {
			for _, n := range []int{0, 1, 127, 128, 129, 2500} {
				src := synthMonotonic(rng, n, b, rate)
				blk := CompressPFORDelta(src, 0, 0, b)
				checkRoundTrip(t, blk, src)
			}
		}
	}
}

func TestPFORDeltaNegativeDeltas(t *testing.T) {
	// Non-monotonic data: deltas straddle zero. A negative DeltaBase keeps
	// small negative deltas codable.
	src := []int64{100, 98, 101, 99, 102, 100, 103}
	blk := CompressPFORDelta(src, 100, -3, 3)
	checkRoundTrip(t, blk, src)
	if blk.ExceptionCount() != 0 {
		t.Fatalf("deltas in [-3,4] with DeltaBase=-3 b=3 need no exceptions, got %d", blk.ExceptionCount())
	}
}

func TestPFORDeltaWrapAround(t *testing.T) {
	// Differences that wrap the type domain must still round-trip: the
	// running sum wraps back.
	src := []uint8{250, 5, 250, 5}
	blk := CompressPFORDelta(src, 0, 0, 4)
	checkRoundTrip(t, blk, src)

	srcI := []int64{1 << 62, -(1 << 62), 1 << 62}
	blkI := CompressPFORDelta(srcI, 0, 0, 8)
	checkRoundTrip(t, blkI, srcI)
}

func TestPFORDeltaTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	src := synthMonotonic(rng, 1000, 5, 0.05)
	blk := CompressPFORDelta(src, 0, 0, 5)
	if len(blk.Totals) != blk.NumGroups() {
		t.Fatalf("Totals has %d entries, want %d", len(blk.Totals), blk.NumGroups())
	}
	for g := 1; g < blk.NumGroups(); g++ {
		if blk.Totals[g] != src[g*GroupSize-1] {
			t.Fatalf("Totals[%d] = %d, want %d", g, blk.Totals[g], src[g*GroupSize-1])
		}
	}
}

func TestPFORDeltaChainedBlocks(t *testing.T) {
	// Compressing a long sequence as consecutive blocks chained via base.
	rng := rand.New(rand.NewSource(34))
	src := synthMonotonic(rng, 10_000, 6, 0.03)
	const blockLen = 4096
	var got []int64
	base := int64(0)
	for lo := 0; lo < len(src); lo += blockLen {
		hi := min(lo+blockLen, len(src))
		blk := CompressPFORDelta(src[lo:hi], base, 0, 6)
		out := make([]int64, hi-lo)
		Decompress(blk, out)
		got = append(got, out...)
		base = src[hi-1]
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("chained mismatch at %d", i)
		}
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestCompulsoryExceptionRate(t *testing.T) {
	// Figure 6: with b=1 the effective rate explodes toward ~0.5, with
	// b>4 the effect is negligible.
	if got := CompulsoryExceptionRate(0, 1); got != 0 {
		t.Fatalf("E=0 must stay 0, got %f", got)
	}
	if got := CompulsoryExceptionRate(0.1, 1); got < 0.4 {
		t.Fatalf("b=1 E=0.1: E' = %f, want > 0.4 (Figure 6 shows ~0.46)", got)
	}
	if got := CompulsoryExceptionRate(0.1, 2); got < 0.2 || got > 0.25 {
		t.Fatalf("b=2 E=0.1: E' = %f, want ~0.22 (Figure 6)", got)
	}
	for _, b := range []uint{5, 8, 16} {
		if got := CompulsoryExceptionRate(0.1, b); math.Abs(got-0.1) > 0.04 {
			t.Fatalf("b=%d: compulsory effect should be negligible, E'=%f", b, got)
		}
	}
	// E' is never below E.
	for _, e := range []float64{0.001, 0.01, 0.1, 0.3} {
		for b := uint(1); b <= 24; b++ {
			if got := CompulsoryExceptionRate(e, b); got < e {
				t.Fatalf("E'(%f,%d) = %f < E", e, b, got)
			}
		}
	}
}

func TestPforAnalyzeBits(t *testing.T) {
	// Sorted sample with a dense stretch [100..107] and two outliers.
	sorted := []int64{-500, 100, 101, 102, 103, 104, 105, 106, 107, 9000}
	start, length := pforAnalyzeBits(sorted, 3)
	if start != 1 || length != 8 {
		t.Fatalf("b=3: got (start=%d,len=%d), want (1,8)", start, length)
	}
	// b large enough to span everything.
	start, length = pforAnalyzeBits(sorted, 32)
	if start != 0 || length != len(sorted) {
		t.Fatalf("b=32: got (start=%d,len=%d), want whole sample", start, length)
	}
}

func TestAnalyzePFORPicksTightWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	// Values uniform in [1000, 1000+2^9) with 1% outliers: the analyzer
	// should pick b=9 (or 10 with the compulsory correction) and base 1000.
	src := make([]int64, 20_000)
	for i := range src {
		if rng.Float64() < 0.01 {
			src[i] = rng.Int63()
		} else {
			src[i] = 1000 + rng.Int63n(1<<9)
		}
	}
	c := AnalyzePFOR(src)
	if c.B < 8 || c.B > 11 {
		t.Fatalf("chose b=%d, want ~9", c.B)
	}
	blk := c.Compress(src)
	checkRoundTrip(t, blk, src)
	measured := blk.ExceptionRate()
	if math.Abs(measured-c.ExceptionRate) > 0.05 {
		t.Fatalf("projected E'=%.3f but measured %.3f", c.ExceptionRate, measured)
	}
}

func TestAnalyzePFORDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	src := synthMonotonic(rng, 20_000, 7, 0.02)
	c := AnalyzePFORDelta(src)
	if c.B < 6 || c.B > 9 {
		t.Fatalf("chose b=%d for 7-bit gaps, want ~7", c.B)
	}
	blk := c.Compress(src)
	checkRoundTrip(t, blk, src)
}

func TestAnalyzePDict(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	// 8 hot values cover 97% of the data.
	hot := makeDict(8)
	src := make([]int64, 30_000)
	for i := range src {
		if rng.Float64() < 0.97 {
			src[i] = hot[rng.Intn(len(hot))]
		} else {
			src[i] = rng.Int63()
		}
	}
	c := AnalyzePDict(src)
	if c.B < 3 || c.B > 5 {
		t.Fatalf("chose b=%d, want ~3", c.B)
	}
	blk := c.Compress(src)
	checkRoundTrip(t, blk, src)
}

func TestChoosePrefersDeltaForMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	src := synthMonotonic(rng, 20_000, 4, 0.01)
	c := Choose(src)
	if c.Scheme != SchemePFORDelta {
		t.Fatalf("monotonic small-gap data chose %v, want PFOR-DELTA", c.Scheme)
	}
	blk := c.Compress(src)
	checkRoundTrip(t, blk, src)
}

func TestChoosePrefersPDictForSkewedEnums(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	// Four widely-spread enum values (so PFOR can't frame them tightly).
	enums := []int64{0, 1 << 30, 1 << 45, 1 << 60}
	src := make([]int64, 20_000)
	for i := range src {
		src[i] = enums[rng.Intn(4)]
	}
	c := Choose(src)
	if c.Scheme != SchemePDict {
		t.Fatalf("enum data chose %v, want PDICT", c.Scheme)
	}
	blk := c.Compress(src)
	checkRoundTrip(t, blk, src)
	if blk.Ratio() < 15 {
		t.Fatalf("4-value enum over int64 should compress > 15x, got %.1f", blk.Ratio())
	}
}

func TestChoosePrefersPFORForClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	// Random order (not monotonic), tight value range around a base:
	// classic PFOR territory (e.g. dates in a warehouse).
	src := make([]int64, 20_000)
	for i := range src {
		src[i] = 730_000 + rng.Int63n(1<<11) // ~date ints
	}
	c := Choose(src)
	if c.Scheme != SchemePFOR && c.Scheme != SchemePDict {
		t.Fatalf("clustered data chose %v, want a non-delta scheme", c.Scheme)
	}
	if c.Scheme == SchemePFOR && (c.B < 10 || c.B > 12) {
		t.Fatalf("PFOR width %d, want ~11", c.B)
	}
}

func TestChooseFallsBackToNone(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	// Full-entropy 64-bit values: nothing compresses; expect SchemeNone.
	src := make([]uint64, 20_000)
	for i := range src {
		src[i] = rng.Uint64()
	}
	c := Choose(src)
	if c.Scheme != SchemeNone {
		t.Fatalf("incompressible data chose %v (%.1f bits), want NONE", c.Scheme, c.Bits)
	}
	if c.Compress(src) != nil {
		t.Fatal("SchemeNone must not produce a block")
	}
}

func TestChooseModeledBitsMatchReality(t *testing.T) {
	// The analyzer's bits/value estimate should predict the actual
	// compressed size within a reasonable margin.
	rng := rand.New(rand.NewSource(58))
	src := make([]int64, 65_536)
	for i := range src {
		if rng.Float64() < 0.03 {
			src[i] = rng.Int63()
		} else {
			src[i] = rng.Int63n(1 << 13)
		}
	}
	c := Choose(src)
	blk := c.Compress(src)
	if blk == nil {
		t.Fatal("expected a compressible choice")
	}
	checkRoundTrip(t, blk, src)
	actualBits := float64(blk.CompressedBytes()) * 8 / float64(len(src))
	if math.Abs(actualBits-c.Bits) > 0.15*c.Bits+1 {
		t.Fatalf("modeled %.2f bits/value, actual %.2f", c.Bits, actualBits)
	}
}

func TestSample(t *testing.T) {
	src := make([]int64, 100_000)
	for i := range src {
		src[i] = int64(i)
	}
	s := Sample(src, 4096)
	if len(s) > 4096 || len(s) < 2048 {
		t.Fatalf("sample size %d, want within (2048, 4096]", len(s))
	}
	// Order preserved (monotone stays monotone).
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatal("sample must preserve order")
		}
	}
	// Run-based sampling keeps local deltas: the dominant sampled delta of
	// a sequential key must be 1, not the run stride.
	ones := 0
	for i := 1; i < len(s); i++ {
		if s[i]-s[i-1] == 1 {
			ones++
		}
	}
	if float64(ones) < 0.9*float64(len(s)) {
		t.Fatalf("only %d/%d sampled deltas are 1; runs are broken", ones, len(s))
	}
	if got := Sample(src, len(src)+5); len(got) != len(src) {
		t.Fatal("small inputs pass through")
	}
}

func TestAnalyzeEmptyAndTiny(t *testing.T) {
	for _, src := range [][]int64{{}, {42}} {
		for _, c := range []Choice[int64]{AnalyzePFOR(src), AnalyzePFORDelta(src), AnalyzePDict(src)} {
			if math.IsInf(c.Bits, 1) {
				t.Fatalf("len=%d: analysis returned +Inf bits", len(src))
			}
		}
		c := Choose(src)
		if blk := c.Compress(src); blk != nil {
			checkRoundTrip(t, blk, src)
		}
	}
}
